# Empty dependencies file for bgk_relaxation.
# This may be replaced when dependencies are built.
