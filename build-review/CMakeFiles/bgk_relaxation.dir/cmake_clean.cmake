file(REMOVE_RECURSE
  "CMakeFiles/bgk_relaxation.dir/examples/bgk_relaxation.cpp.o"
  "CMakeFiles/bgk_relaxation.dir/examples/bgk_relaxation.cpp.o.d"
  "bgk_relaxation"
  "bgk_relaxation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgk_relaxation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
