# Empty dependencies file for bench_ablation_flux.
# This may be replaced when dependencies are built.
