file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_flux.dir/bench/bench_ablation_flux.cpp.o"
  "CMakeFiles/bench_ablation_flux.dir/bench/bench_ablation_flux.cpp.o.d"
  "bench_ablation_flux"
  "bench_ablation_flux.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_flux.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
