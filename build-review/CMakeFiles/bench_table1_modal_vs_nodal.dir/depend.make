# Empty dependencies file for bench_table1_modal_vs_nodal.
# This may be replaced when dependencies are built.
