file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_modal_vs_nodal.dir/bench/bench_table1_modal_vs_nodal.cpp.o"
  "CMakeFiles/bench_table1_modal_vs_nodal.dir/bench/bench_table1_modal_vs_nodal.cpp.o.d"
  "bench_table1_modal_vs_nodal"
  "bench_table1_modal_vs_nodal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_modal_vs_nodal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
