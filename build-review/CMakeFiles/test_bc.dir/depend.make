# Empty dependencies file for test_bc.
# This may be replaced when dependencies are built.
