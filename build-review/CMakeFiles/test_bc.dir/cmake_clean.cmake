file(REMOVE_RECURSE
  "CMakeFiles/test_bc.dir/tests/test_bc.cpp.o"
  "CMakeFiles/test_bc.dir/tests/test_bc.cpp.o.d"
  "test_bc"
  "test_bc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
