file(REMOVE_RECURSE
  "CMakeFiles/vlasov_poisson_landau.dir/examples/vlasov_poisson_landau.cpp.o"
  "CMakeFiles/vlasov_poisson_landau.dir/examples/vlasov_poisson_landau.cpp.o.d"
  "vlasov_poisson_landau"
  "vlasov_poisson_landau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vlasov_poisson_landau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
