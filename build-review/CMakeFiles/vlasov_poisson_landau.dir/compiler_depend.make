# Empty compiler generated dependencies file for vlasov_poisson_landau.
# This may be replaced when dependencies are built.
