file(REMOVE_RECURSE
  "CMakeFiles/test_basis.dir/tests/test_basis.cpp.o"
  "CMakeFiles/test_basis.dir/tests/test_basis.cpp.o.d"
  "test_basis"
  "test_basis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_basis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
