# Empty compiler generated dependencies file for bench_poisson_solve.
# This may be replaced when dependencies are built.
