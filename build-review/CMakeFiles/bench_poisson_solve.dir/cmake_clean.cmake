file(REMOVE_RECURSE
  "CMakeFiles/bench_poisson_solve.dir/bench/bench_poisson_solve.cpp.o"
  "CMakeFiles/bench_poisson_solve.dir/bench/bench_poisson_solve.cpp.o.d"
  "bench_poisson_solve"
  "bench_poisson_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_poisson_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
