file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_scaling.dir/bench/bench_fig2_scaling.cpp.o"
  "CMakeFiles/bench_fig2_scaling.dir/bench/bench_fig2_scaling.cpp.o.d"
  "bench_fig2_scaling"
  "bench_fig2_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
