file(REMOVE_RECURSE
  "CMakeFiles/kernel_emit.dir/examples/kernel_emit.cpp.o"
  "CMakeFiles/kernel_emit.dir/examples/kernel_emit.cpp.o.d"
  "kernel_emit"
  "kernel_emit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_emit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
