# Empty compiler generated dependencies file for kernel_emit.
# This may be replaced when dependencies are built.
