# Empty dependencies file for bench_fig1_opcount.
# This may be replaced when dependencies are built.
