file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_opcount.dir/bench/bench_fig1_opcount.cpp.o"
  "CMakeFiles/bench_fig1_opcount.dir/bench/bench_fig1_opcount.cpp.o.d"
  "bench_fig1_opcount"
  "bench_fig1_opcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_opcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
