# Empty dependencies file for test_lbo.
# This may be replaced when dependencies are built.
