file(REMOVE_RECURSE
  "CMakeFiles/test_lbo.dir/tests/test_lbo.cpp.o"
  "CMakeFiles/test_lbo.dir/tests/test_lbo.cpp.o.d"
  "test_lbo"
  "test_lbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
