file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_weibel.dir/bench/bench_fig5_weibel.cpp.o"
  "CMakeFiles/bench_fig5_weibel.dir/bench/bench_fig5_weibel.cpp.o.d"
  "bench_fig5_weibel"
  "bench_fig5_weibel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_weibel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
