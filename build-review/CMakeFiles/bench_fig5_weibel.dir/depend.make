# Empty dependencies file for bench_fig5_weibel.
# This may be replaced when dependencies are built.
