file(REMOVE_RECURSE
  "CMakeFiles/bench_eop_efficiency.dir/bench/bench_eop_efficiency.cpp.o"
  "CMakeFiles/bench_eop_efficiency.dir/bench/bench_eop_efficiency.cpp.o.d"
  "bench_eop_efficiency"
  "bench_eop_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eop_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
