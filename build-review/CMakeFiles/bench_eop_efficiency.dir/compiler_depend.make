# Empty compiler generated dependencies file for bench_eop_efficiency.
# This may be replaced when dependencies are built.
