file(REMOVE_RECURSE
  "CMakeFiles/vp_bumpontail_lbo.dir/examples/vp_bumpontail_lbo.cpp.o"
  "CMakeFiles/vp_bumpontail_lbo.dir/examples/vp_bumpontail_lbo.cpp.o.d"
  "vp_bumpontail_lbo"
  "vp_bumpontail_lbo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_bumpontail_lbo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
