# Empty compiler generated dependencies file for vp_bumpontail_lbo.
# This may be replaced when dependencies are built.
