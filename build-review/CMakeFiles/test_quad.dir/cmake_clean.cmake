file(REMOVE_RECURSE
  "CMakeFiles/test_quad.dir/tests/test_quad.cpp.o"
  "CMakeFiles/test_quad.dir/tests/test_quad.cpp.o.d"
  "test_quad"
  "test_quad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
