# Empty dependencies file for test_quad.
# This may be replaced when dependencies are built.
