file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sparsity.dir/bench/bench_ablation_sparsity.cpp.o"
  "CMakeFiles/bench_ablation_sparsity.dir/bench/bench_ablation_sparsity.cpp.o.d"
  "bench_ablation_sparsity"
  "bench_ablation_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
