# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for landau_damping_2x2v.
