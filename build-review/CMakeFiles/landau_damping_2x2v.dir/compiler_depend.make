# Empty compiler generated dependencies file for landau_damping_2x2v.
# This may be replaced when dependencies are built.
