file(REMOVE_RECURSE
  "CMakeFiles/landau_damping_2x2v.dir/examples/landau_damping_2x2v.cpp.o"
  "CMakeFiles/landau_damping_2x2v.dir/examples/landau_damping_2x2v.cpp.o.d"
  "landau_damping_2x2v"
  "landau_damping_2x2v.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landau_damping_2x2v.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
