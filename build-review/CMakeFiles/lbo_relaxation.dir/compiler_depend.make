# Empty compiler generated dependencies file for lbo_relaxation.
# This may be replaced when dependencies are built.
