file(REMOVE_RECURSE
  "CMakeFiles/lbo_relaxation.dir/examples/lbo_relaxation.cpp.o"
  "CMakeFiles/lbo_relaxation.dir/examples/lbo_relaxation.cpp.o.d"
  "lbo_relaxation"
  "lbo_relaxation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbo_relaxation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
