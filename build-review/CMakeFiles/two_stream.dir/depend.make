# Empty dependencies file for two_stream.
# This may be replaced when dependencies are built.
