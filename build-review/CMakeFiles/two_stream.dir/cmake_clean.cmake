file(REMOVE_RECURSE
  "CMakeFiles/two_stream.dir/examples/two_stream.cpp.o"
  "CMakeFiles/two_stream.dir/examples/two_stream.cpp.o.d"
  "two_stream"
  "two_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
