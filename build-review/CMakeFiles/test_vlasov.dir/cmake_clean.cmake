file(REMOVE_RECURSE
  "CMakeFiles/test_vlasov.dir/tests/test_vlasov.cpp.o"
  "CMakeFiles/test_vlasov.dir/tests/test_vlasov.cpp.o.d"
  "test_vlasov"
  "test_vlasov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vlasov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
