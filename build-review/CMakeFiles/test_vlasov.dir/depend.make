# Empty dependencies file for test_vlasov.
# This may be replaced when dependencies are built.
