file(REMOVE_RECURSE
  "CMakeFiles/test_par.dir/tests/test_par.cpp.o"
  "CMakeFiles/test_par.dir/tests/test_par.cpp.o.d"
  "test_par"
  "test_par.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_par.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
