# Empty compiler generated dependencies file for sheath_1x1v.
# This may be replaced when dependencies are built.
