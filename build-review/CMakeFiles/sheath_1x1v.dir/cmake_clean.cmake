file(REMOVE_RECURSE
  "CMakeFiles/sheath_1x1v.dir/examples/sheath_1x1v.cpp.o"
  "CMakeFiles/sheath_1x1v.dir/examples/sheath_1x1v.cpp.o.d"
  "sheath_1x1v"
  "sheath_1x1v.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sheath_1x1v.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
