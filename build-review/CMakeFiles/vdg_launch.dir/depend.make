# Empty dependencies file for vdg_launch.
# This may be replaced when dependencies are built.
