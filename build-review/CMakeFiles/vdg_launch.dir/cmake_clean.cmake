file(REMOVE_RECURSE
  "CMakeFiles/vdg_launch.dir/tools/vdg_launch.cpp.o"
  "CMakeFiles/vdg_launch.dir/tools/vdg_launch.cpp.o.d"
  "vdg_launch"
  "vdg_launch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdg_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
