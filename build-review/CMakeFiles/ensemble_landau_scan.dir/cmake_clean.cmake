file(REMOVE_RECURSE
  "CMakeFiles/ensemble_landau_scan.dir/examples/ensemble_landau_scan.cpp.o"
  "CMakeFiles/ensemble_landau_scan.dir/examples/ensemble_landau_scan.cpp.o.d"
  "ensemble_landau_scan"
  "ensemble_landau_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ensemble_landau_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
