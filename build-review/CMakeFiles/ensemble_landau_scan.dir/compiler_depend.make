# Empty compiler generated dependencies file for ensemble_landau_scan.
# This may be replaced when dependencies are built.
