file(REMOVE_RECURSE
  "CMakeFiles/test_tensors.dir/tests/test_tensors.cpp.o"
  "CMakeFiles/test_tensors.dir/tests/test_tensors.cpp.o.d"
  "test_tensors"
  "test_tensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
