# Empty dependencies file for test_tensors.
# This may be replaced when dependencies are built.
