file(REMOVE_RECURSE
  "CMakeFiles/weibel_2x2v.dir/examples/weibel_2x2v.cpp.o"
  "CMakeFiles/weibel_2x2v.dir/examples/weibel_2x2v.cpp.o.d"
  "weibel_2x2v"
  "weibel_2x2v.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weibel_2x2v.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
