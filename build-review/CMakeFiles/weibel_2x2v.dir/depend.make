# Empty dependencies file for weibel_2x2v.
# This may be replaced when dependencies are built.
