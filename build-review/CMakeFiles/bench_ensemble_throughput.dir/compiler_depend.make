# Empty compiler generated dependencies file for bench_ensemble_throughput.
# This may be replaced when dependencies are built.
