file(REMOVE_RECURSE
  "CMakeFiles/bench_ensemble_throughput.dir/bench/bench_ensemble_throughput.cpp.o"
  "CMakeFiles/bench_ensemble_throughput.dir/bench/bench_ensemble_throughput.cpp.o.d"
  "bench_ensemble_throughput"
  "bench_ensemble_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ensemble_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
