file(REMOVE_RECURSE
  "libvdg.a"
)
