# Empty compiler generated dependencies file for vdg.
# This may be replaced when dependencies are built.
