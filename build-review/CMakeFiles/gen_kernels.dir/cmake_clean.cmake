file(REMOVE_RECURSE
  "CMakeFiles/gen_kernels.dir/tools/gen_kernels.cpp.o"
  "CMakeFiles/gen_kernels.dir/tools/gen_kernels.cpp.o.d"
  "gen_kernels"
  "gen_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
