# Empty compiler generated dependencies file for gen_kernels.
# This may be replaced when dependencies are built.
