file(REMOVE_RECURSE
  "CMakeFiles/test_moments.dir/tests/test_moments.cpp.o"
  "CMakeFiles/test_moments.dir/tests/test_moments.cpp.o.d"
  "test_moments"
  "test_moments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_moments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
