# Empty dependencies file for test_moments.
# This may be replaced when dependencies are built.
