# Empty compiler generated dependencies file for test_poisson_cg.
# This may be replaced when dependencies are built.
