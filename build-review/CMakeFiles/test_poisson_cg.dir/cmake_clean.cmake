file(REMOVE_RECURSE
  "CMakeFiles/test_poisson_cg.dir/tests/test_poisson_cg.cpp.o"
  "CMakeFiles/test_poisson_cg.dir/tests/test_poisson_cg.cpp.o.d"
  "test_poisson_cg"
  "test_poisson_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_poisson_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
