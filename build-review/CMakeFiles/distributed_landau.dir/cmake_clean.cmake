file(REMOVE_RECURSE
  "CMakeFiles/distributed_landau.dir/examples/distributed_landau.cpp.o"
  "CMakeFiles/distributed_landau.dir/examples/distributed_landau.cpp.o.d"
  "distributed_landau"
  "distributed_landau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_landau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
