# Empty compiler generated dependencies file for distributed_landau.
# This may be replaced when dependencies are built.
