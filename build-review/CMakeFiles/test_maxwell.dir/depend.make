# Empty dependencies file for test_maxwell.
# This may be replaced when dependencies are built.
