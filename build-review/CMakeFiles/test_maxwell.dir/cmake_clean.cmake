file(REMOVE_RECURSE
  "CMakeFiles/test_maxwell.dir/tests/test_maxwell.cpp.o"
  "CMakeFiles/test_maxwell.dir/tests/test_maxwell.cpp.o.d"
  "test_maxwell"
  "test_maxwell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maxwell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
