# Empty compiler generated dependencies file for bench_ablation_codegen.
# This may be replaced when dependencies are built.
