file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_codegen.dir/bench/bench_ablation_codegen.cpp.o"
  "CMakeFiles/bench_ablation_codegen.dir/bench/bench_ablation_codegen.cpp.o.d"
  "bench_ablation_codegen"
  "bench_ablation_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
