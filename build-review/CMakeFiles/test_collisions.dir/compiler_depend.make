# Empty compiler generated dependencies file for test_collisions.
# This may be replaced when dependencies are built.
