file(REMOVE_RECURSE
  "CMakeFiles/test_collisions.dir/tests/test_collisions.cpp.o"
  "CMakeFiles/test_collisions.dir/tests/test_collisions.cpp.o.d"
  "test_collisions"
  "test_collisions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
