file(REMOVE_RECURSE
  "CMakeFiles/test_ensemble.dir/tests/test_ensemble.cpp.o"
  "CMakeFiles/test_ensemble.dir/tests/test_ensemble.cpp.o.d"
  "test_ensemble"
  "test_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
