# Empty compiler generated dependencies file for test_comm_conformance.
# This may be replaced when dependencies are built.
