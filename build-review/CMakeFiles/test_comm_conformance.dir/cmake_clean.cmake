file(REMOVE_RECURSE
  "CMakeFiles/test_comm_conformance.dir/tests/test_comm_conformance.cpp.o"
  "CMakeFiles/test_comm_conformance.dir/tests/test_comm_conformance.cpp.o.d"
  "test_comm_conformance"
  "test_comm_conformance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
