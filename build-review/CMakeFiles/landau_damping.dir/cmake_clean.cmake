file(REMOVE_RECURSE
  "CMakeFiles/landau_damping.dir/examples/landau_damping.cpp.o"
  "CMakeFiles/landau_damping.dir/examples/landau_damping.cpp.o.d"
  "landau_damping"
  "landau_damping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landau_damping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
