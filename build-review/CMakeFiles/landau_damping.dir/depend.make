# Empty dependencies file for landau_damping.
# This may be replaced when dependencies are built.
