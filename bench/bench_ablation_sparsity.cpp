// A1 — ablation of the paper's core design choice: executing the volume
// tensor contraction C_lmn alpha_m f_n as a *sparse tape* (possible because
// the modal orthonormal basis makes C_lmn sparse) versus as the dense
// O(Np^3) triple loop a naive implementation would use. The sparsity win is
// the difference between a usable and an unusable 5-D/6-D method.

#include <chrono>
#include <cstdio>
#include <functional>
#include <random>
#include <vector>

#include "tensors/vlasov_tensors.hpp"

namespace {
using namespace vdg;
using Clock = std::chrono::steady_clock;

double timeIt(const std::function<void()>& fn) {
  fn();
  const auto t0 = Clock::now();
  int reps = 0;
  double el = 0.0;
  while (el < 0.3 && reps < 10000) {
    fn();
    ++reps;
    el = std::chrono::duration<double>(Clock::now() - t0).count();
  }
  return el / reps;
}
}  // namespace

int main() {
  std::printf("A1: sparse tape vs dense Np^3 contraction of the volume tensor\n\n");
  std::printf("%-14s %6s %10s %12s %12s %9s %9s\n", "basis", "Np", "nnz", "dense[us]",
              "sparse[us]", "speedup", "fill");

  const BasisSpec specs[] = {
      {1, 1, 1, BasisFamily::Tensor},      {1, 1, 2, BasisFamily::Serendipity},
      {1, 2, 2, BasisFamily::Serendipity}, {2, 2, 1, BasisFamily::Serendipity},
      {2, 3, 1, BasisFamily::Serendipity}, {2, 3, 2, BasisFamily::Serendipity},
  };
  for (const BasisSpec& spec : specs) {
    const VlasovKernelSet& ks = vlasovKernels(spec);
    const int np = ks.numPhaseModes;
    const Tape3& tape = ks.volume.back();  // one acceleration direction

    // Dense tensor reconstructed from the tape.
    std::vector<double> dense(static_cast<std::size_t>(np) * np * np, 0.0);
    for (const Tape3::Term& t : tape.terms)
      dense[(static_cast<std::size_t>(t.l) * np + t.m) * np + t.n] += t.c;

    std::mt19937 rng(1);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    std::vector<double> a(static_cast<std::size_t>(np)), f(static_cast<std::size_t>(np)),
        outS(static_cast<std::size_t>(np), 0.0), outD(static_cast<std::size_t>(np), 0.0);
    for (double& v : a) v = u(rng);
    for (double& v : f) v = u(rng);

    const double tDense = timeIt([&] {
      for (int l = 0; l < np; ++l) {
        double s = 0.0;
        const double* row = dense.data() + static_cast<std::size_t>(l) * np * np;
        for (int m = 0; m < np; ++m)
          for (int n = 0; n < np; ++n)
            s += row[static_cast<std::size_t>(m) * np + n] * a[static_cast<std::size_t>(m)] *
                 f[static_cast<std::size_t>(n)];
        outD[static_cast<std::size_t>(l)] = s;
      }
    });
    const double tSparse = timeIt([&] {
      for (double& v : outS) v = 0.0;
      tape.execute(a, f, outS, 1.0);
    });

    // Same answer?
    double diff = 0.0;
    for (int l = 0; l < np; ++l)
      diff = std::max(diff, std::abs(outS[static_cast<std::size_t>(l)] -
                                     outD[static_cast<std::size_t>(l)]));
    const double fill = static_cast<double>(tape.terms.size()) /
                        (static_cast<double>(np) * np * np);
    std::printf("%-14s %6d %10zu %12.2f %12.2f %9.1f %9.4f%s\n", spec.name().c_str(), np,
                tape.terms.size(), tDense * 1e6, tSparse * 1e6, tDense / tSparse, fill,
                diff < 1e-10 ? "" : "  [MISMATCH]");
  }
  std::printf("\nThe modal orthonormal basis leaves only a few %% of C_lmn nonzero;\n"
              "executing the nonzeros directly is what makes 5-D/6-D affordable (Sec. II).\n");
  return 0;
}
