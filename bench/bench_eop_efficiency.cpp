// E4 — Section III efficiency comparison: degrees of freedom updated per
// second per core, Eop = #DOFs / (#cores * t_wall), for the complete
// forward-Euler spatial operator. The paper reports ~1.67e7 DOF/s/core for
// the p2 Serendipity basis in 5-D (2X3V), and ~8e6 DOF/s/core when the
// Fokker-Planck collision operator is included (collisions roughly double
// the cost); the Navier-Stokes comparator of reference [12] sits at ~1e7.
//
// Two execution paths are reported side by side: the scalar one-cell-at-a-
// time kernels (batch_lanes = 1) and the SIMD-batched AoSoA path
// (batch_lanes = auto, the production default). The two are bitwise
// identical in results (tests/test_batch.cpp), so the speedup column is a
// pure execution-efficiency measurement. Columns: collisionless, +BGK
// relaxation, +LBO (the drag+diffusion operator class the paper's
// collision figure actually refers to).
// Machine-readable output: BENCH_eop.json, archived by CI and guarded by
// tools/compare_bench_eop.py against bench/baselines/.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>

#include "collisions/bgk.hpp"
#include "collisions/lbo.hpp"
#include "dg/vlasov.hpp"
#include "obs/profiler.hpp"

namespace {

using namespace vdg;
using Clock = std::chrono::steady_clock;

}  // namespace

int main() {
  const BasisSpec spec{2, 3, 2, BasisFamily::Serendipity};
  const Grid cg = Grid::make({4, 4}, {0.0, 0.0}, {1.0, 1.0});
  const Grid vg = Grid::make({6, 6, 6}, {-4.0, -4.0, -4.0}, {4.0, 4.0, 4.0});
  const Grid pg = Grid::phase(cg, vg);
  const int np = basisFor(spec).numModes();
  const int npc = basisFor(spec.configSpec()).numModes();

  VlasovParams params;
  VlasovUpdater up(spec, pg, params);
  BgkUpdater bgk(spec, pg, BgkParams{1.0, 1.0});
  LboUpdater lbo(spec, pg, LboParams{1.0, 1.0, true});
  // Eop is a *per-core* figure: pin the updaters to serial execution so
  // the default ThreadExec pool cannot inflate it on multi-core hosts.
  up.setExecutor(nullptr);
  bgk.setExecutor(nullptr);
  lbo.setExecutor(nullptr);

  Field f(pg, np), rhs(pg, np);
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  forEachCell(pg, [&](const MultiIndex& idx) {
    for (int l = 0; l < np; ++l) f.at(idx)[l] = u(rng) * (l ? 0.05 : 1.0);
  });
  Field em(cg, kEmComps * npc);
  forEachCell(cg, [&](const MultiIndex& idx) {
    for (int k = 0; k < em.ncomp(); ++k) em.at(idx)[k] = 0.1 * u(rng);
  });
  for (int d = 0; d < spec.cdim; ++d) {
    f.syncPeriodic(d);
    em.syncPeriodic(d);
  }

  const double dofs = static_cast<double>(pg.numCells()) * np;

  // Best-of-N timing: the minimum single-rep wall time estimates the
  // undisturbed throughput of the path (mean-of-reps folds scheduler and
  // frequency noise into the comparison, which the baseline guard would
  // then trip on).
  const auto time = [&](auto fn) {
    fn();  // warm-up
    double best = 1e300, total = 0.0;
    int reps = 0;
    while (total < 0.6 && reps < 30) {
      const auto t0 = Clock::now();
      fn();
      const double t = std::chrono::duration<double>(Clock::now() - t0).count();
      best = best < t ? best : t;
      total += t;
      ++reps;
    }
    return best;
  };

  // Scalar path (pre-batching code path, kept bit-identical).
  up.setBatchLanes(1);
  lbo.setBatchLanes(1);
  const double tVlasovScalar = time([&] { up.advance(f, &em, rhs); });
  const double tWithLboScalar = time([&] {
    up.advance(f, &em, rhs);
    lbo.advance(f, rhs);
  });

  // Batched AoSoA path (auto lane count, the production default;
  // VDG_BENCH_BATCH_LANES overrides for lane-count experiments).
  int laneReq = 0;
  if (const char* e = std::getenv("VDG_BENCH_BATCH_LANES")) laneReq = std::atoi(e);
  up.setBatchLanes(laneReq);
  lbo.setBatchLanes(laneReq);
  const int lanes = up.activeBatchLanes();
  const double tVlasov = time([&] { up.advance(f, &em, rhs); });
  const double tWithBgk = time([&] {
    up.advance(f, &em, rhs);
    bgk.advance(f, rhs);
  });
  const double tWithLbo = time([&] {
    up.advance(f, &em, rhs);
    lbo.advance(f, rhs);
  });

  // Instrumented-on column: the same batched Vlasov advance inside an
  // enabled (non-tracing) profiler zone. tools/compare_bench_eop.py gates
  // CI on this staying within 2% of the uninstrumented Eop — the
  // "profiling costs nothing you'd notice" guarantee, measured where it
  // matters (the hot loop) rather than asserted.
  ProfilingSpec pspec;
  pspec.enabled = true;
  Profiler prof(pspec);
  const double tVlasovProfiled = time([&] {
    const ScopedTimer zone(&prof, "vlasov:advance");
    up.advance(f, &em, rhs);
  });

  std::printf("E4: Eop = DOFs updated per second per core (2X3V p2 Serendipity, Np=%d)\n\n", np);
  std::printf("%-38s %12.3e DOF/s/core\n", "Vlasov-Maxwell, scalar kernels", dofs / tVlasovScalar);
  std::printf("%-38s %12.3e DOF/s/core  (B=%d)\n", "Vlasov-Maxwell, batched kernels",
              dofs / tVlasov, lanes);
  std::printf("%-38s %12.2fx\n", "batched / scalar speedup", tVlasovScalar / tVlasov);
  std::printf("%-38s %12.3e DOF/s/core  (overhead %+.2f%%)\n",
              "Vlasov-Maxwell, profiler enabled", dofs / tVlasovProfiled,
              100.0 * (tVlasovProfiled / tVlasov - 1.0));
  std::printf("%-38s %12.3e DOF/s/core\n", "... with BGK collisions", dofs / tWithBgk);
  std::printf("%-38s %12.3e DOF/s/core\n", "... with LBO (drag+diffusion)", dofs / tWithLbo);
  std::printf("%-38s %12.2f\n", "BGK cost multiplier", tWithBgk / tVlasov);
  std::printf("%-38s %12.2f\n", "LBO cost multiplier", tWithLbo / tVlasov);
  std::printf("\npaper Sec. III: ~1.67e7 DOF/s/core (collisionless), ~8e6 with collisions\n");
  std::printf("(absolute numbers are hardware-dependent; the reproducible shape is Eop\n");
  std::printf(" within order 1e6-1e8 on one core and a ~2x collision cost multiplier)\n");

  if (FILE* js = std::fopen("BENCH_eop.json", "w")) {
    std::fprintf(js, "{\n  \"bench\": \"eop_efficiency\",\n");
    std::fprintf(js, "  \"setup\": {\"spec\": \"2x3v_p2_ser\", \"num_phase_modes\": %d, "
                     "\"dofs\": %.0f, \"batch_lanes\": %d},\n",
                 np, dofs, lanes);
    std::fprintf(js, "  \"eop\": {\"vlasov\": %.6e, \"vlasov_scalar\": %.6e, "
                     "\"vlasov_profiled\": %.6e, "
                     "\"vlasov_bgk\": %.6e, \"vlasov_lbo\": %.6e, "
                     "\"vlasov_lbo_scalar\": %.6e},\n",
                 dofs / tVlasov, dofs / tVlasovScalar, dofs / tVlasovProfiled,
                 dofs / tWithBgk, dofs / tWithLbo, dofs / tWithLboScalar);
    std::fprintf(js, "  \"speedup\": {\"vlasov_batched_over_scalar\": %.4f},\n",
                 tVlasovScalar / tVlasov);
    std::fprintf(js, "  \"cost_multiplier\": {\"bgk\": %.4f, \"lbo\": %.4f}\n}\n",
                 tWithBgk / tVlasov, tWithLbo / tVlasov);
    std::fclose(js);
    std::printf("wrote BENCH_eop.json\n");
  }
  return 0;
}
