// Ensemble packing throughput: the same batch of small Vlasov-Poisson
// members swept over rank-pool sizes {1, 2, 4, ...}, measuring campaign
// wall time and members/sec. The claim under test is the engine's reason
// to exist: packing independent members over the rank pool multiplies
// throughput (near-linearly until the pool outruns the cores), and the
// async IO thread keeps the stepping threads from ever blocking on disk —
// Stats::producerStallSeconds, reported per sweep point, is the measured
// time any stepping thread spent waiting for queue space (zero in a
// healthy campaign).
//
// Gate (exit nonzero on violation), applied only when the host has >= 4
// hardware threads: the 4-rank campaign must beat the serial (1-rank) one
// by > 1.5x members/sec. On smaller hosts the sweep still runs and
// reports, but speedup is not physically available and is not gated.
//
// Emits BENCH_ensemble.json: one record per pool size with wall time,
// members/sec, speedup vs serial, pack factor, and the IO-thread stats.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <string>
#include <thread>
#include <vector>

#include "ensemble/engine.hpp"

using Clock = std::chrono::steady_clock;

namespace {

using namespace vdg;
constexpr double kPi = std::numbers::pi;

// A small Landau-damping member (16x16 p2 to t = 2): big enough that
// stepping dominates scheduling, small enough that the batch finishes in
// bench time. All members share one (grid, p, BC) Poisson signature, so
// the engine factors exactly one LU for the whole batch.
ScenarioSpec smallMember(int i, int poolTag) {
  const double k = 0.5, amp = 1e-3 * (1.0 + 0.1 * i);  // distinct but equal-cost
  ScenarioSpec spec;
  spec.name = "m" + std::to_string(i) + "_r" + std::to_string(poolTag);
  spec.params["amp"] = amp;
  spec.confGrid = Grid::make({16}, {0.0}, {2.0 * kPi / k});
  spec.polyOrder = 2;
  spec.cflFrac = 0.8;
  SpeciesConfig elc;
  elc.name = "elc";
  elc.charge = -1.0;
  elc.mass = 1.0;
  elc.velGrid = Grid::make({16}, {-6.0}, {6.0});
  elc.init = [=](const double* z) {
    return (1.0 + amp * std::cos(k * z[0])) * std::exp(-0.5 * z[1] * z[1]) /
           std::sqrt(2.0 * kPi);
  };
  spec.species.push_back(elc);
  spec.field = ScenarioSpec::FieldKind::Poisson;
  spec.backgroundCharge = 1.0;
  spec.tEnd = 2.0;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vdg;
  const int hw = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  int numMembers = argc > 1 ? std::atoi(argv[1]) : 8;
  numMembers = std::max(1, numMembers);

  std::vector<int> pools = {1};
  for (int r = 2; r <= std::min(numMembers, std::max(hw, 4)); r *= 2) pools.push_back(r);

  std::FILE* json = std::fopen("BENCH_ensemble.json", "w");
  if (json) std::fprintf(json, "[\n");
  std::printf("ensemble throughput: %d members, hardware threads %d\n", numMembers, hw);
  std::printf("%6s %8s %12s %10s %8s %12s %12s\n", "ranks", "pack", "wall [s]", "mem/s",
              "speedup", "stall [s]", "io [s]");

  double serialRate = 0.0, rate4 = 0.0;
  bool first = true;
  for (int R : pools) {
    std::vector<ScenarioSpec> specs;
    for (int i = 0; i < numMembers; ++i) specs.push_back(smallMember(i, R));

    EnsembleOptions opts;
    opts.numRanks = R;
    opts.outputDir = "bench_ensemble_out";
    opts.sampleEvery = 1;
    opts.finalCheckpoint = true;
    Ensemble ens(std::move(specs), opts);

    const auto t0 = Clock::now();
    ens.run();
    const double wall = std::chrono::duration<double>(Clock::now() - t0).count();

    if (ens.numFailed() > 0) {
      std::printf("FAIL: %d members failed at %d ranks\n", ens.numFailed(), R);
      if (json) std::fclose(json);
      return 1;
    }
    const double rate = numMembers / wall;
    if (R == 1) serialRate = rate;
    if (R == 4) rate4 = rate;
    const AsyncWriter::Stats& io = ens.ioStats();
    std::printf("%6d %8.2f %12.3f %10.2f %7.2fx %12.4f %12.4f\n", R,
                ens.schedule().packFactor(), wall, rate, rate / serialRate,
                io.producerStallSeconds, io.ioSeconds);
    if (json)
      std::fprintf(json,
                   "%s  {\"ranks\": %d, \"members\": %d, \"packFactor\": %.3f, "
                   "\"wall_s\": %.4f, \"members_per_s\": %.3f, \"speedup\": %.3f, "
                   "\"sharedPoissonGroups\": %d, \"ioLines\": %llu, "
                   "\"ioCheckpointFields\": %llu, \"io_s\": %.4f, "
                   "\"producerStall_s\": %.5f, \"maxQueueDepth\": %zu}",
                   first ? "" : ",\n", R, numMembers, ens.schedule().packFactor(), wall,
                   rate, rate / serialRate, ens.numSharedPoissonGroups(),
                   static_cast<unsigned long long>(io.linesWritten),
                   static_cast<unsigned long long>(io.checkpointFieldsWritten),
                   io.ioSeconds, io.producerStallSeconds, io.maxQueueDepth);
    first = false;
  }
  if (json) {
    std::fprintf(json, "\n]\n");
    std::fclose(json);
    std::printf("written to BENCH_ensemble.json\n");
  }

  if (hw >= 4 && rate4 > 0.0) {
    const double speedup = rate4 / serialRate;
    if (speedup < 1.5) {
      std::printf("FAIL: 4-rank packing speedup %.2fx < 1.5x over serial\n", speedup);
      return 1;
    }
    std::printf("PASS: 4-rank packing speedup %.2fx (gate > 1.5x)\n", speedup);
  } else {
    std::printf("speedup gate skipped (%d hardware threads < 4)\n", hw);
  }
  return 0;
}
