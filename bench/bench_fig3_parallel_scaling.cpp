// E5 — Fig. 3: weak and strong parallel scaling of the modal DG algorithm.
//
// The paper ran a 6-D two-species Vlasov-Maxwell problem on up to 4096 KNL
// nodes of Theta. This container has one core and no interconnect, so this
// harness reproduces Fig. 3 in two documented layers:
//   1. a real rank-parallel runtime with the paper's decomposition —
//      DistributedSimulation runs the *full* Updater pipeline (Vlasov +
//      Maxwell + current coupling) per rank over a CartDecomp, with packed
//      ThreadComm halo exchange, verified bit-identical to the serial
//      solver in tests/test_distributed.cpp. Its measured compute/halo
//      split and halo bytes calibrate
//   2. an analytic machine model (3-D block decomposition, latency +
//      bandwidth halo cost, on-node starvation efficiency) that projects
//      the normalized time-per-step curves to 4096 nodes.
//
// Machine-readable output: BENCH_fig3.json (per-point ranks / compute
// seconds / halo seconds / halo fraction, the calibrated model, and the
// projected weak/strong curves) so the perf trajectory is tracked in CI.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <numbers>
#include <vector>

#include "app/distributed.hpp"
#include "app/simulation.hpp"
#include "par/comm_model.hpp"
#include "par/communicator.hpp"

namespace {
using namespace vdg;
constexpr double kPi = std::numbers::pi;

/// A 2x2v Weibel-type two-beam Vlasov-Maxwell setup: the full coupled
/// pipeline (streaming + acceleration + Maxwell + current coupling), the
/// per-rank work the paper's scaling study times.
Simulation::Builder weibelBuilder(int nx, int ny, int nv) {
  const double u0 = 0.4, vt = 0.3, amp = 1e-3;
  auto b = Simulation::builder();
  b.confGrid(Grid::make({nx, ny}, {0.0, 0.0}, {2.0 * kPi, 2.0 * kPi}))
      .basis(1, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0,
               Grid::make({nv, nv}, {-1.5, -1.5}, {1.5, 1.5}),
               [=](const double* z) {
                 const double x = z[0], y = z[1], vx = z[2], vy = z[3];
                 const double pert = 1.0 + amp * (std::cos(x) + std::cos(y));
                 const double beams = std::exp(-0.5 * (vx - u0) * (vx - u0) / (vt * vt)) +
                                      std::exp(-0.5 * (vx + u0) * (vx + u0) / (vt * vt));
                 return pert * 0.5 * beams * std::exp(-0.5 * vy * vy / (vt * vt)) /
                        (2.0 * kPi * vt * vt);
               })
      .field(MaxwellParams{})
      .initField([=](const double* x, double* em) {
        for (int c = 0; c < 8; ++c) em[c] = 0.0;
        em[5] = amp * (std::cos(x[0]) + std::sin(x[1]));
      })
      .backgroundCharge(1.0)
      .cflFrac(0.8)
      .threads(1);
  return b;
}

struct MeasuredPoint {
  int ranks = 1;
  double computeSec = 0.0;
  double haloSec = 0.0;
  double haloFraction = 0.0;
  std::uint64_t haloBytes = 0;
  std::uint64_t haloCells = 0;
};

/// A 1x1v Landau pipeline for the overlap study: the decomposition is
/// necessarily 1-D along x, so *every* ghost slab rides the overlapped
/// dim-0 split-phase exchange — no blocking higher-dim sync dilutes the
/// measurement the way the 2-D decomposition of the scaling problem would.
Simulation::Builder landauOverlapBuilder(int confCells, int velCells) {
  const double k = 0.5;
  auto b = Simulation::builder();
  b.confGrid(Grid::make({confCells}, {0.0}, {2.0 * kPi / k}))
      .basis(2, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({velCells}, {-6.0}, {6.0}),
               [k](const double* z) {
                 const double x = z[0], v = z[1];
                 return (1.0 + 0.05 * std::cos(k * x)) / std::sqrt(2.0 * kPi) *
                        std::exp(-0.5 * v * v);
               })
      .field(MaxwellParams{})
      .initField([k](const double* x, double* em) {
        for (int c = 0; c < 8; ++c) em[c] = 0.0;
        em[0] = -0.05 * std::sin(k * x[0]) / k;
      })
      .stepper(Stepper::SspRk3)
      .cflFrac(0.8)
      .threads(1);
  return b;
}

struct OverlapPoint {
  int ranks = 1;
  double latencySec = 0.0;  ///< emulated wire latency per slab
  double blockingWaitSec = 0.0;
  double overlappedWaitSec = 0.0;
  double computeSec = 0.0;
  double measured = 0.0;  // fraction of the blocking receive-wait hidden
  double modeled = 0.0;   // fraction hideable: min(1, compute / wait)
};

/// Aggregate receive-wait across all ranks (the halo:wait zone only:
/// pack/post/unpack are work the overlap cannot hide by design). Reads the
/// per-rank profilers' leaf zones, which carry the exact timestamps of the
/// HaloStats waitSec bucket — the two agree to summation rounding.
double totalWaitSec(DistributedSimulation& d) {
  double w = 0.0;
  for (int r = 0; r < d.numRanks(); ++r) w += d.rankProfiler(r).zoneSeconds("halo:wait");
  return w;
}

}  // namespace

int main() {
  // ---- layer 1: the real rank runtime, full pipeline, measured split.
  const int nx = 16, ny = 8, nv = 8, steps = 3;
  const int rk3Syncs = 3;  // ghost exchanges (RHS evaluations) per SSP-RK3 step
  auto builder = weibelBuilder(nx, ny, nv);
  const std::size_t phaseCells =
      static_cast<std::size_t>(nx) * ny * nv * nv;
  std::printf("E5: parallel scaling (paper Fig. 3)\n");
  std::printf("rank runtime: 2X2V p1 Vlasov-Maxwell pipeline, %zu phase cells, %d RK3 steps\n",
              phaseCells, steps);

  std::vector<MeasuredPoint> points;
  std::printf("\n%-8s %14s %14s %12s %14s\n", "ranks", "compute[s]", "halo[s]", "halo frac",
              "halo bytes");
  for (int ranks : {1, 2, 4}) {
    DistributedSimulation dist(builder, ranks);
    for (int s = 0; s < steps; ++s) dist.step();
    MeasuredPoint p;
    p.ranks = ranks;
    p.computeSec = dist.computeSeconds();
    p.haloSec = dist.haloSeconds();
    p.haloFraction = p.haloSec / (p.computeSec + p.haloSec);
    p.haloBytes = dist.haloBytes();
    p.haloCells = dist.haloCells();
    points.push_back(p);
    std::printf("%-8d %14.4f %14.4f %12.3f %14llu\n", ranks, p.computeSec, p.haloSec,
                p.haloFraction, static_cast<unsigned long long>(p.haloBytes));
  }
  std::printf("(single core: thread ranks verify correctness and calibrate the model;\n"
              " wall-clock speedup is not observable here)\n");

  // ---- calibration from the measured full-pipeline run.
  // Per-cell cost of one RHS evaluation (the model's forward-Euler unit),
  // from the 1-rank point (no halo traffic, pure pipeline compute).
  const double perCellSeconds =
      points[0].computeSec / (static_cast<double>(steps * rk3Syncs) *
                              static_cast<double>(phaseCells) /
                              static_cast<double>(points[0].ranks));
  // Ghost payload per exchanged phase cell, from measured traffic of the
  // multi-rank runs; scaled by the RK3 sync count so the model's
  // one-exchange-per-step structure carries the real per-step traffic.
  std::uint64_t mBytes = 0, mCells = 0;
  for (const MeasuredPoint& p : points) {
    mBytes += p.haloBytes;
    mCells += p.haloCells;
  }
  const double bytesPerGhostCell = mCells ? static_cast<double>(mBytes) / mCells : 512.0;

  MachineModel m;
  m.perCellSeconds = perCellSeconds;
  m.bytesPerCell = bytesPerGhostCell * rk3Syncs * 2.0;  // two species in the paper's runs
  m.latency = 3e-6;
  m.bandwidth = 1.5e9;   // effective per-node halo bandwidth
  m.starveCells = 16384; // on-node starvation scale (ILP/occupancy loss)
  std::printf("\ncalibration: perCellSeconds=%.3e  bytes/ghost-cell=%.1f (x%d syncs, x2 species)\n",
              m.perCellSeconds, bytesPerGhostCell, rk3Syncs);

  // ---- layer 2: projected Fig. 3 curves with KNL-class parameters.
  std::printf("\nweak scaling (paper: base 8^3 x 16^3 per node, config res doubles per 8x nodes;\n");
  std::printf("finding: <= ~25%% of step cost in halo exchange at 4096 nodes)\n");
  std::printf("%-8s %16s %16s %12s\n", "nodes", "t/step (norm)", "efficiency", "halo frac");
  const auto weak = weakScaling(m, {8, 8, 8}, 16 * 16 * 16, {1, 8, 64, 512, 4096});
  for (const auto& p : weak)
    std::printf("%-8d %16.3f %16.3f %12.3f\n", p.nodes, p.timePerStep / weak.front().timePerStep,
                weak.front().timePerStep / p.timePerStep, p.commFraction);

  std::printf("\nstrong scaling (paper: 32^3 x 8^3 fixed, 8 -> 4096 nodes;\n");
  std::printf("finding: ~60x speedup instead of the ideal 512x)\n");
  std::printf("%-8s %16s %16s %12s\n", "nodes", "speedup", "ideal", "halo frac");
  const auto strong = strongScaling(m, {32, 32, 32}, 8 * 8 * 8, {8, 64, 512, 4096});
  for (const auto& p : strong)
    std::printf("%-8d %16.1f %16d %12.3f\n", p.nodes, p.relSpeedup, p.nodes / 8, p.commFraction);

  const bool weakOk = weak.back().timePerStep < 1.5 * weak.front().timePerStep &&
                      weak.back().commFraction < 0.35;
  const bool strongOk =
      strong.back().relSpeedup > 10.0 && strong.back().relSpeedup < 0.5 * 512.0;
  std::printf("\n%s\n", weakOk && strongOk
                            ? "SHAPE OK: near-flat weak scaling, saturating strong scaling"
                            : "SHAPE MISMATCH vs paper Fig. 3");

  // ---- overlap efficiency: split-phase schedule vs blocking schedule.
  // On a timeshared single core, genuine receive-waits are pure scheduler
  // noise, so the measurement injects an emulated wire latency: each
  // posted slab becomes visible to its receiver only L seconds after the
  // post (the sender is NOT slowed — this is in-flight time, exactly what
  // an interconnect adds). The blocking schedule must sit L out in its
  // receive wait; the split-phase schedule computes interior volume terms
  // through it. Measured = the fraction of the blocking receive-wait the
  // overlapped schedule hides (waitSec buckets, summed over ranks).
  // Modeled = the fraction hideable, min(1, compute / wait): the interior
  // work available to run while slabs are in flight. L is calibrated to
  // half the per-rank interior compute per exchange, so full hiding is
  // possible and sleep granularity (~0.1 ms) stays resolvable.
  const int oCells = 32, oVelCells = 64, oSteps = 3;
  auto ob = landauOverlapBuilder(oCells, oVelCells);
  double calibCompute = 0.0;
  {
    DistributedSimulation calib(ob, 1);
    for (int s = 0; s < oSteps; ++s) calib.step();
    calibCompute = calib.computeSeconds();
  }
  std::printf("\noverlapped halo exchange (beginSync -> interior volume -> endSync -> surface;\n"
              " 1x1v Landau p2, %dx%d cells, decomposition purely along x, emulated slab\n"
              " latency calibrated to half the per-rank interior compute per exchange)\n",
              oCells, oVelCells);
  std::printf("%-8s %12s %14s %14s %12s %12s\n", "ranks", "latency[s]", "block wait[s]",
              "ovl wait[s]", "measured", "modeled");
  std::vector<OverlapPoint> opoints;
  for (int ranks : {2, 4, 8, 16}) {
    OverlapPoint p;
    p.ranks = ranks;
    const double interiorPerExchange = calibCompute / (oSteps * rk3Syncs * ranks);
    p.latencySec = std::clamp(0.5 * interiorPerExchange, 1e-4, 5e-3);
    {
      DistributedSimulation blocking(ob, ranks, /*overlapHalo=*/false);
      blocking.comm().setDeliveryLatency(p.latencySec);
      for (int s = 0; s < oSteps; ++s) blocking.step();
      p.blockingWaitSec = totalWaitSec(blocking);
      p.computeSec = blocking.computeSeconds();
    }
    {
      DistributedSimulation overlapped(ob, ranks, /*overlapHalo=*/true);
      overlapped.comm().setDeliveryLatency(p.latencySec);
      for (int s = 0; s < oSteps; ++s) overlapped.step();
      p.overlappedWaitSec = totalWaitSec(overlapped);
    }
    p.measured = p.blockingWaitSec > 0.0
                     ? std::clamp(1.0 - p.overlappedWaitSec / p.blockingWaitSec, 0.0, 1.0)
                     : 0.0;
    p.modeled = std::min(1.0, p.computeSec / std::max(p.blockingWaitSec, 1e-12));
    opoints.push_back(p);
    std::printf("%-8d %12.5f %14.5f %14.5f %12.3f %12.3f\n", ranks, p.latencySec,
                p.blockingWaitSec, p.overlappedWaitSec, p.measured, p.modeled);
  }
  // The acceptance gate rides the 8-rank point: the overlapped schedule
  // must hide at least 60% of what the model says is hideable. Recorded
  // in the JSON (overlap.ok) rather than the exit code: on a one-core CI
  // host the thread ranks timeshare, so the trend is tracked, not gated.
  bool overlapOk = true;
  for (const OverlapPoint& p : opoints)
    if (p.ranks == 8) overlapOk = p.measured >= 0.6 * p.modeled;
  std::printf("%s\n", overlapOk
                          ? "OVERLAP OK: measured efficiency >= 60% of modeled at 8 ranks"
                          : "OVERLAP BELOW MODEL: <60% of modeled hidden at 8 ranks");

  // ---- machine-readable trajectory record.
  if (FILE* js = std::fopen("BENCH_fig3.json", "w")) {
    std::fprintf(js, "{\n  \"bench\": \"fig3_parallel_scaling\",\n");
    std::fprintf(js, "  \"setup\": {\"conf\": [%d, %d], \"vel\": [%d, %d], \"steps\": %d, "
                     "\"phase_cells\": %zu},\n",
                 nx, ny, nv, nv, steps, phaseCells);
    std::fprintf(js, "  \"points\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      const MeasuredPoint& p = points[i];
      std::fprintf(js,
                   "    {\"ranks\": %d, \"compute_seconds\": %.6e, \"halo_seconds\": %.6e, "
                   "\"halo_fraction\": %.4f, \"halo_bytes\": %llu, \"halo_cells\": %llu}%s\n",
                   p.ranks, p.computeSec, p.haloSec, p.haloFraction,
                   static_cast<unsigned long long>(p.haloBytes),
                   static_cast<unsigned long long>(p.haloCells),
                   i + 1 < points.size() ? "," : "");
    }
    std::fprintf(js, "  ],\n");
    std::fprintf(js,
                 "  \"model\": {\"per_cell_seconds\": %.6e, \"bytes_per_cell\": %.1f, "
                 "\"latency\": %.2e, \"bandwidth\": %.2e, \"starve_cells\": %.0f},\n",
                 m.perCellSeconds, m.bytesPerCell, m.latency, m.bandwidth, m.starveCells);
    const auto writeCurve = [js](const char* name, const std::vector<ScalingPoint>& pts,
                                 bool last) {
      std::fprintf(js, "  \"%s\": [\n", name);
      for (std::size_t i = 0; i < pts.size(); ++i)
        std::fprintf(js,
                     "    {\"nodes\": %d, \"time_per_step\": %.6e, \"comm_fraction\": %.4f, "
                     "\"rel_speedup\": %.2f}%s\n",
                     pts[i].nodes, pts[i].timePerStep, pts[i].commFraction, pts[i].relSpeedup,
                     i + 1 < pts.size() ? "," : "");
      std::fprintf(js, "  ]%s\n", last ? "" : ",");
    };
    writeCurve("weak_scaling", weak, false);
    writeCurve("strong_scaling", strong, false);
    std::fprintf(js, "  \"overlap\": {\n");
    std::fprintf(js, "    \"setup\": {\"problem\": \"landau_1x1v_p2\", \"conf_cells\": %d, "
                     "\"vel_cells\": %d, \"steps\": %d},\n",
                 oCells, oVelCells, oSteps);
    std::fprintf(js, "    \"points\": [\n");
    for (std::size_t i = 0; i < opoints.size(); ++i) {
      const OverlapPoint& p = opoints[i];
      std::fprintf(js,
                   "      {\"ranks\": %d, \"latency_seconds\": %.6e, "
                   "\"blocking_wait_seconds\": %.6e, \"overlapped_wait_seconds\": %.6e, "
                   "\"compute_seconds\": %.6e, \"measured_efficiency\": %.4f, "
                   "\"modeled_efficiency\": %.4f}%s\n",
                   p.ranks, p.latencySec, p.blockingWaitSec, p.overlappedWaitSec, p.computeSec,
                   p.measured, p.modeled, i + 1 < opoints.size() ? "," : "");
    }
    std::fprintf(js, "    ],\n");
    std::fprintf(js, "    \"ok\": %s\n  },\n", overlapOk ? "true" : "false");
    std::fprintf(js, "  \"shape_ok\": %s\n}\n", weakOk && strongOk ? "true" : "false");
    std::fclose(js);
    std::printf("wrote BENCH_fig3.json\n");
  }
  return 0;
}
