// E5 — Fig. 3: weak and strong parallel scaling of the modal DG algorithm.
//
// The paper ran a 6-D two-species Vlasov-Maxwell problem on up to 4096 KNL
// nodes of Theta. This container has one core and no interconnect, so this
// harness reproduces Fig. 3 in two documented layers (see DESIGN.md):
//   1. a real thread-backed rank runtime with the paper's decomposition
//      (config-space slabs + halo exchange), verified bit-compatible with
//      the serial solver in tests, whose measured compute/halo split
//      calibrates
//   2. an analytic machine model (3-D block decomposition, latency +
//      bandwidth halo cost, on-node starvation efficiency) that projects
//      the normalized time-per-step curves to 4096 nodes.

#include <chrono>
#include <cstdio>
#include <random>

#include "par/comm_model.hpp"
#include "par/thread_exec.hpp"

namespace {
using namespace vdg;
using Clock = std::chrono::steady_clock;
}  // namespace

int main() {
  // ---- layer 1: measured per-cell cost + halo cost on the rank runtime.
  const BasisSpec spec{3, 3, 1, BasisFamily::Serendipity};  // paper: 3X3V p1, Np=64
  const Grid cg = Grid::make({8, 4, 4}, {0, 0, 0}, {1, 1, 1});
  const Grid vg = Grid::make({4, 4, 4}, {-4, -4, -4}, {4, 4, 4});
  const Grid pg = Grid::phase(cg, vg);
  const int np = basisFor(spec).numModes();
  std::printf("E5: parallel scaling (paper Fig. 3)\n");
  std::printf("rank runtime: 3X3V p1 Serendipity, Np=%d, %zu phase cells\n", np, pg.numCells());

  Field f0(pg, np);
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  forEachCell(pg, [&](const MultiIndex& idx) { f0.at(idx)[0] = u(rng); });

  double perCellSeconds = 1e-6;
  std::printf("\n%-8s %14s %14s %12s\n", "ranks", "compute[s]", "halo[s]", "halo frac");
  for (int ranks : {1, 2, 4}) {
    DistributedVlasov dist(spec, pg, ranks, VlasovParams{});
    dist.scatter(f0);
    dist.run(3, 1e-6);
    const double comp = dist.computeSeconds(), comm = dist.commSeconds();
    std::printf("%-8d %14.4f %14.4f %12.3f\n", ranks, comp, comm, comm / (comp + comm));
    if (ranks == 1) perCellSeconds = comp / 3.0 / static_cast<double>(pg.numCells());
  }
  std::printf("(single core: thread ranks verify correctness and calibrate the model;\n"
              " wall-clock speedup is not observable here)\n");

  // ---- layer 2: projected Fig. 3 curves with KNL-class parameters.
  MachineModel m;
  m.perCellSeconds = perCellSeconds;
  m.bytesPerCell = 8.0 * np * 2;  // two species
  m.latency = 3e-6;
  m.bandwidth = 1.5e9;   // effective per-node halo bandwidth
  m.starveCells = 16384; // on-node starvation scale (ILP/occupancy loss)

  std::printf("\nweak scaling (paper: base 8^3 x 16^3 per node, config res doubles per 8x nodes;\n");
  std::printf("finding: <= ~25%% of step cost in halo exchange at 4096 nodes)\n");
  std::printf("%-8s %16s %16s %12s\n", "nodes", "t/step (norm)", "efficiency", "halo frac");
  const auto weak = weakScaling(m, {8, 8, 8}, 16 * 16 * 16, {1, 8, 64, 512, 4096});
  for (const auto& p : weak)
    std::printf("%-8d %16.3f %16.3f %12.3f\n", p.nodes, p.timePerStep / weak.front().timePerStep,
                weak.front().timePerStep / p.timePerStep, p.commFraction);

  std::printf("\nstrong scaling (paper: 32^3 x 8^3 fixed, 8 -> 4096 nodes;\n");
  std::printf("finding: ~60x speedup instead of the ideal 512x)\n");
  std::printf("%-8s %16s %16s %12s\n", "nodes", "speedup", "ideal", "halo frac");
  const auto strong = strongScaling(m, {32, 32, 32}, 8 * 8 * 8, {8, 64, 512, 4096});
  for (const auto& p : strong)
    std::printf("%-8d %16.1f %16d %12.3f\n", p.nodes, p.relSpeedup, p.nodes / 8, p.commFraction);

  const bool weakOk = weak.back().timePerStep < 1.5 * weak.front().timePerStep &&
                      weak.back().commFraction < 0.35;
  const bool strongOk =
      strong.back().relSpeedup > 10.0 && strong.back().relSpeedup < 0.5 * 512.0;
  std::printf("\n%s\n", weakOk && strongOk
                            ? "SHAPE OK: near-flat weak scaling, saturating strong scaling"
                            : "SHAPE MISMATCH vs paper Fig. 3");
  return 0;
}
