// Cost profile of the electrostatic field path across both backends. The
// 1x direct solve is a one-time dense LU factorization of the (bordered,
// block-tridiagonal periodic) global operator plus an O(n^2)
// back-substitution per RHS stage; the multi-dimensional path is the
// matrix-free block-Jacobi PCG/BiCGStab backend whose per-solve cost is
// iterations x one recovery-stencil sweep. This bench pins both against
// the per-stage cost drivers of a kinetic run so the "elliptic solve is
// the cheap part" claim stays measured, not assumed. Emits
// BENCH_poisson.json; each record carries dim/method/iterations columns
// so the CI guard can watch Krylov iteration counts as well as wall time.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "dg/poisson.hpp"

using Clock = std::chrono::steady_clock;

namespace {

const char* methodName(vdg::PoissonMethod m) {
  return m == vdg::PoissonMethod::DirectLu ? "lu" : "cg";
}

}  // namespace

int main() {
  using namespace vdg;
  std::FILE* json = std::fopen("BENCH_poisson.json", "w");
  if (json) std::fprintf(json, "[\n");
  std::printf("%4s %6s %3s %7s %8s %14s %14s %6s\n", "dim", "cells", "p", "method", "n",
              "setup [ms]", "solve [us]", "iters");
  bool first = true;

  const double L = 12.566370614359172;  // 4*pi
  struct Case {
    int dim;
    int cells;  // per dimension
    PoissonMethod method;
  };
  const Case cases[] = {
      // 1x: dense bordered LU (the historical fast path) and the
      // matrix-free Krylov backend on the same grids, so the crossover
      // between O(n^2) back-substitution and O(iters * n) sweeps is in
      // the table rather than folklore.
      {1, 32, PoissonMethod::DirectLu},
      {1, 128, PoissonMethod::DirectLu},
      {1, 512, PoissonMethod::DirectLu},
      {1, 512, PoissonMethod::ConjGrad},
      // 2x: Krylov only — the dense operator would be (cells^2*np)^2.
      {2, 16, PoissonMethod::ConjGrad},
      {2, 32, PoissonMethod::ConjGrad},
      {2, 64, PoissonMethod::ConjGrad},
  };

  for (int p : {1, 2}) {
    for (const Case& c : cases) {
      const BasisSpec spec{c.dim, 0, p, BasisFamily::Serendipity};
      const Grid g = c.dim == 1 ? Grid::make({c.cells}, {0.0}, {L})
                                : Grid::make({c.cells, c.cells}, {0.0, 0.0}, {L, L});
      PoissonParams params;
      params.method = c.method;

      const auto t0 = Clock::now();
      const PoissonSolver solver(spec, g, params);
      const double setupMs =
          1e3 * std::chrono::duration<double>(Clock::now() - t0).count();

      std::vector<double> rho(solver.numUnknowns()), phi(solver.numUnknowns());
      for (std::size_t i = 0; i < rho.size(); ++i)
        rho[i] = std::sin(0.01 * static_cast<double>(i));
      // Warm once, then time repeated solves (LU: back-substitution;
      // Krylov: full iteration to the default tolerance).
      PoissonSolver::SolveStats stats = solver.solve(rho, phi, nullptr);
      const int reps = c.dim == 1 ? 200 : 20;
      const auto t1 = Clock::now();
      for (int r = 0; r < reps; ++r) stats = solver.solve(rho, phi, nullptr);
      const double solveUs =
          1e6 * std::chrono::duration<double>(Clock::now() - t1).count() / reps;

      std::printf("%4d %6d %3d %7s %8zu %14.2f %14.2f %6d\n", c.dim, c.cells, p,
                  methodName(solver.method()), solver.numUnknowns(), setupMs, solveUs,
                  stats.iterations);
      if (json)
        std::fprintf(json,
                     "%s  {\"dim\": %d, \"cells\": %d, \"polyOrder\": %d, "
                     "\"method\": \"%s\", \"unknowns\": %zu, \"setup_ms\": %.3f, "
                     "\"solve_us\": %.3f, \"iterations\": %d}",
                     first ? "" : ",\n", c.dim, c.cells, p, methodName(solver.method()),
                     solver.numUnknowns(), setupMs, solveUs, stats.iterations);
      first = false;
    }
  }
  if (json) {
    std::fprintf(json, "\n]\n");
    std::fclose(json);
    std::printf("written to BENCH_poisson.json\n");
  }
  return 0;
}
