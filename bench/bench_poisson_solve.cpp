// Cost profile of the electrostatic field path: the Poisson direct solve
// is a one-time dense LU factorization of the (bordered, block-tridiagonal
// periodic) global operator plus an O(n^2) back-substitution per RHS
// stage. This bench pins both against the per-stage cost drivers of a
// kinetic run so the "elliptic solve is the cheap part" claim stays
// measured, not assumed. Emits BENCH_poisson.json.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "dg/poisson.hpp"

using Clock = std::chrono::steady_clock;

int main() {
  using namespace vdg;
  std::FILE* json = std::fopen("BENCH_poisson.json", "w");
  if (json) std::fprintf(json, "[\n");
  std::printf("%6s %3s %8s %14s %14s\n", "cells", "p", "n", "setup [ms]", "solve [us]");
  bool first = true;
  for (int p : {1, 2}) {
    for (int N : {32, 128, 512}) {
      const BasisSpec spec{1, 0, p, BasisFamily::Serendipity};
      const Grid g = Grid::make({N}, {0.0}, {12.566370614359172});

      const auto t0 = Clock::now();
      const PoissonSolver solver(spec, g, PoissonParams{});
      const double setupMs =
          1e3 * std::chrono::duration<double>(Clock::now() - t0).count();

      std::vector<double> rho(solver.numUnknowns()), phi(solver.numUnknowns());
      for (std::size_t i = 0; i < rho.size(); ++i)
        rho[i] = std::sin(0.01 * static_cast<double>(i));
      // Warm once, then time repeated back-substitutions.
      solver.solve(rho, phi);
      const int reps = 200;
      const auto t1 = Clock::now();
      for (int r = 0; r < reps; ++r) solver.solve(rho, phi);
      const double solveUs =
          1e6 * std::chrono::duration<double>(Clock::now() - t1).count() / reps;

      std::printf("%6d %3d %8zu %14.2f %14.2f\n", N, p, solver.numUnknowns(), setupMs,
                  solveUs);
      if (json)
        std::fprintf(json,
                     "%s  {\"cells\": %d, \"polyOrder\": %d, \"unknowns\": %zu, "
                     "\"setup_ms\": %.3f, \"solve_us\": %.3f}",
                     first ? "" : ",\n", N, p, solver.numUnknowns(), setupMs, solveUs);
      first = false;
    }
  }
  if (json) {
    std::fprintf(json, "\n]\n");
    std::fclose(json);
    std::printf("written to BENCH_poisson.json\n");
  }
  return 0;
}
