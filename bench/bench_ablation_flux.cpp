// A2 — ablation of the numerical flux choice (paper Eq. 5 / Section II):
// with central fluxes the semi-discrete scheme conserves total
// particle+field energy exactly (only the RK3 time error remains); with
// penalty (local Lax-Friedrichs) fluxes a controlled, strictly dissipative
// error appears. In neither case may energy *grow* — growth is the
// signature of the aliasing instability the scheme eliminates.

#include <cmath>
#include <cstdio>
#include <numbers>

#include "app/vlasov_maxwell_app.hpp"

namespace {
using namespace vdg;
constexpr double kPi = std::numbers::pi;
}  // namespace

int main() {
  std::printf("A2: flux choice vs energy conservation (nonlinear Landau problem)\n\n");
  std::printf("%-22s %16s %16s %14s\n", "flux (Vlasov/Maxwell)", "rel dE (t=5)", "rel dM (t=5)",
              "L2(f) change");

  for (const FluxType flux : {FluxType::Central, FluxType::Penalty}) {
    VlasovMaxwellParams params;
    const double k = 0.5;
    params.confGrid = Grid::make({12}, {0.0}, {2.0 * kPi / k});
    params.polyOrder = 2;
    params.family = BasisFamily::Serendipity;
    params.field.flux = flux;
    params.cflFrac = 0.5;
    const double amp = 0.1;  // nonlinear amplitude: aliasing would show here
    params.initField = [k, amp](const double* x, double* em) {
      for (int c = 0; c < 8; ++c) em[c] = 0.0;
      em[0] = -amp * std::sin(k * x[0]) / k;
    };
    SpeciesParams elc;
    elc.charge = -1.0;
    elc.mass = 1.0;
    elc.flux = flux;
    elc.velGrid = Grid::make({24}, {-6.0}, {6.0});
    elc.init = [=](const double* z) {
      return (1.0 + amp * std::cos(k * z[0])) * std::exp(-0.5 * z[1] * z[1]) /
             std::sqrt(2.0 * kPi);
    };
    VlasovMaxwellApp app(params, {elc});

    const auto e0 = app.energetics();
    const double l20 = app.distfL2(0);
    while (app.time() < 5.0) app.step();
    const auto e1 = app.energetics();
    const double l21 = app.distfL2(0);

    const double dE = (e1.totalEnergy() - e0.totalEnergy()) / e0.totalEnergy();
    const double dM = (e1.mass[0] - e0.mass[0]) / e0.mass[0];
    std::printf("%-22s %16.3e %16.3e %14.3e\n",
                flux == FluxType::Central ? "central" : "penalty (LLF)", dE, dM,
                (l21 - l20) / l20);
  }
  std::printf("\nexpected shape: central -> |dE| at the RK3 time-error level and L2 ~\n"
              "conserved; penalty -> small *negative* dE and L2 decay; mass exact for\n"
              "both; never energy growth (that would be the aliasing instability).\n");
  return 0;
}
