// E6 — Fig. 5 / Section V: counter-streaming electron beams in 2X2V phase
// space driving two-stream / filamentation / oblique instabilities. The
// paper shows the electron distribution function at the initial condition,
// at nonlinear saturation (peak electromagnetic energy), and at the end of
// the run, plus the conversion of beam kinetic energy into field and
// thermal energy.
//
// Reductions vs the paper (documented in DESIGN.md): smaller grid, p1
// basis, faster beams (to shorten the growth phase on one core), and a
// static neutralizing proton background instead of an evolved proton
// species. The reproducible shape: seeded electromagnetic energy grows
// exponentially by orders of magnitude, saturates, and the distribution
// develops strong velocity-space structure — with total energy bounded
// (no aliasing instability).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <random>
#include <vector>

#include "app/vlasov_maxwell_app.hpp"
#include "io/field_io.hpp"

namespace {
using namespace vdg;
constexpr double kPi = std::numbers::pi;
}  // namespace

int main() {
  // Electron beams +-u0 x^ with thermal spread vt; box of one filamentation
  // wavelength in each direction (k c / wpe = 1).
  const double u0 = 0.4, vt = 0.1, amp = 1e-4;

  VlasovMaxwellParams params;
  params.confGrid = Grid::make({6, 6}, {0.0, 0.0}, {2.0 * kPi, 2.0 * kPi});
  params.polyOrder = 1;
  params.family = BasisFamily::Serendipity;
  params.cflFrac = 0.8;
  params.backgroundCharge = 1.0;  // static neutralizing protons
  params.initField = [&](const double* x, double* em) {
    for (int c = 0; c < 8; ++c) em[c] = 0.0;
    em[5] = amp * (std::cos(x[0]) + std::sin(x[1]));  // seed Bz
  };

  SpeciesParams elc;
  elc.name = "elc";
  elc.charge = -1.0;
  elc.mass = 1.0;
  elc.velGrid = Grid::make({16, 16}, {-1.0, -1.0}, {1.0, 1.0});
  elc.init = [&](const double* z) {
    const double x = z[0], y = z[1], vx = z[2], vy = z[3];
    const double pert = 1.0 + amp * (std::cos(x) + std::cos(y) + std::cos(x + y));
    const double beamP = std::exp(-0.5 * (vx - u0) * (vx - u0) / (vt * vt));
    const double beamM = std::exp(-0.5 * (vx + u0) * (vx + u0) / (vt * vt));
    const double perp = std::exp(-0.5 * vy * vy / (vt * vt));
    return pert * 0.5 * (beamP + beamM) * perp / (2.0 * kPi * vt * vt);
  };

  VlasovMaxwellApp app(params, {elc});

  std::printf("E6: 2X2V counter-streaming beams (paper Fig. 5 scenario, reduced)\n");
  std::printf("u0=%.2f c, vt=%.2f c, grid %dx%d x %dx%d, p%d Serendipity (%d DOF/cell)\n\n", u0,
              vt, 6, 6, 16, 16, params.polyOrder, app.phaseBasis(0).numModes());

  writeField("fig5_f_initial.bin", app.distf(0), app.time());
  CsvWriter csv("fig5_energetics.csv", "t,electric,magnetic,kinetic,total");

  const auto e0 = app.energetics();
  std::printf("%-8s %12s %12s %12s %14s\n", "t", "E-energy", "B-energy", "kinetic", "total");

  double peakB = 0.0, tPeak = 0.0;
  bool wroteSaturation = false;
  const double tEnd = 52.0;
  int step = 0;
  while (app.time() < tEnd) {
    app.step();
    ++step;
    if (step % 5 == 0 || app.time() >= tEnd) {
      const auto e = app.energetics();
      csv.row({e.time, e.electricEnergy, e.magneticEnergy, e.particleEnergy[0], e.totalEnergy()});
      if (step % 40 == 0)
        std::printf("%-8.2f %12.4e %12.4e %12.6f %14.8f\n", e.time, e.electricEnergy,
                    e.magneticEnergy, e.particleEnergy[0], e.totalEnergy());
      if (e.magneticEnergy > peakB) {
        peakB = e.magneticEnergy;
        tPeak = e.time;
      } else if (!wroteSaturation && peakB > 1e3 * e0.magneticEnergy &&
                 e.magneticEnergy < 0.95 * peakB) {
        writeField("fig5_f_saturation.bin", app.distf(0), app.time());
        wroteSaturation = true;
      }
    }
  }
  writeField("fig5_f_final.bin", app.distf(0), app.time());

  const auto e1 = app.energetics();
  const double growth = peakB / std::max(e0.magneticEnergy, 1e-300);
  std::printf("\nseed B energy %.3e -> peak %.3e at t=%.1f (growth x%.1e)\n",
              e0.magneticEnergy, peakB, tPeak, growth);
  std::printf("kinetic energy: %.6f -> %.6f (conversion to fields + heat)\n",
              e0.particleEnergy[0], e1.particleEnergy[0]);
  std::printf("total energy drift: %.3e (relative)\n",
              std::abs(e1.totalEnergy() - e0.totalEnergy()) / e0.totalEnergy());
  std::printf("distribution slices written: fig5_f_{initial,%ssaturation,final}.bin\n",
              wroteSaturation ? "" : "(no) ");
  const bool ok = growth > 1e3 && std::isfinite(e1.totalEnergy()) &&
                  std::abs(e1.totalEnergy() - e0.totalEnergy()) < 0.05 * e0.totalEnergy();
  std::printf("%s\n", ok ? "SHAPE OK: instability growth -> saturation with bounded energy"
                         : "SHAPE MISMATCH: expected growth and bounded energy");
  return ok ? 0 : 1;
}
