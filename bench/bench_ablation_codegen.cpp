// A3 — ablation of the code-generation step (the paper's Section IV
// software methodology): executing the exactly-integrated tensors through
// pre-generated, fully unrolled, constant-folded C++ kernels (Gkeyll's
// Maxima workflow; kernels/gen/ here) versus interpreting the same sparse
// tapes at runtime. Both produce identical right-hand sides (tested in
// test_kernels); the difference is pure code-generation payoff — the
// "compiler can aggressively optimize the expressions" argument of Sec. II.

#include <chrono>
#include <cstdio>
#include <random>

#include "dg/vlasov.hpp"

namespace {
using namespace vdg;
using Clock = std::chrono::steady_clock;

double timePerCell(const VlasovUpdater& up, const Field& f, const Field* em, Field& rhs,
                   std::size_t cells) {
  up.advance(f, em, rhs);
  const auto t0 = Clock::now();
  int reps = 0;
  double el = 0.0;
  while (el < 0.3 && reps < 50) {
    up.advance(f, em, rhs);
    ++reps;
    el = std::chrono::duration<double>(Clock::now() - t0).count();
  }
  return el / reps / static_cast<double>(cells) * 1e6;  // us per cell
}
}  // namespace

int main() {
  std::printf("A3: generated+compiled kernels vs runtime tape interpretation\n");
  std::printf("    (gen = scalar generated kernels; batched = AoSoA lane-loop variants)\n\n");
  std::printf("%-14s %6s %14s %14s %15s %9s %9s\n", "basis", "Np", "tape[us/cell]",
              "gen[us/cell]", "batch[us/cell]", "gen/tape", "bat/gen");

  const BasisSpec specs[] = {
      {1, 1, 2, BasisFamily::Serendipity}, {1, 2, 2, BasisFamily::Serendipity},
      {2, 2, 1, BasisFamily::Serendipity}, {2, 2, 2, BasisFamily::Serendipity},
      {2, 3, 1, BasisFamily::Serendipity}, {2, 3, 2, BasisFamily::Serendipity},
  };
  for (const BasisSpec& spec : specs) {
    Grid g;
    g.ndim = spec.ndim();
    for (int d = 0; d < g.ndim; ++d) {
      g.cells[static_cast<std::size_t>(d)] = spec.ndim() >= 5 ? 3 : 4;
      g.lower[static_cast<std::size_t>(d)] = d < spec.cdim ? 0.0 : -4.0;
      g.upper[static_cast<std::size_t>(d)] = d < spec.cdim ? 6.28 : 4.0;
    }
    const int np = basisFor(spec).numModes();
    const int npc = basisFor(spec.configSpec()).numModes();
    Grid cg;
    cg.ndim = spec.cdim;
    for (int d = 0; d < spec.cdim; ++d) {
      cg.cells[static_cast<std::size_t>(d)] = g.cells[static_cast<std::size_t>(d)];
      cg.lower[static_cast<std::size_t>(d)] = g.lower[static_cast<std::size_t>(d)];
      cg.upper[static_cast<std::size_t>(d)] = g.upper[static_cast<std::size_t>(d)];
    }

    VlasovParams params;
    VlasovUpdater fast(spec, g, params);
    VlasovUpdater slow(spec, g, params);
    slow.disableCompiledKernels();
    // Single-core ablation: pin both variants serial so the pool cannot
    // mask the codegen speedup being measured.
    fast.setExecutor(nullptr);
    slow.setExecutor(nullptr);
    if (!fast.usesCompiledKernels()) {
      std::printf("%-14s %6d %14s %14s %15s %9s %9s\n", spec.name().c_str(), np, "-", "-", "-",
                  "(no gen)", "-");
      continue;
    }

    std::mt19937 rng(1);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    Field f(g, np), em(cg, kEmComps * npc), rhs(g, np);
    forEachCell(g, [&](const MultiIndex& idx) {
      for (int l = 0; l < np; ++l) f.at(idx)[l] = u(rng);
    });
    forEachCell(cg, [&](const MultiIndex& idx) {
      for (int k = 0; k < em.ncomp(); ++k) em.at(idx)[k] = u(rng);
    });
    for (int d = 0; d < spec.cdim; ++d) {
      f.syncPeriodic(d);
      em.syncPeriodic(d);
    }

    const double tTape = timePerCell(slow, f, &em, rhs, g.numCells());
    fast.setBatchLanes(1);
    const double tGen = timePerCell(fast, f, &em, rhs, g.numCells());
    fast.setBatchLanes(0);
    const double tBatch = timePerCell(fast, f, &em, rhs, g.numCells());
    std::printf("%-14s %6d %14.2f %14.2f %15.2f %9.1f %9.2f\n", spec.name().c_str(), np, tTape,
                tGen, tBatch, tTape / tGen, tGen / tBatch);
  }
  std::printf("\nThe generated kernels are the deployment form of the paper (Fig. 1);\n"
              "tape interpretation is the fallback for unregistered bases. The batched\n"
              "column blocks cells into AoSoA lanes (bitwise identical results).\n");
  return 0;
}
