// E2 — Fig. 2: cost of the per-cell kernel update versus degrees of freedom
// Np, for the streaming-only term (left panel) and the full streaming +
// acceleration update (right panel), across dimensionalities 1X1V..3X3V and
// the three basis families. The paper's claims to check:
//   - the total update scales sub-quadratically with Np (at worst ~Np^2),
//   - the scaling is robust to the basis family,
//   - the quoted cost covers the volume plus *all* surface integrals.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "dg/vlasov.hpp"
#include "quad/quad_vlasov.hpp"

namespace {

using namespace vdg;
using Clock = std::chrono::steady_clock;

Grid benchGrid(const BasisSpec& spec, std::size_t targetCells) {
  // Pick per-dimension cell counts so the total stays near targetCells.
  Grid g;
  g.ndim = spec.ndim();
  int per = std::max(2, static_cast<int>(std::lround(
                            std::pow(static_cast<double>(targetCells), 1.0 / g.ndim))));
  for (int d = 0; d < g.ndim; ++d) {
    g.cells[static_cast<std::size_t>(d)] = per;
    const bool conf = d < spec.cdim;
    g.lower[static_cast<std::size_t>(d)] = conf ? 0.0 : -4.0;
    g.upper[static_cast<std::size_t>(d)] = conf ? 6.283185307179586 : 4.0;
  }
  return g;
}

Field randomField(const Grid& g, int ncomp, unsigned seed) {
  Field f(g, ncomp);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  forEachCell(g, [&](const MultiIndex& idx) {
    double* c = f.at(idx);
    for (int k = 0; k < ncomp; ++k) c[k] = u(rng);
  });
  return f;
}

struct Sample {
  std::string name;
  int np;
  double nsStream, nsTotal;
};

double timePerCell(const VlasovUpdater& up, const Field& f, const Field* em, Field& rhs,
                   std::size_t cells) {
  // Warm up once, then repeat until >= 0.2 s of samples.
  up.advance(f, em, rhs);
  int reps = 0;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  while (elapsed < 0.2 && reps < 50) {
    up.advance(f, em, rhs);
    ++reps;
    elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  }
  return elapsed / reps / static_cast<double>(cells) * 1e9;  // ns per cell
}

}  // namespace

int main() {
  std::printf("E2: kernel update cost vs DOFs per cell (paper Fig. 2)\n");
  std::printf("Times are full forward-Euler updates (volume + ALL surface terms) per cell.\n\n");
  std::printf("%-14s %6s %14s %14s\n", "basis", "Np", "stream[ns/cell]", "total[ns/cell]");

  std::vector<Sample> samples;
  const BasisFamily fams[] = {BasisFamily::MaximalOrder, BasisFamily::Serendipity,
                              BasisFamily::Tensor};
  struct DimCase {
    int cdim, vdim;
  };
  const DimCase dims[] = {{1, 1}, {1, 2}, {1, 3}, {2, 2}, {2, 3}, {3, 3}};

  for (const DimCase dc : dims) {
    for (int p = 1; p <= 2; ++p) {
      for (const BasisFamily fam : fams) {
        const BasisSpec spec{dc.cdim, dc.vdim, p, fam};
        const int np = basisFor(spec).numModes();
        if (np > 260) continue;  // cap setup cost (tensor p2 in 5-D/6-D)
        const Grid g = benchGrid(spec, spec.ndim() >= 5 ? 256 : 1024);
        const std::size_t cells = g.numCells();
        VlasovParams params;
        VlasovUpdater up(spec, g, params);
        // Interpret tapes for every point so the scaling fit compares like
        // with like (compiled kernels exist only for registered specs; the
        // codegen speedup is measured separately in bench_ablation_codegen).
        // Serial execution: the fit models single-core cost per cell.
        up.disableCompiledKernels();
        up.setExecutor(nullptr);
        Field f = randomField(g, np, 1);
        for (int d = 0; d < spec.cdim; ++d) f.syncPeriodic(d);
        Grid cg;
        cg.ndim = spec.cdim;
        for (int d = 0; d < spec.cdim; ++d) {
          cg.cells[static_cast<std::size_t>(d)] = g.cells[static_cast<std::size_t>(d)];
          cg.lower[static_cast<std::size_t>(d)] = g.lower[static_cast<std::size_t>(d)];
          cg.upper[static_cast<std::size_t>(d)] = g.upper[static_cast<std::size_t>(d)];
        }
        Field em = randomField(cg, kEmComps * basisFor(spec.configSpec()).numModes(), 2);
        for (int d = 0; d < spec.cdim; ++d) em.syncPeriodic(d);
        Field rhs(g, np);

        const double nsStream = timePerCell(up, f, nullptr, rhs, cells);
        const double nsTotal = timePerCell(up, f, &em, rhs, cells);
        std::printf("%-14s %6d %14.1f %14.1f\n", spec.name().c_str(), np, nsStream, nsTotal);
        samples.push_back({spec.name(), np, nsStream, nsTotal});
      }
    }
  }

  // Log-log slope of total cost vs Np (pooled across all dims/families,
  // as in the paper's figure): expect at worst ~quadratic.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const Sample& s : samples) {
    const double x = std::log(static_cast<double>(s.np));
    const double y = std::log(s.nsTotal);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double n = static_cast<double>(samples.size());
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);

  double sxs = 0, sys = 0, sxxs = 0, sxys = 0;
  for (const Sample& s : samples) {
    const double x = std::log(static_cast<double>(s.np));
    const double y = std::log(s.nsStream);
    sxs += x;
    sys += y;
    sxxs += x * x;
    sxys += x * y;
  }
  const double slopeS = (n * sxys - sxs * sys) / (n * sxxs - sxs * sxs);

  std::printf("\nfitted scaling: streaming ~ Np^%.2f, total ~ Np^%.2f\n", slopeS, slope);
  std::printf("paper Fig. 2: total update scales at worst ~Np^2 (sub-quadratic in most of\n"
              "the range), independent of basis family and of dimensionality.\n");
  std::printf("%s\n", slope < 2.3 ? "SHAPE OK: sub-quadratic-to-quadratic scaling reproduced"
                                  : "SHAPE MISMATCH: scaling steeper than the paper");
  return 0;
}
