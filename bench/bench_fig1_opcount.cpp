// E1 — Fig. 1 and Section III op-count claim: the modal (alias-free,
// matrix-free, quadrature-free) kernels use far fewer multiplications than
// the alias-free quadrature/dense-matrix baseline. The paper quotes ~70
// multiplications for the 1X2V p1 volume streaming kernel versus ~250 for
// the quadrature version of the same update.

#include <cstdio>

#include "quad/quad_vlasov.hpp"
#include "tensors/emit.hpp"
#include "tensors/vlasov_tensors.hpp"

int main() {
  using namespace vdg;
  std::printf("E1: operation counts, modal sparse tapes vs quadrature/dense baseline\n");
  std::printf("(paper Fig. 1: ~70 multiplications for the 1X2V p1 volume streaming kernel;\n");
  std::printf(" paper Sec. III: ~250 for the alias-free nodal/quadrature equivalent)\n\n");

  const BasisSpec fig1{1, 2, 1, BasisFamily::Tensor};
  const EmittedKernel k = emitStreamingVolumeKernel(fig1);
  std::printf("emitted volume streaming kernel %s: %zu multiplications, %zu adds\n",
              fig1.name().c_str(), k.multiplies, k.adds);

  // Quadrature version of the same volume term: interpolate f to the
  // quadrature points (Nq x Np), pointwise multiply by v, project back
  // (Np x Nq), per configuration direction.
  {
    const Basis& b = basisFor(fig1);
    const int np = b.numModes();
    const int nq1 = (3 * fig1.polyOrder + 2 + 1) / 2;
    int nq = 1;
    for (int d = 0; d < fig1.ndim(); ++d) nq *= nq1;
    const std::size_t quadMults =
        static_cast<std::size_t>(np) * nq  // interpolate f
        + static_cast<std::size_t>(nq)     // pointwise v*f
        + static_cast<std::size_t>(np) * nq;  // project back
    std::printf("quadrature volume streaming equivalent: %zu multiplications (Np=%d, Nq=%d)\n\n",
                quadMults, np, nq);
  }

  std::printf("%-14s %6s %12s %12s %8s\n", "basis", "Np", "modal-mults", "quad-mults", "ratio");
  const BasisSpec specs[] = {
      {1, 1, 1, BasisFamily::Tensor},      {1, 1, 2, BasisFamily::Serendipity},
      {1, 2, 1, BasisFamily::Tensor},      {1, 2, 2, BasisFamily::Serendipity},
      {1, 3, 1, BasisFamily::Serendipity}, {2, 2, 1, BasisFamily::Serendipity},
      {2, 3, 1, BasisFamily::Serendipity}, {2, 3, 2, BasisFamily::Serendipity},
  };
  for (const BasisSpec& s : specs) {
    const VlasovKernelSet& ks = vlasovKernels(s);
    const Grid dummy = [&] {
      Grid g;
      g.ndim = s.ndim();
      for (int d = 0; d < g.ndim; ++d) {
        g.cells[static_cast<std::size_t>(d)] = 2;
        g.lower[static_cast<std::size_t>(d)] = 0.0;
        g.upper[static_cast<std::size_t>(d)] = 1.0;
      }
      return g;
    }();
    VlasovParams vp;
    const QuadVlasovUpdater quad(s, dummy, vp);
    const std::size_t mm = ks.updateMultiplyCount();
    const std::size_t qm = quad.updateMultiplyCount();
    std::printf("%-14s %6d %12zu %12zu %8.1f\n", s.name().c_str(), ks.numPhaseModes, mm, qm,
                static_cast<double>(qm) / static_cast<double>(mm));
  }
  std::printf("\nShape check vs paper: the modal kernel needs several-fold fewer\n"
              "multiplications at p1 and the advantage grows with Np (Sec. III).\n");
  return 0;
}
