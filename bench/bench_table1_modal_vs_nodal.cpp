// E3 — Table I: full-cost comparison of the alias-free modal (matrix-free,
// quadrature-free) algorithm against the alias-free quadrature/dense-matrix
// baseline (the cost structure of the nodal scheme + Eigen of Juno et al.
// 2018), on the paper's configuration: 2X3V, polynomial order 2,
// Serendipity basis (112 DOF/cell), TWO species (electron + proton)
// Vlasov-Maxwell with a 3-stage SSP-RK3 step.
//
// The paper's grid is 16^2 x 16^3 on a Macbook; this container gets a
// reduced grid (the comparison is per-step cost on identical grids, so the
// ratio — the paper's ~16-17x — is the reproducible quantity).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <random>
#include <type_traits>

#include "dg/maxwell.hpp"
#include "dg/moments.hpp"
#include "dg/vlasov.hpp"
#include "quad/quad_vlasov.hpp"

namespace {

using namespace vdg;
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct StepTimes {
  double total = 0.0;
  double vlasov = 0.0;
};

/// One SSP-RK3 step of the two-species Vlasov-Maxwell system, timing the
/// Vlasov solves separately (as Table I does). `Solver` is either the modal
/// or the quadrature updater.
template <typename Solver>
StepTimes timeStep(const BasisSpec& spec, const Grid& pg, const Grid& cg, int nStages = 3) {
  const int np = basisFor(spec).numModes();
  const int npc = basisFor(spec.configSpec()).numModes();

  VlasovParams elcP, ionP;
  elcP.charge = -1.0;
  elcP.mass = 1.0;
  ionP.charge = 1.0;
  ionP.mass = 1836.0;
  Solver elc(spec, pg, elcP);
  Solver ion(spec, pg, ionP);
  // Modal-vs-nodal is a single-core cost comparison (Table I): keep the
  // modal updater serial so the default ThreadExec pool cannot bias it
  // against the (serial) quadrature updater.
  if constexpr (std::is_same_v<Solver, VlasovUpdater>) {
    elc.setExecutor(nullptr);
    ion.setExecutor(nullptr);
  }
  const MaxwellUpdater mx(spec.configSpec(), cg, MaxwellParams{});
  const MomentUpdater mom(spec, pg);

  Field fe(pg, np), fi(pg, np), em(cg, kEmComps * npc);
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  forEachCell(pg, [&](const MultiIndex& idx) {
    fe.at(idx)[0] = u(rng);
    fi.at(idx)[0] = u(rng);
  });
  forEachCell(cg, [&](const MultiIndex& idx) {
    for (int k = 0; k < em.ncomp(); ++k) em.at(idx)[k] = 0.1 * u(rng);
  });

  Field rhsE(pg, np), rhsI(pg, np), rhsEm(cg, kEmComps * npc);
  Field cur(cg, 3 * npc);

  StepTimes t;
  const auto tStep0 = Clock::now();
  for (int stage = 0; stage < nStages; ++stage) {
    for (int d = 0; d < spec.cdim; ++d) {
      fe.syncPeriodic(d);
      fi.syncPeriodic(d);
      em.syncPeriodic(d);
    }
    const auto tv0 = Clock::now();
    elc.advance(fe, &em, rhsE);
    ion.advance(fi, &em, rhsI);
    t.vlasov += secondsSince(tv0);

    mx.advance(em, rhsEm);
    cur.setZero();
    mom.accumulateCurrent(fe, elcP.charge, cur);
    mom.accumulateCurrent(fi, ionP.charge, cur);
    mx.addCurrentSource(cur, rhsEm);

    // Stage accumulation (forward-Euler shape; the RK3 combine cost is the
    // same data movement the paper's accumulation step has).
    const double dt = 1e-6;
    fe.axpy(dt, rhsE);
    fi.axpy(dt, rhsI);
    em.axpy(dt, rhsEm);
  }
  t.total = secondsSince(tStep0);
  return t;
}

}  // namespace

int main() {
  const BasisSpec spec{2, 3, 2, BasisFamily::Serendipity};
  const Grid cg = Grid::make({4, 4}, {0.0, 0.0}, {1.0, 1.0});
  const Grid vg = Grid::make({6, 6, 6}, {-4.0, -4.0, -4.0}, {4.0, 4.0, 4.0});
  const Grid pg = Grid::phase(cg, vg);

  std::printf("E3: Table I — modal vs quadrature/dense baseline\n");
  std::printf("setup: 2X3V, p2 Serendipity (%d DOF/cell), two species, SSP-RK3,\n",
              basisFor(spec).numModes());
  std::printf("grid %dx%d x %dx%dx%d = %zu phase cells (paper: 16^2 x 16^3)\n\n", cg.cells[0],
              cg.cells[1], vg.cells[0], vg.cells[1], vg.cells[2], pg.numCells());

  std::printf("timing modal step...\n");
  const StepTimes modal = timeStep<VlasovUpdater>(spec, pg, cg);
  std::printf("timing quadrature/dense step (this is the slow one)...\n");
  const StepTimes nodal = timeStep<QuadVlasovUpdater>(spec, pg, cg);

  std::printf("\n%-34s %14s %14s\n", "", "total s/step", "Vlasov s/step");
  std::printf("%-34s %14.3f %14.3f\n", "quadrature/dense (nodal-equiv)", nodal.total,
              nodal.vlasov);
  std::printf("%-34s %14.3f %14.3f\n", "modal (alias/matrix/quad-free)", modal.total,
              modal.vlasov);
  std::printf("%-34s %14.1f %14.1f\n", "reduction factor", nodal.total / modal.total,
              nodal.vlasov / modal.vlasov);
  std::printf("\npaper Table I: total reduction ~16x, Vlasov-only reduction ~17x\n");
  const double r = nodal.vlasov / modal.vlasov;
  std::printf("%s\n", (r > 5.0) ? "SHAPE OK: order-of-magnitude speedup of the modal scheme"
                                : "SHAPE MISMATCH: modal speedup below expectations");
  return 0;
}
