#!/usr/bin/env python3
"""Guard the Eop efficiency benchmark against regressions.

Compares a freshly produced BENCH_eop.json against the checked-in
baseline (bench/baselines/BENCH_eop.baseline.json) and fails (exit 1)
when either

  * the batched Vlasov Eop throughput regressed more than --tolerance
    (default 15%) below the baseline, or
  * the batched path fell below the scalar path measured in the same
    run — the batched kernels must never be a pessimization, or
  * the profiler-enabled Vlasov Eop (eop.vlasov_profiled, present in
    current files once bench_eop grew the instrumented column) fell more
    than --max-overhead (default 2%) below the uninstrumented Eop of the
    same run — enabled instrumentation must stay in the noise.

Absolute Eop numbers are hardware-dependent, so CI runners should
refresh the baseline when the fleet changes; the scalar-vs-batched
ordering check is hardware-independent.

Usage: tools/compare_bench_eop.py CURRENT.json [--baseline PATH]
       [--tolerance 0.15]

Exit codes: 0 ok, 1 regression, 2 missing/unreadable input file,
3 malformed JSON schema (missing key).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_BASELINE = pathlib.Path(__file__).resolve().parent.parent / "bench" / "baselines" / (
    "BENCH_eop.baseline.json"
)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", type=pathlib.Path, help="BENCH_eop.json from this run")
    ap.add_argument("--baseline", type=pathlib.Path, default=DEFAULT_BASELINE)
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional regression of batched Vlasov Eop vs baseline",
    )
    ap.add_argument(
        "--max-overhead",
        type=float,
        default=0.02,
        help="allowed fractional Eop loss with the profiler enabled (same run)",
    )
    args = ap.parse_args()

    # Actionable one-line failures instead of raw tracebacks: a missing
    # file (fresh runner without a baseline, bench that never ran) exits 2,
    # a schema drift (key renamed/removed) exits 3.
    def load(path: pathlib.Path, label: str) -> dict:
        try:
            return json.loads(path.read_text())
        except OSError as e:
            print(
                f"compare_bench_eop: cannot read {label} '{path}': {e.strerror or e} "
                f"(did the benchmark run / is the baseline checked in?)",
                file=sys.stderr,
            )
            raise SystemExit(2)
        except json.JSONDecodeError as e:
            print(
                f"compare_bench_eop: {label} '{path}' is not valid JSON: {e}",
                file=sys.stderr,
            )
            raise SystemExit(2)

    def pick(doc: dict, path: pathlib.Path, *keys: str) -> float:
        node = doc
        for k in keys:
            if not isinstance(node, dict) or k not in node:
                print(
                    f"compare_bench_eop: '{path}' is missing key "
                    f"'{'.'.join(keys)}' — schema drift? regenerate the file "
                    f"with the current bench_eop",
                    file=sys.stderr,
                )
                raise SystemExit(3)
            node = node[k]
        return node

    cur = load(args.current, "current results")
    base = load(args.baseline, "baseline")

    cur_batched = pick(cur, args.current, "eop", "vlasov")
    cur_scalar = pick(cur, args.current, "eop", "vlasov_scalar")
    base_batched = pick(base, args.baseline, "eop", "vlasov")

    failures = []

    floor = base_batched * (1.0 - args.tolerance)
    if cur_batched < floor:
        failures.append(
            f"batched Vlasov Eop regressed: {cur_batched:.3e} < {floor:.3e} "
            f"(baseline {base_batched:.3e}, tolerance {args.tolerance:.0%})"
        )

    if cur_batched < cur_scalar:
        failures.append(
            f"batched path slower than scalar in the same run: "
            f"batched {cur_batched:.3e} < scalar {cur_scalar:.3e}"
        )

    # Same-run instrumentation overhead gate. Conditional on the key so
    # older BENCH_eop.json files (pre-instrumentation schema) still compare
    # cleanly against the new tool.
    cur_profiled = cur.get("eop", {}).get("vlasov_profiled")
    if cur_profiled is not None:
        prof_floor = cur_batched * (1.0 - args.max_overhead)
        if cur_profiled < prof_floor:
            overhead = cur_batched / cur_profiled - 1.0
            failures.append(
                f"profiler-enabled Eop overhead too high: {cur_profiled:.3e} < "
                f"{prof_floor:.3e} ({overhead:.1%} slowdown, allowed "
                f"{args.max_overhead:.0%})"
            )

    speedup = cur_batched / cur_scalar if cur_scalar else float("nan")
    print(f"eop: batched {cur_batched:.3e}  scalar {cur_scalar:.3e}  speedup {speedup:.2f}x")
    if cur_profiled is not None:
        print(f"profiler-enabled {cur_profiled:.3e}  (allowed floor "
              f"{cur_batched * (1.0 - args.max_overhead):.3e})")
    print(f"baseline batched {base_batched:.3e}  (floor {floor:.3e})")

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    print("OK: Eop throughput within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
