#!/usr/bin/env python3
"""Summarize a vdg Chrome trace-event file on the command line.

Reads the trace JSON written by the src/obs layer (VDG_TRACE=out.json, or
DistributedSimulation::writeTrace) and prints, without leaving the
terminal for a trace viewer:

  * the top-N zones by total duration (count, total ms, share of the
    busiest rank's span),
  * the halo fraction: time in halo:* zones over time in step zones,
    per rank and overall — the same split bench_fig3 calibrates from,
  * per-rank imbalance: each rank's step time against the mean, and the
    max/mean ratio (1.00 = perfectly balanced).

Stdlib only (json + argparse): runs anywhere the repo's Python tests run.

Usage: tools/trace_summary.py TRACE.json [--top 10]

Exit codes: 0 ok, 2 missing/unreadable/invalid-JSON input,
3 parseable JSON that is not a Chrome trace-event document.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from collections import defaultdict


def load_events(path: pathlib.Path) -> list:
    try:
        doc = json.loads(path.read_text())
    except OSError as e:
        print(
            f"trace_summary: cannot read '{path}': {e.strerror or e} "
            f"(did the traced run complete?)",
            file=sys.stderr,
        )
        raise SystemExit(2)
    except json.JSONDecodeError as e:
        print(f"trace_summary: '{path}' is not valid JSON: {e}", file=sys.stderr)
        raise SystemExit(2)

    # Chrome accepts both the object form {"traceEvents": [...]} and a bare
    # array; the obs exporter writes the object form.
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
    elif isinstance(doc, list):
        events = doc
    else:
        events = None
    if not isinstance(events, list):
        print(
            f"trace_summary: '{path}' has no traceEvents array — "
            f"not a Chrome trace-event document",
            file=sys.stderr,
        )
        raise SystemExit(3)
    return events


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", type=pathlib.Path, help="Chrome trace-event JSON")
    ap.add_argument("--top", type=int, default=10, help="zones to list (by total time)")
    args = ap.parse_args()

    events = load_events(args.trace)

    names = {}  # (pid, tid) -> thread label, pid -> process label
    zone_total = defaultdict(float)  # name -> total us
    zone_count = defaultdict(int)
    rank_step = defaultdict(float)  # pid -> us inside "step" zones
    rank_halo = defaultdict(float)  # pid -> us inside halo:* zones
    rank_span = defaultdict(float)  # pid -> max(ts + dur) (trace timeline span)
    complete = 0

    for ev in events:
        if not isinstance(ev, dict):
            continue
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                names[ev.get("pid", 0)] = ev.get("args", {}).get("name", "")
            continue
        if ph != "X":
            continue
        try:
            name = ev["name"]
            dur = float(ev["dur"])
            ts = float(ev["ts"])
        except (KeyError, TypeError, ValueError):
            print(
                f"trace_summary: '{args.trace}' has a malformed complete "
                f"event (needs name/ts/dur): {ev!r}",
                file=sys.stderr,
            )
            raise SystemExit(3)
        complete += 1
        pid = ev.get("pid", 0)
        zone_total[name] += dur
        zone_count[name] += 1
        rank_span[pid] = max(rank_span[pid], ts + dur)
        if name == "step":
            rank_step[pid] += dur
        if name.startswith("halo:"):
            rank_halo[pid] += dur

    if complete == 0:
        print(
            f"trace_summary: '{args.trace}' contains no complete ('X') events "
            f"— was tracing enabled (VDG_TRACE / ProfilingSpec::trace)?",
            file=sys.stderr,
        )
        raise SystemExit(3)

    span = max(rank_span.values())
    print(f"{args.trace}: {complete} events, {len(rank_span)} rank track(s), "
          f"span {span / 1e3:.3f} ms")

    print(f"\ntop {min(args.top, len(zone_total))} zones by total time:")
    print(f"  {'zone':<32} {'count':>8} {'total ms':>12} {'% of span':>10}")
    for name in sorted(zone_total, key=zone_total.get, reverse=True)[: args.top]:
        print(f"  {name:<32} {zone_count[name]:>8} {zone_total[name] / 1e3:>12.3f} "
              f"{100.0 * zone_total[name] / span:>9.1f}%")

    halo_all = sum(rank_halo.values())
    step_all = sum(rank_step.values())
    print("\nhalo fraction (halo:* time / step time):")
    if step_all > 0.0:
        for pid in sorted(rank_span):
            label = names.get(pid, f"pid {pid}")
            if rank_step[pid] > 0.0:
                print(f"  {label:<12} {rank_halo[pid] / rank_step[pid]:>8.3f}")
        print(f"  {'overall':<12} {halo_all / step_all:>8.3f}")
    else:
        print("  no step zones in this trace (not a stepper run)")

    if step_all > 0.0 and len(rank_step) > 1:
        steps = [rank_step[pid] for pid in sorted(rank_step)]
        mean = sum(steps) / len(steps)
        print("\nper-rank step time [ms] (imbalance = max/mean):")
        for pid in sorted(rank_step):
            label = names.get(pid, f"pid {pid}")
            print(f"  {label:<12} {rank_step[pid] / 1e3:>12.3f}")
        print(f"  min/mean/max {min(steps) / 1e3:.3f}/{mean / 1e3:.3f}/"
              f"{max(steps) / 1e3:.3f}  imbalance {max(steps) / mean:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
