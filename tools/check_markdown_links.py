#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every tracked-looking *.md file in the repository (skipping build
trees and VCS metadata) for inline links/images `[text](target)` and
reference definitions `[id]: target`, and verifies that every relative
target exists on disk. For links into markdown files with a `#fragment`,
the fragment is checked against the target's headings using GitHub-style
anchor slugs. External schemes (http, https, mailto, ...) are ignored —
this is an *intra-repo* consistency check, meant to be fast, offline and
deterministic for CI (.github/workflows/ci.yml, docs job).

Usage: python3 tools/check_markdown_links.py [repo-root]
Exit status: 0 when all links resolve, 1 otherwise (broken links listed).
"""

import os
import re
import sys

SKIP_DIRS = {".git", ".github", "node_modules"}
SKIP_PREFIXES = ("build",)

# Inline links/images [text](target ...) — target ends at whitespace or ')'.
INLINE_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
# Reference definitions: [id]: target
REFDEF_RE = re.compile(r"^\s*\[[^\]]+\]:\s+<?(\S+?)>?(?:\s+\"[^\"]*\")?\s*$", re.M)
SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.M)
CODE_FENCE_RE = re.compile(r"^(```|~~~).*?^\1\s*$", re.M | re.S)


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith(SKIP_PREFIXES)
        ]
        for name in sorted(filenames):
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def github_slug(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, spaces -> '-'."""
    text = re.sub(r"[`*_~]|\[|\]|\(|\)", "", heading)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path, cache={}):
    if path not in cache:
        try:
            with open(path, encoding="utf-8") as f:
                body = CODE_FENCE_RE.sub("", f.read())
        except OSError:
            body = ""
        slugs = set()
        for heading in HEADING_RE.findall(body):
            slug = github_slug(heading)
            n = 1
            while slug in slugs:  # duplicate headings get -1, -2, ...
                slug = f"{github_slug(heading)}-{n}"
                n += 1
            slugs.add(slug)
        cache[path] = slugs
    return cache[path]


def check_file(path, root):
    broken = []
    with open(path, encoding="utf-8") as f:
        body = f.read()
    # Links inside fenced code blocks are examples, not navigation.
    body = CODE_FENCE_RE.sub("", body)
    targets = INLINE_RE.findall(body) + REFDEF_RE.findall(body)
    for target in targets:
        if SCHEME_RE.match(target) or target.startswith("//"):
            continue  # external
        target, _, fragment = target.partition("#")
        if not target:  # pure in-file anchor
            dest = path
        else:
            base = root if target.startswith("/") else os.path.dirname(path)
            dest = os.path.normpath(os.path.join(base, target.lstrip("/")))
            if not os.path.exists(dest):
                broken.append((target + ("#" + fragment if fragment else ""),
                               "missing file"))
                continue
        if fragment and dest.lower().endswith(".md"):
            if github_slug(fragment) not in anchors_of(dest):
                broken.append((target + "#" + fragment, "missing heading anchor"))
    return broken


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), ".."))
    failures = 0
    checked = 0
    for path in md_files(root):
        checked += 1
        for target, why in check_file(path, root):
            rel = os.path.relpath(path, root)
            print(f"BROKEN {rel}: ({target}) -> {why}")
            failures += 1
    print(f"checked {checked} markdown files: "
          f"{'OK' if failures == 0 else f'{failures} broken link(s)'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
