// vdg_launch: map CartDecomp ranks onto real processes and prove the
// transport carries the simulation bit-exactly.
//
// Two launch shapes behind one command:
//   - under an MPI launcher (mpiexec/mpirun/srun; detected from the
//     launcher's environment *before* MPI_Init, so a non-MPI run never
//     initializes MPI) each process becomes one rank on the MpiComm
//     backend — requires a VDG_HAVE_MPI build;
//   - standalone, it forks --ranks processes wired by a Unix-domain
//     socketpair mesh (ProcessComm) — works on any build, no MPI needed.
//
// Every rank runs the shared conformance battery (app/conformance.hpp):
// its window of each scenario on the real transport, a full serial oracle
// locally, and a bitwise comparison of coefficients, dt sequence, and
// Krylov iteration counts. Exit 0 only if every rank of every scenario is
// identical — this is the executable the CI MPI leg drives through ctest.
//
// Usage:
//   vdg_launch [--ranks N] [--scenario NAME|all] [--steps S] [--no-overlap]
//   mpiexec -n N vdg_launch [--scenario NAME|all] [--steps S] [--no-overlap]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "app/conformance.hpp"
#include "par/mpi_comm.hpp"
#include "par/process_comm.hpp"

#ifdef VDG_HAVE_MPI
#include <mpi.h>
#endif

namespace {

using namespace vdg;

/// True when an MPI launcher started this process (checked before any
/// MPI call: fork-based fallback must never MPI_Init, and an MPI build
/// run directly — no launcher — should use the fork transport too).
bool underMpiLauncher() {
  return std::getenv("OMPI_COMM_WORLD_SIZE") != nullptr ||  // Open MPI
         std::getenv("PMI_SIZE") != nullptr ||              // MPICH/Hydra
         std::getenv("PMIX_RANK") != nullptr ||             // PMIx/Slurm
         std::getenv("MPI_LOCALNRANKS") != nullptr;
}

struct Options {
  int ranks = 2;
  int steps = 3;
  bool overlap = true;
  std::vector<std::string> scenarios = conformanceScenarios();
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--ranks N] [--scenario NAME|all] [--steps S] [--no-overlap]\n"
               "scenarios: all", argv0);
  for (const auto& s : conformanceScenarios()) std::fprintf(stderr, " %s", s.c_str());
  std::fprintf(stderr, "\n");
  return 2;
}

bool verdict(const ConformanceResult& r, int rank, const std::string& scenario) {
  const bool ok = r.identical();
  std::printf("  %-12s rank %d: %s (%zu steps, %.0f coefficient mismatches%s)\n",
              scenario.c_str(), rank, ok ? "OK" : "MISMATCH", r.rank.dts.size(),
              r.mismatches,
              r.rank.krylovIters.empty() ? "" : ", Krylov history checked");
  if (!ok && r.rank.dts != r.oracle.dts)
    std::printf("               rank %d: dt sequence diverged from serial oracle\n", rank);
  if (!ok && r.rank.krylovIters != r.oracle.krylovIters)
    std::printf("               rank %d: Krylov iteration history diverged\n", rank);
  return ok;
}

int runFork(const Options& opt) {
  std::printf("vdg_launch: transport=fork(sockets) ranks=%d steps=%d overlap=%s\n",
              opt.ranks, opt.steps, opt.overlap ? "on" : "off");
  int failures = 0;
  for (const std::string& name : opt.scenarios) {
    const Simulation::Builder builder = conformanceScenario(name);
    CartDecomp decomp;
    try {
      decomp = conformanceDecomp(builder, opt.ranks);
    } catch (const std::exception& e) {
      // Undecomposable (e.g. more ranks than configuration cells): a
      // usage error, not a transport failure.
      std::fprintf(stderr, "%s: %s\n", name.c_str(), e.what());
      return 2;
    }
    const auto outcomes = ProcessGroup::run(
        decomp,
        [&](ProcessComm& pc) {
          return packConformance(
              runConformanceRank(builder, decomp, pc, opt.steps, opt.overlap));
        },
        /*recvTimeoutSec=*/300.0);
    for (int r = 0; r < opt.ranks; ++r) {
      const auto& o = outcomes[static_cast<std::size_t>(r)];
      if (!o.ok) {
        std::printf("  %-12s rank %d: FAILED: %s\n", name.c_str(), r, o.error.c_str());
        ++failures;
        continue;
      }
      if (!verdict(unpackConformance(o.values), r, name)) ++failures;
    }
  }
  std::printf("%s\n", failures == 0 ? "PASS: all ranks bitwise identical to serial oracle"
                                    : "FAIL: transport diverged from serial oracle");
  return failures == 0 ? 0 : 1;
}

#ifdef VDG_HAVE_MPI
int runMpi(int argc, char** argv, const Options& opt) {
  MPI_Init(&argc, &argv);
  int rank = 0, size = 1;
  MPI_Comm_rank(MPI_COMM_WORLD, &rank);
  MPI_Comm_size(MPI_COMM_WORLD, &size);
  if (rank == 0)
    std::printf("vdg_launch: transport=mpi ranks=%d steps=%d overlap=%s\n", size,
                opt.steps, opt.overlap ? "on" : "off");
  int failures = 0;
  for (const std::string& name : opt.scenarios) {
    const Simulation::Builder builder = conformanceScenario(name);
    CartDecomp decomp;
    try {
      decomp = conformanceDecomp(builder, size);
    } catch (const std::exception& e) {
      // Deterministic computation: every rank throws the same way.
      if (rank == 0) std::fprintf(stderr, "%s: %s\n", name.c_str(), e.what());
      MPI_Finalize();
      return 2;
    }
    MpiComm comm(decomp);
    const ConformanceResult res =
        runConformanceRank(builder, decomp, comm, opt.steps, opt.overlap);
    // Rank 0 reports; the reduction makes the verdict collective.
    const double localBad = res.identical() ? 0.0 : 1.0;
    const double totalBad = comm.allReduceSum(localBad);
    if (rank == 0) {
      verdict(res, 0, name);
      if (totalBad > 0.0) {
        std::printf("  %-12s %.0f rank(s) diverged\n", name.c_str(), totalBad);
        ++failures;
      }
    } else if (totalBad > 0.0) {
      ++failures;
    }
  }
  if (rank == 0)
    std::printf("%s\n", failures == 0
                            ? "PASS: all ranks bitwise identical to serial oracle"
                            : "FAIL: transport diverged from serial oracle");
  MPI_Finalize();
  return failures == 0 ? 0 : 1;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--ranks" && i + 1 < argc) {
      opt.ranks = std::atoi(argv[++i]);
    } else if (a == "--steps" && i + 1 < argc) {
      opt.steps = std::atoi(argv[++i]);
    } else if (a == "--scenario" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (name != "all") opt.scenarios = {name};
    } else if (a == "--no-overlap") {
      opt.overlap = false;
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.ranks < 1 || opt.steps < 1) return usage(argv[0]);
  for (const std::string& name : opt.scenarios) {
    bool known = false;
    for (const auto& s : conformanceScenarios()) known = known || s == name;
    if (!known) return usage(argv[0]);
  }

  if (vdg::mpiAvailable() && underMpiLauncher()) {
#ifdef VDG_HAVE_MPI
    return runMpi(argc, argv, opt);
#endif
  }
  return runFork(opt);
}
