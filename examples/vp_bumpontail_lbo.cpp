// Bump-on-tail relaxation under Vlasov-Poisson with Lenard-Bernstein
// (Dougherty) collisions: a warm beam on the tail of a Maxwellian drives
// the bump-on-tail instability electrostatically; the conservative LBO
// operator damps the resonant structures and drags the distribution back
// toward a single Maxwellian while conserving density, momentum and
// energy to machine precision.
//
// Two runs from identical initial conditions:
//   nu = 0     — collisionless: the wave grows out of the perturbation
//                and saturates (plateau formation);
//   nu = 0.05  — collisional: growth is quenched and the free energy of
//                the beam is dissipated.
// Printed per run: peak electric field energy, final-to-initial field
// energy, and the collisional run's moment drifts (machine-zero by the
// LBO conservation correction).
//
// Each run streams its diagnostics through its own TimeSeriesWriter —
// one writer per member, the concurrency contract the ensemble engine
// enforces — so the two series land in vp_bumpontail_collisionless.csv
// and vp_bumpontail_lbo.csv with the standard schema (t, energies,
// moments) instead of a hand-rolled two-column CSV.

#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "app/simulation.hpp"
#include "io/time_series.hpp"

namespace {

vdg::Simulation makeRun(double nu) {
  using namespace vdg;
  constexpr double kPi = std::numbers::pi;
  const double k = 0.3;             // resonant with the beam: vph = w/k ~ ub
  const double delta = 0.1;         // beam density fraction
  const double ub = 4.0, vtb = 0.5; // beam drift / thermal speed
  const double amp = 1e-4;

  auto b = Simulation::builder();
  b.confGrid(Grid::make({16}, {0.0}, {2.0 * kPi / k}))
      .basis(2, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({48}, {-8.0}, {8.0}),
               [=](const double* z) {
                 const double x = z[0], v = z[1];
                 const double core =
                     (1.0 - delta) * std::exp(-0.5 * v * v) / std::sqrt(2.0 * kPi);
                 const double beam = delta *
                                     std::exp(-0.5 * (v - ub) * (v - ub) / (vtb * vtb)) /
                                     std::sqrt(2.0 * kPi * vtb * vtb);
                 return (1.0 + amp * std::cos(k * x)) * (core + beam);
               });
  if (nu > 0.0) b.collisions(LboParams{.collisionFreq = nu});
  b.field(PoissonParams{}).backgroundCharge(1.0).cflFrac(0.8);
  return b.build();
}

}  // namespace

int main() {
  using namespace vdg;
  const double tEnd = 40.0;

  Simulation coll = makeRun(0.0);
  Simulation lbo = makeRun(0.05);
  const auto e0 = lbo.energetics();
  const double eInit = coll.energetics().electricEnergy;

  TimeSeriesWriter tsColl("vp_bumpontail_collisionless.csv", coll);
  TimeSeriesWriter tsLbo("vp_bumpontail_lbo.csv", lbo);
  tsColl.sample(coll);
  tsLbo.sample(lbo);
  double peakColl = 0.0, peakLbo = 0.0;
  while (coll.time() < tEnd) {
    coll.step();
    tsColl.sample(coll);
    // Keep the two runs on comparable time axes.
    while (lbo.time() < coll.time()) {
      lbo.step();
      tsLbo.sample(lbo);
    }
    peakColl = std::max(peakColl, tsColl.lastRow()[2]);
    peakLbo = std::max(peakLbo, tsLbo.lastRow()[2]);
  }
  tsColl.flush();
  tsLbo.flush();

  const auto e1 = lbo.energetics();
  std::printf("bump-on-tail, k = 0.3, beam (delta, ub, vtb) = (0.1, 4.0, 0.5), t = %.0f\n",
              tEnd);
  std::printf("  collisionless: peak field energy %.3e (growth x%.1f over initial)\n",
              peakColl, peakColl / eInit);
  std::printf("  LBO nu=0.05:   peak field energy %.3e (quenched x%.2f vs collisionless)\n",
              peakLbo, peakColl / peakLbo);
  std::printf("  LBO moment drift over the run (conservation correction):\n");
  std::printf("    mass:   %.2e relative\n",
              std::abs(e1.mass[0] - e0.mass[0]) / std::abs(e0.mass[0]));
  std::printf("    energy: %.2e relative (particle+field; field exchange is resolved,\n"
              "            not collisional)\n",
              std::abs(e1.totalEnergy() - e0.totalEnergy()) / e0.totalEnergy());
  std::printf("time series written to vp_bumpontail_{collisionless,lbo}.csv\n");
  return 0;
}
