// Reproduces the paper's Fig. 1 workflow: emit the auto-generated C++
// volume streaming kernel for a chosen basis (default: the figure's 1X2V
// piecewise-linear tensor basis) and report its operation count.
//
// Usage: kernel_emit [cdim vdim polyOrder family]
//   family: max | ser | ten

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "tensors/emit.hpp"

int main(int argc, char** argv) {
  using namespace vdg;
  BasisSpec spec{1, 2, 1, BasisFamily::Tensor};
  if (argc == 5) {
    spec.cdim = std::atoi(argv[1]);
    spec.vdim = std::atoi(argv[2]);
    spec.polyOrder = std::atoi(argv[3]);
    if (!std::strcmp(argv[4], "max")) spec.family = BasisFamily::MaximalOrder;
    else if (!std::strcmp(argv[4], "ser")) spec.family = BasisFamily::Serendipity;
    else spec.family = BasisFamily::Tensor;
  }
  const EmittedKernel k = emitStreamingVolumeKernel(spec);
  std::printf("%s\n", k.source.c_str());
  std::printf("// multiplications: %zu, additions: %zu\n", k.multiplies, k.adds);
  return 0;
}
