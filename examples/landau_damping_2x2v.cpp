// 2D electrostatic Landau damping — the first scenario through the
// matrix-free Poisson backend in two configuration dimensions (the dense
// LU path was 1x-only; ConjGrad/BiCGStab makes -lap(phi) = rho/eps0
// tractable at every RK stage on 2x grids). A Langmuir wave with
// k vt/wp = 0.5 is seeded independently along x and along y:
//
//   f0 = (1 + amp (cos kx + cos ky)) Maxwellian(vx) Maxwellian(vy)
//
// Each plane wave damps at the 1D kinetic rate gamma ~= -0.1533 and the
// 2D solve must reproduce it. Used as a CI gate: the example checks its
// own results quantitatively and exits nonzero on failure.
//
//  gate 1 - the builder's initial Gauss-law solve matches the analytic
//           field E = (amp/k)(sin kx, sin ky), i.e. the measured electric
//           energy hits (1/2)(amp/k)^2 Lx Ly to discretization accuracy;
//  gate 2 - total electron mass is conserved to round-off across the run
//           (periodic walls, conservative scheme);
//  gate 3 - the electric field energy Landau-damps: the run-end energy
//           sits well below the initial level and a log-linear fit
//           through the oscillation peaks gives a negative rate of the
//           kinetic size (coarse 8^2 x 16^2 phase-space grid: the rate
//           is checked to +-50%, not to the 1e-2 of the resolved 1x runs).
//
// Writes vp_landau_2x2v_timeseries.csv (TimeSeriesWriter schema).

#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "app/simulation.hpp"
#include "io/time_series.hpp"

int main() {
  using namespace vdg;
  constexpr double kPi = std::numbers::pi;
  const double k = 0.5, amp = 1e-3, tEnd = 12.0;
  const double L = 2.0 * kPi / k;

  Simulation sim =
      Simulation::builder()
          .confGrid(Grid::make({8, 8}, {0.0, 0.0}, {L, L}))
          .basis(1, BasisFamily::Serendipity)
          .species("elc", -1.0, 1.0, Grid::make({16, 16}, {-6.0, -6.0}, {6.0, 6.0}),
                   [=](const double* z) {
                     const double x = z[0], y = z[1], vx = z[2], vy = z[3];
                     return (1.0 + amp * (std::cos(k * x) + std::cos(k * y))) *
                            std::exp(-0.5 * (vx * vx + vy * vy)) / (2.0 * kPi);
                   })
          .field(PoissonParams{})
          .backgroundCharge(1.0)  // static neutralizing ion background
          .cflFrac(0.8)
          .build();

  int failures = 0;
  const auto gate = [&](bool ok, const char* what, double got, double want) {
    std::printf("%s  %-34s got %.6e  (expect %.6e)\n", ok ? "PASS" : "FAIL", what, got, want);
    if (!ok) ++failures;
  };

  // --- gate 1: initial E against the analytic Gauss-law solution.
  // rho = amp (cos kx + cos ky) gives E = (amp/k)(sin kx, sin ky), so
  // (eps0/2) int |E|^2 = (1/2)(amp/k)^2 Lx Ly. The discrete value differs
  // by the p1 projection error of a one-wavelength-per-8-cells mode.
  const auto e0 = sim.energetics();
  const double eExact = 0.5 * (amp / k) * (amp / k) * L * L;
  gate(std::abs(e0.electricEnergy / eExact - 1.0) < 0.10, "initial Gauss-law E energy",
       e0.electricEnergy, eExact);

  TimeSeriesWriter ts("vp_landau_2x2v_timeseries.csv", sim);
  ts.sample(sim);
  std::vector<double> tPeaks, ePeaks;
  double prev2 = 0.0, prev1 = 0.0, tPrev1 = 0.0;
  while (sim.time() < tEnd) {
    sim.step();
    ts.sample(sim);
    const double t = ts.lastRow()[0], eE = ts.lastRow()[2];
    if (prev1 > prev2 && prev1 > eE && prev1 > 1e-14) {
      tPeaks.push_back(tPrev1);
      ePeaks.push_back(prev1);
    }
    prev2 = prev1;
    prev1 = eE;
    tPrev1 = t;
  }
  ts.flush();
  const auto e1 = sim.energetics();

  // --- gate 2: mass conservation (periodic domain: exact to round-off).
  const double massDrift = std::abs(e1.mass[0] / e0.mass[0] - 1.0);
  gate(massDrift < 1e-10, "electron mass drift", massDrift, 0.0);

  // --- gate 3: Landau damping of the field energy. Theory for each plane
  // wave: gamma = -0.1533, so energy ~ exp(2 gamma t) — at t = 12 a factor
  // ~2.5e-2. The coarse grid underresolves the resonance, so the envelope
  // ratio and the peak-fit rate carry wide tolerances; what they must
  // exclude is no damping (fluid behaviour) or instability.
  gate(e1.electricEnergy < 0.2 * e0.electricEnergy, "field energy decayed",
       e1.electricEnergy / e0.electricEnergy, std::exp(2.0 * -0.1533 * tEnd));
  double gamma = 0.0;
  if (tPeaks.size() >= 3) {
    double st = 0, sy = 0, stt = 0, sty = 0;
    const double n = static_cast<double>(tPeaks.size());
    for (std::size_t i = 0; i < tPeaks.size(); ++i) {
      st += tPeaks[i];
      sy += std::log(ePeaks[i]);
      stt += tPeaks[i] * tPeaks[i];
      sty += tPeaks[i] * std::log(ePeaks[i]);
    }
    gamma = 0.5 * (n * sty - st * sy) / (n * stt - st * st);
  }
  gate(tPeaks.size() >= 3 && gamma < -0.08 && gamma > -0.30, "damping rate gamma", gamma,
       -0.1533);

  std::printf("2x2v Vlasov-Poisson Landau damping to t = %.1f: %zu peaks, "
              "gamma = %.4f (theory -0.1533), diagnostics in "
              "vp_landau_2x2v_timeseries.csv\n",
              sim.time(), tPeaks.size(), gamma);
  if (failures) {
    std::printf("%d gate(s) FAILED\n", failures);
    return 1;
  }
  std::printf("all gates passed\n");
  return 0;
}
