// Two-stream instability: counter-streaming electron beams drive an
// exponentially growing Langmuir wave that traps the beams and saturates —
// a 1X1V cousin of the paper's Section V simulations, and a case where a
// scheme with aliasing errors goes unstable instead of saturating.
//
// Writes two_stream_energy.csv and phase-space snapshots (DG coefficient
// dumps readable with io/field_io.hpp) before and after saturation.

#include <cmath>
#include <cstdio>
#include <numbers>

#include "app/simulation.hpp"
#include "io/field_io.hpp"

int main() {
  using namespace vdg;
  constexpr double kPi = std::numbers::pi;
  const double k = 0.4, u0 = 2.0, vt = 0.3, amp = 1e-4;

  Simulation sim =
      Simulation::builder()
          .confGrid(Grid::make({32}, {0.0}, {2.0 * kPi / k}))
          .basis(2, BasisFamily::Serendipity)
          .species("elc", -1.0, 1.0, Grid::make({48}, {-6.0}, {6.0}),
                   [=](const double* z) {
                     const double x = z[0], v = z[1];
                     const double a = std::exp(-0.5 * (v - u0) * (v - u0) / (vt * vt));
                     const double b = std::exp(-0.5 * (v + u0) * (v + u0) / (vt * vt));
                     return (1.0 + amp * std::cos(k * x)) * 0.5 * (a + b) /
                            std::sqrt(2.0 * kPi * vt * vt);
                   })
          .field(MaxwellParams{})
          .initField([=](const double* x, double* em) {
            for (int c = 0; c < 8; ++c) em[c] = 0.0;
            em[0] = -amp * std::sin(k * x[0]) / k;
          })
          .cflFrac(0.8)
          .build();

  CsvWriter csv("two_stream_energy.csv", "t,electricEnergy,kineticEnergy,totalEnergy");
  writeField("two_stream_f_t0.bin", sim.distf(0), 0.0);

  const auto e0 = sim.energetics();
  double lastLog = -1.0;
  double growthStart = 0.0, growthStartE = 0.0;
  bool sawGrowth = false;
  while (sim.time() < 40.0) {
    sim.step();
    const auto e = sim.energetics();
    csv.row({e.time, e.electricEnergy, e.particleEnergy[0], e.totalEnergy()});
    if (!sawGrowth && e.electricEnergy > 50.0 * e0.electricEnergy) {
      growthStart = e.time;
      growthStartE = e.electricEnergy;
      sawGrowth = true;
    }
    if (e.time - lastLog > 5.0) {
      std::printf("t=%6.2f  E-energy=%.4e  kinetic=%.6f  total drift=%.2e\n", e.time,
                  e.electricEnergy, e.particleEnergy[0],
                  (e.totalEnergy() - e0.totalEnergy()) / e0.totalEnergy());
      lastLog = e.time;
    }
  }
  writeField("two_stream_f_final.bin", sim.distf(0), sim.time());

  const auto e1 = sim.energetics();
  std::printf("\nfield energy growth: %.3e -> %.3e (x%.1e)\n", e0.electricEnergy,
              e1.electricEnergy, e1.electricEnergy / e0.electricEnergy);
  if (sawGrowth)
    std::printf("linear growth marker: E-energy x50 by t=%.2f (from %.3e)\n", growthStart,
                growthStartE);
  std::printf("phase-space dumps: two_stream_f_t0.bin, two_stream_f_final.bin\n");
  return 0;
}
