// Landau damping dispersion scan as ONE ensemble campaign: gamma(k) over a
// sweep of wavenumbers in a single invocation. Each wavenumber is a
// ScenarioSpec (domain length 2 pi / k, everything else shared) and the
// Ensemble engine packs the members over the rank pool, streams every
// member's time series through the async IO thread, and hands back the
// sampled rows (keepSeries) from which the driver fits the damping rate of
// each member's electric-energy peak train — the same log-linear fit the
// solo examples/vlasov_poisson_landau.cpp run uses, now over the whole
// dispersion curve at once.
//
//   ./ensemble_landau_scan [numK] [numRanks]
//
// numK (default 8, min 1) selects the first numK wavenumbers of the scan —
// k = 0.5 is always included because it is the validation point: the run
// exits nonzero unless the fitted gamma(0.5) is within 10% of the kinetic
// theory value -0.1533 (CI runs a reduced 4-member scan under the same
// gate). numRanks defaults to the hardware concurrency clipped to numK.
//
// Output: ensemble_landau_out/<member>.csv per member (TimeSeriesWriter
// schema), ensemble_landau_out/ensemble_results.{csv,json}, and a printed
// gamma(k) table against the known theory points.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <numbers>
#include <string>
#include <thread>
#include <vector>

#include "ensemble/engine.hpp"

namespace {

using namespace vdg;
constexpr double kPi = std::numbers::pi;

ScenarioSpec landauSpec(double k) {
  const double amp = 1e-3;
  ScenarioSpec spec;
  char name[32];
  std::snprintf(name, sizeof name, "landau_k%03d", static_cast<int>(std::lround(100.0 * k)));
  spec.name = name;
  spec.params["k"] = k;
  spec.confGrid = Grid::make({32}, {0.0}, {2.0 * kPi / k});
  spec.polyOrder = 2;
  spec.cflFrac = 0.8;
  SpeciesConfig elc;
  elc.name = "elc";
  elc.charge = -1.0;
  elc.mass = 1.0;
  elc.velGrid = Grid::make({32}, {-6.0}, {6.0});
  elc.init = [=](const double* z) {
    return (1.0 + amp * std::cos(k * z[0])) * std::exp(-0.5 * z[1] * z[1]) /
           std::sqrt(2.0 * kPi);
  };
  spec.species.push_back(elc);
  spec.field = ScenarioSpec::FieldKind::Poisson;
  spec.backgroundCharge = 1.0;  // static neutralizing ion background
  spec.tEnd = 25.0;
  return spec;
}

// Fit the damping rate from a member's sampled rows: local maxima of the
// electric energy (row[2]) give the peak train; log-linear least squares
// over the peaks gives 2 gamma.
double fitGamma(const std::vector<std::vector<double>>& series) {
  std::vector<double> tPk, ePk;
  for (std::size_t i = 1; i + 1 < series.size(); ++i) {
    const double e = series[i][2];
    if (e > series[i - 1][2] && e > series[i + 1][2] && e > 1e-14) {
      tPk.push_back(series[i][0]);
      ePk.push_back(e);
    }
  }
  if (tPk.size() < 3) return std::nan("");
  double st = 0, sy = 0, stt = 0, sty = 0;
  const double n = static_cast<double>(tPk.size());
  for (std::size_t i = 0; i < tPk.size(); ++i) {
    st += tPk[i];
    sy += std::log(ePk[i]);
    stt += tPk[i] * tPk[i];
    sty += tPk[i] * std::log(ePk[i]);
  }
  return 0.5 * (n * sty - st * sy) / (n * stt - st * st);
}

}  // namespace

int main(int argc, char** argv) {
  // k = 0.5 first so every reduced scan keeps the validation point; the
  // printed table is sorted by k regardless.
  const std::vector<double> kScan = {0.50, 0.40, 0.60, 0.35, 0.55, 0.45, 0.65, 0.30};
  const std::map<double, double> kTheory = {
      {0.30, -0.0126}, {0.40, -0.0661}, {0.50, -0.1533}, {0.60, -0.2677}};

  int numK = argc > 1 ? std::atoi(argv[1]) : static_cast<int>(kScan.size());
  numK = std::clamp(numK, 1, static_cast<int>(kScan.size()));
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  int numRanks = argc > 2 ? std::atoi(argv[2]) : std::max(1, hw);
  numRanks = std::clamp(numRanks, 1, numK);

  std::vector<ScenarioSpec> specs;
  for (int i = 0; i < numK; ++i) specs.push_back(landauSpec(kScan[static_cast<std::size_t>(i)]));

  EnsembleOptions opts;
  opts.numRanks = numRanks;
  opts.outputDir = "ensemble_landau_out";
  opts.sampleEvery = 1;
  opts.keepSeries = true;
  opts.finalCheckpoint = true;
  Ensemble ens(std::move(specs), opts);

  std::printf("Landau dispersion scan: %d members over %d ranks (pack factor %.2f)\n", numK,
              numRanks, ens.schedule().packFactor());
  ens.run();

  const AsyncWriter::Stats& io = ens.ioStats();
  std::printf("campaign: %d done, %d failed; IO thread wrote %llu rows + %llu checkpoint "
              "fields in %.2fs (producer stall %.3fs)\n",
              ens.numDone(), ens.numFailed(),
              static_cast<unsigned long long>(io.linesWritten),
              static_cast<unsigned long long>(io.checkpointFieldsWritten), io.ioSeconds,
              io.producerStallSeconds);

  // gamma(k) table, sorted by k.
  std::vector<int> order(static_cast<std::size_t>(numK));
  for (int i = 0; i < numK; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return ens.spec(a).params.at("k") < ens.spec(b).params.at("k");
  });
  std::printf("\n  k      gamma     theory\n");
  bool gateOk = false;
  for (int m : order) {
    const MemberResult& r = ens.result(m);
    const double k = ens.spec(m).params.at("k");
    if (r.status != MemberResult::Status::Done) {
      std::printf("  %.2f   FAILED    (%s)\n", k, r.error.c_str());
      continue;
    }
    const double gamma = fitGamma(r.series);
    const auto th = kTheory.find(k);
    if (th != kTheory.end())
      std::printf("  %.2f   %+.4f   %+.4f\n", k, gamma, th->second);
    else
      std::printf("  %.2f   %+.4f\n", k, gamma);
    if (k == 0.50) {
      const double rel = std::abs(gamma - (-0.1533)) / 0.1533;
      gateOk = std::isfinite(gamma) && rel < 0.10;
      std::printf("         ^ validation point: |gamma - (-0.1533)|/0.1533 = %.1f%% (gate: "
                  "< 10%%)\n",
                  100.0 * rel);
    }
  }
  std::printf("\nper-member series + results table in ensemble_landau_out/\n");

  if (!gateOk) {
    std::printf("FAIL: k = 0.5 damping rate outside 10%% of theory\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
