// Quickstart: free-streaming of a drifting Maxwellian in 1X1V phase space
// with the modal, alias-free DG solver, checking mass conservation and
// printing density profiles. Mirrors the minimal Gkeyll workflow:
// grid -> basis -> species -> app -> step -> moments.

#include <cmath>
#include <cstdio>
#include <numbers>

#include "app/vlasov_maxwell_app.hpp"

int main() {
  using namespace vdg;

  // Configuration space x in [0, 2pi), velocity v in [-6, 6).
  VlasovMaxwellParams params;
  params.confGrid = Grid::make({16}, {0.0}, {2.0 * std::numbers::pi});
  params.polyOrder = 2;
  params.family = BasisFamily::Serendipity;
  params.evolveField = false;  // free streaming: no fields

  SpeciesParams elc;
  elc.name = "elc";
  elc.charge = -1.0;
  elc.mass = 1.0;
  elc.velGrid = Grid::make({24}, {-6.0}, {6.0});
  elc.init = [](const double* z) {
    const double x = z[0], v = z[1];
    const double n = 1.0 + 0.2 * std::cos(x);
    return n / std::sqrt(2.0 * std::numbers::pi) * std::exp(-0.5 * v * v);
  };

  VlasovMaxwellApp app(params, {elc});

  const auto e0 = app.energetics();
  std::printf("t=%.3f  mass=%.12f  kinetic energy=%.12f\n", app.time(), e0.mass[0],
              e0.particleEnergy[0]);

  const int steps = app.advanceTo(1.0);
  const auto e1 = app.energetics();
  std::printf("t=%.3f  mass=%.12f  kinetic energy=%.12f  (%d steps)\n", app.time(), e1.mass[0],
              e1.particleEnergy[0], steps);
  std::printf("relative mass error: %.3e\n", std::abs(e1.mass[0] - e0.mass[0]) / e0.mass[0]);

  // Density profile: the perturbation phase-mixes away under streaming.
  Field m0(app.confGrid(), app.confBasis().numModes());
  app.moments(0).compute(app.distf(0), &m0, nullptr, nullptr);
  std::printf("\ncell-averaged density:\n");
  forEachCell(app.confGrid(), [&](const MultiIndex& idx) {
    std::printf("  x=%.3f  n=%.6f\n", app.confGrid().cellCenter(0, idx[0]),
                m0.at(idx)[0] / std::sqrt(2.0));
  });
  return 0;
}
