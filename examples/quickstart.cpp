// Quickstart: free-streaming of a drifting Maxwellian in 1X1V phase space
// with the modal, alias-free DG solver, checking mass conservation and
// printing density profiles. Mirrors the minimal Gkeyll workflow through
// the composable builder API:
// grid -> basis -> species -> Simulation::builder() -> step -> moments.

#include <cmath>
#include <cstdio>
#include <numbers>

#include "app/simulation.hpp"

int main() {
  using namespace vdg;

  // Configuration space x in [0, 2pi), velocity v in [-6, 6). No field
  // solve (evolveField(false)): pure free streaming.
  Simulation sim =
      Simulation::builder()
          .confGrid(Grid::make({16}, {0.0}, {2.0 * std::numbers::pi}))
          .basis(2, BasisFamily::Serendipity)
          .species("elc", -1.0, 1.0, Grid::make({24}, {-6.0}, {6.0}),
                   [](const double* z) {
                     const double x = z[0], v = z[1];
                     const double n = 1.0 + 0.2 * std::cos(x);
                     return n / std::sqrt(2.0 * std::numbers::pi) * std::exp(-0.5 * v * v);
                   })
          .evolveField(false)
          .stepper(Stepper::SspRk3)
          .build();

  const auto e0 = sim.energetics();
  std::printf("t=%.3f  mass=%.12f  kinetic energy=%.12f\n", sim.time(), e0.mass[0],
              e0.particleEnergy[0]);

  const int steps = sim.advanceTo(1.0);
  const auto e1 = sim.energetics();
  std::printf("t=%.3f  mass=%.12f  kinetic energy=%.12f  (%d steps)\n", sim.time(), e1.mass[0],
              e1.particleEnergy[0], steps);
  std::printf("relative mass error: %.3e\n", std::abs(e1.mass[0] - e0.mass[0]) / e0.mass[0]);

  // Density profile: the perturbation phase-mixes away under streaming.
  Field m0(sim.confGrid(), sim.confBasis().numModes());
  sim.moments(0).compute(sim.distf(0), &m0, nullptr, nullptr);
  std::printf("\ncell-averaged density:\n");
  forEachCell(sim.confGrid(), [&](const MultiIndex& idx) {
    std::printf("  x=%.3f  n=%.6f\n", sim.confGrid().cellCenter(0, idx[0]),
                m0.at(idx)[0] / std::sqrt(2.0));
  });
  return 0;
}
