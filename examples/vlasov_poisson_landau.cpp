// Electrostatic Landau damping — the Vlasov-Poisson counterpart of
// examples/landau_damping.cpp. Instead of stepping the perfectly-
// hyperbolic Maxwell system, the electric field is recomputed at every RK
// stage from Gauss's law: -lap(phi) = rho/eps0 with the zero-mean gauge,
// E = -grad(phi) (Simulation::Builder::field(PoissonParams{})). The
// k vt/wp = 0.5 Langmuir wave must ring at w ~= 1.4156 and damp at the
// kinetic rate gamma ~= -0.1533, exactly as in the electromagnetic run —
// a cross-validation of the two field solvers against each other.
//
// No initField is needed: the initial E solving Gauss's law for the
// perturbed density is computed by the builder itself.
//
// Diagnostics go through the shared TimeSeriesWriter (io/time_series.hpp):
// one row per step of t, field energies, and the elc moments — the same
// schema every ensemble member emits. The damping-rate fit below reads the
// electric energy straight from the sampled row. Writes
// vp_landau_timeseries.csv and prints the measured rate and frequency.

#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "app/simulation.hpp"
#include "io/time_series.hpp"

int main() {
  using namespace vdg;
  constexpr double kPi = std::numbers::pi;
  const double k = 0.5, amp = 1e-3;

  Simulation sim =
      Simulation::builder()
          .confGrid(Grid::make({32}, {0.0}, {2.0 * kPi / k}))
          .basis(2, BasisFamily::Serendipity)
          .species("elc", -1.0, 1.0, Grid::make({32}, {-6.0}, {6.0}),
                   [=](const double* z) {
                     return (1.0 + amp * std::cos(k * z[0])) *
                            std::exp(-0.5 * z[1] * z[1]) / std::sqrt(2.0 * kPi);
                   })
          .field(PoissonParams{})
          .backgroundCharge(1.0)  // static neutralizing ion background
          .cflFrac(0.8)
          .build();

  TimeSeriesWriter ts("vp_landau_timeseries.csv", sim);
  ts.sample(sim);
  std::vector<double> tPeaks, ePeaks;
  double prev2 = 0.0, prev1 = 0.0, tPrev1 = 0.0;
  while (sim.time() < 25.0) {
    sim.step();
    ts.sample(sim);
    const double t = ts.lastRow()[0], eE = ts.lastRow()[2];
    if (prev1 > prev2 && prev1 > eE && prev1 > 1e-14) {
      tPeaks.push_back(tPrev1);
      ePeaks.push_back(prev1);
    }
    prev2 = prev1;
    prev1 = eE;
    tPrev1 = t;
  }
  ts.flush();

  std::printf("Vlasov-Poisson Landau damping: k vt/wp = %.2f, %zu field-energy peaks\n", k,
              tPeaks.size());
  if (tPeaks.size() >= 3) {
    double st = 0, sy = 0, stt = 0, sty = 0;
    const double n = static_cast<double>(tPeaks.size());
    for (std::size_t i = 0; i < tPeaks.size(); ++i) {
      st += tPeaks[i];
      sy += std::log(ePeaks[i]);
      stt += tPeaks[i] * tPeaks[i];
      sty += tPeaks[i] * std::log(ePeaks[i]);
    }
    const double gamma = 0.5 * (n * sty - st * sy) / (n * stt - st * st);
    std::printf("measured damping rate gamma = %.4f (theory: -0.1533)\n", gamma);
    const double period =
        2.0 * (tPeaks.back() - tPeaks.front()) / static_cast<double>(tPeaks.size() - 1);
    std::printf("measured frequency      w    = %.4f (theory:  1.4156)\n", 2.0 * kPi / period);
  }
  std::printf("time series written to vp_landau_timeseries.csv\n");
  return 0;
}
