// Rank-parallel Landau damping: the same builder-assembled simulation run
// serially and as a DistributedSimulation (configuration space block-
// decomposed over in-process ranks, packed halo exchange, globally reduced
// CFL dt). The two trajectories are bit-for-bit identical — the check at
// the end prints the maximum coefficient difference, which must be 0.
//
//   ./distributed_landau [numRanks] [tEnd]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>

#include "app/distributed.hpp"
#include "app/simulation.hpp"

int main(int argc, char** argv) {
  using namespace vdg;
  constexpr double kPi = std::numbers::pi;
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;
  const double tEnd = argc > 2 ? std::atof(argv[2]) : 5.0;
  const double k = 0.5, amp = 0.05;

  auto builder = Simulation::builder();
  builder.confGrid(Grid::make({16}, {0.0}, {2.0 * kPi / k}))
      .basis(2, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({24}, {-6.0}, {6.0}),
               [=](const double* z) {
                 return (1.0 + amp * std::cos(k * z[0])) / std::sqrt(2.0 * kPi) *
                        std::exp(-0.5 * z[1] * z[1]);
               })
      .field(MaxwellParams{})
      .initField([=](const double* x, double* em) {
        for (int c = 0; c < 8; ++c) em[c] = 0.0;
        em[0] = -amp * std::sin(k * x[0]) / k;
      })
      .cflFrac(0.8)
      .threads(1);

  std::printf("Landau damping, serial vs %d-rank DistributedSimulation, tEnd=%.1f\n", ranks,
              tEnd);

  // The serial oracle opts out of instrumentation explicitly: with
  // VDG_TRACE set, the env fallback would otherwise have both runs racing
  // to write the same trace file. The distributed run keeps the env spec
  // and writes one merged per-rank trace (try
  //   VDG_TRACE=landau_trace.json ./distributed_landau
  // then load the file in a Chrome-trace viewer: one track per rank with
  // the step / rk:stage / updater / halo:* zone nesting).
  Simulation::Builder serialBuilder = builder;
  serialBuilder.profiling(ProfilingSpec{});
  Simulation serial = serialBuilder.build();
  const int stepsSerial = serial.advanceTo(tEnd);

  DistributedSimulation dist(builder, ranks);
  const int stepsDist = dist.advanceTo(tEnd);

  const StateVector global = dist.gather();
  double maxDiff = 0.0;
  const StateVector& ref = serial.state();
  for (int i = 0; i < ref.numSlots(); ++i) {
    const Field& a = ref.slot(i);
    const Field& b = global.slot(i);
    forEachCell(a.grid(), [&](const MultiIndex& idx) {
      for (int c = 0; c < a.ncomp(); ++c)
        maxDiff = std::max(maxDiff, std::abs(a.at(idx)[c] - b.at(idx)[c]));
    });
  }

  std::printf("steps: serial=%d distributed=%d\n", stepsSerial, stepsDist);
  std::printf("decomposition: %d block(s) along x, halo %.1f kB exchanged, halo fraction %.3f\n",
              dist.decomp().blocks[0], dist.haloBytes() / 1024.0,
              dist.haloSeconds() / (dist.haloSeconds() + dist.computeSeconds()));
  std::printf("max |serial - distributed| over all coefficients: %.3e %s\n", maxDiff,
              maxDiff == 0.0 ? "(bit-for-bit identical)" : "(MISMATCH!)");
  return maxDiff == 0.0 ? 0 : 1;
}
