// Classic kinetic plasma-sheath benchmark (Juno et al., JCP 2018; the
// canonical wall-bounded scenario the boundary subsystem unlocks): a
// quasineutral electron/ion plasma between two grounded absorbing walls.
//
//   - particles: AbsorbBc on both x faces of both species — anything
//     crossing a wall is lost (and accounted by the stepper's wall-loss
//     tracker, so total particles are conserved to round-off);
//   - potential: Dirichlet phi = 0 on both walls (grounded electrodes)
//     through the non-periodic Poisson solve;
//   - collisions: conservative Lenard-Bernstein (Dougherty) on both
//     species, keeping the bulk near-Maxwellian.
//
// Physics (normalized: m_e = e = n_0 = T_e = 1, so v_te = lambda_D =
// omega_pe = 1): electrons, sqrt(m_i/m_e) faster than ions, initially
// outrun them to the walls and charge the plasma positive; the bulk
// potential rises until the electron outflow is throttled to the ion
// outflow. A positive, monotone-decreasing-toward-the-walls potential
// hill forms whose drop is of order the floating-sheath estimate
// Delta phi ~ T_e ln(m_i/m_e)/2, and the two species' wall fluxes
// approach each other (ambipolar quasi-steady state; without a volume
// source the bulk slowly drains, so "steady" means the intermediate
// timescale between sheath formation and global depletion).
//
// Checks (nonzero exit on failure — this run is the CI wall-physics
// smoke): potential sign and monotonicity, ion/electron wall-flux
// balance, ongoing (non-stalled) mass loss, and per-species conservation
// of (particles remaining + particles absorbed) to <= 1e-12 relative.
//
// Writes sheath_1x1v.csv (TimeSeriesWriter: t, field energy, per-species
// M0/M1x/M2, absorbed mass, wall-loss rate) and prints a profile summary.
//
// Usage: sheath_1x1v [tEnd]   (default 60 omega_pe^-1)

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>
#include <vector>

#include "app/simulation.hpp"
#include "app/updaters.hpp"
#include "io/time_series.hpp"
#include "math/legendre.hpp"

int main(int argc, char** argv) {
  using namespace vdg;
  constexpr double kPi = std::numbers::pi;
  const double tEnd = argc > 1 ? std::atof(argv[1]) : 60.0;

  const double massRatio = 25.0;  // m_i/m_e: light ions keep transits short
  const double Te = 1.0, Ti = 0.25;  // cold-ish ions: the sheath does the pulling
  const double vti = std::sqrt(Ti / massRatio);
  const double L = 32.0;  // walls 32 Debye lengths apart
  const int nx = 32, nvElc = 16, nvIon = 24;

  const auto maxwellian = [](double n, double v, double vth) {
    return n * std::exp(-0.5 * v * v / (vth * vth)) / std::sqrt(2.0 * kPi * vth * vth);
  };

  PoissonParams poisson;  // grounded walls: phi = 0 on both electrodes
  poisson.bc[0][0] = {PoissonBcKind::Dirichlet, 0.0};
  poisson.bc[0][1] = {PoissonBcKind::Dirichlet, 0.0};

  Simulation sim =
      Simulation::builder()
          .confGrid(Grid::make({nx}, {0.0}, {L}))
          .basis(2, BasisFamily::Serendipity)
          .species("elc", -1.0, 1.0, Grid::make({nvElc}, {-6.0}, {6.0}),
                   [&](const double* z) { return maxwellian(1.0, z[1], 1.0); })
          .collisions(LboParams{.collisionFreq = 0.02})
          // +-6 v_ti = +-3 c_s: headroom for the Bohm-accelerated outflow.
          .species("ion", 1.0, massRatio, Grid::make({nvIon}, {-6.0 * vti}, {6.0 * vti}),
                   [&](const double* z) { return maxwellian(1.0, z[1], vti); })
          .collisions(LboParams{.collisionFreq = 0.02})
          .boundary(0, Edge::Lower, {BcKind::Absorb})
          .boundary(0, Edge::Upper, {BcKind::Absorb})
          .field(poisson)
          .cflFrac(0.8)
          .build();

  TimeSeriesWriter ts("sheath_1x1v.csv", sim);
  const auto e0 = sim.energetics();
  ts.sample(sim);

  // The quasi-steady potential is the *time average* over the last few
  // plasma periods: the initial electron rush rings Langmuir oscillations
  // through the bulk that the weak collisions damp only slowly, and the
  // average is what the sheath criteria are about.
  const PoissonFieldUpdater* pf = sim.poissonField();
  const PoissonSolver* ps = sim.poissonSolver();
  const auto np = static_cast<std::size_t>(ps->numModes());
  const double w0 = legendrePsi(0, 0.0);  // cell average = c0 * psi_0
  std::vector<double> phiAvg(static_cast<std::size_t>(nx), 0.0);
  int navg = 0;
  int step = 0;
  while (sim.time() < tEnd) {
    sim.step();
    if (++step % 25 == 0) ts.sample(sim);
    if (sim.time() > tEnd - 10.0) {
      for (int i = 0; i < nx; ++i)
        phiAvg[static_cast<std::size_t>(i)] +=
            w0 * pf->lastPhi()[static_cast<std::size_t>(i) * np];
      ++navg;
    }
  }
  ts.sample(sim);
  for (double& v : phiAvg) v /= static_cast<double>(navg);

  double phiMax = phiAvg[0];
  for (double v : phiAvg) phiMax = std::max(phiMax, v);
  // Monotone from each wall up to the crest of the hill (small slack for
  // the plateau cells around the maximum).
  const double slack = 1e-3 * std::abs(phiMax);
  int crest = 0;
  for (int i = 1; i < nx; ++i)
    if (phiAvg[static_cast<std::size_t>(i)] > phiAvg[static_cast<std::size_t>(crest)]) crest = i;
  bool monotone = true;
  for (int i = 1; i <= crest; ++i)
    monotone = monotone && phiAvg[static_cast<std::size_t>(i)] >=
                               phiAvg[static_cast<std::size_t>(i - 1)] - slack;
  for (int i = crest + 1; i < nx; ++i)
    monotone = monotone && phiAvg[static_cast<std::size_t>(i)] <=
                               phiAvg[static_cast<std::size_t>(i - 1)] + slack;

  const auto e1 = sim.energetics();
  const double consElc = (e1.mass[0] + sim.absorbedMass(0)) / e0.mass[0] - 1.0;
  const double consIon = (e1.mass[1] + sim.absorbedMass(1)) / e0.mass[1] - 1.0;
  // Wall fluxes in particles/time: the loss tracker books mass; divide by
  // the species mass.
  const double fluxElc = sim.wallLossRate(0) / 1.0;
  const double fluxIon = sim.wallLossRate(1) / massRatio;
  const double fluxImbalance =
      std::abs(fluxIon - fluxElc) / std::max(std::abs(fluxIon), std::abs(fluxElc));

  std::printf("kinetic sheath, m_i/m_e = %.0f, L = %.0f lambda_D, t = %.1f omega_pe^-1\n",
              massRatio, L, sim.time());
  std::printf("  wall->crest potential rise  %.3f Te (floating-sheath scale "
              "Te ln(mi/me)/2 = %.3f)\n",
              phiMax, 0.5 * Te * std::log(massRatio));
  std::printf("  potential monotone wall->crest: %s (crest at cell %d)\n",
              monotone ? "yes" : "NO", crest);
  std::printf("  wall flux  elc %.5f  ion %.5f  imbalance %.1f%%\n", fluxElc, fluxIon,
              100.0 * fluxImbalance);
  std::printf("  absorbed   elc %.2f%%  ion %.2f%% of initial particles\n",
              100.0 * sim.absorbedMass(0) / e0.mass[0],
              100.0 * sim.absorbedMass(1) / e0.mass[1]);
  std::printf("  conservation (remaining+absorbed)/initial - 1:  elc %.2e  ion %.2e\n",
              consElc, consIon);
  std::printf("  time series written to sheath_1x1v.csv\n");

  bool ok = true;
  if (!(phiMax > 0.0)) {
    std::printf("FAIL: wall potential drop has the wrong sign (phi crest %.3e <= 0)\n", phiMax);
    ok = false;
  }
  if (!monotone) {
    std::printf("FAIL: potential is not monotone between walls and crest\n");
    ok = false;
  }
  if (!(std::abs(consElc) <= 1e-12 && std::abs(consIon) <= 1e-12)) {
    std::printf("FAIL: particle conservation (remaining + absorbed) worse than 1e-12\n");
    ok = false;
  }
  if (!(fluxIon > 0.0) || !(fluxElc > 0.0)) {
    std::printf("FAIL: wall mass loss stalled (elc %.3e, ion %.3e)\n", fluxElc, fluxIon);
    ok = false;
  }
  if (!(fluxImbalance < 0.35)) {
    std::printf("FAIL: ion/electron wall fluxes not balanced (imbalance %.1f%%)\n",
                100.0 * fluxImbalance);
    ok = false;
  }
  return ok ? 0 : 1;
}
