// Landau damping of a Langmuir wave (the canonical validation of the
// delicate field-particle coupling the paper is about): a k vt/wp = 0.5
// density perturbation rings at the Langmuir frequency and damps at the
// kinetic rate gamma ~= -0.1533 — physics that aliasing errors in the
// J.E exchange would corrupt.
//
// Writes landau_field_energy.csv (t, electric field energy, J.E transfer)
// and prints the measured damping rate.
//
// This example deliberately drives the VlasovMaxwellApp compatibility
// façade (the parameter-struct API) rather than Simulation::builder(); the
// two paths are verified bit-for-bit identical on this very setup in
// tests/test_simulation.cpp.

#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "app/vlasov_maxwell_app.hpp"
#include "io/field_io.hpp"

int main() {
  using namespace vdg;
  constexpr double kPi = std::numbers::pi;
  const double k = 0.5, amp = 1e-3;

  VlasovMaxwellParams params;
  params.confGrid = Grid::make({32}, {0.0}, {2.0 * kPi / k});
  params.polyOrder = 2;
  params.family = BasisFamily::Serendipity;
  params.cflFrac = 0.8;
  params.initField = [=](const double* x, double* em) {
    for (int c = 0; c < 8; ++c) em[c] = 0.0;
    em[0] = -amp * std::sin(k * x[0]) / k;  // Ex solving Gauss's law
  };

  SpeciesParams elc;
  elc.name = "elc";
  elc.charge = -1.0;
  elc.mass = 1.0;
  elc.velGrid = Grid::make({32}, {-6.0}, {6.0});
  elc.init = [=](const double* z) {
    return (1.0 + amp * std::cos(k * z[0])) * std::exp(-0.5 * z[1] * z[1]) /
           std::sqrt(2.0 * kPi);
  };

  VlasovMaxwellApp app(params, {elc});
  CsvWriter csv("landau_field_energy.csv", "t,electricEnergy,energyTransfer");

  std::vector<double> tPeaks, ePeaks;
  double prev2 = 0.0, prev1 = 0.0, tPrev1 = 0.0;
  while (app.time() < 25.0) {
    app.step();
    const auto e = app.energetics();
    csv.row({e.time, e.electricEnergy, app.energyTransfer(0)});
    if (prev1 > prev2 && prev1 > e.electricEnergy && prev1 > 1e-14) {
      tPeaks.push_back(tPrev1);
      ePeaks.push_back(prev1);
    }
    prev2 = prev1;
    prev1 = e.electricEnergy;
    tPrev1 = e.time;
  }

  std::printf("Landau damping: k vt/wp = %.2f, %zu field-energy peaks recorded\n", k,
              tPeaks.size());
  if (tPeaks.size() >= 3) {
    double st = 0, sy = 0, stt = 0, sty = 0;
    const double n = static_cast<double>(tPeaks.size());
    for (std::size_t i = 0; i < tPeaks.size(); ++i) {
      st += tPeaks[i];
      sy += std::log(ePeaks[i]);
      stt += tPeaks[i] * tPeaks[i];
      sty += tPeaks[i] * std::log(ePeaks[i]);
    }
    const double gamma = 0.5 * (n * sty - st * sy) / (n * stt - st * st);
    std::printf("measured damping rate gamma = %.4f (theory: -0.1533)\n", gamma);
    // Oscillation frequency from peak spacing (peaks at half periods).
    const double period =
        2.0 * (tPeaks.back() - tPeaks.front()) / static_cast<double>(tPeaks.size() - 1);
    std::printf("measured frequency      w    = %.4f (theory:  1.4156)\n", 2.0 * kPi / period);
  }
  std::printf("time series written to landau_field_energy.csv\n");
  return 0;
}
