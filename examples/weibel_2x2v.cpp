// The paper's Section V scenario (Fig. 5) as a runnable example:
// counter-streaming electron beams in 2X2V phase space, unstable to
// two-stream, filamentation and oblique modes. Smaller and shorter than
// bench_fig5_weibel — meant as a template for users to scale up. Writes
// energetics to weibel_energy.csv and distribution snapshots at the start
// and end. Pass a larger tEnd as argv[1] to reach deep saturation.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>

#include "app/simulation.hpp"
#include "io/field_io.hpp"

int main(int argc, char** argv) {
  using namespace vdg;
  constexpr double kPi = std::numbers::pi;
  const double tEnd = argc > 1 ? std::atof(argv[1]) : 30.0;
  const double u0 = 0.4, vt = 0.1, amp = 1e-3;

  Simulation sim =
      Simulation::builder()
          .confGrid(Grid::make({6, 6}, {0.0, 0.0}, {2.0 * kPi, 2.0 * kPi}))
          .basis(1, BasisFamily::Serendipity)
          .species("elc", -1.0, 1.0, Grid::make({14, 14}, {-1.0, -1.0}, {1.0, 1.0}),
                   [=](const double* z) {
                     const double x = z[0], y = z[1], vx = z[2], vy = z[3];
                     const double pert = 1.0 + amp * (std::cos(x) + std::cos(y));
                     const double beams = std::exp(-0.5 * (vx - u0) * (vx - u0) / (vt * vt)) +
                                          std::exp(-0.5 * (vx + u0) * (vx + u0) / (vt * vt));
                     return pert * 0.5 * beams * std::exp(-0.5 * vy * vy / (vt * vt)) /
                            (2.0 * kPi * vt * vt);
                   })
          .field(MaxwellParams{})
          .initField([=](const double* x, double* em) {
            for (int c = 0; c < 8; ++c) em[c] = 0.0;
            em[5] = amp * (std::cos(x[0]) + std::sin(x[1]));  // Bz seed
          })
          .backgroundCharge(1.0)  // static neutralizing protons
          .cflFrac(0.8)
          .build();

  CsvWriter csv("weibel_energy.csv", "t,electric,magnetic,kinetic,total");
  writeField("weibel_f_t0.bin", sim.distf(0), 0.0);

  const auto e0 = sim.energetics();
  std::printf("counter-streaming beams: u0=%.2f, vt=%.2f, tEnd=%.1f\n\n", u0, vt, tEnd);
  double lastLog = -1e9;
  while (sim.time() < tEnd) {
    sim.step();
    const auto e = sim.energetics();
    csv.row({e.time, e.electricEnergy, e.magneticEnergy, e.particleEnergy[0], e.totalEnergy()});
    if (e.time - lastLog > 5.0) {
      std::printf("t=%6.2f  E=%.3e  B=%.3e  kinetic=%.5f\n", e.time, e.electricEnergy,
                  e.magneticEnergy, e.particleEnergy[0]);
      lastLog = e.time;
    }
  }
  writeField("weibel_f_final.bin", sim.distf(0), sim.time());

  const auto e1 = sim.energetics();
  std::printf("\nmagnetic energy: %.3e -> %.3e (x%.1e)\n", e0.magneticEnergy, e1.magneticEnergy,
              e1.magneticEnergy / e0.magneticEnergy);
  std::printf("total energy drift: %.2e\n",
              (e1.totalEnergy() - e0.totalEnergy()) / e0.totalEnergy());
  std::printf("outputs: weibel_energy.csv, weibel_f_{t0,final}.bin\n");
  return 0;
}
