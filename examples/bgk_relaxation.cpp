// Collisional relaxation of a bump-on-tail distribution: the BGK operator
// (plugged in through the builder's .collisions(...) seam) drives the beam
// back into the bulk Maxwellian on the nu^-1 timescale while conserving
// density exactly. Juno et al. (2017) run this class of problem to
// validate collision operators riding on the Vlasov-Maxwell solver; the
// paper's Section III uses collisions to report that they roughly double
// the update cost.
//
// Writes bgk_relaxation.csv (t, distfL2, kinetic energy, total energy).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>

#include "app/simulation.hpp"
#include "io/field_io.hpp"

int main(int argc, char** argv) {
  using namespace vdg;
  constexpr double kPi = std::numbers::pi;
  const double nu = argc > 1 ? std::atof(argv[1]) : 5.0;
  const double k = 0.5, amp = 1e-3;

  // Bump-on-tail: a warm bulk plus a fast beam at v = 3 vt carrying 10% of
  // the density. Collisionless, the bump drives Langmuir waves; with BGK
  // collisions at nu >> gamma it relaxes to a single Maxwellian first.
  const auto bumpOnTail = [=](const double* z) {
    const double x = z[0], v = z[1];
    const double bulk = 0.9 * std::exp(-0.5 * v * v) / std::sqrt(2.0 * kPi);
    const double beam =
        0.1 * std::exp(-0.5 * (v - 3.0) * (v - 3.0) / 0.25) / std::sqrt(2.0 * kPi * 0.25);
    return (1.0 + amp * std::cos(k * x)) * (bulk + beam);
  };

  Simulation sim = Simulation::builder()
                       .confGrid(Grid::make({16}, {0.0}, {2.0 * kPi / k}))
                       .basis(2, BasisFamily::Serendipity)
                       .species("elc", -1.0, 1.0, Grid::make({32}, {-8.0}, {8.0}), bumpOnTail)
                       .collisions(BgkParams{.mass = 1.0, .collisionFreq = nu})
                       .field(MaxwellParams{})
                       .initField([=](const double* x, double* em) {
                         for (int c = 0; c < 8; ++c) em[c] = 0.0;
                         em[0] = -amp * std::sin(k * x[0]) / k;
                       })
                       .stepper(Stepper::SspRk3)
                       .cflFrac(0.8)
                       .build();

  CsvWriter csv("bgk_relaxation.csv", "t,distfL2,kineticEnergy,totalEnergy");

  const auto e0 = sim.energetics();
  const double l20 = sim.distfL2(0);
  std::printf("bump-on-tail relaxation: nu=%.2f (pipeline:", nu);
  for (const auto& u : sim.pipeline()) std::printf(" %s", u->name().c_str());
  std::printf(")\n\n");

  double lastLog = -1e9;
  while (sim.time() < 3.0) {
    sim.step();
    const auto e = sim.energetics();
    csv.row({e.time, sim.distfL2(0), e.particleEnergy[0], e.totalEnergy()});
    if (e.time - lastLog > 0.5) {
      std::printf("t=%5.2f  ||f||^2=%.6f  mass=%.10f  kinetic=%.6f\n", e.time, sim.distfL2(0),
                  e.mass[0], e.particleEnergy[0]);
      lastLog = e.time;
    }
  }

  const auto e1 = sim.energetics();
  std::printf("\n||f||^2: %.6f -> %.6f (collisional entropy production)\n", l20, sim.distfL2(0));
  std::printf("relative mass error:   %.2e (BGK conserves density exactly)\n",
              std::abs(e1.mass[0] - e0.mass[0]) / e0.mass[0]);
  std::printf("relative energy drift: %.2e\n",
              (e1.totalEnergy() - e0.totalEnergy()) / e0.totalEnergy());
  std::printf("time series written to bgk_relaxation.csv\n");
  return 0;
}
