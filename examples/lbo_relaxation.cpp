// Two-beam relaxation under the conservative Lenard-Bernstein/Dougherty
// operator, side by side with BGK: both drive the beams to the Maxwellian
// carrying the shared initial (n, u, vth^2), but LBO does it through real
// velocity-space drag + recovery-based diffusion — conserving density,
// momentum AND energy to machine precision per step (BGK's Maxwellian
// projection conserves density only) — and with the Fokker-Planck-like
// local physics of the paper's reference [22]. Writes lbo_relaxation.csv
// (t, LBO kinetic energy / momentum / temperature, BGK kinetic energy).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numbers>

#include "app/simulation.hpp"
#include "collisions/lbo.hpp"
#include "io/field_io.hpp"

int main(int argc, char** argv) {
  using namespace vdg;
  constexpr double kPi = std::numbers::pi;
  const double nu = argc > 1 ? std::atof(argv[1]) : 4.0;

  // Two counter-streaming warm beams: strongly non-Maxwellian, zero net
  // drift, kinetic energy split between beam motion and thermal spread.
  const auto twoBeam = [](const double* z) {
    const double v = z[1], vt2 = 0.36;
    const double a = std::exp(-0.5 * (v - 1.5) * (v - 1.5) / vt2);
    const double c = std::exp(-0.5 * (v + 1.5) * (v + 1.5) / vt2);
    return (a + c) / (2.0 * std::sqrt(2.0 * kPi * vt2));
  };

  const auto makeSim = [&](bool lbo) {
    auto b = Simulation::builder();
    b.confGrid(Grid::make({4}, {0.0}, {1.0}))
        .basis(2, BasisFamily::Serendipity)
        .species("elc", -1.0, 1.0, Grid::make({48}, {-8.0}, {8.0}), twoBeam);
    if (lbo)
      b.collisions(LboParams{.mass = 1.0, .collisionFreq = nu});
    else
      b.collisions(BgkParams{.mass = 1.0, .collisionFreq = nu});
    b.evolveField(false).stepper(Stepper::SspRk3).cflFrac(0.8);
    return b.build();
  };
  Simulation lboSim = makeSim(true);
  Simulation bgkSim = makeSim(false);

  // A standalone updater mirrors the pipeline's operator for diagnostics
  // (temperature via the species mass — LboParams::mass at work).
  const BasisSpec spec{1, 1, 2, BasisFamily::Serendipity};
  const LboUpdater diag(spec, lboSim.phaseGrid(0), LboParams{.mass = 1.0, .collisionFreq = nu});
  const Basis& cb = lboSim.confBasis();
  const Grid cg = diag.confGrid();

  const auto temperatureAvg = [&](const Field& f) {
    Field T(cg, diag.numConfModes());
    diag.temperature(f, T);
    double sum = 0.0;
    int cells = 0;
    forEachCell(cg, [&](const MultiIndex& idx) {
      sum += T.at(idx)[0] * std::pow(2.0, -0.5 * cg.ndim);
      ++cells;
    });
    return sum / cells;
  };
  const auto momentum = [&](const Simulation& sim) {
    Field m1(cg, 3 * diag.numConfModes());
    sim.moments(0).compute(sim.distf(0), nullptr, &m1, nullptr);
    return integrateDomain(cb, cg, m1, 0);
  };

  CsvWriter csv("lbo_relaxation.csv", "t,lboKinetic,lboMomentum,lboTemperature,bgkKinetic");

  const auto e0 = lboSim.energetics();
  std::printf("two-beam relaxation, nu=%.2f  (LBO pipeline:", nu);
  for (const auto& u : lboSim.pipeline()) std::printf(" %s", u->name().c_str());
  std::printf(")\n\n");
  std::printf("%6s  %12s  %12s  %12s  %12s\n", "t", "LBO kinetic", "LBO momentum", "LBO T",
              "BGK kinetic");

  double lastLog = -1e9;
  const double tEnd = 2.0;
  while (lboSim.time() < tEnd) {
    lboSim.step();
    bgkSim.advanceTo(lboSim.time());
    const auto e = lboSim.energetics();
    const auto eb = bgkSim.energetics();
    const double T = temperatureAvg(lboSim.distf(0));
    csv.row({e.time, e.particleEnergy[0], momentum(lboSim), T, eb.particleEnergy[0]});
    if (e.time - lastLog > 0.25) {
      std::printf("%6.2f  %12.8f  %12.4e  %12.6f  %12.8f\n", e.time, e.particleEnergy[0],
                  momentum(lboSim), T, eb.particleEnergy[0]);
      lastLog = e.time;
    }
  }

  const auto e1 = lboSim.energetics();
  const auto eb1 = bgkSim.energetics();
  std::printf("\nLBO relative mass error:    %.2e\n",
              std::abs(e1.mass[0] - e0.mass[0]) / e0.mass[0]);
  std::printf("LBO relative energy error:  %.2e (machine precision by construction)\n",
              std::abs(e1.particleEnergy[0] - e0.particleEnergy[0]) / e0.particleEnergy[0]);
  std::printf("BGK relative energy error:  %.2e (projection-limited)\n",
              std::abs(eb1.particleEnergy[0] - e0.particleEnergy[0]) / e0.particleEnergy[0]);
  std::printf("equilibrium temperature:    %.6f (expect u_beam^2 + vt^2 = 1.5^2 + 0.36 = 2.61)\n",
              temperatureAvg(lboSim.distf(0)));
  std::printf("time series written to lbo_relaxation.csv\n");
  return 0;
}
