#!/usr/bin/env python3
"""Exit-code contract tests for tools/compare_bench_eop.py.

The guard script is run by CI's bench-smoke job; a raw traceback there
used to be indistinguishable from a genuine throughput regression. These
tests pin the documented contract:

  0 -- within tolerance
  1 -- regression (throughput floor, batched-slower-than-scalar, or
       profiler-enabled overhead beyond --max-overhead)
  2 -- missing/unreadable input file
  3 -- valid JSON but missing schema key

Run directly (python3 tests/test_compare_bench_eop.py) or via ctest,
which registers it when a Python3 interpreter is found at configure
time. Stdlib only: unittest + subprocess, no third-party deps.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

SCRIPT = pathlib.Path(__file__).resolve().parent.parent / "tools" / "compare_bench_eop.py"


def bench_doc(batched, scalar, profiled=None):
    eop = {"vlasov": batched, "vlasov_scalar": scalar}
    if profiled is not None:
        eop["vlasov_profiled"] = profiled
    return {"eop": eop}


class CompareBenchEopExitCodes(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = pathlib.Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, name, doc):
        path = self.dir / name
        path.write_text(json.dumps(doc))
        return path

    def run_guard(self, current, baseline):
        return subprocess.run(
            [sys.executable, str(SCRIPT), str(current), "--baseline", str(baseline)],
            capture_output=True,
            text=True,
        )

    def test_ok_within_tolerance_exits_0(self):
        cur = self.write("cur.json", bench_doc(2.0e9, 1.0e9))
        base = self.write("base.json", bench_doc(2.0e9, 1.0e9))
        proc = self.run_guard(cur, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("OK", proc.stdout)

    def test_regression_exits_1(self):
        cur = self.write("cur.json", bench_doc(1.0e9, 0.5e9))
        base = self.write("base.json", bench_doc(2.0e9, 1.0e9))
        proc = self.run_guard(cur, base)
        self.assertEqual(proc.returncode, 1, proc.stderr)
        self.assertIn("regressed", proc.stderr)

    def test_batched_slower_than_scalar_exits_1(self):
        cur = self.write("cur.json", bench_doc(1.0e9, 1.5e9))
        base = self.write("base.json", bench_doc(1.0e9, 0.5e9))
        proc = self.run_guard(cur, base)
        self.assertEqual(proc.returncode, 1, proc.stderr)
        self.assertIn("slower than scalar", proc.stderr)

    def test_profiled_within_overhead_exits_0(self):
        # 1% slowdown with the profiler on: inside the 2% default budget.
        cur = self.write("cur.json", bench_doc(2.0e9, 1.0e9, profiled=1.98e9))
        base = self.write("base.json", bench_doc(2.0e9, 1.0e9))
        proc = self.run_guard(cur, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("profiler-enabled", proc.stdout)

    def test_profiled_overhead_beyond_budget_exits_1(self):
        # 5% slowdown with the profiler on: over the 2% budget.
        cur = self.write("cur.json", bench_doc(2.0e9, 1.0e9, profiled=1.9e9))
        base = self.write("base.json", bench_doc(2.0e9, 1.0e9))
        proc = self.run_guard(cur, base)
        self.assertEqual(proc.returncode, 1, proc.stderr)
        self.assertIn("overhead too high", proc.stderr)

    def test_pre_instrumentation_schema_still_compares(self):
        # Old BENCH_eop.json without eop.vlasov_profiled: the overhead gate
        # is skipped rather than tripping the schema error.
        cur = self.write("cur.json", bench_doc(2.0e9, 1.0e9))
        base = self.write("base.json", bench_doc(2.0e9, 1.0e9))
        proc = self.run_guard(cur, base)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("profiler-enabled", proc.stdout)

    def test_missing_file_exits_2_with_one_line_message(self):
        base = self.write("base.json", bench_doc(2.0e9, 1.0e9))
        proc = self.run_guard(self.dir / "does_not_exist.json", base)
        self.assertEqual(proc.returncode, 2, proc.stderr)
        self.assertIn("cannot read", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_invalid_json_exits_2(self):
        cur = self.dir / "broken.json"
        cur.write_text("{not json")
        base = self.write("base.json", bench_doc(2.0e9, 1.0e9))
        proc = self.run_guard(cur, base)
        self.assertEqual(proc.returncode, 2, proc.stderr)
        self.assertIn("not valid JSON", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_missing_schema_key_exits_3(self):
        cur = self.write("cur.json", {"eop": {"vlasov_renamed": 2.0e9}})
        base = self.write("base.json", bench_doc(2.0e9, 1.0e9))
        proc = self.run_guard(cur, base)
        self.assertEqual(proc.returncode, 3, proc.stderr)
        self.assertIn("missing key", proc.stderr)
        self.assertIn("eop.vlasov", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)


if __name__ == "__main__":
    unittest.main()
