// Tests of the modal orthonormal basis sets: dimension counts against the
// paper's numbers (5-D p2 Serendipity = 112 DOF, 6-D p1 = 64 DOF), L2
// orthonormality, face-basis closure, and family inclusions.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "basis/basis.hpp"
#include "math/gauss_legendre.hpp"

namespace vdg {
namespace {

int tensorDim(int d, int p) {
  int n = 1;
  for (int i = 0; i < d; ++i) n *= (p + 1);
  return n;
}

int maxOrderDim(int d, int p) {
  // C(d+p, p)
  long r = 1;
  for (int i = 0; i < p; ++i) r = r * (d + p - i) / (i + 1);
  return static_cast<int>(r);
}

TEST(Basis, TensorCounts) {
  for (int d = 1; d <= 6; ++d)
    for (int p = 1; p <= (d <= 4 ? 3 : 1); ++p) {
      const Basis b(BasisSpec{d, 0, p, BasisFamily::Tensor});
      EXPECT_EQ(b.numModes(), tensorDim(d, p)) << "d=" << d << " p=" << p;
    }
}

TEST(Basis, MaximalOrderCounts) {
  for (int d = 1; d <= 6; ++d)
    for (int p = 1; p <= 3; ++p) {
      const Basis b(BasisSpec{d, 0, p, BasisFamily::MaximalOrder});
      EXPECT_EQ(b.numModes(), maxOrderDim(d, p)) << "d=" << d << " p=" << p;
    }
}

TEST(Basis, SerendipityCountsMatchPaper) {
  // The paper's headline numbers: 2X3V p2 Serendipity has 112 DOF per cell
  // (Table I) and 3X3V p1 has 64 (Section IV weak scaling).
  EXPECT_EQ(Basis(BasisSpec{2, 3, 2, BasisFamily::Serendipity}).numModes(), 112);
  EXPECT_EQ(Basis(BasisSpec{3, 3, 1, BasisFamily::Serendipity}).numModes(), 64);
  // And the closed-form Arnold-Awanou count agrees everywhere we support.
  for (int d = 1; d <= 6; ++d)
    for (int p = 1; p <= 3; ++p) {
      const Basis b(BasisSpec{d, 0, p, BasisFamily::Serendipity});
      EXPECT_EQ(b.numModes(), serendipityDim(d, p)) << "d=" << d << " p=" << p;
    }
}

TEST(Basis, FamilyInclusions) {
  // maximal-order subset of Serendipity subset of tensor (as mode sets).
  for (int d = 2; d <= 4; ++d)
    for (int p = 1; p <= 3; ++p) {
      const Basis mo(BasisSpec{d, 0, p, BasisFamily::MaximalOrder});
      const Basis se(BasisSpec{d, 0, p, BasisFamily::Serendipity});
      const Basis te(BasisSpec{d, 0, p, BasisFamily::Tensor});
      EXPECT_LE(mo.numModes(), se.numModes());
      EXPECT_LE(se.numModes(), te.numModes());
      for (const MultiIndex& a : mo.modes()) EXPECT_GE(se.indexOf(a), 0);
      for (const MultiIndex& a : se.modes()) EXPECT_GE(te.indexOf(a), 0);
    }
}

TEST(Basis, OrthonormalUnderQuadrature) {
  // Check <w_i, w_j> = delta_ij with an exact quadrature rule.
  for (const BasisFamily fam :
       {BasisFamily::MaximalOrder, BasisFamily::Serendipity, BasisFamily::Tensor}) {
    const Basis b(BasisSpec{1, 2, 2, fam});
    const int nd = b.ndim();
    const QuadRule rule = gauss_legendre(4);
    const int np = b.numModes();
    std::vector<double> gram(static_cast<std::size_t>(np) * np, 0.0);
    std::vector<double> w(static_cast<std::size_t>(np));
    // 3-D tensor quadrature.
    for (std::size_t i = 0; i < rule.size(); ++i)
      for (std::size_t j = 0; j < rule.size(); ++j)
        for (std::size_t k = 0; k < rule.size(); ++k) {
          const double eta[3] = {rule.nodes[i], rule.nodes[j], rule.nodes[k]};
          const double wq = rule.weights[i] * rule.weights[j] * rule.weights[k];
          b.evalAll(eta, w.data());
          for (int a = 0; a < np; ++a)
            for (int c = 0; c < np; ++c)
              gram[static_cast<std::size_t>(a) * np + c] +=
                  wq * w[static_cast<std::size_t>(a)] * w[static_cast<std::size_t>(c)];
        }
    (void)nd;
    for (int a = 0; a < np; ++a)
      for (int c = 0; c < np; ++c)
        EXPECT_NEAR(gram[static_cast<std::size_t>(a) * np + c], a == c ? 1.0 : 0.0, 1e-12);
  }
}

TEST(Basis, FaceBasisClosure) {
  // Every volume mode restricted to a face maps to a face mode, and the
  // face basis has exactly the restricted set's size.
  for (const BasisFamily fam :
       {BasisFamily::MaximalOrder, BasisFamily::Serendipity, BasisFamily::Tensor}) {
    const Basis b(BasisSpec{2, 2, 2, fam});
    for (int d = 0; d < b.ndim(); ++d) {
      const Basis face = b.faceBasis(d);
      for (const MultiIndex& a : b.modes())
        EXPECT_GE(face.indexOf(a.dropDim(d, b.ndim())), 0);
      // Face family in d-1 dims is itself the same family.
      EXPECT_EQ(face.spec().polyOrder, b.spec().polyOrder);
      EXPECT_EQ(face.ndim(), b.ndim() - 1);
    }
  }
}

TEST(Basis, EvalExpansionMatchesModeSum) {
  const Basis b(BasisSpec{1, 1, 2, BasisFamily::Serendipity});
  std::vector<double> coeff(static_cast<std::size_t>(b.numModes()));
  for (int l = 0; l < b.numModes(); ++l) coeff[static_cast<std::size_t>(l)] = 0.1 * (l + 1);
  const double eta[2] = {0.25, -0.5};
  double expect = 0.0;
  for (int l = 0; l < b.numModes(); ++l)
    expect += coeff[static_cast<std::size_t>(l)] * b.evalMode(l, eta);
  EXPECT_NEAR(b.evalExpansion(coeff.data(), eta), expect, 1e-14);
}

TEST(Basis, InvalidSpecsThrow) {
  EXPECT_THROW(Basis(BasisSpec{7, 0, 1, BasisFamily::Tensor}), std::invalid_argument);
  EXPECT_THROW(Basis(BasisSpec{1, 0, 4, BasisFamily::Tensor}), std::invalid_argument);
  EXPECT_THROW(Basis(BasisSpec{3, 4, 1, BasisFamily::Tensor}), std::invalid_argument);
}

TEST(Basis, NamesAreStable) {
  EXPECT_EQ((BasisSpec{2, 3, 2, BasisFamily::Serendipity}).name(), "2x3v_p2_ser");
  EXPECT_EQ((BasisSpec{1, 0, 1, BasisFamily::Tensor}).name(), "1d_p1_ten");
  EXPECT_EQ((BasisSpec{3, 3, 1, BasisFamily::MaximalOrder}).name(), "3x3v_p1_max");
}

}  // namespace
}  // namespace vdg
