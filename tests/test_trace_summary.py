#!/usr/bin/env python3
"""Contract tests for tools/trace_summary.py.

Pins the exit codes and the headline numbers the summarizer prints for a
synthetic two-rank trace, so the CI bench-smoke step that runs it after a
traced distributed_landau can't silently rot:

  0 -- summarized
  2 -- missing/unreadable/invalid-JSON input
  3 -- parseable JSON that is not a Chrome trace-event document
       (no traceEvents array, malformed X event, or zero X events)

Stdlib only: unittest + subprocess, same harness as
tests/test_compare_bench_eop.py.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

SCRIPT = pathlib.Path(__file__).resolve().parent.parent / "tools" / "trace_summary.py"


def x(name, pid, ts, dur, tid=0):
    return {"ph": "X", "name": name, "pid": pid, "tid": tid, "ts": ts, "dur": dur,
            "cat": "zone"}


def two_rank_trace():
    # Rank 0: 100us step containing 30us of halo; rank 1: 200us step with
    # 20us of halo -> overall halo fraction 50/300, imbalance 200/150.
    events = [
        {"ph": "M", "name": "process_name", "pid": 0, "args": {"name": "rank 0"}},
        {"ph": "M", "name": "process_name", "pid": 1, "args": {"name": "rank 1"}},
        x("step", 0, 0.0, 100.0),
        x("halo:wait", 0, 10.0, 25.0),
        x("halo:pack", 0, 40.0, 5.0),
        x("step", 1, 0.0, 200.0),
        x("halo:wait", 1, 20.0, 20.0),
        x("vlasov:elc", 1, 50.0, 80.0),
    ]
    return {"traceEvents": events, "displayTimeUnit": "ms"}


class TraceSummaryContract(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = pathlib.Path(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, name, doc):
        path = self.dir / name
        path.write_text(json.dumps(doc))
        return path

    def run_tool(self, path, *extra):
        return subprocess.run(
            [sys.executable, str(SCRIPT), str(path), *extra],
            capture_output=True,
            text=True,
        )

    def test_summarizes_two_rank_trace(self):
        proc = self.run_tool(self.write("t.json", two_rank_trace()))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("2 rank track(s)", proc.stdout)
        # Overall halo fraction 50us/300us and the 200/150 imbalance.
        self.assertIn("0.167", proc.stdout)
        self.assertIn("imbalance 1.33", proc.stdout)
        # Ranks are labeled from the process_name metadata.
        self.assertIn("rank 0", proc.stdout)
        self.assertIn("rank 1", proc.stdout)

    def test_top_zones_ordered_by_total_time(self):
        proc = self.run_tool(self.write("t.json", two_rank_trace()), "--top", "2")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        lines = proc.stdout.splitlines()
        zone_lines = [l for l in lines if "step" in l or "vlasov:elc" in l]
        # step (300us total) must be listed before vlasov:elc (80us); the
        # --top 2 cut drops the halo zones from the table entirely.
        self.assertTrue(any("step" in l for l in zone_lines), proc.stdout)
        self.assertLess(proc.stdout.index(" step"), proc.stdout.index("vlasov:elc"))
        self.assertNotIn("halo:pack", proc.stdout.split("halo fraction")[0])

    def test_bare_array_form_accepted(self):
        proc = self.run_tool(self.write("t.json", two_rank_trace()["traceEvents"]))
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_missing_file_exits_2(self):
        proc = self.run_tool(self.dir / "nope.json")
        self.assertEqual(proc.returncode, 2, proc.stderr)
        self.assertIn("cannot read", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_invalid_json_exits_2(self):
        path = self.dir / "broken.json"
        path.write_text("{not json")
        proc = self.run_tool(path)
        self.assertEqual(proc.returncode, 2, proc.stderr)
        self.assertIn("not valid JSON", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_not_a_trace_document_exits_3(self):
        proc = self.run_tool(self.write("t.json", {"bench": "eop"}))
        self.assertEqual(proc.returncode, 3, proc.stderr)
        self.assertIn("no traceEvents", proc.stderr)

    def test_empty_trace_exits_3(self):
        proc = self.run_tool(self.write("t.json", {"traceEvents": []}))
        self.assertEqual(proc.returncode, 3, proc.stderr)
        self.assertIn("no complete", proc.stderr)

    def test_malformed_event_exits_3(self):
        doc = {"traceEvents": [{"ph": "X", "name": "step", "ts": 0.0}]}  # no dur
        proc = self.run_tool(self.write("t.json", doc))
        self.assertEqual(proc.returncode, 3, proc.stderr)
        self.assertIn("malformed", proc.stderr)


if __name__ == "__main__":
    unittest.main()
