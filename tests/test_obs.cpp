// The instrumentation layer's contract (src/obs/):
//
//   1. mechanics — hierarchical zone nesting, reentrancy (one name at two
//      depths is two paths), cross-thread arena merge, leaf zones, and
//      unbalanced-exit tolerance;
//   2. cost — the disabled path (null Profiler*) performs zero heap
//      allocations, and the enabled path allocates nothing in steady
//      state (zone names are copied only on first visit per thread);
//   3. non-interference — trajectories are bitwise identical with
//      profiling off and on: serial, threaded RHS execution, and a
//      2-rank forked ProcessComm run (skipped under TSan, where fork is
//      unsupported — the ThreadComm cases are the TSan job's targets);
//   4. reconciliation — the rank profilers' halo:* zone totals match the
//      HaloStats facade to summation rounding (identical timestamp
//      increments, possibly different grouping);
//   5. artifacts — the Chrome trace and the JSON report are valid JSON
//      (in-test recursive-descent parser, no third-party deps) with the
//      expected tracks and zones, and VDG_TRACE alone is enough to get a
//      trace out of a builder-assembled run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "app/conformance.hpp"
#include "app/distributed.hpp"
#include "app/simulation.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "par/process_comm.hpp"

#if defined(__SANITIZE_THREAD__)
#define VDG_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define VDG_TSAN 1
#endif
#endif
#ifndef VDG_TSAN
#define VDG_TSAN 0
#endif

// ------------------------------------------------- allocation observatory
// Whole-binary operator new/delete override counting every heap
// allocation; the zero-allocation assertions below read the counter
// around instrumented loops. Constant-initialized atomic: safe for
// allocations that happen before main().

namespace {
std::atomic<std::uint64_t> gAllocCount{0};
}  // namespace

void* operator new(std::size_t n) {
  gAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace vdg {
namespace {

// ------------------------------------------------------- JSON validation
// Minimal recursive-descent validator (same shape as the one pinning the
// ensemble result tables): enough of RFC 8259 to reject bare nan/inf and
// structural breakage in the exporters' output.

namespace json {

struct Parser {
  const std::string& s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' || s[i] == '\r')) ++i;
  }
  bool lit(const char* t) {
    const std::size_t n = std::strlen(t);
    if (s.compare(i, n, t) != 0) return false;
    i += n;
    return true;
  }
  bool string() {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') i += s[i] == '\\' ? 2 : 1;
    if (i >= s.size()) return false;
    ++i;
    return true;
  }
  bool number() {
    char* end = nullptr;
    std::strtod(s.c_str() + i, &end);
    if (end == s.c_str() + i) return false;
    if (s[i] != '-' && (s[i] < '0' || s[i] > '9')) return false;
    i = static_cast<std::size_t>(end - s.c_str());
    return true;
  }
  bool value() {  // NOLINT(misc-no-recursion)
    ws();
    if (i >= s.size()) return false;
    if (s[i] == '"') return string();
    if (s[i] == '{') {
      ++i;
      ws();
      if (s[i] == '}') return ++i, true;
      while (true) {
        ws();
        if (!string()) return false;
        ws();
        if (i >= s.size() || s[i] != ':') return false;
        ++i;
        if (!value()) return false;
        ws();
        if (i < s.size() && s[i] == ',') { ++i; continue; }
        break;
      }
      if (i >= s.size() || s[i] != '}') return false;
      return ++i, true;
    }
    if (s[i] == '[') {
      ++i;
      ws();
      if (s[i] == ']') return ++i, true;
      while (true) {
        if (!value()) return false;
        ws();
        if (i < s.size() && s[i] == ',') { ++i; continue; }
        break;
      }
      if (i >= s.size() || s[i] != ']') return false;
      return ++i, true;
    }
    return lit("true") || lit("false") || lit("null") || number();
  }
};

bool valid(const std::string& text) {
  Parser p{text};
  if (!p.value()) return false;
  p.ws();
  return p.i == text.size();
}

}  // namespace json

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

std::string tmpPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

ProfilingSpec enabledSpec() {
  ProfilingSpec s;
  s.enabled = true;
  return s;
}

ProfilingSpec tracingSpec() {
  ProfilingSpec s;
  s.enabled = true;
  s.trace = true;
  return s;
}

/// Bitwise comparison of two full StateVectors.
int mismatchedCoeffs(const StateVector& a, const StateVector& b) {
  int bad = 0;
  for (int i = 0; i < a.numSlots(); ++i) {
    const Field& fa = a.slot(i);
    const Field& fb = b.slot(i);
    forEachCell(fa.grid(), [&](const MultiIndex& idx) {
      for (int c = 0; c < fa.ncomp(); ++c)
        if (fa.at(idx)[c] != fb.at(idx)[c]) ++bad;
    });
  }
  return bad;
}

// ------------------------------------------------------------- mechanics

TEST(Profiler, NestedZonesReentrancyAndPaths) {
  Profiler p(enabledSpec());
  {
    const ScopedTimer a(&p, "a");
    {
      const ScopedTimer b(&p, "b");
    }
    {
      const ScopedTimer b(&p, "b");
    }
  }
  {
    const ScopedTimer b(&p, "b");  // same name, different depth: new path
  }
  const std::vector<ZoneReport> rows = p.report();
  ASSERT_EQ(rows.size(), 3u);
  // Depth-first, first-entry order.
  EXPECT_EQ(rows[0].path, "a");
  EXPECT_EQ(rows[0].depth, 0);
  EXPECT_EQ(rows[0].count, 1u);
  EXPECT_EQ(rows[1].path, "a/b");
  EXPECT_EQ(rows[1].depth, 1);
  EXPECT_EQ(rows[1].count, 2u);
  EXPECT_EQ(rows[2].path, "b");
  EXPECT_EQ(rows[2].depth, 0);
  EXPECT_EQ(rows[2].count, 1u);
  // zoneSeconds sums every node of the name, across parents.
  EXPECT_GE(p.zoneSeconds("b"), rows[1].seconds);
  EXPECT_EQ(p.zoneSeconds("b"), p.zoneSeconds("b"));  // stable under re-read
  EXPECT_GE(rows[0].seconds, rows[1].seconds);        // parent contains child
  // The indented table mentions every zone.
  const std::string table = p.table();
  EXPECT_NE(table.find("a"), std::string::npos);
  EXPECT_NE(table.find("  b"), std::string::npos);
}

TEST(Profiler, UnbalancedExitIsIgnored) {
  Profiler p(enabledSpec());
  p.exit();  // nothing open: must not crash or underflow
  p.enter("z");
  p.exit();
  p.exit();  // extra exit after balanced close
  const std::vector<ZoneReport> rows = p.report();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].path, "z");
  EXPECT_EQ(rows[0].count, 1u);
}

TEST(Profiler, LeafZoneBooksUnderOpenZone) {
  Profiler p(enabledSpec());
  const auto t0 = MonoClock::now();
  const auto t1 = t0 + std::chrono::microseconds(250);
  p.enter("halo");
  p.leafZone("halo:pack", t0, t1);
  p.leafZone("halo:pack", t0, t1);
  p.exit();
  const std::vector<ZoneReport> rows = p.report();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].path, "halo/halo:pack");
  EXPECT_EQ(rows[1].count, 2u);
  EXPECT_DOUBLE_EQ(rows[1].seconds, 2.0 * secondsBetween(t0, t1));
}

TEST(Profiler, MergesArenasAcrossThreads) {
  Profiler p(tracingSpec());
  {
    const ScopedTimer a(&p, "work");
  }
  std::thread t([&p] {
    Profiler::setThisThreadTrack(7, "helper 7");
    const ScopedTimer a(&p, "work");
    const ScopedTimer b(&p, "inner");
  });
  t.join();
  const std::vector<ZoneReport> rows = p.report();
  ASSERT_GE(rows.size(), 2u);
  EXPECT_EQ(rows[0].path, "work");
  EXPECT_EQ(rows[0].count, 2u);  // one per thread, merged by path
  EXPECT_EQ(rows[1].path, "work/inner");
  EXPECT_EQ(rows[1].count, 1u);
  // The trace carries the helper thread's labeled track.
  std::ostringstream os;
  bool first = true;
  p.appendTraceJson(os, p.epoch(), first);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(trace.find("helper 7"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
}

TEST(Metrics, CountersGaugesAndSnapshots) {
  MetricsRegistry m;
  m.add("halo.bytes", 100.0);
  m.add("halo.bytes", 50.0);  // counters accumulate
  m.set("cfl.dt", 0.25);
  m.set("cfl.dt", 0.125);  // gauges overwrite
  EXPECT_EQ(m.counter("halo.bytes"), 150.0);
  EXPECT_EQ(m.gauge("cfl.dt"), 0.125);
  m.recordSnapshot(1.0, 10);
  m.add("halo.bytes", 1.0);
  m.recordSnapshot(2.0, 20);
  const auto& hist = m.history();
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist[0].step, 10u);
  EXPECT_EQ(hist[0].counters.front().second, 150.0);
  EXPECT_EQ(hist[1].counters.front().second, 151.0);
  EXPECT_EQ(hist[1].simTime, 2.0);
}

// ------------------------------------------------------------------ cost

TEST(Profiler, DisabledPathAllocatesNothing) {
  Profiler* const none = nullptr;
  const std::uint64_t before = gAllocCount.load(std::memory_order_relaxed);
  for (int i = 0; i < 100000; ++i) {
    const ScopedTimer zone(none, "hot");
  }
  EXPECT_EQ(gAllocCount.load(std::memory_order_relaxed), before)
      << "null-profiler ScopedTimer must be one branch, no heap traffic";
}

TEST(Profiler, EnabledSteadyStateAllocatesNothing) {
  Profiler p(enabledSpec());  // non-tracing: no event stream growth
  // Warm up: register the arena, intern the zone names, size the stacks.
  for (int i = 0; i < 4; ++i) {
    const ScopedTimer a(&p, "outer");
    const ScopedTimer b(&p, "inner");
  }
  const std::uint64_t before = gAllocCount.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    const ScopedTimer a(&p, "outer");
    const ScopedTimer b(&p, "inner");
  }
  EXPECT_EQ(gAllocCount.load(std::memory_order_relaxed), before)
      << "revisiting interned zones must not allocate";
}

// ------------------------------------------------------ non-interference

TEST(ObsIdentity, SerialTrajectoryBitwiseUnchanged) {
  Simulation::Builder base = conformanceScenario("landau");
  Simulation::Builder boff = base;
  boff.profiling(ProfilingSpec{});
  Simulation off = boff.build();
  Simulation::Builder bon = base;
  bon.profiling(tracingSpec());
  Simulation on = bon.build();
  for (int s = 0; s < 3; ++s) EXPECT_EQ(off.step(), on.step()) << "step " << s;
  EXPECT_EQ(mismatchedCoeffs(off.state(), on.state()), 0);
  EXPECT_NE(on.profiler(), nullptr);
  EXPECT_EQ(off.profiler(), nullptr);
  EXPECT_GT(on.profiler()->zoneSeconds("step"), 0.0);
}

TEST(ObsIdentity, ThreadedTrajectoryBitwiseUnchanged) {
  Simulation::Builder base = conformanceScenario("landau");
  base.threads(2);
  Simulation::Builder boff = base;
  boff.profiling(ProfilingSpec{});
  Simulation off = boff.build();
  Simulation::Builder bon = base;
  bon.profiling(tracingSpec());
  Simulation on = bon.build();
  for (int s = 0; s < 3; ++s) EXPECT_EQ(off.step(), on.step()) << "step " << s;
  EXPECT_EQ(mismatchedCoeffs(off.state(), on.state()), 0);
}

TEST(ObsIdentity, ProcessCommTrajectoryMatchesOracleWithProfilingOn) {
  if (VDG_TSAN) GTEST_SKIP() << "fork-based backend not exercised under TSan";
  Simulation::Builder builder = conformanceScenario("landau");
  builder.profiling(tracingSpec());  // events recorded, no file output
  const CartDecomp decomp = conformanceDecomp(builder, 2);
  const auto outcomes = ProcessGroup::run(
      decomp,
      [&](ProcessComm& pc) {
        return packConformance(runConformanceRank(builder, decomp, pc, 3));
      },
      /*recvTimeoutSec=*/120.0);
  ASSERT_EQ(outcomes.size(), 2u);
  for (int r = 0; r < 2; ++r) {
    const auto& o = outcomes[static_cast<std::size_t>(r)];
    ASSERT_TRUE(o.ok) << "rank " << r << ": " << o.error;
    const ConformanceResult res = unpackConformance(o.values);
    EXPECT_EQ(res.mismatches, 0.0) << "rank " << r;
    EXPECT_EQ(res.rank.dts, res.oracle.dts) << "rank " << r;
  }
}

// -------------------------------------------------------- reconciliation

TEST(ObsReconcile, HaloZonesMatchHaloStats) {
  Simulation::Builder builder = conformanceScenario("landau");
  builder.profiling(ProfilingSpec{});  // rank profilers are on regardless
  DistributedSimulation dist(builder, 2);
  for (int s = 0; s < 3; ++s) dist.step();
  for (int r = 0; r < 2; ++r) {
    const HaloStats& hs = dist.comm().endpoint(r).haloStats();
    const Profiler& p = dist.rankProfiler(r);
    const auto near = [](double zone, double stat) {
      // Identical increments, possibly different summation grouping.
      EXPECT_NEAR(zone, stat, 1e-12 + 1e-9 * stat);
    };
    near(p.zoneSeconds("halo:pack"), hs.packSec);
    near(p.zoneSeconds("halo:post"), hs.postSec);
    near(p.zoneSeconds("halo:wait"), hs.waitSec);
    near(p.zoneSeconds("halo:unpack"), hs.unpackSec);
    near(p.zoneSeconds("halo:reduce"), hs.reduceSec);
    EXPECT_GT(hs.waitSec + hs.packSec + hs.unpackSec, 0.0) << "rank " << r;
  }
  // And the public split reads the same instruments.
  EXPECT_GT(dist.computeSeconds(), 0.0);
  EXPECT_GT(dist.haloSeconds(), 0.0);
}

TEST(ObsReconcile, ZoneSummaryAggregatesAcrossRanks) {
  Simulation::Builder builder = conformanceScenario("landau");
  builder.profiling(ProfilingSpec{});
  DistributedSimulation dist(builder, 2);
  const int steps = dist.advanceTo(0.2);
  ASSERT_GT(steps, 0);
  const auto summary = dist.zoneSummary();
  bool sawStep = false;
  for (const auto& zs : summary) {
    EXPECT_LE(zs.minSec, zs.meanSec + 1e-15) << zs.path;
    EXPECT_LE(zs.meanSec, zs.maxSec + 1e-15) << zs.path;
    if (zs.path == "step") {
      sawStep = true;
      EXPECT_EQ(zs.count, static_cast<std::uint64_t>(steps));
      EXPECT_GT(zs.meanSec, 0.0);
    }
  }
  EXPECT_TRUE(sawStep) << "zoneSummary lost the step zone";
}

// ------------------------------------------------------------- artifacts

TEST(ObsArtifacts, ChromeTraceIsValidAndCarriesRankTracks) {
  const std::string path = tmpPath("vdg_obs_trace.json");
  {
    Simulation::Builder builder = conformanceScenario("landau");
    builder.profiling(tracingSpec());
    DistributedSimulation dist(builder, 2);
    for (int s = 0; s < 2; ++s) dist.step();
    dist.writeTrace(path);
  }
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(json::valid(text)) << text.substr(0, 400);
  // Per-rank process tracks and the zone taxonomy's key phases.
  EXPECT_NE(text.find("\"rank 0\""), std::string::npos);
  EXPECT_NE(text.find("\"rank 1\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"step\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"rk:stage1\""), std::string::npos);
  EXPECT_NE(text.find("halo:pack"), std::string::npos);
  EXPECT_NE(text.find("halo:wait"), std::string::npos);
  EXPECT_NE(text.find("halo:unpack"), std::string::npos);
  EXPECT_NE(text.find("vlasov:"), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(ObsArtifacts, ReportJsonIsValidWithMetricsAndSnapshots) {
  const std::string path = tmpPath("vdg_obs_report.json");
  {
    ProfilingSpec spec;
    spec.enabled = true;
    spec.reportPath = path;
    spec.reportEvery = 1;  // snapshot after every step
    Simulation::Builder builder = conformanceScenario("landau");
    builder.profiling(spec);
    Simulation sim = builder.build();
    sim.step();
    sim.step();
  }  // destructor flushes the report
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty());
  EXPECT_TRUE(json::valid(text)) << text.substr(0, 400);
  EXPECT_NE(text.find("\"steps\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"zones\""), std::string::npos);
  EXPECT_NE(text.find("\"path\": \"step\""), std::string::npos);
  EXPECT_NE(text.find("\"cfl.dt\""), std::string::npos);
  EXPECT_NE(text.find("\"snapshots\""), std::string::npos);
  EXPECT_NE(text.find("\"step\": 1"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(ObsArtifacts, EnvVarAloneProducesTrace) {
  const std::string path = tmpPath("vdg_obs_env_trace.json");
  struct EnvGuard {
    ~EnvGuard() { unsetenv("VDG_TRACE"); }
  } guard;
  setenv("VDG_TRACE", path.c_str(), 1);
  {
    Simulation::Builder builder = conformanceScenario("landau");
    Simulation sim = builder.build();  // no explicit spec: env opt-in
    sim.step();
  }  // destructor writes the trace
  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty()) << "VDG_TRACE did not produce a trace file";
  EXPECT_TRUE(json::valid(text)) << text.substr(0, 400);
  EXPECT_NE(text.find("\"name\":\"step\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(ObsArtifacts, FromEnvParsesProfileVariable) {
  struct EnvGuard {
    ~EnvGuard() {
      unsetenv("VDG_TRACE");
      unsetenv("VDG_PROFILE");
    }
  } guard;
  unsetenv("VDG_TRACE");
  unsetenv("VDG_PROFILE");
  EXPECT_FALSE(ProfilingSpec::fromEnv().active());
  setenv("VDG_PROFILE", "1", 1);
  ProfilingSpec s = ProfilingSpec::fromEnv();
  EXPECT_TRUE(s.enabled);
  EXPECT_TRUE(s.reportPath.empty());
  EXPECT_FALSE(s.tracing());
  setenv("VDG_PROFILE", "prof.json", 1);
  s = ProfilingSpec::fromEnv();
  EXPECT_TRUE(s.enabled);
  EXPECT_EQ(s.reportPath, "prof.json");
  setenv("VDG_PROFILE", "0", 1);
  EXPECT_FALSE(ProfilingSpec::fromEnv().active());
  setenv("VDG_TRACE", "t.json", 1);
  s = ProfilingSpec::fromEnv();
  EXPECT_TRUE(s.enabled);
  EXPECT_TRUE(s.tracing());
  EXPECT_EQ(s.tracePath, "t.json");
}

}  // namespace
}  // namespace vdg
