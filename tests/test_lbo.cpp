// Conservative Lenard-Bernstein/Dougherty operator tests: the conservation
// battery (M0/M1/M2 unchanged to machine precision per advance, zero-flux
// velocity boundaries checked on the raw surface terms), relaxation of a
// two-beam distribution to the Maxwellian with the initial moments,
// near-fixed-point behavior of a discrete Maxwellian, LBO-vs-BGK
// equilibrium cross-check, and entropy monotonicity.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>
#include <vector>

#include "app/projection.hpp"
#include "app/simulation.hpp"
#include "collisions/bgk.hpp"
#include "collisions/lbo.hpp"
#include "math/gauss_legendre.hpp"

namespace vdg {
namespace {

constexpr double kPi = std::numbers::pi;

/// Random distf with a dominant positive cell mean (strictly positive for
/// the perturbation sizes used here).
Field randomPositiveDistf(const BasisSpec& spec, const Grid& pg, unsigned seed) {
  const Basis& b = basisFor(spec);
  Field f(pg, b.numModes());
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  forEachCell(pg, [&](const MultiIndex& idx) {
    double* fc = f.at(idx);
    for (int l = 0; l < b.numModes(); ++l)
      fc[l] = (l == 0) ? 1.0 + 0.5 * u(rng) : 0.05 * u(rng);
  });
  return f;
}

struct GlobalMoments {
  double m0 = 0.0, m1[3] = {0.0, 0.0, 0.0}, m2 = 0.0;
};

GlobalMoments globalMoments(const BasisSpec& spec, const Grid& pg, const Field& f) {
  const MomentUpdater mom(spec, pg);
  const Grid cg = mom.confGrid();
  const int npc = mom.numConfModes();
  Field m0(cg, npc), m1(cg, 3 * npc), m2(cg, npc);
  mom.compute(f, &m0, &m1, &m2);
  const Basis& cb = basisFor(spec.configSpec());
  GlobalMoments g;
  g.m0 = integrateDomain(cb, cg, m0);
  for (int j = 0; j < 3; ++j) g.m1[j] = integrateDomain(cb, cg, m1, j);
  g.m2 = integrateDomain(cb, cg, m2);
  return g;
}

/// Discrete entropy -int f ln f via Gauss quadrature (f clamped below at
/// 1e-30; slightly negative projected tails contribute nothing).
double entropy(const BasisSpec& spec, const Grid& pg, const Field& f) {
  const Basis& b = basisFor(spec);
  const int nd = spec.ndim();
  const QuadRule rule = gauss_legendre(spec.polyOrder + 2);
  const int nq1 = static_cast<int>(rule.nodes.size());
  double jac = 1.0;
  for (int d = 0; d < nd; ++d) jac *= 0.5 * pg.dx(d);
  double s = 0.0;
  forEachCell(pg, [&](const MultiIndex& idx) {
    int qi[kMaxDim] = {};
    while (true) {
      double eta[kMaxDim];
      double w = 1.0;
      for (int d = 0; d < nd; ++d) {
        eta[d] = rule.nodes[static_cast<std::size_t>(qi[d])];
        w *= rule.weights[static_cast<std::size_t>(qi[d])];
      }
      const double val = b.evalExpansion(f.at(idx), eta);
      if (val > 1e-30) s -= w * val * std::log(val);
      int d = 0;
      while (d < nd && ++qi[d] >= nq1) qi[d++] = 0;
      if (d == nd) break;
    }
  });
  return jac * s;
}

struct ConsCase {
  int vdim, polyOrder;
};

class LboConservation : public ::testing::TestWithParam<ConsCase> {};

TEST_P(LboConservation, OneStepKeepsM0M1M2ToMachinePrecision) {
  const auto [vdim, p] = GetParam();
  const BasisSpec spec{1, vdim, p, BasisFamily::Serendipity};
  const Grid conf = Grid::make({3}, {0.0}, {1.0});
  const Grid vel = (vdim == 1) ? Grid::make({12}, {-5.0}, {5.0})
                               : Grid::make({8, 8}, {-5.0, -4.0}, {5.0, 4.0});
  const Grid pg = Grid::phase(conf, vel);
  Field f = randomPositiveDistf(spec, pg, 17u + static_cast<unsigned>(vdim * 10 + p));

  const double nu = 2.5;
  const LboUpdater lbo(spec, pg, LboParams{1.0, nu, true});
  Field rhs(pg, f.ncomp());
  rhs.setZero();
  lbo.advance(f, rhs);

  const GlobalMoments gf = globalMoments(spec, pg, f);
  const GlobalMoments gr = globalMoments(spec, pg, rhs);
  // The increment's moments, relative to the operator's own scale nu * f.
  const double scale = nu * (std::abs(gf.m0) + std::abs(gf.m2));
  EXPECT_LT(std::abs(gr.m0), 1e-12 * scale) << "vdim=" << vdim << " p=" << p;
  for (int j = 0; j < vdim; ++j)
    EXPECT_LT(std::abs(gr.m1[j]), 1e-12 * scale) << "vdim=" << vdim << " p=" << p << " j=" << j;
  EXPECT_LT(std::abs(gr.m2), 1e-12 * scale) << "vdim=" << vdim << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Cases, LboConservation,
                         ::testing::Values(ConsCase{1, 1}, ConsCase{1, 2}, ConsCase{2, 1},
                                           ConsCase{2, 2}),
                         [](const auto& info) {
                           return "v" + std::to_string(info.param.vdim) + "p" +
                                  std::to_string(info.param.polyOrder);
                         });

TEST(Lbo, ZeroFluxBoundariesConserveDensityWithoutCorrection) {
  // Density conservation must come from the surface terms alone (interior
  // fluxes telescope, boundary fluxes are dropped) — checked on the raw
  // drag + diffusion increments, with the moment correction disabled, per
  // configuration cell.
  const BasisSpec spec{1, 1, 2, BasisFamily::Serendipity};
  const Grid pg = Grid::phase(Grid::make({3}, {0.0}, {1.0}), Grid::make({16}, {-6.0}, {6.0}));
  Field f = randomPositiveDistf(spec, pg, 7u);

  const LboUpdater lbo(spec, pg, LboParams{1.0, 1.0, false});
  const Grid cg = lbo.confGrid();
  const int npc = lbo.numConfModes();
  Field u(cg, npc), vtSq(cg, npc);
  lbo.primitiveMoments(f, u, vtSq);

  Field rhs(pg, f.ncomp());
  rhs.setZero();
  lbo.dragTerm(f, u, rhs);
  lbo.diffusionTerm(f, vtSq, rhs);

  const MomentUpdater mom(spec, pg);
  Field dm0(cg, npc), m0(cg, npc);
  mom.compute(rhs, &dm0, nullptr, nullptr);
  mom.compute(f, &m0, nullptr, nullptr);
  forEachCell(cg, [&](const MultiIndex& idx) {
    EXPECT_LT(std::abs(dm0.at(idx)[0]), 1e-12 * std::abs(m0.at(idx)[0]));
  });
}

TEST(Lbo, MaxwellianIsNearFixedPoint) {
  const BasisSpec spec{1, 1, 2, BasisFamily::Serendipity};
  const Grid pg = Grid::phase(Grid::make({2}, {0.0}, {1.0}), Grid::make({64}, {-8.0}, {8.0}));
  const Basis& b = basisFor(spec);
  Field f(pg, b.numModes());
  projectOnBasis(
      b, pg, [](const double* z) { return std::exp(-0.5 * z[1] * z[1]) / std::sqrt(2.0 * kPi); },
      f, 5);
  const LboUpdater lbo(spec, pg, LboParams{1.0, 1.0, true});
  Field rhs(pg, b.numModes());
  rhs.setZero();
  lbo.advance(f, rhs);
  double fMag = 0.0, rMag = 0.0;
  forEachCell(pg, [&](const MultiIndex& idx) {
    for (int l = 0; l < b.numModes(); ++l) {
      fMag = std::max(fMag, std::abs(f.at(idx)[l]));
      rMag = std::max(rMag, std::abs(rhs.at(idx)[l]));
    }
  });
  // The drag+diffusion residual on a projected Maxwellian is a genuine
  // discretization residual (measured ~O(h^2) in this sup-norm metric:
  // 2.8e-2 / 5.8e-3 / 1.9e-3 / 5.1e-4 at nv = 16/32/64/128).
  EXPECT_LT(rMag, 3e-3 * fMag);
}

/// Two-beam initial condition shared by the relaxation tests.
ScalarFn twoBeam() {
  return [](const double* z) {
    const double v = z[1];
    const double vt2 = 0.36;
    const double a = std::exp(-0.5 * (v - 1.5) * (v - 1.5) / vt2);
    const double c = std::exp(-0.5 * (v + 1.5) * (v + 1.5) / vt2);
    return (a + c) / (2.0 * std::sqrt(2.0 * kPi * vt2));
  };
}

Simulation relaxationSim(const LboParams& lp) {
  auto b = Simulation::builder();
  b.confGrid(Grid::make({2}, {0.0}, {1.0}))
      .basis(2, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({32}, {-8.0}, {8.0}), twoBeam(), FluxType::Penalty)
      .collisions(lp)
      .evolveField(false)
      .cflFrac(0.8)
      .threads(1);
  return b.build();
}

TEST(Lbo, RelaxesTwoBeamToMaxwellianWithInitialMoments) {
  const BasisSpec spec{1, 1, 2, BasisFamily::Serendipity};
  Simulation sim = relaxationSim(LboParams{1.0, 4.0, true});
  const Grid& pg = sim.phaseGrid(0);

  const GlobalMoments g0 = globalMoments(spec, pg, sim.distf(0));
  std::vector<double> entropies;
  entropies.push_back(entropy(spec, pg, sim.distf(0)));
  const double tEnd = 1.5;  // 6 collision times
  const int checkpoints = 6;
  for (int c = 1; c <= checkpoints; ++c) {
    sim.advanceTo(tEnd * c / checkpoints);
    entropies.push_back(entropy(spec, pg, sim.distf(0)));
  }

  // Entropy -int f ln f grows monotonically toward the Maxwellian's.
  for (std::size_t i = 1; i < entropies.size(); ++i)
    EXPECT_GE(entropies[i], entropies[i - 1] - 1e-10) << "checkpoint " << i;

  // Moments are conserved through the whole run...
  const GlobalMoments g1 = globalMoments(spec, pg, sim.distf(0));
  const double scale = std::abs(g0.m0) + std::abs(g0.m2);
  EXPECT_LT(std::abs(g1.m0 - g0.m0), 1e-11 * scale);
  EXPECT_LT(std::abs(g1.m1[0] - g0.m1[0]), 1e-11 * scale);
  EXPECT_LT(std::abs(g1.m2 - g0.m2), 1e-11 * scale);

  // ... and the final state is the Maxwellian with those moments: compare
  // against the projected Maxwellian of the *initial* (n, u, vth^2).
  const BgkUpdater bgk(spec, pg, BgkParams{1.0, 1.0});
  Field fM(pg, sim.distf(0).ncomp());
  bgk.projectMaxwellian(sim.distf(0), fM);
  double num = 0.0, den = 0.0;
  forEachCell(pg, [&](const MultiIndex& idx) {
    for (int l = 0; l < fM.ncomp(); ++l) {
      const double d = sim.distf(0).at(idx)[l] - fM.at(idx)[l];
      num += d * d;
      den += fM.at(idx)[l] * fM.at(idx)[l];
    }
  });
  EXPECT_LT(std::sqrt(num / den), 0.02);
}

TEST(Lbo, MatchesBgkEquilibriumMoments) {
  const BasisSpec spec{1, 1, 2, BasisFamily::Serendipity};
  Simulation lboSim = relaxationSim(LboParams{1.0, 4.0, true});

  auto b = Simulation::builder();
  b.confGrid(Grid::make({2}, {0.0}, {1.0}))
      .basis(2, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({32}, {-8.0}, {8.0}), twoBeam(), FluxType::Penalty)
      .collisions(BgkParams{1.0, 4.0})
      .evolveField(false)
      .cflFrac(0.8)
      .threads(1);
  Simulation bgkSim = b.build();

  const Grid& pg = lboSim.phaseGrid(0);
  lboSim.advanceTo(1.5);
  bgkSim.advanceTo(1.5);

  const GlobalMoments gl = globalMoments(spec, pg, lboSim.distf(0));
  const GlobalMoments gb = globalMoments(spec, pg, bgkSim.distf(0));
  // Both operators relax to the Maxwellian of the shared initial moments;
  // BGK conserves momentum/energy only to the Maxwellian-projection error,
  // hence the modest tolerance.
  EXPECT_NEAR(gl.m0, gb.m0, 1e-6 * std::abs(gl.m0));
  EXPECT_NEAR(gl.m1[0], gb.m1[0], 1e-3 * std::abs(gl.m0));
  EXPECT_NEAR(gl.m2, gb.m2, 1e-2 * std::abs(gl.m2));
}

TEST(Lbo, StiffnessEntersCflAndPipeline) {
  Simulation sim = relaxationSim(LboParams{1.0, 50.0, true});
  bool found = false;
  for (const auto& upd : sim.pipeline())
    if (upd->name() == "lbo:elc") found = true;
  EXPECT_TRUE(found);
  // A 50x stiffer operator must shrink dt accordingly.
  Simulation gentle = relaxationSim(LboParams{1.0, 0.5, true});
  const double dtStiff = sim.step();
  const double dtGentle = gentle.step();
  EXPECT_LT(dtStiff, 0.05 * dtGentle);
}

TEST(Lbo, TemperatureUsesSpeciesMass) {
  const BasisSpec spec{1, 1, 2, BasisFamily::Serendipity};
  const Grid pg = Grid::phase(Grid::make({2}, {0.0}, {1.0}), Grid::make({32}, {-8.0}, {8.0}));
  const Basis& b = basisFor(spec);
  Field f(pg, b.numModes());
  const double vt2 = 1.44;
  projectOnBasis(
      b, pg,
      [&](const double* z) {
        return std::exp(-0.5 * z[1] * z[1] / vt2) / std::sqrt(2.0 * kPi * vt2);
      },
      f, 5);
  const double mass = 1836.0;
  const LboUpdater lbo(spec, pg, LboParams{mass, 1.0, true});
  Field T(lbo.confGrid(), lbo.numConfModes());
  lbo.temperature(f, T);
  const double tAvg = T.at(MultiIndex{})[0] / std::sqrt(2.0);
  EXPECT_NEAR(tAvg, mass * vt2, 1e-6 * mass * vt2);
}

}  // namespace
}  // namespace vdg
