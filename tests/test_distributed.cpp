// The distributed layer's headline guarantee: a DistributedSimulation —
// full Updater pipeline per rank (Vlasov + Maxwell + current coupling +
// optional BGK), CartDecomp block decomposition, packed ThreadComm halo
// exchange, globally-reduced CFL dt — reproduces the serial Simulation
// trajectory *bit for bit*. Rank-local grids do their coordinate
// arithmetic in global terms (Grid::subgrid) and ghost exchange is a pure
// copy of the cells a serial periodic sync would read, so there is no
// tolerance anywhere in these comparisons.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <numbers>
#include <thread>
#include <vector>

#include "app/distributed.hpp"
#include "app/simulation.hpp"
#include "par/communicator.hpp"

namespace vdg {
namespace {

constexpr double kPi = std::numbers::pi;

/// Bitwise comparison of every slot's interior cells. Returns the number
/// of mismatching coefficients (0 == identical).
int countMismatches(const StateVector& a, const StateVector& b) {
  EXPECT_EQ(a.numSlots(), b.numSlots());
  int bad = 0;
  for (int i = 0; i < a.numSlots(); ++i) {
    const Field& fa = a.slot(i);
    const Field& fb = b.slot(i);
    EXPECT_EQ(fa.ncomp(), fb.ncomp());
    forEachCell(fa.grid(), [&](const MultiIndex& idx) {
      const double* pa = fa.at(idx);
      const double* pb = fb.at(idx);
      for (int l = 0; l < fa.ncomp(); ++l)
        if (pa[l] != pb[l]) ++bad;
    });
  }
  return bad;
}

Simulation::Builder landauBuilder(int confCells) {
  const double k = 0.5;
  auto b = Simulation::builder();
  b.confGrid(Grid::make({confCells}, {0.0}, {2.0 * kPi / k}))
      .basis(2, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({16}, {-6.0}, {6.0}),
               [k](const double* z) {
                 const double x = z[0], v = z[1];
                 return (1.0 + 0.05 * std::cos(k * x)) / std::sqrt(2.0 * kPi) *
                        std::exp(-0.5 * v * v);
               })
      .field(MaxwellParams{})
      .initField([k](const double* x, double* em) {
        for (int c = 0; c < 8; ++c) em[c] = 0.0;
        em[0] = -0.05 * std::sin(k * x[0]) / k;
      })
      .stepper(Stepper::SspRk3)
      .cflFrac(0.8)
      .threads(1);
  return b;
}

Simulation::Builder weibelBuilder() {
  const double u0 = 0.4, vt = 0.3, amp = 1e-3;
  auto b = Simulation::builder();
  b.confGrid(Grid::make({6, 6}, {0.0, 0.0}, {2.0 * kPi, 2.0 * kPi}))
      .basis(1, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({6, 6}, {-1.5, -1.5}, {1.5, 1.5}),
               [=](const double* z) {
                 const double x = z[0], y = z[1], vx = z[2], vy = z[3];
                 const double pert = 1.0 + amp * (std::cos(x) + std::cos(y));
                 const double beams = std::exp(-0.5 * (vx - u0) * (vx - u0) / (vt * vt)) +
                                      std::exp(-0.5 * (vx + u0) * (vx + u0) / (vt * vt));
                 return pert * 0.5 * beams * std::exp(-0.5 * vy * vy / (vt * vt)) /
                        (2.0 * kPi * vt * vt);
               })
      .field(MaxwellParams{})
      .initField([=](const double* x, double* em) {
        for (int c = 0; c < 8; ++c) em[c] = 0.0;
        em[5] = amp * (std::cos(x[0]) + std::sin(x[1]));
      })
      .backgroundCharge(1.0)
      .cflFrac(0.8)
      .threads(1);
  return b;
}

TEST(DistributedSimulation, LandauDampingMatchesSerialBitForBit) {
  auto builder = landauBuilder(12);
  Simulation serial = builder.build();
  std::vector<double> serialDt;
  const int steps = 5;
  for (int i = 0; i < steps; ++i) serialDt.push_back(serial.step());

  for (int ranks : {2, 4}) {
    DistributedSimulation dist(builder, ranks);
    ASSERT_EQ(dist.numRanks(), ranks);
    for (int i = 0; i < steps; ++i) {
      const double dt = dist.step();
      // The globally-reduced CFL frequency must reproduce the serial dt
      // exactly (max is order-independent).
      EXPECT_EQ(dt, serialDt[static_cast<std::size_t>(i)]) << "ranks=" << ranks << " step=" << i;
    }
    EXPECT_EQ(dist.time(), serial.time()) << "ranks=" << ranks;
    EXPECT_EQ(countMismatches(dist.gather(), serial.state()), 0) << "ranks=" << ranks;
    // Multi-rank runs exchanged real halo bytes; the single code path
    // means a 1-rank run would not (periodic wrap is a self copy).
    EXPECT_GT(dist.haloBytes(), 0u);
  }
}

TEST(DistributedSimulation, UnevenDecompositionStaysBitExact) {
  // 10 cells over 4 ranks: blocks of 3,3,2,2 — the uneven-count paths of
  // CartDecomp, packGhost and gather all exercised.
  auto builder = landauBuilder(10);
  Simulation serial = builder.build();
  for (int i = 0; i < 3; ++i) serial.step();

  DistributedSimulation dist(builder, 4);
  for (int i = 0; i < 3; ++i) dist.step();
  EXPECT_EQ(countMismatches(dist.gather(), serial.state()), 0);
}

TEST(DistributedSimulation, Weibel2x2vSmokeMatchesSerialBitForBit) {
  auto builder = weibelBuilder();
  Simulation serial = builder.build();
  for (int i = 0; i < 2; ++i) serial.step();

  // 4 ranks on a 6x6 configuration grid decompose 2x2: the 2-D exchange
  // including the corner ghosts (filled across two dimension syncs) must
  // still be exact.
  DistributedSimulation dist(builder, 4);
  EXPECT_EQ(dist.decomp().blocks[0], 2);
  EXPECT_EQ(dist.decomp().blocks[1], 2);
  for (int i = 0; i < 2; ++i) dist.step();
  EXPECT_EQ(countMismatches(dist.gather(), serial.state()), 0);
  EXPECT_EQ(dist.time(), serial.time());
}

TEST(DistributedSimulation, ScatterGatherRoundTripsAndAdvanceToAgrees) {
  auto builder = landauBuilder(12);
  Simulation serial = builder.build();

  DistributedSimulation dist(builder, 3);
  // Scatter the serial initial state (bit-identical to the per-rank
  // projections anyway) and advance both to the same physical time.
  dist.scatter(serial.state());
  EXPECT_EQ(countMismatches(dist.gather(), serial.state()), 0);

  const double tEnd = 0.2;
  const int stepsSerial = serial.advanceTo(tEnd);
  const int stepsDist = dist.advanceTo(tEnd);
  EXPECT_EQ(stepsDist, stepsSerial);
  EXPECT_EQ(dist.time(), serial.time());
  EXPECT_EQ(countMismatches(dist.gather(), serial.state()), 0);
}

TEST(DistributedSimulation, CollisionalPipelineStaysBitExact) {
  // BGK collisions ride the same per-rank pipeline (projection of the
  // Maxwellian uses rank-local moments only).
  auto builder = landauBuilder(12);
  builder.collisions(BgkParams{1.0, 0.5});
  Simulation serial = builder.build();
  for (int i = 0; i < 3; ++i) serial.step();

  DistributedSimulation dist(builder, 2);
  for (int i = 0; i < 3; ++i) dist.step();
  EXPECT_EQ(countMismatches(dist.gather(), serial.state()), 0);
}

TEST(DistributedSimulation, LboCollisionalLandauStaysBitExact) {
  // The conservative Lenard-Bernstein operator is entirely velocity-space
  // local per configuration cell (moments, weak division, drag/diffusion
  // surface terms and the conservation correction never cross a rank
  // boundary), so a collisional Landau run must be bit-exact: threaded vs
  // serial on one rank, and 2-rank distributed vs serial.
  auto builder = landauBuilder(12);
  builder.collisions(LboParams{1.0, 0.5, true});
  Simulation serial = builder.build();
  bool hasLbo = false;
  for (const auto& upd : serial.pipeline())
    if (upd->name() == "lbo:elc") hasLbo = true;
  ASSERT_TRUE(hasLbo);
  std::vector<double> serialDt;
  const int steps = 3;
  for (int i = 0; i < steps; ++i) serialDt.push_back(serial.step());

  // Threaded RHS (4 workers) vs the serial trajectory.
  Simulation::Builder threadedBuilder = landauBuilder(12);
  threadedBuilder.collisions(LboParams{1.0, 0.5, true}).threads(4);
  Simulation threaded = threadedBuilder.build();
  for (int i = 0; i < steps; ++i)
    EXPECT_EQ(threaded.step(), serialDt[static_cast<std::size_t>(i)]) << "step " << i;
  EXPECT_EQ(countMismatches(threaded.state(), serial.state()), 0);

  // 2-rank DistributedSimulation vs the serial trajectory.
  DistributedSimulation dist(builder, 2);
  for (int i = 0; i < steps; ++i)
    EXPECT_EQ(dist.step(), serialDt[static_cast<std::size_t>(i)]) << "step " << i;
  EXPECT_EQ(countMismatches(dist.gather(), serial.state()), 0);
  EXPECT_GT(dist.haloBytes(), 0u);
}

TEST(DistributedSimulation, OverlapStaysBitExactUnderAdversarialDeliveryDelays) {
  // The split-phase schedule (halo exchange overlapped with interior
  // volume work) must be a pure latency optimization: no matter when a
  // ghost slab actually arrives, endSync blocks until it has, so the
  // surface terms always see repaired ghosts. The DeliveryFault hook
  // runs on the sender thread just before each slab is published —
  // skewing every channel by a different delay makes "ghost arrives
  // after the receiver started computing" the common case instead of a
  // rare race, and the trajectory must still be bitwise serial.
  auto builder = landauBuilder(12);
  Simulation serial = builder.build();
  std::vector<double> serialDt;
  const int steps = 3;
  for (int i = 0; i < steps; ++i) serialDt.push_back(serial.step());

  DistributedSimulation dist(builder, 2);
  ASSERT_TRUE(dist.rankSim(0).overlapHalo());
  dist.comm().setDeliveryFault([](int src, int dst, int dim, int side) {
    const int skewMs = 1 + (src * 5 + dst * 3 + dim + (side > 0 ? 2 : 0)) % 4;
    std::this_thread::sleep_for(std::chrono::milliseconds(skewMs));
  });
  for (int i = 0; i < steps; ++i)
    EXPECT_EQ(dist.step(), serialDt[static_cast<std::size_t>(i)]) << "step " << i;
  EXPECT_EQ(countMismatches(dist.gather(), serial.state()), 0);
}

TEST(DistributedSimulation, OverlapNeverReadsAGhostBeforeRepair) {
  // Ghost poison NaN-floods every ghost slab at beginSync; endSync's
  // unpack (and the wall-BC fill) overwrite the poison with real data.
  // NaN is sticky through every kernel, so a single premature ghost read
  // anywhere in the overlapped interior-volume window would corrupt the
  // trajectory irreversibly — bitwise equality with serial is proof the
  // schedule never touches a ghost cell before its repair completes.
  auto builder = landauBuilder(12);
  Simulation serial = builder.build();
  const int steps = 3;
  for (int i = 0; i < steps; ++i) serial.step();

  DistributedSimulation dist(builder, 2);
  for (int r = 0; r < dist.numRanks(); ++r) dist.rankSim(r).setGhostPoison(true);
  for (int i = 0; i < steps; ++i) dist.step();
  EXPECT_EQ(countMismatches(dist.gather(), serial.state()), 0);
}

TEST(DistributedSimulation, GhostPoisonHoldsOn2x2vCornerExchange) {
  // Same poison proof on the 2-D decomposition (2x2 ranks, corner ghosts
  // filled across two sequential dimension syncs): the overlapped dim-0
  // exchange plus blocking dim-1 sync must repair every ghost — corners
  // included — before any surface kernel reads them.
  auto builder = weibelBuilder();
  Simulation serial = builder.build();
  for (int i = 0; i < 2; ++i) serial.step();

  DistributedSimulation dist(builder, 4);
  for (int r = 0; r < dist.numRanks(); ++r) dist.rankSim(r).setGhostPoison(true);
  for (int i = 0; i < 2; ++i) dist.step();
  EXPECT_EQ(countMismatches(dist.gather(), serial.state()), 0);
}

TEST(DistributedSimulation, BlockingScheduleRemainsBitExact) {
  // overlapHalo=false falls back to the fully blocking sync-then-compute
  // schedule; both schedules must land on the same bits as serial.
  auto builder = landauBuilder(12);
  Simulation serial = builder.build();
  const int steps = 3;
  for (int i = 0; i < steps; ++i) serial.step();

  DistributedSimulation dist(builder, 2, /*overlapHalo=*/false);
  ASSERT_FALSE(dist.rankSim(0).overlapHalo());
  for (int i = 0; i < steps; ++i) dist.step();
  EXPECT_EQ(countMismatches(dist.gather(), serial.state()), 0);
}

TEST(ThreadComm, ReductionsAreDeterministicAndGlobal) {
  const Grid conf = Grid::make({8}, {0.0}, {1.0});
  const CartDecomp decomp = CartDecomp::make(conf, 4);
  ThreadComm comm(decomp);
  std::vector<double> maxes(4), sums(4);
  std::vector<std::thread> ts;
  for (int r = 0; r < 4; ++r)
    ts.emplace_back([&, r] {
      maxes[static_cast<std::size_t>(r)] = comm.endpoint(r).allReduceMax(1.0 + r);
      sums[static_cast<std::size_t>(r)] = comm.endpoint(r).allReduceSum(0.1 * (r + 1));
    });
  for (auto& t : ts) t.join();
  const double expectSum = ((0.1 + 0.2) + 0.3) + 0.4;  // fixed rank-order fold
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(maxes[static_cast<std::size_t>(r)], 4.0);
    EXPECT_EQ(sums[static_cast<std::size_t>(r)], expectSum);
  }
}

TEST(ThreadComm, TwoRankGhostExchangeEqualsGlobalPeriodicSync) {
  // A 1-D two-rank exchange against the serial periodic wrap oracle.
  const Grid global = Grid::make({8}, {0.0}, {1.0});
  const CartDecomp decomp = CartDecomp::make(global, 2);
  ThreadComm comm(decomp);

  Field gf(global, 3);
  forEachCell(global, [&](const MultiIndex& idx) {
    for (int c = 0; c < 3; ++c) gf.at(idx)[c] = 100.0 * idx[0] + c;
  });
  Field ref = gf;
  ref.syncPeriodic(0);

  std::vector<Field> local;
  for (int r = 0; r < 2; ++r) {
    const Grid lg = decomp.localGrid(global, r);
    Field lf(lg, 3);
    forEachCell(lg, [&](const MultiIndex& idx) {
      MultiIndex gidx = idx;
      gidx[0] += lg.offset[0];
      for (int c = 0; c < 3; ++c) lf.at(idx)[c] = gf.at(gidx)[c];
    });
    local.push_back(std::move(lf));
  }
  std::vector<std::thread> ts;
  for (int r = 0; r < 2; ++r)
    ts.emplace_back(
        [&, r] { comm.endpoint(r).syncConfGhosts(local[static_cast<std::size_t>(r)], 1); });
  for (auto& t : ts) t.join();

  for (int r = 0; r < 2; ++r) {
    const Field& lf = local[static_cast<std::size_t>(r)];
    const int off = lf.grid().offset[0];
    const int nc = lf.grid().cells[0];
    const int gnc = global.cells[0];
    MultiIndex lo, hi;
    lo[0] = -1;
    hi[0] = nc;
    MultiIndex glo, ghi;
    glo[0] = (off - 1 + gnc) % gnc;
    ghi[0] = (off + nc) % gnc;
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(lf.at(lo)[c], ref.at(glo)[c]) << "rank=" << r;
      EXPECT_EQ(lf.at(hi)[c], ref.at(ghi)[c]) << "rank=" << r;
    }
    EXPECT_GT(comm.endpoint(r).haloBytes(), 0u);
  }
}

}  // namespace
}  // namespace vdg
