// Grid and field container tests: indexing, ghost layers, periodic sync,
// and the linear-algebra helpers the steppers rely on.

#include <gtest/gtest.h>

#include <cmath>

#include "grid/grid.hpp"

namespace vdg {
namespace {

TEST(Grid, GeometryBasics) {
  const Grid g = Grid::make({8, 4}, {0.0, -2.0}, {1.0, 2.0});
  EXPECT_EQ(g.ndim, 2);
  EXPECT_DOUBLE_EQ(g.dx(0), 0.125);
  EXPECT_DOUBLE_EQ(g.dx(1), 1.0);
  EXPECT_DOUBLE_EQ(g.cellCenter(0, 0), 0.0625);
  EXPECT_DOUBLE_EQ(g.cellCenter(1, 3), 1.5);
  EXPECT_EQ(g.numCells(), 32u);
}

TEST(Grid, PhaseCompose) {
  const Grid conf = Grid::make({4}, {0.0}, {1.0});
  const Grid vel = Grid::make({8, 8}, {-6.0, -6.0}, {6.0, 6.0});
  const Grid ph = Grid::phase(conf, vel);
  EXPECT_EQ(ph.ndim, 3);
  EXPECT_EQ(ph.cells[0], 4);
  EXPECT_EQ(ph.cells[2], 8);
  EXPECT_DOUBLE_EQ(ph.lower[1], -6.0);
}

TEST(Grid, MakeValidates) {
  EXPECT_THROW(Grid::make({4}, {0.0}, {-1.0}), std::invalid_argument);
  EXPECT_THROW(Grid::make({0}, {0.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Grid::make({4, 4}, {0.0}, {1.0}), std::invalid_argument);
}

TEST(Grid, ForEachCellVisitsAllOnce) {
  const Grid g = Grid::make({3, 2, 4}, {0, 0, 0}, {1, 1, 1});
  int count = 0;
  forEachCell(g, [&](const MultiIndex&) { ++count; });
  EXPECT_EQ(count, 24);
}

TEST(Field, CellAccessIsolation) {
  const Grid g = Grid::make({4, 4}, {0, 0}, {1, 1});
  Field f(g, 3);
  forEachCell(g, [&](const MultiIndex& idx) {
    double* c = f.at(idx);
    for (int k = 0; k < 3; ++k) c[k] = idx[0] * 10.0 + idx[1] + 0.1 * k;
  });
  MultiIndex probe;
  probe[0] = 2;
  probe[1] = 3;
  EXPECT_DOUBLE_EQ(f.at(probe)[1], 23.1);
}

TEST(Field, PeriodicSyncWrapsBothSides) {
  const Grid g = Grid::make({4}, {0.0}, {1.0});
  Field f(g, 1);
  for (int i = 0; i < 4; ++i) {
    MultiIndex idx;
    idx[0] = i;
    f.at(idx)[0] = i + 1.0;
  }
  f.syncPeriodic(0);
  MultiIndex lo, hi;
  lo[0] = -1;
  hi[0] = 4;
  EXPECT_DOUBLE_EQ(f.at(lo)[0], 4.0);
  EXPECT_DOUBLE_EQ(f.at(hi)[0], 1.0);
}

TEST(Field, PeriodicSyncCornersAfterBothDims) {
  const Grid g = Grid::make({3, 3}, {0, 0}, {1, 1});
  Field f(g, 1);
  forEachCell(g, [&](const MultiIndex& idx) { f.at(idx)[0] = 10.0 * idx[0] + idx[1]; });
  f.syncPeriodic(0);
  f.syncPeriodic(1);
  MultiIndex corner;
  corner[0] = -1;
  corner[1] = -1;
  EXPECT_DOUBLE_EQ(f.at(corner)[0], 22.0);  // image of (2,2)
  corner[0] = 3;
  corner[1] = 3;
  EXPECT_DOUBLE_EQ(f.at(corner)[0], 0.0);  // image of (0,0)
}

TEST(Field, ZeroAndCopyGhost) {
  const Grid g = Grid::make({2, 2}, {0, 0}, {1, 1});
  Field f(g, 1);
  forEachCell(g, [&](const MultiIndex& idx) { f.at(idx)[0] = 5.0 + idx[0] + idx[1]; });
  f.copyGhost(0);
  MultiIndex gidx;
  gidx[0] = -1;
  gidx[1] = 1;
  EXPECT_DOUBLE_EQ(f.at(gidx)[0], 6.0);  // copy of (0,1)
  f.zeroGhost(0);
  EXPECT_DOUBLE_EQ(f.at(gidx)[0], 0.0);
}

TEST(Field, LinearAlgebraHelpers) {
  const Grid g = Grid::make({4}, {0.0}, {1.0});
  Field a(g, 2), b(g, 2), c(g, 2);
  forEachCell(g, [&](const MultiIndex& idx) {
    a.at(idx)[0] = 1.0;
    a.at(idx)[1] = 2.0;
    b.at(idx)[0] = 3.0;
    b.at(idx)[1] = 4.0;
  });
  c.combine(2.0, a, -1.0, b);
  MultiIndex i0;
  EXPECT_DOUBLE_EQ(c.at(i0)[0], -1.0);
  EXPECT_DOUBLE_EQ(c.at(i0)[1], 0.0);
  c.axpy(0.5, b);
  EXPECT_DOUBLE_EQ(c.at(i0)[0], 0.5);
  c.scale(2.0);
  EXPECT_DOUBLE_EQ(c.at(i0)[0], 1.0);
  c.copyFrom(a);
  EXPECT_DOUBLE_EQ(c.at(i0)[1], 2.0);
}

}  // namespace
}  // namespace vdg
