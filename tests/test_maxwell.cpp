// Maxwell (PHM) solver tests: exact plane-wave propagation order, exact
// energy conservation with central fluxes (the property the paper's energy
// argument requires), dissipation with penalty fluxes, and source coupling.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "app/projection.hpp"
#include "dg/maxwell.hpp"

namespace vdg {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

Field randomEm(const Grid& g, int npc, unsigned seed) {
  Field em(g, 8 * npc);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  forEachCell(g, [&](const MultiIndex& idx) {
    double* c = em.at(idx);
    for (int k = 0; k < 8 * npc; ++k) c[k] = u(rng) * std::pow(0.6, k % 4);
  });
  return em;
}

double emEnergyLike(const Grid& g, const Field& em) {
  // sum of squared coefficients over all 8 components (the L2 "energy"
  // conserved by the central flux, including the cleaning potentials).
  double e = 0.0;
  forEachCell(g, [&](const MultiIndex& idx) {
    const double* u = em.at(idx);
    for (int k = 0; k < em.ncomp(); ++k) e += u[k] * u[k];
  });
  return e;
}

TEST(Maxwell, CentralFluxConservesL2EnergyExactly) {
  for (int cdim = 1; cdim <= 2; ++cdim) {
    Grid g;
    g.ndim = cdim;
    for (int d = 0; d < cdim; ++d) {
      g.cells[static_cast<std::size_t>(d)] = 6;
      g.lower[static_cast<std::size_t>(d)] = 0.0;
      g.upper[static_cast<std::size_t>(d)] = 1.0;
    }
    const BasisSpec spec{cdim, 0, 2, BasisFamily::Serendipity};
    MaxwellParams mp;
    mp.flux = FluxType::Central;
    const MaxwellUpdater mx(spec, g, mp);
    Field em = randomEm(g, mx.numModes(), 3);
    for (int d = 0; d < cdim; ++d) em.syncPeriodic(d);
    Field rhs(g, em.ncomp());
    mx.advance(em, rhs);
    // d/dt sum u^2 = 2 sum u . rhs must vanish for the central flux.
    double dot = 0.0;
    forEachCell(g, [&](const MultiIndex& idx) {
      const double* u = em.at(idx);
      const double* r = rhs.at(idx);
      for (int k = 0; k < em.ncomp(); ++k) dot += u[k] * r[k];
    });
    const double scale = emEnergyLike(g, em);
    EXPECT_LT(std::abs(dot), 1e-11 * scale) << "cdim=" << cdim;
  }
}

TEST(Maxwell, PenaltyFluxDissipates) {
  Grid g = Grid::make({8}, {0.0}, {1.0});
  const BasisSpec spec{1, 0, 1, BasisFamily::Tensor};
  MaxwellParams mp;
  mp.flux = FluxType::Penalty;
  const MaxwellUpdater mx(spec, g, mp);
  Field em = randomEm(g, mx.numModes(), 9);
  em.syncPeriodic(0);
  Field rhs(g, em.ncomp());
  mx.advance(em, rhs);
  double dot = 0.0;
  forEachCell(g, [&](const MultiIndex& idx) {
    const double* u = em.at(idx);
    const double* r = rhs.at(idx);
    for (int k = 0; k < em.ncomp(); ++k) dot += u[k] * r[k];
  });
  EXPECT_LT(dot, 0.0);
}

TEST(Maxwell, PlaneWavePropagatesAtLightSpeed) {
  // Ey = cos(kx - wt), Bz = cos(kx - wt)/c is an exact vacuum solution.
  const int nx = 24;
  Grid g = Grid::make({nx}, {0.0}, {1.0});
  const BasisSpec spec{1, 0, 2, BasisFamily::Serendipity};
  MaxwellParams mp;
  mp.flux = FluxType::Central;
  mp.lightSpeed = 1.0;
  const MaxwellUpdater mx(spec, g, mp);
  const int npc = mx.numModes();
  const double k = kTwoPi;

  Field em(g, 8 * npc);
  projectVectorOnBasis(
      basisFor(spec), g,
      [&](const double* x, double* out) {
        for (int c = 0; c < 8; ++c) out[c] = 0.0;
        out[1] = std::cos(k * x[0]);  // Ey
        out[5] = std::cos(k * x[0]);  // Bz
      },
      8, em);

  // SSP-RK3 to t = 0.25 (quarter period of the box crossing).
  const double tEnd = 0.25;
  const double dt = 0.2 * (1.0 / nx);  // well below CFL
  Field k1(g, 8 * npc), u1(g, 8 * npc), u2(g, 8 * npc);
  double t = 0.0;
  while (t < tEnd - 1e-12) {
    const double h = std::min(dt, tEnd - t);
    em.syncPeriodic(0);
    mx.advance(em, k1);
    u1.combine(1.0, em, h, k1);
    u1.syncPeriodic(0);
    mx.advance(u1, k1);
    u2.combine(0.75, em, 0.25, u1);
    u2.axpy(0.25 * h, k1);
    u2.syncPeriodic(0);
    mx.advance(u2, k1);
    em.combine(1.0 / 3.0, em, 2.0 / 3.0, u2);
    em.axpy(2.0 / 3.0 * h, k1);
    t += h;
  }

  // Compare cell-average Ey with the exact translated wave.
  double maxErr = 0.0;
  forEachCell(g, [&](const MultiIndex& idx) {
    const double x = g.cellCenter(0, idx[0]);
    const double exactAvg =
        std::cos(k * (x - tEnd)) * std::sin(k * 0.5 * g.dx(0)) / (k * 0.5 * g.dx(0));
    const double avg = em.at(idx)[1 * npc] * std::pow(2.0, -0.5);
    maxErr = std::max(maxErr, std::abs(avg - exactAvg));
  });
  EXPECT_LT(maxErr, 2e-4);
}

TEST(Maxwell, CurrentSourceReducesE) {
  Grid g = Grid::make({4}, {0.0}, {1.0});
  const BasisSpec spec{1, 0, 1, BasisFamily::Tensor};
  const MaxwellUpdater mx(spec, g, MaxwellParams{});
  const int npc = mx.numModes();
  Field rhs(g, 8 * npc);
  rhs.setZero();
  Field cur(g, 3 * npc);
  forEachCell(g, [&](const MultiIndex& idx) { cur.at(idx)[0] = 2.0; });  // Jx coeff
  mx.addCurrentSource(cur, rhs);
  forEachCell(g, [&](const MultiIndex& idx) {
    EXPECT_DOUBLE_EQ(rhs.at(idx)[0], -2.0);       // dEx/dt = -Jx/eps0
    EXPECT_DOUBLE_EQ(rhs.at(idx)[1 * npc], 0.0);  // Ey untouched
  });
}

TEST(Maxwell, RejectsBadSpecs) {
  Grid g = Grid::make({4}, {0.0}, {1.0});
  EXPECT_THROW(MaxwellUpdater(BasisSpec{1, 1, 1, BasisFamily::Tensor}, g, MaxwellParams{}),
               std::invalid_argument);
  EXPECT_THROW(MaxwellUpdater(BasisSpec{2, 0, 1, BasisFamily::Tensor}, g, MaxwellParams{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vdg
