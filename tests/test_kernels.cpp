// Tests of the pre-generated (CAS-emitted, compiled) kernels: they must
// reproduce the sparse-tape interpreter to machine precision — both paths
// evaluate the same exactly-integrated tensors, one as unrolled compiled
// source (the paper's deployed form), one as data.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>
#include <string>
#include <vector>

#include "dg/vlasov.hpp"
#include "kernels/registry.hpp"

namespace vdg {
namespace {

Grid phaseGridFor(const BasisSpec& spec, int nx, int nv) {
  Grid g;
  g.ndim = spec.ndim();
  for (int d = 0; d < spec.cdim; ++d) {
    g.cells[static_cast<std::size_t>(d)] = nx;
    g.lower[static_cast<std::size_t>(d)] = 0.0;
    g.upper[static_cast<std::size_t>(d)] = 2.0 * std::numbers::pi;
  }
  for (int d = spec.cdim; d < spec.ndim(); ++d) {
    g.cells[static_cast<std::size_t>(d)] = nv;
    g.lower[static_cast<std::size_t>(d)] = -4.0;
    g.upper[static_cast<std::size_t>(d)] = 4.0;
  }
  return g;
}

Field randomField(const Grid& g, int ncomp, unsigned seed) {
  Field f(g, ncomp);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  forEachCell(g, [&](const MultiIndex& idx) {
    double* c = f.at(idx);
    for (int k = 0; k < ncomp; ++k) c[k] = u(rng);
  });
  return f;
}

TEST(CompiledKernels, RegistryIsPopulated) {
  EXPECT_GE(numCompiledKernelSets(), 11);
  EXPECT_NE(findCompiledKernels("1x1v_p1_ten"), nullptr);
  EXPECT_NE(findCompiledKernels("2x3v_p2_ser"), nullptr);
  EXPECT_EQ(findCompiledKernels("9x9v_p9_xyz"), nullptr);
}

TEST(CompiledKernels, ListSpecsIsSortedAndConsistent) {
  const std::vector<std::string> names = listCompiledKernelSpecs();
  EXPECT_EQ(static_cast<int>(names.size()), numCompiledKernelSets());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const std::string& n : names) EXPECT_NE(findCompiledKernels(n), nullptr);
  EXPECT_NE(std::find(names.begin(), names.end(), "1x1v_p1_ten"), names.end());
}

TEST(CompiledKernels, DuplicateRegistrationIsCountedAndLastWins) {
  // Assertions are delta-based against process-global state so the test
  // stays valid under --gtest_repeat (re-registrations persist).
  const int before = numDuplicateKernelRegistrations();

  const VlasovCompiledKernels* orig = findCompiledKernels("1x1v_p1_ten");
  ASSERT_NE(orig, nullptr);
  const VlasovCompiledKernels saved = *orig;

  VlasovCompiledKernels clone = saved;
  registerCompiledKernels("1x1v_p1_ten", clone);
  EXPECT_EQ(numDuplicateKernelRegistrations(), before + 1);
  // Last registration wins but the entry set is unchanged.
  EXPECT_EQ(static_cast<int>(listCompiledKernelSpecs().size()), numCompiledKernelSets());
  const VlasovCompiledKernels* now = findCompiledKernels("1x1v_p1_ten");
  ASSERT_NE(now, nullptr);
  EXPECT_EQ(now->streamVol, saved.streamVol);

  // A registration for a fresh spec name is not a duplicate (on repeat
  // runs the fake entry already exists, so it counts as one then).
  const bool fakePresent = findCompiledKernels("0x0v_p0_test") != nullptr;
  registerCompiledKernels("0x0v_p0_test", clone);
  EXPECT_EQ(numDuplicateKernelRegistrations(), before + 1 + (fakePresent ? 1 : 0));
  EXPECT_NE(findCompiledKernels("0x0v_p0_test"), nullptr);
}

class CompiledBySpec : public ::testing::TestWithParam<BasisSpec> {};

TEST_P(CompiledBySpec, MatchesTapeInterpreter) {
  const BasisSpec spec = GetParam();
  const Grid pg = phaseGridFor(spec, 4, 4);
  Grid cg;
  cg.ndim = spec.cdim;
  for (int d = 0; d < spec.cdim; ++d) {
    cg.cells[static_cast<std::size_t>(d)] = pg.cells[static_cast<std::size_t>(d)];
    cg.lower[static_cast<std::size_t>(d)] = pg.lower[static_cast<std::size_t>(d)];
    cg.upper[static_cast<std::size_t>(d)] = pg.upper[static_cast<std::size_t>(d)];
  }
  const int np = basisFor(spec).numModes();
  const int npc = basisFor(spec.configSpec()).numModes();

  VlasovParams params;
  params.flux = FluxType::Penalty;  // the flux the generated kernels bake in
  VlasovUpdater fast(spec, pg, params);
  ASSERT_TRUE(fast.usesCompiledKernels()) << spec.name();
  VlasovUpdater slow(spec, pg, params);
  slow.disableCompiledKernels();

  Field f = randomField(pg, np, 3);
  Field em = randomField(cg, kEmComps * npc, 5);
  for (int d = 0; d < spec.cdim; ++d) {
    f.syncPeriodic(d);
    em.syncPeriodic(d);
  }
  Field rhsFast(pg, np), rhsSlow(pg, np);
  const double freqFast = fast.advance(f, &em, rhsFast);
  const double freqSlow = slow.advance(f, &em, rhsSlow);
  EXPECT_NEAR(freqFast, freqSlow, 1e-12 * freqSlow);

  double maxAbs = 0.0, maxDiff = 0.0;
  forEachCell(pg, [&](const MultiIndex& idx) {
    for (int l = 0; l < np; ++l) {
      maxAbs = std::max(maxAbs, std::abs(rhsSlow.at(idx)[l]));
      maxDiff = std::max(maxDiff, std::abs(rhsFast.at(idx)[l] - rhsSlow.at(idx)[l]));
    }
  });
  EXPECT_GT(maxAbs, 0.0);
  EXPECT_LT(maxDiff, 1e-11 * maxAbs);
}

TEST_P(CompiledBySpec, MatchesTapeForFreeStreaming) {
  const BasisSpec spec = GetParam();
  const Grid pg = phaseGridFor(spec, 3, 3);
  const int np = basisFor(spec).numModes();
  VlasovParams params;
  VlasovUpdater fast(spec, pg, params);
  VlasovUpdater slow(spec, pg, params);
  slow.disableCompiledKernels();
  Field f = randomField(pg, np, 17);
  for (int d = 0; d < spec.cdim; ++d) f.syncPeriodic(d);
  Field rhsFast(pg, np), rhsSlow(pg, np);
  fast.advance(f, nullptr, rhsFast);
  slow.advance(f, nullptr, rhsSlow);
  double maxAbs = 0.0, maxDiff = 0.0;
  forEachCell(pg, [&](const MultiIndex& idx) {
    for (int l = 0; l < np; ++l) {
      maxAbs = std::max(maxAbs, std::abs(rhsSlow.at(idx)[l]));
      maxDiff = std::max(maxDiff, std::abs(rhsFast.at(idx)[l] - rhsSlow.at(idx)[l]));
    }
  });
  EXPECT_LT(maxDiff, 1e-11 * std::max(maxAbs, 1e-30));
}

TEST(CompiledKernels, CentralFluxFallsBackToTapes) {
  const BasisSpec spec{1, 1, 2, BasisFamily::Serendipity};
  const Grid pg = phaseGridFor(spec, 4, 4);
  VlasovParams params;
  params.flux = FluxType::Central;
  const VlasovUpdater up(spec, pg, params);
  EXPECT_FALSE(up.usesCompiledKernels());
}

INSTANTIATE_TEST_SUITE_P(Specs, CompiledBySpec,
                         ::testing::Values(BasisSpec{1, 1, 1, BasisFamily::Tensor},
                                           BasisSpec{1, 1, 2, BasisFamily::Serendipity},
                                           BasisSpec{1, 2, 1, BasisFamily::Tensor},
                                           BasisSpec{1, 2, 2, BasisFamily::Serendipity},
                                           BasisSpec{1, 3, 1, BasisFamily::Serendipity},
                                           BasisSpec{2, 2, 1, BasisFamily::Serendipity},
                                           BasisSpec{2, 2, 2, BasisFamily::Serendipity},
                                           BasisSpec{2, 3, 1, BasisFamily::Serendipity},
                                           BasisSpec{2, 3, 2, BasisFamily::Serendipity}),
                         [](const auto& info) { return info.param.name(); });

}  // namespace
}  // namespace vdg
