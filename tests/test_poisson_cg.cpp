// The matrix-free block-Jacobi PCG Poisson backend (PoissonMethod::ConjGrad):
// 1x agreement with the retained direct-LU oracle across every wall-closure
// family, 2x manufactured-solution convergence at order >= p+1 for phi and
// both E components, the zero-mean gauge in 2x, a small 3x residual sanity
// check, and the threading / distributed bitwise guarantees: one shared
// const solver serves concurrent callers, and a 2-rank solve whose residual
// reductions go through Communicator::allReduceSum reproduces the serial
// iteration history and solution bit for bit.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <thread>
#include <vector>

#include "app/projection.hpp"
#include "dg/poisson.hpp"
#include "par/communicator.hpp"
#include "par/decomp.hpp"

namespace vdg {
namespace {

constexpr double kPi = std::numbers::pi;

std::vector<double> projectFlat(const PoissonSolver& solver, const ScalarFn& fn) {
  const Grid& g = solver.grid();
  Field f(g, solver.numModes());
  projectOnBasis(solver.basis(), g, fn, f, solver.basis().spec().polyOrder + 3);
  std::vector<double> out(solver.numUnknowns());
  forEachCell(g, [&](const MultiIndex& idx) {
    const double* src = f.at(idx);
    double* dst = out.data() + solver.flatIndex(idx);
    for (int l = 0; l < solver.numModes(); ++l) dst[l] = src[l];
  });
  return out;
}

double l2Diff(const PoissonSolver& solver, std::span<const double> a,
              std::span<const double> b) {
  double jac = 1.0;
  for (int d = 0; d < solver.grid().ndim; ++d) jac *= 0.5 * solver.grid().dx(d);
  double err = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    err += d * d;
  }
  return std::sqrt(jac * err);
}

PoissonParams withMethod(PoissonParams p, PoissonMethod m) {
  p.method = m;
  return p;
}

// --------------------------------------------- 1x: CG against the LU oracle

/// Same operator, two backends: for every wall-closure family and both
/// polynomial orders the CG solution must match the direct-LU oracle to a
/// pinned tolerance (the LU is exact to round-off; CG stops at a 1e-12
/// relative residual).
TEST(PoissonCg, MatchesLuOracle1x) {
  struct BcCase {
    const char* name;
    PoissonBcSpec lo, hi;
  };
  const BcCase cases[] = {
      {"periodic", {}, {}},
      {"DD", {PoissonBcKind::Dirichlet, 0.5}, {PoissonBcKind::Dirichlet, -0.25}},
      {"DN", {PoissonBcKind::Dirichlet, 0.0}, {PoissonBcKind::Neumann, 0.75}},
      {"NN", {PoissonBcKind::Neumann, 0.3}, {PoissonBcKind::Neumann, 0.3}},
  };
  for (int p = 1; p <= 2; ++p) {
    const BasisSpec spec{1, 0, p, BasisFamily::Serendipity};
    const Grid g = Grid::make({24}, {0.0}, {2.0 * kPi});
    for (const BcCase& bc : cases) {
      PoissonParams params;
      params.bc[0][0] = bc.lo;
      params.bc[0][1] = bc.hi;
      const PoissonSolver lu(spec, g, withMethod(params, PoissonMethod::DirectLu));
      const PoissonSolver cg(spec, g, withMethod(params, PoissonMethod::ConjGrad));
      ASSERT_EQ(lu.method(), PoissonMethod::DirectLu);
      ASSERT_EQ(cg.method(), PoissonMethod::ConjGrad);
      const auto rho = projectFlat(
          lu, [](const double* z) { return std::sin(z[0]) + 0.2 * std::cos(2.0 * z[0]); });
      std::vector<double> phiLu(lu.numUnknowns()), phiCg(cg.numUnknowns());
      lu.solve(rho, phiLu);
      const auto stats = cg.solve(rho, phiCg, nullptr);
      EXPECT_GT(stats.iterations, 0) << bc.name;
      EXPECT_LE(stats.relResidual, cg.params().cgTol) << bc.name;
      for (std::size_t i = 0; i < phiLu.size(); ++i)
        EXPECT_NEAR(phiCg[i], phiLu[i], 1e-9)
            << bc.name << " p" << p << " coeff " << i;
    }
  }
}

/// Auto resolves to the LU fast path in 1x and to CG in 2x.
TEST(PoissonCg, AutoDispatch) {
  const PoissonSolver s1(BasisSpec{1, 0, 1, BasisFamily::Serendipity},
                         Grid::make({8}, {0.0}, {1.0}), PoissonParams{});
  EXPECT_EQ(s1.method(), PoissonMethod::DirectLu);
  const PoissonSolver s2(BasisSpec{2, 0, 1, BasisFamily::Serendipity},
                         Grid::make({4, 4}, {0.0, 0.0}, {1.0, 1.0}), PoissonParams{});
  EXPECT_EQ(s2.method(), PoissonMethod::ConjGrad);
}

// ------------------------------------------------- 2x: manufactured solution

struct SolveCase {
  int polyOrder;
  double minOrder;
};

class PoissonCgConvergence2x : public ::testing::TestWithParam<SolveCase> {};

/// -lap(phi) = 2 sin(x) sin(y) on the doubly periodic [0, 2pi]^2 has the
/// zero-mean solution phi = sin(x) sin(y), E = (-cos x sin y, -sin x cos y).
/// The potential superconverges (measured ~2p+: far above p+1); E converges
/// at exactly order p+1 in multi-D — the interface flux's transverse
/// expansion is limited to the degree-p face basis, so the 1x
/// superconvergence does not carry over — and approaches that asymptote
/// from below (p2 measures 2.89 at 8->16 cells, 2.95 at 12->24, 2.97 at
/// 16->32), hence the small pre-asymptotic allowance on the E threshold.
TEST_P(PoissonCgConvergence2x, ManufacturedSolutionAtOrderPPlusOne) {
  const auto [p, minOrder] = GetParam();
  const BasisSpec spec{2, 0, p, BasisFamily::Serendipity};
  double phiErr[2], exErr[2], eyErr[2];
  const int sizes[2] = {12, 24};
  for (int r = 0; r < 2; ++r) {
    const Grid g = Grid::make({sizes[r], sizes[r]}, {0.0, 0.0}, {2.0 * kPi, 2.0 * kPi});
    const PoissonSolver solver(spec, g, PoissonParams{});
    ASSERT_EQ(solver.method(), PoissonMethod::ConjGrad);
    const auto rho = projectFlat(
        solver, [](const double* z) { return 2.0 * std::sin(z[0]) * std::sin(z[1]); });
    std::vector<double> phi(solver.numUnknowns());
    const auto stats = solver.solve(rho, phi, nullptr);
    EXPECT_LE(stats.relResidual, solver.params().cgTol);
    const auto phiExact = projectFlat(
        solver, [](const double* z) { return std::sin(z[0]) * std::sin(z[1]); });
    phiErr[r] = l2Diff(solver, phi, phiExact);

    const auto np = static_cast<std::size_t>(solver.numModes());
    std::vector<double> ex(solver.numUnknowns()), ey(solver.numUnknowns());
    forEachCell(g, [&](const MultiIndex& idx) {
      solver.cellElectricField(phi, idx, 0, {ex.data() + solver.flatIndex(idx), np});
      solver.cellElectricField(phi, idx, 1, {ey.data() + solver.flatIndex(idx), np});
    });
    const auto exExact = projectFlat(
        solver, [](const double* z) { return -std::cos(z[0]) * std::sin(z[1]); });
    const auto eyExact = projectFlat(
        solver, [](const double* z) { return -std::sin(z[0]) * std::cos(z[1]); });
    exErr[r] = l2Diff(solver, ex, exExact);
    eyErr[r] = l2Diff(solver, ey, eyExact);
  }
  EXPECT_GE(std::log2(phiErr[0] / phiErr[1]), minOrder)
      << "phi errors " << phiErr[0] << " -> " << phiErr[1];
  const double eMinOrder = minOrder - 0.1;  // pre-asymptotic allowance
  EXPECT_GE(std::log2(exErr[0] / exErr[1]), eMinOrder)
      << "Ex errors " << exErr[0] << " -> " << exErr[1];
  EXPECT_GE(std::log2(eyErr[0] / eyErr[1]), eMinOrder)
      << "Ey errors " << eyErr[0] << " -> " << eyErr[1];
}

INSTANTIATE_TEST_SUITE_P(Orders, PoissonCgConvergence2x,
                         ::testing::Values(SolveCase{1, 2.0}, SolveCase{2, 3.0}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.polyOrder);
                         });

/// 2x gauge: solutions have zero mean, the solve residual closes the weak
/// equation, and a uniform charge offset changes nothing.
TEST(PoissonCg, ZeroMeanGauge2x) {
  const BasisSpec spec{2, 0, 2, BasisFamily::Serendipity};
  const Grid g = Grid::make({8, 8}, {0.0, 0.0}, {2.0 * kPi, 2.0 * kPi});
  const PoissonSolver solver(spec, g, PoissonParams{});
  const auto rho = projectFlat(solver, [](const double* z) {
    return 2.0 * std::sin(z[0]) * std::sin(z[1]) + 0.3 * std::cos(z[0]);
  });

  std::vector<double> phi(solver.numUnknowns());
  solver.solve(rho, phi);
  EXPECT_NEAR(solver.domainIntegral(phi), 0.0, 1e-10);

  std::vector<double> res(solver.numUnknowns());
  solver.applyMinusLaplacian(phi, res);
  for (std::size_t i = 0; i < res.size(); ++i) EXPECT_NEAR(res[i], rho[i], 1e-8) << i;

  // A uniform charge offset (mean rho != 0) leaves phi unchanged: the
  // gauge projection strips it from the right-hand side.
  auto rhoOff = rho;
  const double off = 5.0 * 2.0;  // 5.0 as a 2-D mode-0 coefficient
  for (std::size_t c = 0; c < rhoOff.size(); c += static_cast<std::size_t>(solver.numModes()))
    rhoOff[c] += off;
  std::vector<double> phiOff(solver.numUnknowns());
  solver.solve(rhoOff, phiOff);
  for (std::size_t i = 0; i < phi.size(); ++i) EXPECT_NEAR(phiOff[i], phi[i], 1e-9) << i;
}

/// On grids small enough to assemble, the 2x CG solution must match the
/// dense-LU oracle — periodic and with walls (biased Dirichlet plates in x,
/// periodic in y), which also exercises the 2x boundary load.
TEST(PoissonCg, MatchesLuOracle2x) {
  for (int p = 1; p <= 2; ++p) {
    const BasisSpec spec{2, 0, p, BasisFamily::Serendipity};
    const Grid g = Grid::make({6, 5}, {0.0, 0.0}, {2.0 * kPi, 2.0 * kPi});
    for (const bool walls : {false, true}) {
      PoissonParams params;
      if (walls) {
        params.bc[0][0] = {PoissonBcKind::Dirichlet, 1.0};
        params.bc[0][1] = {PoissonBcKind::Dirichlet, -1.0};
      }
      const PoissonSolver lu(spec, g, withMethod(params, PoissonMethod::DirectLu));
      const PoissonSolver cg(spec, g, withMethod(params, PoissonMethod::ConjGrad));
      EXPECT_EQ(lu.hasGauge(), !walls);
      const auto rho = projectFlat(
          lu, [](const double* z) { return std::sin(z[0]) * (1.0 + 0.5 * std::cos(z[1])); });
      std::vector<double> phiLu(lu.numUnknowns()), phiCg(cg.numUnknowns());
      lu.solve(rho, phiLu);
      cg.solve(rho, phiCg);
      double scale = 1.0;
      for (const double v : phiLu) scale = std::max(scale, std::abs(v));
      for (std::size_t i = 0; i < phiLu.size(); ++i)
        EXPECT_NEAR(phiCg[i], phiLu[i], 1e-9 * scale)
            << (walls ? "walls" : "periodic") << " p" << p << " coeff " << i;
    }
  }
}

/// 3x sanity: the CG solve closes the weak equation on a small triply
/// periodic grid (the operator sweep and preconditioner are dimension-
/// general; this pins the 3x code path).
TEST(PoissonCg, Residual3x) {
  const BasisSpec spec{3, 0, 1, BasisFamily::Serendipity};
  const Grid g = Grid::make({4, 4, 4}, {0.0, 0.0, 0.0}, {2.0 * kPi, 2.0 * kPi, 2.0 * kPi});
  const PoissonSolver solver(spec, g, PoissonParams{});
  ASSERT_EQ(solver.method(), PoissonMethod::ConjGrad);
  const auto rho = projectFlat(solver, [](const double* z) {
    return 3.0 * std::sin(z[0]) * std::sin(z[1]) * std::sin(z[2]);
  });
  std::vector<double> phi(solver.numUnknowns());
  const auto stats = solver.solve(rho, phi, nullptr);
  EXPECT_LE(stats.relResidual, solver.params().cgTol);
  std::vector<double> res(solver.numUnknowns());
  solver.applyMinusLaplacian(phi, res);
  for (std::size_t i = 0; i < res.size(); ++i) EXPECT_NEAR(res[i], rho[i], 1e-8) << i;
}

// ----------------------------------------- threading / distributed identity

/// One shared const solver, many concurrent callers: every thread gets the
/// bitwise identical solution (all iteration state is call-local).
TEST(PoissonCg, SharedSolverThreadSafe) {
  const BasisSpec spec{2, 0, 2, BasisFamily::Serendipity};
  const Grid g = Grid::make({8, 8}, {0.0, 0.0}, {2.0 * kPi, 2.0 * kPi});
  const PoissonSolver solver(spec, g, PoissonParams{});
  const auto rho = projectFlat(
      solver, [](const double* z) { return 2.0 * std::sin(z[0]) * std::sin(z[1]); });
  std::vector<double> ref(solver.numUnknowns());
  solver.solve(rho, ref);

  constexpr int kThreads = 4;
  std::vector<std::vector<double>> phi(kThreads,
                                       std::vector<double>(solver.numUnknowns()));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] { solver.solve(rho, phi[static_cast<std::size_t>(t)]); });
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    int bad = 0;
    for (std::size_t i = 0; i < ref.size(); ++i)
      if (phi[static_cast<std::size_t>(t)][i] != ref[i]) ++bad;
    EXPECT_EQ(bad, 0) << "thread " << t;
  }
}

/// Two ranks driving the same global solve through ThreadComm endpoints:
/// the residual reductions are collective (each rank computes only its
/// per-cell chunk window, allReduceSum concatenates them), and the
/// resulting iteration count and solution are bitwise identical to the
/// serial solve on every rank.
TEST(PoissonCg, TwoRankDistributedBitwiseMatchesSerial) {
  const BasisSpec spec{2, 0, 1, BasisFamily::Serendipity};
  const Grid g = Grid::make({8, 6}, {0.0, 0.0}, {2.0 * kPi, 2.0 * kPi});
  const PoissonSolver solver(spec, g, PoissonParams{});
  const auto rho = projectFlat(
      solver, [](const double* z) { return 2.0 * std::sin(z[0]) * std::sin(z[1]); });

  std::vector<double> ref(solver.numUnknowns());
  const auto serialStats = solver.solve(rho, ref, nullptr);

  ThreadComm comm(CartDecomp::make(g, 2));
  ASSERT_EQ(comm.numRanks(), 2);
  std::vector<std::vector<double>> phi(2, std::vector<double>(solver.numUnknowns()));
  PoissonSolver::SolveStats stats[2];
  std::vector<std::thread> threads;
  for (int r = 0; r < 2; ++r)
    threads.emplace_back([&, r] {
      stats[r] = solver.solve(rho, phi[static_cast<std::size_t>(r)], &comm.endpoint(r));
    });
  for (auto& th : threads) th.join();

  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(stats[r].iterations, serialStats.iterations) << "rank " << r;
    EXPECT_EQ(stats[r].relResidual, serialStats.relResidual) << "rank " << r;
    int bad = 0;
    for (std::size_t i = 0; i < ref.size(); ++i)
      if (phi[static_cast<std::size_t>(r)][i] != ref[i]) ++bad;
    EXPECT_EQ(bad, 0) << "rank " << r;
  }
}

/// An unreachable tolerance must surface as the documented runtime_error,
/// not silent non-convergence.
TEST(PoissonCg, ThrowsWhenIterationCapHit) {
  PoissonParams params;
  params.method = PoissonMethod::ConjGrad;
  params.cgMaxIter = 2;
  const PoissonSolver solver(BasisSpec{2, 0, 1, BasisFamily::Serendipity},
                             Grid::make({8, 8}, {0.0, 0.0}, {1.0, 1.0}), params);
  const auto rho = projectFlat(solver, [](const double* z) {
    return std::sin(2.0 * kPi * z[0]) * std::sin(2.0 * kPi * z[1]);
  });
  std::vector<double> phi(solver.numUnknowns());
  EXPECT_THROW(solver.solve(rho, phi), std::runtime_error);
}

}  // namespace
}  // namespace vdg
