// Tests of the SIMD-batched (AoSoA) kernel execution path: the batched
// kernels and tape executors must reproduce the scalar path BITWISE — per
// lane they perform the same floating-point operations in the same order
// (dg/batch.hpp documents the contract), so every comparison here is
// exact equality, not a tolerance.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <numbers>
#include <random>
#include <string>
#include <vector>

#include "app/simulation.hpp"
#include "collisions/lbo.hpp"
#include "dg/batch.hpp"
#include "dg/vlasov.hpp"
#include "kernels/registry.hpp"

namespace vdg {
namespace {

constexpr double kPi = std::numbers::pi;

Grid phaseGridFor(const BasisSpec& spec, int nx, int nv) {
  Grid g;
  g.ndim = spec.ndim();
  for (int d = 0; d < spec.cdim; ++d) {
    g.cells[static_cast<std::size_t>(d)] = nx;
    g.lower[static_cast<std::size_t>(d)] = 0.0;
    g.upper[static_cast<std::size_t>(d)] = 2.0 * kPi;
  }
  for (int d = spec.cdim; d < spec.ndim(); ++d) {
    g.cells[static_cast<std::size_t>(d)] = nv;
    g.lower[static_cast<std::size_t>(d)] = -4.0;
    g.upper[static_cast<std::size_t>(d)] = 4.0;
  }
  return g;
}

Field randomField(const Grid& g, int ncomp, unsigned seed) {
  Field f(g, ncomp);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  forEachCell(g, [&](const MultiIndex& idx) {
    double* c = f.at(idx);
    for (int k = 0; k < ncomp; ++k) c[k] = u(rng);
  });
  return f;
}

std::vector<double> randomVec(std::size_t n, std::mt19937& rng) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::vector<double> v(n);
  for (double& x : v) x = u(rng);
  return v;
}

/// 0.0 iff every interior coefficient of a and b is (==)-identical.
double maxAbsDiff(const Field& a, const Field& b) {
  EXPECT_EQ(a.ncomp(), b.ncomp());
  double m = 0.0;
  forEachCell(a.grid(), [&](const MultiIndex& idx) {
    const double* pa = a.at(idx);
    const double* pb = b.at(idx);
    for (int l = 0; l < a.ncomp(); ++l) m = std::max(m, std::abs(pa[l] - pb[l]));
  });
  return m;
}

// ------------------------------------------------------------ pack/scatter

TEST(Batch, PackScatterRoundTrip) {
  std::mt19937 rng(11);
  for (const int B : kKernelBatchLanes) {
    const int n = 37;
    std::vector<std::vector<double>> cells;
    std::vector<const double*> src;
    for (int b = 0; b < B; ++b) {
      cells.push_back(randomVec(static_cast<std::size_t>(n), rng));
      src.push_back(cells.back().data());
    }
    BatchBuffer blk(static_cast<std::size_t>(n) * B);
    packLanes(B, n, src.data(), blk.data());
    // AoSoA layout: element i of lane b at [i*B + b].
    for (int i = 0; i < n; ++i)
      for (int b = 0; b < B; ++b)
        ASSERT_EQ(blk[static_cast<std::size_t>(i * B + b)],
                  cells[static_cast<std::size_t>(b)][static_cast<std::size_t>(i)]);

    std::vector<std::vector<double>> out(static_cast<std::size_t>(B),
                                         std::vector<double>(static_cast<std::size_t>(n), 7.0));
    std::vector<double*> dst;
    for (auto& o : out) dst.push_back(o.data());
    scatterLanes(B, n, blk.data(), dst.data());
    for (int b = 0; b < B; ++b)
      ASSERT_EQ(out[static_cast<std::size_t>(b)], cells[static_cast<std::size_t>(b)]);

    // scatterAddLanes adds on top (7.0 sentinel checks the overwrite above).
    scatterAddLanes(B, n, blk.data(), dst.data());
    for (int b = 0; b < B; ++b)
      for (int i = 0; i < n; ++i)
        ASSERT_EQ(out[static_cast<std::size_t>(b)][static_cast<std::size_t>(i)],
                  cells[static_cast<std::size_t>(b)][static_cast<std::size_t>(i)] +
                      cells[static_cast<std::size_t>(b)][static_cast<std::size_t>(i)]);

    zeroLanes(B, n, blk.data());
    for (const double x : blk) ASSERT_EQ(x, 0.0);
  }
}

TEST(Batch, BatchedTapeExecutorsMatchScalarBitwise) {
  std::mt19937 rng(23);
  std::uniform_int_distribution<int> pick(0, 19);
  Tape3 t3;
  Tape2 t2;
  for (int i = 0; i < 150; ++i) {
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    t3.terms.push_back({pick(rng), pick(rng), pick(rng), u(rng)});
    t2.terms.push_back({pick(rng), pick(rng), u(rng)});
  }
  const int n = 20;
  const double scale = 1.37;
  for (const int B : kKernelBatchLanes) {
    std::vector<std::vector<double>> a, f, outS;
    std::vector<const double*> ap, fp;
    for (int b = 0; b < B; ++b) {
      a.push_back(randomVec(static_cast<std::size_t>(n), rng));
      f.push_back(randomVec(static_cast<std::size_t>(n), rng));
      outS.emplace_back(static_cast<std::size_t>(n), 0.0);
      ap.push_back(a.back().data());
      fp.push_back(f.back().data());
    }
    BatchBuffer aBlk(static_cast<std::size_t>(n) * B), fBlk(static_cast<std::size_t>(n) * B),
        oBlk(static_cast<std::size_t>(n) * B);
    packLanes(B, n, ap.data(), aBlk.data());
    packLanes(B, n, fp.data(), fBlk.data());

    // Tape3, per-lane a.
    for (int b = 0; b < B; ++b)
      t3.execute(a[static_cast<std::size_t>(b)], f[static_cast<std::size_t>(b)],
                 outS[static_cast<std::size_t>(b)], scale);
    zeroLanes(B, n, oBlk.data());
    executeBatched(t3, B, aBlk.data(), fBlk.data(), oBlk.data(), scale);
    for (int b = 0; b < B; ++b)
      for (int i = 0; i < n; ++i)
        ASSERT_EQ(oBlk[static_cast<std::size_t>(i * B + b)],
                  outS[static_cast<std::size_t>(b)][static_cast<std::size_t>(i)])
            << "B=" << B;

    // Tape3, lane-invariant a (LBO diffusion shape).
    const std::vector<double>& aShared = a[0];
    for (int b = 0; b < B; ++b) {
      std::fill(outS[static_cast<std::size_t>(b)].begin(), outS[static_cast<std::size_t>(b)].end(),
                0.0);
      t3.execute(aShared, f[static_cast<std::size_t>(b)], outS[static_cast<std::size_t>(b)],
                 scale);
    }
    zeroLanes(B, n, oBlk.data());
    executeBatchedSharedA(t3, B, aShared.data(), fBlk.data(), oBlk.data(), scale);
    for (int b = 0; b < B; ++b)
      for (int i = 0; i < n; ++i)
        ASSERT_EQ(oBlk[static_cast<std::size_t>(i * B + b)],
                  outS[static_cast<std::size_t>(b)][static_cast<std::size_t>(i)])
            << "B=" << B;

    // Tape2.
    for (int b = 0; b < B; ++b) {
      std::fill(outS[static_cast<std::size_t>(b)].begin(), outS[static_cast<std::size_t>(b)].end(),
                0.0);
      t2.execute(f[static_cast<std::size_t>(b)], outS[static_cast<std::size_t>(b)], scale);
    }
    zeroLanes(B, n, oBlk.data());
    executeBatched(t2, B, fBlk.data(), oBlk.data(), scale);
    for (int b = 0; b < B; ++b)
      for (int i = 0; i < n; ++i)
        ASSERT_EQ(oBlk[static_cast<std::size_t>(i * B + b)],
                  outS[static_cast<std::size_t>(b)][static_cast<std::size_t>(i)])
            << "B=" << B;
  }
}

// ------------------------------------------------- registry capabilities

TEST(Batch, RegistryOffersBatchedSetsForEveryGeneratedSpec) {
  for (const std::string& name : listCompiledKernelSpecs()) {
    if (name == "0x0v_p0_test") continue;  // fake entry other tests register
    const VlasovCompiledKernels* ck = findCompiledKernels(name);
    ASSERT_NE(ck, nullptr) << name;
    // Every generated spec carries a batched sibling for each lane count.
    const int cdim = name[0] - '0';
    const int vdim = name[2] - '0';
    for (const int lanes : kKernelBatchLanes)
      EXPECT_NE(ck->findBatched(lanes, cdim, vdim), nullptr) << name << " B=" << lanes;
    EXPECT_EQ(ck->maxBatchLanes(cdim, vdim), 8) << name;
  }
}

TEST(Batch, DescribeCompiledKernelSpecsReportsLaneCounts) {
  const std::vector<std::string> lines = describeCompiledKernelSpecs();
  bool found = false;
  for (const std::string& line : lines)
    if (line.find("2x3v_p2_ser") == 0) {
      found = true;
      EXPECT_NE(line.find("112 modes"), std::string::npos) << line;
      EXPECT_NE(line.find("batch lanes {4,8}"), std::string::npos) << line;
    }
  EXPECT_TRUE(found);
  // The plain spec listing stays pure names (consumers parse it).
  for (const std::string& name : listCompiledKernelSpecs())
    EXPECT_EQ(name.find(' '), std::string::npos) << name;
}

// ------------------------------------- kernel-level identity, every spec

class BatchedBySpec : public ::testing::TestWithParam<BasisSpec> {};

TEST_P(BatchedBySpec, KernelsMatchScalarBitwise) {
  const BasisSpec spec = GetParam();
  const int cdim = spec.cdim, vdim = spec.vdim, ndim = spec.ndim();
  const int np = basisFor(spec).numModes();
  const VlasovCompiledKernels* ck = findCompiledKernels(spec.name());
  ASSERT_NE(ck, nullptr);

  std::mt19937 rng(101);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  std::uniform_real_distribution<double> ud(0.2, 1.8);
  std::vector<double> dxv(static_cast<std::size_t>(ndim));
  for (double& x : dxv) x = ud(rng);

  for (const int B : kKernelBatchLanes) {
    const VlasovBatchedKernels* bk = ck->findBatched(B, cdim, vdim);
    ASSERT_NE(bk, nullptr) << spec.name() << " B=" << B;

    // Per-lane random inputs.
    std::vector<std::vector<double>> w, f, g, alpha, beta;
    std::vector<const double*> wp, fp, gp, ap, bp;
    for (int b = 0; b < B; ++b) {
      w.push_back(randomVec(static_cast<std::size_t>(ndim), rng));
      f.push_back(randomVec(static_cast<std::size_t>(np), rng));
      g.push_back(randomVec(static_cast<std::size_t>(np), rng));
      alpha.push_back(randomVec(static_cast<std::size_t>(vdim) * np, rng));
      beta.push_back(randomVec(static_cast<std::size_t>(vdim) * np, rng));
      wp.push_back(w.back().data());
      fp.push_back(f.back().data());
      gp.push_back(g.back().data());
      ap.push_back(alpha.back().data());
      bp.push_back(beta.back().data());
    }
    BatchBuffer wBlk(static_cast<std::size_t>(ndim) * B), fBlk(static_cast<std::size_t>(np) * B),
        gBlk(static_cast<std::size_t>(np) * B), aBlk(static_cast<std::size_t>(vdim) * np * B),
        o1Blk(static_cast<std::size_t>(np) * B), o2Blk(static_cast<std::size_t>(np) * B);
    packLanes(B, ndim, wp.data(), wBlk.data());
    packLanes(B, np, fp.data(), fBlk.data());
    packLanes(B, np, gp.data(), gBlk.data());
    packLanes(B, vdim * np, ap.data(), aBlk.data());

    std::vector<std::vector<double>> outS(static_cast<std::size_t>(B)),
        out2S(static_cast<std::size_t>(B));

    const auto expectLanesEqual = [&](const BatchBuffer& blk,
                                      const std::vector<std::vector<double>>& ref,
                                      const char* what) {
      for (int b = 0; b < B; ++b)
        for (int i = 0; i < np; ++i)
          ASSERT_EQ(blk[static_cast<std::size_t>(i * B + b)],
                    ref[static_cast<std::size_t>(b)][static_cast<std::size_t>(i)])
              << spec.name() << " " << what << " B=" << B << " lane=" << b << " mode=" << i;
    };

    // Volume streaming.
    for (int b = 0; b < B; ++b) {
      outS[static_cast<std::size_t>(b)].assign(static_cast<std::size_t>(np), 0.0);
      ck->streamVol(wp[static_cast<std::size_t>(b)], dxv.data(), fp[static_cast<std::size_t>(b)],
                    outS[static_cast<std::size_t>(b)].data());
    }
    zeroLanes(B, np, o1Blk.data());
    bk->streamVol(wBlk.data(), dxv.data(), fBlk.data(), o1Blk.data());
    expectLanesEqual(o1Blk, outS, "stream_vol");

    // Volume acceleration.
    for (int b = 0; b < B; ++b) {
      outS[static_cast<std::size_t>(b)].assign(static_cast<std::size_t>(np), 0.0);
      ck->accelVol(dxv.data(), ap[static_cast<std::size_t>(b)], fp[static_cast<std::size_t>(b)],
                   outS[static_cast<std::size_t>(b)].data());
    }
    zeroLanes(B, np, o1Blk.data());
    bk->accelVol(dxv.data(), aBlk.data(), fBlk.data(), o1Blk.data());
    expectLanesEqual(o1Blk, outS, "accel_vol");

    // Surface streaming, every configuration direction.
    for (int d = 0; d < cdim; ++d) {
      for (int b = 0; b < B; ++b) {
        outS[static_cast<std::size_t>(b)].assign(static_cast<std::size_t>(np), 0.0);
        out2S[static_cast<std::size_t>(b)].assign(static_cast<std::size_t>(np), 0.0);
        ck->streamSurf[d](wp[static_cast<std::size_t>(b)], dxv.data(),
                          fp[static_cast<std::size_t>(b)], gp[static_cast<std::size_t>(b)],
                          outS[static_cast<std::size_t>(b)].data(),
                          out2S[static_cast<std::size_t>(b)].data());
      }
      zeroLanes(B, np, o1Blk.data());
      zeroLanes(B, np, o2Blk.data());
      bk->streamSurf[d](wBlk.data(), dxv.data(), fBlk.data(), gBlk.data(), o1Blk.data(),
                        o2Blk.data());
      expectLanesEqual(o1Blk, outS, "stream_surf outl");
      expectLanesEqual(o2Blk, out2S, "stream_surf outr");
    }

    // Surface acceleration, every velocity direction.
    BatchBuffer alBlk(static_cast<std::size_t>(np) * B), arBlk(static_cast<std::size_t>(np) * B);
    for (int j = 0; j < vdim; ++j) {
      const int off = j * np;
      std::vector<const double*> alp, arp;
      for (int b = 0; b < B; ++b) {
        alp.push_back(ap[static_cast<std::size_t>(b)] + off);
        arp.push_back(bp[static_cast<std::size_t>(b)] + off);
      }
      packLanes(B, np, alp.data(), alBlk.data());
      packLanes(B, np, arp.data(), arBlk.data());
      for (int b = 0; b < B; ++b) {
        outS[static_cast<std::size_t>(b)].assign(static_cast<std::size_t>(np), 0.0);
        out2S[static_cast<std::size_t>(b)].assign(static_cast<std::size_t>(np), 0.0);
        ck->accelSurf[j](dxv.data(), alp[static_cast<std::size_t>(b)],
                         arp[static_cast<std::size_t>(b)], fp[static_cast<std::size_t>(b)],
                         gp[static_cast<std::size_t>(b)],
                         outS[static_cast<std::size_t>(b)].data(),
                         out2S[static_cast<std::size_t>(b)].data());
      }
      zeroLanes(B, np, o1Blk.data());
      zeroLanes(B, np, o2Blk.data());
      bk->accelSurf[j](dxv.data(), alBlk.data(), arBlk.data(), fBlk.data(), gBlk.data(),
                       o1Blk.data(), o2Blk.data());
      expectLanesEqual(o1Blk, outS, "accel_surf outl");
      expectLanesEqual(o2Blk, out2S, "accel_surf outr");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Specs, BatchedBySpec,
                         ::testing::Values(BasisSpec{1, 1, 1, BasisFamily::Tensor},
                                           BasisSpec{1, 1, 2, BasisFamily::Tensor},
                                           BasisSpec{1, 1, 2, BasisFamily::Serendipity},
                                           BasisSpec{1, 1, 3, BasisFamily::Serendipity},
                                           BasisSpec{1, 1, 3, BasisFamily::Tensor},
                                           BasisSpec{1, 2, 1, BasisFamily::Tensor},
                                           BasisSpec{1, 2, 1, BasisFamily::Serendipity},
                                           BasisSpec{1, 2, 2, BasisFamily::Serendipity},
                                           BasisSpec{1, 2, 2, BasisFamily::Tensor},
                                           BasisSpec{1, 2, 3, BasisFamily::Serendipity},
                                           BasisSpec{1, 3, 1, BasisFamily::Serendipity},
                                           BasisSpec{1, 3, 1, BasisFamily::Tensor},
                                           BasisSpec{1, 3, 2, BasisFamily::Serendipity},
                                           BasisSpec{2, 2, 1, BasisFamily::Serendipity},
                                           BasisSpec{2, 2, 1, BasisFamily::Tensor},
                                           BasisSpec{2, 2, 2, BasisFamily::Serendipity},
                                           BasisSpec{2, 3, 1, BasisFamily::Serendipity},
                                           BasisSpec{2, 3, 1, BasisFamily::Tensor},
                                           BasisSpec{2, 3, 2, BasisFamily::Serendipity},
                                           BasisSpec{3, 3, 1, BasisFamily::Serendipity},
                                           BasisSpec{3, 3, 1, BasisFamily::MaximalOrder}),
                         [](const auto& info) { return info.param.name(); });

// --------------------------------------- updater-level identity (Vlasov)

class VlasovBatchedUpdater : public ::testing::TestWithParam<BasisSpec> {};

TEST_P(VlasovBatchedUpdater, AdvanceMatchesScalarBitwiseWithRemainders) {
  const BasisSpec spec = GetParam();
  // Box sizes chosen so that every spec fills whole blocks at B = 4 and
  // B = 8 AND leaves a remainder (box sizes not a multiple of either),
  // exercising the batched and the scalar fall-through paths together.
  // Low-dimensional specs need more cells per dimension for that; the
  // 4-D/5-D boxes reach block size through their products (e.g. 3^3 = 27
  // velocity cells).
  const Grid pg = spec.ndim() <= 3 ? phaseGridFor(spec, 9, 13) : phaseGridFor(spec, 3, 3);
  Grid cg;
  cg.ndim = spec.cdim;
  for (int d = 0; d < spec.cdim; ++d) {
    cg.cells[static_cast<std::size_t>(d)] = pg.cells[static_cast<std::size_t>(d)];
    cg.lower[static_cast<std::size_t>(d)] = pg.lower[static_cast<std::size_t>(d)];
    cg.upper[static_cast<std::size_t>(d)] = pg.upper[static_cast<std::size_t>(d)];
  }
  const int np = basisFor(spec).numModes();
  const int npc = basisFor(spec.configSpec()).numModes();

  VlasovParams params;
  VlasovUpdater up(spec, pg, params);
  ASSERT_TRUE(up.usesCompiledKernels());

  Field f = randomField(pg, np, 7);
  Field em = randomField(cg, kEmComps * npc, 9);
  for (int d = 0; d < spec.cdim; ++d) {
    f.syncPeriodic(d);
    em.syncPeriodic(d);
  }

  up.setBatchLanes(1);
  EXPECT_EQ(up.activeBatchLanes(), 1);
  Field rhsScalar(pg, np);
  const double freqScalar = up.advance(f, &em, rhsScalar);

  for (const int B : kKernelBatchLanes) {
    up.setBatchLanes(B);
    ASSERT_EQ(up.activeBatchLanes(), B) << spec.name();
    Field rhsBatched(pg, np);
    const double freqBatched = up.advance(f, &em, rhsBatched);
    EXPECT_EQ(freqBatched, freqScalar) << spec.name() << " B=" << B;
    EXPECT_EQ(maxAbsDiff(rhsBatched, rhsScalar), 0.0) << spec.name() << " B=" << B;
  }

  // Auto mode resolves to the widest registered set.
  up.setBatchLanes(0);
  EXPECT_EQ(up.activeBatchLanes(), 8);
  Field rhsAuto(pg, np);
  up.advance(f, &em, rhsAuto);
  EXPECT_EQ(maxAbsDiff(rhsAuto, rhsScalar), 0.0);

  // Free streaming (no em): volume + configuration surfaces only.
  up.setBatchLanes(1);
  Field rhsFreeS(pg, np);
  up.advance(f, nullptr, rhsFreeS);
  up.setBatchLanes(0);
  Field rhsFreeB(pg, np);
  up.advance(f, nullptr, rhsFreeB);
  EXPECT_EQ(maxAbsDiff(rhsFreeB, rhsFreeS), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Specs, VlasovBatchedUpdater,
                         ::testing::Values(BasisSpec{1, 1, 2, BasisFamily::Serendipity},
                                           BasisSpec{2, 2, 1, BasisFamily::Serendipity},
                                           BasisSpec{2, 3, 2, BasisFamily::Serendipity}),
                         [](const auto& info) { return info.param.name(); });

// ------------------------------------------ updater-level identity (LBO)

TEST(Batch, LboAdvanceMatchesScalarBitwiseWithRemainders) {
  const BasisSpec spec{1, 2, 2, BasisFamily::Serendipity};
  const Grid conf = Grid::make({3}, {0.0}, {1.0});
  // 5*3 = 15 velocity cells: one full block of 8 plus remainder (and
  // 3 blocks of 4 plus remainder).
  const Grid vel = Grid::make({5, 3}, {-5.0, -4.0}, {5.0, 4.0});
  const Grid pg = Grid::phase(conf, vel);
  const int np = basisFor(spec).numModes();

  // A strictly positive distribution keeps the weak division sane.
  Field f(pg, np);
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> u(-0.05, 0.05);
  forEachCell(pg, [&](const MultiIndex& idx) {
    double* c = f.at(idx);
    c[0] = 1.0 + u(rng);
    for (int l = 1; l < np; ++l) c[l] = u(rng);
  });

  LboUpdater lbo(spec, pg, LboParams{1.0, 2.5, true});

  lbo.setBatchLanes(1);
  EXPECT_EQ(lbo.activeBatchLanes(), 1);
  Field rhsScalar(pg, np);
  rhsScalar.setZero();
  const double freqScalar = lbo.advance(f, rhsScalar);

  for (const int B : kKernelBatchLanes) {
    lbo.setBatchLanes(B);
    Field rhsBatched(pg, np);
    rhsBatched.setZero();
    const double freqBatched = lbo.advance(f, rhsBatched);
    EXPECT_EQ(freqBatched, freqScalar) << "B=" << B;
    EXPECT_EQ(maxAbsDiff(rhsBatched, rhsScalar), 0.0) << "B=" << B;
  }

  lbo.setBatchLanes(0);
  EXPECT_EQ(lbo.activeBatchLanes(), 8);
  Field rhsAuto(pg, np);
  rhsAuto.setZero();
  lbo.advance(f, rhsAuto);
  EXPECT_EQ(maxAbsDiff(rhsAuto, rhsScalar), 0.0);

  // Raw operator pieces exercise drag-only and diffusion-only routing.
  const Grid cgrid = lbo.confGrid();
  const int npc = lbo.numConfModes();
  Field uMom(cgrid, 2 * npc), vtSq(cgrid, npc);
  lbo.primitiveMoments(f, uMom, vtSq);
  for (const int lanes : {1, 8}) {
    lbo.setBatchLanes(lanes);
    Field rd(pg, np), rf(pg, np);
    rd.setZero();
    rf.setZero();
    lbo.dragTerm(f, uMom, rd);
    lbo.diffusionTerm(f, vtSq, rf);
    if (lanes == 1) {
      rhsScalar = std::move(rd);
      rhsAuto = std::move(rf);
    } else {
      EXPECT_EQ(maxAbsDiff(rd, rhsScalar), 0.0);
      EXPECT_EQ(maxAbsDiff(rf, rhsAuto), 0.0);
    }
  }
}

// ------------------------------------------- end-to-end Landau determinism

ScalarFn maxwellian1x1v(double n0, double vt, double pertAmp, double k) {
  return [=](const double* z) {
    const double x = z[0], v = z[1];
    return n0 * (1.0 + pertAmp * std::cos(k * x)) / std::sqrt(2.0 * kPi * vt * vt) *
           std::exp(-0.5 * v * v / (vt * vt));
  };
}

TEST(Batch, LandauRunBatchedMatchesScalarBitwise) {
  const double k = 0.5;
  const auto makeSim = [&](int lanes) {
    auto b = Simulation::builder();
    b.confGrid(Grid::make({8}, {0.0}, {2.0 * kPi / k}))
        .basis(2, BasisFamily::Serendipity)
        .species("elc", -1.0, 1.0, Grid::make({13}, {-6.0}, {6.0}),
                 maxwellian1x1v(1.0, 1.0, 0.05, k))
        .field(MaxwellParams{})
        .initField([=](const double* x, double* em) {
          for (int c = 0; c < 8; ++c) em[c] = 0.0;
          em[0] = -0.05 * std::sin(k * x[0]) / k;
        })
        .stepper(Stepper::SspRk3)
        .cflFrac(0.8)
        .batchLanes(lanes);
    return b.build();
  };
  Simulation scalar = makeSim(1);
  Simulation batched = makeSim(0);
  for (int i = 0; i < 5; ++i) {
    const double dtS = scalar.step();
    const double dtB = batched.step();
    ASSERT_EQ(dtS, dtB);
  }
  EXPECT_EQ(maxAbsDiff(scalar.distf(0), batched.distf(0)), 0.0);
}

}  // namespace
}  // namespace vdg
