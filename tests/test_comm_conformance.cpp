// Transport conformance battery: every Communicator backend must carry
// the same bits. Three layers of proof, each over both in-tree multi-rank
// transports (ThreadComm shared-memory channels, ProcessComm forked
// processes over Unix-domain socketpairs; the MPI backend runs the same
// scenarios through tools/vdg_launch on MPI-enabled builds):
//
//   1. halo property tests — a synced window field's ghost layer equals
//      the wrapped/neighbor interior of a global oracle field, over
//      periodic, walled, uneven, and 2-D (corner-ghost) decompositions;
//   2. ordered reductions — scalar and vector all-reduce results are the
//      exact rank-order fold, bitwise, on every rank;
//   3. end-to-end trajectories — the shared conformance scenarios
//      (app/conformance.hpp) run distributed and match a serial oracle's
//      coefficients, dt sequence, and Krylov iteration counts with
//      EXPECT_EQ, no tolerances.
//
// Plus the failure contract: a rank that dies mid-exchange must surface
// as a thrown error naming the dead peer on the survivors — not a hang.

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "app/conformance.hpp"
#include "par/communicator.hpp"
#include "par/decomp.hpp"
#include "par/process_comm.hpp"

// Fork-based cases are meaningless under ThreadSanitizer (fork from the
// instrumented test binary is unsupported); the ThreadComm cases are the
// ones the TSan job is for.
#if defined(__SANITIZE_THREAD__)
#define VDG_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define VDG_TSAN 1
#endif
#endif
#ifndef VDG_TSAN
#define VDG_TSAN 0
#endif

namespace vdg {
namespace {

// ---------------------------------------------------------------- helpers

/// Run fn(comm, rank) on every rank of a ThreadComm, one thread per rank.
template <typename Fn>
void onThreadRanks(ThreadComm& comm, int ranks, const Fn& fn) {
  std::vector<std::thread> ts;
  for (int r = 0; r < ranks; ++r)
    ts.emplace_back([&, r] { fn(comm.endpoint(r), r); });
  for (auto& t : ts) t.join();
}

/// Ghost-layer property check for one rank: fill the local window from a
/// deterministic global field, sync every configuration dimension, then
/// every ghost cell whose global pull-index is resolvable (periodic wrap,
/// or an interior neighbor in a walled dimension) must hold that exact
/// interior value. Returns {mismatches, cellsChecked}.
std::pair<int, int> haloRoundTrip(const Grid& global, const CartDecomp& decomp,
                                  Communicator& comm, int ncomp) {
  const int rank = comm.rank();
  const Grid local = decomp.localGrid(global, rank);
  Field f(local, ncomp);
  forEachCell(local, [&](const MultiIndex& idx) {
    double base = 0.0;
    for (int d = 0; d < local.ndim; ++d)
      base = base * 1000.0 + (idx[d] + local.offset[static_cast<std::size_t>(d)]);
    for (int c = 0; c < ncomp; ++c) f.at(idx)[c] = base * 10.0 + c;
  });
  for (int d = 0; d < decomp.cdim; ++d)
    comm.syncConfGhostsDim(f, d, decomp.periodic[static_cast<std::size_t>(d)]);

  int bad = 0, checked = 0;
  // Walk the extended box (one ghost layer per synced dim) by odometer.
  MultiIndex idx;
  std::vector<int> lo(static_cast<std::size_t>(local.ndim)), hi(lo);
  for (int d = 0; d < local.ndim; ++d) {
    const bool synced = d < decomp.cdim;
    lo[static_cast<std::size_t>(d)] = synced ? -1 : 0;
    hi[static_cast<std::size_t>(d)] = local.cells[static_cast<std::size_t>(d)] + (synced ? 1 : 0);
    idx[d] = lo[static_cast<std::size_t>(d)];
  }
  while (true) {
    bool isGhost = false, resolvable = true;
    MultiIndex gidx;
    for (int d = 0; d < local.ndim; ++d) {
      gidx[d] = idx[d] + local.offset[static_cast<std::size_t>(d)];
      if (idx[d] < 0 || idx[d] >= local.cells[static_cast<std::size_t>(d)]) {
        isGhost = true;
        const int n = global.cells[static_cast<std::size_t>(d)];
        if (gidx[d] < 0 || gidx[d] >= n) {
          if (decomp.periodic[static_cast<std::size_t>(d)])
            gidx[d] = (gidx[d] + n) % n;
          else
            resolvable = false;  // wall ghost: the physical fill's job
        }
      }
    }
    if (isGhost && resolvable) {
      ++checked;
      double base = 0.0;
      for (int d = 0; d < local.ndim; ++d) base = base * 1000.0 + gidx[d];
      for (int c = 0; c < ncomp; ++c)
        if (f.at(idx)[c] != base * 10.0 + c) ++bad;
    }
    int d = 0;
    for (; d < local.ndim; ++d) {
      if (++idx[d] < hi[static_cast<std::size_t>(d)]) break;
      idx[d] = lo[static_cast<std::size_t>(d)];
    }
    if (d == local.ndim) break;
  }
  return {bad, checked};
}

struct HaloCase {
  std::string name;
  Grid global;
  int ranks;
  std::array<bool, kMaxDim> periodic;
};

std::vector<HaloCase> haloCases() {
  std::array<bool, kMaxDim> allPeriodic{};
  allPeriodic.fill(true);
  std::array<bool, kMaxDim> walledX = allPeriodic;
  walledX[0] = false;
  return {
      {"1x-even-2r", Grid::make({8}, {0.0}, {1.0}), 2, allPeriodic},
      {"1x-uneven-4r", Grid::make({10}, {0.0}, {1.0}), 4, allPeriodic},
      {"1x-walled-3r", Grid::make({9}, {0.0}, {1.0}), 3, walledX},
      {"2x-corners-4r", Grid::make({6, 6}, {0.0, 0.0}, {1.0, 1.0}), 4, allPeriodic},
      {"2x-walledx-4r", Grid::make({8, 4}, {0.0, 0.0}, {1.0, 1.0}), 4, walledX},
  };
}

// ------------------------------------------------------ 1. halo property

TEST(CommConformance, ThreadCommHaloRoundTrip) {
  for (const HaloCase& hc : haloCases()) {
    const CartDecomp decomp = CartDecomp::make(hc.global, hc.ranks, hc.periodic);
    ThreadComm comm(decomp);
    std::vector<std::pair<int, int>> results(static_cast<std::size_t>(hc.ranks));
    onThreadRanks(comm, hc.ranks, [&](Communicator& c, int r) {
      results[static_cast<std::size_t>(r)] = haloRoundTrip(hc.global, decomp, c, 3);
    });
    for (int r = 0; r < hc.ranks; ++r) {
      EXPECT_EQ(results[static_cast<std::size_t>(r)].first, 0)
          << hc.name << " rank " << r;
      EXPECT_GT(results[static_cast<std::size_t>(r)].second, 0)
          << hc.name << " rank " << r;
    }
  }
}

TEST(CommConformance, ProcessCommHaloRoundTrip) {
  if (VDG_TSAN) GTEST_SKIP() << "fork-based backend not exercised under TSan";
  for (const HaloCase& hc : haloCases()) {
    const CartDecomp decomp = CartDecomp::make(hc.global, hc.ranks, hc.periodic);
    const auto outcomes = ProcessGroup::run(
        decomp,
        [&](ProcessComm& pc) {
          const auto [bad, checked] = haloRoundTrip(hc.global, decomp, pc, 3);
          return std::vector<double>{static_cast<double>(bad),
                                     static_cast<double>(checked)};
        },
        /*recvTimeoutSec=*/60.0);
    ASSERT_EQ(static_cast<int>(outcomes.size()), hc.ranks) << hc.name;
    for (int r = 0; r < hc.ranks; ++r) {
      const auto& o = outcomes[static_cast<std::size_t>(r)];
      ASSERT_TRUE(o.ok) << hc.name << " rank " << r << ": " << o.error;
      EXPECT_EQ(o.values[0], 0.0) << hc.name << " rank " << r;
      EXPECT_GT(o.values[1], 0.0) << hc.name << " rank " << r;
    }
  }
}

// --------------------------------------------------- 2. ordered reductions

TEST(CommConformance, ProcessCommReductionsMatchRankOrderFold) {
  if (VDG_TSAN) GTEST_SKIP() << "fork-based backend not exercised under TSan";
  const int ranks = 4;
  const CartDecomp decomp =
      CartDecomp::make(Grid::make({8}, {0.0}, {1.0}), ranks);
  const auto outcomes = ProcessGroup::run(
      decomp,
      [&](ProcessComm& pc) {
        const int r = pc.rank();
        const double mx = pc.allReduceMax(1.0 + r);
        const double sm = pc.allReduceSum(0.1 * (r + 1));
        std::vector<double> vec = {0.3 * (r + 1), -0.07 * (r + 1)};
        pc.allReduceSum(std::span<double>(vec));
        pc.barrier();
        return std::vector<double>{mx, sm, vec[0], vec[1]};
      },
      /*recvTimeoutSec=*/60.0);
  // The exact fold the serial/ThreadComm reduction performs, same order.
  const double expectSum = ((0.1 + 0.2) + 0.3) + 0.4;
  const double expectV0 = ((0.3 + 0.6) + 0.9) + 1.2;
  const double expectV1 = ((-0.07 + -0.14) + -0.21) + -0.28;
  for (int r = 0; r < ranks; ++r) {
    const auto& o = outcomes[static_cast<std::size_t>(r)];
    ASSERT_TRUE(o.ok) << "rank " << r << ": " << o.error;
    EXPECT_EQ(o.values[0], 4.0) << "rank " << r;
    EXPECT_EQ(o.values[1], expectSum) << "rank " << r;
    EXPECT_EQ(o.values[2], expectV0) << "rank " << r;
    EXPECT_EQ(o.values[3], expectV1) << "rank " << r;
  }
}

// ------------------------------------------------ 3. trajectory conformance

void expectIdentical(const ConformanceResult& res, const std::string& tag) {
  EXPECT_EQ(res.mismatches, 0.0) << tag << ": state coefficients diverged";
  EXPECT_EQ(res.rank.dts, res.oracle.dts) << tag << ": dt sequence diverged";
  EXPECT_EQ(res.rank.krylovIters, res.oracle.krylovIters)
      << tag << ": Krylov iteration history diverged";
  EXPECT_FALSE(res.rank.dts.empty()) << tag;
}

void runThreadScenario(const std::string& name, int ranks, int steps) {
  const Simulation::Builder builder = conformanceScenario(name);
  const CartDecomp decomp = conformanceDecomp(builder, ranks);
  ThreadComm comm(decomp);
  std::vector<ConformanceResult> results(static_cast<std::size_t>(ranks));
  onThreadRanks(comm, ranks, [&](Communicator& c, int r) {
    results[static_cast<std::size_t>(r)] =
        runConformanceRank(builder, decomp, c, steps);
  });
  for (int r = 0; r < ranks; ++r)
    expectIdentical(results[static_cast<std::size_t>(r)],
                    name + " thread ranks=" + std::to_string(ranks) +
                        " rank=" + std::to_string(r));
}

void runProcessScenario(const std::string& name, int ranks, int steps) {
  const Simulation::Builder builder = conformanceScenario(name);
  const CartDecomp decomp = conformanceDecomp(builder, ranks);
  const auto outcomes = ProcessGroup::run(
      decomp,
      [&](ProcessComm& pc) {
        return packConformance(runConformanceRank(builder, decomp, pc, steps));
      },
      /*recvTimeoutSec=*/120.0);
  for (int r = 0; r < ranks; ++r) {
    const auto& o = outcomes[static_cast<std::size_t>(r)];
    ASSERT_TRUE(o.ok) << name << " process rank " << r << ": " << o.error;
    expectIdentical(unpackConformance(o.values),
                    name + " process ranks=" + std::to_string(ranks) +
                        " rank=" + std::to_string(r));
  }
}

TEST(CommConformance, ThreadCommLandauTrajectory) {
  runThreadScenario("landau", 2, 3);
  runThreadScenario("landau", 4, 3);
}

TEST(CommConformance, ThreadCommLboTrajectory) { runThreadScenario("lbo", 2, 3); }

TEST(CommConformance, ThreadCommSheathTrajectory) { runThreadScenario("sheath", 2, 3); }

TEST(CommConformance, ThreadCommPoisson2x2vTrajectory) {
  runThreadScenario("poisson2x2v", 4, 2);
}

TEST(CommConformance, ProcessCommLandauTrajectory) {
  if (VDG_TSAN) GTEST_SKIP() << "fork-based backend not exercised under TSan";
  runProcessScenario("landau", 2, 3);
  runProcessScenario("landau", 4, 3);
}

TEST(CommConformance, ProcessCommLboTrajectory) {
  if (VDG_TSAN) GTEST_SKIP() << "fork-based backend not exercised under TSan";
  runProcessScenario("lbo", 2, 3);
}

TEST(CommConformance, ProcessCommSheathTrajectory) {
  if (VDG_TSAN) GTEST_SKIP() << "fork-based backend not exercised under TSan";
  // 3 ranks over 12 cells: uneven walled decomposition, both edge ranks
  // owning a physical wall and the middle rank owning none.
  runProcessScenario("sheath", 3, 3);
}

TEST(CommConformance, ProcessCommPoisson2x2vTrajectory) {
  if (VDG_TSAN) GTEST_SKIP() << "fork-based backend not exercised under TSan";
  runProcessScenario("poisson2x2v", 4, 2);
}

// --------------------------------------------------- 4. failure semantics

TEST(CommConformance, DeadPeerSurfacesAsErrorNotHang) {
  if (VDG_TSAN) GTEST_SKIP() << "fork-based backend not exercised under TSan";
  const CartDecomp decomp = CartDecomp::make(Grid::make({8}, {0.0}, {1.0}), 2);
  const auto outcomes = ProcessGroup::run(
      decomp,
      [&](ProcessComm& pc) {
        if (pc.rank() == 1) ::_exit(0);  // die abruptly, no result, no goodbye
        Field f(decomp.localGrid(Grid::make({8}, {0.0}, {1.0}), 0), 2);
        pc.syncConfGhostsDim(f, 0, true);  // must throw on peer EOF, not hang
        return std::vector<double>{1.0};   // unreachable
      },
      /*recvTimeoutSec=*/20.0);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_NE(outcomes[0].error.find("peer rank 1"), std::string::npos)
      << "error was: " << outcomes[0].error;
  EXPECT_FALSE(outcomes[1].ok);  // rank 1 wrote no result before _exit
}

TEST(CommConformance, RecvTimeoutSurfacesAsError) {
  if (VDG_TSAN) GTEST_SKIP() << "fork-based backend not exercised under TSan";
  // A live-but-silent peer: rank 1 never sends, never closes. The bounded
  // receive timeout must convert the wait into a thrown error.
  const CartDecomp decomp = CartDecomp::make(Grid::make({8}, {0.0}, {1.0}), 2);
  const auto outcomes = ProcessGroup::run(
      decomp,
      [&](ProcessComm& pc) {
        pc.setRecvTimeout(1.5);
        if (pc.rank() == 1) {
          ::sleep(4);  // stay alive, say nothing
          return std::vector<double>{0.0};
        }
        Field f(decomp.localGrid(Grid::make({8}, {0.0}, {1.0}), 0), 2);
        pc.endSyncConfGhostsDim(f, 0, true);  // nothing was ever posted
        return std::vector<double>{1.0};      // unreachable
      },
      /*recvTimeoutSec=*/30.0);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_NE(outcomes[0].error.find("timed out"), std::string::npos)
      << "error was: " << outcomes[0].error;
}

}  // namespace
}  // namespace vdg
