// BGK collision operator tests: density conservation by construction,
// relaxation of a non-equilibrium distribution toward a Maxwellian, and a
// Maxwellian being a fixed point.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "app/projection.hpp"
#include "collisions/bgk.hpp"

namespace vdg {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Bgk, MaxwellianIsNearFixedPoint) {
  const BasisSpec spec{1, 1, 2, BasisFamily::Serendipity};
  const Grid pg = Grid::phase(Grid::make({4}, {0.0}, {1.0}), Grid::make({32}, {-8.0}, {8.0}));
  const Basis& b = basisFor(spec);
  Field f(pg, b.numModes());
  projectOnBasis(
      b, pg,
      [](const double* z) {
        return std::exp(-0.5 * z[1] * z[1]) / std::sqrt(2.0 * kPi);
      },
      f, 5);
  const BgkUpdater bgk(spec, pg, BgkParams{1.0, 2.0});
  Field rhs(pg, b.numModes());
  rhs.setZero();
  bgk.advance(f, rhs);
  // rhs = nu (f_M - f) must be small relative to f itself.
  double fMag = 0.0, rMag = 0.0;
  forEachCell(pg, [&](const MultiIndex& idx) {
    for (int l = 0; l < b.numModes(); ++l) {
      fMag = std::max(fMag, std::abs(f.at(idx)[l]));
      rMag = std::max(rMag, std::abs(rhs.at(idx)[l]));
    }
  });
  EXPECT_LT(rMag, 2e-3 * fMag);
}

TEST(Bgk, ConservesDensityExactly) {
  const BasisSpec spec{1, 1, 2, BasisFamily::Serendipity};
  const Grid pg = Grid::phase(Grid::make({4}, {0.0}, {1.0}), Grid::make({24}, {-8.0}, {8.0}));
  const Basis& b = basisFor(spec);
  // Strongly non-Maxwellian: two cold beams.
  Field f(pg, b.numModes());
  projectOnBasis(
      b, pg,
      [](const double* z) {
        const double v = z[1];
        const double a = std::exp(-0.5 * (v - 2.0) * (v - 2.0) / 0.25);
        const double c = std::exp(-0.5 * (v + 2.0) * (v + 2.0) / 0.25);
        return (a + c) / (2.0 * std::sqrt(2.0 * kPi * 0.25));
      },
      f, 5);
  const BgkUpdater bgk(spec, pg, BgkParams{1.0, 3.0});
  Field rhs(pg, b.numModes());
  rhs.setZero();
  bgk.advance(f, rhs);
  // The collisional density change integrates to ~0 in every config cell.
  const MomentUpdater mom(spec, pg);
  Field dm0(mom.confGrid(), mom.numConfModes());
  mom.compute(rhs, &dm0, nullptr, nullptr);
  forEachCell(mom.confGrid(), [&](const MultiIndex& idx) {
    EXPECT_NEAR(dm0.at(idx)[0], 0.0, 1e-10);
  });
}

TEST(Bgk, RelaxesBeamsTowardMaxwellian) {
  const BasisSpec spec{1, 1, 2, BasisFamily::Serendipity};
  const Grid pg = Grid::phase(Grid::make({2}, {0.0}, {1.0}), Grid::make({32}, {-8.0}, {8.0}));
  const Basis& b = basisFor(spec);
  Field f(pg, b.numModes());
  projectOnBasis(
      b, pg,
      [](const double* z) {
        const double v = z[1];
        const double a = std::exp(-0.5 * (v - 1.5) * (v - 1.5) / 0.36);
        const double c = std::exp(-0.5 * (v + 1.5) * (v + 1.5) / 0.36);
        return (a + c) / (2.0 * std::sqrt(2.0 * kPi * 0.36));
      },
      f, 5);
  const double nu = 4.0;
  const BgkUpdater bgk(spec, pg, BgkParams{1.0, nu});

  Field fM(pg, b.numModes());
  bgk.projectMaxwellian(f, fM);
  const auto l2diff = [&](const Field& a, const Field& c) {
    double s = 0.0;
    forEachCell(pg, [&](const MultiIndex& idx) {
      for (int l = 0; l < b.numModes(); ++l) {
        const double d = a.at(idx)[l] - c.at(idx)[l];
        s += d * d;
      }
    });
    return std::sqrt(s);
  };
  const double d0 = l2diff(f, fM);

  // Forward Euler relax to t = 1 (4 collision times).
  Field rhs(pg, b.numModes());
  const double dt = 0.02;
  for (int s = 0; s < 50; ++s) {
    rhs.setZero();
    bgk.advance(f, rhs);
    f.axpy(dt, rhs);
  }
  bgk.projectMaxwellian(f, fM);
  const double d1 = l2diff(f, fM);
  EXPECT_LT(d1, 0.1 * d0);
}

}  // namespace
}  // namespace vdg
