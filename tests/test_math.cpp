// Unit tests for the exact 1-D integral layer (the "CAS substrate"):
// Gauss-Legendre rules, normalized Legendre polynomials, triple-product
// tables and the multivariate Legendre series algebra.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "math/gauss_legendre.hpp"
#include "math/leg_series.hpp"
#include "math/legendre.hpp"

namespace vdg {
namespace {

TEST(GaussLegendre, IntegratesPolynomialsExactly) {
  // n-point rule is exact through degree 2n-1.
  for (int n = 1; n <= 12; ++n) {
    const QuadRule q = gauss_legendre(n);
    for (int deg = 0; deg <= 2 * n - 1; ++deg) {
      double sum = 0.0;
      for (std::size_t i = 0; i < q.size(); ++i)
        sum += q.weights[i] * std::pow(q.nodes[i], deg);
      const double exact = (deg % 2 == 0) ? 2.0 / (deg + 1) : 0.0;
      EXPECT_NEAR(sum, exact, 1e-13) << "n=" << n << " deg=" << deg;
    }
  }
}

TEST(GaussLegendre, WeightsSumToTwo) {
  for (int n : {1, 2, 5, 16, 24, 48}) {
    const QuadRule q = gauss_legendre(n);
    double s = 0.0;
    for (double w : q.weights) s += w;
    EXPECT_NEAR(s, 2.0, 1e-12);
  }
}

TEST(Legendre, RecurrenceMatchesClosedForms) {
  for (double x : {-0.9, -0.3, 0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(legendreP(0, x), 1.0);
    EXPECT_DOUBLE_EQ(legendreP(1, x), x);
    EXPECT_NEAR(legendreP(2, x), 0.5 * (3 * x * x - 1), 1e-14);
    EXPECT_NEAR(legendreP(3, x), 0.5 * (5 * x * x * x - 3 * x), 1e-14);
  }
}

TEST(Legendre, DerivativeMatchesFiniteDifference) {
  const double h = 1e-6;
  for (int k = 1; k <= 8; ++k) {
    for (double x : {-0.7, -0.2, 0.3, 0.8}) {
      const double fd = (legendreP(k, x + h) - legendreP(k, x - h)) / (2 * h);
      EXPECT_NEAR(legendrePDeriv(k, x), fd, 1e-6) << "k=" << k << " x=" << x;
    }
  }
}

TEST(Legendre, DerivativeAtEndpoints) {
  // P_k'(1) = k(k+1)/2, P_k'(-1) = (-1)^{k+1} k(k+1)/2.
  for (int k = 0; k <= 8; ++k) {
    EXPECT_NEAR(legendrePDeriv(k, 1.0), 0.5 * k * (k + 1), 1e-11);
    const double sgn = (k % 2 == 0) ? -1.0 : 1.0;
    EXPECT_NEAR(legendrePDeriv(k, -1.0), sgn * 0.5 * k * (k + 1), 1e-11);
  }
}

TEST(LegendreTables, PsiOrthonormal) {
  const auto& tab = LegendreTables::instance();
  // trip(a, b, 0) = delta_ab / sqrt(2) since psi_0 = 1/sqrt(2).
  for (int a = 0; a <= kMaxLegendreDegree; ++a)
    for (int b = 0; b <= kMaxLegendreDegree; ++b)
      EXPECT_NEAR(tab.trip(a, b, 0), (a == b) ? 1.0 / std::sqrt(2.0) : 0.0, 1e-13);
}

TEST(LegendreTables, TripIsSymmetric) {
  const auto& tab = LegendreTables::instance();
  for (int a = 0; a <= 6; ++a)
    for (int b = 0; b <= 6; ++b)
      for (int c = 0; c <= 6; ++c) {
        // Symmetric up to quadrature roundoff.
        EXPECT_NEAR(tab.trip(a, b, c), tab.trip(b, a, c), 1e-13);
        EXPECT_NEAR(tab.trip(a, b, c), tab.trip(a, c, b), 1e-13);
      }
}

TEST(LegendreTables, TripParityAndTriangle) {
  // \int psi_a psi_b psi_c vanishes unless a+b+c is even and the degrees
  // satisfy the triangle inequality.
  const auto& tab = LegendreTables::instance();
  for (int a = 0; a <= 8; ++a)
    for (int b = 0; b <= 8; ++b)
      for (int c = 0; c <= 8; ++c) {
        const bool allowed =
            ((a + b + c) % 2 == 0) && (c >= std::abs(a - b)) && (c <= a + b);
        if (!allowed) {
          EXPECT_NEAR(tab.trip(a, b, c), 0.0, 1e-13);
        }
      }
}

TEST(LegendreTables, DpairMatchesIntegrationByParts) {
  // \int psi_a' psi_b + \int psi_a psi_b' = psi_a psi_b |_{-1}^{1}.
  const auto& tab = LegendreTables::instance();
  for (int a = 0; a <= 8; ++a)
    for (int b = 0; b <= 8; ++b) {
      const double boundary =
          tab.psiEnd(a, 1) * tab.psiEnd(b, 1) - tab.psiEnd(a, -1) * tab.psiEnd(b, -1);
      EXPECT_NEAR(tab.dpair(a, b) + tab.dpair(b, a), boundary, 1e-12);
    }
}

TEST(LegendreTables, MomentsOfPsi) {
  const auto& tab = LegendreTables::instance();
  // \int psi_0 = sqrt(2), \int x psi_1 = sqrt(3/2)*2/3, \int x^2 psi_0 = sqrt(2)/3.
  EXPECT_NEAR(tab.xmom(0, 0), std::sqrt(2.0), 1e-13);
  EXPECT_NEAR(tab.xmom(1, 1), std::sqrt(1.5) * 2.0 / 3.0, 1e-13);
  EXPECT_NEAR(tab.xmom(0, 2), std::sqrt(2.0) / 3.0, 1e-13);
  EXPECT_NEAR(tab.xmom(2, 2), std::sqrt(2.5) * 4.0 / 15.0, 1e-13);
  // Odd moments of even psi vanish.
  EXPECT_NEAR(tab.xmom(0, 1), 0.0, 1e-14);
  EXPECT_NEAR(tab.xmom(2, 1), 0.0, 1e-14);
}

TEST(LegSeries, ConstantAndCoordinateEvaluate) {
  const LegSeries one = LegSeries::constant(3, 2.5);
  const LegSeries x1 = LegSeries::coordinate(3, 1);
  const double eta[3] = {0.3, -0.7, 0.9};
  EXPECT_NEAR(one.eval(eta), 2.5, 1e-13);
  EXPECT_NEAR(x1.eval(eta), -0.7, 1e-13);
}

TEST(LegSeries, ProductIsExact) {
  // (x0 + 2)(x1 - x0) evaluated symbolically vs pointwise.
  const int nd = 2;
  LegSeries a = LegSeries::coordinate(nd, 0) + LegSeries::constant(nd, 2.0);
  LegSeries b = LegSeries::coordinate(nd, 1) + LegSeries::coordinate(nd, 0) * (-1.0);
  const LegSeries p = a.multiply(b);
  for (double x : {-0.8, 0.1, 0.6})
    for (double y : {-0.5, 0.0, 0.9}) {
      const double eta[2] = {x, y};
      EXPECT_NEAR(p.eval(eta), (x + 2) * (y - x), 1e-12);
    }
}

TEST(LegSeries, DerivativeOfSquare) {
  // d/dx (x^2) = 2x.
  const int nd = 1;
  const LegSeries x = LegSeries::coordinate(nd, 0);
  const LegSeries d = x.multiply(x).derivative(0);
  for (double t : {-0.9, -0.2, 0.4, 0.8}) {
    EXPECT_NEAR(d.eval(&t), 2 * t, 1e-12);
  }
}

TEST(LegSeries, IntegralOverReferenceCell) {
  // \int (x^2 + 3) over [-1,1]^2 = 2/3*2 + 3*4 = 13.333...
  const int nd = 2;
  const LegSeries x = LegSeries::coordinate(nd, 0);
  const LegSeries s = x.multiply(x) + LegSeries::constant(nd, 3.0);
  EXPECT_NEAR(s.integral(), 2.0 / 3.0 * 2.0 + 12.0, 1e-12);
}

}  // namespace
}  // namespace vdg
