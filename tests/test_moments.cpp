// Moment updater tests: the exact velocity-space reductions (density,
// momentum/current, energy) of projected Maxwellians against closed forms.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "app/projection.hpp"
#include "dg/moments.hpp"

namespace vdg {
namespace {

struct MaxwellianCase {
  double n, ux, uy, vt;
};

class MomentsOfMaxwellian : public ::testing::TestWithParam<MaxwellianCase> {};

TEST_P(MomentsOfMaxwellian, IntegralsMatchClosedForm1x2v) {
  const auto [n0, ux, uy, vt] = GetParam();
  const BasisSpec spec{1, 2, 2, BasisFamily::Serendipity};
  // Velocity extents wide enough (>= 6 sigma past the drift) that the
  // Maxwellian tail truncation is below the test tolerances.
  const Grid conf = Grid::make({4}, {0.0}, {1.0});
  const Grid vel = Grid::make({28, 28}, {-14.0, -14.0}, {14.0, 14.0});
  const Grid pg = Grid::phase(conf, vel);
  const Basis& b = basisFor(spec);
  Field f(pg, b.numModes());
  projectOnBasis(
      b, pg,
      [&](const double* z) {
        const double dvx = z[1] - ux, dvy = z[2] - uy;
        return n0 / (2.0 * std::numbers::pi * vt * vt) *
               std::exp(-0.5 * (dvx * dvx + dvy * dvy) / (vt * vt));
      },
      f, 5);

  const MomentUpdater mom(spec, pg);
  const Grid cg = mom.confGrid();
  const int npc = mom.numConfModes();
  Field m0(cg, npc), m1(cg, 3 * npc), m2(cg, npc);
  mom.compute(f, &m0, &m1, &m2);

  // Tolerances are set by how well the projected DG expansion represents
  // the Maxwellian at this resolution (1 cell per ~sigma in the narrowest
  // case), not by the moment tapes, which are exact.
  const Basis& cb = basisFor(spec.configSpec());
  const double vol = 1.0;  // conf domain volume
  EXPECT_NEAR(integrateDomain(cb, cg, m0), n0 * vol, 2e-5 * n0);
  EXPECT_NEAR(integrateDomain(cb, cg, m1, 0), n0 * ux * vol, 2e-5 * n0 * std::max(1.0, std::abs(ux)));
  EXPECT_NEAR(integrateDomain(cb, cg, m1, 1), n0 * uy * vol, 2e-5 * n0 * std::max(1.0, std::abs(uy)));
  EXPECT_NEAR(integrateDomain(cb, cg, m1, 2), 0.0, 1e-10);
  const double m2Exact = n0 * (ux * ux + uy * uy + 2.0 * vt * vt) * vol;
  EXPECT_NEAR(integrateDomain(cb, cg, m2), m2Exact, 2e-4 * std::max(1.0, m2Exact));
}

INSTANTIATE_TEST_SUITE_P(Cases, MomentsOfMaxwellian,
                         ::testing::Values(MaxwellianCase{1.0, 0.0, 0.0, 1.0},
                                           MaxwellianCase{2.5, 1.0, -0.5, 0.8},
                                           MaxwellianCase{0.3, -2.0, 0.0, 1.5},
                                           MaxwellianCase{1.0, 0.0, 3.0, 0.5}));

TEST(Moments, CurrentAccumulatesOverSpecies) {
  // Two drifting species with opposite charges: J = q1 n1 u1 + q2 n2 u2.
  const BasisSpec spec{1, 1, 2, BasisFamily::Serendipity};
  const Grid conf = Grid::make({4}, {0.0}, {1.0});
  const Grid vel = Grid::make({32}, {-8.0}, {8.0});
  const Grid pg = Grid::phase(conf, vel);
  const Basis& b = basisFor(spec);

  const auto maxwellian = [](double n, double u, double vt) {
    return [n, u, vt](const double* z) {
      const double dv = z[1] - u;
      return n / std::sqrt(2.0 * std::numbers::pi * vt * vt) *
             std::exp(-0.5 * dv * dv / (vt * vt));
    };
  };
  Field fe(pg, b.numModes()), fi(pg, b.numModes());
  projectOnBasis(b, pg, maxwellian(1.0, 1.5, 1.0), fe, 5);
  projectOnBasis(b, pg, maxwellian(1.0, -0.5, 0.7), fi, 5);

  const MomentUpdater mom(spec, pg);
  const Grid cg = mom.confGrid();
  Field cur(cg, 3 * mom.numConfModes());
  cur.setZero();
  mom.accumulateCurrent(fe, -1.0, cur);
  mom.accumulateCurrent(fi, +1.0, cur);

  const Basis& cb = basisFor(spec.configSpec());
  // J_x = (-1)(1.0)(1.5) + (+1)(1.0)(-0.5) = -2.0 over unit volume.
  EXPECT_NEAR(integrateDomain(cb, cg, cur, 0), -2.0, 1e-7);
  EXPECT_NEAR(integrateDomain(cb, cg, cur, 1), 0.0, 1e-12);
}

TEST(PrimitiveMoments, WeakDivisionRecoversProjectedMaxwellian) {
  // For a projected Maxwellian with x-uniform (n, u, vth^2) the discrete
  // moments are exact constants (p2 contains |v|^2; the tail truncation at
  // 8 sigma is ~e^-32), so weak division must return the drift and thermal
  // speed to machine precision — including every non-constant mode, which
  // must vanish identically.
  const BasisSpec spec{1, 1, 2, BasisFamily::Serendipity};
  const Grid pg = Grid::phase(Grid::make({4}, {0.0}, {1.0}), Grid::make({32}, {-9.0}, {11.0}));
  const Basis& b = basisFor(spec);
  const double n0 = 2.5, u0 = 1.0, vt2 = 1.44;
  Field f(pg, b.numModes());
  projectOnBasis(
      b, pg,
      [&](const double* z) {
        const double dv = z[1] - u0;
        return n0 / std::sqrt(2.0 * std::numbers::pi * vt2) * std::exp(-0.5 * dv * dv / vt2);
      },
      f, 6);

  const MomentUpdater mom(spec, pg);
  const Grid cg = mom.confGrid();
  const int npc = mom.numConfModes();
  Field m0(cg, npc), m1(cg, 3 * npc), m2(cg, npc);
  mom.compute(f, &m0, &m1, &m2);

  const PrimitiveMoments prim(spec.configSpec(), 1);
  Field u(cg, npc), vtSq(cg, npc);
  prim.compute(m0, m1, m2, u, vtSq);

  const double c0 = std::sqrt(2.0);  // constant-expansion coefficient in 1x
  forEachCell(cg, [&](const MultiIndex& idx) {
    EXPECT_NEAR(u.at(idx)[0], u0 * c0, 1e-12);
    EXPECT_NEAR(vtSq.at(idx)[0], vt2 * c0, 1e-12);
    for (int k = 1; k < npc; ++k) {
      EXPECT_NEAR(u.at(idx)[k], 0.0, 1e-12);
      EXPECT_NEAR(vtSq.at(idx)[k], 0.0, 1e-12);
    }
  });
}

TEST(PrimitiveMoments, FloorsPinnedOnNearVacuumAndColdCells) {
  // Regression-pin the limiter behavior documented in dg/moments.hpp: a
  // below-floor density gets the BGK vacuum convention (u = 0, vth^2 = 1);
  // a healthy density whose divided vth^2 collapses gets the constant
  // kVtSqFloor expansion.
  const BasisSpec conf{1, 0, 2, BasisFamily::Serendipity};
  const Grid cg = Grid::make({2}, {0.0}, {1.0});
  const Basis& cb = basisFor(conf);
  const int npc = cb.numModes();
  const double c0 = std::sqrt(2.0);
  const PrimitiveMoments prim(conf, 1);
  Field m0(cg, npc), m1(cg, 3 * npc), m2(cg, npc), u(cg, npc), vtSq(cg, npc);

  // Near-vacuum: nAvg = 1e-13 <= kDensityFloor.
  m0.setZero();
  m1.setZero();
  m2.setZero();
  forEachCell(cg, [&](const MultiIndex& idx) {
    m0.at(idx)[0] = 1e-13 * c0;
    m1.at(idx)[0] = 5.0 * c0;  // junk momentum must not produce a drift
  });
  prim.compute(m0, m1, m2, u, vtSq);
  forEachCell(cg, [&](const MultiIndex& idx) {
    for (int k = 0; k < npc; ++k) EXPECT_EQ(u.at(idx)[k], 0.0);
    EXPECT_DOUBLE_EQ(vtSq.at(idx)[0], 1.0 * c0);
    for (int k = 1; k < npc; ++k) EXPECT_EQ(vtSq.at(idx)[k], 0.0);
  });

  // Cold cell: n = 1, u = 0, M2 ~ 0 => divided vth^2 below the floor.
  forEachCell(cg, [&](const MultiIndex& idx) {
    m0.at(idx)[0] = 1.0 * c0;
    m1.at(idx)[0] = 0.0;
    m2.at(idx)[0] = 1e-20 * c0;
  });
  prim.compute(m0, m1, m2, u, vtSq);
  forEachCell(cg, [&](const MultiIndex& idx) {
    EXPECT_DOUBLE_EQ(vtSq.at(idx)[0], PrimitiveMoments::kVtSqFloor * c0);
    for (int k = 1; k < npc; ++k) EXPECT_EQ(vtSq.at(idx)[k], 0.0);
  });
}

TEST(Moments, UniformDensityHasFlatModes) {
  // A spatially uniform distribution must produce a density with zero
  // non-constant configuration modes.
  const BasisSpec spec{1, 1, 2, BasisFamily::Serendipity};
  const Grid conf = Grid::make({6}, {0.0}, {1.0});
  const Grid vel = Grid::make({16}, {-6.0}, {6.0});
  const Grid pg = Grid::phase(conf, vel);
  const Basis& b = basisFor(spec);
  Field f(pg, b.numModes());
  projectOnBasis(
      b, pg, [](const double* z) { return std::exp(-0.5 * z[1] * z[1]); }, f);
  const MomentUpdater mom(spec, pg);
  Field m0(mom.confGrid(), mom.numConfModes());
  mom.compute(f, &m0, nullptr, nullptr);
  forEachCell(mom.confGrid(), [&](const MultiIndex& idx) {
    for (int l = 1; l < mom.numConfModes(); ++l) EXPECT_NEAR(m0.at(idx)[l], 0.0, 1e-13);
  });
}

}  // namespace
}  // namespace vdg
