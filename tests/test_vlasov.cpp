// Solver-level tests of the modal Vlasov updater. The central property is
// the paper's: the modal sparse-tape path computes *exactly* the same
// alias-free right-hand side as an over-integrated quadrature/dense-matrix
// evaluation of the same scheme (they are two implementations of the same
// exact integrals), while conserving mass to machine precision and
// dissipating (penalty) or conserving (central) the L2 norm.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>

#include "app/projection.hpp"
#include "dg/vlasov.hpp"
#include "quad/quad_vlasov.hpp"

namespace vdg {
namespace {

Grid phaseGridFor(const BasisSpec& spec, int nx, int nv) {
  Grid g;
  g.ndim = spec.ndim();
  for (int d = 0; d < spec.cdim; ++d) {
    g.cells[static_cast<std::size_t>(d)] = nx;
    g.lower[static_cast<std::size_t>(d)] = 0.0;
    g.upper[static_cast<std::size_t>(d)] = 2.0 * std::numbers::pi;
  }
  for (int d = spec.cdim; d < spec.ndim(); ++d) {
    g.cells[static_cast<std::size_t>(d)] = nv;
    g.lower[static_cast<std::size_t>(d)] = -4.0;
    g.upper[static_cast<std::size_t>(d)] = 4.0;
  }
  return g;
}

Field randomField(const Grid& g, int ncomp, unsigned seed) {
  Field f(g, ncomp);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  forEachCell(g, [&](const MultiIndex& idx) {
    double* c = f.at(idx);
    for (int k = 0; k < ncomp; ++k) c[k] = u(rng) * std::pow(0.5, k % 5);
  });
  return f;
}

Grid confGridOf(const Grid& phase, int cdim) {
  Grid g;
  g.ndim = cdim;
  for (int d = 0; d < cdim; ++d) {
    g.cells[static_cast<std::size_t>(d)] = phase.cells[static_cast<std::size_t>(d)];
    g.lower[static_cast<std::size_t>(d)] = phase.lower[static_cast<std::size_t>(d)];
    g.upper[static_cast<std::size_t>(d)] = phase.upper[static_cast<std::size_t>(d)];
  }
  return g;
}

class VlasovBySpec : public ::testing::TestWithParam<BasisSpec> {};

TEST_P(VlasovBySpec, ModalMatchesQuadratureBaseline) {
  const BasisSpec spec = GetParam();
  const Grid pg = phaseGridFor(spec, 4, 4);
  const Grid cg = confGridOf(pg, spec.cdim);
  const int np = basisFor(spec).numModes();
  const int npc = basisFor(spec.configSpec()).numModes();

  for (const FluxType flux : {FluxType::Central, FluxType::Penalty}) {
    VlasovParams params;
    params.charge = -1.0;
    params.mass = 1.0;
    params.flux = flux;
    const VlasovUpdater modal(spec, pg, params);
    const QuadVlasovUpdater quad(spec, pg, params);

    Field f = randomField(pg, np, 11);
    Field em = randomField(cg, kEmComps * npc, 23);
    for (int d = 0; d < spec.cdim; ++d) {
      f.syncPeriodic(d);
      em.syncPeriodic(d);
    }

    Field rhsModal(pg, np), rhsQuad(pg, np);
    modal.advance(f, &em, rhsModal);
    quad.advance(f, &em, rhsQuad);

    double maxAbs = 0.0, maxDiff = 0.0;
    forEachCell(pg, [&](const MultiIndex& idx) {
      const double* a = rhsModal.at(idx);
      const double* b = rhsQuad.at(idx);
      for (int l = 0; l < np; ++l) {
        maxAbs = std::max(maxAbs, std::abs(a[l]));
        maxDiff = std::max(maxDiff, std::abs(a[l] - b[l]));
      }
    });
    EXPECT_GT(maxAbs, 0.0);
    EXPECT_LT(maxDiff, 1e-10 * maxAbs) << "flux=" << static_cast<int>(flux);
  }
}

TEST_P(VlasovBySpec, MassIsConservedExactly) {
  // Periodic configuration BCs + zero-flux velocity closure: the integral
  // of the right-hand side over all of phase space vanishes.
  const BasisSpec spec = GetParam();
  const Grid pg = phaseGridFor(spec, 4, 4);
  const Grid cg = confGridOf(pg, spec.cdim);
  const int np = basisFor(spec).numModes();
  const int npc = basisFor(spec.configSpec()).numModes();

  VlasovParams params;
  params.flux = FluxType::Penalty;
  const VlasovUpdater modal(spec, pg, params);
  Field f = randomField(pg, np, 5);
  Field em = randomField(cg, kEmComps * npc, 17);
  for (int d = 0; d < spec.cdim; ++d) {
    f.syncPeriodic(d);
    em.syncPeriodic(d);
  }
  Field rhs(pg, np);
  modal.advance(f, &em, rhs);

  const double total = integrateDomain(basisFor(spec), pg, rhs);
  // Scale: compare against the L1 magnitude of the rhs.
  double mag = 0.0;
  forEachCell(pg, [&](const MultiIndex& idx) { mag += std::abs(rhs.at(idx)[0]); });
  EXPECT_LT(std::abs(total), 1e-12 * std::max(mag, 1.0));
}

TEST_P(VlasovBySpec, PenaltyFluxDissipatesL2) {
  // With the local Lax-Friedrichs penalty, d/dt ||f||^2 = 2 <f, L(f)> <= 0
  // for pure streaming (alpha = v is divergence-free in phase space).
  const BasisSpec spec = GetParam();
  const Grid pg = phaseGridFor(spec, 4, 4);
  const int np = basisFor(spec).numModes();
  VlasovParams params;
  params.flux = FluxType::Penalty;
  const VlasovUpdater modal(spec, pg, params);
  Field f = randomField(pg, np, 31);
  for (int d = 0; d < spec.cdim; ++d) f.syncPeriodic(d);
  Field rhs(pg, np);
  modal.advance(f, nullptr, rhs);
  double dot = 0.0;
  forEachCell(pg, [&](const MultiIndex& idx) {
    const double* a = f.at(idx);
    const double* b = rhs.at(idx);
    for (int l = 0; l < np; ++l) dot += a[l] * b[l];
  });
  EXPECT_LE(dot, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Specs, VlasovBySpec,
                         ::testing::Values(BasisSpec{1, 1, 1, BasisFamily::Tensor},
                                           BasisSpec{1, 1, 2, BasisFamily::Tensor},
                                           BasisSpec{1, 1, 2, BasisFamily::Serendipity},
                                           BasisSpec{1, 2, 1, BasisFamily::Serendipity},
                                           BasisSpec{1, 2, 2, BasisFamily::Serendipity},
                                           BasisSpec{2, 2, 1, BasisFamily::Serendipity},
                                           BasisSpec{1, 2, 2, BasisFamily::MaximalOrder}),
                         [](const auto& info) { return info.param.name(); });

TEST(Vlasov, UniformDistributionIsSteadyUnderStreaming) {
  // f independent of x: div_x(v f) = 0 so the rhs vanishes identically.
  const BasisSpec spec{1, 1, 2, BasisFamily::Serendipity};
  const Grid pg = phaseGridFor(spec, 6, 8);
  const VlasovUpdater modal(spec, pg, VlasovParams{});
  const Basis& b = basisFor(spec);
  Field f(pg, b.numModes());
  projectOnBasis(b, pg, [](const double* z) { return std::exp(-0.5 * z[1] * z[1]); }, f);
  f.syncPeriodic(0);
  Field rhs(pg, b.numModes());
  modal.advance(f, nullptr, rhs);
  forEachCell(pg, [&](const MultiIndex& idx) {
    for (int l = 0; l < b.numModes(); ++l) EXPECT_NEAR(rhs.at(idx)[l], 0.0, 1e-12);
  });
}

TEST(Vlasov, CflFrequencyScalesWithVelocity) {
  const BasisSpec spec{1, 1, 1, BasisFamily::Tensor};
  Grid pg = phaseGridFor(spec, 4, 4);
  const VlasovUpdater modal(spec, pg, VlasovParams{});
  const int np = basisFor(spec).numModes();
  Field f = randomField(pg, np, 2);
  f.syncPeriodic(0);
  Field rhs(pg, np);
  const double freq1 = modal.advance(f, nullptr, rhs);
  // Doubling the velocity extent doubles the max streaming speed.
  Grid pg2 = pg;
  pg2.lower[1] = -8.0;
  pg2.upper[1] = 8.0;
  const VlasovUpdater modal2(spec, pg2, VlasovParams{});
  Field f2 = randomField(pg2, np, 2);
  f2.syncPeriodic(0);
  Field rhs2(pg2, np);
  const double freq2 = modal2.advance(f2, nullptr, rhs2);
  EXPECT_NEAR(freq2 / freq1, 2.0, 0.05);
}

}  // namespace
}  // namespace vdg
