// Tests of the composable Simulation builder API: a two-species collisional
// (BGK) 1x1v run assembled through the fluent builder, conservation
// checked via energetics(), stepper selection, threaded-vs-serial bitwise
// reproducibility, and the VlasovMaxwellApp façade producing bit-for-bit
// the results of the builder path.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <string>
#include <vector>

#include "app/simulation.hpp"
#include "app/vlasov_maxwell_app.hpp"

namespace vdg {
namespace {

constexpr double kPi = std::numbers::pi;

ScalarFn maxwellian1x1v(double n0, double u0, double vt, double pertAmp, double k) {
  return [=](const double* z) {
    const double x = z[0], v = z[1];
    const double dv = v - u0;
    return n0 * (1.0 + pertAmp * std::cos(k * x)) / std::sqrt(2.0 * kPi * vt * vt) *
           std::exp(-0.5 * dv * dv / (vt * vt));
  };
}

VectorFn langmuirField(double amp, double k) {
  return [=](const double* x, double* em) {
    for (int c = 0; c < 8; ++c) em[c] = 0.0;
    em[0] = -amp * std::sin(k * x[0]) / k;  // Ex solving Gauss's law
  };
}

/// Max |a - b| over interior cells; 0.0 means bitwise identical there.
double maxAbsDiff(const Field& a, const Field& b) {
  EXPECT_EQ(a.ncomp(), b.ncomp());
  double m = 0.0;
  forEachCell(a.grid(), [&](const MultiIndex& idx) {
    const double* pa = a.at(idx);
    const double* pb = b.at(idx);
    for (int l = 0; l < a.ncomp(); ++l) m = std::max(m, std::abs(pa[l] - pb[l]));
  });
  return m;
}

Simulation twoSpeciesCollisional(Stepper stepper, int threads, double nu) {
  const double k = 0.5;
  auto b = Simulation::builder();
  b.confGrid(Grid::make({8}, {0.0}, {2.0 * kPi / k}))
      .basis(2, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({16}, {-6.0}, {6.0}),
               maxwellian1x1v(1.0, 0.0, 1.0, 0.02, k))
      .collisions(BgkParams{1.0, nu})
      .species("ion", 1.0, 4.0, Grid::make({16}, {-4.0}, {4.0}),
               maxwellian1x1v(1.0, 0.0, 0.5, 0.0, k))
      .collisions(BgkParams{4.0, nu})
      .field(MaxwellParams{})
      .initField(langmuirField(0.02, k))
      .stepper(stepper)
      .cflFrac(0.8)
      .threads(threads);
  return b.build();
}

TEST(Simulation, BuilderAssemblesCollisionalPipelineInOrder) {
  Simulation sim = twoSpeciesCollisional(Stepper::SspRk3, 1, 2.0);
  std::vector<std::string> names;
  for (const auto& u : sim.pipeline()) names.push_back(u->name());
  const std::vector<std::string> expected = {"boundary:periodic", "vlasov:elc", "vlasov:ion",
                                             "maxwell",           "current-coupling",
                                             "bgk:elc",           "bgk:ion"};
  EXPECT_EQ(names, expected);
  EXPECT_EQ(sim.numSpecies(), 2);
  EXPECT_EQ(sim.speciesIndex("elc"), 0);
  EXPECT_EQ(sim.speciesIndex("ion"), 1);
  EXPECT_EQ(sim.speciesIndex("neutral"), -1);
  EXPECT_EQ(sim.stepper(), Stepper::SspRk3);
}

TEST(Simulation, BuilderIsReusableAcrossBuilds) {
  // One configured builder must produce independent, equivalent
  // simulations (e.g. a serial and a threaded variant).
  auto b = Simulation::builder();
  b.confGrid(Grid::make({4}, {0.0}, {1.0}))
      .basis(1)
      .species("elc", -1.0, 1.0, Grid::make({8}, {-4.0}, {4.0}),
               [](const double* z) { return std::exp(-0.5 * z[1] * z[1]); })
      .evolveField(false);
  Simulation first = b.build();
  Simulation second = b.build();
  EXPECT_EQ(second.numSpecies(), 1);
  first.step(0.01);
  second.step(0.01);
  EXPECT_EQ(maxAbsDiff(first.distf(0), second.distf(0)), 0.0);
}

TEST(Simulation, CollisionalTwoSpeciesConservesMassAndEnergy) {
  Simulation sim = twoSpeciesCollisional(Stepper::SspRk3, 0, 2.0);
  const Simulation::Energetics e0 = sim.energetics();
  ASSERT_EQ(e0.mass.size(), 2u);
  for (int i = 0; i < 10; ++i) sim.step();
  const Simulation::Energetics e1 = sim.energetics();

  // Mass: conserved to round-off per species (Vlasov is conservative; the
  // BGK Maxwellian is density-rescaled cell by cell).
  EXPECT_NEAR(e1.mass[0], e0.mass[0], 1e-12 * std::abs(e0.mass[0]));
  EXPECT_NEAR(e1.mass[1], e0.mass[1], 1e-12 * std::abs(e0.mass[1]));

  // Energy: the spatial scheme and the J.E coupling conserve it; the BGK
  // Maxwellian projection is only moment-exact in the cell averages, so
  // allow a small drift.
  EXPECT_NEAR(e1.totalEnergy(), e0.totalEnergy(), 1e-3 * std::abs(e0.totalEnergy()));
  EXPECT_TRUE(std::isfinite(e1.fieldEnergy));
}

TEST(Simulation, BgkRelaxationPullsBeamsTowardMaxwellianEquilibrium) {
  // Collisions must shrink the deviation of f from its own Maxwellian:
  // evolve a two-beam electron distribution with strong collisions under
  // the full coupled system and compare against the nu = 0 run.
  const double k = 0.5;
  const auto beams = [k](const double* z) {
    const double x = z[0], v = z[1];
    const double a = std::exp(-0.5 * (v - 1.5) * (v - 1.5) / 0.36);
    const double b = std::exp(-0.5 * (v + 1.5) * (v + 1.5) / 0.36);
    return (1.0 + 0.01 * std::cos(k * x)) * (a + b) / (2.0 * std::sqrt(2.0 * kPi * 0.36));
  };
  const auto build = [&](double nu) {
    auto b = Simulation::builder();
    b.confGrid(Grid::make({4}, {0.0}, {2.0 * kPi / k}))
        .basis(2)
        .species("elc", -1.0, 1.0, Grid::make({24}, {-6.0}, {6.0}), beams)
        .field(MaxwellParams{})
        .initField(langmuirField(0.01, k))
        .cflFrac(0.5);
    if (nu > 0.0) b.collisions(BgkParams{1.0, nu});
    return b.build();
  };
  Simulation collisional = build(8.0);
  Simulation collisionless = build(0.0);
  collisional.advanceTo(1.0);
  collisionless.advanceTo(1.0);
  // L2 distance between f and free-streaming-free Maxwellian estimate: use
  // the distribution's L2 norm drop as the relaxation proxy — BGK damps
  // the beam structure much faster than the collisionless dynamics.
  const double l2c = collisional.distfL2(0);
  const double l2f = collisionless.distfL2(0);
  EXPECT_LT(l2c, 0.75 * l2f);
}

TEST(Simulation, FacadeMatchesBuilderBitwise) {
  // The VlasovMaxwellApp façade and the direct builder path must produce
  // identical single-step (and multi-step) results to the last bit on the
  // Landau-damping setup.
  const double k = 0.5, amp = 1e-3;

  VlasovMaxwellParams params;
  params.confGrid = Grid::make({16}, {0.0}, {2.0 * kPi / k});
  params.polyOrder = 2;
  params.family = BasisFamily::Serendipity;
  params.cflFrac = 0.8;
  params.initField = langmuirField(amp, k);
  SpeciesParams elc;
  elc.name = "elc";
  elc.charge = -1.0;
  elc.mass = 1.0;
  elc.velGrid = Grid::make({24}, {-6.0}, {6.0});
  elc.init = maxwellian1x1v(1.0, 0.0, 1.0, amp, k);
  VlasovMaxwellApp app(params, {elc});

  auto b = Simulation::builder();
  b.confGrid(Grid::make({16}, {0.0}, {2.0 * kPi / k}))
      .basis(2, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({24}, {-6.0}, {6.0}),
               maxwellian1x1v(1.0, 0.0, 1.0, amp, k))
      .field(MaxwellParams{})
      .initField(langmuirField(amp, k))
      .stepper(Stepper::SspRk3)
      .cflFrac(0.8);
  Simulation sim = b.build();

  // Identical initial projection.
  EXPECT_EQ(maxAbsDiff(app.distf(0), sim.distf(0)), 0.0);
  EXPECT_EQ(maxAbsDiff(app.emField(), sim.emField()), 0.0);

  // Identical CFL choice and single-step state.
  const double dtApp = app.step();
  const double dtSim = sim.step();
  EXPECT_EQ(dtApp, dtSim);
  EXPECT_EQ(maxAbsDiff(app.distf(0), sim.distf(0)), 0.0);
  EXPECT_EQ(maxAbsDiff(app.emField(), sim.emField()), 0.0);

  // Stays bitwise identical over further steps.
  for (int i = 0; i < 3; ++i) {
    app.step();
    sim.step();
  }
  EXPECT_EQ(app.time(), sim.time());
  EXPECT_EQ(maxAbsDiff(app.distf(0), sim.distf(0)), 0.0);
  EXPECT_EQ(maxAbsDiff(app.emField(), sim.emField()), 0.0);
}

TEST(Simulation, SingleStepMatchesGoldenSeedTrajectory) {
  // Golden single-step values pinned from the path verified bit-for-bit
  // equal to the original hard-coded VlasovMaxwellApp implementation at
  // the time of the refactor. FacadeMatchesBuilderBitwise only proves the
  // facade and builder move together; this pins both against drifting
  // from the seed trajectories (tolerances are loose enough for compiler
  // re-association, tight enough to catch any stepper/pipeline change).
  const double k = 0.5, amp = 1e-3;
  auto b = Simulation::builder();
  b.confGrid(Grid::make({16}, {0.0}, {2.0 * kPi / k}))
      .basis(2, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({24}, {-6.0}, {6.0}),
               maxwellian1x1v(1.0, 0.0, 1.0, amp, k))
      .field(MaxwellParams{})
      .initField(langmuirField(amp, k))
      .stepper(Stepper::SspRk3)
      .cflFrac(0.8);
  Simulation sim = b.build();
  const double dt = sim.step();
  EXPECT_NEAR(dt, 2.09327142252569397e-02, 1e-13);
  MultiIndex cell;  // conf cell 0, velocity cell 0 (Maxwellian tail)
  EXPECT_NEAR(sim.distf(0).at(cell)[0], 7.20782038935771038e-08, 1e-16);
  cell[0] = 7;
  cell[1] = 11;  // bulk of the distribution
  EXPECT_NEAR(sim.distf(0).at(cell)[0], 7.65101666430807570e-01, 1e-12);
  MultiIndex conf0;
  EXPECT_NEAR(sim.emField().at(conf0)[0], -5.48109717819402734e-04, 1e-15);
  EXPECT_NEAR(sim.distfL2(0), 3.54490846152432226e+00, 1e-11);
  EXPECT_NEAR(sim.energetics().totalEnergy(), 6.28319740304188290e+00, 1e-11);
}

TEST(Simulation, ThreadedRhsMatchesSerialBitwise) {
  Simulation serial = twoSpeciesCollisional(Stepper::SspRk3, 1, 2.0);
  Simulation threaded = twoSpeciesCollisional(Stepper::SspRk3, 4, 2.0);
  for (int i = 0; i < 5; ++i) {
    serial.step();
    threaded.step();
  }
  EXPECT_EQ(serial.time(), threaded.time());
  for (int s = 0; s < 2; ++s)
    EXPECT_EQ(maxAbsDiff(serial.distf(s), threaded.distf(s)), 0.0);
  EXPECT_EQ(maxAbsDiff(serial.emField(), threaded.emField()), 0.0);
}

TEST(Simulation, SspRk2StepperIsSelectableAndConservative) {
  Simulation rk2 = twoSpeciesCollisional(Stepper::SspRk2, 0, 2.0);
  Simulation rk3 = twoSpeciesCollisional(Stepper::SspRk3, 0, 2.0);
  const double m0 = rk2.energetics().mass[0];
  const double dt = 0.01;
  for (int i = 0; i < 5; ++i) {
    rk2.step(dt);
    rk3.step(dt);
  }
  EXPECT_NEAR(rk2.energetics().mass[0], m0, 1e-12 * std::abs(m0));
  // Same dt, different stepper: trajectories must actually differ...
  EXPECT_GT(maxAbsDiff(rk2.distf(0), rk3.distf(0)), 0.0);
  // ...but only at the O(dt^3) truncation level.
  EXPECT_LT(maxAbsDiff(rk2.distf(0), rk3.distf(0)), 1e-4);
}

TEST(Simulation, CollisionFrequencyEntersCflLimit) {
  // A collision frequency far above the advection frequencies must shrink
  // the CFL-chosen dt: the pipeline's max-frequency reduction sees nu.
  Simulation gentle = twoSpeciesCollisional(Stepper::SspRk3, 1, 0.1);
  Simulation stiff = twoSpeciesCollisional(Stepper::SspRk3, 1, 500.0);
  const double dtGentle = gentle.step();
  const double dtStiff = stiff.step();
  EXPECT_LT(dtStiff, 0.1 * dtGentle);
}

}  // namespace
}  // namespace vdg
