// Parallel substrate tests: the thread-backed rank runtime must reproduce
// the serial solver bit-for-bit (same kernels, same per-cell operation
// order, halo exchange replacing the shared array), and the decomposition
// and scaling-model helpers must be self-consistent.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numbers>
#include <vector>

#include "app/projection.hpp"
#include "par/comm_model.hpp"
#include "par/decomp.hpp"
#include "par/thread_exec.hpp"

namespace vdg {
namespace {

TEST(ThreadExec, ParallelForCoversRangeExactlyOnce) {
  ThreadExec exec(4);
  EXPECT_EQ(exec.numThreads(), 4);
  const std::size_t n = 1037;
  std::vector<std::atomic<int>> hits(n);
  exec.parallelFor(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  // Reusable: a second loop on the same pool.
  std::atomic<std::size_t> total{0};
  exec.parallelFor(10, [&](std::size_t b, std::size_t e) { total.fetch_add(e - b); });
  EXPECT_EQ(total.load(), 10u);
  // Degenerate sizes.
  exec.parallelFor(0, [&](std::size_t, std::size_t) { FAIL(); });
  std::atomic<int> ones{0};
  exec.parallelFor(1, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 1u);
    ++ones;
  });
  EXPECT_EQ(ones.load(), 1);
}

TEST(ThreadExec, NestedParallelForRunsInline) {
  ThreadExec exec(4);
  std::atomic<int> inner{0};
  exec.parallelFor(8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      // A nested submission must degrade to an inline loop, not deadlock.
      exec.parallelFor(3, [&](std::size_t bb, std::size_t ee) {
        inner.fetch_add(static_cast<int>(ee - bb));
      });
    }
  });
  EXPECT_EQ(inner.load(), 24);
}

TEST(ThreadExec, ParallelForEachCellMatchesSerialOrderPerChunk) {
  ThreadExec exec(3);
  const Grid g = Grid::make({5, 4, 3}, {0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
  Field visited(g, 1, 0);
  visited.setZero();
  parallelForEachCell(&exec, g, [&](const MultiIndex& idx) { visited.at(idx)[0] += 1.0; });
  forEachCell(g, [&](const MultiIndex& idx) { EXPECT_EQ(visited.at(idx)[0], 1.0); });
  // Nullable-executor fallback covers the same cells serially.
  parallelForEachCell(nullptr, g, [&](const MultiIndex& idx) { visited.at(idx)[0] += 1.0; });
  forEachCell(g, [&](const MultiIndex& idx) { EXPECT_EQ(visited.at(idx)[0], 2.0); });
}

TEST(SlabDecomp, PartitionsExactly) {
  const SlabDecomp d = SlabDecomp::make(17, 4);
  ASSERT_EQ(d.count.size(), 4u);
  int total = 0, pos = 0;
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(d.start[static_cast<std::size_t>(r)], pos);
    pos += d.count[static_cast<std::size_t>(r)];
    total += d.count[static_cast<std::size_t>(r)];
    EXPECT_GE(d.count[static_cast<std::size_t>(r)], 4);
  }
  EXPECT_EQ(total, 17);
  EXPECT_THROW(SlabDecomp::make(2, 4), std::invalid_argument);
}

TEST(SlabDecomp, LocalGridsTileTheDomain) {
  const Grid g = Grid::make({12, 8}, {0.0, -1.0}, {3.0, 1.0});
  const SlabDecomp d = SlabDecomp::make(12, 3);
  double lo = g.lower[0];
  for (int r = 0; r < 3; ++r) {
    const Grid lg = d.localGrid(g, r);
    EXPECT_NEAR(lg.lower[0], lo, 1e-14);
    EXPECT_NEAR(lg.dx(0), g.dx(0), 1e-14);
    EXPECT_EQ(lg.cells[1], 8);
    lo = lg.upper[0];
  }
  EXPECT_NEAR(lo, g.upper[0], 1e-14);
}

TEST(Factor3, NearCubicFactorizations) {
  EXPECT_EQ(factor3(8), (std::array<int, 3>{2, 2, 2}));
  EXPECT_EQ(factor3(64), (std::array<int, 3>{4, 4, 4}));
  const auto f512 = factor3(512);
  EXPECT_EQ(f512[0] * f512[1] * f512[2], 512);
  EXPECT_EQ(f512, (std::array<int, 3>{8, 8, 8}));
  const auto f12 = factor3(12);
  EXPECT_EQ(f12[0] * f12[1] * f12[2], 12);
}

TEST(DistributedVlasov, MatchesSerialBitForBit) {
  const BasisSpec spec{1, 1, 2, BasisFamily::Serendipity};
  const Grid conf = Grid::make({12}, {0.0}, {2.0 * std::numbers::pi});
  const Grid vel = Grid::make({8}, {-4.0}, {4.0});
  const Grid pg = Grid::phase(conf, vel);
  const Basis& b = basisFor(spec);

  Field f0(pg, b.numModes());
  projectOnBasis(
      b, pg,
      [](const double* z) {
        return (1.0 + 0.3 * std::sin(z[0])) * std::exp(-0.5 * z[1] * z[1]);
      },
      f0);

  // Serial forward-Euler reference.
  VlasovParams params;
  const VlasovUpdater serial(spec, pg, params);
  Field fs(pg, b.numModes()), rhs(pg, b.numModes());
  fs.copyFrom(f0);
  const double dt = 1e-3;
  const int steps = 5;
  for (int s = 0; s < steps; ++s) {
    fs.syncPeriodic(0);
    serial.advance(fs, nullptr, rhs);
    fs.axpy(dt, rhs);
  }

  for (int nranks : {2, 3, 4}) {
    DistributedVlasov dist(spec, pg, nranks, params);
    dist.scatter(f0);
    dist.run(steps, dt);
    Field fg(pg, b.numModes());
    dist.gather(fg);
    double maxDiff = 0.0, maxAbs = 0.0;
    forEachCell(pg, [&](const MultiIndex& idx) {
      for (int l = 0; l < b.numModes(); ++l) {
        maxDiff = std::max(maxDiff, std::abs(fg.at(idx)[l] - fs.at(idx)[l]));
        maxAbs = std::max(maxAbs, std::abs(fs.at(idx)[l]));
      }
    });
    // Identical kernels and operation order; the only difference is the
    // local grid's cell-center arithmetic (lower + i*dx vs global), which
    // perturbs the streaming coefficients at the last ulp.
    EXPECT_LT(maxDiff, 1e-13 * maxAbs) << "nranks=" << nranks;
  }
}

TEST(CommModel, WeakScalingStaysNearFlat) {
  MachineModel m;
  m.perCellSeconds = 2e-6;
  m.bytesPerCell = 64 * 8;
  const auto pts = weakScaling(m, {8, 8, 8}, 16 * 16 * 16, {1, 8, 64, 512, 4096});
  ASSERT_EQ(pts.size(), 5u);
  // Paper: at worst ~25% of per-step cost in halo exchange at 4096 nodes.
  for (const auto& p : pts) EXPECT_LT(p.commFraction, 0.5);
  // Time per step grows by less than 2x from 1 to 4096 nodes.
  EXPECT_LT(pts.back().timePerStep, 2.0 * pts.front().timePerStep);
}

TEST(CommModel, StrongScalingSaturates) {
  MachineModel m;
  m.perCellSeconds = 2e-6;
  m.bytesPerCell = 64 * 8;
  m.bandwidth = 1e9;
  m.starveCells = 16384;
  const auto pts = strongScaling(m, {32, 32, 32}, 8 * 8 * 8, {8, 64, 512, 4096});
  ASSERT_EQ(pts.size(), 4u);
  // Speedup grows but distinctly sublinearly (paper: ~60x instead of 512x).
  EXPECT_GT(pts.back().relSpeedup, 4.0);
  EXPECT_LT(pts.back().relSpeedup, 150.0);
  // Comm fraction rises monotonically as ranks starve.
  EXPECT_GT(pts.back().commFraction, pts.front().commFraction);
}

}  // namespace
}  // namespace vdg
