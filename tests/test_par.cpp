// Parallel substrate tests: the ThreadExec pool, the slab/Cartesian
// decompositions (including the degenerate and uneven cases the
// distributed layer must survive), the packed halo-slab format of Field,
// and the analytic scaling-model helpers. The end-to-end rank-parallel
// identity tests live in test_distributed.cpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <numbers>
#include <thread>
#include <vector>

#include "par/comm_model.hpp"
#include "par/communicator.hpp"
#include "par/decomp.hpp"
#include "par/thread_exec.hpp"

namespace vdg {
namespace {

TEST(ThreadExec, ParallelForCoversRangeExactlyOnce) {
  ThreadExec exec(4);
  EXPECT_EQ(exec.numThreads(), 4);
  const std::size_t n = 1037;
  std::vector<std::atomic<int>> hits(n);
  exec.parallelFor(n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  // Reusable: a second loop on the same pool.
  std::atomic<std::size_t> total{0};
  exec.parallelFor(10, [&](std::size_t b, std::size_t e) { total.fetch_add(e - b); });
  EXPECT_EQ(total.load(), 10u);
  // Degenerate sizes.
  exec.parallelFor(0, [&](std::size_t, std::size_t) { FAIL(); });
  std::atomic<int> ones{0};
  exec.parallelFor(1, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 1u);
    ++ones;
  });
  EXPECT_EQ(ones.load(), 1);
}

TEST(ThreadExec, NestedParallelForRunsInline) {
  ThreadExec exec(4);
  std::atomic<int> inner{0};
  exec.parallelFor(8, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      // A nested submission must degrade to an inline loop, not deadlock.
      exec.parallelFor(3, [&](std::size_t bb, std::size_t ee) {
        inner.fetch_add(static_cast<int>(ee - bb));
      });
    }
  });
  EXPECT_EQ(inner.load(), 24);
}

TEST(ThreadExec, ParallelForEachCellMatchesSerialOrderPerChunk) {
  ThreadExec exec(3);
  const Grid g = Grid::make({5, 4, 3}, {0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
  Field visited(g, 1, 0);
  visited.setZero();
  parallelForEachCell(&exec, g, [&](const MultiIndex& idx) { visited.at(idx)[0] += 1.0; });
  forEachCell(g, [&](const MultiIndex& idx) { EXPECT_EQ(visited.at(idx)[0], 1.0); });
  // Nullable-executor fallback covers the same cells serially.
  parallelForEachCell(nullptr, g, [&](const MultiIndex& idx) { visited.at(idx)[0] += 1.0; });
  forEachCell(g, [&](const MultiIndex& idx) { EXPECT_EQ(visited.at(idx)[0], 2.0); });
}

TEST(SlabDecomp, PartitionsExactly) {
  const SlabDecomp d = SlabDecomp::make(17, 4);
  ASSERT_EQ(d.count.size(), 4u);
  int total = 0, pos = 0;
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(d.start[static_cast<std::size_t>(r)], pos);
    pos += d.count[static_cast<std::size_t>(r)];
    total += d.count[static_cast<std::size_t>(r)];
    EXPECT_GE(d.count[static_cast<std::size_t>(r)], 4);
  }
  EXPECT_EQ(total, 17);
  EXPECT_THROW(SlabDecomp::make(2, 4), std::invalid_argument);
}

TEST(SlabDecomp, LocalGridsTileTheDomain) {
  const Grid g = Grid::make({12, 8}, {0.0, -1.0}, {3.0, 1.0});
  const SlabDecomp d = SlabDecomp::make(12, 3);
  double lo = g.lower[0];
  for (int r = 0; r < 3; ++r) {
    const Grid lg = d.localGrid(g, r);
    EXPECT_NEAR(lg.lower[0], lo, 1e-14);
    EXPECT_NEAR(lg.dx(0), g.dx(0), 1e-14);
    EXPECT_EQ(lg.cells[1], 8);
    lo = lg.upper[0];
  }
  EXPECT_NEAR(lo, g.upper[0], 1e-14);
}

TEST(Factor3, NearCubicFactorizations) {
  EXPECT_EQ(factor3(8), (std::array<int, 3>{2, 2, 2}));
  EXPECT_EQ(factor3(64), (std::array<int, 3>{4, 4, 4}));
  const auto f512 = factor3(512);
  EXPECT_EQ(f512[0] * f512[1] * f512[2], 512);
  EXPECT_EQ(f512, (std::array<int, 3>{8, 8, 8}));
  const auto f12 = factor3(12);
  EXPECT_EQ(f12[0] * f12[1] * f12[2], 12);
}

TEST(Factor3, PrimesDegradeToSlabs) {
  for (int p : {2, 3, 7, 13, 97}) {
    auto f = factor3(p);
    EXPECT_EQ(f[0] * f[1] * f[2], p) << p;
    // A prime has no non-trivial 3-way split: two factors must be 1.
    std::sort(f.begin(), f.end());
    EXPECT_EQ(f[0], 1) << p;
    EXPECT_EQ(f[1], 1) << p;
    EXPECT_EQ(f[2], p) << p;
  }
}

TEST(CartDecomp, OneDimPartitionsEvenlyWithPeriodicNeighbors) {
  const Grid conf = Grid::make({12}, {0.0}, {1.0});
  const CartDecomp d = CartDecomp::make(conf, 4);
  EXPECT_EQ(d.numRanks(), 4);
  EXPECT_EQ(d.blocks[0], 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(d.count[0][static_cast<std::size_t>(r)], 3);
    EXPECT_EQ(d.neighbor(r, 0, +1), (r + 1) % 4);
    EXPECT_EQ(d.neighbor(r, 0, -1), (r + 3) % 4);
  }
}

TEST(CartDecomp, MultiDimUnevenBlocksTileTheGrid) {
  const Grid conf = Grid::make({8, 4}, {0.0, 0.0}, {1.0, 1.0});
  const CartDecomp d = CartDecomp::make(conf, 6);
  EXPECT_EQ(d.numRanks(), 6);
  EXPECT_EQ(d.blocks[0] * d.blocks[1], 6);
  // Every cell of the grid is owned by exactly one rank.
  std::vector<int> owners(8 * 4, 0);
  for (int r = 0; r < 6; ++r) {
    const Grid lg = d.localGrid(conf, r);
    forEachCell(lg, [&](const MultiIndex& idx) {
      const int gx = idx[0] + lg.offset[0];
      const int gy = idx[1] + lg.offset[1];
      owners[static_cast<std::size_t>(gy * 8 + gx)] += 1;
    });
  }
  for (int o : owners) EXPECT_EQ(o, 1);
  // coords <-> rank round trip.
  for (int r = 0; r < 6; ++r) EXPECT_EQ(d.rankOf(d.coords(r)), r);
}

TEST(CartDecomp, LocalGridCoordinateArithmeticIsBitExact) {
  const Grid conf = Grid::make({10}, {0.25}, {7.75});
  const CartDecomp d = CartDecomp::make(conf, 4);  // uneven: 3,3,2,2
  for (int r = 0; r < 4; ++r) {
    const Grid lg = d.localGrid(conf, r);
    EXPECT_EQ(lg.dx(0), conf.dx(0)) << r;  // exact, not NEAR
    for (int i = 0; i < lg.cells[0]; ++i)
      EXPECT_EQ(lg.cellCenter(0, i), conf.cellCenter(0, lg.offset[0] + i)) << r << "," << i;
  }
}

TEST(CartDecomp, FindsExactTilingsGreedyPlacementWouldMiss) {
  // 12 ranks on 4x3: the only valid factorization is 4x3 (a greedy
  // largest-factor-first pass puts 3 on the 4-cell dim and strands a 2).
  const CartDecomp d = CartDecomp::make(Grid::make({4, 3}, {0.0, 0.0}, {1.0, 1.0}), 12);
  EXPECT_EQ(d.blocks[0], 4);
  EXPECT_EQ(d.blocks[1], 3);
  // Load balance beats minimal halo surface: 6 ranks on 8x4 as 3x2
  // (max 3x2=6 cells/rank), not the slab 6x1 (max 2x4=8 cells/rank).
  const CartDecomp e = CartDecomp::make(Grid::make({8, 4}, {0.0, 0.0}, {1.0, 1.0}), 6);
  EXPECT_EQ(e.blocks[0], 3);
  EXPECT_EQ(e.blocks[1], 2);
}

TEST(SlabDecomp, NonPeriodicEdgesHaveNoNeighbor) {
  // Uneven counts (17 over 4) with walls: interior neighbors are intact,
  // the two domain edges return the sentinel instead of wrapping.
  const SlabDecomp d = SlabDecomp::make(17, 4, 0, /*periodic=*/false);
  EXPECT_EQ(d.neighbor(0, -1), kNoNeighbor);
  EXPECT_EQ(d.neighbor(3, +1), kNoNeighbor);
  EXPECT_EQ(d.neighbor(0, +1), 1);
  EXPECT_EQ(d.neighbor(2, -1), 1);
  // Periodic default wraps as before.
  const SlabDecomp p = SlabDecomp::make(17, 4);
  EXPECT_EQ(p.neighbor(0, -1), 3);
  EXPECT_EQ(p.neighbor(3, +1), 0);
  // Single-rank slab: periodic is its own neighbor, walled has none.
  const SlabDecomp one = SlabDecomp::make(6, 1, 0, /*periodic=*/false);
  EXPECT_EQ(one.neighbor(0, -1), kNoNeighbor);
  EXPECT_EQ(one.neighbor(0, +1), kNoNeighbor);
  EXPECT_EQ(SlabDecomp::make(6, 1).neighbor(0, +1), 0);
}

TEST(CartDecomp, NonPeriodicDimsReturnTheSentinelAtDomainEdges) {
  // 1-D, uneven counts (10 over 4 -> 3,3,2,2), walls in x.
  std::array<bool, kMaxDim> periodic{};
  periodic.fill(true);
  periodic[0] = false;
  const Grid conf = Grid::make({10}, {0.0}, {1.0});
  const CartDecomp d = CartDecomp::make(conf, 4, periodic);
  EXPECT_FALSE(d.periodic[0]);
  EXPECT_EQ(d.neighbor(0, 0, -1), kNoNeighbor);
  EXPECT_EQ(d.neighbor(3, 0, +1), kNoNeighbor);
  for (int r = 0; r < 3; ++r) EXPECT_EQ(d.neighbor(r, 0, +1), r + 1);
  // The decomposition itself (blocks, counts) is unchanged by the flags.
  const CartDecomp w = CartDecomp::make(conf, 4);
  EXPECT_EQ(w.blocks, d.blocks);
  EXPECT_EQ(w.count[0], d.count[0]);
}

TEST(CartDecomp, MixedPeriodicityAndSingleBlockDims) {
  // 2-D, 2 ranks: the exhaustive search splits the 8-cell dim (2 blocks)
  // and leaves dim 1 whole (single block). Walls in dim 1, periodic dim 0.
  std::array<bool, kMaxDim> periodic{};
  periodic.fill(true);
  periodic[1] = false;
  const CartDecomp d = CartDecomp::make(Grid::make({8, 4}, {0.0, 0.0}, {1.0, 1.0}), 2, periodic);
  ASSERT_EQ(d.blocks[0], 2);
  ASSERT_EQ(d.blocks[1], 1);
  // Periodic decomposed dim wraps across the edge.
  EXPECT_EQ(d.neighbor(0, 0, -1), 1);
  EXPECT_EQ(d.neighbor(1, 0, +1), 0);
  // Non-periodic single-block dim: every rank owns both walls — no
  // neighbor on either side (not even itself: walls never exchange).
  EXPECT_EQ(d.neighbor(0, 1, -1), kNoNeighbor);
  EXPECT_EQ(d.neighbor(0, 1, +1), kNoNeighbor);
  // Periodic single-block dim stays a self-wrap.
  const CartDecomp p = CartDecomp::make(Grid::make({8, 4}, {0.0, 0.0}, {1.0, 1.0}), 2);
  EXPECT_EQ(p.neighbor(0, 1, -1), 0);
}

TEST(CartDecomp, ThrowsWhenRanksCannotBePlaced) {
  // More ranks than cells.
  EXPECT_THROW(CartDecomp::make(Grid::make({2}, {0.0}, {1.0}), 3), std::invalid_argument);
  // Enough cells in total, but a prime factor exceeds every dimension.
  EXPECT_THROW(CartDecomp::make(Grid::make({2, 2}, {0.0, 0.0}, {1.0, 1.0}), 5),
               std::invalid_argument);
  // A composite that cannot split: 4 = 2*2 over a 3-cell line.
  EXPECT_THROW(CartDecomp::make(Grid::make({3}, {0.0}, {1.0}), 4), std::invalid_argument);
  EXPECT_THROW(CartDecomp::make(Grid::make({3}, {0.0}, {1.0}), 0), std::invalid_argument);
}

TEST(Field, PackUnpackRoundTripsOn1x1vAnd2x2vGrids) {
  // Property test of the halo slab format on a 1x1v (2-D) and a 2x2v
  // (4-D) grid: a self pack/unpack exchange must place every periodic
  // image exactly, and unpacking a slab must reproduce the packed bytes.
  const std::vector<Grid> grids = {
      Grid::make({5, 4}, {0.0, -1.0}, {1.0, 1.0}),
      Grid::make({3, 4, 2, 5}, {0.0, 0.0, -1.0, -1.0}, {1.0, 1.0, 1.0, 1.0})};
  for (const Grid& g : grids) {
    Field f(g, 3);
    // Unique value per (cell, component) over the whole extended array, so
    // a misplaced slab cell cannot alias a correct one. Encode the index.
    forEachCell(g, [&](const MultiIndex& idx) {
      for (int c = 0; c < 3; ++c) {
        double v = c + 1.0;
        for (int d = 0; d < g.ndim; ++d) v = 31.0 * v + idx[d];
        f.at(idx)[c] = v;
      }
    });

    for (int d = 0; d < g.ndim; ++d) {
      const std::size_t n = f.ghostSlabSize(d);
      std::vector<double> lo(n), hi(n);
      f.packGhost(d, -1, lo);
      f.packGhost(d, +1, hi);
      f.unpackGhost(d, -1, hi);  // periodic self exchange
      f.unpackGhost(d, +1, lo);

      // Every ghost cell of dim d now holds its periodic image's value.
      const int nc = g.cells[static_cast<std::size_t>(d)];
      forEachCell(g, [&](const MultiIndex& idx) {
        if (idx[d] != 0 && idx[d] != nc - 1) return;
        MultiIndex ghost = idx;
        ghost[d] = idx[d] == 0 ? nc : -1;
        MultiIndex image = idx;
        image[d] = idx[d] == 0 ? 0 : nc - 1;
        for (int c = 0; c < 3; ++c) EXPECT_EQ(f.at(ghost)[c], f.at(image)[c]);
      });

      // Repacking the ghost slabs must reproduce the buffers bit for bit
      // (the round-trip property a mailbox exchange relies on). A ghost
      // repack is a pack of the ghost layer: compare via a fresh unpack
      // into a second field instead.
      Field f2(g, 3);
      f2.unpackGhost(d, -1, hi);
      MultiIndex probe;
      probe[d] = -1;
      EXPECT_EQ(f2.at(probe)[0], f.at(probe)[0]);
    }
  }
}

TEST(Field, SyncPeriodicMatchesSlabExchangeOracle) {
  // syncPeriodic is now implemented on the packGhost/unpackGhost path;
  // verify against a direct periodic-image oracle on a 2x2v grid,
  // including the corner ghosts produced by sequential dimension syncs.
  const Grid g = Grid::make({3, 2, 4, 3}, {0.0, 0.0, -1.0, -1.0}, {1.0, 1.0, 1.0, 1.0});
  Field f(g, 2);
  forEachCell(g, [&](const MultiIndex& idx) {
    for (int c = 0; c < 2; ++c) {
      double v = c + 1.0;
      for (int d = 0; d < g.ndim; ++d) v = 31.0 * v + idx[d];
      f.at(idx)[c] = v;
    }
  });
  for (int d = 0; d < g.ndim; ++d) f.syncPeriodic(d);

  // Oracle: every extended-index cell equals the interior cell at the
  // per-dimension periodic wrap of its index.
  MultiIndex ext;
  for (int i = 0; i < g.ndim; ++i) ext[i] = -1;
  while (true) {
    MultiIndex image;
    for (int i = 0; i < g.ndim; ++i) {
      const int nc = g.cells[static_cast<std::size_t>(i)];
      image[i] = ((ext[i] % nc) + nc) % nc;
    }
    for (int c = 0; c < 2; ++c) EXPECT_EQ(f.at(ext)[c], f.at(image)[c]);
    int k = 0;
    while (k < g.ndim && ++ext[k] >= g.cells[static_cast<std::size_t>(k)] + 1) ext[k++] = -1;
    if (k == g.ndim) break;
  }
}

TEST(HaloStats, BucketsBookTrafficAndDeriveTheLegacyCounters) {
  // A two-rank exchange on a tiny 1-D field books exact byte/cell counts
  // into the split stats, and the legacy haloBytes/haloCells/haloSeconds
  // accessors are pure derivations of haloStats() — one source of truth.
  const Grid global = Grid::make({8}, {0.0}, {1.0});
  const CartDecomp decomp = CartDecomp::make(global, 2);
  ThreadComm comm(decomp);
  std::vector<std::thread> ts;
  for (int r = 0; r < 2; ++r)
    ts.emplace_back([&, r] {
      Field f(decomp.localGrid(global, r), 3);
      f.setZero();
      comm.endpoint(r).syncConfGhostsDim(f, 0, true);
      (void)comm.endpoint(r).allReduceSum(1.0);
    });
  for (auto& t : ts) t.join();
  for (int r = 0; r < 2; ++r) {
    const Communicator& ep = comm.endpoint(r);
    const HaloStats s = ep.haloStats();
    // Two received slabs of ghostSlabSize = ncomp (3) doubles each.
    EXPECT_EQ(s.bytes, 2u * 3u * sizeof(double)) << "rank " << r;
    EXPECT_EQ(s.cells, 2u) << "rank " << r;
    EXPECT_GT(s.reduceSec, 0.0) << "rank " << r;
    EXPECT_EQ(ep.haloBytes(), s.bytes) << "rank " << r;
    EXPECT_EQ(ep.haloCells(), s.cells) << "rank " << r;
    EXPECT_EQ(ep.haloSeconds(),
              s.packSec + s.postSec + s.waitSec + s.unpackSec + s.reduceSec)
        << "rank " << r;
    EXPECT_EQ(s.totalSec(), ep.haloSeconds()) << "rank " << r;
  }
}

TEST(HaloStats, InjectedDeliveryDelayLandsInTheWaitBucket) {
  // The fault hook delays rank 1's posts by 30 ms each; rank 0 posts
  // instantly and must spend that time blocked in receive — so the split
  // attribution (wait, not pack/post/unpack) reflects where the real time
  // went. This is also the latency-injection seam the overlap tests use.
  const Grid global = Grid::make({8}, {0.0}, {1.0});
  const CartDecomp decomp = CartDecomp::make(global, 2);
  ThreadComm comm(decomp);
  comm.setDeliveryFault([](int src, int /*dst*/, int /*dim*/, int /*side*/) {
    if (src == 1) std::this_thread::sleep_for(std::chrono::milliseconds(30));
  });
  std::vector<std::thread> ts;
  for (int r = 0; r < 2; ++r)
    ts.emplace_back([&, r] {
      Field f(decomp.localGrid(global, r), 2);
      f.setZero();
      comm.endpoint(r).syncConfGhostsDim(f, 0, true);
    });
  for (auto& t : ts) t.join();
  // Rank 1's two delayed posts complete at ~30/~60 ms; rank 0 waits for
  // both. Assert half the injected floor — generous against scheduler
  // jitter, far above what an undelayed exchange measures.
  EXPECT_GE(comm.endpoint(0).haloStats().waitSec, 0.03);
}

TEST(CommModel, WeakScalingStaysNearFlat) {
  MachineModel m;
  m.perCellSeconds = 2e-6;
  m.bytesPerCell = 64 * 8;
  const auto pts = weakScaling(m, {8, 8, 8}, 16 * 16 * 16, {1, 8, 64, 512, 4096});
  ASSERT_EQ(pts.size(), 5u);
  // Paper: at worst ~25% of per-step cost in halo exchange at 4096 nodes.
  for (const auto& p : pts) EXPECT_LT(p.commFraction, 0.5);
  // Time per step grows by less than 2x from 1 to 4096 nodes.
  EXPECT_LT(pts.back().timePerStep, 2.0 * pts.front().timePerStep);
}

TEST(CommModel, StrongScalingSaturates) {
  MachineModel m;
  m.perCellSeconds = 2e-6;
  m.bytesPerCell = 64 * 8;
  m.bandwidth = 1e9;
  m.starveCells = 16384;
  const auto pts = strongScaling(m, {32, 32, 32}, 8 * 8 * 8, {8, 64, 512, 4096});
  ASSERT_EQ(pts.size(), 4u);
  // Speedup grows but distinctly sublinearly (paper: ~60x instead of 512x).
  EXPECT_GT(pts.back().relSpeedup, 4.0);
  EXPECT_LT(pts.back().relSpeedup, 150.0);
  // Comm fraction rises monotonically as ranks starve.
  EXPECT_GT(pts.back().commFraction, pts.front().commFraction);
}

}  // namespace
}  // namespace vdg
