// Tests that the sparse tapes are exactly the analytic DG tensors: each
// tape entry is compared against brute-force Gauss quadrature of the
// corresponding integral, and the face machinery against pointwise traces.
// This is the correctness core of the "alias-free" claim.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <random>
#include <vector>

#include "basis/basis.hpp"
#include "math/gauss_legendre.hpp"
#include "tensors/dg_tensors.hpp"
#include "tensors/emit.hpp"
#include "tensors/vlasov_tensors.hpp"

namespace vdg {
namespace {

/// Brute-force quadrature over [-1,1]^nd with enough points for degree 3p.
double quadIntegrate(const Basis& b, const std::function<double(const double*)>& f) {
  const QuadRule rule = gauss_legendre(8);
  const int nd = b.ndim();
  std::vector<std::size_t> id(static_cast<std::size_t>(nd), 0);
  double sum = 0.0;
  while (true) {
    double eta[kMaxDim], w = 1.0;
    for (int d = 0; d < nd; ++d) {
      eta[d] = rule.nodes[id[static_cast<std::size_t>(d)]];
      w *= rule.weights[id[static_cast<std::size_t>(d)]];
    }
    sum += w * f(eta);
    int d = 0;
    while (d < nd) {
      if (++id[static_cast<std::size_t>(d)] < rule.size()) break;
      id[static_cast<std::size_t>(d)] = 0;
      ++d;
    }
    if (d == nd) break;
  }
  return sum;
}

class TensorsBySpec : public ::testing::TestWithParam<BasisSpec> {};

TEST_P(TensorsBySpec, VolumeTapeMatchesQuadrature) {
  const Basis b(GetParam());
  for (int d = 0; d < b.ndim(); ++d) {
    const Tape3 tape = buildVolumeTape(b, d);
    // Spot check a subset of entries; reconstruct dense tensor from tape.
    const int np = b.numModes();
    std::vector<double> dense(static_cast<std::size_t>(np) * np * np, 0.0);
    for (const Tape3::Term& t : tape.terms)
      dense[(static_cast<std::size_t>(t.l) * np + t.m) * np + t.n] += t.c;
    std::mt19937 rng(42 + d);
    std::uniform_int_distribution<int> pick(0, np - 1);
    for (int trial = 0; trial < 40; ++trial) {
      const int l = pick(rng), m = pick(rng), n = pick(rng);
      const double exact = quadIntegrate(b, [&](const double* eta) {
        return b.evalModeDeriv(l, d, eta) * b.evalMode(m, eta) * b.evalMode(n, eta);
      });
      EXPECT_NEAR(dense[(static_cast<std::size_t>(l) * np + m) * np + n], exact, 1e-11)
          << "d=" << d << " lmn=" << l << "," << m << "," << n;
    }
  }
}

TEST_P(TensorsBySpec, FaceTraceIsExact) {
  const Basis b(GetParam());
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> coef(-1.0, 1.0);
  for (int d = 0; d < b.ndim(); ++d) {
    const Basis face = b.faceBasis(d);
    const FaceMap fm = buildFaceMap(b, face, d);
    std::vector<double> vol(static_cast<std::size_t>(b.numModes()));
    for (double& v : vol) v = coef(rng);
    std::vector<double> tr(static_cast<std::size_t>(face.numModes()));
    for (int s : {-1, +1}) {
      fm.restrictTo(vol, tr, s);
      // Compare at random face points.
      for (int trial = 0; trial < 10; ++trial) {
        double etaF[kMaxDim], eta[kMaxDim];
        for (int i = 0; i < b.ndim() - 1; ++i) etaF[i] = coef(rng);
        int j = 0;
        for (int i = 0; i < b.ndim(); ++i) eta[i] = (i == d) ? s : etaF[j++];
        EXPECT_NEAR(face.evalExpansion(tr.data(), etaF), b.evalExpansion(vol.data(), eta), 1e-11);
      }
    }
  }
}

TEST_P(TensorsBySpec, ProductTapeIsExactProjection) {
  const Basis b(GetParam());
  const Basis face = b.faceBasis(0);
  const Tape3 g = buildProductTape(face);
  std::mt19937 rng(13);
  std::uniform_real_distribution<double> coef(-1.0, 1.0);
  std::vector<double> a(static_cast<std::size_t>(face.numModes())),
      f(static_cast<std::size_t>(face.numModes())),
      prod(static_cast<std::size_t>(face.numModes()), 0.0);
  for (double& v : a) v = coef(rng);
  for (double& v : f) v = coef(rng);
  g.execute(a, f, prod, 1.0);
  // prod_k must equal \int phi_k * (a_h f_h) over the face.
  for (int k = 0; k < face.numModes(); ++k) {
    const double exact = quadIntegrate(face, [&](const double* eta) {
      return face.evalMode(k, eta) * face.evalExpansion(a.data(), eta) *
             face.evalExpansion(f.data(), eta);
    });
    EXPECT_NEAR(prod[static_cast<std::size_t>(k)], exact, 1e-11);
  }
}

INSTANTIATE_TEST_SUITE_P(Specs, TensorsBySpec,
                         ::testing::Values(BasisSpec{1, 1, 1, BasisFamily::Tensor},
                                           BasisSpec{1, 1, 2, BasisFamily::Serendipity},
                                           BasisSpec{1, 2, 1, BasisFamily::Tensor},
                                           BasisSpec{1, 2, 2, BasisFamily::MaximalOrder},
                                           BasisSpec{2, 2, 1, BasisFamily::Serendipity}),
                         [](const auto& info) { return info.param.name(); });

TEST(GradTape, MatchesQuadrature) {
  const Basis b(BasisSpec{2, 0, 2, BasisFamily::Serendipity});
  for (int d = 0; d < 2; ++d) {
    const Tape2 g = buildGradTape(b, d);
    const int np = b.numModes();
    std::vector<double> dense(static_cast<std::size_t>(np) * np, 0.0);
    for (const Tape2::Term& t : g.terms) dense[static_cast<std::size_t>(t.l) * np + t.n] += t.c;
    for (int l = 0; l < np; ++l)
      for (int n = 0; n < np; ++n) {
        const double exact = quadIntegrate(b, [&](const double* eta) {
          return b.evalModeDeriv(l, d, eta) * b.evalMode(n, eta);
        });
        EXPECT_NEAR(dense[static_cast<std::size_t>(l) * np + n], exact, 1e-12);
      }
  }
}

TEST(EtaMulTape, ProjectsCoordinateProduct) {
  const Basis b(BasisSpec{1, 1, 2, BasisFamily::Tensor});
  const Tape2 t = buildEtaMulTape(b, 1);
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> coef(-1.0, 1.0);
  std::vector<double> g(static_cast<std::size_t>(b.numModes()));
  for (double& v : g) v = coef(rng);
  std::vector<double> out(static_cast<std::size_t>(b.numModes()), 0.0);
  t.execute(g, out, 1.0);
  for (int l = 0; l < b.numModes(); ++l) {
    const double exact = quadIntegrate(b, [&](const double* eta) {
      return b.evalMode(l, eta) * eta[1] * b.evalExpansion(g.data(), eta);
    });
    EXPECT_NEAR(out[static_cast<std::size_t>(l)], exact, 1e-12);
  }
}

TEST(Projections, UnitAndEta) {
  const Basis b(BasisSpec{1, 2, 1, BasisFamily::Tensor});
  const auto unit = projectUnit(b);
  ASSERT_EQ(unit.size(), 1u);
  // Reconstruct 1 at a point.
  double eta[3] = {0.2, -0.4, 0.7};
  EXPECT_NEAR(unit[0].second * b.evalMode(unit[0].first, eta), 1.0, 1e-13);
  const auto e2 = projectEta(b, 2);
  ASSERT_EQ(e2.size(), 1u);
  EXPECT_NEAR(e2[0].second * b.evalMode(e2[0].first, eta), 0.7, 1e-13);
}

TEST(PointFaceMap, OneDimensionalTraces) {
  const Basis b(BasisSpec{1, 0, 2, BasisFamily::Tensor});
  const FaceMap fm = buildPointFaceMap(b);
  std::vector<double> coeff{0.3, -0.2, 0.5};
  std::vector<double> val(1);
  for (int s : {-1, 1}) {
    fm.restrictTo(coeff, val, s);
    double eta = s;
    EXPECT_NEAR(val[0], b.evalExpansion(coeff.data(), &eta), 1e-13);
  }
}

TEST(VlasovKernelSet, BuildsAndCountsOps) {
  const VlasovKernelSet& ks = vlasovKernels(BasisSpec{1, 2, 1, BasisFamily::Tensor});
  EXPECT_EQ(ks.numPhaseModes, 8);
  EXPECT_EQ(ks.numConfModes, 2);
  EXPECT_GT(ks.updateMultiplyCount(), 0u);
  EXPECT_EQ(ks.volume.size(), 3u);
  EXPECT_EQ(ks.streamVol0.size(), 1u);
}

TEST(VlasovKernelSet, RejectsInvalidSpecs) {
  EXPECT_THROW(vlasovKernels(BasisSpec{1, 0, 1, BasisFamily::Tensor}), std::invalid_argument);
  EXPECT_THROW(vlasovKernels(BasisSpec{2, 1, 1, BasisFamily::Tensor}), std::invalid_argument);
}

TEST(Emit, StreamingKernelSourceIsPlausible) {
  const EmittedKernel k = emitStreamingVolumeKernel(BasisSpec{1, 2, 1, BasisFamily::Tensor});
  EXPECT_NE(k.source.find("void vlasov_1x2v_p1_ten_stream_vol"), std::string::npos);
  EXPECT_NE(k.source.find("out["), std::string::npos);
  EXPECT_GT(k.multiplies, 10u);
  EXPECT_LT(k.multiplies, 300u);
}

}  // namespace
}  // namespace vdg
