// Tests specific to the quadrature/dense-matrix baseline (beyond the
// modal==quad equivalence covered in test_vlasov): quadrature-point
// counts, op-count ordering vs the modal tapes, and the DenseMatrix
// primitive it is built on.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "math/dense_matrix.hpp"
#include "quad/quad_vlasov.hpp"

namespace vdg {
namespace {

TEST(DenseMatrix, MatvecAndAccumulate) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(0, 2) = 3.0;
  a(1, 0) = -1.0;
  a(1, 2) = 4.0;
  const double x[3] = {1.0, 0.5, 2.0};
  double y[2] = {0.0, 0.0};
  a.matvec({x, 3}, {y, 2});
  EXPECT_DOUBLE_EQ(y[0], 8.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  a.matvecAdd({x, 3}, {y, 2});
  EXPECT_DOUBLE_EQ(y[0], 16.0);
  EXPECT_EQ(a.entryCount(), 6u);
}

TEST(QuadBaseline, QuadPointsIntegrateTheNonlinearity) {
  // nq = ceil((3p+2)/2) per direction: the minimum that integrates
  // degree 3p+1 exactly (2*nq - 1 >= 3p + 1).
  for (int p = 1; p <= 3; ++p) {
    const BasisSpec spec{1, 1, p, BasisFamily::Tensor};
    Grid g;
    g.ndim = 2;
    g.cells = {4, 4};
    g.lower = {0.0, -2.0};
    g.upper = {1.0, 2.0};
    const QuadVlasovUpdater quad(spec, g, VlasovParams{});
    EXPECT_GE(2 * quad.numQuadPerDim() - 1, 3 * p + 1) << "p=" << p;
    EXPECT_LE(2 * (quad.numQuadPerDim() - 1) - 1, 3 * p + 1) << "p=" << p;  // minimal
  }
}

TEST(QuadBaseline, OpCountExceedsModalAndGrowsFaster) {
  // The paper's Section III: quadrature evaluation is O(Nq*Np) with a
  // dimensionality factor, modal tapes are much sparser, and the gap
  // widens with Np.
  double prevRatio = 0.0;
  for (const BasisSpec spec : {BasisSpec{1, 1, 1, BasisFamily::Tensor},
                               BasisSpec{1, 2, 1, BasisFamily::Tensor},
                               BasisSpec{2, 3, 2, BasisFamily::Serendipity}}) {
    Grid g;
    g.ndim = spec.ndim();
    for (int d = 0; d < g.ndim; ++d) {
      g.cells[static_cast<std::size_t>(d)] = 2;
      g.lower[static_cast<std::size_t>(d)] = 0.0;
      g.upper[static_cast<std::size_t>(d)] = 1.0;
    }
    const QuadVlasovUpdater quad(spec, g, VlasovParams{});
    const VlasovKernelSet& ks = vlasovKernels(spec);
    const double ratio = static_cast<double>(quad.updateMultiplyCount()) /
                         static_cast<double>(ks.updateMultiplyCount());
    EXPECT_GT(ratio, 2.0) << spec.name();
    EXPECT_GT(ratio, prevRatio * 0.9) << spec.name();  // non-decreasing trend
    prevRatio = ratio;
  }
}

TEST(QuadBaseline, RejectsMismatchedGrid) {
  Grid g = Grid::make({4}, {0.0}, {1.0});
  EXPECT_THROW(QuadVlasovUpdater(BasisSpec{1, 1, 1, BasisFamily::Tensor}, g, VlasovParams{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace vdg
