// The physical boundary-condition subsystem (src/bc/): exactness of the
// ghost fills themselves, the conservation/monotonicity contracts of
// reflecting and absorbing walls through the full pipeline, the stepper's
// wall-loss accounting (mass remaining + mass absorbed conserved to
// round-off), Dirichlet/Neumann manufactured-solution convergence of the
// non-periodic Poisson solver, builder validation, and the threaded /
// 2-rank distributed bitwise-identity guarantee for walled runs.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "app/distributed.hpp"
#include "app/projection.hpp"
#include "app/simulation.hpp"
#include "app/updaters.hpp"
#include "bc/bc.hpp"
#include "dg/poisson.hpp"

namespace vdg {
namespace {

constexpr double kPi = std::numbers::pi;

/// Free-streaming 1x1v box with the same wall condition on both faces.
Simulation::Builder wallBoxBuilder(BcKind kind, int nx = 16, int nv = 16) {
  auto b = Simulation::builder();
  b.confGrid(Grid::make({nx}, {0.0}, {2.0}))
      .basis(2, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({nv}, {-6.0}, {6.0}),
               [](const double* z) {
                 const double x = z[0], v = z[1];
                 return std::exp(-8.0 * (x - 1.0) * (x - 1.0)) *
                        std::exp(-0.5 * (v - 1.0) * (v - 1.0)) / std::sqrt(2.0 * kPi);
               })
      .evolveField(false)
      .boundary(0, Edge::Lower, {kind})
      .boundary(0, Edge::Upper, {kind})
      .cflFrac(0.8)
      .threads(1);
  return b;
}

/// Two-species collisional mini-sheath (absorbing walls, grounded
/// Dirichlet potential) — the walled configuration the identity tests
/// shard and thread.
Simulation::Builder miniSheathBuilder(int nx = 12) {
  const double massRatio = 25.0;
  const double vti = 0.1;
  PoissonParams pp;
  pp.bc[0][0] = {PoissonBcKind::Dirichlet, 0.0};
  pp.bc[0][1] = {PoissonBcKind::Dirichlet, 0.0};
  auto b = Simulation::builder();
  b.confGrid(Grid::make({nx}, {0.0}, {12.0}))
      .basis(2, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({12}, {-6.0}, {6.0}),
               [](const double* z) {
                 return std::exp(-0.5 * z[1] * z[1]) / std::sqrt(2.0 * kPi);
               })
      .collisions(LboParams{.collisionFreq = 0.05})
      .species("ion", 1.0, massRatio, Grid::make({12}, {-6.0 * vti}, {6.0 * vti}),
               [=](const double* z) {
                 return std::exp(-0.5 * z[1] * z[1] / (vti * vti)) /
                        std::sqrt(2.0 * kPi * vti * vti);
               })
      .boundary(0, Edge::Lower, {BcKind::Absorb})
      .boundary(0, Edge::Upper, {BcKind::Absorb})
      .field(pp)
      .cflFrac(0.8)
      .threads(1);
  return b;
}

int countMismatches(const StateVector& a, const StateVector& b) {
  EXPECT_EQ(a.numSlots(), b.numSlots());
  int bad = 0;
  for (int i = 0; i < a.numSlots(); ++i) {
    const Field& fa = a.slot(i);
    const Field& fb = b.slot(i);
    EXPECT_EQ(fa.ncomp(), fb.ncomp());
    forEachCell(fa.grid(), [&](const MultiIndex& idx) {
      const double* pa = fa.at(idx);
      const double* pb = fb.at(idx);
      for (int l = 0; l < fa.ncomp(); ++l)
        if (pa[l] != pb[l]) ++bad;
    });
  }
  return bad;
}

// ------------------------------------------------------- the fills proper

/// The reflecting fill is an *exact* signed copy: ghost (i, iv) holds the
/// wall-mirrored interior cell with mode sign (-1)^(a_x + a_v), bitwise.
TEST(ReflectBc, GhostFillIsExactSignedCopy) {
  const BasisSpec spec{1, 1, 2, BasisFamily::Serendipity};
  const Basis& basis = basisFor(spec);
  const int np = basis.numModes();
  const Grid pg = Grid::phase(Grid::make({4}, {0.0}, {1.0}), Grid::make({6}, {-3.0}, {3.0}));
  Field f(pg, np);
  forEachCell(pg, [&](const MultiIndex& idx) {
    double* c = f.at(idx);
    for (int l = 0; l < np; ++l)
      c[l] = std::sin(1.0 + idx[0] * 7.0 + idx[1] * 3.0 + l);  // arbitrary, nonzero
  });
  const ReflectBc bc(basis, 1);
  bc.apply(f, 0, -1);
  bc.apply(f, 0, +1);
  const int nv = pg.cells[1];
  for (int iv = 0; iv < nv; ++iv) {
    MultiIndex lo{}, hi{};
    lo[0] = -1;
    lo[1] = iv;
    hi[0] = 4;
    hi[1] = iv;
    MultiIndex loSrc = lo, hiSrc = hi;
    loSrc[0] = 0;
    loSrc[1] = nv - 1 - iv;
    hiSrc[0] = 3;
    hiSrc[1] = nv - 1 - iv;
    for (int l = 0; l < np; ++l) {
      const double s = ((basis.mode(l)[0] + basis.mode(l)[1]) % 2) ? -1.0 : 1.0;
      EXPECT_EQ(f.at(lo)[l], s * f.at(loSrc)[l]);
      EXPECT_EQ(f.at(hi)[l], s * f.at(hiSrc)[l]);
    }
  }
}

TEST(AbsorbBc, ZeroesTheGhostSlab) {
  const BasisSpec spec{1, 1, 1, BasisFamily::Serendipity};
  const Grid pg = Grid::phase(Grid::make({3}, {0.0}, {1.0}), Grid::make({4}, {-2.0}, {2.0}));
  Field f(pg, basisFor(spec).numModes());
  for (double& v : f.raw()) v = 1.5;
  const AbsorbBc bc;
  bc.apply(f, 0, +1);
  MultiIndex ghost{}, interior{};
  ghost[0] = 3;
  interior[0] = 2;
  for (int l = 0; l < f.ncomp(); ++l) {
    EXPECT_EQ(f.at(ghost)[l], 0.0);
    EXPECT_EQ(f.at(interior)[l], 1.5);  // interior untouched
  }
}

TEST(CopyBc, CopiesTheAdjacentInteriorCell) {
  const BasisSpec spec{1, 0, 2, BasisFamily::Serendipity};
  const Grid g = Grid::make({5}, {0.0}, {1.0});
  Field f(g, basisFor(spec).numModes());
  forEachCell(g, [&](const MultiIndex& idx) {
    for (int l = 0; l < f.ncomp(); ++l) f.at(idx)[l] = 10.0 * idx[0] + l;
  });
  const CopyBc bc;
  bc.apply(f, 0, -1);
  MultiIndex ghost{}, skin{};
  ghost[0] = -1;
  skin[0] = 0;
  for (int l = 0; l < f.ncomp(); ++l) EXPECT_EQ(f.at(ghost)[l], f.at(skin)[l]);
}

// --------------------------------------------- wall physics, full pipeline

/// A specular wall exchanges no mass or energy with the particles: the
/// mirrored ghost cancels the numerical flux's net transport through the
/// face, term by term.
TEST(ReflectingWall, ConservesMassAndEnergyToRoundOff) {
  Simulation sim = wallBoxBuilder(BcKind::Reflect).build();
  const auto e0 = sim.energetics();
  for (int i = 0; i < 60; ++i) sim.step();
  const auto e1 = sim.energetics();
  EXPECT_NEAR(e1.mass[0] / e0.mass[0], 1.0, 1e-13);
  EXPECT_NEAR(e1.particleEnergy[0] / e0.particleEnergy[0], 1.0, 1e-13);
  // Nothing crosses a specular wall: the flux accounting sees ~0.
  EXPECT_NEAR(sim.absorbedMass(0) / e0.mass[0], 0.0, 1e-13);
}

/// A mirror-symmetric state stays mirror-symmetric under reflecting
/// walls. The fill itself is an exact signed copy (bitwise, pinned
/// above); the *dynamics* preserve the symmetry to rounding only — the
/// lower/upper face kernels accumulate in mirrored (not identical) FP
/// orders — so the pin here is 1 ulp-scale per coefficient, not EQ.
TEST(ReflectingWall, MirrorSymmetricStateStaysMirrorSymmetric) {
  const int nx = 12, nv = 12;
  Simulation sim =
      Simulation::builder()
          .confGrid(Grid::make({nx}, {0.0}, {2.0}))
          .basis(2, BasisFamily::Serendipity)
          .species("elc", -1.0, 1.0, Grid::make({nv}, {-6.0}, {6.0}),
                   [](const double* z) {
                     const double x = z[0] - 1.0, v = z[1];
                     // f(x, v) = f(-x, -v): even core, odd-odd correlation.
                     return std::exp(-2.0 * x * x) * std::exp(-0.5 * v * v) *
                            (1.0 + 0.3 * std::sin(2.0 * x) * v) / std::sqrt(2.0 * kPi);
                   })
          .evolveField(false)
          .boundary(0, Edge::Lower, {BcKind::Reflect})
          .boundary(0, Edge::Upper, {BcKind::Reflect})
          .threads(1)
          .build();
  // Make the projected IC *exactly* mirror-symmetric (projection rounding
  // is not): c[mirror][l] := s_l c[cell][l].
  const Basis& basis = sim.phaseBasis(0);
  const int np = basis.numModes();
  std::vector<double> sign(static_cast<std::size_t>(np));
  for (int l = 0; l < np; ++l)
    sign[static_cast<std::size_t>(l)] =
        ((basis.mode(l)[0] + basis.mode(l)[1]) % 2) ? -1.0 : 1.0;
  Field& f = sim.distf(0);
  for (int i = 0; i < nx / 2; ++i)
    for (int j = 0; j < nv; ++j) {
      MultiIndex a{}, m{};
      a[0] = i;
      a[1] = j;
      m[0] = nx - 1 - i;
      m[1] = nv - 1 - j;
      for (int l = 0; l < np; ++l) {
        f.at(a)[l] = 0.5 * (f.at(a)[l] + sign[static_cast<std::size_t>(l)] * f.at(m)[l]);
        f.at(m)[l] = sign[static_cast<std::size_t>(l)] * f.at(a)[l];
      }
    }
  for (int s = 0; s < 20; ++s) sim.step();
  double worst = 0.0;
  for (int i = 0; i < nx; ++i)
    for (int j = 0; j < nv; ++j) {
      MultiIndex a{}, m{};
      a[0] = i;
      a[1] = j;
      m[0] = nx - 1 - i;
      m[1] = nv - 1 - j;
      for (int l = 0; l < np; ++l)
        worst = std::max(worst, std::abs(f.at(m)[l] -
                                         sign[static_cast<std::size_t>(l)] * f.at(a)[l]));
    }
  EXPECT_LE(worst, 1e-14);
}

/// An absorbing wall only ever removes mass, and the stepper's RK-exact
/// flux accounting keeps (remaining + absorbed) conserved to round-off —
/// the sheath example's conservation criterion, pinned here in isolation.
TEST(AbsorbingWall, LosesMassMonotonicallyAndAccountsIt) {
  Simulation sim = wallBoxBuilder(BcKind::Absorb).build();
  ASSERT_TRUE(sim.tracksWallLoss());
  const auto e0 = sim.energetics();
  double prev = e0.mass[0];
  for (int i = 0; i < 120; ++i) {
    sim.step();
    const double m = sim.energetics().mass[0];
    EXPECT_LE(m, prev * (1.0 + 1e-14)) << "step " << i;
    prev = m;
  }
  const auto e1 = sim.energetics();
  EXPECT_LT(e1.mass[0], 0.95 * e0.mass[0]);  // the drifting beam really leaves
  EXPECT_GT(sim.wallLossRate(0), 0.0);
  EXPECT_NEAR((e1.mass[0] + sim.absorbedMass(0)) / e0.mass[0], 1.0, 1e-12);
}

/// Zeroth-order extrapolation sees no gradient at the wall: a spatially
/// uniform state is an exact steady state of free streaming in a copy-BC
/// box (ghost == interior == periodic image).
TEST(CopyBcWall, UniformStateIsInvariant) {
  auto b = Simulation::builder();
  b.confGrid(Grid::make({8}, {0.0}, {2.0}))
      .basis(2, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({12}, {-6.0}, {6.0}),
               [](const double* z) { return std::exp(-0.5 * z[1] * z[1]); })
      .evolveField(false)
      .boundary(0, Edge::Lower, {BcKind::Copy})
      .boundary(0, Edge::Upper, {BcKind::Copy})
      .threads(1);
  Simulation sim = b.build();
  StateVector before = sim.state().zerosLike();
  before.copyFrom(sim.state());
  for (int i = 0; i < 10; ++i) sim.step();
  double worst = 0.0;
  const Field& f0 = before.slot(0);
  const Field& f1 = sim.distf(0);
  forEachCell(f1.grid(), [&](const MultiIndex& idx) {
    for (int l = 0; l < f1.ncomp(); ++l)
      worst = std::max(worst, std::abs(f1.at(idx)[l] - f0.at(idx)[l]));
  });
  EXPECT_LE(worst, 1e-13);
}

// ------------------------------------------- non-periodic Poisson solver

std::vector<double> projectFlat(const PoissonSolver& solver, const ScalarFn& fn) {
  const Grid& g = solver.grid();
  Field f(g, solver.numModes());
  projectOnBasis(solver.basis(), g, fn, f, solver.basis().spec().polyOrder + 3);
  std::vector<double> out(solver.numUnknowns());
  forEachCell(g, [&](const MultiIndex& idx) {
    const double* src = f.at(idx);
    double* dst = out.data() + solver.flatIndex(idx);
    for (int l = 0; l < solver.numModes(); ++l) dst[l] = src[l];
  });
  return out;
}

double l2Diff(const PoissonSolver& solver, std::span<const double> a,
              std::span<const double> b) {
  double jac = 1.0;
  for (int d = 0; d < solver.grid().ndim; ++d) jac *= 0.5 * solver.grid().dx(d);
  double err = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    err += d * d;
  }
  return std::sqrt(jac * err);
}

struct WallCase {
  int polyOrder;
  PoissonBcKind lo, hi;
  double minOrder;
};

class NonPeriodicPoisson : public ::testing::TestWithParam<WallCase> {};

/// Manufactured solution phi = sin(pi x) + 1 + x/2 on [0, 1]:
/// -phi'' = pi^2 sin(pi x), with the exact wall values/slopes as
/// Dirichlet/Neumann data per the parameterized combination. Both phi and
/// the derived E = -phi' must converge at order >= p+1. The pure-Neumann
/// case keeps the zero-mean gauge, so its comparison subtracts the mean.
TEST_P(NonPeriodicPoisson, ManufacturedSolutionAtOrderPPlusOne) {
  const auto [p, loKind, hiKind, minOrder] = GetParam();
  const BasisSpec spec{1, 0, p, BasisFamily::Serendipity};
  const auto exact = [](double x) { return std::sin(kPi * x) + 1.0 + 0.5 * x; };
  const auto dExact = [](double x) { return kPi * std::cos(kPi * x) + 0.5; };
  const bool pureNeumann =
      loKind == PoissonBcKind::Neumann && hiKind == PoissonBcKind::Neumann;

  double phiErr[2], eErr[2];
  const int sizes[2] = {8, 16};
  for (int r = 0; r < 2; ++r) {
    const Grid g = Grid::make({sizes[r]}, {0.0}, {1.0});
    PoissonParams pp;
    pp.bc[0][0] = {loKind, loKind == PoissonBcKind::Dirichlet ? exact(0.0) : dExact(0.0)};
    pp.bc[0][1] = {hiKind, hiKind == PoissonBcKind::Dirichlet ? exact(1.0) : dExact(1.0)};
    const PoissonSolver solver(spec, g, pp);
    EXPECT_FALSE(solver.isPeriodic());
    EXPECT_EQ(solver.hasGauge(), pureNeumann);
    const auto rho =
        projectFlat(solver, [](const double* z) { return kPi * kPi * std::sin(kPi * z[0]); });
    std::vector<double> phi(solver.numUnknowns());
    solver.solve(rho, phi);
    auto phiExact = projectFlat(solver, [&](const double* z) { return exact(z[0]); });
    if (pureNeumann) {
      // Zero-mean gauge: compare up to the constant the data cannot pin.
      const double shift = (solver.domainIntegral(phi) - solver.domainIntegral(phiExact)) /
                           (g.upper[0] - g.lower[0]);
      const double c0 = shift * std::pow(2.0, 0.5 * g.ndim);
      for (std::size_t c = 0; c < g.numCells(); ++c)
        phiExact[c * static_cast<std::size_t>(solver.numModes())] += c0;
    }
    phiErr[r] = l2Diff(solver, phi, phiExact);

    std::vector<double> e(solver.numUnknowns());
    forEachCell(g, [&](const MultiIndex& idx) {
      solver.cellElectricField(phi, idx, 0,
                               {e.data() + solver.flatIndex(idx),
                                static_cast<std::size_t>(solver.numModes())});
    });
    const auto eExact = projectFlat(solver, [&](const double* z) { return -dExact(z[0]); });
    eErr[r] = l2Diff(solver, e, eExact);
  }
  EXPECT_GE(std::log2(phiErr[0] / phiErr[1]), minOrder)
      << "phi errors " << phiErr[0] << " -> " << phiErr[1];
  EXPECT_GE(std::log2(eErr[0] / eErr[1]), minOrder)
      << "E errors " << eErr[0] << " -> " << eErr[1];
}

INSTANTIATE_TEST_SUITE_P(
    Walls, NonPeriodicPoisson,
    ::testing::Values(
        WallCase{1, PoissonBcKind::Dirichlet, PoissonBcKind::Dirichlet, 2.0},
        WallCase{2, PoissonBcKind::Dirichlet, PoissonBcKind::Dirichlet, 3.0},
        WallCase{1, PoissonBcKind::Dirichlet, PoissonBcKind::Neumann, 2.0},
        WallCase{2, PoissonBcKind::Dirichlet, PoissonBcKind::Neumann, 3.0},
        WallCase{1, PoissonBcKind::Neumann, PoissonBcKind::Neumann, 2.0},
        WallCase{2, PoissonBcKind::Neumann, PoissonBcKind::Neumann, 3.0}),
    [](const auto& info) {
      const auto n = [](PoissonBcKind k) {
        return k == PoissonBcKind::Dirichlet ? std::string("D") : std::string("N");
      };
      return "p" + std::to_string(info.param.polyOrder) + n(info.param.lo) + n(info.param.hi);
    });

/// The residual identity of the affine system: the solved potential
/// satisfies A phi == rho/eps0 + boundaryRhs() to round-off, and a
/// Dirichlet wall's recovered trace reproduces the electrode value.
TEST(NonPeriodicPoissonSolver, ResidualAndDirichletTraceAreExact) {
  const BasisSpec spec{1, 0, 2, BasisFamily::Serendipity};
  const Grid g = Grid::make({10}, {0.0}, {1.0});
  PoissonParams pp;
  pp.bc[0][0] = {PoissonBcKind::Dirichlet, -1.25};
  pp.bc[0][1] = {PoissonBcKind::Neumann, 0.75};
  const PoissonSolver solver(spec, g, pp);
  const auto rho = projectFlat(solver, [](const double* z) { return std::cos(3.0 * z[0]); });
  std::vector<double> phi(solver.numUnknowns());
  solver.solve(rho, phi);
  std::vector<double> lhs(solver.numUnknowns());
  solver.applyMinusLaplacian(phi, lhs);
  double worst = 0.0;
  for (std::size_t i = 0; i < lhs.size(); ++i)
    worst = std::max(worst, std::abs(lhs[i] - rho[i] - solver.boundaryRhs()[i]));
  EXPECT_LE(worst, 1e-10);
}

/// Mixing Periodic with a wall on the same (1-D) dimension is rejected.
TEST(NonPeriodicPoissonSolver, RejectsMixedPeriodicity) {
  const BasisSpec spec{1, 0, 1, BasisFamily::Serendipity};
  PoissonParams pp;
  pp.bc[0][1] = {PoissonBcKind::Dirichlet, 0.0};
  EXPECT_THROW(PoissonSolver(spec, Grid::make({8}, {0.0}, {1.0}), pp), std::invalid_argument);
}

// ----------------------------------------------------- builder validation

TEST(BuilderBoundaries, ValidatesWallConfigurations) {
  const auto base = [] {
    auto b = Simulation::builder();
    b.confGrid(Grid::make({8}, {0.0}, {1.0}))
        .basis(1, BasisFamily::Serendipity)
        .species("elc", -1.0, 1.0, Grid::make({8}, {-4.0}, {4.0}),
                 [](const double* z) { return std::exp(-0.5 * z[1] * z[1]); })
        .evolveField(false);
    return b;
  };
  // One-faced wall: the opposite face has no physical condition.
  {
    auto b = base();
    b.boundary(0, Edge::Lower, {BcKind::Absorb});
    EXPECT_THROW(b.build(), std::invalid_argument);
  }
  // Walls + evolving Maxwell field: no wall closure for the hyperbolic path.
  {
    auto b = base();
    b.evolveField(true)
        .boundary(0, Edge::Lower, {BcKind::Absorb})
        .boundary(0, Edge::Upper, {BcKind::Absorb});
    EXPECT_THROW(b.build(), std::invalid_argument);
  }
  // Reflect on a velocity grid that is not symmetric about v = 0.
  {
    auto b = Simulation::builder();
    b.confGrid(Grid::make({8}, {0.0}, {1.0}))
        .basis(1, BasisFamily::Serendipity)
        .species("elc", -1.0, 1.0, Grid::make({8}, {-3.0}, {4.0}),
                 [](const double* z) { return std::exp(-0.5 * z[1] * z[1]); })
        .evolveField(false)
        .boundary(0, Edge::Lower, {BcKind::Reflect})
        .boundary(0, Edge::Upper, {BcKind::Reflect});
    EXPECT_THROW(b.build(), std::invalid_argument);
  }
  // Poisson path whose potential BCs disagree with the particle walls.
  {
    auto b = base();
    b.evolveField(true)
        .boundary(0, Edge::Lower, {BcKind::Absorb})
        .boundary(0, Edge::Upper, {BcKind::Absorb})
        .field(PoissonParams{});  // periodic potential, walled particles
    EXPECT_THROW(b.build(), std::invalid_argument);
  }
  // A valid walled configuration still builds and reports its faces.
  {
    auto b = base();
    b.boundary(0, Edge::Lower, {BcKind::Reflect}).boundary(0, Edge::Upper, {BcKind::Absorb});
    Simulation sim = b.build();
    EXPECT_FALSE(sim.periodicDims()[0]);
    EXPECT_EQ(sim.pipeline()[0]->name(), "boundary:d0[elc:reflect|absorb,em:copy|copy]");
    ASSERT_NE(sim.boundaryConditions(), nullptr);
    EXPECT_TRUE(sim.boundaryConditions()->anyPhysical());
  }
  // Fully periodic runs keep the historical name and a null table.
  {
    Simulation sim = base().build();
    EXPECT_TRUE(sim.periodicDims()[0]);
    EXPECT_EQ(sim.pipeline()[0]->name(), "boundary:periodic");
    EXPECT_EQ(sim.boundaryConditions(), nullptr);
    EXPECT_FALSE(sim.tracksWallLoss());
  }
}

// ------------------------------------- threaded / distributed identity

/// Physical fills are rank-local and edge-owned: a walled collisional
/// Vlasov-Poisson run must be bit-for-bit identical serial vs threaded
/// and serial vs 2-rank distributed (where rank 0 owns the lower wall and
/// rank 1 the upper).
TEST(WalledRun, ThreadedMatchesSerialBitForBit) {
  auto builder = miniSheathBuilder();
  Simulation serial = builder.build();
  builder.threads(4);
  Simulation threaded = builder.build();
  for (int i = 0; i < 8; ++i) {
    const double dtS = serial.step();
    const double dtT = threaded.step();
    EXPECT_EQ(dtS, dtT) << "step " << i;
  }
  EXPECT_EQ(countMismatches(serial.state(), threaded.state()), 0);
}

TEST(WalledRun, TwoRankDistributedMatchesSerialBitForBit) {
  auto builder = miniSheathBuilder();
  Simulation serial = builder.build();
  std::vector<double> serialDt;
  const int steps = 6;
  for (int i = 0; i < steps; ++i) serialDt.push_back(serial.step());

  DistributedSimulation dist(builder, 2);
  EXPECT_FALSE(dist.decomp().periodic[0]);
  // Both ranks border a wall in this 2-rank slab split: each owns exactly
  // one domain edge and must apply the fill only there.
  EXPECT_EQ(dist.decomp().neighbor(0, 0, -1), kNoNeighbor);
  EXPECT_EQ(dist.decomp().neighbor(1, 0, +1), kNoNeighbor);
  EXPECT_EQ(dist.decomp().neighbor(0, 0, +1), 1);
  for (int i = 0; i < steps; ++i)
    EXPECT_EQ(dist.step(), serialDt[static_cast<std::size_t>(i)]) << "step " << i;
  EXPECT_EQ(countMismatches(dist.gather(), serial.state()), 0);
  // The wall-loss ledger is globally reduced: both ranks agree with each
  // other; it matches the serial ledger to rounding (the reduction
  // reassociates the per-rank partial sums).
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(dist.rankSim(0).absorbedMass(s), dist.rankSim(1).absorbedMass(s));
    EXPECT_NEAR(dist.rankSim(0).absorbedMass(s), serial.absorbedMass(s),
                1e-12 * std::max(1.0, std::abs(serial.absorbedMass(s))));
  }
}

}  // namespace
}  // namespace vdg
