// The ensemble engine's contracts:
//
//  * the scheduler is deterministic (same specs + pool -> same placement),
//    covers every member exactly once for N > R, N < R, and N = 1, and
//    gives sharded members contiguous rank blocks clipped to the pool;
//  * a campaign member's trajectory is BITWISE identical to the same
//    scenario run solo — packed or sharded, with a shared or private
//    Poisson LU, and regardless of a neighboring member failing;
//  * a member that diverges (non-finite dt) is recorded as Failed with its
//    message, its neighbors finish untouched, and the result table still
//    appears;
//  * checkpoint/resume THROUGH the async writer reproduces the
//    uninterrupted run bit for bit, and the resumed series CSV carries its
//    header exactly once;
//  * the AsyncWriter preserves per-path order, surfaces writer-thread
//    errors on flush(), and round-trips checkpoints; TimeSeriesWriter
//    enforces one live writer per path.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <numbers>
#include <sstream>
#include <string>
#include <vector>

#include "app/distributed.hpp"
#include "ensemble/engine.hpp"
#include "io/field_io.hpp"
#include "io/time_series.hpp"

namespace vdg {
namespace {

constexpr double kPi = std::numbers::pi;

std::string tmpDir(const std::string& name) {
  const auto p = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(p);
  return p.string();
}

/// Bitwise comparison of every slot's interior cells (0 == identical).
int countMismatches(const StateVector& a, const StateVector& b) {
  EXPECT_EQ(a.numSlots(), b.numSlots());
  int bad = 0;
  for (int i = 0; i < a.numSlots(); ++i) {
    const Field& fa = a.slot(i);
    const Field& fb = b.slot(i);
    EXPECT_EQ(fa.ncomp(), fb.ncomp());
    forEachCell(fa.grid(), [&](const MultiIndex& idx) {
      const double* pa = fa.at(idx);
      const double* pb = fb.at(idx);
      for (int l = 0; l < fa.ncomp(); ++l)
        if (pa[l] != pb[l]) ++bad;
    });
  }
  return bad;
}

/// A small electrostatic Landau member; amp individualizes the trajectory
/// while every member keeps the same (grid, p, BC) Poisson signature.
ScenarioSpec landauSpec(const std::string& name, double amp, double tEnd = 0.4) {
  const double k = 0.5;
  ScenarioSpec spec;
  spec.name = name;
  spec.params["amp"] = amp;
  spec.confGrid = Grid::make({8}, {0.0}, {2.0 * kPi / k});
  spec.polyOrder = 1;
  spec.cflFrac = 0.8;
  SpeciesConfig elc;
  elc.name = "elc";
  elc.charge = -1.0;
  elc.mass = 1.0;
  elc.velGrid = Grid::make({8}, {-6.0}, {6.0});
  elc.init = [k, amp](const double* z) {
    return (1.0 + amp * std::cos(k * z[0])) * std::exp(-0.5 * z[1] * z[1]) /
           std::sqrt(2.0 * kPi);
  };
  spec.species.push_back(elc);
  spec.field = ScenarioSpec::FieldKind::Poisson;
  spec.backgroundCharge = 1.0;
  spec.tEnd = tEnd;
  return spec;
}

/// The solo reference: the same spec stepped by Simulation::advanceTo.
StateVector soloFinalState(const ScenarioSpec& spec) {
  Simulation::Builder b = spec.toBuilder();
  b.threads(1);
  Simulation sim = b.build();
  sim.advanceTo(spec.tEnd);
  StateVector out = sim.state().zerosLike();
  out.copyFrom(sim.state());
  return out;
}

// ----------------------------------------------------------- scheduler

TEST(Scheduler, PacksEveryMemberExactlyOnceAndDeterministically) {
  std::vector<ScenarioSpec> specs;
  for (int i = 0; i < 7; ++i)
    specs.push_back(landauSpec("m" + std::to_string(i), 1e-3, 0.1 * (i + 1)));

  const Schedule s1 = scheduleMembers(specs, 3);
  const Schedule s2 = scheduleMembers(specs, 3);
  ASSERT_EQ(s1.members.size(), specs.size());

  std::vector<int> seen(specs.size(), 0);
  for (int r = 0; r < 3; ++r)
    for (int m : s1.rankQueue[static_cast<std::size_t>(r)]) {
      ++seen[static_cast<std::size_t>(m)];
      EXPECT_EQ(s1.members[static_cast<std::size_t>(m)].leadRank, r);
      EXPECT_EQ(s1.members[static_cast<std::size_t>(m)].numRanks, 1);
    }
  for (int c : seen) EXPECT_EQ(c, 1);

  // Determinism: identical placement on a second scheduling pass.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(s1.members[i].leadRank, s2.members[i].leadRank);
    EXPECT_EQ(s1.members[i].numRanks, s2.members[i].numRanks);
  }
  EXPECT_GT(s1.packFactor(), 2.0);
}

TEST(Scheduler, FewerMembersThanRanksSpreadsLeads) {
  std::vector<ScenarioSpec> specs = {landauSpec("a", 1e-3), landauSpec("b", 2e-3)};
  const Schedule s = scheduleMembers(specs, 4);
  EXPECT_NE(s.members[0].leadRank, s.members[1].leadRank);

  const Schedule one = scheduleMembers({landauSpec("solo", 1e-3)}, 4);
  EXPECT_EQ(one.members[0].leadRank, 0);
}

TEST(Scheduler, ShardedMembersGetContiguousClippedBlocks) {
  std::vector<ScenarioSpec> specs;
  specs.push_back(landauSpec("packed0", 1e-3));
  ScenarioSpec big = landauSpec("big", 2e-3);
  big.ranks = 2;
  specs.push_back(big);
  ScenarioSpec huge = landauSpec("huge", 3e-3);
  huge.ranks = 99;  // wants more than the pool has
  specs.push_back(huge);

  const Schedule s = scheduleMembers(specs, 4);
  EXPECT_EQ(s.members[1].numRanks, 2);
  EXPECT_LE(s.members[1].leadRank + 2, 4);
  EXPECT_EQ(s.members[2].numRanks, 4);  // clipped to the pool
  EXPECT_EQ(s.members[2].leadRank, 0);
  // A sharded member appears only in its lead rank's queue.
  int queued = 0;
  for (const auto& q : s.rankQueue)
    for (int m : q)
      if (m == 1) ++queued;
  EXPECT_EQ(queued, 1);
}

// ----------------------------------------------- campaign == solo, bitwise

TEST(Ensemble, PackedMembersMatchSoloBitwise) {
  const std::string dir = tmpDir("vdg_ens_solo");
  std::vector<ScenarioSpec> specs = {landauSpec("a", 1e-3), landauSpec("b", 5e-3),
                                     landauSpec("c", 2e-2)};
  EnsembleOptions opts;
  opts.numRanks = 2;
  opts.outputDir = dir;
  opts.keepFinalState = true;
  Ensemble ens(specs, opts);
  // All three share one Poisson signature: exactly one LU factored.
  EXPECT_EQ(ens.numSharedPoissonGroups(), 1);
  ens.run();
  EXPECT_EQ(ens.numDone(), 3);
  EXPECT_EQ(ens.numFailed(), 0);

  for (int m = 0; m < 3; ++m) {
    ASSERT_TRUE(ens.result(m).hasFinalState);
    const StateVector solo = soloFinalState(specs[static_cast<std::size_t>(m)]);
    EXPECT_EQ(countMismatches(ens.result(m).finalState, solo), 0)
        << "member " << ens.result(m).name << " diverged from its solo run";
    EXPECT_GT(ens.result(m).steps, 0);
    EXPECT_GE(ens.result(m).finalTime, specs[static_cast<std::size_t>(m)].tEnd - 1e-12);
  }
  std::filesystem::remove_all(dir);
}

TEST(Ensemble, SharedPoissonLuIsBitwiseEqualToPrivate) {
  // Same two members, one campaign sharing the LU (two members, one
  // signature) vs solo runs that factor their own — bit-for-bit equal.
  const std::string dir = tmpDir("vdg_ens_sharedlu");
  std::vector<ScenarioSpec> specs = {landauSpec("p", 1e-3), landauSpec("q", 4e-3)};
  EnsembleOptions opts;
  opts.numRanks = 2;
  opts.outputDir = dir;
  opts.keepFinalState = true;
  opts.sampleEvery = 0;
  Ensemble ens(specs, opts);
  ASSERT_EQ(ens.numSharedPoissonGroups(), 1);
  ens.run();
  ASSERT_EQ(ens.numDone(), 2);
  for (int m = 0; m < 2; ++m)
    EXPECT_EQ(
        countMismatches(ens.result(m).finalState, soloFinalState(specs[static_cast<std::size_t>(m)])),
        0);
  std::filesystem::remove_all(dir);
}

TEST(Ensemble, FailedMemberIsIsolatedAndRecorded) {
  const std::string dir = tmpDir("vdg_ens_fail");
  std::vector<ScenarioSpec> specs = {landauSpec("good0", 1e-3), landauSpec("bad", 1e-3),
                                     landauSpec("good1", 3e-3)};
  // Poison the middle member: a NaN initial condition breaks the first CFL
  // estimate (NaNs fall out of the max, leaving a zero frequency), so the
  // member throws on its first step and is recorded as Failed.
  specs[1].species[0].init = [](const double*) { return std::nan(""); };

  EnsembleOptions opts;
  opts.numRanks = 2;
  opts.outputDir = dir;
  opts.keepFinalState = true;
  Ensemble ens(specs, opts);
  ens.run();

  EXPECT_EQ(ens.numDone(), 2);
  EXPECT_EQ(ens.numFailed(), 1);
  EXPECT_EQ(ens.result(1).status, MemberResult::Status::Failed);
  EXPECT_NE(ens.result(1).error.find("CFL"), std::string::npos) << ens.result(1).error;

  // Neighbors are bitwise identical to their solo runs — the failure did
  // not perturb them.
  EXPECT_EQ(countMismatches(ens.result(0).finalState, soloFinalState(specs[0])), 0);
  EXPECT_EQ(countMismatches(ens.result(2).finalState, soloFinalState(specs[2])), 0);

  // The result table records the failure.
  std::ifstream csv(dir + "/ensemble_results.csv");
  ASSERT_TRUE(csv.good());
  std::stringstream ss;
  ss << csv.rdbuf();
  EXPECT_NE(ss.str().find("bad,failed"), std::string::npos) << ss.str();
  std::filesystem::remove_all(dir);
}

TEST(Ensemble, ShardedMemberMatchesSoloBitwise) {
  const std::string dir = tmpDir("vdg_ens_shard");
  ScenarioSpec spec = landauSpec("sharded", 2e-3);
  spec.ranks = 2;
  EnsembleOptions opts;
  opts.numRanks = 2;
  opts.outputDir = dir;
  opts.keepFinalState = true;
  Ensemble ens({spec}, opts);
  ASSERT_EQ(ens.schedule().members[0].numRanks, 2);
  ens.run();
  ASSERT_EQ(ens.numDone(), 1);
  ASSERT_TRUE(ens.result(0).hasFinalState);
  EXPECT_EQ(countMismatches(ens.result(0).finalState, soloFinalState(spec)), 0);
  // The engine-assembled sharded series has the standard schema.
  std::ifstream csv(ens.result(0).seriesPath);
  ASSERT_TRUE(csv.good());
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header, "t,fieldEnergy,electricEnergy,elc_M0,elc_M1x,elc_M2,elc_absorbed,elc_wallRate");
  std::filesystem::remove_all(dir);
}

// --------------------------------------- checkpoint/resume, async writer

TEST(Ensemble, CheckpointResumeThroughAsyncWriterIsBitwise) {
  const std::string dir = tmpDir("vdg_ens_resume");
  const double tMid = 0.2, tEnd = 0.45;

  // Leg 1: run to tMid, final checkpoint through the async writer.
  ScenarioSpec leg1 = landauSpec("member", 2e-3, tMid);
  EnsembleOptions opts;
  opts.numRanks = 1;
  opts.outputDir = dir;
  opts.finalCheckpoint = true;
  {
    Ensemble ens({leg1}, opts);
    ens.run();
    ASSERT_EQ(ens.numDone(), 1);
    ASSERT_FALSE(ens.result(0).checkpointPrefix.empty());
  }

  // Leg 2: resume from the checkpoint, continue to tEnd.
  ScenarioSpec leg2 = landauSpec("member", 2e-3, tEnd);
  leg2.resumeFrom = dir + "/member.ckpt";
  EnsembleOptions opts2 = opts;
  opts2.finalCheckpoint = false;
  opts2.keepFinalState = true;
  Ensemble ens2({leg2}, opts2);
  ens2.run();
  ASSERT_EQ(ens2.numDone(), 1);

  // The uninterrupted reference.
  ScenarioSpec full = landauSpec("member", 2e-3, tEnd);
  EXPECT_EQ(countMismatches(ens2.result(0).finalState, soloFinalState(full)), 0);

  // The resumed series continued the same CSV: exactly one header line.
  std::ifstream csv(dir + "/member.csv");
  ASSERT_TRUE(csv.good());
  int headers = 0, rows = 0;
  for (std::string line; std::getline(csv, line);) {
    if (line.rfind("t,", 0) == 0)
      ++headers;
    else if (!line.empty())
      ++rows;
  }
  EXPECT_EQ(headers, 1);
  // t=0 row + every step of both legs, with no repeated t=tMid sample.
  EXPECT_EQ(rows, 1 + ens2.result(0).steps +
                      [&] {
                        Simulation::Builder b = leg1.toBuilder();
                        b.threads(1);
                        Simulation s = b.build();
                        return s.advanceTo(tMid);
                      }());
  std::filesystem::remove_all(dir);
}

TEST(AsyncWriter, PreservesPerPathOrderAndCounts) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "vdg_async_order.csv").string();
  std::filesystem::remove(path);
  AsyncWriter w;
  w.openCsv(path, "i,v", false);
  for (int i = 0; i < 200; ++i) w.appendLine(path, std::to_string(i) + "," + std::to_string(2 * i));
  w.flush();
  const AsyncWriter::Stats st = w.stats();
  EXPECT_EQ(st.linesWritten, 200u);
  EXPECT_GE(st.batches, 1u);
  w.close();

  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "i,v");
  int i = 0;
  while (std::getline(is, line)) {
    EXPECT_EQ(line, std::to_string(i) + "," + std::to_string(2 * i));
    ++i;
  }
  EXPECT_EQ(i, 200);
  std::filesystem::remove(path);
}

TEST(AsyncWriter, WriterThreadErrorsSurfaceOnFlush) {
  AsyncWriter w;
  w.appendLine("/nonexistent-dir/never-opened.csv", "1,2");
  EXPECT_THROW(w.flush(), std::logic_error);
  EXPECT_THROW(w.close(), std::logic_error);  // close reports it too
}

TEST(AsyncWriter, CheckpointFieldRoundTrips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "vdg_async_ckpt.fld").string();
  const Grid g = Grid::make({4, 3}, {0.0, -1.0}, {1.0, 1.0});
  Field f(g, 2);
  forEachCell(g, [&](const MultiIndex& idx) {
    f.at(idx)[0] = 10.0 * idx[0] + idx[1];
    f.at(idx)[1] = -1.5;
  });
  {
    AsyncWriter w;
    w.writeFieldAsync(path, f, 7.25);
    w.close();
  }
  const LoadedField back = readField(path);
  EXPECT_EQ(back.time, 7.25);
  int bad = 0;
  forEachCell(g, [&](const MultiIndex& idx) {
    for (int l = 0; l < 2; ++l)
      if (back.field.at(idx)[l] != f.at(idx)[l]) ++bad;
  });
  EXPECT_EQ(bad, 0);
  std::filesystem::remove(path);
}

TEST(TimeSeriesWriter, OneLiveWriterPerPath) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "vdg_ts_claim.csv").string();
  ScenarioSpec spec = landauSpec("claim", 1e-3);
  Simulation::Builder b = spec.toBuilder();
  b.threads(1);
  Simulation sim = b.build();
  {
    TimeSeriesWriter ts(path, sim);
    EXPECT_THROW(TimeSeriesWriter(path, sim), std::logic_error);
    ts.sample(sim);
    ts.flush();
  }
  // Released on destruction: claimable again, and Resume appends without a
  // second header.
  {
    TimeSeriesWriter ts(path, sim, CsvWriter::Mode::Resume);
    ts.sample(sim);
  }
  std::ifstream is(path);
  int headers = 0, rows = 0;
  for (std::string line; std::getline(is, line);) {
    if (line.rfind("t,", 0) == 0)
      ++headers;
    else if (!line.empty())
      ++rows;
  }
  EXPECT_EQ(headers, 1);
  EXPECT_EQ(rows, 2);
  std::filesystem::remove(path);
}

TEST(TimeSeriesWriter, ResumeRejectsSchemaChange) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "vdg_ts_schema.csv").string();
  {
    CsvWriter csv(path, "t,other_schema");
    csv.row({0.0, 1.0});
  }
  ScenarioSpec spec = landauSpec("schema", 1e-3);
  Simulation::Builder b = spec.toBuilder();
  b.threads(1);
  Simulation sim = b.build();
  EXPECT_THROW(TimeSeriesWriter(path, sim, CsvWriter::Mode::Resume), std::runtime_error);
  std::filesystem::remove(path);
}

// ----------------------------------------------------------- result tables

namespace json {

// Minimal recursive-descent JSON validator/extractor for the regression
// test below: enough of RFC 8259 to reject bare nan/inf tokens (which the
// old writer emitted) and to pull out number/null values by key path.
struct Parser {
  const std::string& s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' || s[i] == '\r')) ++i;
  }
  bool lit(const char* t) {
    const std::size_t n = std::strlen(t);
    if (s.compare(i, n, t) != 0) return false;
    i += n;
    return true;
  }
  bool string() {
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') i += s[i] == '\\' ? 2 : 1;
    if (i >= s.size()) return false;
    ++i;
    return true;
  }
  bool number() {
    char* end = nullptr;
    std::strtod(s.c_str() + i, &end);
    if (end == s.c_str() + i) return false;
    // strtod accepts "nan"/"inf", JSON does not: require a digit/sign start.
    if (s[i] != '-' && (s[i] < '0' || s[i] > '9')) return false;
    i = static_cast<std::size_t>(end - s.c_str());
    return true;
  }
  bool value() {  // NOLINT(misc-no-recursion)
    ws();
    if (i >= s.size()) return false;
    if (s[i] == '"') return string();
    if (s[i] == '{') {
      ++i;
      ws();
      if (s[i] == '}') return ++i, true;
      while (true) {
        ws();
        if (!string()) return false;
        ws();
        if (i >= s.size() || s[i] != ':') return false;
        ++i;
        if (!value()) return false;
        ws();
        if (i < s.size() && s[i] == ',') { ++i; continue; }
        break;
      }
      if (i >= s.size() || s[i] != '}') return false;
      return ++i, true;
    }
    if (s[i] == '[') {
      ++i;
      ws();
      if (s[i] == ']') return ++i, true;
      while (true) {
        if (!value()) return false;
        ws();
        if (i < s.size() && s[i] == ',') { ++i; continue; }
        break;
      }
      if (i >= s.size() || s[i] != ']') return false;
      return ++i, true;
    }
    return lit("true") || lit("false") || lit("null") || number();
  }
};

bool valid(const std::string& text) {
  Parser p{text};
  if (!p.value()) return false;
  p.ws();
  return p.i == text.size();
}

}  // namespace json

/// The CSV and JSON result tables must reproduce every finite double
/// bitwise on re-read (round-trip formatting), and non-finite values must
/// land in the JSON as null — the emitted document has to parse.
TEST(ResultTable, RoundTripsDoublesAndEmitsValidJson) {
  const double t = 12.566370614359172;   // 4*pi: not representable in 6 digits
  const double wall = 1.0 / 3.0;
  const double k = 0.6000000000000001;   // differs from 0.6 by one ulp

  std::vector<MemberResult> results(2);
  results[0].name = "good";
  results[0].status = MemberResult::Status::Done;
  results[0].steps = 42;
  results[0].finalTime = t;
  results[0].wallSeconds = wall;
  results[0].params = {{"k", k}, {"amp", 1e-12}};
  results[1].name = "diverged, \"sadly\"";  // exercises both escapers
  results[1].status = MemberResult::Status::Failed;
  results[1].error = "non-finite dt";
  results[1].finalTime = std::nan("");
  results[1].wallSeconds = std::numeric_limits<double>::infinity();
  results[1].params = {{"k", std::nan("")}, {"amp", 1e-12}};

  const std::string csvPath =
      (std::filesystem::temp_directory_path() / "vdg_results_rt.csv").string();
  const std::string jsonPath =
      (std::filesystem::temp_directory_path() / "vdg_results_rt.json").string();
  writeResultTableCsv(csvPath, results);
  writeResultTableJson(jsonPath, results);

  // CSV: the finite doubles of the "good" row round-trip bitwise.
  {
    std::ifstream is(csvPath);
    std::string header, row;
    std::getline(is, header);
    EXPECT_EQ(header,
              "name,status,leadRank,numRanks,steps,finalTime,wallSeconds,haloSeconds,"
              "computeSeconds,ioSeconds,amp,k,error");
    std::getline(is, row);
    std::vector<std::string> cols;
    std::stringstream ss(row);
    for (std::string c; std::getline(ss, c, ',');) cols.push_back(c);
    ASSERT_GE(cols.size(), 12u);
    EXPECT_EQ(std::strtod(cols[5].c_str(), nullptr), t) << cols[5];
    EXPECT_EQ(std::strtod(cols[6].c_str(), nullptr), wall) << cols[6];
    EXPECT_EQ(std::strtod(cols[10].c_str(), nullptr), 1e-12) << cols[10];
    EXPECT_EQ(std::strtod(cols[11].c_str(), nullptr), k) << cols[11];
  }

  // JSON: the document parses, non-finite values are null, finite ones
  // round-trip bitwise out of the raw text.
  {
    std::ifstream is(jsonPath);
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string text = ss.str();
    EXPECT_TRUE(json::valid(text)) << text;
    EXPECT_EQ(text.find("nan"), std::string::npos);
    EXPECT_EQ(text.find("inf"), std::string::npos);
    EXPECT_NE(text.find("\"finalTime\": null"), std::string::npos) << text;
    EXPECT_NE(text.find("\"wallSeconds\": null"), std::string::npos) << text;
    EXPECT_NE(text.find("\"k\": null"), std::string::npos) << text;
    const std::size_t pos = text.find("\"finalTime\": ");
    ASSERT_NE(pos, std::string::npos);
    EXPECT_EQ(std::strtod(text.c_str() + pos + 13, nullptr), t);
    const std::size_t kpos = text.find("\"k\": ");
    ASSERT_NE(kpos, std::string::npos);
    EXPECT_EQ(std::strtod(text.c_str() + kpos + 5, nullptr), k);
  }

  std::filesystem::remove(csvPath);
  std::filesystem::remove(jsonPath);
}

}  // namespace
}  // namespace vdg
