// The electrostatic Vlasov-Poisson subsystem: the recovery-based DG
// Poisson solver (manufactured-solution convergence at order >= p+1, the
// zero-mean gauge, operator residuals), the field:poisson pipeline path
// (charge assembly exactness over species, em-slot layout, conservation),
// physics validation against the analytic electrostatic Landau damping
// rate, and the distributed/threaded bitwise-identity guarantees the rest
// of the codebase holds itself to.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>
#include <vector>

#include "app/distributed.hpp"
#include "app/projection.hpp"
#include "app/simulation.hpp"
#include "app/updaters.hpp"
#include "dg/poisson.hpp"

namespace vdg {
namespace {

constexpr double kPi = std::numbers::pi;

/// Project a scalar function of x onto the conf basis and flatten into the
/// solver's global cell-major coefficient layout.
std::vector<double> projectFlat(const PoissonSolver& solver, const ScalarFn& fn) {
  const Grid& g = solver.grid();
  Field f(g, solver.numModes());
  projectOnBasis(solver.basis(), g, fn, f, solver.basis().spec().polyOrder + 3);
  std::vector<double> out(solver.numUnknowns());
  forEachCell(g, [&](const MultiIndex& idx) {
    const double* src = f.at(idx);
    double* dst = out.data() + solver.flatIndex(idx);
    for (int l = 0; l < solver.numModes(); ++l) dst[l] = src[l];
  });
  return out;
}

double l2Diff(const PoissonSolver& solver, std::span<const double> a,
              std::span<const double> b) {
  double jac = 1.0;
  for (int d = 0; d < solver.grid().ndim; ++d) jac *= 0.5 * solver.grid().dx(d);
  double err = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    err += d * d;
  }
  return std::sqrt(jac * err);
}

// ------------------------------------------------------------- the solver

struct SolveCase {
  int polyOrder;
  double minOrder;
};

class PoissonConvergence : public ::testing::TestWithParam<SolveCase> {};

/// -phi'' = sin(x) on [0, 2pi] has the zero-mean solution phi = sin(x) and
/// E = -cos(x). Both the potential and the derived electric field must
/// converge at order >= p+1 (recovery is in fact super-convergent).
TEST_P(PoissonConvergence, ManufacturedSolutionAtOrderPPlusOne) {
  const auto [p, minOrder] = GetParam();
  const BasisSpec spec{1, 0, p, BasisFamily::Serendipity};
  double phiErr[2], eErr[2];
  const int sizes[2] = {8, 16};
  for (int r = 0; r < 2; ++r) {
    const Grid g = Grid::make({sizes[r]}, {0.0}, {2.0 * kPi});
    const PoissonSolver solver(spec, g, PoissonParams{});
    const auto rho = projectFlat(solver, [](const double* z) { return std::sin(z[0]); });
    std::vector<double> phi(solver.numUnknowns());
    solver.solve(rho, phi);
    const auto phiExact =
        projectFlat(solver, [](const double* z) { return std::sin(z[0]); });
    phiErr[r] = l2Diff(solver, phi, phiExact);

    std::vector<double> e(solver.numUnknowns());
    forEachCell(g, [&](const MultiIndex& idx) {
      solver.cellElectricField(
          phi, idx, 0, {e.data() + solver.flatIndex(idx), static_cast<std::size_t>(solver.numModes())});
    });
    const auto eExact =
        projectFlat(solver, [](const double* z) { return -std::cos(z[0]); });
    eErr[r] = l2Diff(solver, e, eExact);
  }
  const double phiOrder = std::log2(phiErr[0] / phiErr[1]);
  const double eOrder = std::log2(eErr[0] / eErr[1]);
  EXPECT_GE(phiOrder, minOrder) << "phi errors " << phiErr[0] << " -> " << phiErr[1];
  EXPECT_GE(eOrder, minOrder) << "E errors " << eErr[0] << " -> " << eErr[1];
}

INSTANTIATE_TEST_SUITE_P(Orders, PoissonConvergence,
                         ::testing::Values(SolveCase{1, 2.0}, SolveCase{2, 3.0}),
                         [](const auto& info) {
                           return "p" + std::to_string(info.param.polyOrder);
                         });

/// The gauge: solutions have zero mean, a uniform charge offset changes
/// nothing (it is absorbed by the Lagrange multiplier), and the residual
/// of the solve is exactly that uniform part.
TEST(PoissonSolver, ZeroMeanGaugeRegression) {
  const BasisSpec spec{1, 0, 2, BasisFamily::Serendipity};
  const Grid g = Grid::make({12}, {0.0}, {2.0 * kPi});
  const PoissonSolver solver(spec, g, PoissonParams{});
  const auto rho = projectFlat(
      solver, [](const double* z) { return std::sin(z[0]) + 0.3 * std::cos(2.0 * z[0]); });

  std::vector<double> phi(solver.numUnknowns());
  solver.solve(rho, phi);
  EXPECT_NEAR(solver.domainIntegral(phi), 0.0, 1e-12);

  // Residual of the neutral problem vanishes identically.
  std::vector<double> res(solver.numUnknowns());
  solver.applyMinusLaplacian(phi, res);
  for (std::size_t i = 0; i < res.size(); ++i) EXPECT_NEAR(res[i], rho[i], 1e-10) << i;

  // A uniform charge offset (mean rho != 0) leaves phi (hence E) unchanged.
  auto rhoOff = rho;
  const double off = 5.0 * std::sqrt(2.0);  // 5.0 as a mode-0 coefficient
  for (std::size_t c = 0; c < rhoOff.size(); c += static_cast<std::size_t>(solver.numModes()))
    rhoOff[c] += off;
  std::vector<double> phiOff(solver.numUnknowns());
  solver.solve(rhoOff, phiOff);
  for (std::size_t i = 0; i < phi.size(); ++i) EXPECT_NEAR(phiOff[i], phi[i], 1e-10) << i;
}

TEST(PoissonSolver, EpsilonZeroScalesThePotential) {
  const BasisSpec spec{1, 0, 1, BasisFamily::Serendipity};
  const Grid g = Grid::make({8}, {0.0}, {2.0 * kPi});
  const PoissonSolver unit(spec, g, PoissonParams{.epsilon0 = 1.0});
  const PoissonSolver half(spec, g, PoissonParams{.epsilon0 = 2.0});
  const auto rho = projectFlat(unit, [](const double* z) { return std::sin(z[0]); });
  std::vector<double> a(unit.numUnknowns()), b(unit.numUnknowns());
  unit.solve(rho, a);
  half.solve(rho, b);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(b[i], 0.5 * a[i], 1e-12);
}

TEST(PoissonSolver, RejectsUnsupportedConfigurations) {
  // 2x construction is supported since the CG backend landed (Auto
  // resolves it to ConjGrad); the solver must come up, not throw.
  const PoissonSolver p2x(BasisSpec{2, 0, 1, BasisFamily::Serendipity},
                          Grid::make({4, 4}, {0.0, 0.0}, {1.0, 1.0}), PoissonParams{});
  EXPECT_EQ(p2x.method(), PoissonMethod::ConjGrad);
  EXPECT_THROW(PoissonSolver(BasisSpec{1, 1, 1, BasisFamily::Serendipity},
                             Grid::make({4}, {0.0}, {1.0}), PoissonParams{}),
               std::invalid_argument);
  EXPECT_THROW(PoissonSolver(BasisSpec{1, 0, 1, BasisFamily::Serendipity},
                             Grid::make({4}, {0.0}, {1.0}), PoissonParams{.epsilon0 = 0.0}),
               std::invalid_argument);
  // Mixed periodic/wall edges of one dimension stay rejected.
  PoissonParams mixed;
  mixed.bc[0][0] = {PoissonBcKind::Dirichlet, 0.0};
  EXPECT_THROW(PoissonSolver(BasisSpec{1, 0, 1, BasisFamily::Serendipity},
                             Grid::make({4}, {0.0}, {1.0}), mixed),
               std::invalid_argument);
}

// ---------------------------------------------------- the field:poisson path

Simulation::Builder vpBuilder(int confCells, int velCells, double amp = 0.05,
                              double nu = 0.0) {
  const double k = 0.5;
  auto b = Simulation::builder();
  b.confGrid(Grid::make({confCells}, {0.0}, {2.0 * kPi / k}))
      .basis(2, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({velCells}, {-6.0}, {6.0}),
               [k, amp](const double* z) {
                 const double x = z[0], v = z[1];
                 return (1.0 + amp * std::cos(k * x)) / std::sqrt(2.0 * kPi) *
                        std::exp(-0.5 * v * v);
               });
  if (nu > 0.0) b.collisions(LboParams{.collisionFreq = nu});
  b.field(PoissonParams{}).backgroundCharge(1.0).cflFrac(0.8).threads(1);
  return b;
}

/// The assembled global charge density must be exactly (bitwise) the
/// charge-weighted sum of the per-species M0 moments — the reduction and
/// window scatter add nothing and lose nothing — plus the background on
/// the cell means.
TEST(PoissonFieldUpdater, ChargeAssemblyIsExactOverSpecies) {
  const double k = 0.5, L = 2.0 * kPi / k;
  auto b = Simulation::builder();
  b.confGrid(Grid::make({8}, {0.0}, {L}))
      .basis(2, BasisFamily::Serendipity)
      .species("elc", -1.0, 1.0, Grid::make({12}, {-6.0}, {6.0}),
               [k](const double* z) {
                 return (1.0 + 0.2 * std::cos(k * z[0])) / std::sqrt(2.0 * kPi) *
                        std::exp(-0.5 * z[1] * z[1]);
               })
      .species("ion", 1.0, 25.0, Grid::make({8}, {-2.0}, {2.0}),
               [k](const double* z) {
                 return (1.0 + 0.1 * std::sin(k * z[0])) * 2.5 / std::sqrt(2.0 * kPi) *
                        std::exp(-0.5 * 25.0 * z[1] * z[1]);
               })
      .field(PoissonParams{})
      .threads(1);
  Simulation sim = b.build();
  ASSERT_NE(sim.poissonField(), nullptr);
  const PoissonSolver& solver = *sim.poissonSolver();
  const int np = solver.numModes();

  std::vector<double> expected(solver.numUnknowns(), 0.0);
  for (int s = 0; s < sim.numSpecies(); ++s) {
    Field m0(sim.confGrid(), np);
    sim.moments(s).compute(sim.distf(s), &m0, nullptr, nullptr);
    const double q = sim.speciesConfig(s).charge;
    forEachCell(sim.confGrid(), [&](const MultiIndex& idx) {
      const double* src = m0.at(idx);
      double* dst = expected.data() + solver.flatIndex(idx);
      for (int l = 0; l < np; ++l) dst[l] += q * src[l];
    });
  }
  const auto rho = sim.poissonField()->lastRho();
  ASSERT_EQ(rho.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(rho[i], expected[i]) << "flat index " << i;
}

/// Build-time state: E solves Gauss's law for the initial rho, Ey/Ez are
/// zero, B stays frozen at zero, and the phi diagnostic slot carries the
/// solved potential.
TEST(PoissonFieldUpdater, EmSlotLayoutAndInitialConsistency) {
  Simulation sim = vpBuilder(8, 12).build();
  const PoissonSolver& solver = *sim.poissonSolver();
  const int np = solver.numModes();
  const auto phi = sim.poissonField()->lastPhi();

  std::vector<double> e(static_cast<std::size_t>(np));
  forEachCell(sim.confGrid(), [&](const MultiIndex& idx) {
    const double* u = sim.emField().at(idx);
    solver.cellElectricField(phi, idx, 0, e);
    for (int l = 0; l < np; ++l) {
      EXPECT_EQ(u[l], e[static_cast<std::size_t>(l)]);              // Ex
      EXPECT_EQ(u[np + l], 0.0);                                    // Ey
      EXPECT_EQ(u[2 * np + l], 0.0);                                // Ez
      EXPECT_EQ(u[3 * np + l], 0.0);                                // B frozen
      EXPECT_EQ(u[4 * np + l], 0.0);
      EXPECT_EQ(u[5 * np + l], 0.0);
      EXPECT_EQ(u[6 * np + l], phi[solver.flatIndex(idx) + static_cast<std::size_t>(l)]);
    }
  });
  // The initial perturbation makes a nonzero field.
  EXPECT_GT(sim.energetics().electricEnergy, 0.0);
  // Pipeline shape: poisson fixup first, no maxwell / current coupling.
  EXPECT_EQ(sim.pipeline().front()->name(), "field:poisson");
  for (const auto& upd : sim.pipeline()) {
    EXPECT_NE(upd->name(), "maxwell");
    EXPECT_NE(upd->name(), "current-coupling");
  }
}

/// An initField-set transverse E is an *external* field: the per-stage
/// solve only owns the configuration-direction components, so Ey survives
/// stepping untouched (same frozen-field semantics as B).
TEST(PoissonFieldUpdater, ExternalTransverseFieldStaysFrozen) {
  auto b = vpBuilder(8, 12);
  b.initField([](const double* /*x*/, double* em) {
    for (int c = 0; c < 8; ++c) em[c] = 0.0;
    em[1] = 0.25;  // external uniform Ey
  });
  Simulation sim = b.build();
  const int np = sim.poissonSolver()->numModes();
  sim.step();
  const double mode0 = 0.25 * std::sqrt(2.0);  // constant's 1-D coefficient
  forEachCell(sim.confGrid(), [&](const MultiIndex& idx) {
    const double* u = sim.emField().at(idx);
    EXPECT_NEAR(u[np], mode0, 1e-14);
    for (int l = 1; l < np; ++l) EXPECT_NEAR(u[np + l], 0.0, 1e-14);
  });
}

TEST(VlasovPoisson, ConservesMassAndEnergy) {
  Simulation sim = vpBuilder(12, 16).build();
  const auto e0 = sim.energetics();
  sim.advanceTo(5.0);
  const auto e1 = sim.energetics();
  EXPECT_NEAR(e1.mass[0], e0.mass[0], 1e-12 * std::abs(e0.mass[0]));
  // Electrostatic total energy (kinetic + field) is conserved to the
  // scheme's order, not machine precision; pin a generous envelope.
  EXPECT_NEAR(e1.totalEnergy(), e0.totalEnergy(), 1e-6 * e0.totalEnergy());
}

/// The headline physics: k vt/wp = 0.5 electrostatic Landau damping at the
/// kinetic rate gamma ~= -0.1533 (within 10%).
TEST(VlasovPoisson, LandauDampingRateMatchesTheory) {
  Simulation sim = vpBuilder(32, 32, 1e-3).build();
  std::vector<double> tPeaks, ePeaks;
  double prev2 = 0.0, prev1 = 0.0, tPrev1 = 0.0;
  while (sim.time() < 20.0) {
    sim.step();
    const double eE = sim.energetics().electricEnergy;
    if (prev1 > prev2 && prev1 > eE && prev1 > 1e-14) {
      tPeaks.push_back(tPrev1);
      ePeaks.push_back(prev1);
    }
    prev2 = prev1;
    prev1 = eE;
    tPrev1 = sim.time();
  }
  ASSERT_GE(tPeaks.size(), 4u);
  double st = 0, sy = 0, stt = 0, sty = 0;
  const double n = static_cast<double>(tPeaks.size());
  for (std::size_t i = 0; i < tPeaks.size(); ++i) {
    st += tPeaks[i];
    sy += std::log(ePeaks[i]);
    stt += tPeaks[i] * tPeaks[i];
    sty += tPeaks[i] * std::log(ePeaks[i]);
  }
  const double gamma = 0.5 * (n * sty - st * sy) / (n * stt - st * st);
  EXPECT_NEAR(gamma, -0.1533, 0.1 * 0.1533) << "peaks: " << tPeaks.size();
}

// ------------------------------------------------- bitwise reproducibility

TEST(VlasovPoisson, ThreadedMatchesSerialBitForBit) {
  auto serial = vpBuilder(12, 12).build();
  auto bThreaded = vpBuilder(12, 12);
  bThreaded.threads(4);
  auto threaded = bThreaded.build();
  for (int i = 0; i < 10; ++i) {
    const double dtS = serial.step();
    const double dtT = threaded.step();
    EXPECT_EQ(dtS, dtT) << "step " << i;
  }
  int bad = 0;
  for (int slot = 0; slot < serial.state().numSlots(); ++slot) {
    const Field& a = serial.state().slot(slot);
    const Field& b = threaded.state().slot(slot);
    forEachCell(a.grid(), [&](const MultiIndex& idx) {
      for (int l = 0; l < a.ncomp(); ++l)
        if (a.at(idx)[l] != b.at(idx)[l]) ++bad;
    });
  }
  EXPECT_EQ(bad, 0);
}

/// Rank shards of a distributed electrostatic run share ONE factored
/// global solver (the setup LU is paid once per job, not once per rank);
/// and a provided solver that does not match the run's global grid is
/// rejected instead of silently producing a wrong field.
TEST(VlasovPoisson, RankShardsShareOneSolverAndMismatchThrows) {
  auto builder = vpBuilder(12, 12);
  DistributedSimulation dist(builder, 2);
  ASSERT_NE(dist.rankSim(0).poissonSolver(), nullptr);
  EXPECT_EQ(dist.rankSim(0).poissonSolver(), dist.rankSim(1).poissonSolver());

  auto mismatched = std::make_shared<const PoissonSolver>(
      BasisSpec{1, 0, 2, BasisFamily::Serendipity}, Grid::make({16}, {0.0}, {1.0}),
      PoissonParams{});
  auto bad = vpBuilder(12, 12);
  bad.poissonSolver(mismatched);
  EXPECT_THROW(bad.build(), std::invalid_argument);
}

/// A 2-rank DistributedSimulation — per-rank windows of the charge density
/// all-reduced into the same global solve — must reproduce the serial
/// Vlasov-Poisson trajectory bit for bit, collisions included.
TEST(VlasovPoisson, TwoRankDistributedMatchesSerialBitForBit) {
  for (double nu : {0.0, 0.5}) {
    auto builder = vpBuilder(12, 12, 0.05, nu);
    Simulation serial = builder.build();
    DistributedSimulation dist(builder, 2);
    ASSERT_EQ(dist.numRanks(), 2);
    for (int i = 0; i < 8; ++i) {
      const double dtS = serial.step();
      const double dtD = dist.step();
      EXPECT_EQ(dtS, dtD) << "nu=" << nu << " step " << i;
    }
    const StateVector global = dist.gather();
    int bad = 0;
    for (int slot = 0; slot < serial.state().numSlots(); ++slot) {
      const Field& a = serial.state().slot(slot);
      const Field& b = global.slot(slot);
      forEachCell(a.grid(), [&](const MultiIndex& idx) {
        for (int l = 0; l < a.ncomp(); ++l)
          if (a.at(idx)[l] != b.at(idx)[l]) ++bad;
      });
    }
    EXPECT_EQ(bad, 0) << "nu=" << nu;
  }
}

}  // namespace
}  // namespace vdg
