// Convergence-order tests: the paper's modal DG retains the formal p+1
// order of accuracy of DG while being alias-free. Verified on advection of
// a smooth profile (free streaming, where the exact solution is the
// translated initial condition) across two resolutions for p = 1 and 2.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "app/projection.hpp"
#include "collisions/lbo.hpp"
#include "dg/vlasov.hpp"

namespace vdg {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Advect f0(x, v) = sin(x) * g(v) for time t by free streaming on an
/// nx-cell grid with SSP-RK3 and a small fixed dt; return the L2 error
/// against the exact translated solution f(x, v, t) = sin(x - v t) g(v).
double streamingError(const BasisSpec& spec, int nx, double tEnd) {
  const Grid conf = Grid::make({nx}, {0.0}, {kTwoPi});
  const Grid vel = Grid::make({24}, {-1.0}, {1.0});  // modest speeds
  const Grid pg = Grid::phase(conf, vel);
  const Basis& b = basisFor(spec);

  const auto g = [](double v) { return std::exp(-2.0 * v * v); };
  Field f(pg, b.numModes());
  projectOnBasis(
      b, pg, [&](const double* z) { return std::sin(z[0]) * g(z[1]); }, f, spec.polyOrder + 3);

  VlasovParams params;
  params.flux = FluxType::Penalty;
  const VlasovUpdater up(spec, pg, params);
  Field k1(pg, b.numModes()), u1(pg, b.numModes()), u2(pg, b.numModes());

  // dt well below the spatial error floor so the measured error is spatial.
  const double dt = 0.2 * (kTwoPi / nx);
  double t = 0.0;
  while (t < tEnd - 1e-12) {
    const double h = std::min(dt, tEnd - t);
    f.syncPeriodic(0);
    up.advance(f, nullptr, k1);
    u1.combine(1.0, f, h, k1);
    u1.syncPeriodic(0);
    up.advance(u1, nullptr, k1);
    u2.combine(0.75, f, 0.25, u1);
    u2.axpy(0.25 * h, k1);
    u2.syncPeriodic(0);
    up.advance(u2, nullptr, k1);
    f.combine(1.0 / 3.0, f, 2.0 / 3.0, u2);
    f.axpy(2.0 / 3.0 * h, k1);
    t += h;
  }

  // L2 error via the exact-solution projection (super-convergent terms
  // cancel identically for both resolutions, so the ratio is clean).
  Field fExact(pg, b.numModes());
  projectOnBasis(
      b, pg, [&](const double* z) { return std::sin(z[0] - z[1] * tEnd) * g(z[1]); }, fExact,
      spec.polyOrder + 3);
  double err = 0.0;
  forEachCell(pg, [&](const MultiIndex& idx) {
    for (int l = 0; l < b.numModes(); ++l) {
      const double d = f.at(idx)[l] - fExact.at(idx)[l];
      err += d * d;
    }
  });
  double jac = 1.0;
  for (int d = 0; d < pg.ndim; ++d) jac *= 0.5 * pg.dx(d);
  return std::sqrt(jac * err);
}

struct ConvCase {
  int polyOrder;
  BasisFamily family;
  double minOrder;
};

class StreamingConvergence : public ::testing::TestWithParam<ConvCase> {};

TEST_P(StreamingConvergence, OrderIsAtLeastPPlusOne) {
  const auto [p, fam, minOrder] = GetParam();
  const BasisSpec spec{1, 1, p, fam};
  const double eCoarse = streamingError(spec, 8, 1.0);
  const double eFine = streamingError(spec, 16, 1.0);
  const double order = std::log2(eCoarse / eFine);
  EXPECT_GE(order, minOrder) << "p=" << p << " coarse=" << eCoarse << " fine=" << eFine;
  EXPECT_LT(eFine, eCoarse);
}

INSTANTIATE_TEST_SUITE_P(
    Orders, StreamingConvergence,
    ::testing::Values(ConvCase{1, BasisFamily::Tensor, 1.8},
                      ConvCase{2, BasisFamily::Serendipity, 2.8},
                      ConvCase{2, BasisFamily::Tensor, 2.8}),
    [](const auto& info) {
      return "p" + std::to_string(info.param.polyOrder) + "_" + to_string(info.param.family);
    });

/// Solve the heat equation df/dt = D d2f/dv2 with the LBO recovery-based
/// diffusion term on an nv-cell velocity grid (zero-flux boundaries, but
/// the Gaussian stays 1e-10-small there) and manufactured exact solution:
/// a spreading Gaussian of variance sigma^2 + 2 D t. dt ~ dv^2 keeps the
/// RK3 time error far below the spatial one.
double diffusionError(const BasisSpec& spec, int nv, double tEnd) {
  const double vMax = 8.0, sigma2 = 1.0, D = 0.5;
  const Grid pg = Grid::phase(Grid::make({2}, {0.0}, {1.0}), Grid::make({nv}, {-vMax}, {vMax}));
  const Basis& b = basisFor(spec);

  const auto gaussian = [&](double var) {
    return [var](const double* z) {
      return std::exp(-0.5 * z[1] * z[1] / var) / std::sqrt(kTwoPi * var);
    };
  };
  Field f(pg, b.numModes());
  projectOnBasis(b, pg, gaussian(sigma2), f, spec.polyOrder + 3);

  const LboUpdater lbo(spec, pg, LboParams{1.0, 1.0, false});
  Field vtSq(lbo.confGrid(), lbo.numConfModes());
  vtSq.setZero();
  forEachCell(vtSq.grid(), [&](const MultiIndex& idx) {
    vtSq.at(idx)[0] = D * std::sqrt(2.0);  // constant expansion = D
  });

  Field k1(pg, b.numModes()), u1(pg, b.numModes()), u2(pg, b.numModes());
  const double dv = 2.0 * vMax / nv;
  // Well inside the RK3 stability bound of the recovery spectrum for both
  // p1 and p2 (the operator's spectral radius grows ~(2p+1)^2 / dv^2).
  const double dt = 0.02 * dv * dv / D;
  const auto rhs = [&](const Field& in, Field& out) {
    out.setZero();
    lbo.diffusionTerm(in, vtSq, out);
  };
  double t = 0.0;
  while (t < tEnd - 1e-12) {
    const double h = std::min(dt, tEnd - t);
    rhs(f, k1);
    u1.combine(1.0, f, h, k1);
    rhs(u1, k1);
    u2.combine(0.75, f, 0.25, u1);
    u2.axpy(0.25 * h, k1);
    rhs(u2, k1);
    f.combine(1.0 / 3.0, f, 2.0 / 3.0, u2);
    f.axpy(2.0 / 3.0 * h, k1);
    t += h;
  }

  Field fExact(pg, b.numModes());
  projectOnBasis(b, pg, gaussian(sigma2 + 2.0 * D * tEnd), fExact, spec.polyOrder + 3);
  double err = 0.0;
  forEachCell(pg, [&](const MultiIndex& idx) {
    for (int l = 0; l < b.numModes(); ++l) {
      const double d = f.at(idx)[l] - fExact.at(idx)[l];
      err += d * d;
    }
  });
  double jac = 1.0;
  for (int d = 0; d < pg.ndim; ++d) jac *= 0.5 * pg.dx(d);
  return std::sqrt(jac * err);
}

class DiffusionConvergence : public ::testing::TestWithParam<ConvCase> {};

TEST_P(DiffusionConvergence, RecoverySchemeIsAtLeastOrderPPlusOne) {
  const auto [p, fam, minOrder] = GetParam();
  const BasisSpec spec{1, 1, p, fam};
  const double eCoarse = diffusionError(spec, 16, 0.5);
  const double eFine = diffusionError(spec, 32, 0.5);
  const double order = std::log2(eCoarse / eFine);
  EXPECT_GE(order, minOrder) << "p=" << p << " coarse=" << eCoarse << " fine=" << eFine;
  EXPECT_LT(eFine, eCoarse);
}

INSTANTIATE_TEST_SUITE_P(
    Orders, DiffusionConvergence,
    ::testing::Values(ConvCase{1, BasisFamily::Serendipity, 1.8},
                      ConvCase{2, BasisFamily::Serendipity, 2.8}),
    [](const auto& info) {
      return "p" + std::to_string(info.param.polyOrder) + "_" + to_string(info.param.family);
    });

}  // namespace
}  // namespace vdg
