// I/O tests: binary field dump/restore roundtrip (the checkpoint/restart
// path) and CSV table output.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "io/field_io.hpp"

namespace vdg {
namespace {

std::string tmpPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(FieldIo, RoundTripPreservesEverything) {
  const Grid g = Grid::make({4, 3}, {0.0, -1.0}, {2.0, 1.0});
  Field f(g, 5);
  forEachCell(g, [&](const MultiIndex& idx) {
    for (int k = 0; k < 5; ++k) f.at(idx)[k] = 100.0 * idx[0] + 10.0 * idx[1] + k + 0.125;
  });
  const std::string path = tmpPath("vdg_roundtrip.bin");
  writeField(path, f, 3.75);
  const LoadedField back = readField(path);
  EXPECT_DOUBLE_EQ(back.time, 3.75);
  EXPECT_EQ(back.field.grid().ndim, 2);
  EXPECT_EQ(back.field.grid().cells[0], 4);
  EXPECT_DOUBLE_EQ(back.field.grid().upper[1], 1.0);
  EXPECT_EQ(back.field.ncomp(), 5);
  forEachCell(g, [&](const MultiIndex& idx) {
    for (int k = 0; k < 5; ++k) EXPECT_DOUBLE_EQ(back.field.at(idx)[k], f.at(idx)[k]);
  });
  std::filesystem::remove(path);
}

TEST(FieldIo, SubgridRoundTripPreservesParentWindow) {
  // A rank-local (subgrid) field must come back with its parent window —
  // and therefore its bit-exact global coordinate arithmetic — intact.
  const Grid parent = Grid::make({12, 3}, {0.25, -1.0}, {7.75, 1.0});
  const Grid g = parent.subgrid(0, 5, 4);
  Field f(g, 2);
  forEachCell(g, [&](const MultiIndex& idx) {
    for (int k = 0; k < 2; ++k) f.at(idx)[k] = 10.0 * idx[0] + idx[1] + 0.5 * k;
  });
  const std::string path = tmpPath("vdg_subgrid_roundtrip.bin");
  writeField(path, f, 1.5);
  const LoadedField back = readField(path);
  const Grid& bg = back.field.grid();
  EXPECT_TRUE(bg.isSubgrid());
  EXPECT_EQ(bg.offset[0], 5);
  EXPECT_EQ(bg.parentCells[0], 12);
  EXPECT_EQ(bg.dx(0), g.dx(0));  // exact: parent-term arithmetic survives
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(bg.cellCenter(0, i), parent.cellCenter(0, 5 + i));
  forEachCell(g, [&](const MultiIndex& idx) {
    for (int k = 0; k < 2; ++k) EXPECT_DOUBLE_EQ(back.field.at(idx)[k], f.at(idx)[k]);
  });
  std::filesystem::remove(path);
}

TEST(FieldIo, ReadRejectsGarbage) {
  const std::string path = tmpPath("vdg_garbage.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a field file";
  }
  EXPECT_THROW(readField(path), std::runtime_error);
  EXPECT_THROW(readField(tmpPath("vdg_does_not_exist.bin")), std::runtime_error);
  std::filesystem::remove(path);
}

/// Every double written to a CSV row must come back bitwise identical on
/// re-read (shortest round-trip formatting). The old default-precision
/// stream formatting truncated to 6 significant digits, which corrupted
/// gamma fits and broke resume cross-checks.
TEST(CsvWriter, RowsRoundTripBitwise) {
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           0.1,
                           3.141592653589793,
                           6.02214076e23,
                           -1.1e-300,
                           5e-324,               // smallest denormal
                           1.7976931348623157e308,  // largest finite
                           1.0000000000000002,   // 1 + ulp
                           -123456.78901234567};
  const std::string path = tmpPath("vdg_roundtrip.csv");
  std::filesystem::remove(path);
  {
    CsvWriter w(path, "v");
    for (const double v : values) w.row({v, 2.0 * v});
  }
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);  // header
  for (const double v : values) {
    ASSERT_TRUE(std::getline(is, line));
    const std::size_t comma = line.find(',');
    ASSERT_NE(comma, std::string::npos) << line;
    char* end = nullptr;
    const double a = std::strtod(line.c_str(), &end);
    const double b = std::strtod(line.c_str() + comma + 1, &end);
    // Bitwise: EXPECT_EQ distinguishes 0.0 from -0.0 via the sign test.
    EXPECT_EQ(a, v) << line;
    EXPECT_EQ(std::signbit(a), std::signbit(v)) << line;
    EXPECT_EQ(b, 2.0 * v) << line;
  }
  std::filesystem::remove(path);
}

TEST(CsvWriter, CreatesHeaderAndAppendsRows) {
  const std::string path = tmpPath("vdg_table.csv");
  std::filesystem::remove(path);
  {
    CsvWriter w(path, "t,energy");
    w.row({0.0, 1.5});
    w.row({0.1, 1.25});
  }
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "t,energy");
  std::getline(is, line);
  EXPECT_EQ(line, "0,1.5");
  std::getline(is, line);
  EXPECT_EQ(line, "0.1,1.25");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace vdg
