// Integration tests of the full Vlasov-Maxwell App: the conservation
// properties the paper's Section II is about (mass always; total
// particle+field energy with central fluxes), and the classic kinetic
// benchmarks (Landau damping, two-stream instability) that validate the
// delicate J.E field-particle coupling.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "app/vlasov_maxwell_app.hpp"

namespace vdg {
namespace {

constexpr double kPi = std::numbers::pi;

SpeciesParams electronMaxwellian(double vmax, int nv, double n0, double u0, double vt,
                                 double pertAmp, double k) {
  SpeciesParams elc;
  elc.name = "elc";
  elc.charge = -1.0;
  elc.mass = 1.0;
  elc.velGrid = Grid::make({nv}, {-vmax}, {vmax});
  elc.init = [=](const double* z) {
    const double x = z[0], v = z[1];
    const double dv = v - u0;
    return n0 * (1.0 + pertAmp * std::cos(k * x)) / std::sqrt(2.0 * kPi * vt * vt) *
           std::exp(-0.5 * dv * dv / (vt * vt));
  };
  return elc;
}

TEST(App, MassConservedThroughFullVMStep) {
  VlasovMaxwellParams params;
  const double k = 0.5;
  params.confGrid = Grid::make({8}, {0.0}, {2.0 * kPi / k});
  params.polyOrder = 2;
  params.family = BasisFamily::Serendipity;
  params.initField = [k](const double* x, double* em) {
    for (int c = 0; c < 8; ++c) em[c] = 0.0;
    em[0] = -0.02 * std::sin(k * x[0]) / k;  // Ex from Poisson for the perturbation
  };
  VlasovMaxwellApp app(params, {electronMaxwellian(6.0, 16, 1.0, 0.0, 1.0, 0.02, k)});
  const double mass0 = app.energetics().mass[0];
  for (int i = 0; i < 10; ++i) app.step();
  const double mass1 = app.energetics().mass[0];
  EXPECT_NEAR(mass1, mass0, 1e-12 * std::abs(mass0));
}

TEST(App, EnergyConservedWithCentralFluxes) {
  // Central fluxes for both Vlasov and Maxwell: total energy is conserved
  // by the spatial scheme; the only drift is the O(dt^3) RK3 error.
  VlasovMaxwellParams params;
  const double k = 0.5;
  params.confGrid = Grid::make({8}, {0.0}, {2.0 * kPi / k});
  params.polyOrder = 2;
  params.family = BasisFamily::Serendipity;
  params.field.flux = FluxType::Central;
  params.cflFrac = 0.4;
  params.initField = [k](const double* x, double* em) {
    for (int c = 0; c < 8; ++c) em[c] = 0.0;
    em[0] = -0.05 * std::sin(k * x[0]) / k;
  };
  SpeciesParams elc = electronMaxwellian(6.0, 16, 1.0, 0.0, 1.0, 0.05, k);
  elc.flux = FluxType::Central;
  VlasovMaxwellApp app(params, {elc});

  const double e0 = app.energetics().totalEnergy();
  for (int i = 0; i < 40; ++i) app.step();
  const double e1 = app.energetics().totalEnergy();
  EXPECT_NEAR(e1, e0, 2e-6 * std::abs(e0));
}

TEST(App, EnergyNearlyConservedWithPenaltyFluxes) {
  // Penalty fluxes add controlled dissipation: energy decays slightly but
  // must not grow (an aliasing instability would grow it).
  VlasovMaxwellParams params;
  const double k = 0.5;
  params.confGrid = Grid::make({8}, {0.0}, {2.0 * kPi / k});
  params.polyOrder = 2;
  params.family = BasisFamily::Serendipity;
  params.initField = [k](const double* x, double* em) {
    for (int c = 0; c < 8; ++c) em[c] = 0.0;
    em[0] = -0.05 * std::sin(k * x[0]) / k;
  };
  VlasovMaxwellApp app(params, {electronMaxwellian(6.0, 16, 1.0, 0.0, 1.0, 0.05, k)});
  const double e0 = app.energetics().totalEnergy();
  for (int i = 0; i < 40; ++i) app.step();
  const double e1 = app.energetics().totalEnergy();
  EXPECT_LE(e1, e0 * (1.0 + 1e-10));
  EXPECT_GT(e1, 0.98 * e0);
}

TEST(App, LandauDampingRateMatchesTheory) {
  // Standard benchmark: k vt/wp = 0.5 Langmuir oscillations damp at
  // gamma ~= -0.1533 (field energy at 2*gamma). This is the paper's class
  // of delicate field-particle physics that aliasing would destroy.
  VlasovMaxwellParams params;
  const double k = 0.5;
  params.confGrid = Grid::make({16}, {0.0}, {2.0 * kPi / k});
  params.polyOrder = 2;
  params.family = BasisFamily::Serendipity;
  params.cflFrac = 0.8;
  const double amp = 1e-3;
  params.initField = [k, amp](const double* x, double* em) {
    for (int c = 0; c < 8; ++c) em[c] = 0.0;
    em[0] = -amp * std::sin(k * x[0]) / k;
  };
  VlasovMaxwellApp app(params, {electronMaxwellian(6.0, 24, 1.0, 0.0, 1.0, amp, k)});

  // Record field-energy peaks over several plasma periods.
  std::vector<double> times, peaks;
  double prev2 = 0.0, prev1 = 0.0, tPrev1 = 0.0;
  const double tEnd = 20.0;
  while (app.time() < tEnd) {
    app.step();
    const double fe = app.energetics().electricEnergy;
    if (prev1 > prev2 && prev1 > fe && prev1 > 1e-12) {
      times.push_back(tPrev1);
      peaks.push_back(prev1);
    }
    prev2 = prev1;
    prev1 = fe;
    tPrev1 = app.time();
  }
  ASSERT_GE(times.size(), 4u);
  // Least-squares slope of log(peak) vs time = 2*gamma.
  double st = 0, sy = 0, stt = 0, sty = 0;
  const auto n = static_cast<double>(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    st += times[i];
    sy += std::log(peaks[i]);
    stt += times[i] * times[i];
    sty += times[i] * std::log(peaks[i]);
  }
  const double slope = (n * sty - st * sy) / (n * stt - st * st);
  const double gamma = 0.5 * slope;
  EXPECT_NEAR(gamma, -0.1533, 0.02);
}

TEST(App, TwoStreamInstabilityGrows) {
  // Counter-streaming beams drive the two-stream instability: electric
  // field energy must grow by orders of magnitude from a seed perturbation.
  VlasovMaxwellParams params;
  const double k = 0.4;
  params.confGrid = Grid::make({16}, {0.0}, {2.0 * kPi / k});
  params.polyOrder = 2;
  params.family = BasisFamily::Serendipity;
  params.cflFrac = 0.8;
  // Cold symmetric beams are unstable for k u0 < omega_p; maximum growth
  // (gamma ~ omega_p/2) sits near k u0 = sqrt(3)/2. Pick k u0 = 0.8.
  const double amp = 1e-4, u0 = 2.0, vt = 0.3;
  params.initField = [k, amp](const double* x, double* em) {
    for (int c = 0; c < 8; ++c) em[c] = 0.0;
    em[0] = -amp * std::sin(k * x[0]) / k;
  };
  SpeciesParams elc;
  elc.charge = -1.0;
  elc.mass = 1.0;
  elc.velGrid = Grid::make({24}, {-6.0}, {6.0});
  elc.init = [=](const double* z) {
    const double x = z[0], v = z[1];
    const double a = std::exp(-0.5 * (v - u0) * (v - u0) / (vt * vt));
    const double b = std::exp(-0.5 * (v + u0) * (v + u0) / (vt * vt));
    return (1.0 + amp * std::cos(k * x)) * 0.5 * (a + b) / std::sqrt(2.0 * kPi * vt * vt);
  };
  VlasovMaxwellApp app(params, {elc});
  const double fe0 = app.energetics().electricEnergy;
  const double etot0 = app.energetics().totalEnergy();
  while (app.time() < 25.0) app.step();
  const double fe1 = app.energetics().electricEnergy;
  EXPECT_GT(fe1, 100.0 * fe0);
  // ... while total energy stays bounded (an aliasing instability grows it).
  EXPECT_TRUE(std::isfinite(fe1));
  EXPECT_LT(app.energetics().totalEnergy(), 1.001 * etot0);
}

}  // namespace
}  // namespace vdg
