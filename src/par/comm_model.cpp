#include "par/comm_model.hpp"

#include <algorithm>
#include <cmath>

#include "par/decomp.hpp"

namespace vdg {

namespace {

ScalingPoint evaluate(const MachineModel& m, std::array<int, 3> conf, int velCells, int nodes) {
  const std::array<int, 3> blocks = factor3(nodes);
  // Local config block (ceil division keeps the model defined off-lattice).
  double local[3], halo = 0.0;
  for (int d = 0; d < 3; ++d)
    local[d] = std::max(1.0, static_cast<double>(conf[static_cast<std::size_t>(d)]) /
                                 blocks[static_cast<std::size_t>(d)]);
  const double cellsPerNode = local[0] * local[1] * local[2] * velCells;

  // Halo: one layer of config ghost cells per face; each config ghost cell
  // carries the whole local velocity grid.
  int messages = 0;
  for (int d = 0; d < 3; ++d) {
    if (blocks[static_cast<std::size_t>(d)] > 1) {
      const double faceCells = cellsPerNode / local[d];
      halo += 2.0 * faceCells;
      messages += 2;
    }
  }

  // On-node efficiency: full when the node has plenty of work, degrading
  // as ranks starve (ILP/occupancy loss; paper Section IV strong scaling).
  const double eff = cellsPerNode / (cellsPerNode + m.starveCells);

  ScalingPoint p;
  p.nodes = nodes;
  const double tComp = cellsPerNode * m.perCellSeconds / std::max(eff, 1e-6);
  const double tComm = messages * m.latency + halo * m.bytesPerCell / m.bandwidth;
  p.timePerStep = tComp + tComm;
  p.commFraction = tComm / p.timePerStep;
  return p;
}

void normalize(std::vector<ScalingPoint>& pts) {
  if (pts.empty()) return;
  const double t0 = pts.front().timePerStep;
  for (ScalingPoint& p : pts) p.relSpeedup = t0 / p.timePerStep;
}

}  // namespace

std::vector<ScalingPoint> weakScaling(const MachineModel& m, std::array<int, 3> baseConf,
                                      int velCells, const std::vector<int>& nodeCounts) {
  std::vector<ScalingPoint> pts;
  for (int nodes : nodeCounts) {
    // Paper setup: 8x nodes <-> 2x config resolution per direction, so the
    // per-node work stays constant.
    const double scale = std::cbrt(static_cast<double>(nodes));
    std::array<int, 3> conf{};
    for (int d = 0; d < 3; ++d)
      conf[static_cast<std::size_t>(d)] = std::max(
          1, static_cast<int>(std::lround(baseConf[static_cast<std::size_t>(d)] * scale)));
    pts.push_back(evaluate(m, conf, velCells, nodes));
  }
  normalize(pts);
  return pts;
}

std::vector<ScalingPoint> strongScaling(const MachineModel& m, std::array<int, 3> conf,
                                        int velCells, const std::vector<int>& nodeCounts) {
  std::vector<ScalingPoint> pts;
  for (int nodes : nodeCounts) pts.push_back(evaluate(m, conf, velCells, nodes));
  normalize(pts);
  return pts;
}

}  // namespace vdg
