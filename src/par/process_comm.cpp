#include "par/process_comm.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "obs/clock.hpp"
#include "obs/profiler.hpp"

namespace vdg {

namespace {
using Clock = MonoClock;

// Frame tags. Halo slabs use d*2 + (side > 0), i.e. [0, kMaxDim*2); the
// reduction star gets the two tags above that range. Matching is by tag,
// so a reduction frame can sit queued behind halo frames (and vice versa)
// without confusing either consumer.
constexpr std::uint32_t kTagReduce = static_cast<std::uint32_t>(kMaxDim) * 2;
constexpr std::uint32_t kTagBcast = kTagReduce + 1;

constexpr std::uint32_t haloTag(int d, int side) {
  return static_cast<std::uint32_t>(d) * 2 + (side > 0 ? 1u : 0u);
}

constexpr std::size_t kHeaderBytes = 2 * sizeof(std::uint32_t);

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw std::runtime_error("ProcessComm: fcntl(O_NONBLOCK) failed: " +
                             std::string(std::strerror(errno)));
}

}  // namespace

// ------------------------------------------------------------- ProcessComm

ProcessComm::ProcessComm(const CartDecomp& decomp, int rank, std::vector<int> peerFds)
    : decomp_(decomp), rank_(rank) {
  assert(static_cast<int>(peerFds.size()) == decomp.numRanks());
  assert(peerFds[static_cast<std::size_t>(rank)] < 0);
  peers_.resize(peerFds.size());
  for (std::size_t p = 0; p < peerFds.size(); ++p) {
    peers_[p].fd = peerFds[p];
    if (peers_[p].fd >= 0) setNonBlocking(peers_[p].fd);
  }
}

ProcessComm::~ProcessComm() {
  for (Peer& p : peers_)
    if (p.fd >= 0) ::close(p.fd);
}

void ProcessComm::peerFailed(int peer, const std::string& what) const {
  throw std::runtime_error("ProcessComm rank " + std::to_string(rank_) + ": peer rank " +
                           std::to_string(peer) + " " + what);
}

void ProcessComm::send(int dst, std::uint32_t tag, const double* data, std::size_t count) {
  Peer& p = peers_[static_cast<std::size_t>(dst)];
  if (p.fd < 0) peerFailed(dst, "connection already closed (send)");
  const std::uint32_t header[2] = {tag, static_cast<std::uint32_t>(count)};
  const std::size_t payloadBytes = count * sizeof(double);
  // Fast path: nothing parked, try to push header+payload straight into
  // the kernel buffer; whatever does not fit parks in the outbox and is
  // drained by pump() while this rank waits on its own receives.
  auto park = [&p](const void* bytes, std::size_t len, std::size_t from) {
    const auto* b = static_cast<const std::uint8_t*>(bytes);
    p.outbox.insert(p.outbox.end(), b + from, b + len);
  };
  auto tryWrite = [&](const void* bytes, std::size_t len) -> std::size_t {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::send(p.fd, static_cast<const std::uint8_t*>(bytes) + off,
                               len - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      peerFailed(dst, "send failed (" + std::string(std::strerror(errno)) +
                          ") — peer likely dead");
    }
    return off;
  };
  if (p.outbox.empty()) {
    const std::size_t sent = tryWrite(header, kHeaderBytes);
    if (sent < kHeaderBytes) {
      park(header, kHeaderBytes, sent);
      park(data, payloadBytes, 0);
      return;
    }
    const std::size_t sentPayload = tryWrite(data, payloadBytes);
    if (sentPayload < payloadBytes) park(data, payloadBytes, sentPayload);
    return;
  }
  // Stream order must be preserved: earlier bytes are still parked, so
  // this frame queues behind them in full.
  park(header, kHeaderBytes, 0);
  park(data, payloadBytes, 0);
}

void ProcessComm::parseFrames(Peer& p) {
  std::size_t off = 0;
  while (p.inbuf.size() - off >= kHeaderBytes) {
    std::uint32_t header[2];
    std::memcpy(header, p.inbuf.data() + off, kHeaderBytes);
    const std::size_t payloadBytes = static_cast<std::size_t>(header[1]) * sizeof(double);
    if (p.inbuf.size() - off < kHeaderBytes + payloadBytes) break;
    Peer::Frame fr;
    fr.tag = header[0];
    fr.data.resize(header[1]);
    std::memcpy(fr.data.data(), p.inbuf.data() + off + kHeaderBytes, payloadBytes);
    p.inbox.push_back(std::move(fr));
    off += kHeaderBytes + payloadBytes;
  }
  if (off > 0) p.inbuf.erase(p.inbuf.begin(), p.inbuf.begin() + static_cast<long>(off));
}

void ProcessComm::pump(int timeoutMs) {
  std::vector<pollfd> pfds;
  std::vector<std::size_t> which;
  pfds.reserve(peers_.size());
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i].fd < 0) continue;
    pollfd pf{};
    pf.fd = peers_[i].fd;
    pf.events = POLLIN;
    if (!peers_[i].outbox.empty()) pf.events |= POLLOUT;
    pfds.push_back(pf);
    which.push_back(i);
  }
  if (pfds.empty()) return;
  const int nready = ::poll(pfds.data(), pfds.size(), timeoutMs);
  if (nready < 0) {
    if (errno == EINTR) return;
    throw std::runtime_error("ProcessComm rank " + std::to_string(rank_) +
                             ": poll failed: " + std::string(std::strerror(errno)));
  }
  for (std::size_t k = 0; k < pfds.size(); ++k) {
    Peer& p = peers_[which[k]];
    const short re = pfds[k].revents;
    if (re & POLLOUT) {
      // Drain as much of the parked stream as the kernel will take.
      std::size_t off = 0;
      while (off < p.outbox.size()) {
        const ssize_t n =
            ::send(p.fd, p.outbox.data() + off, p.outbox.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
          off += static_cast<std::size_t>(n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        peerFailed(static_cast<int>(which[k]),
                   "send failed (" + std::string(std::strerror(errno)) +
                       ") — peer likely dead");
      }
      if (off > 0)
        p.outbox.erase(p.outbox.begin(), p.outbox.begin() + static_cast<long>(off));
    }
    if (re & (POLLIN | POLLHUP | POLLERR)) {
      // Read everything available. 0 bytes = orderly EOF: the peer is
      // gone. That is only fatal once somebody actually needs a frame the
      // peer never sent (recvMatch reports it with context); a peer that
      // already delivered everything and exited is a normal shutdown.
      std::uint8_t buf[65536];
      while (true) {
        const ssize_t n = ::recv(p.fd, buf, sizeof buf, 0);
        if (n > 0) {
          p.inbuf.insert(p.inbuf.end(), buf, buf + n);
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        ::close(p.fd);
        p.fd = -1;
        break;
      }
      parseFrames(p);
    }
  }
}

std::vector<double> ProcessComm::recvMatch(int src, std::uint32_t tag) {
  Peer& p = peers_[static_cast<std::size_t>(src)];
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(recvTimeoutSec_));
  while (true) {
    // Frames are matched by tag but consumed in stream order within a tag
    // (several fields' slabs of the same (dim, side) may be in flight).
    for (auto it = p.inbox.begin(); it != p.inbox.end(); ++it) {
      if (it->tag != tag) continue;
      std::vector<double> data = std::move(it->data);
      p.inbox.erase(it);
      return data;
    }
    if (p.fd < 0)
      peerFailed(src, "closed the connection before a required message arrived "
                      "(tag " + std::to_string(tag) + ") — peer died mid-exchange");
    if (Clock::now() >= deadline)
      peerFailed(src, "timed out after " + std::to_string(recvTimeoutSec_) +
                          " s waiting for a message (tag " + std::to_string(tag) +
                          ") — peer wedged or deadlocked");
    pump(/*timeoutMs=*/100);
  }
}

void ProcessComm::flush() {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(recvTimeoutSec_));
  while (true) {
    bool pending = false;
    for (const Peer& p : peers_)
      if (p.fd >= 0 && !p.outbox.empty()) pending = true;
    if (!pending) return;
    if (Clock::now() >= deadline)
      throw std::runtime_error("ProcessComm rank " + std::to_string(rank_) +
                               ": flush timed out — a peer stopped reading");
    pump(/*timeoutMs=*/100);
  }
}

void ProcessComm::syncConfGhostsDim(Field& f, int d, bool periodic) {
  beginSyncConfGhostsDim(f, d, periodic);
  endSyncConfGhostsDim(f, d, periodic);
}

void ProcessComm::beginSyncConfGhostsDim(Field& f, int d, bool periodic) {
  assert(d < decomp_.cdim);
  assert(periodic == decomp_.periodic[static_cast<std::size_t>(d)]);
  (void)periodic;
  // Same protocol as ThreadComm::Endpoint (see communicator.cpp for the
  // blocks==1 and kNoNeighbor rationale) — only the channel push is
  // replaced by a framed socket send.
  if (decomp_.blocks[static_cast<std::size_t>(d)] == 1) return;
  const std::size_t n = f.ghostSlabSize(d);
  const int ln = decomp_.neighbor(rank_, d, -1);
  const int un = decomp_.neighbor(rank_, d, +1);
  std::vector<double> buf(n);
  auto postSlab = [&](int mySide, int dst, int dstSide) {
    const auto t0 = Clock::now();
    f.packGhost(d, mySide, buf);
    const auto t1 = Clock::now();
    stats_.packSec += secondsBetween(t0, t1);
    send(dst, haloTag(d, dstSide), buf.data(), buf.size());
    const auto t2 = Clock::now();
    stats_.postSec += secondsBetween(t1, t2);
    if (prof_) {
      prof_->leafZone("halo:pack", t0, t1);
      prof_->leafZone("halo:post", t1, t2);
    }
  };
  if (ln != kNoNeighbor) postSlab(-1, ln, +1);
  if (un != kNoNeighbor) postSlab(+1, un, -1);
}

void ProcessComm::endSyncConfGhostsDim(Field& f, int d, bool periodic) {
  assert(d < decomp_.cdim);
  if (decomp_.blocks[static_cast<std::size_t>(d)] == 1) {
    if (periodic) f.syncPeriodic(d);
    return;
  }
  const std::size_t n = f.ghostSlabSize(d);
  const int ln = decomp_.neighbor(rank_, d, -1);
  const int un = decomp_.neighbor(rank_, d, +1);
  auto receiveSlab = [&](int src, int side) {
    const auto t0 = Clock::now();
    const std::vector<double> buf = recvMatch(src, haloTag(d, side));
    const auto t1 = Clock::now();
    stats_.waitSec += secondsBetween(t0, t1);
    assert(buf.size() == n);
    (void)n;
    f.unpackGhost(d, side, buf);
    const auto t2 = Clock::now();
    stats_.unpackSec += secondsBetween(t1, t2);
    if (prof_) {
      prof_->leafZone("halo:wait", t0, t1);
      prof_->leafZone("halo:unpack", t1, t2);
    }
    stats_.bytes += buf.size() * sizeof(double);
    stats_.cells += buf.size() / static_cast<std::size_t>(f.ncomp());
  };
  if (ln != kNoNeighbor) receiveSlab(ln, -1);
  if (un != kNoNeighbor) receiveSlab(un, +1);
}

template <typename Op>
double ProcessComm::reduce(double v, Op op) {
  // Rank-0 star with the fold running in rank order on rank 0 — the exact
  // operation sequence of the ThreadComm/serial fold, so the result bits
  // match those backends, and the broadcast hands every rank those bits.
  const auto t0 = Clock::now();
  double acc = v;
  if (rank_ == 0) {
    for (int r = 1; r < numRanks(); ++r) {
      const std::vector<double> m = recvMatch(r, kTagReduce);
      assert(m.size() == 1);
      acc = op(acc, m[0]);
    }
    for (int r = 1; r < numRanks(); ++r) send(r, kTagBcast, &acc, 1);
  } else {
    send(0, kTagReduce, &v, 1);
    const std::vector<double> m = recvMatch(0, kTagBcast);
    assert(m.size() == 1);
    acc = m[0];
  }
  const auto t1 = Clock::now();
  stats_.reduceSec += secondsBetween(t0, t1);
  if (prof_) prof_->leafZone("halo:reduce", t0, t1);
  return acc;
}

double ProcessComm::allReduceMax(double v) {
  return reduce(v, [](double a, double b) { return std::max(a, b); });
}

double ProcessComm::allReduceSum(double v) {
  return reduce(v, [](double a, double b) { return a + b; });
}

void ProcessComm::allReduceSum(std::span<double> v) {
  const auto t0 = Clock::now();
  if (rank_ == 0) {
    redScratch_.assign(v.begin(), v.end());
    for (int r = 1; r < numRanks(); ++r) {
      const std::vector<double> m = recvMatch(r, kTagReduce);
      assert(m.size() == v.size());
      for (std::size_t i = 0; i < v.size(); ++i) redScratch_[i] += m[i];
    }
    for (int r = 1; r < numRanks(); ++r) send(r, kTagBcast, redScratch_.data(), redScratch_.size());
    std::copy(redScratch_.begin(), redScratch_.end(), v.begin());
  } else {
    send(0, kTagReduce, v.data(), v.size());
    const std::vector<double> m = recvMatch(0, kTagBcast);
    assert(m.size() == v.size());
    std::copy(m.begin(), m.end(), v.begin());
  }
  // Same booking convention as ThreadComm (each rank reads every *other*
  // rank's block), so cross-backend stats stay comparable even though the
  // star's physical traffic is asymmetric.
  stats_.bytes += static_cast<std::uint64_t>(numRanks() - 1) *
                  static_cast<std::uint64_t>(v.size()) * sizeof(double);
  const auto t1 = Clock::now();
  stats_.reduceSec += secondsBetween(t0, t1);
  if (prof_) prof_->leafZone("halo:reduce", t0, t1);
}

void ProcessComm::barrier() {
  // A scalar reduction is already a full synchronization of the star.
  (void)reduce(0.0, [](double a, double b) { return a + b; });
}

// ------------------------------------------------------------ ProcessGroup

namespace {

/// Result-pipe frame the child writes before _exit:
///   [u8 ok][u64 count][payload]   ok=1: count doubles; ok=0: count error
///   chars. Parsed leniently — a child that died early simply leaves a
///   short (or empty) pipe, which the parent reports via the exit status.
void writeAll(int fd, const void* bytes, std::size_t len) {
  const auto* b = static_cast<const std::uint8_t*>(bytes);
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, b + off, len - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // parent gone; nothing useful left to do in the child
  }
}

void writeResult(int fd, bool ok, const void* payload, std::uint64_t count,
                 std::size_t elemSize) {
  const std::uint8_t okByte = ok ? 1 : 0;
  writeAll(fd, &okByte, 1);
  writeAll(fd, &count, sizeof count);
  writeAll(fd, payload, static_cast<std::size_t>(count) * elemSize);
}

}  // namespace

std::vector<ProcessGroup::RankOutcome> ProcessGroup::run(const CartDecomp& decomp,
                                                         const RankFn& fn,
                                                         double recvTimeoutSec) {
  const int n = decomp.numRanks();
  const std::size_t un = static_cast<std::size_t>(n);
  // Full socketpair mesh, created before any fork so every child inherits
  // exactly the row it needs. mesh[i][j] is rank i's end of the (i, j)
  // connection.
  std::vector<std::vector<int>> mesh(un, std::vector<int>(un, -1));
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
        throw std::runtime_error("ProcessGroup: socketpair failed: " +
                                 std::string(std::strerror(errno)));
      mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = sv[0];
      mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = sv[1];
    }
  std::vector<std::array<int, 2>> resPipe(un);
  for (std::size_t r = 0; r < un; ++r)
    if (::pipe(resPipe[r].data()) != 0)
      throw std::runtime_error("ProcessGroup: pipe failed: " +
                               std::string(std::strerror(errno)));

  // Children inherit copies of the parent's stdio buffers; flush now so a
  // child's own output can never replay the parent's buffered text.
  std::fflush(nullptr);
  std::vector<pid_t> pids(un, -1);
  for (int r = 0; r < n; ++r) {
    const pid_t pid = ::fork();
    if (pid < 0)
      throw std::runtime_error("ProcessGroup: fork failed: " +
                               std::string(std::strerror(errno)));
    if (pid != 0) {
      pids[static_cast<std::size_t>(r)] = pid;
      continue;
    }
    // ---- child: rank r. Keep only this rank's mesh row and result write
    // end; everything else is other processes' business.
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        const int fd = mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
        if (fd >= 0 && i != r) ::close(fd);
      }
    for (std::size_t rr = 0; rr < un; ++rr) {
      ::close(resPipe[rr][0]);
      if (static_cast<int>(rr) != r) ::close(resPipe[rr][1]);
    }
    const int resFd = resPipe[static_cast<std::size_t>(r)][1];
    int status = 0;
    try {
      ProcessComm comm(decomp, r, mesh[static_cast<std::size_t>(r)]);
      comm.setRecvTimeout(recvTimeoutSec);
      const std::vector<double> vals = fn(comm);
      // Peers may still be blocked on this rank's last slabs: push every
      // parked byte before the sockets close at _exit.
      comm.flush();
      writeResult(resFd, true, vals.data(), vals.size(), sizeof(double));
    } catch (const std::exception& e) {
      const std::string what = e.what();
      writeResult(resFd, false, what.data(), what.size(), 1);
      status = 1;
    } catch (...) {
      const std::string what = "unknown exception";
      writeResult(resFd, false, what.data(), what.size(), 1);
      status = 1;
    }
    ::close(resFd);
    // _exit, not exit: no atexit handlers or stdio flushes of inherited
    // parent state (the test binary's output streams) in the child.
    ::_exit(status);
  }

  // ---- parent: drop the children's fds, then drain every result pipe to
  // EOF before reaping. Reads run in a poll loop across all pipes at once
  // so a large result on one rank cannot deadlock against another.
  for (auto& row : mesh)
    for (int fd : row)
      if (fd >= 0) ::close(fd);
  for (std::size_t r = 0; r < un; ++r) ::close(resPipe[r][1]);

  std::vector<std::vector<std::uint8_t>> raw(un);
  {
    std::vector<bool> open(un, true);
    const auto deadline = Clock::now() +
                          std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(recvTimeoutSec + 30.0));
    std::size_t nOpen = un;
    while (nOpen > 0) {
      if (Clock::now() >= deadline) {
        // Children wedged past their own timeout margin: kill and move on
        // so the caller sees failed outcomes instead of a hung parent.
        for (pid_t pid : pids)
          if (pid > 0) ::kill(pid, SIGKILL);
        break;
      }
      std::vector<pollfd> pfds;
      std::vector<std::size_t> which;
      for (std::size_t r = 0; r < un; ++r)
        if (open[r]) {
          pollfd pf{};
          pf.fd = resPipe[r][0];
          pf.events = POLLIN;
          pfds.push_back(pf);
          which.push_back(r);
        }
      const int nready = ::poll(pfds.data(), pfds.size(), 1000);
      if (nready < 0 && errno != EINTR)
        throw std::runtime_error("ProcessGroup: poll failed: " +
                                 std::string(std::strerror(errno)));
      for (std::size_t k = 0; k < pfds.size(); ++k) {
        if (!(pfds[k].revents & (POLLIN | POLLHUP | POLLERR))) continue;
        std::uint8_t buf[65536];
        const ssize_t nr = ::read(pfds[k].fd, buf, sizeof buf);
        if (nr > 0) {
          raw[which[k]].insert(raw[which[k]].end(), buf, buf + nr);
        } else if (nr == 0 || (nr < 0 && errno != EINTR && errno != EAGAIN)) {
          open[which[k]] = false;
          --nOpen;
        }
      }
    }
  }
  for (std::size_t r = 0; r < un; ++r) ::close(resPipe[r][0]);

  std::vector<RankOutcome> out(un);
  for (std::size_t r = 0; r < un; ++r) {
    int status = 0;
    if (pids[r] > 0) ::waitpid(pids[r], &status, 0);
    out[r].exitStatus = status;
    const std::vector<std::uint8_t>& b = raw[r];
    if (b.size() < 1 + sizeof(std::uint64_t)) {
      out[r].error = "rank " + std::to_string(r) + " exited without a result (status " +
                     std::to_string(status) + ")";
      continue;
    }
    std::uint64_t count = 0;
    std::memcpy(&count, b.data() + 1, sizeof count);
    const std::size_t elem = b[0] ? sizeof(double) : 1;
    if (b.size() < 1 + sizeof(std::uint64_t) + count * elem) {
      out[r].error = "rank " + std::to_string(r) + " result truncated (status " +
                     std::to_string(status) + ")";
      continue;
    }
    const std::uint8_t* payload = b.data() + 1 + sizeof(std::uint64_t);
    if (b[0]) {
      out[r].ok = true;
      out[r].values.resize(count);
      std::memcpy(out[r].values.data(), payload, count * sizeof(double));
    } else {
      out[r].error.assign(reinterpret_cast<const char*>(payload), count);
    }
  }
  return out;
}

}  // namespace vdg
