#pragma once
// MPI-backed Communicator: the fourth backend behind the same seam, used
// when the toolchain has an MPI (CMake's find_package(MPI) defines
// VDG_HAVE_MPI and links MPI::MPI_CXX; without it this header still
// compiles and mpiAvailable() reports false, so call sites need no #ifdef
// of their own — only this pair of files touches <mpi.h>).
//
// The protocol is the ProcessComm one translated to MPI primitives:
//   - split-phase halo: begin packs each boundary slab and MPI_Isends it
//     with tag dim*2+receiverSide, and posts the matching MPI_Irecvs for
//     this rank's ghost sides; end waits the FIFO-ordered pending recv for
//     each side and unpacks. Several fields may be in flight at once —
//     MPI's non-overtaking rule per (source, tag) gives the same FIFO the
//     socket stream gives ProcessComm.
//   - reductions: MPI_Gather to rank 0, fold **in rank order** (never
//     MPI_Allreduce, whose reduction order is implementation-defined),
//     MPI_Bcast the folded bits — so dt sequences and Krylov histories
//     stay bitwise identical to the serial/ThreadComm/ProcessComm folds.
//
// MPI_Init/Finalize belong to the launcher (tools/vdg_launch), not to this
// class: constructing an MpiComm requires an initialized MPI runtime.

#include "par/communicator.hpp"
#include "par/decomp.hpp"

namespace vdg {

/// True when this build carries the MPI backend (VDG_HAVE_MPI).
[[nodiscard]] bool mpiAvailable();

}  // namespace vdg

#ifdef VDG_HAVE_MPI

#include <mpi.h>

#include <cstdint>
#include <deque>
#include <vector>

namespace vdg {

/// One MPI process's endpoint. Rank/size come from the communicator
/// (MPI_COMM_WORLD by default) and must agree with the CartDecomp —
/// launch with exactly decomp.numRanks() processes.
class MpiComm final : public Communicator {
 public:
  explicit MpiComm(const CartDecomp& decomp, MPI_Comm comm = MPI_COMM_WORLD);
  ~MpiComm() override;
  MpiComm(const MpiComm&) = delete;
  MpiComm& operator=(const MpiComm&) = delete;

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int numRanks() const override { return size_; }
  [[nodiscard]] const CartDecomp& decomp() const { return decomp_; }

  [[nodiscard]] bool supportsSplitSync() const override { return true; }
  void syncConfGhostsDim(Field& f, int d, bool periodic) override;
  void beginSyncConfGhostsDim(Field& f, int d, bool periodic) override;
  void endSyncConfGhostsDim(Field& f, int d, bool periodic) override;

  [[nodiscard]] double allReduceMax(double v) override;
  [[nodiscard]] double allReduceSum(double v) override;
  void allReduceSum(std::span<double> v) override;
  void barrier() override;

  [[nodiscard]] HaloStats haloStats() const override { return stats_; }

 private:
  struct Pending {
    MPI_Request req = MPI_REQUEST_NULL;
    std::vector<double> buf;
  };

  template <typename Op>
  double reduce(double v, Op op);
  /// Retire completed sends (non-blocking) so buffers are reclaimed.
  void reapSends();

  CartDecomp decomp_;
  MPI_Comm comm_;
  int rank_ = 0;
  int size_ = 1;
  /// FIFO of posted-but-unwaited receives per (dim, ghost side).
  std::deque<Pending> recvQ_[kMaxDim][2];
  std::vector<Pending> sendQ_;
  HaloStats stats_;
  std::vector<double> gatherBuf_;  ///< rank-0 fold staging
};

}  // namespace vdg

#endif  // VDG_HAVE_MPI
