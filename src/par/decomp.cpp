#include "par/decomp.hpp"

#include <cmath>
#include <stdexcept>

namespace vdg {

SlabDecomp SlabDecomp::make(int totalCells, int numRanks, int dim) {
  if (numRanks < 1 || totalCells < numRanks)
    throw std::invalid_argument("SlabDecomp: need at least one cell per rank");
  SlabDecomp d;
  d.dim = dim;
  d.numRanks = numRanks;
  const int base = totalCells / numRanks;
  const int rem = totalCells % numRanks;
  int pos = 0;
  for (int r = 0; r < numRanks; ++r) {
    const int n = base + (r < rem ? 1 : 0);
    d.start.push_back(pos);
    d.count.push_back(n);
    pos += n;
  }
  return d;
}

Grid SlabDecomp::localGrid(const Grid& global, int rank) const {
  Grid g = global;
  const auto dimIdx = static_cast<std::size_t>(dim);
  const double dx = global.dx(dim);
  g.cells[dimIdx] = count[static_cast<std::size_t>(rank)];
  g.lower[dimIdx] = global.lower[dimIdx] + start[static_cast<std::size_t>(rank)] * dx;
  g.upper[dimIdx] = g.lower[dimIdx] + count[static_cast<std::size_t>(rank)] * dx;
  return g;
}

std::array<int, 3> factor3(int nodes) {
  std::array<int, 3> best{nodes, 1, 1};
  double bestScore = 1e300;
  for (int a = 1; a <= nodes; ++a) {
    if (nodes % a) continue;
    const int bc = nodes / a;
    for (int b = 1; b <= bc; ++b) {
      if (bc % b) continue;
      const int c = bc / b;
      // Prefer near-cubic blocks: for a cube of N^3 cells split a x b x c,
      // the halo surface is proportional to (a + b + c) / (a b c), and
      // a b c = nodes is fixed, so minimize a + b + c.
      const double s = a + b + c;
      if (s < bestScore) {
        bestScore = s;
        best = {a, b, c};
      }
    }
  }
  return best;
}

}  // namespace vdg
