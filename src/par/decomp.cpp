#include "par/decomp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace vdg {

namespace {

/// Near-equal partition of n cells into k contiguous blocks.
void partition(int n, int k, std::vector<int>& start, std::vector<int>& count) {
  const int base = n / k;
  const int rem = n % k;
  int pos = 0;
  for (int b = 0; b < k; ++b) {
    const int c = base + (b < rem ? 1 : 0);
    start.push_back(pos);
    count.push_back(c);
    pos += c;
  }
}

/// Exhaustively enumerate factorizations of `ranks` into blocks over dims
/// [dim, cdim), accumulating into `blocks`; keep the best complete
/// assignment in `best`. Ordering: smallest maximum per-rank cell load
/// first (compute dominates), halo surface (sum over decomposed dims of
/// the transverse local area) as tie-break.
void searchBlocks(const Grid& conf, int cdim, int dim, int ranks,
                  std::array<int, kMaxDim>& blocks, std::array<int, kMaxDim>& best,
                  long long& bestLoad, long long& bestHalo) {
  if (dim == cdim) {
    if (ranks != 1) return;
    long long load = 1, halo = 0;
    for (int d = 0; d < cdim; ++d) {
      const auto s = static_cast<std::size_t>(d);
      // Worst-case (ceil) local extent of dimension d.
      load *= (conf.cells[s] + blocks[s] - 1) / blocks[s];
    }
    for (int d = 0; d < cdim; ++d) {
      const auto s = static_cast<std::size_t>(d);
      if (blocks[s] == 1) continue;  // self-wrap, no inter-rank traffic
      long long area = 2;
      for (int k = 0; k < cdim; ++k) {
        if (k == d) continue;
        const auto t = static_cast<std::size_t>(k);
        area *= (conf.cells[t] + blocks[t] - 1) / blocks[t];
      }
      halo += area;
    }
    if (load < bestLoad || (load == bestLoad && halo < bestHalo)) {
      bestLoad = load;
      bestHalo = halo;
      best = blocks;
    }
    return;
  }
  const auto s = static_cast<std::size_t>(dim);
  for (int b = 1; b <= std::min(ranks, conf.cells[s]); ++b) {
    if (ranks % b) continue;
    blocks[s] = b;
    searchBlocks(conf, cdim, dim + 1, ranks / b, blocks, best, bestLoad, bestHalo);
  }
  blocks[s] = 1;
}

}  // namespace

SlabDecomp SlabDecomp::make(int totalCells, int numRanks, int dim, bool periodic) {
  if (numRanks < 1 || totalCells < numRanks)
    throw std::invalid_argument("SlabDecomp: need at least one cell per rank");
  SlabDecomp d;
  d.dim = dim;
  d.numRanks = numRanks;
  d.periodic = periodic;
  partition(totalCells, numRanks, d.start, d.count);
  return d;
}

int SlabDecomp::neighbor(int rank, int side) const {
  const int n = rank + side;
  if (n >= 0 && n < numRanks) return n;
  if (!periodic) return kNoNeighbor;
  return (n + numRanks) % numRanks;
}

Grid SlabDecomp::localGrid(const Grid& global, int rank) const {
  return global.subgrid(dim, start[static_cast<std::size_t>(rank)],
                        count[static_cast<std::size_t>(rank)]);
}

CartDecomp CartDecomp::make(const Grid& confGrid, int numRanks) {
  std::array<bool, kMaxDim> allPeriodic{};
  allPeriodic.fill(true);
  return make(confGrid, numRanks, allPeriodic);
}

CartDecomp CartDecomp::make(const Grid& confGrid, int numRanks,
                            const std::array<bool, kMaxDim>& periodicDims) {
  if (numRanks < 1) throw std::invalid_argument("CartDecomp: numRanks must be >= 1");
  CartDecomp d;
  d.cdim = confGrid.ndim;
  d.periodic = periodicDims;
  // Exhaustive search over factorizations of numRanks into per-dim block
  // counts (each <= the dimension's cells): divisor tuples are few, and
  // greedy placement misses valid tilings (e.g. 12 ranks on 4x3 must be
  // 4x3, but a greedy largest-factor pass strands a factor 2).
  std::array<int, kMaxDim> blocks{}, best{};
  long long bestLoad = std::numeric_limits<long long>::max(), bestHalo = bestLoad;
  searchBlocks(confGrid, d.cdim, 0, numRanks, blocks, best, bestLoad, bestHalo);
  if (bestLoad == std::numeric_limits<long long>::max())
    throw std::invalid_argument("CartDecomp: cannot place " + std::to_string(numRanks) +
                                " ranks on this grid (no block factorization fits, one cell "
                                "per block minimum)");
  d.blocks = best;
  for (int k = 0; k < d.cdim; ++k) {
    const auto s = static_cast<std::size_t>(k);
    partition(confGrid.cells[s], d.blocks[s], d.start[s], d.count[s]);
  }
  return d;
}

int CartDecomp::numRanks() const {
  int n = 1;
  for (int k = 0; k < cdim; ++k) n *= blocks[static_cast<std::size_t>(k)];
  return n;
}

std::array<int, kMaxDim> CartDecomp::coords(int rank) const {
  std::array<int, kMaxDim> c{};
  for (int k = 0; k < cdim; ++k) {
    const auto s = static_cast<std::size_t>(k);
    c[s] = rank % blocks[s];
    rank /= blocks[s];
  }
  return c;
}

int CartDecomp::rankOf(std::array<int, kMaxDim> c) const {
  int r = 0;
  for (int k = cdim - 1; k >= 0; --k) {
    const auto s = static_cast<std::size_t>(k);
    const int b = blocks[s];
    const int w = ((c[s] % b) + b) % b;  // periodic wrap
    r = r * b + w;
  }
  return r;
}

int CartDecomp::neighbor(int rank, int dim, int side) const {
  std::array<int, kMaxDim> c = coords(rank);
  const auto s = static_cast<std::size_t>(dim);
  c[s] += side;
  if (!periodic[s] && (c[s] < 0 || c[s] >= blocks[s])) return kNoNeighbor;
  return rankOf(c);
}

Grid CartDecomp::localGrid(const Grid& global, int rank) const {
  const std::array<int, kMaxDim> c = coords(rank);
  Grid g = global;
  for (int k = 0; k < cdim; ++k) {
    const auto s = static_cast<std::size_t>(k);
    g = g.subgrid(k, start[s][static_cast<std::size_t>(c[s])],
                  count[s][static_cast<std::size_t>(c[s])]);
  }
  return g;
}

std::array<int, 3> factor3(int nodes) {
  std::array<int, 3> best{nodes, 1, 1};
  double bestScore = 1e300;
  for (int a = 1; a <= nodes; ++a) {
    if (nodes % a) continue;
    const int bc = nodes / a;
    for (int b = 1; b <= bc; ++b) {
      if (bc % b) continue;
      const int c = bc / b;
      // Prefer near-cubic blocks: for a cube of N^3 cells split a x b x c,
      // the halo surface is proportional to (a + b + c) / (a b c), and
      // a b c = nodes is fixed, so minimize a + b + c.
      const double s = a + b + c;
      if (s < bestScore) {
        bestScore = s;
        best = {a, b, c};
      }
    }
  }
  return best;
}

}  // namespace vdg
