#include "par/mpi_comm.hpp"

namespace vdg {

bool mpiAvailable() {
#ifdef VDG_HAVE_MPI
  return true;
#else
  return false;
#endif
}

}  // namespace vdg

#ifdef VDG_HAVE_MPI

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "obs/clock.hpp"
#include "obs/profiler.hpp"

namespace vdg {

namespace {
using Clock = MonoClock;

int haloTag(int d, int side) { return d * 2 + (side > 0 ? 1 : 0); }

void check(int err, const char* what) {
  if (err != MPI_SUCCESS) throw std::runtime_error(std::string("MpiComm: ") + what + " failed");
}

}  // namespace

MpiComm::MpiComm(const CartDecomp& decomp, MPI_Comm comm) : decomp_(decomp), comm_(comm) {
  int inited = 0;
  check(MPI_Initialized(&inited), "MPI_Initialized");
  if (!inited)
    throw std::runtime_error("MpiComm: MPI is not initialized — launch via vdg_launch/mpiexec");
  check(MPI_Comm_rank(comm_, &rank_), "MPI_Comm_rank");
  check(MPI_Comm_size(comm_, &size_), "MPI_Comm_size");
  if (size_ != decomp.numRanks())
    throw std::runtime_error("MpiComm: launched with " + std::to_string(size_) +
                             " processes but the decomposition has " +
                             std::to_string(decomp.numRanks()) + " ranks");
}

MpiComm::~MpiComm() {
  // Cancel anything still pending (abnormal teardown only — a clean run
  // has waited every request).
  for (auto& q : recvQ_)
    for (auto& sideQ : q)
      for (Pending& p : sideQ)
        if (p.req != MPI_REQUEST_NULL) MPI_Cancel(&p.req), MPI_Request_free(&p.req);
  for (Pending& p : sendQ_)
    if (p.req != MPI_REQUEST_NULL) MPI_Wait(&p.req, MPI_STATUS_IGNORE);
}

void MpiComm::reapSends() {
  auto done = [](Pending& p) {
    int flag = 0;
    MPI_Test(&p.req, &flag, MPI_STATUS_IGNORE);
    return flag != 0;
  };
  sendQ_.erase(std::remove_if(sendQ_.begin(), sendQ_.end(), done), sendQ_.end());
}

void MpiComm::syncConfGhostsDim(Field& f, int d, bool periodic) {
  beginSyncConfGhostsDim(f, d, periodic);
  endSyncConfGhostsDim(f, d, periodic);
}

void MpiComm::beginSyncConfGhostsDim(Field& f, int d, bool periodic) {
  assert(d < decomp_.cdim);
  assert(periodic == decomp_.periodic[static_cast<std::size_t>(d)]);
  (void)periodic;
  // Protocol identical to ThreadComm/ProcessComm (see communicator.cpp
  // for the blocks==1 / kNoNeighbor rationale).
  if (decomp_.blocks[static_cast<std::size_t>(d)] == 1) return;
  const std::size_t n = f.ghostSlabSize(d);
  const int ln = decomp_.neighbor(rank_, d, -1);
  const int un = decomp_.neighbor(rank_, d, +1);
  // Receives first, so a fast neighbor's eager send always has a posted
  // match waiting.
  auto postRecv = [&](int src, int side) {
    Pending p;
    p.buf.resize(n);
    check(MPI_Irecv(p.buf.data(), static_cast<int>(n), MPI_DOUBLE, src, haloTag(d, side),
                    comm_, &p.req),
          "MPI_Irecv");
    recvQ_[d][side > 0 ? 1 : 0].push_back(std::move(p));
  };
  if (ln != kNoNeighbor) postRecv(ln, -1);
  if (un != kNoNeighbor) postRecv(un, +1);
  auto postSend = [&](int mySide, int dst, int dstSide) {
    const auto t0 = Clock::now();
    Pending p;
    p.buf.resize(n);
    f.packGhost(d, mySide, p.buf);
    const auto t1 = Clock::now();
    stats_.packSec += secondsBetween(t0, t1);
    check(MPI_Isend(p.buf.data(), static_cast<int>(n), MPI_DOUBLE, dst, haloTag(d, dstSide),
                    comm_, &p.req),
          "MPI_Isend");
    sendQ_.push_back(std::move(p));
    const auto t2 = Clock::now();
    stats_.postSec += secondsBetween(t1, t2);
    if (prof_) {
      prof_->leafZone("halo:pack", t0, t1);
      prof_->leafZone("halo:post", t1, t2);
    }
  };
  if (ln != kNoNeighbor) postSend(-1, ln, +1);
  if (un != kNoNeighbor) postSend(+1, un, -1);
}

void MpiComm::endSyncConfGhostsDim(Field& f, int d, bool periodic) {
  assert(d < decomp_.cdim);
  if (decomp_.blocks[static_cast<std::size_t>(d)] == 1) {
    if (periodic) f.syncPeriodic(d);
    return;
  }
  const int ln = decomp_.neighbor(rank_, d, -1);
  const int un = decomp_.neighbor(rank_, d, +1);
  auto waitRecv = [&](int side) {
    auto& q = recvQ_[d][side > 0 ? 1 : 0];
    assert(!q.empty() && "endSync without a matching beginSync");
    Pending p = std::move(q.front());
    q.pop_front();
    const auto t0 = Clock::now();
    check(MPI_Wait(&p.req, MPI_STATUS_IGNORE), "MPI_Wait");
    const auto t1 = Clock::now();
    stats_.waitSec += secondsBetween(t0, t1);
    f.unpackGhost(d, side, p.buf);
    const auto t2 = Clock::now();
    stats_.unpackSec += secondsBetween(t1, t2);
    if (prof_) {
      prof_->leafZone("halo:wait", t0, t1);
      prof_->leafZone("halo:unpack", t1, t2);
    }
    stats_.bytes += p.buf.size() * sizeof(double);
    stats_.cells += p.buf.size() / static_cast<std::size_t>(f.ncomp());
  };
  if (ln != kNoNeighbor) waitRecv(-1);
  if (un != kNoNeighbor) waitRecv(+1);
  reapSends();
}

template <typename Op>
double MpiComm::reduce(double v, Op op) {
  // Gather + rank-ordered fold + broadcast. Never MPI_Allreduce: its
  // reduction tree (hence double-rounding pattern) is implementation-
  // defined, and the whole point of this seam is one bit pattern across
  // all four backends.
  const auto t0 = Clock::now();
  gatherBuf_.resize(static_cast<std::size_t>(size_));
  check(MPI_Gather(&v, 1, MPI_DOUBLE, gatherBuf_.data(), 1, MPI_DOUBLE, 0, comm_),
        "MPI_Gather");
  double acc = 0.0;
  if (rank_ == 0) {
    acc = gatherBuf_[0];
    for (int r = 1; r < size_; ++r) acc = op(acc, gatherBuf_[static_cast<std::size_t>(r)]);
  }
  check(MPI_Bcast(&acc, 1, MPI_DOUBLE, 0, comm_), "MPI_Bcast");
  const auto t1 = Clock::now();
  stats_.reduceSec += secondsBetween(t0, t1);
  if (prof_) prof_->leafZone("halo:reduce", t0, t1);
  return acc;
}

double MpiComm::allReduceMax(double v) {
  return reduce(v, [](double a, double b) { return std::max(a, b); });
}

double MpiComm::allReduceSum(double v) {
  return reduce(v, [](double a, double b) { return a + b; });
}

void MpiComm::allReduceSum(std::span<double> v) {
  const auto t0 = Clock::now();
  gatherBuf_.resize(v.size() * static_cast<std::size_t>(size_));
  check(MPI_Gather(v.data(), static_cast<int>(v.size()), MPI_DOUBLE, gatherBuf_.data(),
                   static_cast<int>(v.size()), MPI_DOUBLE, 0, comm_),
        "MPI_Gather");
  if (rank_ == 0) {
    // Fold the rank blocks in rank order into block 0 — the ThreadComm /
    // ProcessComm operation sequence exactly.
    for (int r = 1; r < size_; ++r) {
      const double* other = gatherBuf_.data() + static_cast<std::size_t>(r) * v.size();
      for (std::size_t i = 0; i < v.size(); ++i) gatherBuf_[i] += other[i];
    }
  }
  check(MPI_Bcast(gatherBuf_.data(), static_cast<int>(v.size()), MPI_DOUBLE, 0, comm_),
        "MPI_Bcast");
  std::copy(gatherBuf_.begin(), gatherBuf_.begin() + static_cast<long>(v.size()), v.begin());
  stats_.bytes += static_cast<std::uint64_t>(size_ - 1) *
                  static_cast<std::uint64_t>(v.size()) * sizeof(double);
  const auto t1 = Clock::now();
  stats_.reduceSec += secondsBetween(t0, t1);
  if (prof_) prof_->leafZone("halo:reduce", t0, t1);
}

void MpiComm::barrier() { check(MPI_Barrier(comm_), "MPI_Barrier"); }

}  // namespace vdg

#endif  // VDG_HAVE_MPI
