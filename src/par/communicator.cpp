#include "par/communicator.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace vdg {

SerialComm& SerialComm::instance() {
  static SerialComm comm;
  return comm;
}

// -------------------------------------------------------------- ThreadComm

namespace {
using Clock = std::chrono::steady_clock;
}

/// One rank's endpoint into the shared ThreadComm state. The mailbox
/// protocol per dimension:
///   pack my two boundary slabs into my send buffers
///   barrier                      (everyone's slabs are published)
///   unpack my ghosts from my lower/upper neighbors' buffers
///   barrier                      (everyone is done reading; buffers may
///                                 be reused for the next dimension)
/// A dimension with one block has this rank as both neighbors: the
/// exchange is a self pack/unpack, i.e. exactly the periodic wrap of
/// Field::syncPeriodic — one code path for serial and distributed ghosts.
class ThreadComm::Endpoint final : public Communicator {
 public:
  Endpoint(ThreadComm& owner, int rank) : owner_(&owner), rank_(rank) {}

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int numRanks() const override { return owner_->numRanks(); }

  void syncConfGhostsDim(Field& f, int d, bool periodic) override {
    assert(d < owner_->decomp_.cdim);
    // The decomp's periodicity (neighbor lookup) and the caller's flag
    // both derive from the builder's BC configuration; they must agree.
    assert(periodic == owner_->decomp_.periodic[static_cast<std::size_t>(d)]);
    const auto r = static_cast<std::size_t>(rank_);
    if (owner_->decomp_.blocks[static_cast<std::size_t>(d)] == 1) {
      // Non-decomposed dimension: every rank owns the full extent, so
      // the exchange is a pure self-copy — do the periodic wrap locally
      // (bitwise the same cells) and skip both barriers; a non-periodic
      // dimension is entirely the physical fill's job. blocks[] and the
      // periodic flag are shared state, so all ranks take this branch
      // consistently and the collective call sequence stays in lockstep.
      // Untimed: a serial run does this same wrap as part of compute, so
      // booking it as halo would skew the measured compute/halo split.
      if (periodic) f.syncPeriodic(d);
      return;
    }
    const auto t0 = Clock::now();
    const std::size_t n = f.ghostSlabSize(d);
    // kNoNeighbor across a non-periodic domain edge: the slab facing the
    // wall has no consumer, so don't pack it (dead copy that would also
    // pollute the measured halo time), and nothing is unpacked on that
    // side — the ghost slab is left for the edge-owning rank's physical
    // fill. Every rank still enters both barriers, so the collective
    // stays in lockstep regardless of edge ownership.
    const int ln = owner_->decomp_.neighbor(rank_, d, -1);
    const int un = owner_->decomp_.neighbor(rank_, d, +1);
    std::vector<double>& lo = owner_->sendLo_[r];
    std::vector<double>& hi = owner_->sendHi_[r];
    if (ln != kNoNeighbor) {
      lo.resize(n);
      f.packGhost(d, -1, lo);
    }
    if (un != kNoNeighbor) {
      hi.resize(n);
      f.packGhost(d, +1, hi);
    }
    owner_->bar_.arrive_and_wait();
    if (ln != kNoNeighbor) {
      // Neighbors along d share every transverse block extent, so their
      // slab shapes match this rank's exactly.
      assert(owner_->sendHi_[static_cast<std::size_t>(ln)].size() == n);
      f.unpackGhost(d, -1, owner_->sendHi_[static_cast<std::size_t>(ln)]);
    }
    if (un != kNoNeighbor) {
      assert(owner_->sendLo_[static_cast<std::size_t>(un)].size() == n);
      f.unpackGhost(d, +1, owner_->sendLo_[static_cast<std::size_t>(un)]);
    }
    owner_->bar_.arrive_and_wait();
    const std::size_t slabCells = n / static_cast<std::size_t>(f.ncomp());
    if (ln != kNoNeighbor && ln != rank_) {
      bytes_ += n * sizeof(double);
      cells_ += slabCells;
    }
    if (un != kNoNeighbor && un != rank_) {
      bytes_ += n * sizeof(double);
      cells_ += slabCells;
    }
    sec_ += std::chrono::duration<double>(Clock::now() - t0).count();
  }

  [[nodiscard]] double allReduceMax(double v) override {
    return reduce(v, [](double a, double b) { return std::max(a, b); });
  }
  [[nodiscard]] double allReduceSum(double v) override {
    return reduce(v, [](double a, double b) { return a + b; });
  }

  void allReduceSum(std::span<double> v) override {
    // Publish this rank's block, barrier, then every rank folds all
    // blocks element-wise in the same (rank) order — same bits everywhere
    // despite the non-associative +. Mailbox protocol like the halo path.
    const auto t0 = Clock::now();
    std::vector<double>& mine = owner_->reduceVecs_[static_cast<std::size_t>(rank_)];
    mine.assign(v.begin(), v.end());
    owner_->bar_.arrive_and_wait();
    const std::vector<double>& first = owner_->reduceVecs_[0];
    assert(first.size() == v.size());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = first[i];
    for (int r = 1; r < numRanks(); ++r) {
      const std::vector<double>& other = owner_->reduceVecs_[static_cast<std::size_t>(r)];
      assert(other.size() == v.size());
      for (std::size_t i = 0; i < v.size(); ++i) v[i] += other[i];
    }
    owner_->bar_.arrive_and_wait();  // blocks free for the next reduction
    // Book the traffic into the halo stats so the compute/halo split
    // stays honest for electrostatic runs: this rank read every *other*
    // rank's block (its own is a self-copy, free by the same convention
    // as the self-wrap in syncConfGhosts). Coefficient blocks are not
    // ghost cells, so the cell counter is untouched.
    bytes_ += static_cast<std::uint64_t>(numRanks() - 1) *
              static_cast<std::uint64_t>(v.size()) * sizeof(double);
    sec_ += std::chrono::duration<double>(Clock::now() - t0).count();
  }

  void barrier() override { owner_->bar_.arrive_and_wait(); }

  [[nodiscard]] std::uint64_t haloBytes() const override { return bytes_; }
  [[nodiscard]] std::uint64_t haloCells() const override { return cells_; }
  [[nodiscard]] double haloSeconds() const override { return sec_; }

 private:
  template <typename Op>
  double reduce(double v, Op op) {
    owner_->reduceSlots_[static_cast<std::size_t>(rank_)] = v;
    owner_->bar_.arrive_and_wait();
    // Every rank folds the slots in the same (rank) order, so all see the
    // same bits even for non-associative ops like +.
    double acc = owner_->reduceSlots_[0];
    for (int r = 1; r < numRanks(); ++r)
      acc = op(acc, owner_->reduceSlots_[static_cast<std::size_t>(r)]);
    owner_->bar_.arrive_and_wait();  // slots free for the next reduction
    return acc;
  }

  ThreadComm* owner_;
  int rank_;
  std::uint64_t bytes_ = 0, cells_ = 0;
  double sec_ = 0.0;
};

ThreadComm::~ThreadComm() = default;

Communicator& ThreadComm::endpoint(int rank) const {
  return *endpoints_[static_cast<std::size_t>(rank)];
}

ThreadComm::ThreadComm(const CartDecomp& decomp)
    : decomp_(decomp), bar_(decomp.numRanks()), sendLo_(static_cast<std::size_t>(decomp.numRanks())),
      sendHi_(static_cast<std::size_t>(decomp.numRanks())),
      reduceSlots_(static_cast<std::size_t>(decomp.numRanks()), 0.0),
      reduceVecs_(static_cast<std::size_t>(decomp.numRanks())) {
  for (int r = 0; r < decomp.numRanks(); ++r)
    endpoints_.push_back(std::make_unique<Endpoint>(*this, r));
}

std::uint64_t ThreadComm::totalHaloBytes() const {
  std::uint64_t b = 0;
  for (const auto& e : endpoints_) b += e->haloBytes();
  return b;
}

std::uint64_t ThreadComm::totalHaloCells() const {
  std::uint64_t c = 0;
  for (const auto& e : endpoints_) c += e->haloCells();
  return c;
}

double ThreadComm::meanHaloSeconds() const {
  double s = 0.0;
  for (const auto& e : endpoints_) s += e->haloSeconds();
  return endpoints_.empty() ? 0.0 : s / static_cast<double>(endpoints_.size());
}

}  // namespace vdg
