#include "par/communicator.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "obs/clock.hpp"
#include "obs/profiler.hpp"

namespace vdg {

SerialComm& SerialComm::instance() {
  static SerialComm comm;
  return comm;
}

// -------------------------------------------------------------- ThreadComm

namespace {
using Clock = MonoClock;
}  // namespace

/// One rank's endpoint into the shared ThreadComm state. The halo protocol
/// per dimension is plain message passing, split into two phases:
///   begin: pack my two boundary slabs, enqueue each on the directed
///          channel of the neighbor that consumes it
///   end:   dequeue (blocking until delivered) the slab for each of my
///          ghost sides from my neighbors, unpack into the ghost layer
/// The blocking sync is begin immediately followed by end. Channels have
/// one producer and one consumer each (the (receiver, dim, ghost-side)
/// triple pins both ends of the edge), so FIFO order per channel is the
/// begin order — which is what lets several fields be in flight at once.
/// A dimension with one block has this rank as both neighbors: the
/// exchange is a self pack/unpack, i.e. exactly the periodic wrap of
/// Field::syncPeriodic — one code path for serial and distributed ghosts.
class ThreadComm::Endpoint final : public Communicator {
 public:
  Endpoint(ThreadComm& owner, int rank) : owner_(&owner), rank_(rank) {}

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int numRanks() const override { return owner_->numRanks(); }

  [[nodiscard]] bool supportsSplitSync() const override { return true; }

  void syncConfGhostsDim(Field& f, int d, bool periodic) override {
    beginSyncConfGhostsDim(f, d, periodic);
    endSyncConfGhostsDim(f, d, periodic);
  }

  void beginSyncConfGhostsDim(Field& f, int d, bool periodic) override {
    assert(d < owner_->decomp_.cdim);
    // The decomp's periodicity (neighbor lookup) and the caller's flag
    // both derive from the builder's BC configuration; they must agree.
    assert(periodic == owner_->decomp_.periodic[static_cast<std::size_t>(d)]);
    (void)periodic;
    if (owner_->decomp_.blocks[static_cast<std::size_t>(d)] == 1) {
      // Non-decomposed dimension: every rank owns the full extent, so the
      // exchange is a pure self-copy. The wrap runs at end time (it writes
      // only ghosts, which no caller may touch between begin and end, and
      // reads interior cells the compute phase only reads — so deferring
      // it is bitwise free). Nothing to post.
      return;
    }
    // kNoNeighbor across a non-periodic domain edge: the slab facing the
    // wall has no consumer, so don't pack it (dead copy that would also
    // pollute the measured halo time) — the ghost slab on that side is
    // left for the edge-owning rank's physical fill.
    const std::size_t n = f.ghostSlabSize(d);
    const int ln = owner_->decomp_.neighbor(rank_, d, -1);
    const int un = owner_->decomp_.neighbor(rank_, d, +1);
    // My lower interior slab becomes the lower neighbor's *upper* ghost
    // layer, and vice versa (Field::unpackGhost's pairing convention).
    if (ln != kNoNeighbor) post(f, d, -1, ln, +1, n);
    if (un != kNoNeighbor) post(f, d, +1, un, -1, n);
  }

  void endSyncConfGhostsDim(Field& f, int d, bool periodic) override {
    assert(d < owner_->decomp_.cdim);
    if (owner_->decomp_.blocks[static_cast<std::size_t>(d)] == 1) {
      // Untimed: a serial run does this same wrap as part of compute, so
      // booking it as halo would skew the measured compute/halo split. A
      // non-periodic dimension is entirely the physical fill's job.
      if (periodic) f.syncPeriodic(d);
      return;
    }
    const std::size_t n = f.ghostSlabSize(d);
    const int ln = owner_->decomp_.neighbor(rank_, d, -1);
    const int un = owner_->decomp_.neighbor(rank_, d, +1);
    if (ln != kNoNeighbor) receive(f, d, -1, n);
    if (un != kNoNeighbor) receive(f, d, +1, n);
  }

  [[nodiscard]] double allReduceMax(double v) override {
    return reduce(v, [](double a, double b) { return std::max(a, b); });
  }
  [[nodiscard]] double allReduceSum(double v) override {
    return reduce(v, [](double a, double b) { return a + b; });
  }

  void allReduceSum(std::span<double> v) override {
    // Publish this rank's block, barrier, then every rank folds all
    // blocks element-wise in the same (rank) order — same bits everywhere
    // despite the non-associative +.
    const auto t0 = Clock::now();
    std::vector<double>& mine = owner_->reduceVecs_[static_cast<std::size_t>(rank_)];
    mine.assign(v.begin(), v.end());
    owner_->bar_.arrive_and_wait();
    const std::vector<double>& first = owner_->reduceVecs_[0];
    assert(first.size() == v.size());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = first[i];
    for (int r = 1; r < numRanks(); ++r) {
      const std::vector<double>& other = owner_->reduceVecs_[static_cast<std::size_t>(r)];
      assert(other.size() == v.size());
      for (std::size_t i = 0; i < v.size(); ++i) v[i] += other[i];
    }
    owner_->bar_.arrive_and_wait();  // blocks free for the next reduction
    // Book the traffic into the halo stats so the compute/halo split
    // stays honest for electrostatic runs: this rank read every *other*
    // rank's block (its own is a self-copy, free by the same convention
    // as the self-wrap in the ghost sync). Coefficient blocks are not
    // ghost cells, so the cell counter is untouched.
    stats_.bytes += static_cast<std::uint64_t>(numRanks() - 1) *
                    static_cast<std::uint64_t>(v.size()) * sizeof(double);
    const auto t1 = Clock::now();
    stats_.reduceSec += secondsBetween(t0, t1);
    if (prof_) prof_->leafZone("halo:reduce", t0, t1);
  }

  void barrier() override { owner_->bar_.arrive_and_wait(); }

  [[nodiscard]] HaloStats haloStats() const override { return stats_; }

 private:
  void post(const Field& f, int d, int mySide, int dst, int dstSide, std::size_t n) {
    const auto t0 = Clock::now();
    std::vector<double> buf(n);
    f.packGhost(d, mySide, buf);
    const auto t1 = Clock::now();
    stats_.packSec += secondsBetween(t0, t1);
    if (owner_->fault_) owner_->fault_(rank_, dst, d, dstSide);
    Channel& ch = owner_->channel(dst, d, dstSide);
    auto ready = Clock::now();
    if (owner_->latencySec_ > 0.0)
      ready += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(owner_->latencySec_));
    {
      std::lock_guard<std::mutex> lk(ch.m);
      ch.q.push_back({ready, std::move(buf)});
    }
    ch.cv.notify_one();
    const auto t2 = Clock::now();
    stats_.postSec += secondsBetween(t1, t2);
    if (prof_) {
      prof_->leafZone("halo:pack", t0, t1);
      prof_->leafZone("halo:post", t1, t2);
    }
  }

  void receive(Field& f, int d, int side, std::size_t n) {
    const auto t0 = Clock::now();
    Channel& ch = owner_->channel(rank_, d, side);
    std::vector<double> buf;
    {
      std::unique_lock<std::mutex> lk(ch.m);
      ch.cv.wait(lk, [&ch] { return !ch.q.empty(); });
      // Emulated wire latency: the slab is in the queue but not yet
      // "delivered". Single consumer per channel, so sleeping outside the
      // lock cannot race another receiver for the front message.
      const auto ready = ch.q.front().ready;
      if (Clock::now() < ready) {
        lk.unlock();
        std::this_thread::sleep_until(ready);
        lk.lock();
      }
      buf = std::move(ch.q.front().buf);
      ch.q.pop_front();
    }
    const auto t1 = Clock::now();
    stats_.waitSec += secondsBetween(t0, t1);
    // Neighbors along d share every transverse block extent, so their
    // slab shapes match this rank's exactly.
    assert(buf.size() == n);
    (void)n;
    f.unpackGhost(d, side, buf);
    const auto t2 = Clock::now();
    stats_.unpackSec += secondsBetween(t1, t2);
    if (prof_) {
      prof_->leafZone("halo:wait", t0, t1);
      prof_->leafZone("halo:unpack", t1, t2);
    }
    stats_.bytes += buf.size() * sizeof(double);
    stats_.cells += buf.size() / static_cast<std::size_t>(f.ncomp());
  }

  template <typename Op>
  double reduce(double v, Op op) {
    const auto t0 = Clock::now();
    owner_->reduceSlots_[static_cast<std::size_t>(rank_)] = v;
    owner_->bar_.arrive_and_wait();
    // Every rank folds the slots in the same (rank) order, so all see the
    // same bits even for non-associative ops like +.
    double acc = owner_->reduceSlots_[0];
    for (int r = 1; r < numRanks(); ++r)
      acc = op(acc, owner_->reduceSlots_[static_cast<std::size_t>(r)]);
    owner_->bar_.arrive_and_wait();  // slots free for the next reduction
    const auto t1 = Clock::now();
    stats_.reduceSec += secondsBetween(t0, t1);
    if (prof_) prof_->leafZone("halo:reduce", t0, t1);
    return acc;
  }

  ThreadComm* owner_;
  int rank_;
  HaloStats stats_;
};

ThreadComm::~ThreadComm() = default;

Communicator& ThreadComm::endpoint(int rank) const {
  return *endpoints_[static_cast<std::size_t>(rank)];
}

ThreadComm::Channel& ThreadComm::channel(int dst, int d, int side) const {
  const std::size_t i =
      (static_cast<std::size_t>(dst) * static_cast<std::size_t>(kMaxDim) +
       static_cast<std::size_t>(d)) *
          2 +
      (side > 0 ? 1 : 0);
  return *channels_[i];
}

ThreadComm::ThreadComm(const CartDecomp& decomp)
    : decomp_(decomp), bar_(decomp.numRanks()),
      reduceSlots_(static_cast<std::size_t>(decomp.numRanks()), 0.0),
      reduceVecs_(static_cast<std::size_t>(decomp.numRanks())) {
  channels_.resize(static_cast<std::size_t>(decomp.numRanks()) *
                   static_cast<std::size_t>(kMaxDim) * 2);
  for (auto& c : channels_) c = std::make_unique<Channel>();
  for (int r = 0; r < decomp.numRanks(); ++r)
    endpoints_.push_back(std::make_unique<Endpoint>(*this, r));
}

std::uint64_t ThreadComm::totalHaloBytes() const {
  std::uint64_t b = 0;
  for (const auto& e : endpoints_) b += e->haloBytes();
  return b;
}

std::uint64_t ThreadComm::totalHaloCells() const {
  std::uint64_t c = 0;
  for (const auto& e : endpoints_) c += e->haloCells();
  return c;
}

double ThreadComm::meanHaloSeconds() const {
  double s = 0.0;
  for (const auto& e : endpoints_) s += e->haloSeconds();
  return endpoints_.empty() ? 0.0 : s / static_cast<double>(endpoints_.size());
}

}  // namespace vdg
