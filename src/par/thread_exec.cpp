#include "par/thread_exec.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace vdg {

namespace {

using Clock = std::chrono::steady_clock;

double seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Iterate all index tuples of dims [1, ndim) of `grid` interior.
template <typename Fn>
void forEachTransverse(const Grid& grid, Fn fn) {
  MultiIndex idx;
  while (true) {
    fn(idx);
    int d = 1;
    while (d < grid.ndim) {
      if (++idx[d] < grid.cells[static_cast<std::size_t>(d)]) break;
      idx[d] = 0;
      ++d;
    }
    if (d == grid.ndim) break;
  }
}

}  // namespace

DistributedVlasov::DistributedVlasov(const BasisSpec& spec, const Grid& globalPhaseGrid,
                                     int numRanks, const VlasovParams& params)
    : spec_(spec), global_(globalPhaseGrid),
      decomp_(SlabDecomp::make(globalPhaseGrid.cells[0], numRanks, 0)), params_(params),
      np_(basisFor(spec).numModes()) {
  for (int r = 0; r < numRanks; ++r) {
    localGrid_.push_back(decomp_.localGrid(global_, r));
    local_.emplace_back(localGrid_.back(), np_);
    rhs_.emplace_back(localGrid_.back(), np_);
    updater_.emplace_back(spec, localGrid_.back(), params_);
  }
}

void DistributedVlasov::scatter(const Field& global) {
  for (int r = 0; r < numRanks(); ++r) {
    const int off = decomp_.start[static_cast<std::size_t>(r)];
    Field& loc = local_[static_cast<std::size_t>(r)];
    const Grid& lg = localGrid_[static_cast<std::size_t>(r)];
    forEachCell(lg, [&](const MultiIndex& idx) {
      MultiIndex gidx = idx;
      gidx[0] += off;
      std::memcpy(loc.at(idx), global.at(gidx), sizeof(double) * static_cast<std::size_t>(np_));
    });
  }
}

void DistributedVlasov::gather(Field& global) const {
  for (int r = 0; r < numRanks(); ++r) {
    const int off = decomp_.start[static_cast<std::size_t>(r)];
    const Field& loc = local_[static_cast<std::size_t>(r)];
    const Grid& lg = localGrid_[static_cast<std::size_t>(r)];
    forEachCell(lg, [&](const MultiIndex& idx) {
      MultiIndex gidx = idx;
      gidx[0] += off;
      std::memcpy(global.at(gidx), loc.at(idx), sizeof(double) * static_cast<std::size_t>(np_));
    });
  }
}

void DistributedVlasov::haloExchange() {
  // Periodic ring exchange along decomposed dim 0: each rank's lower ghost
  // slab is the left neighbour's last interior slab, and vice versa. The
  // non-decomposed configuration dims (if any) are synced locally.
  const int nr = numRanks();
  for (int r = 0; r < nr; ++r) {
    const int left = (r + nr - 1) % nr;
    const int right = (r + 1) % nr;
    Field& loc = local_[static_cast<std::size_t>(r)];
    const Field& lf = local_[static_cast<std::size_t>(left)];
    const Field& rf = local_[static_cast<std::size_t>(right)];
    const int nLeft = decomp_.count[static_cast<std::size_t>(left)];
    const int nLoc = decomp_.count[static_cast<std::size_t>(r)];
    forEachTransverse(localGrid_[static_cast<std::size_t>(r)], [&](const MultiIndex& t) {
      MultiIndex ghost = t, src = t;
      ghost[0] = -1;
      src[0] = nLeft - 1;
      std::memcpy(loc.at(ghost), lf.at(src), sizeof(double) * static_cast<std::size_t>(np_));
      ghost[0] = nLoc;
      src[0] = 0;
      std::memcpy(loc.at(ghost), rf.at(src), sizeof(double) * static_cast<std::size_t>(np_));
    });
    for (int d = 1; d < spec_.cdim; ++d) loc.syncPeriodic(d);
  }
}

void DistributedVlasov::run(int numSteps, double dt) {
  for (int s = 0; s < numSteps; ++s) {
    const auto t0 = Clock::now();
    haloExchange();
    const auto t1 = Clock::now();
    commSec_ += seconds(t0, t1);

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(numRanks()));
    for (int r = 0; r < numRanks(); ++r) {
      threads.emplace_back([this, r, dt] {
        updater_[static_cast<std::size_t>(r)].advance(local_[static_cast<std::size_t>(r)], nullptr,
                                                      rhs_[static_cast<std::size_t>(r)]);
        local_[static_cast<std::size_t>(r)].axpy(dt, rhs_[static_cast<std::size_t>(r)]);
      });
    }
    for (std::thread& t : threads) t.join();
    compSec_ += seconds(t1, Clock::now());
  }
}

}  // namespace vdg
