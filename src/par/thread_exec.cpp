#include "par/thread_exec.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace vdg {

// ------------------------------------------------------------- ThreadExec

ThreadExec::ThreadExec(int numThreads) {
  if (numThreads <= 0) {
    if (const char* env = std::getenv("VDG_NUM_THREADS")) numThreads = std::atoi(env);
  }
  if (numThreads <= 0) numThreads = static_cast<int>(std::thread::hardware_concurrency());
  nthreads_ = std::max(numThreads, 1);
  // Workers are spawned lazily on the first parallelFor that can use them,
  // so merely constructing updaters (which default to the global pool)
  // costs nothing in serial tools and benches.
}

ThreadExec::~ThreadExec() {
  {
    std::lock_guard lk(m_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadExec::parallelFor(std::size_t n, const RangeFn& fn) {
  if (n == 0) return;
  bool expected = false;
  if (nthreads_ == 1 || n == 1 ||
      !busy_.compare_exchange_strong(expected, true, std::memory_order_acquire)) {
    // Serial pool, trivial loop, or a parallelFor already in flight
    // (nested or concurrent submission): run inline.
    fn(0, n);
    return;
  }
  if (workers_.size() + 1 < static_cast<std::size_t>(nthreads_)) {
    // Lazy spawn on first parallel use; retried on later calls if a
    // previous attempt failed partway (only the busy_ winner reaches
    // here, so no race). Worker t serves chunk t, so ids stay stable
    // across retries.
    try {
      workers_.reserve(static_cast<std::size_t>(nthreads_ - 1));
      for (int t = static_cast<int>(workers_.size()) + 1; t < nthreads_; ++t)
        workers_.emplace_back([this, t] { workerLoop(t); });
    } catch (...) {
      // Thread creation failed (e.g. process thread limit): release the
      // pool and run this loop inline; any workers that did spawn will
      // serve the next parallelFor, and the spawn is retried then.
      busy_.store(false, std::memory_order_release);
      fn(0, n);
      return;
    }
  }
  // Chunk count uses the live worker count (normally nthreads_ - 1, but
  // possibly fewer after a partial spawn failure). Only workers that own a
  // chunk participate in completion accounting: surplus workers may wake,
  // see no chunk, and go straight back to sleep without being waited on —
  // small jobs on big pools don't pay a full-pool synchronization.
  const std::size_t nchunks = std::min(n, workers_.size() + 1);
  {
    std::lock_guard lk(m_);
    job_ = &fn;
    jobN_ = n;
    jobChunks_ = nchunks;
    pending_ = static_cast<int>(nchunks) - 1;
    jobError_ = nullptr;
    ++generation_;
  }
  cv_.notify_all();
  std::exception_ptr err;
  try {
    fn(0, n / nchunks);  // chunk 0 on the calling thread
  } catch (...) {
    err = std::current_exception();
  }
  // Always drain the workers before returning/rethrowing: they hold a
  // reference to fn and to the caller's captured state.
  std::unique_lock lk(m_);
  doneCv_.wait(lk, [this] { return pending_ == 0; });
  job_ = nullptr;
  if (!err) err = jobError_;
  jobError_ = nullptr;
  lk.unlock();
  busy_.store(false, std::memory_order_release);
  if (err) std::rethrow_exception(err);
}

void ThreadExec::workerLoop(int t) {
  std::uint64_t seen = 0;
  while (true) {
    const RangeFn* job = nullptr;
    std::size_t n = 0, nchunks = 0;
    {
      std::unique_lock lk(m_);
      cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
      n = jobN_;
      nchunks = jobChunks_;
    }
    const auto c = static_cast<std::size_t>(t);
    if (!job || c >= nchunks) continue;  // surplus worker: not awaited
    std::exception_ptr err;
    try {
      (*job)(c * n / nchunks, (c + 1) * n / nchunks);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard lk(m_);
      if (err && !jobError_) jobError_ = err;
      if (--pending_ == 0) doneCv_.notify_one();
    }
  }
}

ThreadExec& ThreadExec::global() {
  static ThreadExec exec(0);
  return exec;
}

namespace {

using Clock = std::chrono::steady_clock;

double seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Iterate all index tuples of dims [1, ndim) of `grid` interior.
template <typename Fn>
void forEachTransverse(const Grid& grid, Fn fn) {
  MultiIndex idx;
  while (true) {
    fn(idx);
    int d = 1;
    while (d < grid.ndim) {
      if (++idx[d] < grid.cells[static_cast<std::size_t>(d)]) break;
      idx[d] = 0;
      ++d;
    }
    if (d == grid.ndim) break;
  }
}

}  // namespace

DistributedVlasov::DistributedVlasov(const BasisSpec& spec, const Grid& globalPhaseGrid,
                                     int numRanks, const VlasovParams& params)
    : spec_(spec), global_(globalPhaseGrid),
      decomp_(SlabDecomp::make(globalPhaseGrid.cells[0], numRanks, 0)), params_(params),
      np_(basisFor(spec).numModes()) {
  for (int r = 0; r < numRanks; ++r) {
    localGrid_.push_back(decomp_.localGrid(global_, r));
    local_.emplace_back(localGrid_.back(), np_);
    rhs_.emplace_back(localGrid_.back(), np_);
    updater_.emplace_back(spec, localGrid_.back(), params_);
    // The rank threads are the parallelism here (the MPI stand-in): keep
    // each rank's updater serial so the compute/comm timing split that
    // calibrates the Fig. 3 model is not skewed by intra-rank threading.
    updater_.back().setExecutor(nullptr);
  }
}

void DistributedVlasov::scatter(const Field& global) {
  for (int r = 0; r < numRanks(); ++r) {
    const int off = decomp_.start[static_cast<std::size_t>(r)];
    Field& loc = local_[static_cast<std::size_t>(r)];
    const Grid& lg = localGrid_[static_cast<std::size_t>(r)];
    forEachCell(lg, [&](const MultiIndex& idx) {
      MultiIndex gidx = idx;
      gidx[0] += off;
      std::memcpy(loc.at(idx), global.at(gidx), sizeof(double) * static_cast<std::size_t>(np_));
    });
  }
}

void DistributedVlasov::gather(Field& global) const {
  for (int r = 0; r < numRanks(); ++r) {
    const int off = decomp_.start[static_cast<std::size_t>(r)];
    const Field& loc = local_[static_cast<std::size_t>(r)];
    const Grid& lg = localGrid_[static_cast<std::size_t>(r)];
    forEachCell(lg, [&](const MultiIndex& idx) {
      MultiIndex gidx = idx;
      gidx[0] += off;
      std::memcpy(global.at(gidx), loc.at(idx), sizeof(double) * static_cast<std::size_t>(np_));
    });
  }
}

void DistributedVlasov::haloExchange() {
  // Periodic ring exchange along decomposed dim 0: each rank's lower ghost
  // slab is the left neighbour's last interior slab, and vice versa. The
  // non-decomposed configuration dims (if any) are synced locally.
  const int nr = numRanks();
  for (int r = 0; r < nr; ++r) {
    const int left = (r + nr - 1) % nr;
    const int right = (r + 1) % nr;
    Field& loc = local_[static_cast<std::size_t>(r)];
    const Field& lf = local_[static_cast<std::size_t>(left)];
    const Field& rf = local_[static_cast<std::size_t>(right)];
    const int nLeft = decomp_.count[static_cast<std::size_t>(left)];
    const int nLoc = decomp_.count[static_cast<std::size_t>(r)];
    forEachTransverse(localGrid_[static_cast<std::size_t>(r)], [&](const MultiIndex& t) {
      MultiIndex ghost = t, src = t;
      ghost[0] = -1;
      src[0] = nLeft - 1;
      std::memcpy(loc.at(ghost), lf.at(src), sizeof(double) * static_cast<std::size_t>(np_));
      ghost[0] = nLoc;
      src[0] = 0;
      std::memcpy(loc.at(ghost), rf.at(src), sizeof(double) * static_cast<std::size_t>(np_));
    });
    for (int d = 1; d < spec_.cdim; ++d) loc.syncPeriodic(d);
  }
}

void DistributedVlasov::run(int numSteps, double dt) {
  for (int s = 0; s < numSteps; ++s) {
    const auto t0 = Clock::now();
    haloExchange();
    const auto t1 = Clock::now();
    commSec_ += seconds(t0, t1);

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(numRanks()));
    for (int r = 0; r < numRanks(); ++r) {
      threads.emplace_back([this, r, dt] {
        updater_[static_cast<std::size_t>(r)].advance(local_[static_cast<std::size_t>(r)], nullptr,
                                                      rhs_[static_cast<std::size_t>(r)]);
        local_[static_cast<std::size_t>(r)].axpy(dt, rhs_[static_cast<std::size_t>(r)]);
      });
    }
    for (std::thread& t : threads) t.join();
    compSec_ += seconds(t1, Clock::now());
  }
}

}  // namespace vdg
