#include "par/thread_exec.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/profiler.hpp"

namespace vdg {

// ------------------------------------------------------------- ThreadExec

ThreadExec::ThreadExec(int numThreads) {
  if (numThreads <= 0) {
    if (const char* env = std::getenv("VDG_NUM_THREADS")) numThreads = std::atoi(env);
  }
  if (numThreads <= 0) numThreads = static_cast<int>(std::thread::hardware_concurrency());
  nthreads_ = std::max(numThreads, 1);
  // Workers are spawned lazily on the first parallelFor that can use them,
  // so merely constructing updaters (which default to the global pool)
  // costs nothing in serial tools and benches.
}

ThreadExec::~ThreadExec() {
  {
    std::lock_guard lk(m_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadExec::parallelFor(std::size_t n, const RangeFn& fn) {
  if (n == 0) return;
  bool expected = false;
  if (nthreads_ == 1 || n == 1 ||
      !busy_.compare_exchange_strong(expected, true, std::memory_order_acquire)) {
    // Serial pool, trivial loop, or a parallelFor already in flight
    // (nested or concurrent submission): run inline.
    fn(0, n);
    return;
  }
  if (workers_.size() + 1 < static_cast<std::size_t>(nthreads_)) {
    // Lazy spawn on first parallel use; retried on later calls if a
    // previous attempt failed partway (only the busy_ winner reaches
    // here, so no race). Worker t serves chunk t, so ids stay stable
    // across retries.
    try {
      workers_.reserve(static_cast<std::size_t>(nthreads_ - 1));
      for (int t = static_cast<int>(workers_.size()) + 1; t < nthreads_; ++t)
        workers_.emplace_back([this, t] { workerLoop(t); });
    } catch (...) {
      // Thread creation failed (e.g. process thread limit): release the
      // pool and run this loop inline; any workers that did spawn will
      // serve the next parallelFor, and the spawn is retried then.
      busy_.store(false, std::memory_order_release);
      fn(0, n);
      return;
    }
  }
  // Chunk count uses the live worker count (normally nthreads_ - 1, but
  // possibly fewer after a partial spawn failure). Only workers that own a
  // chunk participate in completion accounting: surplus workers may wake,
  // see no chunk, and go straight back to sleep without being waited on —
  // small jobs on big pools don't pay a full-pool synchronization.
  const std::size_t nchunks = std::min(n, workers_.size() + 1);
  {
    std::lock_guard lk(m_);
    job_ = &fn;
    jobN_ = n;
    jobChunks_ = nchunks;
    pending_ = static_cast<int>(nchunks) - 1;
    jobError_ = nullptr;
    ++generation_;
  }
  cv_.notify_all();
  std::exception_ptr err;
  try {
    fn(0, n / nchunks);  // chunk 0 on the calling thread
  } catch (...) {
    err = std::current_exception();
  }
  // Always drain the workers before returning/rethrowing: they hold a
  // reference to fn and to the caller's captured state.
  std::unique_lock lk(m_);
  doneCv_.wait(lk, [this] { return pending_ == 0; });
  job_ = nullptr;
  if (!err) err = jobError_;
  jobError_ = nullptr;
  lk.unlock();
  busy_.store(false, std::memory_order_release);
  if (err) std::rethrow_exception(err);
}

void ThreadExec::workerLoop(int t) {
  Profiler::setThisThreadTrack(t, "worker " + std::to_string(t));
  std::uint64_t seen = 0;
  while (true) {
    const RangeFn* job = nullptr;
    std::size_t n = 0, nchunks = 0;
    {
      std::unique_lock lk(m_);
      cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
      n = jobN_;
      nchunks = jobChunks_;
    }
    const auto c = static_cast<std::size_t>(t);
    if (!job || c >= nchunks) continue;  // surplus worker: not awaited
    std::exception_ptr err;
    try {
      const ScopedTimer zone(prof_.load(std::memory_order_acquire), "exec:chunk");
      (*job)(c * n / nchunks, (c + 1) * n / nchunks);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard lk(m_);
      if (err && !jobError_) jobError_ = err;
      if (--pending_ == 0) doneCv_.notify_one();
    }
  }
}

ThreadExec& ThreadExec::global() {
  static ThreadExec exec(0);
  return exec;
}

}  // namespace vdg
