#pragma once
// Analytic performance model for the weak/strong scaling study (paper
// Fig. 3). The container this reproduction runs in has one core and no
// interconnect, so the large-machine curves are *projected* from a model
// with exactly the structure of the paper's runs:
//
//   - configuration space (Nx, Ny, Nz) block-decomposed over nodes
//     (velocity space node-local, as in the paper's two-level scheme);
//   - per step, each node computes its local phase-space cells at a
//     measured per-cell kernel cost, with an on-node efficiency factor
//     that degrades when a node is starved of work (the paper's
//     instruction-level-parallelism argument for the strong-scaling
//     rollover);
//   - each step exchanges one layer of configuration ghost cells, each
//     carrying the full local velocity grid (the paper's point that even
//     one ghost layer is 5-D data), at latency + size/bandwidth cost.
//
// The per-cell compute cost is calibrated from the measured modal (or
// nodal-baseline) kernel timings; machine parameters default to KNL-class
// numbers. Outputs are normalized time-per-step curves and communication
// fractions, the quantities Fig. 3 and Section IV report.

#include <array>
#include <vector>

namespace vdg {

struct MachineModel {
  double perCellSeconds = 1e-6;   ///< measured forward-Euler cost per phase cell
  double bytesPerCell = 512;      ///< ghost payload per phase cell (8 * Np)
  double latency = 2e-6;          ///< per-message latency [s]
  double bandwidth = 8e9;         ///< interconnect bandwidth [B/s]
  double starveCells = 2048;      ///< cells/node below which on-node efficiency drops
};

struct ScalingPoint {
  int nodes = 1;
  double timePerStep = 0.0;   ///< seconds
  double commFraction = 0.0;  ///< halo time / total time
  double relSpeedup = 1.0;    ///< vs the first point, normalized
};

/// Weak scaling: base config grid (cx,cy,cz) with vCellsPerNode velocity
/// cells per config cell on 1 node; config resolution doubles in each
/// direction as nodes grow 8x (paper setup). `nodeCounts` e.g. {1,8,64,...}.
[[nodiscard]] std::vector<ScalingPoint> weakScaling(const MachineModel& m,
                                                    std::array<int, 3> baseConf, int velCells,
                                                    const std::vector<int>& nodeCounts);

/// Strong scaling: fixed global problem spread over increasing node counts.
[[nodiscard]] std::vector<ScalingPoint> strongScaling(const MachineModel& m,
                                                      std::array<int, 3> conf, int velCells,
                                                      const std::vector<int>& nodeCounts);

}  // namespace vdg
