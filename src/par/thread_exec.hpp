#pragma once
// ThreadExec: the intra-rank (second) level of the paper's two-level
// parallel scheme — a persistent worker-thread pool with a blocking
// parallelFor over an index range. The per-cell RHS loops of the DG
// updaters (Vlasov volume/surface terms, BGK Maxwellian projection) route
// through it so the update is parallel by default. Chunks are contiguous
// and cells are written by exactly one chunk, so the threaded result is
// bit-for-bit identical to serial execution.
//
// The first (inter-rank) level — configuration-space domain decomposition
// with packed ghost exchange — lives in par/communicator.hpp (Communicator
// backends over a CartDecomp) and app/distributed.hpp
// (DistributedSimulation, which runs the full Updater pipeline per rank).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "grid/grid.hpp"

namespace vdg {

class Profiler;

/// A fixed-size pool of worker threads executing blocking parallel-for
/// loops. The calling thread participates (it runs chunk 0), so a pool of
/// size 1 degenerates to a plain serial loop with no synchronization.
///
/// parallelFor is not reentrant: a call issued while another is in flight
/// (from a worker, or from a concurrent caller such as the per-rank threads
/// of DistributedSimulation) runs the loop inline on the calling thread.
/// This makes nested use safe and keeps updaters oblivious to their context.
class ThreadExec {
 public:
  /// numThreads <= 0: use VDG_NUM_THREADS if set, else hardware_concurrency.
  explicit ThreadExec(int numThreads = 0);
  ~ThreadExec();
  ThreadExec(const ThreadExec&) = delete;
  ThreadExec& operator=(const ThreadExec&) = delete;

  [[nodiscard]] int numThreads() const { return nthreads_; }

  /// Invoke fn(begin, end) over a partition of [0, n) into at most
  /// numThreads contiguous chunks, blocking until every chunk completes.
  /// fn must only write state disjoint between chunks. If any chunk
  /// throws, the first exception is rethrown on the calling thread after
  /// all chunks have finished.
  using RangeFn = std::function<void(std::size_t begin, std::size_t end)>;
  void parallelFor(std::size_t n, const RangeFn& fn);

  /// The process-wide default pool used by the updaters.
  static ThreadExec& global();

  /// Attach a profiler (non-owning; nullptr detaches): workers label their
  /// trace tracks "worker N" and wrap each executed chunk in an exec:chunk
  /// zone, so a trace shows how evenly the per-cell loops spread across the
  /// pool. Atomic because workers may already be parked when the owning
  /// Simulation attaches. Never attached to the shared global() pool — a
  /// profiler must not outlive instrumented code, and the global pool
  /// outlives every Simulation (Builder wires only owned pools).
  void setProfiler(Profiler* p) { prof_.store(p, std::memory_order_release); }

 private:
  void workerLoop(int t);

  int nthreads_ = 1;
  std::vector<std::thread> workers_;

  std::atomic<bool> busy_{false};  ///< a parallelFor is in flight
  std::mutex m_;
  std::condition_variable cv_, doneCv_;
  const RangeFn* job_ = nullptr;
  std::size_t jobN_ = 0;
  std::size_t jobChunks_ = 0;
  int pending_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr jobError_;  ///< first exception thrown by a chunk
  bool stop_ = false;
  std::atomic<Profiler*> prof_{nullptr};
};

/// parallelFor with a nullable pool: the serial fallback every chunked
/// per-cell loop shares. exec == nullptr (or n == 0) runs fn(0, n) inline
/// as one chunk, which is exactly the partition the threaded path reduces
/// to — keeping the serial/threaded bit-for-bit guarantee in one place.
template <typename Fn>
void chunkedFor(ThreadExec* exec, std::size_t n, const Fn& fn) {
  if (n == 0) return;
  if (exec)
    exec->parallelFor(n, fn);
  else
    fn(std::size_t{0}, n);
}

/// forEachCell routed through a (nullable) pool: interior cells are
/// visited exactly once, partitioned into contiguous chunks of the
/// flattened (dimension 0 fastest) cell ordering. Within a chunk the
/// visit order matches the serial forEachCell, so per-cell work is
/// bitwise reproducible. Template on the callable so the per-cell body
/// stays inlinable (the type-erased boundary is per chunk, in
/// ThreadExec::parallelFor).
template <typename Fn>
void parallelForEachCell(ThreadExec* exec, const Grid& grid, const Fn& fn) {
  chunkedFor(exec, grid.numCells(), [&](std::size_t begin, std::size_t end) {
    forEachIndexInRange(grid.ndim, grid.cells.data(), begin, end, fn);
  });
}

}  // namespace vdg
