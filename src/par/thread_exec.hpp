#pragma once
// Thread-backed rank runtime: the structural stand-in for the paper's MPI
// layer. Each "rank" is a thread owning a slab of configuration space with
// its own phase-space field (one ghost layer); a halo exchange copies
// boundary cells between neighbouring ranks under a barrier, exactly the
// communication pattern of the MPI code. On this single-core container the
// wall-clock numbers cannot demonstrate speedup — the decomposed run is
// instead verified *bit-for-bit* against the serial solver (tests), and the
// timing split (compute vs. halo copy) calibrates the analytic scaling
// model in par/comm_model.hpp that projects Fig. 3.

#include <functional>
#include <vector>

#include "dg/vlasov.hpp"
#include "par/decomp.hpp"

namespace vdg {

/// A free-streaming Vlasov simulation decomposed over threads along
/// configuration dimension 0 (periodic).
class DistributedVlasov {
 public:
  DistributedVlasov(const BasisSpec& spec, const Grid& globalPhaseGrid, int numRanks,
                    const VlasovParams& params);

  /// Scatter a global field into the per-rank local fields.
  void scatter(const Field& global);
  /// Gather local interiors into a global field.
  void gather(Field& global) const;

  /// Run `numSteps` forward-Euler steps of size dt on all ranks in
  /// parallel (halo exchange + advance + update per step).
  void run(int numSteps, double dt);

  [[nodiscard]] int numRanks() const { return static_cast<int>(local_.size()); }
  [[nodiscard]] double commSeconds() const { return commSec_; }
  [[nodiscard]] double computeSeconds() const { return compSec_; }

 private:
  void haloExchange();

  BasisSpec spec_;
  Grid global_;
  SlabDecomp decomp_;
  VlasovParams params_;
  int np_ = 0;
  std::vector<Grid> localGrid_;
  std::vector<Field> local_;
  std::vector<Field> rhs_;
  std::vector<VlasovUpdater> updater_;
  double commSec_ = 0.0, compSec_ = 0.0;
};

}  // namespace vdg
