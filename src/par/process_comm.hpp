#pragma once
// Cross-process Communicator backend: the ThreadComm protocol spoken over
// a full mesh of Unix-domain socketpairs between forked processes — a real
// transport with kernel-mediated message passing, no shared memory. This
// is the no-MPI deployment shape of the distributed layer (MpiComm,
// par/mpi_comm.hpp, is the same seam over MPI when the toolchain has it):
// one process per CartDecomp rank, the same split-phase halo exchange and
// rank-ordered reductions, and therefore the same bits as SerialComm and
// ThreadComm — the transport conformance battery
// (tests/test_comm_conformance.cpp) and tools/vdg_launch prove it.
//
// Wire protocol, per directed peer connection (SOCK_STREAM, byte order is
// native — all ranks are forks of one process):
//   frame := [u32 tag][u32 count][count * f64 payload]
//   tag   := dim*2+side for halo slabs (side: 0 = receiver's lower ghost,
//            1 = upper), or one of the reduction tags below.
// Sockets are non-blocking; every send is attempted immediately and any
// remainder parks in a per-peer outbox that is drained whenever the
// receive loop polls — so a rank that is waiting to receive is always
// also making progress on its sends, and the mesh cannot deadlock on full
// kernel buffers. Stream order per peer is preserved, but frames are
// *matched by tag* (the two-rank periodic topology delivers both of a
// peer's slabs on one connection, in post order, while the receiver
// unpacks lower-then-upper).
//
// Reductions are a rank-0 star: every rank sends its operand to rank 0,
// which folds in rank order — bit-identical to the ThreadComm fold, since
// the sequence of operations is the same — and broadcasts the result.
//
// Failure semantics: a dead peer (socket EOF / EPIPE) or a poll timeout
// raises std::runtime_error naming this rank and the peer, so a crashed
// rank collapses the whole group loudly instead of hanging it (the
// kill-one-rank test pins this with a bounded timeout).

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "par/communicator.hpp"
#include "par/decomp.hpp"

namespace vdg {

/// One process's endpoint into the socket mesh. Construct via
/// ProcessGroup::run (which forks the mesh) — or directly from a set of
/// connected socket fds (one per peer, -1 at the own-rank slot), which the
/// endpoint takes ownership of.
class ProcessComm final : public Communicator {
 public:
  ProcessComm(const CartDecomp& decomp, int rank, std::vector<int> peerFds);
  ~ProcessComm() override;
  ProcessComm(const ProcessComm&) = delete;
  ProcessComm& operator=(const ProcessComm&) = delete;

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int numRanks() const override { return decomp_.numRanks(); }
  [[nodiscard]] const CartDecomp& decomp() const { return decomp_; }

  [[nodiscard]] bool supportsSplitSync() const override { return true; }
  void syncConfGhostsDim(Field& f, int d, bool periodic) override;
  void beginSyncConfGhostsDim(Field& f, int d, bool periodic) override;
  void endSyncConfGhostsDim(Field& f, int d, bool periodic) override;

  [[nodiscard]] double allReduceMax(double v) override;
  [[nodiscard]] double allReduceSum(double v) override;
  void allReduceSum(std::span<double> v) override;
  void barrier() override;

  [[nodiscard]] HaloStats haloStats() const override { return stats_; }

  /// Drain every parked outbound byte (blocking until the kernel accepts
  /// them). Call before tearing the endpoint down while peers may still be
  /// waiting on this rank's last messages.
  void flush();

  /// Bound, in seconds, on any single wait for peer data (and on flush).
  /// Exceeding it throws — the backstop that turns a wedged peer into an
  /// error when its socket never reports EOF. Default 120 s.
  void setRecvTimeout(double seconds) { recvTimeoutSec_ = seconds; }

 private:
  struct Peer {
    int fd = -1;
    std::vector<std::uint8_t> outbox;  ///< unsent bytes, in send order
    std::vector<std::uint8_t> inbuf;   ///< partial inbound frame bytes
    struct Frame {
      std::uint32_t tag;
      std::vector<double> data;
    };
    std::deque<Frame> inbox;  ///< complete frames awaiting a match
  };

  void send(int dst, std::uint32_t tag, const double* data, std::size_t count);
  /// Block until a frame with `tag` arrives from `src` (earlier frames
  /// from src stay queued for their own matches), pumping all peers' IO.
  [[nodiscard]] std::vector<double> recvMatch(int src, std::uint32_t tag);
  /// One poll round over every peer: flush outboxes, ingest inbound bytes.
  void pump(int timeoutMs);
  void parseFrames(Peer& p);
  [[noreturn]] void peerFailed(int peer, const std::string& what) const;

  template <typename Op>
  double reduce(double v, Op op);

  CartDecomp decomp_;
  int rank_;
  std::vector<Peer> peers_;
  double recvTimeoutSec_ = 120.0;
  HaloStats stats_;
  std::vector<double> redScratch_;  ///< rank-0 vector-reduce fold buffer
};

/// Forks one process per CartDecomp rank, wires the socketpair mesh, runs
/// a caller-supplied function on every rank, and gathers each rank's
/// result payload (plus failures) back into the parent. The conformance
/// battery and tools/vdg_launch drive all their multi-process scenarios
/// through this.
class ProcessGroup {
 public:
  /// What one forked rank produced.
  struct RankOutcome {
    bool ok = false;
    std::vector<double> values;  ///< fn's return payload (ok only)
    std::string error;           ///< exception text (failed only)
    int exitStatus = 0;          ///< raw waitpid status
  };

  /// The per-rank body: runs in the forked child with that rank's live
  /// endpoint; its return vector is shipped back to the parent over a
  /// pipe. Throwing marks the rank failed (the text travels back too).
  using RankFn = std::function<std::vector<double>(ProcessComm&)>;

  /// Fork decomp.numRanks() processes, run fn in each, wait for all, and
  /// return every rank's outcome (index == rank). Does not throw on rank
  /// failure — inspect the outcomes — but does throw if the mesh itself
  /// cannot be set up. `recvTimeoutSec` bounds every child-side wait.
  static std::vector<RankOutcome> run(const CartDecomp& decomp, const RankFn& fn,
                                      double recvTimeoutSec = 120.0);
};

}  // namespace vdg
