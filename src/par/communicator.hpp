#pragma once
// The rank-communication seam of the distributed layer (paper Section IV):
// a per-rank Communicator endpoint abstracts the only collectives the
// two-level parallel scheme needs — the one-layer configuration-space
// ghost exchange feeding the DG surface terms, and scalar/vector
// reductions for the global CFL condition and the Poisson assembly.
//
// Backends:
//  - SerialComm: the single-rank endpoint. Ghost "exchange" degenerates to
//    the periodic wrap of Field::syncPeriodic (which itself runs on the
//    shared packGhost/unpackGhost slab path), bitwise identical to the
//    pre-distributed serial code.
//  - ThreadComm: an in-process multi-rank backend. Each rank runs on its
//    own thread; halo exchange is message-passing over per-directed-pair
//    FIFO channels (sender packs and enqueues, receiver dequeues and
//    unpacks), exactly the send/recv pattern of an MPI halo exchange and
//    the backend that supports split-phase (overlapped) sync. Neighbor
//    lookup comes from a CartDecomp; a dimension with one block wraps
//    locally — serial and distributed ghost repair are one code path.
//  - ProcessComm (par/process_comm.hpp): the same protocol spoken over
//    Unix-domain sockets between forked processes — a real transport.
//  - MpiComm (par/mpi_comm.hpp): the same protocol over MPI point-to-point
//    messaging, compiled only when MPI is found at configure time.
//
// Split-phase ghost exchange: beginSyncConfGhostsDim packs the boundary
// slabs and posts the sends; the caller then computes anything that reads
// no ghost cells (the DG volume terms); endSyncConfGhostsDim waits for the
// neighbors' slabs and unpacks them. begin+end moves exactly the bytes the
// blocking call moves, so the overlapped schedule is bitwise identical —
// it only hides the wait behind interior compute. Backends that cannot
// split (SerialComm) inherit the default: begin is a no-op and end is the
// blocking call, so one orchestration code path serves every backend.
//
// Non-periodic dimensions: the communicator only moves data between
// neighbors that exist. Across a non-periodic domain edge the neighbor
// lookup yields kNoNeighbor, the unpack on that side is skipped, and the
// ghost slab is instead filled rank-locally by the physical boundary
// conditions of src/bc/ (driven by BoundarySyncUpdater after each
// dimension's exchange) — so walls add no collective traffic at all.
//
// Contract: every collective (sync begin/end pairs included), must be
// entered by all ranks in the same order, each from its own thread or
// process (DistributedSimulation drives this in lockstep).

#include <barrier>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "grid/grid.hpp"
#include "par/decomp.hpp"

namespace vdg {

class Profiler;

/// Wall-time and traffic split of the halo path, bucketed by protocol
/// phase so overlapped exchange stays measurable: pack (slab -> send
/// buffer), post (handing buffers to the transport), wait (blocked until
/// neighbor data is available), unpack (buffer -> ghost slab), plus the
/// reduction collectives. With a blocking backend wait dominates; with
/// split-phase sync the wait bucket is exactly the *exposed* (un-hidden)
/// communication time — the quantity bench_fig3's overlap-efficiency
/// report is built on.
struct HaloStats {
  double packSec = 0.0;
  double postSec = 0.0;
  double waitSec = 0.0;
  double unpackSec = 0.0;
  double reduceSec = 0.0;  ///< scalar + vector all-reduce collectives
  std::uint64_t bytes = 0;
  std::uint64_t cells = 0;
  [[nodiscard]] double totalSec() const {
    return packSec + postSec + waitSec + unpackSec + reduceSec;
  }
};

/// One rank's communication endpoint.
class Communicator {
 public:
  virtual ~Communicator() = default;

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int numRanks() const = 0;

  /// Repair the ghost layers of one configuration dimension of a
  /// rank-local field. A decomposed dimension receives the neighboring
  /// ranks' boundary slabs (skipping, at a non-periodic domain edge, the
  /// side with no neighbor — the edge-owning rank's physical boundary fill
  /// runs afterwards, rank-locally, in BoundarySyncUpdater); a
  /// non-decomposed dimension wraps periodically when `periodic`, and is
  /// left untouched otherwise. The `periodic` flag must be the same on
  /// every rank (it derives from the builder's shared BC configuration),
  /// so the collective call sequence stays in lockstep.
  virtual void syncConfGhostsDim(Field& f, int d, bool periodic) = 0;

  /// Repair all configuration dimensions [0, cdim), fully periodic — the
  /// pre-boundary-subsystem behavior. Dimensions are synced in order with
  /// completion between them, so the corner ghosts match the serial
  /// syncPeriodic(0..cdim-1) sequence.
  void syncConfGhosts(Field& f, int cdim) {
    for (int d = 0; d < cdim; ++d) syncConfGhostsDim(f, d, true);
  }

  // --- split-phase ghost exchange (communication/compute overlap).
  /// True when begin/end actually split: begin posts the sends and end
  /// only waits + unpacks. False (the default) means begin is a no-op and
  /// end degenerates to the blocking sync — callers can drive the split
  /// protocol unconditionally.
  [[nodiscard]] virtual bool supportsSplitSync() const { return false; }
  /// Pack this field's dimension-d boundary slabs and post them to the
  /// neighbors. Between begin and end the caller must not read or write
  /// the dimension-d ghost slabs of `f` (interior cells are fair game —
  /// the slabs were packed at begin time). Multiple fields may be begun
  /// before any is ended; ends must come in begin order (FIFO per
  /// neighbor channel).
  virtual void beginSyncConfGhostsDim(Field& f, int d, bool periodic) {
    (void)f;
    (void)d;
    (void)periodic;
  }
  /// Wait for the neighbors' dimension-d slabs and unpack them into `f`'s
  /// ghost layers (plus the local periodic wrap of a non-decomposed dim).
  virtual void endSyncConfGhostsDim(Field& f, int d, bool periodic) {
    syncConfGhostsDim(f, d, periodic);
  }

  /// Global reductions (the CFL frequency uses max). Every rank receives
  /// the same value, computed in a deterministic rank order.
  [[nodiscard]] virtual double allReduceMax(double v) = 0;
  [[nodiscard]] virtual double allReduceSum(double v) = 0;

  /// Element-wise all-reduce sum of a coefficient block, in place: after
  /// the call every rank holds the rank-ordered (deterministic, hence
  /// bitwise-reproducible) sum of all ranks' vectors. This is how the
  /// Poisson field updater assembles the *global* charge density from
  /// per-rank moment blocks (each rank contributes its window of a
  /// global-shape vector, zeros elsewhere, so the sum is a concatenation
  /// and stays bit-identical to a serial assembly). Identity for
  /// SerialComm. All ranks must pass the same size.
  virtual void allReduceSum(std::span<double> v) = 0;

  virtual void barrier() {}

  // --- measured halo traffic (calibrates the Fig. 3 MachineModel).
  /// Per-phase wall-time and traffic split (see HaloStats).
  [[nodiscard]] virtual HaloStats haloStats() const { return {}; }
  /// Bytes this rank exchanged with *other* ranks, ghost slabs and vector
  /// reductions alike (self-wrap / own-block reads are free).
  [[nodiscard]] virtual std::uint64_t haloBytes() const { return haloStats().bytes; }
  /// Ghost cells this rank received from other ranks (slab exchange only;
  /// reduction blocks are coefficients, not cells).
  [[nodiscard]] virtual std::uint64_t haloCells() const { return haloStats().cells; }
  /// Wall seconds this rank spent in communication collectives — the sum
  /// of every HaloStats bucket (the quantity an MPI profile would report
  /// as communication time).
  [[nodiscard]] virtual double haloSeconds() const { return haloStats().totalSec(); }

  // --- instrumentation (src/obs/). HaloStats stays the timing facade; a
  // backend with a profiler attached additionally books each phase as a
  // halo:pack/post/wait/unpack/reduce leaf zone using the *same* timestamps
  // that feed the stats buckets, so zone totals and HaloStats reconcile
  // to summation rounding.
  /// Attach a profiler (non-owning; nullptr detaches). Set before the rank
  /// thread starts driving collectives — the pointer is read unguarded on
  /// the halo hot path. Never attach to the shared SerialComm::instance():
  /// it is stateless by contract and used concurrently by packed ensemble
  /// members (Simulation::build guards this).
  void setProfiler(Profiler* p) { prof_ = p; }
  [[nodiscard]] Profiler* profiler() const { return prof_; }

 protected:
  Profiler* prof_ = nullptr;
};

/// The single-rank backend: periodic wrap, no synchronization, no traffic.
class SerialComm final : public Communicator {
 public:
  [[nodiscard]] int rank() const override { return 0; }
  [[nodiscard]] int numRanks() const override { return 1; }
  void syncConfGhostsDim(Field& f, int d, bool periodic) override {
    // Non-periodic dims are the physical-BC fill's job (rank-local, after
    // this call); the single rank owns both edges, so there is nothing to
    // exchange.
    if (periodic) f.syncPeriodic(d);
  }
  [[nodiscard]] double allReduceMax(double v) override { return v; }
  [[nodiscard]] double allReduceSum(double v) override { return v; }
  void allReduceSum(std::span<double> /*v*/) override {}  // identity

  /// Shared stateless instance (safe for concurrent use: syncConfGhosts
  /// only touches the field passed in).
  [[nodiscard]] static SerialComm& instance();
};

/// In-process multi-rank backend: one endpoint per rank, each driven by
/// its own thread. Halo slabs travel over per-directed-pair FIFO channels
/// (sender enqueues a packed buffer, receiver blocks until it arrives) —
/// no barrier anywhere in the halo path, which is what lets split-phase
/// sync genuinely overlap the wait with interior compute. Reductions keep
/// the shared barrier + rank-ordered fold (bitwise deterministic).
class ThreadComm {
 public:
  explicit ThreadComm(const CartDecomp& decomp);
  ~ThreadComm();
  ThreadComm(const ThreadComm&) = delete;
  ThreadComm& operator=(const ThreadComm&) = delete;

  [[nodiscard]] int numRanks() const { return static_cast<int>(endpoints_.size()); }
  [[nodiscard]] const CartDecomp& decomp() const { return decomp_; }
  [[nodiscard]] Communicator& endpoint(int rank) const;

  /// Test hook: invoked on the *sender's* thread immediately before a halo
  /// message becomes visible to its receiver, with (src, dst, dim, side —
  /// the receiver's ghost side). Injecting latency here delays delivery
  /// arbitrarily, which the overlap-correctness tests use to prove the
  /// split-phase stepper never reads a ghost before endSync and that
  /// results stay bitwise identical under adversarial timing. Set before
  /// the rank threads start (not synchronized against in-flight sends).
  using DeliveryFault = std::function<void(int src, int dst, int dim, int side)>;
  void setDeliveryFault(DeliveryFault f) { fault_ = std::move(f); }

  /// Bench hook: emulate wire latency. Each posted slab becomes visible to
  /// its receiver only `seconds` after the post, without slowing the
  /// sender (unlike a DeliveryFault sleep, which stalls the sending
  /// thread). A blocking sync must sit out the latency in its receive
  /// wait; the split-phase schedule computes interior terms through it —
  /// which is what lets bench_fig3 measure overlap efficiency on a
  /// timeshared host, where genuine halo waits are scheduling noise. Set
  /// before the rank threads start.
  void setDeliveryLatency(double seconds) { latencySec_ = seconds; }

  // Aggregates over all endpoints.
  [[nodiscard]] std::uint64_t totalHaloBytes() const;
  [[nodiscard]] std::uint64_t totalHaloCells() const;
  [[nodiscard]] double meanHaloSeconds() const;

 private:
  class Endpoint;

  /// One directed FIFO: messages from one sender destined for one
  /// (receiver, dim, receiver-ghost-side) slot. Keying by the receiver's
  /// side disambiguates the two-rank periodic case, where both of a
  /// rank's messages go to the same peer.
  struct Channel {
    struct Msg {
      std::chrono::steady_clock::time_point ready;  ///< delivery time
      std::vector<double> buf;
    };
    std::mutex m;
    std::condition_variable cv;
    std::deque<Msg> q;
  };
  [[nodiscard]] Channel& channel(int dst, int d, int side) const;

  CartDecomp decomp_;
  std::barrier<> bar_;  ///< reductions only; the halo path is barrier-free
  std::vector<double> reduceSlots_;
  std::vector<std::vector<double>> reduceVecs_;  ///< per rank, vector reduce
  std::vector<std::unique_ptr<Channel>> channels_;  ///< [dst][dim][side]
  DeliveryFault fault_;
  double latencySec_ = 0.0;  ///< emulated wire latency (bench hook)
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace vdg
