#pragma once
// The rank-communication seam of the distributed layer (paper Section IV):
// a per-rank Communicator endpoint abstracts the only two collectives the
// two-level parallel scheme needs — the one-layer configuration-space
// ghost exchange feeding the DG surface terms, and scalar reductions for
// the global CFL condition.
//
// Backends:
//  - SerialComm: the single-rank endpoint. Ghost "exchange" degenerates to
//    the periodic wrap of Field::syncPeriodic (which itself runs on the
//    shared packGhost/unpackGhost slab path), bitwise identical to the
//    pre-distributed serial code.
//  - ThreadComm: an in-process multi-rank backend. Each rank runs on its
//    own thread; halo exchange is mailbox-style (pack into the owner's
//    send buffers, barrier, unpack from the neighbors' buffers, barrier),
//    exactly the communication pattern of an MPI halo exchange. Neighbor
//    lookup comes from a CartDecomp; a dimension with one block exchanges
//    with itself, which *is* the periodic wrap — serial and distributed
//    ghost repair are one code path.
//
// Non-periodic dimensions: the communicator only moves data between
// neighbors that exist. Across a non-periodic domain edge the neighbor
// lookup yields kNoNeighbor, the unpack on that side is skipped, and the
// ghost slab is instead filled rank-locally by the physical boundary
// conditions of src/bc/ (driven by BoundarySyncUpdater after each
// dimension's exchange) — so walls add no collective traffic at all.
//
// Contract: every collective (syncConfGhosts, allReduce*, barrier) must be
// entered by all ranks of a ThreadComm in the same order, each from its
// own thread (DistributedSimulation drives this in lockstep).

#include <barrier>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "grid/grid.hpp"
#include "par/decomp.hpp"

namespace vdg {

/// One rank's communication endpoint.
class Communicator {
 public:
  virtual ~Communicator() = default;

  [[nodiscard]] virtual int rank() const = 0;
  [[nodiscard]] virtual int numRanks() const = 0;

  /// Repair the ghost layers of one configuration dimension of a
  /// rank-local field. A decomposed dimension receives the neighboring
  /// ranks' boundary slabs (skipping, at a non-periodic domain edge, the
  /// side with no neighbor — the edge-owning rank's physical boundary fill
  /// runs afterwards, rank-locally, in BoundarySyncUpdater); a
  /// non-decomposed dimension wraps periodically when `periodic`, and is
  /// left untouched otherwise. The `periodic` flag must be the same on
  /// every rank (it derives from the builder's shared BC configuration),
  /// so the collective call sequence stays in lockstep.
  virtual void syncConfGhostsDim(Field& f, int d, bool periodic) = 0;

  /// Repair all configuration dimensions [0, cdim), fully periodic — the
  /// pre-boundary-subsystem behavior. Dimensions are synced in order with
  /// completion between them, so the corner ghosts match the serial
  /// syncPeriodic(0..cdim-1) sequence.
  void syncConfGhosts(Field& f, int cdim) {
    for (int d = 0; d < cdim; ++d) syncConfGhostsDim(f, d, true);
  }

  /// Global reductions (the CFL frequency uses max). Every rank receives
  /// the same value, computed in a deterministic rank order.
  [[nodiscard]] virtual double allReduceMax(double v) = 0;
  [[nodiscard]] virtual double allReduceSum(double v) = 0;

  /// Element-wise all-reduce sum of a coefficient block, in place: after
  /// the call every rank holds the rank-ordered (deterministic, hence
  /// bitwise-reproducible) sum of all ranks' vectors. This is how the
  /// Poisson field updater assembles the *global* charge density from
  /// per-rank moment blocks (each rank contributes its window of a
  /// global-shape vector, zeros elsewhere, so the sum is a concatenation
  /// and stays bit-identical to a serial assembly). Identity for
  /// SerialComm. All ranks must pass the same size.
  virtual void allReduceSum(std::span<double> v) = 0;

  virtual void barrier() {}

  // --- measured halo traffic (calibrates the Fig. 3 MachineModel).
  /// Bytes this rank exchanged with *other* ranks, ghost slabs and vector
  /// reductions alike (self-wrap / own-block reads are free).
  [[nodiscard]] virtual std::uint64_t haloBytes() const { return 0; }
  /// Ghost cells this rank received from other ranks (slab exchange only;
  /// reduction blocks are coefficients, not cells).
  [[nodiscard]] virtual std::uint64_t haloCells() const { return 0; }
  /// Wall seconds this rank spent in communication collectives —
  /// syncConfGhosts and vector allReduceSum, including barrier waits (the
  /// quantity an MPI profile would report as communication time).
  [[nodiscard]] virtual double haloSeconds() const { return 0.0; }
};

/// The single-rank backend: periodic wrap, no synchronization, no traffic.
class SerialComm final : public Communicator {
 public:
  [[nodiscard]] int rank() const override { return 0; }
  [[nodiscard]] int numRanks() const override { return 1; }
  void syncConfGhostsDim(Field& f, int d, bool periodic) override {
    // Non-periodic dims are the physical-BC fill's job (rank-local, after
    // this call); the single rank owns both edges, so there is nothing to
    // exchange.
    if (periodic) f.syncPeriodic(d);
  }
  [[nodiscard]] double allReduceMax(double v) override { return v; }
  [[nodiscard]] double allReduceSum(double v) override { return v; }
  void allReduceSum(std::span<double> /*v*/) override {}  // identity

  /// Shared stateless instance (safe for concurrent use: syncConfGhosts
  /// only touches the field passed in).
  [[nodiscard]] static SerialComm& instance();
};

/// In-process multi-rank backend: one endpoint per rank, each driven by
/// its own thread, synchronized through a shared barrier and per-rank
/// mailbox buffers.
class ThreadComm {
 public:
  explicit ThreadComm(const CartDecomp& decomp);
  ~ThreadComm();
  ThreadComm(const ThreadComm&) = delete;
  ThreadComm& operator=(const ThreadComm&) = delete;

  [[nodiscard]] int numRanks() const { return static_cast<int>(endpoints_.size()); }
  [[nodiscard]] const CartDecomp& decomp() const { return decomp_; }
  [[nodiscard]] Communicator& endpoint(int rank) const;

  // Aggregates over all endpoints.
  [[nodiscard]] std::uint64_t totalHaloBytes() const;
  [[nodiscard]] std::uint64_t totalHaloCells() const;
  [[nodiscard]] double meanHaloSeconds() const;

 private:
  class Endpoint;

  CartDecomp decomp_;
  std::barrier<> bar_;
  std::vector<std::vector<double>> sendLo_, sendHi_;  ///< per rank mailboxes
  std::vector<double> reduceSlots_;
  std::vector<std::vector<double>> reduceVecs_;  ///< per rank, vector reduce
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace vdg
