#pragma once
// Configuration-space domain decomposition (the paper's first level of
// parallelism, Section IV). Only configuration dimensions are decomposed
// across ranks; velocity space stays node-local (the paper's second,
// shared-memory level), so the only inter-rank traffic is the single layer
// of configuration-space ghost cells the DG surface terms need.

#include <vector>

#include "grid/grid.hpp"

namespace vdg {

/// Slab decomposition of configuration dimension `dim` into `numRanks`
/// contiguous, near-equal extents.
struct SlabDecomp {
  int dim = 0;
  int numRanks = 1;
  std::vector<int> start;  ///< per rank, first owned cell index
  std::vector<int> count;  ///< per rank, number of owned cells

  static SlabDecomp make(int totalCells, int numRanks, int dim = 0);

  /// Local phase grid of a rank: the global grid with dimension `dim`
  /// restricted to the rank's slab.
  [[nodiscard]] Grid localGrid(const Grid& global, int rank) const;
};

/// Near-cubic factorization of `nodes` into 3 factors (for the analytic
/// 3-D block-decomposition scaling model).
[[nodiscard]] std::array<int, 3> factor3(int nodes);

}  // namespace vdg
