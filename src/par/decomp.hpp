#pragma once
// Configuration-space domain decomposition (the paper's first level of
// parallelism, Section IV). Only configuration dimensions are decomposed
// across ranks; velocity space stays node-local (the paper's second,
// shared-memory level), so the only inter-rank traffic is the single layer
// of configuration-space ghost cells the DG surface terms need.

#include <array>
#include <vector>

#include "grid/grid.hpp"

namespace vdg {

/// Sentinel returned by the neighbor lookups when the step would cross a
/// non-periodic domain edge: there is nobody to exchange ghosts with, and
/// the edge-owning rank applies the physical boundary condition instead.
inline constexpr int kNoNeighbor = -1;

/// Slab decomposition of configuration dimension `dim` into `numRanks`
/// contiguous, near-equal extents (the 1-D special case of CartDecomp,
/// kept for the analytic model and simple call sites).
struct SlabDecomp {
  int dim = 0;
  int numRanks = 1;
  bool periodic = true;    ///< wrap at the domain edges of `dim`
  std::vector<int> start;  ///< per rank, first owned cell index
  std::vector<int> count;  ///< per rank, number of owned cells

  static SlabDecomp make(int totalCells, int numRanks, int dim = 0, bool periodic = true);

  /// Rank one slab over on `side` (-1 lower, +1 upper): periodic wrap, or
  /// kNoNeighbor across a non-periodic domain edge.
  [[nodiscard]] int neighbor(int rank, int side) const;

  /// Local phase grid of a rank: the global grid with dimension `dim`
  /// restricted to the rank's slab (a bit-exact Grid::subgrid window).
  [[nodiscard]] Grid localGrid(const Grid& global, int rank) const;
};

/// Multi-dimensional block decomposition of the first `cdim` (configuration)
/// dimensions of a grid into numRanks = prod(blocks) near-equal blocks.
/// Rank order is odometer over block coordinates, dimension 0 fastest.
/// Neighbor lookup wraps periodically only in dimensions flagged periodic
/// (the default); in a non-periodic dimension the lookup returns
/// kNoNeighbor across the domain edge, so only edge-owning ranks touch that
/// face — with the physical fill of src/bc/, not an exchange. A periodic
/// dimension with one block is its own neighbor, making periodic wrap and
/// halo exchange one code path.
struct CartDecomp {
  int cdim = 1;                       ///< number of decomposed (config) dims
  std::array<int, kMaxDim> blocks{};  ///< blocks per dim; product == numRanks
  std::array<bool, kMaxDim> periodic{};  ///< per dim: wrap at domain edges
  std::array<std::vector<int>, kMaxDim> start;  ///< per dim, per block: first cell
  std::array<std::vector<int>, kMaxDim> count;  ///< per dim, per block: cell count

  /// Block-decompose `confGrid` over numRanks: every factorization of
  /// numRanks into per-dim block counts (each <= that dimension's cells)
  /// is considered; smallest maximum per-rank cell load wins, halo
  /// surface breaking ties. Throws when no factorization fits (one cell
  /// per block minimum). All dimensions periodic.
  static CartDecomp make(const Grid& confGrid, int numRanks);
  /// Same, with per-dimension periodicity flags (dims >= confGrid.ndim
  /// ignored). Non-periodic dims still decompose identically — only the
  /// neighbor lookup across their domain edges changes.
  static CartDecomp make(const Grid& confGrid, int numRanks,
                         const std::array<bool, kMaxDim>& periodicDims);

  [[nodiscard]] int numRanks() const;

  /// Block coordinates of a rank (dimension 0 fastest).
  [[nodiscard]] std::array<int, kMaxDim> coords(int rank) const;
  /// Rank at block coordinates, wrapping periodically per dimension.
  [[nodiscard]] int rankOf(std::array<int, kMaxDim> c) const;
  /// Neighbor of `rank` one block over in `dim` (side == -1 lower, +1
  /// upper): periodic wrap (rank itself when blocks[dim] == 1), or
  /// kNoNeighbor when the step crosses a non-periodic domain edge.
  [[nodiscard]] int neighbor(int rank, int dim, int side) const;

  /// Rank-local grid: `global` (conf or phase grid whose first cdim dims
  /// are configuration space) windowed to the rank's block via
  /// Grid::subgrid — coordinate arithmetic stays bit-identical to global.
  [[nodiscard]] Grid localGrid(const Grid& global, int rank) const;
};

/// Near-cubic factorization of `nodes` into 3 factors (for the analytic
/// 3-D block-decomposition scaling model).
[[nodiscard]] std::array<int, 3> factor3(int nodes);

}  // namespace vdg
