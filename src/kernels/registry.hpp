#pragma once
// Registry of pre-generated (CAS-emitted, compiled) Vlasov kernels.
//
// Generated translation units in kernels/gen/ register themselves here at
// static-initialization time; VlasovUpdater queries the registry by basis
// spec name and uses the compiled kernels as a fast path (falling back to
// sparse-tape execution for specs without generated code, and always for
// central fluxes — the generated surface kernels bake in the penalty flux).
//
// Each spec may additionally carry SIMD-batched kernel variants (emitted
// into the sibling *_batch.cpp translation units): the same contractions
// with the cell index turned into an inner lane loop over an AoSoA block
// of B cells (mode-major, lane-minor), so the compiler autovectorizes
// across cells. Per lane the floating-point operation order is identical
// to the scalar kernel, which is what makes the batched execution path
// bitwise reproducible against the scalar one (tests/test_batch.cpp).

#include <string>
#include <vector>

namespace vdg {

/// Lane counts the generator emits batched kernel variants for.
inline constexpr int kKernelBatchLanes[] = {4, 8};
inline constexpr int kNumKernelBatchLanes = 2;

/// One batched (AoSoA) kernel set for a fixed lane count B. Array
/// arguments are blocks of B cells in mode-major, lane-minor layout:
/// element i of cell b lives at [i*B + b]. The cell-geometry argument `w`
/// is per-lane ([dim*B + b]); `dxv` stays a single per-dimension vector
/// (uniform grids: every lane shares it).
struct VlasovBatchedKernels {
  int lanes = 0;  ///< B; 0 when this slot is empty

  void (*streamVol)(const double* w, const double* dxv, const double* f, double* out) = nullptr;
  void (*accelVol)(const double* dxv, const double* alpha, const double* f,
                   double* out) = nullptr;

  using StreamSurfFn = void (*)(const double* w, const double* dxv, const double* fl,
                                const double* fr, double* outl, double* outr);
  using AccelSurfFn = void (*)(const double* dxv, const double* al, const double* ar,
                               const double* fl, const double* fr, double* outl, double* outr);

  StreamSurfFn streamSurf[3] = {nullptr, nullptr, nullptr};  ///< per config dir
  AccelSurfFn accelSurf[3] = {nullptr, nullptr, nullptr};    ///< per velocity dir

  [[nodiscard]] bool complete(int cdim, int vdim) const {
    if (lanes <= 0 || !streamVol || !accelVol) return false;
    for (int d = 0; d < cdim; ++d)
      if (!streamSurf[d]) return false;
    for (int j = 0; j < vdim; ++j)
      if (!accelSurf[j]) return false;
    return true;
  }
};

struct VlasovCompiledKernels {
  int numPhaseModes = 0;

  /// Volume streaming: out += sum_d (2/dxv_d) C^d(v f).
  void (*streamVol)(const double* w, const double* dxv, const double* f, double* out) = nullptr;

  /// Volume acceleration: out += sum_j (2/dxv_j) C^j(alpha_j f).
  void (*accelVol)(const double* dxv, const double* alpha, const double* f,
                   double* out) = nullptr;

  using StreamSurfFn = void (*)(const double* w, const double* dxv, const double* fl,
                                const double* fr, double* outl, double* outr);
  using AccelSurfFn = void (*)(const double* dxv, const double* al, const double* ar,
                               const double* fl, const double* fr, double* outl, double* outr);

  StreamSurfFn streamSurf[3] = {nullptr, nullptr, nullptr};  ///< per config dir
  AccelSurfFn accelSurf[3] = {nullptr, nullptr, nullptr};    ///< per velocity dir

  /// Batched variants, one slot per kKernelBatchLanes entry (empty slots
  /// have lanes == 0; specs generated before the batched emitter, or
  /// registered by hand, simply offer no batched path).
  VlasovBatchedKernels batched[kNumKernelBatchLanes] = {};

  /// True when every scalar kernel the updater needs is present.
  [[nodiscard]] bool complete(int cdim, int vdim) const {
    if (!streamVol || !accelVol) return false;
    for (int d = 0; d < cdim; ++d)
      if (!streamSurf[d]) return false;
    for (int j = 0; j < vdim; ++j)
      if (!accelSurf[j]) return false;
    return true;
  }

  /// The batched set with exactly `lanes` lanes and every kernel the
  /// updater needs, or nullptr.
  [[nodiscard]] const VlasovBatchedKernels* findBatched(int lanes, int cdim, int vdim) const {
    for (const VlasovBatchedKernels& b : batched)
      if (b.lanes == lanes && b.complete(cdim, vdim)) return &b;
    return nullptr;
  }

  /// Largest complete batched lane count on offer (0: scalar only).
  [[nodiscard]] int maxBatchLanes(int cdim, int vdim) const {
    int best = 0;
    for (const VlasovBatchedKernels& b : batched)
      if (b.complete(cdim, vdim) && b.lanes > best) best = b.lanes;
    return best;
  }
};

/// Look up compiled kernels for a spec name (BasisSpec::name()); nullptr if
/// no generated translation unit registered them.
const VlasovCompiledKernels* findCompiledKernels(const std::string& specName);

/// Called by generated code. A repeated registration for the same spec
/// replaces the previous one ("last registration wins") but is counted and
/// logged to stderr, since it usually means two generated translation
/// units were linked for one spec — see numDuplicateKernelRegistrations().
/// The spec's batched slots are preserved across the replacement (scalar
/// and batched sets register from separate translation units).
void registerCompiledKernels(const std::string& specName, const VlasovCompiledKernels& k);

/// Called by the generated *_batch translation units: attach a batched
/// kernel set to the spec's registry entry (creating the entry if the
/// batched unit registers first). One slot per lane count; re-registering
/// the same lane count overwrites it silently (the manifest registers each
/// exactly once).
void registerBatchedKernels(const std::string& specName, const VlasovBatchedKernels& b);

/// Number of registered kernel sets (for tests / diagnostics).
int numCompiledKernelSets();

/// Names of every registered spec, sorted (for tests / diagnostics).
std::vector<std::string> listCompiledKernelSpecs();

/// Human-readable startup diagnostics: one line per registered spec with
/// its mode count and the batched lane counts on offer, e.g.
///   "2x3v_p2_ser: 112 modes, batch lanes {4,8}".
/// This is the execution-path record ensemble/distributed drivers log so
/// archived runs state which kernel path produced them.
std::vector<std::string> describeCompiledKernelSpecs();

/// Log (once per distinct message, to stderr) which execution path a
/// Vlasov updater resolved for `specName`: compiled-vs-tape and, when
/// batched, the chosen lane count. Deduplicated so ensemble campaigns
/// constructing hundreds of updaters emit each line once.
void logKernelDispatch(const std::string& specName, bool compiled, int batchLanes);

/// How many registerCompiledKernels calls overwrote an existing entry.
int numDuplicateKernelRegistrations();

}  // namespace vdg
