#pragma once
// Registry of pre-generated (CAS-emitted, compiled) Vlasov kernels.
//
// Generated translation units in kernels/gen/ register themselves here at
// static-initialization time; VlasovUpdater queries the registry by basis
// spec name and uses the compiled kernels as a fast path (falling back to
// sparse-tape execution for specs without generated code, and always for
// central fluxes — the generated surface kernels bake in the penalty flux).

#include <string>
#include <vector>

namespace vdg {

struct VlasovCompiledKernels {
  int numPhaseModes = 0;

  /// Volume streaming: out += sum_d (2/dxv_d) C^d(v f).
  void (*streamVol)(const double* w, const double* dxv, const double* f, double* out) = nullptr;

  /// Volume acceleration: out += sum_j (2/dxv_j) C^j(alpha_j f).
  void (*accelVol)(const double* dxv, const double* alpha, const double* f,
                   double* out) = nullptr;

  using StreamSurfFn = void (*)(const double* w, const double* dxv, const double* fl,
                                const double* fr, double* outl, double* outr);
  using AccelSurfFn = void (*)(const double* dxv, const double* al, const double* ar,
                               const double* fl, const double* fr, double* outl, double* outr);

  StreamSurfFn streamSurf[3] = {nullptr, nullptr, nullptr};  ///< per config dir
  AccelSurfFn accelSurf[3] = {nullptr, nullptr, nullptr};    ///< per velocity dir

  /// True when every kernel the updater needs is present.
  [[nodiscard]] bool complete(int cdim, int vdim) const {
    if (!streamVol || !accelVol) return false;
    for (int d = 0; d < cdim; ++d)
      if (!streamSurf[d]) return false;
    for (int j = 0; j < vdim; ++j)
      if (!accelSurf[j]) return false;
    return true;
  }
};

/// Look up compiled kernels for a spec name (BasisSpec::name()); nullptr if
/// no generated translation unit registered them.
const VlasovCompiledKernels* findCompiledKernels(const std::string& specName);

/// Called by generated code. A repeated registration for the same spec
/// replaces the previous one ("last registration wins") but is counted and
/// logged to stderr, since it usually means two generated translation
/// units were linked for one spec — see numDuplicateKernelRegistrations().
void registerCompiledKernels(const std::string& specName, const VlasovCompiledKernels& k);

/// Number of registered kernel sets (for tests / diagnostics).
int numCompiledKernelSets();

/// Names of every registered spec, sorted (for tests / diagnostics).
std::vector<std::string> listCompiledKernelSpecs();

/// How many registerCompiledKernels calls overwrote an existing entry.
int numDuplicateKernelRegistrations();

}  // namespace vdg
