#include "kernels/registry.hpp"

#include <map>
#include <mutex>

namespace vdg {

namespace detail {
// Defined by the generated manifest (src/kernels/gen/manifest.cpp).
void registerGeneratedKernels();
}  // namespace detail

namespace {
std::map<std::string, VlasovCompiledKernels>& table() {
  static std::map<std::string, VlasovCompiledKernels> t;
  return t;
}
std::mutex& tableMutex() {
  static std::mutex m;
  return m;
}
void ensureGeneratedRegistered() {
  static std::once_flag once;
  std::call_once(once, [] { detail::registerGeneratedKernels(); });
}
}  // namespace

const VlasovCompiledKernels* findCompiledKernels(const std::string& specName) {
  ensureGeneratedRegistered();
  std::scoped_lock lock(tableMutex());
  const auto it = table().find(specName);
  return it == table().end() ? nullptr : &it->second;
}

void registerCompiledKernels(const std::string& specName, const VlasovCompiledKernels& k) {
  std::scoped_lock lock(tableMutex());
  table()[specName] = k;
}

int numCompiledKernelSets() {
  ensureGeneratedRegistered();
  std::scoped_lock lock(tableMutex());
  return static_cast<int>(table().size());
}

}  // namespace vdg
