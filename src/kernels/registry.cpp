#include "kernels/registry.hpp"

#include <iostream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>

namespace vdg {

namespace detail {
// Defined by the generated manifest (src/kernels/gen/manifest.cpp).
void registerGeneratedKernels();
}  // namespace detail

namespace {
std::map<std::string, VlasovCompiledKernels>& table() {
  static std::map<std::string, VlasovCompiledKernels> t;
  return t;
}
std::mutex& tableMutex() {
  static std::mutex m;
  return m;
}
int& duplicateCount() {
  static int n = 0;
  return n;
}
void ensureGeneratedRegistered() {
  static std::once_flag once;
  std::call_once(once, [] { detail::registerGeneratedKernels(); });
}
}  // namespace

const VlasovCompiledKernels* findCompiledKernels(const std::string& specName) {
  ensureGeneratedRegistered();
  std::scoped_lock lock(tableMutex());
  const auto it = table().find(specName);
  return it == table().end() ? nullptr : &it->second;
}

void registerCompiledKernels(const std::string& specName, const VlasovCompiledKernels& k) {
  std::scoped_lock lock(tableMutex());
  auto [it, inserted] = table().try_emplace(specName);
  if (!inserted) {
    // A batched translation unit may legitimately have created the entry
    // first; only a previously-registered *scalar* set counts as a
    // duplicate. Keep whatever batched slots are already attached.
    if (it->second.streamVol != nullptr) {
      ++duplicateCount();
      std::cerr << "vdg: warning: duplicate compiled-kernel registration for spec '" << specName
                << "' (last registration wins)\n";
    }
  }
  VlasovBatchedKernels saved[kNumKernelBatchLanes];
  for (int i = 0; i < kNumKernelBatchLanes; ++i) saved[i] = it->second.batched[i];
  it->second = k;
  for (int i = 0; i < kNumKernelBatchLanes; ++i)
    if (it->second.batched[i].lanes == 0 && saved[i].lanes != 0) it->second.batched[i] = saved[i];
}

void registerBatchedKernels(const std::string& specName, const VlasovBatchedKernels& b) {
  std::scoped_lock lock(tableMutex());
  VlasovCompiledKernels& entry = table()[specName];
  for (int i = 0; i < kNumKernelBatchLanes; ++i) {
    if (kKernelBatchLanes[i] == b.lanes) {
      entry.batched[i] = b;
      return;
    }
  }
  std::cerr << "vdg: warning: batched-kernel registration for spec '" << specName
            << "' with unsupported lane count " << b.lanes << " ignored\n";
}

int numCompiledKernelSets() {
  ensureGeneratedRegistered();
  std::scoped_lock lock(tableMutex());
  return static_cast<int>(table().size());
}

std::vector<std::string> listCompiledKernelSpecs() {
  ensureGeneratedRegistered();
  std::scoped_lock lock(tableMutex());
  std::vector<std::string> names;
  names.reserve(table().size());
  for (const auto& [name, k] : table()) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

std::vector<std::string> describeCompiledKernelSpecs() {
  ensureGeneratedRegistered();
  std::scoped_lock lock(tableMutex());
  std::vector<std::string> lines;
  lines.reserve(table().size());
  for (const auto& [name, k] : table()) {
    std::ostringstream os;
    os << name << ": " << k.numPhaseModes << " modes";
    bool any = false;
    for (const VlasovBatchedKernels& b : k.batched) {
      if (b.lanes == 0) continue;
      os << (any ? "," : ", batch lanes {") << b.lanes;
      any = true;
    }
    os << (any ? "}" : ", scalar only");
    lines.push_back(os.str());
  }
  return lines;
}

void logKernelDispatch(const std::string& specName, bool compiled, int batchLanes) {
  static std::set<std::string> logged;
  static std::mutex m;
  std::ostringstream os;
  os << "vdg: kernels: " << specName << " -> "
     << (compiled ? "compiled" : "tape-interpreted");
  if (batchLanes > 1)
    os << ", batched B=" << batchLanes << " (AoSoA lane loop active)";
  else
    os << ", scalar cell loop";
  const std::string line = os.str();
  std::scoped_lock lock(m);
  if (logged.insert(line).second) std::cerr << line << "\n";
}

int numDuplicateKernelRegistrations() {
  ensureGeneratedRegistered();
  std::scoped_lock lock(tableMutex());
  return duplicateCount();
}

}  // namespace vdg
