#include "kernels/registry.hpp"

#include <iostream>
#include <map>
#include <mutex>

namespace vdg {

namespace detail {
// Defined by the generated manifest (src/kernels/gen/manifest.cpp).
void registerGeneratedKernels();
}  // namespace detail

namespace {
std::map<std::string, VlasovCompiledKernels>& table() {
  static std::map<std::string, VlasovCompiledKernels> t;
  return t;
}
std::mutex& tableMutex() {
  static std::mutex m;
  return m;
}
int& duplicateCount() {
  static int n = 0;
  return n;
}
void ensureGeneratedRegistered() {
  static std::once_flag once;
  std::call_once(once, [] { detail::registerGeneratedKernels(); });
}
}  // namespace

const VlasovCompiledKernels* findCompiledKernels(const std::string& specName) {
  ensureGeneratedRegistered();
  std::scoped_lock lock(tableMutex());
  const auto it = table().find(specName);
  return it == table().end() ? nullptr : &it->second;
}

void registerCompiledKernels(const std::string& specName, const VlasovCompiledKernels& k) {
  std::scoped_lock lock(tableMutex());
  const auto [it, inserted] = table().insert_or_assign(specName, k);
  (void)it;
  if (!inserted) {
    ++duplicateCount();
    std::cerr << "vdg: warning: duplicate compiled-kernel registration for spec '" << specName
              << "' (last registration wins)\n";
  }
}

int numCompiledKernelSets() {
  ensureGeneratedRegistered();
  std::scoped_lock lock(tableMutex());
  return static_cast<int>(table().size());
}

std::vector<std::string> listCompiledKernelSpecs() {
  ensureGeneratedRegistered();
  std::scoped_lock lock(tableMutex());
  std::vector<std::string> names;
  names.reserve(table().size());
  for (const auto& [name, k] : table()) names.push_back(name);
  return names;  // std::map iteration is already sorted
}

int numDuplicateKernelRegistrations() {
  ensureGeneratedRegistered();
  std::scoped_lock lock(tableMutex());
  return duplicateCount();
}

}  // namespace vdg
