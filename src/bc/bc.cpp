#include "bc/bc.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace vdg {

std::string to_string(BcKind k) {
  switch (k) {
    case BcKind::Periodic: return "periodic";
    case BcKind::Absorb: return "absorb";
    case BcKind::Reflect: return "reflect";
    case BcKind::Copy: return "copy";
  }
  return "?";
}

void AbsorbBc::apply(Field& f, int dim, int side) const {
  const int nc = f.ncomp();
  f.forEachBoundaryGhost(dim, side, [&](const MultiIndex& idx) {
    std::fill_n(f.at(idx), nc, 0.0);
  });
}

void CopyBc::apply(Field& f, int dim, int side) const {
  const int nc = f.ncomp();
  const int skin = side < 0 ? 0 : f.grid().cells[static_cast<std::size_t>(dim)] - 1;
  f.forEachBoundaryGhost(dim, side, [&](const MultiIndex& idx) {
    MultiIndex src = idx;
    src[dim] = skin;
    std::copy_n(f.at(src), nc, f.at(idx));
  });
}

ReflectBc::ReflectBc(const Basis& basis, int cdim)
    : basis_(&basis), cdim_(cdim), vdim_(basis.ndim() - cdim) {
  if (cdim_ < 1 || vdim_ < 0)
    throw std::invalid_argument("ReflectBc: basis has fewer dims than cdim");
  const int np = basis_->numModes();
  for (int d = 0; d < cdim_; ++d) {
    auto& s = sign_[static_cast<std::size_t>(d)];
    s.resize(static_cast<std::size_t>(np));
    for (int l = 0; l < np; ++l) {
      const MultiIndex& a = basis_->mode(l);
      int parity = a[d];  // face mirror: eta_d -> -eta_d
      if (d < vdim_) parity += a[cdim_ + d];  // velocity mirror: v_d -> -v_d
      s[static_cast<std::size_t>(l)] = (parity % 2 != 0) ? -1.0 : 1.0;
    }
  }
}

void ReflectBc::apply(Field& f, int dim, int side) const {
  const Grid& g = f.grid();
  const int np = basis_->numModes();
  const int ncomp = f.ncomp();
  assert(ncomp % np == 0 && "ReflectBc: field is not a stack of basis expansions");
  const int nblk = ncomp / np;
  const int nc = g.cells[static_cast<std::size_t>(dim)];
  // The wall in conf dim `dim` mirrors the matching velocity dimension
  // (phase layout: cdim conf dims then vdim velocity dims). The builder
  // guarantees that dimension's grid is symmetric about v = 0, so the
  // reversed cell index is the exact mirror cell.
  const int vd = dim < vdim_ ? cdim_ + dim : -1;
  const int nv = vd >= 0 ? g.cells[static_cast<std::size_t>(vd)] : 0;
  const std::vector<double>& sign = sign_[static_cast<std::size_t>(dim)];
  f.forEachBoundaryGhost(dim, side, [&](const MultiIndex& idx) {
    MultiIndex src = idx;
    // Ghost layer k cells beyond the wall mirrors interior layer k cells
    // inside it: lower ghost -k <- interior k-1, upper ghost nc-1+k <-
    // interior nc-k.
    src[dim] = side < 0 ? -1 - idx[dim] : 2 * nc - 1 - idx[dim];
    if (vd >= 0) src[vd] = nv - 1 - idx[vd];
    const double* s = f.at(src);
    double* dst = f.at(idx);
    for (int b = 0; b < nblk; ++b)
      for (int l = 0; l < np; ++l)
        dst[b * np + l] = sign[static_cast<std::size_t>(l)] * s[b * np + l];
  });
}

std::unique_ptr<BoundaryCondition> makeBc(BcKind kind, const Basis& basis, int cdim) {
  switch (kind) {
    case BcKind::Periodic: return nullptr;
    case BcKind::Absorb: return std::make_unique<AbsorbBc>();
    case BcKind::Reflect: return std::make_unique<ReflectBc>(basis, cdim);
    case BcKind::Copy: return std::make_unique<CopyBc>();
  }
  return nullptr;
}

bool ownsDomainEdge(const Grid& g, int dim, int side) {
  const auto s = static_cast<std::size_t>(dim);
  if (g.parentCells[s] == 0) return true;  // not windowed: owns both edges
  return side < 0 ? g.offset[s] == 0 : g.offset[s] + g.cells[s] == g.parentCells[s];
}

}  // namespace vdg
