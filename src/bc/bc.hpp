#pragma once
// Physical boundary conditions on configuration-space domain faces.
//
// Every non-periodic domain face of the simulation box carries a
// BoundaryCondition: a rank-local fill of the one-cell ghost slab on that
// face, run by BoundarySyncUpdater *after* the Communicator has repaired
// the decomposed/periodic faces. The DG surface kernels then see the wall
// through the ghost data alone — no special-cased wall fluxes anywhere in
// the hot loops:
//
//  - AbsorbBc: zero ghost. The upwind/penalty numerical flux brings nothing
//    in from a zeroed ghost, so outflow characteristics leave freely and
//    inflow is empty — the absorbing-wall closure of Juno et al. (JCP 2018)
//    used by the kinetic sheath benchmark (examples/sheath_1x1v.cpp).
//  - ReflectBc: specular wall. The ghost cell is the velocity-mirrored,
//    face-mirrored copy of the interior cell: for a wall normal to conf
//    dim d, ghost(x, v) = interior(2 x_wall - x, ..., -v_d, ...). In the
//    modal Legendre basis both mirrors are exact sign flips of the odd
//    modes, so the fill is a signed copy — exact (no interpolation) on the
//    mirror-symmetric velocity grids the builder validates.
//  - CopyBc: zeroth-order extrapolation (the adjacent interior cell's
//    expansion, unchanged) — an open/outflow boundary.
//
// Periodic faces have no BoundaryCondition object; the Communicator wrap
// *is* the condition. Construction is per slot (a species distribution and
// the em field may carry different conditions per face), assembled by
// Simulation::Builder::boundary into a BcTable.

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "basis/basis.hpp"
#include "grid/grid.hpp"

namespace vdg {

/// Which end of a dimension a boundary condition binds to.
enum class Edge { Lower = 0, Upper = 1 };

/// Edge as the +-1 side convention of Field::packGhost / CartDecomp.
[[nodiscard]] constexpr int edgeSide(Edge e) { return e == Edge::Lower ? -1 : +1; }

/// What happens at one domain face.
enum class BcKind {
  Periodic,  ///< wrap (the default); handled by the Communicator, no fill
  Absorb,    ///< zero-inflow ghost: particles crossing the face are lost
  Reflect,   ///< specular wall: velocity-mirrored copy of the interior cell
  Copy,      ///< zeroth-order extrapolation (open boundary)
};

[[nodiscard]] std::string to_string(BcKind k);

/// Per-face request, as passed to Simulation::Builder::boundary.
struct BcSpec {
  BcKind kind = BcKind::Periodic;
};

/// Fills the ghost slab of one domain face of a (possibly rank-local)
/// field. Implementations are rank-local and read only interior data of
/// the field they fill, so applying them on edge-owning ranks is bitwise
/// identical to the serial fill of the same cells.
class BoundaryCondition {
 public:
  virtual ~BoundaryCondition() = default;

  /// Fill the ghost slab on `side` (-1 lower, +1 upper) of dimension `dim`.
  virtual void apply(Field& f, int dim, int side) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Zero-inflow ghost fill (absorbing wall / particle sink).
class AbsorbBc final : public BoundaryCondition {
 public:
  void apply(Field& f, int dim, int side) const override;
  [[nodiscard]] std::string name() const override { return "absorb"; }
};

/// Zeroth-order extrapolation: every ghost layer copies the adjacent
/// interior cell's expansion unchanged (open boundary).
class CopyBc final : public BoundaryCondition {
 public:
  void apply(Field& f, int dim, int side) const override;
  [[nodiscard]] std::string name() const override { return "copy"; }
};

/// Specular (reflecting) wall for a phase-space distribution: the ghost
/// cell of a wall normal to configuration dim d is the interior cell
/// mirrored across the wall plane and across v_d = 0. Both mirrors act on
/// the modal basis as exact sign flips — mode a picks (-1)^(a_d + a_{cdim+d})
/// — and the velocity *cell* index is reversed, which is exact when the
/// velocity grid is symmetric about v_d = 0 (the builder validates this).
/// For a configuration-space basis (vdim == 0) only the face mirror
/// applies: (-1)^(a_d) — a zero-normal-gradient-of-odd-modes closure.
class ReflectBc final : public BoundaryCondition {
 public:
  /// `basis` is the slot's basis (phase-space for a distribution
  /// function); `cdim` the number of configuration dimensions.
  ReflectBc(const Basis& basis, int cdim);
  void apply(Field& f, int dim, int side) const override;
  [[nodiscard]] std::string name() const override { return "reflect"; }

 private:
  const Basis* basis_;
  int cdim_, vdim_;
  /// Per conf dim, per mode: the mirror sign (-1)^(a_d [+ a_{cdim+d}]).
  std::array<std::vector<double>, kMaxDim> sign_;
};

/// Factory: a fill object for `kind`, or nullptr for Periodic (the wrap is
/// the Communicator's job). `basis`/`cdim` are only consulted by Reflect.
[[nodiscard]] std::unique_ptr<BoundaryCondition> makeBc(BcKind kind, const Basis& basis,
                                                        int cdim);

/// True when this (possibly rank-local subgrid) grid touches the global
/// domain edge on `side` of `dim` — only edge-owning ranks apply physical
/// fills, which keeps distributed trajectories bitwise identical to serial.
[[nodiscard]] bool ownsDomainEdge(const Grid& g, int dim, int side);

/// Per-slot, per-face registry of physical boundary conditions: slot i of
/// the StateVector uses get(i, dim, side), which is null on periodic faces.
/// Species distributions and the em field can carry different conditions
/// on the same face (e.g. absorb for particles, copy for the field).
class BcTable {
 public:
  BcTable() = default;
  explicit BcTable(int numSlots) : slots_(static_cast<std::size_t>(numSlots)) {}

  [[nodiscard]] int numSlots() const { return static_cast<int>(slots_.size()); }

  void set(int slot, int dim, Edge edge, std::unique_ptr<BoundaryCondition> bc) {
    slots_[static_cast<std::size_t>(slot)][static_cast<std::size_t>(dim)]
          [static_cast<std::size_t>(edge)] = std::move(bc);
  }

  /// The fill for slot/dim/side (-1 lower, +1 upper), or null (periodic).
  [[nodiscard]] const BoundaryCondition* get(int slot, int dim, int side) const {
    return slots_[static_cast<std::size_t>(slot)][static_cast<std::size_t>(dim)]
                 [side < 0 ? 0 : 1]
                     .get();
  }

  /// True when any slot carries a physical condition on any face.
  [[nodiscard]] bool anyPhysical() const {
    for (const auto& slot : slots_)
      for (const auto& dim : slot)
        for (const auto& bc : dim)
          if (bc) return true;
    return false;
  }

 private:
  using FacePair = std::array<std::unique_ptr<BoundaryCondition>, 2>;
  std::vector<std::array<FacePair, kMaxDim>> slots_;
};

}  // namespace vdg
