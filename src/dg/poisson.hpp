#pragma once
// DG Poisson solver for the electrostatic (Vlasov-Poisson) limit of the
// paper's kinetic scheme:
//
//   -lap(phi) = rho / eps0        on the periodic configuration grid,
//   E = -grad(phi)                projected onto the configuration basis,
//
// with the zero-mean gauge int phi dx = 0 fixing the constant that the
// periodic Laplacian cannot see.
//
// Non-periodic domains (PoissonBcKind in PoissonParams::bc) replace the
// periodic wrap at each wall with a one-sided recovery closure
// (tensors/dg_tensors.hpp buildBoundaryRecoveryWeights): the boundary
// cell's moments plus the wall constraint — a Dirichlet potential value
// (grounded or biased electrode) or a Neumann normal derivative — define a
// degree-(p+1) polynomial whose wall value/slope feed the same weak form
// as the interior recovery. With at least one Dirichlet wall the operator
// is nonsingular and the zero-mean bordered system is dropped; a pure
// Neumann-Neumann domain keeps the gauge border (the multiplier also
// absorbs any datum/charge incompatibility). Boundary data enter the solve
// as an affine load vector; applyMinusLaplacian stays the homogeneous
// linear operator.
//
// The discrete Laplacian is the recovery-based DG operator shared with the
// LBO collision diffusion (tensors/dg_tensors.hpp): across every interior
// face the two neighboring cells merge into the unique degree-(2p+1)
// recovery polynomial reproducing both cells' moments, whose interface
// value and slope feed the twice-integrated-by-parts weak form — exact
// sparse tapes, no quadrature in the operator, and super-convergent
// (order >= p+1, tests/test_poisson.cpp measures ~2p) potentials. The
// electric field is the weak gradient with the *recovered* (continuous)
// interface trace of phi, so E inherits the recovery accuracy.
//
// Unlike the hyperbolic Maxwell path, the field here is elliptic: the
// operator couples every cell, so the solve is a global direct LU of the
// (block-tridiagonal periodic, zero-mean-bordered) system, factored once
// at setup and back-substituted per evaluation — FFT-free and exact to
// round-off, the right trade for 1x configuration grids. The flat-vector
// interface (global cell-major coefficients, forEachCell order) and the
// per-direction electricField evaluation are cdim-general so a 2x backend
// (banded or multigrid in place of the dense LU) can slot in behind the
// same API; construction currently rejects cdim != 1.

#include <span>
#include <vector>

#include "basis/basis.hpp"
#include "grid/grid.hpp"
#include "math/dense_matrix.hpp"
#include "tensors/dg_tensors.hpp"

namespace vdg {

/// Potential closure at one domain wall.
enum class PoissonBcKind {
  Periodic,   ///< wrap (the default; both edges of a dim must agree)
  Dirichlet,  ///< phi = value at the wall (grounded / biased electrode)
  Neumann,    ///< dphi/dx_d = value at the wall (in physical x units)
};

struct PoissonBcSpec {
  PoissonBcKind kind = PoissonBcKind::Periodic;
  double value = 0.0;  ///< wall potential (Dirichlet) or dphi/dx (Neumann)
};

struct PoissonParams {
  double epsilon0 = 1.0;
  /// Per [dimension][edge] (edge 0 = lower, 1 = upper) wall closure.
  /// Defaults to fully periodic — existing callers are untouched.
  std::array<std::array<PoissonBcSpec, 2>, kMaxDim> bc{};
};

class PoissonSolver {
 public:
  /// `confSpec` must have vdim == 0; `confGrid` is the *global* grid (pass
  /// Grid::parent() of a rank-local window — every rank factors the same
  /// global operator, which is what keeps distributed solves bit-identical
  /// to serial ones). Throws for cdim != 1 (2x: planned, same interface).
  PoissonSolver(const BasisSpec& confSpec, const Grid& confGrid, const PoissonParams& params);

  [[nodiscard]] const Basis& basis() const { return *basis_; }
  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] const PoissonParams& params() const { return params_; }
  [[nodiscard]] int numModes() const { return np_; }
  /// Flat global coefficient count: numCells * numModes, cell-major in
  /// forEachCell (dimension-0-fastest) order.
  [[nodiscard]] std::size_t numUnknowns() const { return n_; }

  /// Flat index of the first coefficient of global cell `gidx`.
  [[nodiscard]] std::size_t flatIndex(const MultiIndex& gidx) const {
    std::size_t o = 0;
    for (int d = 0; d < grid_.ndim; ++d)
      o += static_cast<std::size_t>(gidx[d]) * stride_[static_cast<std::size_t>(d)];
    return o * static_cast<std::size_t>(np_);
  }

  /// True when any wall closure is non-periodic.
  [[nodiscard]] bool isPeriodic() const { return periodic_; }
  /// True when the solve carries the zero-mean gauge border (periodic or
  /// pure-Neumann domains, whose operator has the constant null space).
  [[nodiscard]] bool hasGauge() const { return gauge_; }

  /// Solve -lap(phi) = rho/eps0. `rho` and `phi` are flat global
  /// coefficient vectors (size numUnknowns()). Periodic and pure-Neumann
  /// domains solve in the zero-mean gauge: any mean charge (or Neumann
  /// datum incompatibility) is absorbed by the gauge's Lagrange
  /// multiplier, yielding the unique zero-mean potential of the
  /// fluctuating part. With a Dirichlet wall the solution is unique as-is;
  /// the wall data enter through the affine boundary load boundaryRhs().
  void solve(std::span<const double> rho, std::span<double> phi) const;

  /// out = -lap(phi), the *homogeneous* discrete operator (wall data = 0)
  /// the solve inverts; for tests and residual checks the full equation is
  /// applyMinusLaplacian(phi) == rho/eps0 + boundaryRhs().
  void applyMinusLaplacian(std::span<const double> phi, std::span<double> out) const;

  /// Affine load of the (inhomogeneous) wall data, already on the
  /// right-hand side: the solve inverts A phi = rho/eps0 + boundaryRhs().
  /// All zeros on periodic (or homogeneous-data) domains.
  [[nodiscard]] std::span<const double> boundaryRhs() const { return bcRhs_; }

  /// E_d = -d(phi)/dx_d of global cell `gidx` as a basis expansion (np
  /// coefficients): weak gradient with the recovered continuous interface
  /// trace of phi. Reads only `gidx` and its two d-neighbors (periodic
  /// wrap; at a non-periodic wall the trace is the boundary-recovery wall
  /// value, which sees the Dirichlet/Neumann data), so rank-local
  /// writeback from a global phi needs no ghosts.
  void cellElectricField(std::span<const double> phi, const MultiIndex& gidx, int d,
                         std::span<double> e) const;

  /// Domain integral of a flat coefficient vector (the gauge functional;
  /// ~0 for every solve result).
  [[nodiscard]] double domainIntegral(std::span<const double> phi) const;

 private:
  const Basis* basis_;
  Grid grid_;
  PoissonParams params_;
  int np_ = 0;
  std::size_t n_ = 0;
  std::array<std::size_t, kMaxDim> stride_{};  ///< cell strides, dim 0 fastest

  DenseMatrix vol2_;    ///< int w_l'' w_n deta (volume term of the weak lap)
  Tape2 grad_;          ///< int w_l' w_n deta (weak gradient volume term)
  RecoveryWeights rec_;
  std::vector<double> endMinus_, endPlus_;      ///< psi_l(-1), psi_l(+1)
  std::vector<double> dEndMinus_, dEndPlus_;    ///< psi_l'(-1), psi_l'(+1)

  // --- non-periodic wall closures (1x: the two ends of dimension 0).
  bool periodic_ = true;
  bool gauge_ = true;  ///< solve carries the zero-mean border
  BoundaryRecoveryWeights bcLo_, bcHi_;  ///< one-sided recovery per wall
  double ghatLo_ = 0.0, ghatHi_ = 0.0;   ///< wall data in reference units
  std::vector<double> bcRhs_;            ///< affine wall load (size n_)

  LuSolver lu_;  ///< [-lap] (Dirichlet) or bordered (n+1) gauge system
};

}  // namespace vdg
