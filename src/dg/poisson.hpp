#pragma once
// DG Poisson solver for the electrostatic (Vlasov-Poisson) limit of the
// paper's kinetic scheme:
//
//   -lap(phi) = rho / eps0        on the periodic configuration grid,
//   E = -grad(phi)                projected onto the configuration basis,
//
// with the zero-mean gauge int phi dx = 0 fixing the constant that the
// periodic Laplacian cannot see.
//
// The discrete Laplacian is the recovery-based DG operator shared with the
// LBO collision diffusion (tensors/dg_tensors.hpp): across every interior
// face the two neighboring cells merge into the unique degree-(2p+1)
// recovery polynomial reproducing both cells' moments, whose interface
// value and slope feed the twice-integrated-by-parts weak form — exact
// sparse tapes, no quadrature in the operator, and super-convergent
// (order >= p+1, tests/test_poisson.cpp measures ~2p) potentials. The
// electric field is the weak gradient with the *recovered* (continuous)
// interface trace of phi, so E inherits the recovery accuracy.
//
// Unlike the hyperbolic Maxwell path, the field here is elliptic: the
// operator couples every cell, so the solve is a global direct LU of the
// (block-tridiagonal periodic, zero-mean-bordered) system, factored once
// at setup and back-substituted per evaluation — FFT-free and exact to
// round-off, the right trade for 1x configuration grids. The flat-vector
// interface (global cell-major coefficients, forEachCell order) and the
// per-direction electricField evaluation are cdim-general so a 2x backend
// (banded or multigrid in place of the dense LU) can slot in behind the
// same API; construction currently rejects cdim != 1.

#include <span>
#include <vector>

#include "basis/basis.hpp"
#include "grid/grid.hpp"
#include "math/dense_matrix.hpp"
#include "tensors/dg_tensors.hpp"

namespace vdg {

struct PoissonParams {
  double epsilon0 = 1.0;
};

class PoissonSolver {
 public:
  /// `confSpec` must have vdim == 0; `confGrid` is the *global* grid (pass
  /// Grid::parent() of a rank-local window — every rank factors the same
  /// global operator, which is what keeps distributed solves bit-identical
  /// to serial ones). Throws for cdim != 1 (2x: planned, same interface).
  PoissonSolver(const BasisSpec& confSpec, const Grid& confGrid, const PoissonParams& params);

  [[nodiscard]] const Basis& basis() const { return *basis_; }
  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] const PoissonParams& params() const { return params_; }
  [[nodiscard]] int numModes() const { return np_; }
  /// Flat global coefficient count: numCells * numModes, cell-major in
  /// forEachCell (dimension-0-fastest) order.
  [[nodiscard]] std::size_t numUnknowns() const { return n_; }

  /// Flat index of the first coefficient of global cell `gidx`.
  [[nodiscard]] std::size_t flatIndex(const MultiIndex& gidx) const {
    std::size_t o = 0;
    for (int d = 0; d < grid_.ndim; ++d)
      o += static_cast<std::size_t>(gidx[d]) * stride_[static_cast<std::size_t>(d)];
    return o * static_cast<std::size_t>(np_);
  }

  /// Solve -lap(phi) = rho/eps0 with the zero-mean gauge. `rho` and `phi`
  /// are flat global coefficient vectors (size numUnknowns()). Any mean
  /// charge is absorbed by the gauge's Lagrange multiplier, so a non-
  /// neutral rho still yields the (unique, zero-mean) periodic potential
  /// of its fluctuating part.
  void solve(std::span<const double> rho, std::span<double> phi) const;

  /// out = -lap(phi), the discrete operator the solve inverts (for tests
  /// and residual checks).
  void applyMinusLaplacian(std::span<const double> phi, std::span<double> out) const;

  /// E_d = -d(phi)/dx_d of global cell `gidx` as a basis expansion (np
  /// coefficients): weak gradient with the recovered continuous interface
  /// trace of phi. Reads only `gidx` and its two d-neighbors (periodic
  /// wrap), so rank-local writeback from a global phi needs no ghosts.
  void cellElectricField(std::span<const double> phi, const MultiIndex& gidx, int d,
                         std::span<double> e) const;

  /// Domain integral of a flat coefficient vector (the gauge functional;
  /// ~0 for every solve result).
  [[nodiscard]] double domainIntegral(std::span<const double> phi) const;

 private:
  const Basis* basis_;
  Grid grid_;
  PoissonParams params_;
  int np_ = 0;
  std::size_t n_ = 0;
  std::array<std::size_t, kMaxDim> stride_{};  ///< cell strides, dim 0 fastest

  DenseMatrix vol2_;    ///< int w_l'' w_n deta (volume term of the weak lap)
  Tape2 grad_;          ///< int w_l' w_n deta (weak gradient volume term)
  RecoveryWeights rec_;
  std::vector<double> endMinus_, endPlus_;      ///< psi_l(-1), psi_l(+1)
  std::vector<double> dEndMinus_, dEndPlus_;    ///< psi_l'(-1), psi_l'(+1)

  LuSolver lu_;  ///< bordered (n+1) system: [-lap, gauge; gauge^T, 0]
};

}  // namespace vdg
