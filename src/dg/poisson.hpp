#pragma once
// DG Poisson solver for the electrostatic (Vlasov-Poisson) limit of the
// paper's kinetic scheme:
//
//   -lap(phi) = rho / eps0        on the 1x/2x/3x configuration grid,
//   E = -grad(phi)                projected onto the configuration basis,
//
// with the zero-mean gauge int phi dx = 0 fixing the constant that the
// operator cannot see on periodic / pure-Neumann domains.
//
// Non-periodic dimensions (PoissonBcKind in PoissonParams::bc) replace the
// periodic wrap at each wall with a one-sided recovery closure
// (tensors/dg_tensors.hpp buildBoundaryRecoveryWeights): the boundary
// cell's moments plus the wall constraint — a Dirichlet potential value
// (grounded or biased electrode) or a Neumann normal derivative — define a
// degree-(p+1) polynomial whose wall value/slope feed the same weak form
// as the interior recovery. With at least one Dirichlet wall the operator
// is nonsingular and the zero-mean gauge is dropped; domains whose walls
// are all periodic or Neumann keep it (the gauge also absorbs any
// datum/charge incompatibility). Boundary data enter the solve as an
// affine load vector; applyMinusLaplacian stays the homogeneous linear
// operator.
//
// The discrete Laplacian is the recovery-based DG operator shared with the
// LBO collision diffusion (tensors/dg_tensors.hpp): across every interior
// face the two neighboring cells merge, per transverse face mode, into the
// unique degree-(2p+1) 1-D recovery polynomial reproducing both cells'
// slice moments, whose interface value and slope feed the
// twice-integrated-by-parts weak form — exact sparse tapes, no quadrature
// in the operator, and super-convergent (order >= p+1,
// tests/test_poisson.cpp and tests/test_poisson_cg.cpp measure ~2p)
// potentials in every dimension. The electric field is the weak gradient
// with the *recovered* (continuous) interface trace of phi, so E inherits
// the recovery accuracy.
//
// Two interchangeable backends solve the elliptic system:
//
//  - DirectLu: the operator is assembled column-by-column through
//    applyMinusLaplacian and LU-factored once (with the zero-mean gauge as
//    a bordered Lagrange row on gauge domains); solves are
//    back-substitutions, exact to round-off. O(n^2) storage and O(n^3)
//    setup make it the 1x fast path and the small-grid cross-check oracle
//    for any cdim.
//
//  - ConjGrad: matrix-free block-Jacobi preconditioned Krylov iteration.
//    The operator is applied as an on-the-fly stencil sweep (never
//    assembled), the preconditioner is the per-cell np x np diagonal block
//    factored once per distinct boundary signature, and on gauge domains
//    the constant null vector is projected out of the right-hand side and
//    of every preconditioned direction, so the Krylov space never sees it.
//    O(n) memory — this is what unlocks 2x/3x electrostatics. At p = 1 the
//    recovery Laplacian is symmetric to round-off and the iteration is
//    true preconditioned CG; at p >= 2 the twice-integrated-by-parts
//    recovery operator is mildly non-self-adjoint (measured ~4-8% relative
//    asymmetry in the intra-cell mode coupling, every cdim — CG stagnates
//    on it at fine grids), so the backend switches to the transpose-free
//    BiCGStab recurrence with the same operator sweep, preconditioner, and
//    reductions. Residual dot products are accumulated per *cell* chunk
//    and summed in global cell order; on a distributed run each rank
//    computes only its chunk range and the ranks exchange them through
//    Communicator::allReduceSum (0 + x == x bitwise, so the reduction is a
//    concatenation) — the residual history, iteration count, and solution
//    are bitwise identical to the serial solve.
//
// PoissonMethod::Auto picks DirectLu for cdim == 1 and ConjGrad otherwise.

#include <span>
#include <vector>

#include "basis/basis.hpp"
#include "grid/grid.hpp"
#include "math/dense_matrix.hpp"
#include "tensors/dg_tensors.hpp"

namespace vdg {

class Communicator;

/// Potential closure at one domain wall.
enum class PoissonBcKind {
  Periodic,   ///< wrap (the default; both edges of a dim must agree)
  Dirichlet,  ///< phi = value at the wall (grounded / biased electrode)
  Neumann,    ///< dphi/dx_d = value at the wall (in physical x units)
};

struct PoissonBcSpec {
  PoissonBcKind kind = PoissonBcKind::Periodic;
  double value = 0.0;  ///< wall potential (Dirichlet) or dphi/dx (Neumann)
};

/// Elliptic backend selection (see the header comment).
enum class PoissonMethod {
  Auto,      ///< DirectLu for 1x, ConjGrad for 2x/3x
  DirectLu,  ///< dense assembled LU — exact, O(n^2) memory
  ConjGrad,  ///< matrix-free block-Jacobi PCG (p1) / BiCGStab (p>=2) — O(n) memory
};

struct PoissonParams {
  double epsilon0 = 1.0;
  /// Per [dimension][edge] (edge 0 = lower, 1 = upper) wall closure.
  /// Defaults to fully periodic — existing callers are untouched.
  std::array<std::array<PoissonBcSpec, 2>, kMaxDim> bc{};
  PoissonMethod method = PoissonMethod::Auto;
  /// ConjGrad: relative residual target ||r|| <= cgTol * ||b||.
  double cgTol = 1e-12;
  /// ConjGrad: iteration cap; 0 picks a generous mesh-scaled default.
  /// solve() throws std::runtime_error if the cap is hit unconverged.
  int cgMaxIter = 0;
};

class PoissonSolver {
 public:
  /// Iteration diagnostics of one solve (ConjGrad; the LU path reports
  /// zero iterations and its true residual is round-off).
  struct SolveStats {
    int iterations = 0;
    double relResidual = 0.0;
  };

  /// `confSpec` must have vdim == 0; `confGrid` is the *global* grid (pass
  /// Grid::parent() of a rank-local window — every rank drives the same
  /// global solve, which is what keeps distributed runs bit-identical to
  /// serial ones). Any cdim in [1, kMaxDim] is supported.
  PoissonSolver(const BasisSpec& confSpec, const Grid& confGrid, const PoissonParams& params);

  [[nodiscard]] const Basis& basis() const { return *basis_; }
  [[nodiscard]] const Grid& grid() const { return grid_; }
  [[nodiscard]] const PoissonParams& params() const { return params_; }
  [[nodiscard]] int numModes() const { return np_; }
  /// Flat global coefficient count: numCells * numModes, cell-major in
  /// forEachCell (dimension-0-fastest) order.
  [[nodiscard]] std::size_t numUnknowns() const { return n_; }
  /// The backend actually in use (params().method with Auto resolved).
  [[nodiscard]] PoissonMethod method() const { return method_; }

  /// Flat index of the first coefficient of global cell `gidx`.
  [[nodiscard]] std::size_t flatIndex(const MultiIndex& gidx) const {
    std::size_t o = 0;
    for (int d = 0; d < grid_.ndim; ++d)
      o += static_cast<std::size_t>(gidx[d]) * stride_[static_cast<std::size_t>(d)];
    return o * static_cast<std::size_t>(np_);
  }

  /// True when every dimension wraps periodically.
  [[nodiscard]] bool isPeriodic() const { return periodic_; }
  /// True when the solve carries the zero-mean gauge (no Dirichlet wall
  /// anywhere, so the operator has the constant null space).
  [[nodiscard]] bool hasGauge() const { return gauge_; }

  /// Solve -lap(phi) = rho/eps0. `rho` and `phi` are flat global
  /// coefficient vectors (size numUnknowns()). Gauge domains solve in the
  /// zero-mean gauge: any mean charge (or Neumann datum incompatibility)
  /// is absorbed, yielding the unique zero-mean potential of the
  /// fluctuating part. With a Dirichlet wall the solution is unique as-is;
  /// the wall data enter through the affine boundary load boundaryRhs().
  ///
  /// `comm` (may be null == serial) carries the ConjGrad residual
  /// reductions: ranks of a distributed run must all enter with their own
  /// endpoint of the same Communicator, and every rank gets the bitwise
  /// identical solution and residual history (see the header comment).
  /// Thread-safe: const, all iteration state is call-local, so one shared
  /// solver serves concurrent rank threads.
  SolveStats solve(std::span<const double> rho, std::span<double> phi,
                   Communicator* comm) const;
  void solve(std::span<const double> rho, std::span<double> phi) const {
    (void)solve(rho, phi, nullptr);
  }

  /// out = -lap(phi), the *homogeneous* discrete operator (wall data = 0)
  /// the solve inverts; for tests and residual checks the full equation is
  /// applyMinusLaplacian(phi) == rho/eps0 + boundaryRhs().
  void applyMinusLaplacian(std::span<const double> phi, std::span<double> out) const;

  /// Affine load of the (inhomogeneous) wall data, already on the
  /// right-hand side: the solve inverts A phi = rho/eps0 + boundaryRhs().
  /// All zeros on periodic (or homogeneous-data) domains.
  [[nodiscard]] std::span<const double> boundaryRhs() const { return bcRhs_; }

  /// E_d = -d(phi)/dx_d of global cell `gidx` as a basis expansion (np
  /// coefficients): weak gradient with the recovered continuous interface
  /// trace of phi. Reads only `gidx` and its two d-neighbors (periodic
  /// wrap; at a non-periodic wall the trace is the boundary-recovery wall
  /// value, which sees the Dirichlet/Neumann data), so rank-local
  /// writeback from a global phi needs no ghosts.
  void cellElectricField(std::span<const double> phi, const MultiIndex& gidx, int d,
                         std::span<double> e) const;

  /// Domain integral of a flat coefficient vector (the gauge functional;
  /// ~0 for every solve result).
  [[nodiscard]] double domainIntegral(std::span<const double> phi) const;

 private:
  // --- per-direction stencil tables (sized [cdim]).
  struct DirTables {
    FaceMap face;                ///< volume-mode -> transverse face mode (+ traces)
    std::vector<int> slice;      ///< [faceMode][m]: volume mode of d-degree m, -1 hole
    std::vector<double> dEndM;   ///< psi'_{a_d}(-1) per volume mode
    std::vector<double> dEndP;   ///< psi'_{a_d}(+1) per volume mode
    Tape2 grad;                  ///< int dw_l/deta_d w_n deta (E volume term)
    double unitFace = 1.0;       ///< face-mode-0 coefficient of the constant 1
    double s2 = 0.0;             ///< (2/dx_d)^2
    // Non-periodic walls of this direction.
    bool periodicDim = true;
    BoundaryRecoveryWeights bcLo, bcHi;  ///< one-sided recovery per wall
    double ghatLo = 0.0, ghatHi = 0.0;   ///< wall data in reference units
  };

  void buildDiagBlocks();
  SolveStats solveCg(std::span<double> b, std::span<double> phi, Communicator* comm) const;
  SolveStats solveBiCgStab(std::span<double> b, std::span<double> phi,
                           Communicator* comm) const;
  void applyBlockJacobi(std::span<const double> r, std::span<double> z) const;
  /// Subtract the constant-mode mean (the gauge projection).
  void projectOutConstant(std::span<double> v) const;
  /// Deterministic chunked dot product (see header comment): per-cell
  /// partials into `chunks`, rank-window restricted, all-reduced, then
  /// summed in global cell order. Bitwise rank-count independent.
  [[nodiscard]] double dotReduce(std::span<const double> a, std::span<const double> b,
                                 std::span<double> chunks, Communicator* comm,
                                 std::size_t cellBegin, std::size_t cellEnd) const;

  const Basis* basis_;
  Grid grid_;
  PoissonParams params_;
  PoissonMethod method_ = PoissonMethod::DirectLu;
  int np_ = 0;
  int p1_ = 0;        ///< polyOrder + 1 (slice length)
  int constMode_ = 0; ///< volume mode of the constant (the gauge direction)
  std::size_t n_ = 0;
  std::array<std::size_t, kMaxDim> stride_{};  ///< cell strides, dim 0 fastest

  DenseMatrix volAll_;  ///< sum_d s2_d int w_l d2w_n/deta_d^2 (fused volume term)
  RecoveryWeights rec_;
  std::vector<DirTables> dir_;

  bool periodic_ = true;
  bool gauge_ = true;   ///< solve carries the zero-mean gauge
  bool symOp_ = true;   ///< operator symmetric to round-off (p = 1): true CG
  std::vector<double> bcRhs_;       ///< affine wall load (size n_)

  LuSolver lu_;  ///< DirectLu: [-lap] (Dirichlet) or bordered (n+1) gauge system

  // ConjGrad block-Jacobi preconditioner: one factored np x np diagonal
  // block per distinct boundary signature, plus the per-cell signature map.
  std::vector<LuSolver> blocks_;
  std::vector<int> blockOf_;  ///< per global cell (flat order), index into blocks_
  int maxIter_ = 0;           ///< resolved iteration cap
};

}  // namespace vdg
