#include "dg/maxwell.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace vdg {

namespace {

// Component indices in the PHM state vector.
enum : int { EX = 0, EY, EZ, BX, BY, BZ, PHI, PSI };

int levi(int i, int j, int k) {
  if (i == j || j == k || i == k) return 0;
  return ((j - i + 3) % 3 == 1) ? 1 : -1;
}

}  // namespace

MaxwellUpdater::MaxwellUpdater(const BasisSpec& confSpec, const Grid& confGrid,
                               const MaxwellParams& params)
    : basis_(&basisFor(confSpec)), grid_(confGrid), params_(params) {
  if (confSpec.vdim != 0)
    throw std::invalid_argument("MaxwellUpdater: spec must be configuration-space (vdim==0)");
  if (confGrid.ndim != confSpec.cdim)
    throw std::invalid_argument("MaxwellUpdater: grid/basis dimensionality mismatch");
  for (int d = 0; d < grid_.ndim; ++d) {
    grad_.push_back(buildGradTape(*basis_, d));
    if (grid_.ndim == 1)
      face_.push_back(buildPointFaceMap(*basis_));
    else
      face_.push_back(buildFaceMap(*basis_, basis_->faceBasis(d), d));
  }
}

double MaxwellUpdater::advance(const Field& em, Field& rhs) const {
  const int np = basis_->numModes();
  assert(em.ncomp() == 8 * np && rhs.ncomp() == 8 * np);
  const double c = params_.lightSpeed;
  const double c2 = c * c;
  const double chi = params_.chi, gam = params_.gamma;

  rhs.setZero();

  // Flux of component q in direction d, as a linear combination of state
  // components: F_d(E_i) = -c^2 eps_{idk} B_k + chi c^2 phi delta_{id};
  //             F_d(B_i) =      eps_{idk} E_k + gamma   psi delta_{id};
  //             F_d(phi) = chi E_d;   F_d(psi) = gamma c^2 B_d.
  // Precompute the (component, coefficient) pairs once.
  struct LinTerm {
    int src;
    double c;
  };
  std::array<std::array<std::vector<LinTerm>, 8>, 3> flux{};
  for (int d = 0; d < grid_.ndim; ++d) {
    for (int i = 0; i < 3; ++i) {
      for (int k = 0; k < 3; ++k) {
        const int s = levi(i, d, k);
        if (s != 0) {
          flux[static_cast<std::size_t>(d)][static_cast<std::size_t>(EX + i)].push_back(
              {BX + k, -c2 * s});
          flux[static_cast<std::size_t>(d)][static_cast<std::size_t>(BX + i)].push_back(
              {EX + k, static_cast<double>(s)});
        }
      }
      if (i == d) {
        flux[static_cast<std::size_t>(d)][static_cast<std::size_t>(EX + i)].push_back(
            {PHI, chi * c2});
        flux[static_cast<std::size_t>(d)][static_cast<std::size_t>(BX + i)].push_back({PSI, gam});
      }
    }
    flux[static_cast<std::size_t>(d)][PHI].push_back({EX + d, chi});
    flux[static_cast<std::size_t>(d)][PSI].push_back({BX + d, gam * c2});
  }

  // ---------------------------------------------------------------- volume
  std::vector<double> fcomp(static_cast<std::size_t>(np));
  forEachCell(grid_, [&](const MultiIndex& idx) {
    const double* u = em.at(idx);
    double* r = rhs.at(idx);
    for (int d = 0; d < grid_.ndim; ++d) {
      const double rdx2 = 2.0 / grid_.dx(d);
      for (int q = 0; q < 8; ++q) {
        const auto& terms = flux[static_cast<std::size_t>(d)][static_cast<std::size_t>(q)];
        if (terms.empty()) continue;
        std::fill(fcomp.begin(), fcomp.end(), 0.0);
        for (const LinTerm& t : terms)
          for (int n = 0; n < np; ++n)
            fcomp[static_cast<std::size_t>(n)] += t.c * u[t.src * np + n];
        grad_[static_cast<std::size_t>(d)].execute(
            fcomp, {r + q * np, static_cast<std::size_t>(np)}, rdx2);
      }
    }
  });

  // --------------------------------------------------------------- surface
  const bool penalty = params_.flux == FluxType::Penalty;
  const double tau = penalty ? c * std::max({1.0, chi, gam}) : 0.0;
  for (int d = 0; d < grid_.ndim; ++d) {
    const FaceMap& fmap = face_[static_cast<std::size_t>(d)];
    const int nf = fmap.numFaceModes;
    const double rdx2 = 2.0 / grid_.dx(d);
    std::vector<double> uL(static_cast<std::size_t>(8 * nf)), uR(static_cast<std::size_t>(8 * nf));
    std::vector<double> fhat(static_cast<std::size_t>(8 * nf));

    Grid faceGrid = grid_;
    faceGrid.cells[static_cast<std::size_t>(d)] += 1;
    forEachCell(faceGrid, [&](const MultiIndex& fidx) {
      const int i = fidx[d];
      const int nd = grid_.cells[static_cast<std::size_t>(d)];
      MultiIndex lidx = fidx;
      lidx[d] = i - 1;
      const double* ul = em.at(lidx);
      const double* ur = em.at(fidx);
      for (int q = 0; q < 8; ++q) {
        fmap.restrictTo({ul + q * np, static_cast<std::size_t>(np)},
                        {uL.data() + q * nf, static_cast<std::size_t>(nf)}, +1);
        fmap.restrictTo({ur + q * np, static_cast<std::size_t>(np)},
                        {uR.data() + q * nf, static_cast<std::size_t>(nf)}, -1);
      }
      std::fill(fhat.begin(), fhat.end(), 0.0);
      for (int q = 0; q < 8; ++q) {
        const auto& terms = flux[static_cast<std::size_t>(d)][static_cast<std::size_t>(q)];
        double* fq = fhat.data() + q * nf;
        for (const LinTerm& t : terms)
          for (int k = 0; k < nf; ++k)
            fq[k] += 0.5 * t.c * (uL[static_cast<std::size_t>(t.src * nf + k)] +
                                  uR[static_cast<std::size_t>(t.src * nf + k)]);
        if (penalty)
          for (int k = 0; k < nf; ++k)
            fq[k] -= 0.5 * tau * (uR[static_cast<std::size_t>(q * nf + k)] -
                                  uL[static_cast<std::size_t>(q * nf + k)]);
      }
      double* rl = (i > 0) ? rhs.at(lidx) : nullptr;
      double* rr = (i < nd) ? rhs.at(fidx) : nullptr;
      for (int q = 0; q < 8; ++q) {
        const std::span<const double> fq(fhat.data() + q * nf, static_cast<std::size_t>(nf));
        if (rl) fmap.lift(fq, {rl + q * np, static_cast<std::size_t>(np)}, +1, -rdx2);
        if (rr) fmap.lift(fq, {rr + q * np, static_cast<std::size_t>(np)}, -1, +rdx2);
      }
    });
  }

  double freq = 0.0;
  const double cmax = c * std::max({1.0, chi, gam});
  for (int d = 0; d < grid_.ndim; ++d) freq += cmax / grid_.dx(d);
  return freq;
}

void MaxwellUpdater::addCurrentSource(const Field& current, Field& rhs) const {
  const int np = basis_->numModes();
  assert(current.ncomp() == 3 * np && rhs.ncomp() == 8 * np);
  const double s = -1.0 / params_.epsilon0;
  forEachCell(grid_, [&](const MultiIndex& idx) {
    const double* j = current.at(idx);
    double* r = rhs.at(idx);
    for (int c = 0; c < 3 * np; ++c) r[c] += s * j[c];
  });
}

}  // namespace vdg
