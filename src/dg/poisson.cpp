#include "dg/poisson.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "math/legendre.hpp"

namespace vdg {

PoissonSolver::PoissonSolver(const BasisSpec& confSpec, const Grid& confGrid,
                             const PoissonParams& params)
    : basis_(&basisFor(confSpec)), grid_(confGrid.parent()), params_(params),
      np_(basis_->numModes()) {
  if (confSpec.vdim != 0)
    throw std::invalid_argument("PoissonSolver: spec must be configuration-space (vdim==0)");
  if (grid_.ndim != confSpec.cdim)
    throw std::invalid_argument("PoissonSolver: grid/basis dimensionality mismatch");
  if (confSpec.cdim != 1)
    throw std::invalid_argument(
        "PoissonSolver: only 1x configuration grids are implemented (the flat-vector "
        "interface and per-direction electricField are cdim-general; a 2x backend can "
        "slot in behind the same API)");
  if (params_.epsilon0 <= 0.0)
    throw std::invalid_argument("PoissonSolver: epsilon0 must be positive");

  n_ = grid_.numCells() * static_cast<std::size_t>(np_);
  stride_[0] = 1;
  for (int d = 1; d < grid_.ndim; ++d)
    stride_[static_cast<std::size_t>(d)] =
        stride_[static_cast<std::size_t>(d - 1)] *
        static_cast<std::size_t>(grid_.cells[static_cast<std::size_t>(d - 1)]);

  // Volume term int w_l'' w_n deta: the coefficient slot of the generic
  // second-derivative tape contracted with the unit projection (D = 1).
  vol2_ = DenseMatrix(np_, np_);
  const Tape3 t2 = buildVolumeTape2(*basis_, 0);
  for (const auto& [l0, cu] : projectUnit(*basis_))
    for (const Tape3::Term& t : t2.terms)
      if (t.m == l0) vol2_(t.l, t.n) += cu * t.c;
  grad_ = buildGradTape(*basis_, 0);
  rec_ = buildRecoveryWeights(confSpec.polyOrder);

  endMinus_.resize(static_cast<std::size_t>(np_));
  endPlus_.resize(static_cast<std::size_t>(np_));
  dEndMinus_.resize(static_cast<std::size_t>(np_));
  dEndPlus_.resize(static_cast<std::size_t>(np_));
  for (int l = 0; l < np_; ++l) {
    const int a = basis_->mode(l)[0];
    endMinus_[static_cast<std::size_t>(l)] = legendrePsi(a, -1.0);
    endPlus_[static_cast<std::size_t>(l)] = legendrePsi(a, +1.0);
    dEndMinus_[static_cast<std::size_t>(l)] = legendrePsiDeriv(a, -1.0);
    dEndPlus_[static_cast<std::size_t>(l)] = legendrePsiDeriv(a, +1.0);
  }

  // Bordered system [-lap, g; g^T, 0] with the gauge functional g picking
  // every cell's mean coefficient: the periodic operator's constant null
  // space is traded for the Lagrange multiplier, which also absorbs any
  // mean charge (so the factorization never sees a singular matrix).
  // Assembled column-by-column through the same applyMinusLaplacian the
  // tests probe, then LU-factored once; solves are back-substitutions.
  const auto nb = n_ + 1;
  DenseMatrix A(static_cast<int>(nb), static_cast<int>(nb));
  std::vector<double> e(n_, 0.0), col(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    e[j] = 1.0;
    applyMinusLaplacian(e, col);
    e[j] = 0.0;
    for (std::size_t i = 0; i < n_; ++i) A(static_cast<int>(i), static_cast<int>(j)) = col[i];
  }
  for (std::size_t c = 0; c < grid_.numCells(); ++c) {
    const auto i = c * static_cast<std::size_t>(np_);
    A(static_cast<int>(n_), static_cast<int>(i)) = 1.0;
    A(static_cast<int>(i), static_cast<int>(n_)) = 1.0;
  }
  lu_ = LuSolver(std::move(A));
  if (lu_.singular())
    throw std::runtime_error("PoissonSolver: discrete Laplacian factorization is singular");
}

void PoissonSolver::applyMinusLaplacian(std::span<const double> phi,
                                        std::span<double> out) const {
  assert(phi.size() == n_ && out.size() == n_);
  const int N = grid_.cells[0];
  const auto np = static_cast<std::size_t>(np_);
  const double rdx2 = 2.0 / grid_.dx(0);
  const double s2 = rdx2 * rdx2;

  // out = -s2 * (volume + face terms); accumulate the *negated* Laplacian.
  for (std::size_t i = 0; i < n_; ++i) out[i] = 0.0;
  for (int i = 0; i < N; ++i) {
    const double* pc = phi.data() + static_cast<std::size_t>(i) * np;
    double* oc = out.data() + static_cast<std::size_t>(i) * np;
    for (int l = 0; l < np_; ++l) {
      double s = 0.0;
      for (int m = 0; m < np_; ++m) s += vol2_(l, m) * pc[m];
      oc[l] -= s2 * s;
    }
  }
  // Interior == every face (periodic): face i sits between cell i and
  // cell (i+1) mod N. Recovery value r(0) and slope r'(0) in the two-cell
  // coordinate zeta (d/deta = (1/2) d/dzeta, hence the 0.5 on the flux).
  for (int i = 0; i < N; ++i) {
    const int ir = (i + 1) % N;
    const double* pL = phi.data() + static_cast<std::size_t>(i) * np;
    const double* pR = phi.data() + static_cast<std::size_t>(ir) * np;
    double r0 = 0.0, r1 = 0.0;
    for (int m = 0; m < np_; ++m) {
      r0 += rec_.valL[static_cast<std::size_t>(m)] * pL[m] +
            rec_.valR[static_cast<std::size_t>(m)] * pR[m];
      r1 += rec_.derivL[static_cast<std::size_t>(m)] * pL[m] +
            rec_.derivR[static_cast<std::size_t>(m)] * pR[m];
    }
    double* oL = out.data() + static_cast<std::size_t>(i) * np;
    double* oR = out.data() + static_cast<std::size_t>(ir) * np;
    for (int l = 0; l < np_; ++l) {
      // Flux term [w phi'] with phi' = r'(0)/2 at the interface.
      oL[l] -= 0.5 * s2 * endPlus_[static_cast<std::size_t>(l)] * r1;
      oR[l] += 0.5 * s2 * endMinus_[static_cast<std::size_t>(l)] * r1;
      // Value term -[w' phihat] with phihat = r(0).
      oL[l] += s2 * dEndPlus_[static_cast<std::size_t>(l)] * r0;
      oR[l] -= s2 * dEndMinus_[static_cast<std::size_t>(l)] * r0;
    }
  }
}

void PoissonSolver::solve(std::span<const double> rho, std::span<double> phi) const {
  assert(rho.size() == n_ && phi.size() == n_);
  std::vector<double> b(n_ + 1);
  const double s = 1.0 / params_.epsilon0;
  for (std::size_t i = 0; i < n_; ++i) b[i] = s * rho[i];
  b[n_] = 0.0;  // gauge: int phi dx = 0
  lu_.solve(b);
  for (std::size_t i = 0; i < n_; ++i) phi[i] = b[i];
}

void PoissonSolver::cellElectricField(std::span<const double> phi, const MultiIndex& gidx,
                                      int d, std::span<double> e) const {
  assert(phi.size() == n_ && e.size() == static_cast<std::size_t>(np_));
  assert(d == 0 && "PoissonSolver: 1x only");
  (void)d;
  const int N = grid_.cells[0];
  const int i = gidx[0];
  const auto np = static_cast<std::size_t>(np_);
  const double* pC = phi.data() + static_cast<std::size_t>(i) * np;
  const double* pL = phi.data() + static_cast<std::size_t>((i + N - 1) % N) * np;
  const double* pR = phi.data() + static_cast<std::size_t>((i + 1) % N) * np;

  // Recovered (continuous) interface traces at the cell's two faces.
  double hatLo = 0.0, hatHi = 0.0;
  for (int m = 0; m < np_; ++m) {
    hatLo += rec_.valL[static_cast<std::size_t>(m)] * pL[m] +
             rec_.valR[static_cast<std::size_t>(m)] * pC[m];
    hatHi += rec_.valL[static_cast<std::size_t>(m)] * pC[m] +
             rec_.valR[static_cast<std::size_t>(m)] * pR[m];
  }
  // E_l = (2/dx) [ sum_n D_ln phi_n - w_l(+1) phihat_hi + w_l(-1) phihat_lo ],
  // the weak projection of -dphi/dx with the continuous trace.
  const double rdx2 = 2.0 / grid_.dx(0);
  for (int l = 0; l < np_; ++l)
    e[static_cast<std::size_t>(l)] =
        rdx2 * (endMinus_[static_cast<std::size_t>(l)] * hatLo -
                endPlus_[static_cast<std::size_t>(l)] * hatHi);
  grad_.execute({pC, np}, e, rdx2);
}

double PoissonSolver::domainIntegral(std::span<const double> phi) const {
  assert(phi.size() == n_);
  double jac = 1.0;
  for (int d = 0; d < grid_.ndim; ++d) jac *= 0.5 * grid_.dx(d);
  double s = 0.0;
  for (std::size_t c = 0; c < grid_.numCells(); ++c)
    s += phi[c * static_cast<std::size_t>(np_)];
  return jac * std::pow(2.0, 0.5 * grid_.ndim) * s;
}

}  // namespace vdg
