#include "dg/poisson.hpp"

#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>

#include "math/legendre.hpp"
#include "par/communicator.hpp"

namespace vdg {

PoissonSolver::PoissonSolver(const BasisSpec& confSpec, const Grid& confGrid,
                             const PoissonParams& params)
    : basis_(&basisFor(confSpec)), grid_(confGrid.parent()), params_(params),
      np_(basis_->numModes()), p1_(confSpec.polyOrder + 1) {
  if (confSpec.vdim != 0)
    throw std::invalid_argument("PoissonSolver: spec must be configuration-space (vdim==0)");
  if (grid_.ndim != confSpec.cdim)
    throw std::invalid_argument("PoissonSolver: grid/basis dimensionality mismatch");
  if (params_.epsilon0 <= 0.0)
    throw std::invalid_argument("PoissonSolver: epsilon0 must be positive");
  for (int d = grid_.ndim; d < kMaxDim; ++d)
    for (int e = 0; e < 2; ++e)
      if (params_.bc[static_cast<std::size_t>(d)][static_cast<std::size_t>(e)].kind !=
          PoissonBcKind::Periodic)
        throw std::invalid_argument(
            "PoissonSolver: bc[" + std::to_string(d) + "] configured but the grid has only " +
            std::to_string(grid_.ndim) + " dims");
  periodic_ = true;
  gauge_ = true;
  for (int d = 0; d < grid_.ndim; ++d) {
    const PoissonBcSpec& lo = params_.bc[static_cast<std::size_t>(d)][0];
    const PoissonBcSpec& hi = params_.bc[static_cast<std::size_t>(d)][1];
    if ((lo.kind == PoissonBcKind::Periodic) != (hi.kind == PoissonBcKind::Periodic))
      throw std::invalid_argument(
          "PoissonSolver: periodicity is a property of the whole dimension — both edges "
          "of dim " + std::to_string(d) +
          " must be Periodic, or both must be a wall (Dirichlet/Neumann)");
    if (lo.kind != PoissonBcKind::Periodic) periodic_ = false;
    // The operator's constant null space survives unless a Dirichlet wall
    // somewhere pins the potential; keep the zero-mean gauge exactly then.
    if (lo.kind == PoissonBcKind::Dirichlet || hi.kind == PoissonBcKind::Dirichlet)
      gauge_ = false;
  }

  method_ = params_.method;
  if (method_ == PoissonMethod::Auto)
    method_ = grid_.ndim == 1 ? PoissonMethod::DirectLu : PoissonMethod::ConjGrad;
  // p = 1 recovery Laplacian is symmetric to round-off in every cdim and
  // BC family; p >= 2 carries a measured ~4-8% intra-cell asymmetry (see
  // the header comment), where CG stagnates and BiCGStab is used instead.
  symOp_ = confSpec.polyOrder <= 1;

  n_ = grid_.numCells() * static_cast<std::size_t>(np_);
  stride_[0] = 1;
  for (int d = 1; d < grid_.ndim; ++d)
    stride_[static_cast<std::size_t>(d)] =
        stride_[static_cast<std::size_t>(d - 1)] *
        static_cast<std::size_t>(grid_.cells[static_cast<std::size_t>(d - 1)]);

  rec_ = buildRecoveryWeights(confSpec.polyOrder);

  // Fused volume term: -sum_d s2_d int w_l d2w/deta_d^2 w_n deta, the
  // coefficient slot of each generic second-derivative tape contracted with
  // the unit projection (D = 1); the minus folds the negated Laplacian.
  volAll_ = DenseMatrix(np_, np_);
  const auto unit = projectUnit(*basis_);
  for (int d = 0; d < grid_.ndim; ++d) {
    const double rdx2 = 2.0 / grid_.dx(d);
    const double s2 = rdx2 * rdx2;
    const Tape3 t2 = buildVolumeTape2(*basis_, d);
    for (const auto& [l0, cu] : unit)
      for (const Tape3::Term& t : t2.terms)
        if (t.m == l0) volAll_(t.l, t.n) -= s2 * cu * t.c;
  }

  // Per-direction stencil tables: trace/lift map, 1-D slice index table
  // (serendipity holes are -1 and read as zero coefficients, matching the
  // LBO diffusion sweep), end-point derivative traces, and the gradient
  // tape of the E writeback.
  dir_.resize(static_cast<std::size_t>(grid_.ndim));
  for (int d = 0; d < grid_.ndim; ++d) {
    DirTables& t = dir_[static_cast<std::size_t>(d)];
    t.face = grid_.ndim == 1 ? buildPointFaceMap(*basis_)
                             : buildFaceMap(*basis_, basis_->faceBasis(d), d);
    t.slice.assign(static_cast<std::size_t>(t.face.numFaceModes) *
                       static_cast<std::size_t>(p1_),
                   -1);
    t.dEndM.resize(static_cast<std::size_t>(np_));
    t.dEndP.resize(static_cast<std::size_t>(np_));
    for (int l = 0; l < np_; ++l) {
      const int a = basis_->mode(l)[d];
      t.dEndM[static_cast<std::size_t>(l)] = legendrePsiDeriv(a, -1.0);
      t.dEndP[static_cast<std::size_t>(l)] = legendrePsiDeriv(a, +1.0);
      t.slice[static_cast<std::size_t>(t.face.entries[static_cast<std::size_t>(l)].face) *
                  static_cast<std::size_t>(p1_) +
              static_cast<std::size_t>(a)] = l;
    }
    t.grad = buildGradTape(*basis_, d);
    // Constant wall data expand onto the transverse face basis as
    // unitFace * ghat on the constant face mode (the face mode every
    // constant-slice volume mode maps to); (sqrt 2)^(cdim-1) for the
    // orthonormal Legendre product, 1 for the 1x point face.
    t.unitFace = std::pow(std::sqrt(2.0), grid_.ndim - 1);
    const double rdx2 = 2.0 / grid_.dx(d);
    t.s2 = rdx2 * rdx2;
    const PoissonBcSpec& lo = params_.bc[static_cast<std::size_t>(d)][0];
    const PoissonBcSpec& hi = params_.bc[static_cast<std::size_t>(d)][1];
    t.periodicDim = lo.kind == PoissonBcKind::Periodic;
    if (!t.periodicDim) {
      t.bcLo = buildBoundaryRecoveryWeights(confSpec.polyOrder, -1,
                                            lo.kind == PoissonBcKind::Dirichlet);
      t.bcHi = buildBoundaryRecoveryWeights(confSpec.polyOrder, +1,
                                            hi.kind == PoissonBcKind::Dirichlet);
      // Wall data in reference units: a Neumann dphi/dx becomes dphi/deta.
      t.ghatLo = lo.kind == PoissonBcKind::Dirichlet ? lo.value : lo.value * 0.5 * grid_.dx(d);
      t.ghatHi = hi.kind == PoissonBcKind::Dirichlet ? hi.value : hi.value * 0.5 * grid_.dx(d);
    }
  }

  // The gauge direction: the volume mode of the constant (whose d-face
  // index is the constant face mode of every direction).
  assert(unit.size() == 1 && "orthonormal basis: the constant projects on one mode");
  constMode_ = unit.front().first;

  // Non-periodic walls: the ghat-only part of the wall weak-form terms
  // (see the closures in applyMinusLaplacian), moved to the right-hand
  // side: the solve inverts A phi = rho/eps0 + bcRhs_.
  bcRhs_.assign(n_, 0.0);
  const int l0 = constMode_;
  for (int d = 0; d < grid_.ndim; ++d) {
    const DirTables& t = dir_[static_cast<std::size_t>(d)];
    if (t.periodicDim) continue;
    const int constFace = t.face.entries[static_cast<std::size_t>(l0)].face;
    const int N = grid_.cells[static_cast<std::size_t>(d)];
    forEachCell(grid_, [&](const MultiIndex& idx) {
      const bool atLo = idx[d] == 0;
      const bool atHi = idx[d] == N - 1;
      if (!atLo && !atHi) return;
      double* cell = bcRhs_.data() + flatIndex(idx);
      for (int l = 0; l < np_; ++l) {
        const FaceMap::Entry& fe = t.face.entries[static_cast<std::size_t>(l)];
        if (fe.face != constFace) continue;  // wall data are constant over the face
        const auto ls = static_cast<std::size_t>(l);
        if (atLo)
          cell[l] -= t.s2 * (fe.atMinus * t.bcLo.derivG - t.dEndM[ls] * t.bcLo.valG) *
                     t.unitFace * t.ghatLo;
        if (atHi)
          cell[l] -= t.s2 * (-fe.atPlus * t.bcHi.derivG + t.dEndP[ls] * t.bcHi.valG) *
                     t.unitFace * t.ghatHi;
      }
    });
  }

  if (method_ == PoissonMethod::DirectLu) {
    // Direct factorization, assembled column-by-column through the same
    // applyMinusLaplacian the iterative backend sweeps, then LU-factored
    // once; solves are back-substitutions. Gauge domains get the bordered
    // system [-lap, g; g^T, 0] with the gauge functional g picking every
    // cell's mean coefficient: the null space is traded for the Lagrange
    // multiplier, which also absorbs any mean charge or Neumann-datum
    // incompatibility (so the factorization never sees a singular matrix).
    // A Dirichlet wall pins the constant, so those domains factor the
    // plain n x n operator. O(n^2) storage: the 1x fast path and the
    // small-grid cross-check oracle for cdim >= 2.
    const std::size_t nb = gauge_ ? n_ + 1 : n_;
    DenseMatrix A(static_cast<int>(nb), static_cast<int>(nb));
    std::vector<double> e(n_, 0.0), col(n_);
    for (std::size_t j = 0; j < n_; ++j) {
      e[j] = 1.0;
      applyMinusLaplacian(e, col);
      e[j] = 0.0;
      for (std::size_t i = 0; i < n_; ++i) A(static_cast<int>(i), static_cast<int>(j)) = col[i];
    }
    if (gauge_) {
      for (std::size_t c = 0; c < grid_.numCells(); ++c) {
        const auto i = c * static_cast<std::size_t>(np_) + static_cast<std::size_t>(l0);
        A(static_cast<int>(n_), static_cast<int>(i)) = 1.0;
        A(static_cast<int>(i), static_cast<int>(n_)) = 1.0;
      }
    }
    lu_ = LuSolver(std::move(A));
    if (lu_.singular())
      throw std::runtime_error("PoissonSolver: discrete Laplacian factorization is singular");
  } else {
    buildDiagBlocks();
    maxIter_ = params_.cgMaxIter;
    if (maxIter_ <= 0) {
      int maxN = 1;
      for (int d = 0; d < grid_.ndim; ++d)
        maxN = std::max(maxN, grid_.cells[static_cast<std::size_t>(d)]);
      // Block-Jacobi PCG iteration counts scale ~ linearly with the
      // per-dimension cell count; this cap is several times the measured
      // counts (bench_poisson_solve tracks them).
      maxIter_ = 200 + 40 * maxN * p1_;
    }
  }
}

void PoissonSolver::buildDiagBlocks() {
  // Block-Jacobi preconditioner: the np x np diagonal block of the
  // operator, probed through applyMinusLaplacian so preconditioner and
  // operator can never drift apart. On a uniform grid the block depends
  // only on the cell's boundary signature (per non-periodic dimension:
  // interior / lower-wall / upper-wall / both), so one probe per distinct
  // signature covers the grid — at most 3^cdim probes of the O(n) sweep.
  const std::size_t numCells = grid_.numCells();
  blockOf_.assign(numCells, -1);
  std::map<int, int> sigBlock;                  // signature key -> block index
  std::vector<std::size_t> repCell;             // block index -> representative
  std::size_t c = 0;
  forEachCell(grid_, [&](const MultiIndex& idx) {
    int key = 0, scale = 1;
    for (int d = 0; d < grid_.ndim; ++d) {
      const DirTables& t = dir_[static_cast<std::size_t>(d)];
      int cat = 0;
      if (!t.periodicDim) {
        if (idx[d] == 0) cat |= 1;
        if (idx[d] == grid_.cells[static_cast<std::size_t>(d)] - 1) cat |= 2;
      }
      key += cat * scale;
      scale *= 4;
    }
    auto [it, fresh] = sigBlock.try_emplace(key, static_cast<int>(repCell.size()));
    if (fresh) repCell.push_back(c);
    blockOf_[c] = it->second;
    ++c;
  });

  blocks_.clear();
  blocks_.reserve(repCell.size());
  std::vector<double> e(n_, 0.0), col(n_);
  for (const std::size_t rep : repCell) {
    const std::size_t base = rep * static_cast<std::size_t>(np_);
    DenseMatrix blk(np_, np_);
    for (int j = 0; j < np_; ++j) {
      e[base + static_cast<std::size_t>(j)] = 1.0;
      applyMinusLaplacian(e, col);
      e[base + static_cast<std::size_t>(j)] = 0.0;
      for (int i = 0; i < np_; ++i) blk(i, j) = col[base + static_cast<std::size_t>(i)];
    }
    blocks_.emplace_back(std::move(blk));
    if (blocks_.back().singular())
      throw std::runtime_error(
          "PoissonSolver: singular diagonal block in the CG preconditioner");
  }
}

void PoissonSolver::applyMinusLaplacian(std::span<const double> phi,
                                        std::span<double> out) const {
  assert(phi.size() == n_ && out.size() == n_);
  const auto np = static_cast<std::size_t>(np_);

  // Volume terms of every direction, fused into one per-cell matvec (the
  // -s2_d factors are folded into volAll_).
  for (std::size_t c = 0; c < grid_.numCells(); ++c) {
    volAll_.matvec({phi.data() + c * np, np}, {out.data() + c * np, np});
  }

  int maxFace = 1;
  for (const DirTables& t : dir_) maxFace = std::max(maxFace, t.face.numFaceModes);
  std::vector<double> r0(static_cast<std::size_t>(maxFace)),
      r1(static_cast<std::size_t>(maxFace));

  for (int d = 0; d < grid_.ndim; ++d) {
    const DirTables& t = dir_[static_cast<std::size_t>(d)];
    const int N = grid_.cells[static_cast<std::size_t>(d)];
    const int nf = t.face.numFaceModes;
    const std::size_t dstride = stride_[static_cast<std::size_t>(d)] * np;

    // Two-cell faces: all N of them when periodic (face i sits between
    // cell i and cell (i+1) mod N along d), the N-1 interior ones
    // otherwise. Per transverse face mode k, the 1-D slices of the two
    // cells recover the unique interface value r(0) and slope r'(0) in
    // the two-cell coordinate zeta (d/deta = (1/2) d/dzeta, hence the 0.5
    // on the flux).
    const int numFaces = t.periodicDim ? N : N - 1;
    forEachCell(grid_, [&](const MultiIndex& idx) {
      if (idx[d] >= numFaces) return;
      const std::size_t baseL = flatIndex(idx);
      const std::size_t baseR =
          idx[d] + 1 < N ? baseL + dstride : baseL - static_cast<std::size_t>(N - 1) * dstride;
      const double* pL = phi.data() + baseL;
      const double* pR = phi.data() + baseR;
      for (int k = 0; k < nf; ++k) {
        double v = 0.0, dv = 0.0;
        const int* sl = t.slice.data() + static_cast<std::size_t>(k) * p1_;
        for (int m = 0; m < p1_; ++m) {
          const int l = sl[m];
          if (l < 0) continue;  // serendipity hole: zero coefficient
          const auto ms = static_cast<std::size_t>(m);
          v += rec_.valL[ms] * pL[l] + rec_.valR[ms] * pR[l];
          dv += rec_.derivL[ms] * pL[l] + rec_.derivR[ms] * pR[l];
        }
        r0[static_cast<std::size_t>(k)] = v;
        r1[static_cast<std::size_t>(k)] = dv;
      }
      double* oL = out.data() + baseL;
      double* oR = out.data() + baseR;
      for (int l = 0; l < np_; ++l) {
        const FaceMap::Entry& fe = t.face.entries[static_cast<std::size_t>(l)];
        const auto ks = static_cast<std::size_t>(fe.face);
        const auto ls = static_cast<std::size_t>(l);
        // Flux term [w phi'] with phi' = r'(0)/2 at the interface.
        oL[l] -= 0.5 * t.s2 * fe.atPlus * r1[ks];
        oR[l] += 0.5 * t.s2 * fe.atMinus * r1[ks];
        // Value term -[w' phihat] with phihat = r(0).
        oL[l] += t.s2 * t.dEndP[ls] * r0[ks];
        oR[l] -= t.s2 * t.dEndM[ls] * r0[ks];
      }
    });

    if (t.periodicDim) continue;
    // Wall closures: same weak-form structure with the one-sided recovery
    // polynomial's wall value/slope (homogeneous part only — the ghat
    // load lives in bcRhs_). Slopes are d/deta of the boundary cell, so
    // no 0.5 two-cell factor here.
    forEachCell(grid_, [&](const MultiIndex& idx) {
      const bool atLo = idx[d] == 0;
      const bool atHi = idx[d] == N - 1;
      if (!atLo && !atHi) return;
      const std::size_t base = flatIndex(idx);
      const double* pc = phi.data() + base;
      double* oc = out.data() + base;
      for (const int side : {-1, +1}) {
        if ((side < 0 && !atLo) || (side > 0 && !atHi)) continue;
        const BoundaryRecoveryWeights& bw = side < 0 ? t.bcLo : t.bcHi;
        for (int k = 0; k < nf; ++k) {
          double v = 0.0, dv = 0.0;
          const int* sl = t.slice.data() + static_cast<std::size_t>(k) * p1_;
          for (int m = 0; m < p1_; ++m) {
            const int l = sl[m];
            if (l < 0) continue;
            v += bw.val[static_cast<std::size_t>(m)] * pc[l];
            dv += bw.deriv[static_cast<std::size_t>(m)] * pc[l];
          }
          r0[static_cast<std::size_t>(k)] = v;
          r1[static_cast<std::size_t>(k)] = dv;
        }
        for (int l = 0; l < np_; ++l) {
          const FaceMap::Entry& fe = t.face.entries[static_cast<std::size_t>(l)];
          const auto ks = static_cast<std::size_t>(fe.face);
          const auto ls = static_cast<std::size_t>(l);
          if (side < 0)
            oc[l] += t.s2 * (fe.atMinus * r1[ks] - t.dEndM[ls] * r0[ks]);
          else
            oc[l] += t.s2 * (-fe.atPlus * r1[ks] + t.dEndP[ls] * r0[ks]);
        }
      }
    });
  }
}

void PoissonSolver::projectOutConstant(std::span<double> v) const {
  const auto np = static_cast<std::size_t>(np_);
  const auto l0 = static_cast<std::size_t>(constMode_);
  const std::size_t numCells = grid_.numCells();
  double mean = 0.0;
  for (std::size_t c = 0; c < numCells; ++c) mean += v[c * np + l0];
  mean /= static_cast<double>(numCells);
  for (std::size_t c = 0; c < numCells; ++c) v[c * np + l0] -= mean;
}

void PoissonSolver::applyBlockJacobi(std::span<const double> r, std::span<double> z) const {
  const auto np = static_cast<std::size_t>(np_);
  for (std::size_t c = 0; c < grid_.numCells(); ++c) {
    for (std::size_t l = 0; l < np; ++l) z[c * np + l] = r[c * np + l];
    blocks_[static_cast<std::size_t>(blockOf_[c])].solve({z.data() + c * np, np});
  }
}

double PoissonSolver::dotReduce(std::span<const double> a, std::span<const double> b,
                                std::span<double> chunks, Communicator* comm,
                                std::size_t cellBegin, std::size_t cellEnd) const {
  // Per-cell partial sums, each computed by exactly one rank (zeros
  // elsewhere), all-reduced — 0 + x == x bitwise, so the reduction is a
  // concatenation — then accumulated in global cell order. The result is
  // bitwise independent of the rank count, which is what keeps CG residual
  // histories (and solutions) identical between serial and distributed
  // runs.
  const auto np = static_cast<std::size_t>(np_);
  const std::size_t numCells = grid_.numCells();
  for (std::size_t c = 0; c < numCells; ++c) chunks[c] = 0.0;
  for (std::size_t c = cellBegin; c < cellEnd; ++c) {
    double s = 0.0;
    for (std::size_t l = 0; l < np; ++l) s += a[c * np + l] * b[c * np + l];
    chunks[c] = s;
  }
  if (comm && comm->numRanks() > 1) comm->allReduceSum(chunks);
  double s = 0.0;
  for (std::size_t c = 0; c < numCells; ++c) s += chunks[c];
  return s;
}

PoissonSolver::SolveStats PoissonSolver::solveCg(std::span<double> b, std::span<double> phi,
                                                 Communicator* comm) const {
  // Preconditioned conjugate gradients on the matrix-free operator. All
  // iteration state is local to this call (the solver is shared across
  // rank threads). On gauge domains the constant null vector is projected
  // out of b and of every preconditioned residual, so the Krylov space
  // stays in the operator's range and the solve converges to the
  // zero-mean representative.
  const std::size_t numCells = grid_.numCells();
  std::size_t cellBegin = 0, cellEnd = numCells;
  if (comm && comm->numRanks() > 1) {
    const auto R = static_cast<std::size_t>(comm->numRanks());
    const auto r = static_cast<std::size_t>(comm->rank());
    cellBegin = numCells * r / R;
    cellEnd = numCells * (r + 1) / R;
  }
  std::vector<double> chunks(numCells);
  const auto dot = [&](std::span<const double> x, std::span<const double> y) {
    return dotReduce(x, y, chunks, comm, cellBegin, cellEnd);
  };

  if (gauge_) projectOutConstant(b);
  const double bnorm = std::sqrt(dot(b, b));
  for (std::size_t i = 0; i < n_; ++i) phi[i] = 0.0;
  if (bnorm == 0.0) return {0, 0.0};

  std::vector<double> r(b.begin(), b.end()), z(n_), p(n_), q(n_);
  applyBlockJacobi(r, z);
  if (gauge_) projectOutConstant(z);
  p = z;
  double rz = dot(r, z);
  double relRes = 1.0;
  for (int it = 1; it <= maxIter_; ++it) {
    applyMinusLaplacian(p, q);
    const double pq = dot(p, q);
    const double alpha = rz / pq;
    for (std::size_t i = 0; i < n_; ++i) {
      phi[i] += alpha * p[i];
      r[i] -= alpha * q[i];
    }
    relRes = std::sqrt(dot(r, r)) / bnorm;
    if (relRes <= params_.cgTol) {
      if (gauge_) projectOutConstant(phi);
      return {it, relRes};
    }
    applyBlockJacobi(r, z);
    if (gauge_) projectOutConstant(z);
    const double rzNew = dot(r, z);
    const double beta = rzNew / rz;
    rz = rzNew;
    for (std::size_t i = 0; i < n_; ++i) p[i] = z[i] + beta * p[i];
  }
  throw std::runtime_error("PoissonSolver: CG did not converge in " +
                           std::to_string(maxIter_) + " iterations (relative residual " +
                           std::to_string(relRes) + ", target " +
                           std::to_string(params_.cgTol) + ")");
}

PoissonSolver::SolveStats PoissonSolver::solveBiCgStab(std::span<double> b,
                                                       std::span<double> phi,
                                                       Communicator* comm) const {
  // Right-preconditioned BiCGStab (van der Vorst): the p >= 2 recovery
  // operator is mildly non-self-adjoint, which stalls CG on fine grids;
  // BiCGStab needs only the same forward sweep (two applications per
  // iteration) and keeps the short recurrence. Gauge handling mirrors
  // solveCg: b and every preconditioned direction are projected onto the
  // zero-mean complement (the constant is both the right and, by flux
  // conservation, the left null vector). Same chunked deterministic
  // reductions — bitwise rank-count independent.
  const std::size_t numCells = grid_.numCells();
  std::size_t cellBegin = 0, cellEnd = numCells;
  if (comm && comm->numRanks() > 1) {
    const auto R = static_cast<std::size_t>(comm->numRanks());
    const auto r = static_cast<std::size_t>(comm->rank());
    cellBegin = numCells * r / R;
    cellEnd = numCells * (r + 1) / R;
  }
  std::vector<double> chunks(numCells);
  const auto dot = [&](std::span<const double> x, std::span<const double> y) {
    return dotReduce(x, y, chunks, comm, cellBegin, cellEnd);
  };

  if (gauge_) projectOutConstant(b);
  const double bnorm = std::sqrt(dot(b, b));
  for (std::size_t i = 0; i < n_; ++i) phi[i] = 0.0;
  if (bnorm == 0.0) return {0, 0.0};

  std::vector<double> r(b.begin(), b.end()), rhat(r), p(r), v(n_), s(n_), t(n_), y(n_),
      z(n_);
  double rho = dot(rhat, r);
  double relRes = 1.0;
  for (int it = 1; it <= maxIter_; ++it) {
    applyBlockJacobi(p, y);
    if (gauge_) projectOutConstant(y);
    applyMinusLaplacian(y, v);
    const double rv = dot(rhat, v);
    if (rv == 0.0)
      throw std::runtime_error("PoissonSolver: BiCGStab breakdown (rhat . v == 0)");
    const double alpha = rho / rv;
    for (std::size_t i = 0; i < n_; ++i) s[i] = r[i] - alpha * v[i];
    relRes = std::sqrt(dot(s, s)) / bnorm;
    if (relRes <= params_.cgTol) {
      for (std::size_t i = 0; i < n_; ++i) phi[i] += alpha * y[i];
      if (gauge_) projectOutConstant(phi);
      return {it, relRes};
    }
    applyBlockJacobi(s, z);
    if (gauge_) projectOutConstant(z);
    applyMinusLaplacian(z, t);
    const double tt = dot(t, t);
    if (tt == 0.0)
      throw std::runtime_error("PoissonSolver: BiCGStab breakdown (t . t == 0)");
    const double omega = dot(t, s) / tt;
    for (std::size_t i = 0; i < n_; ++i) {
      phi[i] += alpha * y[i] + omega * z[i];
      r[i] = s[i] - omega * t[i];
    }
    relRes = std::sqrt(dot(r, r)) / bnorm;
    if (relRes <= params_.cgTol) {
      if (gauge_) projectOutConstant(phi);
      return {it, relRes};
    }
    const double rhoNew = dot(rhat, r);
    if (rhoNew == 0.0 || omega == 0.0)
      throw std::runtime_error("PoissonSolver: BiCGStab breakdown (rho or omega == 0)");
    const double beta = (rhoNew / rho) * (alpha / omega);
    rho = rhoNew;
    for (std::size_t i = 0; i < n_; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);
  }
  throw std::runtime_error("PoissonSolver: BiCGStab did not converge in " +
                           std::to_string(maxIter_) + " iterations (relative residual " +
                           std::to_string(relRes) + ", target " +
                           std::to_string(params_.cgTol) + ")");
}

PoissonSolver::SolveStats PoissonSolver::solve(std::span<const double> rho,
                                               std::span<double> phi,
                                               Communicator* comm) const {
  assert(rho.size() == n_ && phi.size() == n_);
  const double s = 1.0 / params_.epsilon0;
  if (method_ == PoissonMethod::DirectLu) {
    std::vector<double> b(gauge_ ? n_ + 1 : n_);
    for (std::size_t i = 0; i < n_; ++i) b[i] = s * rho[i] + bcRhs_[i];
    if (gauge_) b[n_] = 0.0;  // gauge: int phi dx = 0
    lu_.solve(b);
    for (std::size_t i = 0; i < n_; ++i) phi[i] = b[i];
    return {0, 0.0};
  }
  std::vector<double> b(n_);
  for (std::size_t i = 0; i < n_; ++i) b[i] = s * rho[i] + bcRhs_[i];
  return symOp_ ? solveCg(b, phi, comm) : solveBiCgStab(b, phi, comm);
}

void PoissonSolver::cellElectricField(std::span<const double> phi, const MultiIndex& gidx,
                                      int d, std::span<double> e) const {
  assert(phi.size() == n_ && e.size() == static_cast<std::size_t>(np_));
  assert(d >= 0 && d < grid_.ndim);
  const DirTables& t = dir_[static_cast<std::size_t>(d)];
  const int N = grid_.cells[static_cast<std::size_t>(d)];
  const int nf = t.face.numFaceModes;
  const int i = gidx[d];
  const auto np = static_cast<std::size_t>(np_);
  const std::size_t base = flatIndex(gidx);
  const std::size_t dstride = stride_[static_cast<std::size_t>(d)] * np;
  const double* pC = phi.data() + base;
  const double* pL =
      phi.data() + (i > 0 ? base - dstride : base + static_cast<std::size_t>(N - 1) * dstride);
  const double* pR =
      phi.data() + (i + 1 < N ? base + dstride : base - static_cast<std::size_t>(N - 1) * dstride);

  // Recovered (continuous) interface traces at the cell's two d-faces, per
  // transverse face mode. At a non-periodic wall the trace is the
  // one-sided boundary-recovery wall value, which carries the
  // Dirichlet/Neumann data (for a Dirichlet wall it *is* the prescribed
  // potential), so E at the wall is consistent with the electrode bias.
  std::vector<double> hatLo(static_cast<std::size_t>(nf), 0.0),
      hatHi(static_cast<std::size_t>(nf), 0.0);
  const bool wallLo = !t.periodicDim && i == 0;
  const bool wallHi = !t.periodicDim && i == N - 1;
  for (int k = 0; k < nf; ++k) {
    const int* sl = t.slice.data() + static_cast<std::size_t>(k) * p1_;
    double lo = 0.0, hi = 0.0;
    for (int m = 0; m < p1_; ++m) {
      const int l = sl[m];
      if (l < 0) continue;
      const auto ms = static_cast<std::size_t>(m);
      lo += wallLo ? t.bcLo.val[ms] * pC[l] : rec_.valL[ms] * pL[l] + rec_.valR[ms] * pC[l];
      hi += wallHi ? t.bcHi.val[ms] * pC[l] : rec_.valL[ms] * pC[l] + rec_.valR[ms] * pR[l];
    }
    hatLo[static_cast<std::size_t>(k)] = lo;
    hatHi[static_cast<std::size_t>(k)] = hi;
  }
  if (wallLo || wallHi) {
    // Constant wall datum enters on the constant face mode (see bcRhs_).
    const int constFace = t.face.entries[static_cast<std::size_t>(constMode_)].face;
    if (wallLo) hatLo[static_cast<std::size_t>(constFace)] += t.bcLo.valG * t.unitFace * t.ghatLo;
    if (wallHi) hatHi[static_cast<std::size_t>(constFace)] += t.bcHi.valG * t.unitFace * t.ghatHi;
  }
  // E_l = (2/dx_d) [ sum_n D_ln phi_n - w_l(+1) phihat_hi + w_l(-1) phihat_lo ],
  // the weak projection of -dphi/dx_d with the continuous trace.
  const double rdx2 = 2.0 / grid_.dx(d);
  for (int l = 0; l < np_; ++l) {
    const FaceMap::Entry& fe = t.face.entries[static_cast<std::size_t>(l)];
    const auto ks = static_cast<std::size_t>(fe.face);
    e[static_cast<std::size_t>(l)] = rdx2 * (fe.atMinus * hatLo[ks] - fe.atPlus * hatHi[ks]);
  }
  t.grad.execute({pC, np}, e, rdx2);
}

double PoissonSolver::domainIntegral(std::span<const double> phi) const {
  assert(phi.size() == n_);
  double jac = 1.0;
  for (int d = 0; d < grid_.ndim; ++d) jac *= 0.5 * grid_.dx(d);
  double s = 0.0;
  const auto l0 = static_cast<std::size_t>(constMode_);
  for (std::size_t c = 0; c < grid_.numCells(); ++c)
    s += phi[c * static_cast<std::size_t>(np_) + l0];
  return jac * std::pow(2.0, 0.5 * grid_.ndim) * s;
}

}  // namespace vdg
