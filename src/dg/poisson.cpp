#include "dg/poisson.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "math/legendre.hpp"

namespace vdg {

PoissonSolver::PoissonSolver(const BasisSpec& confSpec, const Grid& confGrid,
                             const PoissonParams& params)
    : basis_(&basisFor(confSpec)), grid_(confGrid.parent()), params_(params),
      np_(basis_->numModes()) {
  if (confSpec.vdim != 0)
    throw std::invalid_argument("PoissonSolver: spec must be configuration-space (vdim==0)");
  if (grid_.ndim != confSpec.cdim)
    throw std::invalid_argument("PoissonSolver: grid/basis dimensionality mismatch");
  if (confSpec.cdim != 1)
    throw std::invalid_argument(
        "PoissonSolver: only 1x configuration grids are implemented (the flat-vector "
        "interface and per-direction electricField are cdim-general; a 2x backend can "
        "slot in behind the same API)");
  if (params_.epsilon0 <= 0.0)
    throw std::invalid_argument("PoissonSolver: epsilon0 must be positive");
  for (int d = grid_.ndim; d < kMaxDim; ++d)
    for (int e = 0; e < 2; ++e)
      if (params_.bc[static_cast<std::size_t>(d)][static_cast<std::size_t>(e)].kind !=
          PoissonBcKind::Periodic)
        throw std::invalid_argument(
            "PoissonSolver: bc[" + std::to_string(d) + "] configured but the grid has only " +
            std::to_string(grid_.ndim) + " dims");
  const PoissonBcSpec& lo = params_.bc[0][0];
  const PoissonBcSpec& hi = params_.bc[0][1];
  if ((lo.kind == PoissonBcKind::Periodic) != (hi.kind == PoissonBcKind::Periodic))
    throw std::invalid_argument(
        "PoissonSolver: periodicity is a property of the whole dimension — both edges "
        "must be Periodic, or both must be a wall (Dirichlet/Neumann)");
  periodic_ = lo.kind == PoissonBcKind::Periodic;
  // The operator's constant null space survives unless a Dirichlet wall
  // pins the potential; keep the zero-mean gauge border exactly there.
  gauge_ = periodic_ ||
           (lo.kind == PoissonBcKind::Neumann && hi.kind == PoissonBcKind::Neumann);

  n_ = grid_.numCells() * static_cast<std::size_t>(np_);
  stride_[0] = 1;
  for (int d = 1; d < grid_.ndim; ++d)
    stride_[static_cast<std::size_t>(d)] =
        stride_[static_cast<std::size_t>(d - 1)] *
        static_cast<std::size_t>(grid_.cells[static_cast<std::size_t>(d - 1)]);

  // Volume term int w_l'' w_n deta: the coefficient slot of the generic
  // second-derivative tape contracted with the unit projection (D = 1).
  vol2_ = DenseMatrix(np_, np_);
  const Tape3 t2 = buildVolumeTape2(*basis_, 0);
  for (const auto& [l0, cu] : projectUnit(*basis_))
    for (const Tape3::Term& t : t2.terms)
      if (t.m == l0) vol2_(t.l, t.n) += cu * t.c;
  grad_ = buildGradTape(*basis_, 0);
  rec_ = buildRecoveryWeights(confSpec.polyOrder);

  endMinus_.resize(static_cast<std::size_t>(np_));
  endPlus_.resize(static_cast<std::size_t>(np_));
  dEndMinus_.resize(static_cast<std::size_t>(np_));
  dEndPlus_.resize(static_cast<std::size_t>(np_));
  for (int l = 0; l < np_; ++l) {
    const int a = basis_->mode(l)[0];
    endMinus_[static_cast<std::size_t>(l)] = legendrePsi(a, -1.0);
    endPlus_[static_cast<std::size_t>(l)] = legendrePsi(a, +1.0);
    dEndMinus_[static_cast<std::size_t>(l)] = legendrePsiDeriv(a, -1.0);
    dEndPlus_[static_cast<std::size_t>(l)] = legendrePsiDeriv(a, +1.0);
  }

  // Non-periodic walls: one-sided recovery closures and the affine load of
  // the inhomogeneous wall data (built before the matrix assembly below,
  // whose columns run through the homogeneous applyMinusLaplacian).
  bcRhs_.assign(n_, 0.0);
  if (!periodic_) {
    const double rdx2 = 2.0 / grid_.dx(0);
    const double s2 = rdx2 * rdx2;
    bcLo_ = buildBoundaryRecoveryWeights(confSpec.polyOrder, -1,
                                         lo.kind == PoissonBcKind::Dirichlet);
    bcHi_ = buildBoundaryRecoveryWeights(confSpec.polyOrder, +1,
                                         hi.kind == PoissonBcKind::Dirichlet);
    // Wall data in reference units: a Neumann dphi/dx becomes dphi/deta.
    ghatLo_ = lo.kind == PoissonBcKind::Dirichlet ? lo.value : lo.value * 0.5 * grid_.dx(0);
    ghatHi_ = hi.kind == PoissonBcKind::Dirichlet ? hi.value : hi.value * 0.5 * grid_.dx(0);
    // The ghat-only part of the wall weak-form terms (see the closures in
    // applyMinusLaplacian), moved to the right-hand side: the solve
    // inverts A phi = rho/eps0 + bcRhs_.
    const std::size_t last = (grid_.numCells() - 1) * static_cast<std::size_t>(np_);
    for (int l = 0; l < np_; ++l) {
      const auto ls = static_cast<std::size_t>(l);
      bcRhs_[ls] -= s2 * (endMinus_[ls] * bcLo_.derivG - dEndMinus_[ls] * bcLo_.valG) * ghatLo_;
      bcRhs_[last + ls] -=
          s2 * (-endPlus_[ls] * bcHi_.derivG + dEndPlus_[ls] * bcHi_.valG) * ghatHi_;
    }
  }

  // Direct factorization, assembled column-by-column through the same
  // applyMinusLaplacian the tests probe, then LU-factored once; solves are
  // back-substitutions. Domains whose operator keeps the constant null
  // space (periodic, pure Neumann) get the bordered system
  // [-lap, g; g^T, 0] with the gauge functional g picking every cell's
  // mean coefficient: the null space is traded for the Lagrange
  // multiplier, which also absorbs any mean charge or Neumann-datum
  // incompatibility (so the factorization never sees a singular matrix).
  // A Dirichlet wall pins the constant, so those domains factor the plain
  // n x n operator.
  const std::size_t nb = gauge_ ? n_ + 1 : n_;
  DenseMatrix A(static_cast<int>(nb), static_cast<int>(nb));
  std::vector<double> e(n_, 0.0), col(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    e[j] = 1.0;
    applyMinusLaplacian(e, col);
    e[j] = 0.0;
    for (std::size_t i = 0; i < n_; ++i) A(static_cast<int>(i), static_cast<int>(j)) = col[i];
  }
  if (gauge_) {
    for (std::size_t c = 0; c < grid_.numCells(); ++c) {
      const auto i = c * static_cast<std::size_t>(np_);
      A(static_cast<int>(n_), static_cast<int>(i)) = 1.0;
      A(static_cast<int>(i), static_cast<int>(n_)) = 1.0;
    }
  }
  lu_ = LuSolver(std::move(A));
  if (lu_.singular())
    throw std::runtime_error("PoissonSolver: discrete Laplacian factorization is singular");
}

void PoissonSolver::applyMinusLaplacian(std::span<const double> phi,
                                        std::span<double> out) const {
  assert(phi.size() == n_ && out.size() == n_);
  const int N = grid_.cells[0];
  const auto np = static_cast<std::size_t>(np_);
  const double rdx2 = 2.0 / grid_.dx(0);
  const double s2 = rdx2 * rdx2;

  // out = -s2 * (volume + face terms); accumulate the *negated* Laplacian.
  for (std::size_t i = 0; i < n_; ++i) out[i] = 0.0;
  for (int i = 0; i < N; ++i) {
    const double* pc = phi.data() + static_cast<std::size_t>(i) * np;
    double* oc = out.data() + static_cast<std::size_t>(i) * np;
    for (int l = 0; l < np_; ++l) {
      double s = 0.0;
      for (int m = 0; m < np_; ++m) s += vol2_(l, m) * pc[m];
      oc[l] -= s2 * s;
    }
  }
  // Two-cell faces: all N of them when periodic (face i sits between cell
  // i and cell (i+1) mod N), the N-1 interior ones otherwise. Recovery
  // value r(0) and slope r'(0) in the two-cell coordinate zeta
  // (d/deta = (1/2) d/dzeta, hence the 0.5 on the flux).
  const int numFaces = periodic_ ? N : N - 1;
  for (int i = 0; i < numFaces; ++i) {
    const int ir = (i + 1) % N;
    const double* pL = phi.data() + static_cast<std::size_t>(i) * np;
    const double* pR = phi.data() + static_cast<std::size_t>(ir) * np;
    double r0 = 0.0, r1 = 0.0;
    for (int m = 0; m < np_; ++m) {
      r0 += rec_.valL[static_cast<std::size_t>(m)] * pL[m] +
            rec_.valR[static_cast<std::size_t>(m)] * pR[m];
      r1 += rec_.derivL[static_cast<std::size_t>(m)] * pL[m] +
            rec_.derivR[static_cast<std::size_t>(m)] * pR[m];
    }
    double* oL = out.data() + static_cast<std::size_t>(i) * np;
    double* oR = out.data() + static_cast<std::size_t>(ir) * np;
    for (int l = 0; l < np_; ++l) {
      // Flux term [w phi'] with phi' = r'(0)/2 at the interface.
      oL[l] -= 0.5 * s2 * endPlus_[static_cast<std::size_t>(l)] * r1;
      oR[l] += 0.5 * s2 * endMinus_[static_cast<std::size_t>(l)] * r1;
      // Value term -[w' phihat] with phihat = r(0).
      oL[l] += s2 * dEndPlus_[static_cast<std::size_t>(l)] * r0;
      oR[l] -= s2 * dEndMinus_[static_cast<std::size_t>(l)] * r0;
    }
  }
  if (!periodic_) {
    // Wall closures: same weak-form structure with the one-sided recovery
    // polynomial's wall value/slope (homogeneous part only — the ghat
    // load lives in bcRhs_). Slopes are d/deta of the boundary cell, so
    // no 0.5 two-cell factor here.
    const double* p0 = phi.data();
    const double* pN = phi.data() + (static_cast<std::size_t>(N) - 1) * np;
    double vLo = 0.0, dLo = 0.0, vHi = 0.0, dHi = 0.0;
    for (int m = 0; m < np_; ++m) {
      const auto ms = static_cast<std::size_t>(m);
      vLo += bcLo_.val[ms] * p0[m];
      dLo += bcLo_.deriv[ms] * p0[m];
      vHi += bcHi_.val[ms] * pN[m];
      dHi += bcHi_.deriv[ms] * pN[m];
    }
    double* o0 = out.data();
    double* oN = out.data() + (static_cast<std::size_t>(N) - 1) * np;
    for (int l = 0; l < np_; ++l) {
      const auto ls = static_cast<std::size_t>(l);
      o0[l] += s2 * (endMinus_[ls] * dLo - dEndMinus_[ls] * vLo);
      oN[l] += s2 * (-endPlus_[ls] * dHi + dEndPlus_[ls] * vHi);
    }
  }
}

void PoissonSolver::solve(std::span<const double> rho, std::span<double> phi) const {
  assert(rho.size() == n_ && phi.size() == n_);
  std::vector<double> b(gauge_ ? n_ + 1 : n_);
  const double s = 1.0 / params_.epsilon0;
  for (std::size_t i = 0; i < n_; ++i) b[i] = s * rho[i] + bcRhs_[i];
  if (gauge_) b[n_] = 0.0;  // gauge: int phi dx = 0
  lu_.solve(b);
  for (std::size_t i = 0; i < n_; ++i) phi[i] = b[i];
}

void PoissonSolver::cellElectricField(std::span<const double> phi, const MultiIndex& gidx,
                                      int d, std::span<double> e) const {
  assert(phi.size() == n_ && e.size() == static_cast<std::size_t>(np_));
  assert(d == 0 && "PoissonSolver: 1x only");
  (void)d;
  const int N = grid_.cells[0];
  const int i = gidx[0];
  const auto np = static_cast<std::size_t>(np_);
  const double* pC = phi.data() + static_cast<std::size_t>(i) * np;
  const double* pL = phi.data() + static_cast<std::size_t>((i + N - 1) % N) * np;
  const double* pR = phi.data() + static_cast<std::size_t>((i + 1) % N) * np;

  // Recovered (continuous) interface traces at the cell's two faces. At a
  // non-periodic wall the trace is the one-sided boundary-recovery wall
  // value, which carries the Dirichlet/Neumann data (for a Dirichlet wall
  // it *is* the prescribed potential), so E at the wall is consistent
  // with the electrode bias.
  double hatLo = 0.0, hatHi = 0.0;
  if (!periodic_ && i == 0) {
    hatLo = bcLo_.valG * ghatLo_;
    for (int m = 0; m < np_; ++m) hatLo += bcLo_.val[static_cast<std::size_t>(m)] * pC[m];
  } else {
    for (int m = 0; m < np_; ++m)
      hatLo += rec_.valL[static_cast<std::size_t>(m)] * pL[m] +
               rec_.valR[static_cast<std::size_t>(m)] * pC[m];
  }
  if (!periodic_ && i == N - 1) {
    hatHi = bcHi_.valG * ghatHi_;
    for (int m = 0; m < np_; ++m) hatHi += bcHi_.val[static_cast<std::size_t>(m)] * pC[m];
  } else {
    for (int m = 0; m < np_; ++m)
      hatHi += rec_.valL[static_cast<std::size_t>(m)] * pC[m] +
               rec_.valR[static_cast<std::size_t>(m)] * pR[m];
  }
  // E_l = (2/dx) [ sum_n D_ln phi_n - w_l(+1) phihat_hi + w_l(-1) phihat_lo ],
  // the weak projection of -dphi/dx with the continuous trace.
  const double rdx2 = 2.0 / grid_.dx(0);
  for (int l = 0; l < np_; ++l)
    e[static_cast<std::size_t>(l)] =
        rdx2 * (endMinus_[static_cast<std::size_t>(l)] * hatLo -
                endPlus_[static_cast<std::size_t>(l)] * hatHi);
  grad_.execute({pC, np}, e, rdx2);
}

double PoissonSolver::domainIntegral(std::span<const double> phi) const {
  assert(phi.size() == n_);
  double jac = 1.0;
  for (int d = 0; d < grid_.ndim; ++d) jac *= 0.5 * grid_.dx(d);
  double s = 0.0;
  for (std::size_t c = 0; c < grid_.numCells(); ++c)
    s += phi[c * static_cast<std::size_t>(np_)];
  return jac * std::pow(2.0, 0.5 * grid_.ndim) * s;
}

}  // namespace vdg
