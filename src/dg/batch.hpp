#pragma once
// AoSoA cell-blocking layer for SIMD-batched kernel execution.
//
// The generated batched kernels (src/kernels/gen/*_batch.cpp) and the
// batched tape executors below operate on blocks of B cells in AoSoA
// layout: mode-major, lane-minor, element i of cell (lane) b at
// [i*B + b]. Updaters gather B cells' coefficient vectors into an aligned
// scratch block with packLanes, run the batched kernel over the block,
// and scatter the result back with scatterLanes/scatterAddLanes; cells
// left over when the count is not a multiple of B fall through to the
// scalar path.
//
// Bitwise reproducibility contract: per lane, every executor here
// performs exactly the floating-point operations of its scalar
// counterpart, in the same order and association. Scratch accumulators
// start at zero (0 + x == x in IEEE), and the scatter preserves each
// destination cell's accumulation order, so routing a loop through this
// layer does not change results — tests/test_batch.cpp asserts the
// identity bit-for-bit. This file is compiled with the VDG_KERNEL_SIMD
// flags (wider ISA, -ffp-contract=off) like the batched kernel units.

#include <cstddef>
#include <new>
#include <vector>

#include "grid/grid.hpp"
#include "tensors/tape.hpp"
#include "tensors/vlasov_tensors.hpp"

namespace vdg {

/// Minimal over-aligned allocator so AoSoA scratch blocks start on a
/// cache-line/vector-register boundary.
template <typename T, std::size_t Align = 64>
struct AlignedAlloc {
  using value_type = T;
  template <typename U>
  struct rebind {
    using other = AlignedAlloc<U, Align>;
  };
  AlignedAlloc() = default;
  template <typename U>
  AlignedAlloc(const AlignedAlloc<U, Align>&) {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
  }
  template <typename U>
  bool operator==(const AlignedAlloc<U, Align>&) const {
    return true;
  }
};

/// Aligned scratch vector for AoSoA blocks.
using BatchBuffer = std::vector<double, AlignedAlloc<double>>;

/// dst[i*B + b] = src[b][i] for i < n, b < B (gather B cells into a block).
void packLanes(int B, int n, const double* const* src, double* dst);

/// dst[i*B + b] = 0.
void zeroLanes(int B, int n, double* dst);

/// dst[b][i] = src[i*B + b] (scatter a block back, overwriting).
void scatterLanes(int B, int n, const double* src, double* const* dst);

/// dst[b][i] += src[i*B + b] (scatter-add a block of increments). Lanes
/// are written in ascending order; each dst cell receives one add per
/// element, so per-cell accumulation order is preserved.
void scatterAddLanes(int B, int n, const double* src, double* const* dst);

/// Batched Tape3 execution, a per-lane (AoSoA, like f/out):
///   out[l*B+b] += scale * c * a[m*B+b] * f[n*B+b]  per term, in term order.
void executeBatched(const Tape3& tape, int B, const double* a, const double* f, double* out,
                    double scale);

/// Batched Tape3 execution with a lane-invariant `a` in plain scalar
/// layout (e.g. the LBO diffusion coefficient, shared by every velocity
/// cell of a configuration cell):
///   out[l*B+b] += (scale * c * a[m]) * f[n*B+b]  per term, in term order.
void executeBatchedSharedA(const Tape3& tape, int B, const double* a, const double* f,
                           double* out, double scale);

/// Batched Tape2 execution: out[l*B+b] += scale * c * in[n*B+b].
void executeBatched(const Tape2& tape, int B, const double* in, double* out, double scale);

/// Batched buildAccel (tensors/vlasov_tensors.hpp): assemble
/// alpha_j = (q/m)(E + v x B)_j for the B phase cells laneIdx[0..B)
/// directly in AoSoA layout (alphaBlk has vdim * numPhaseModes * B
/// entries). The workspace expansions are lane-invariant (all lanes share
/// one configuration cell); only the cell-center velocity varies per lane,
/// so the mode loop vectorizes across lanes. Per lane the arithmetic is
/// exactly buildAccel's, in the same order.
void buildAccelBatched(const VlasovKernelSet& ks, const Grid& grid, double qbym,
                       const MultiIndex* laneIdx, int B, const AccelWorkspace& ws,
                       double* alphaBlk);

}  // namespace vdg
