#pragma once
// Matrix-free, quadrature-free, alias-free DG updater for the Vlasov
// equation
//   df/dt + div_x (v f) + div_v ( (q/m)(E + v x B) f ) = 0
// on a phase-space grid (cdim configuration + vdim velocity dimensions).
//
// The updater executes the pre-generated sparse tapes of
// tensors/vlasov_tensors.hpp cell by cell: the discrete weak form (paper
// Eq. 2/12) becomes
//   df_l/dt = sum_d (2/dxv_d) [ C^d_lmn alpha^d_m f_n  -  surface lifts ],
// with the acceleration expansion rebuilt per configuration cell from the
// EM field coefficients. There is no quadrature loop and no matrix anywhere
// in this path.

#include <span>
#include <string>

#include "dg/flux.hpp"
#include "grid/grid.hpp"
#include "kernels/registry.hpp"
#include "tensors/vlasov_tensors.hpp"

namespace vdg {

class ThreadExec;

struct VlasovParams {
  double charge = -1.0;
  double mass = 1.0;
  FluxType flux = FluxType::Penalty;
};

/// Layout of the EM field used across the library: 8 configuration-space
/// DG expansions per cell (Ex,Ey,Ez,Bx,By,Bz,phi,psi), matching the
/// perfectly-hyperbolic Maxwell system of dg/maxwell.hpp.
inline constexpr int kEmComps = 8;

class VlasovUpdater {
 public:
  /// `phaseGrid` must have spec.ndim() dimensions (config dims first).
  VlasovUpdater(const BasisSpec& spec, const Grid& phaseGrid, const VlasovParams& params);

  /// Compute rhs = L(f). `em` is the configuration-space EM field
  /// (kEmComps * numConfModes components per cell) or nullptr for
  /// free streaming. Ghost layers of `f` must be up to date in the
  /// configuration dimensions (periodic/BC sync is the caller's job);
  /// velocity-space boundaries use zero-flux closure and need no ghosts.
  ///
  /// Returns the maximum CFL frequency max_cell sum_d lambda_d/dx_d
  /// (multiply by (2p+1) and invert for a stable explicit dt).
  double advance(const Field& f, const Field* em, Field& rhs) const;

  /// Split form of advance() for communication/compute overlap. The volume
  /// pass reads only each cell's own coefficients (never a ghost) and by
  /// itself produces the *entire* CFL frequency, so it can run while the
  /// configuration-space halo exchange of `f` is in flight; the surface
  /// pass then needs `f`'s configuration ghosts up to date. advanceVolume
  /// zeroes rhs, adds all volume terms, and fills `alphaScratch` with the
  /// per-cell acceleration expansions ((re)shaped as needed — pass the
  /// same field, untouched, to advanceSurface, which reads it instead of
  /// rebuilding). advanceVolume + advanceSurface is bitwise identical to
  /// advance, which is exactly this pair over a local scratch.
  double advanceVolume(const Field& f, const Field* em, Field& rhs, Field& alphaScratch) const;
  void advanceSurface(const Field& f, const Field* em, Field& rhs,
                      const Field& alphaScratch) const;

  [[nodiscard]] const VlasovKernelSet& kernels() const { return *ks_; }
  [[nodiscard]] const Grid& phaseGrid() const { return grid_; }

  /// True when this updater dispatches to pre-generated compiled kernels
  /// (available for registered specs with the penalty flux, which the
  /// generated surface kernels bake in) instead of interpreting the tapes.
  [[nodiscard]] bool usesCompiledKernels() const { return compiled_ != nullptr; }

  /// Force tape interpretation even when compiled kernels are registered
  /// (used by tests and the codegen ablation benchmark). Also disables the
  /// batched path (batched kernels are compiled kernels).
  void disableCompiledKernels() {
    compiled_ = nullptr;
    batchLanes_ = 1;
  }

  /// SIMD batch width request: 0 = auto (largest registered batched lane
  /// count, the default), 1 = scalar cell loop (bitwise identical to the
  /// pre-batching code path), or a kKernelBatchLanes entry. Requests the
  /// registry cannot serve fall back to scalar. The batched path is itself
  /// bitwise identical to scalar per cell, so this knob only affects
  /// speed; it exists for A/B benchmarking and bisection.
  void setBatchLanes(int lanes) { batchLanes_ = lanes; }

  /// The lane count advance() actually runs with (1 = scalar path).
  [[nodiscard]] int activeBatchLanes() const {
    if (!compiled_ || batchLanes_ == 1) return 1;
    const int avail = compiled_->maxBatchLanes(ks_->cdim, ks_->vdim);
    if (batchLanes_ == 0) return avail > 1 ? avail : 1;
    return compiled_->findBatched(batchLanes_, ks_->cdim, ks_->vdim) ? batchLanes_ : 1;
  }

  /// Volume-term-only update (streaming + acceleration), used by the
  /// kernel-cost benchmarks (Fig. 2) and tests.
  void volumeTerm(std::span<const double> f, std::span<const double> alpha,
                  const MultiIndex& cellIdx, std::span<double> out) const;

  /// Pool driving the per-cell loops of advance(). Defaults to
  /// ThreadExec::global(); pass nullptr to force serial execution. The
  /// chunked loops write disjoint cells, so the threaded result is
  /// bit-for-bit identical to the serial one.
  void setExecutor(ThreadExec* exec) { exec_ = exec; }
  [[nodiscard]] ThreadExec* executor() const { return exec_; }

 private:
  /// The SIMD-batched kernel set advance() dispatches to (nullptr: scalar
  /// cell loops). Deterministic, so the volume and surface passes resolve
  /// it independently and agree.
  [[nodiscard]] const VlasovBatchedKernels* batchedKernels() const;

  const VlasovKernelSet* ks_;
  const VlasovCompiledKernels* compiled_ = nullptr;
  ThreadExec* exec_ = nullptr;
  Grid grid_;
  VlasovParams params_;
  double qbym_;
  std::array<double, kMaxDim> dxv_{};  ///< per-dimension cell sizes
  int batchLanes_ = 0;                 ///< requested SIMD batch width (0 = auto)
  std::string specName_;               ///< basis spec name (dispatch diagnostics)
};

}  // namespace vdg
