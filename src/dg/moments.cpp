#include "dg/moments.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "math/legendre.hpp"

namespace vdg {

MomentUpdater::MomentUpdater(const BasisSpec& phaseSpec, const Grid& phaseGrid)
    : phase_(&basisFor(phaseSpec)), conf_(&basisFor(phaseSpec.configSpec())), grid_(phaseGrid),
      cdim_(phaseSpec.cdim), vdim_(phaseSpec.vdim), np_(phase_->numModes()),
      npc_(conf_->numModes()) {
  if (phaseGrid.ndim != phaseSpec.ndim())
    throw std::invalid_argument("MomentUpdater: grid/basis dimensionality mismatch");
  t0_ = buildTape(MultiIndex{});
  for (int j = 0; j < vdim_; ++j) {
    MultiIndex m1;
    m1[j] = 1;
    t1_.push_back(buildTape(m1));
    MultiIndex m2;
    m2[j] = 2;
    t2_.push_back(buildTape(m2));
  }
}

Grid MomentUpdater::confGrid() const {
  Grid g;
  g.ndim = cdim_;
  for (int d = 0; d < cdim_; ++d) {
    const auto s = static_cast<std::size_t>(d);
    g.cells[s] = grid_.cells[s];
    g.lower[s] = grid_.lower[s];
    g.upper[s] = grid_.upper[s];
    // Preserve subgrid windowing (rank-local grids) so conf-space
    // coordinate arithmetic stays bit-identical to the global grid's.
    g.parentCells[s] = grid_.parentCells[s];
    g.offset[s] = grid_.offset[s];
    g.parentLower[s] = grid_.parentLower[s];
    g.parentUpper[s] = grid_.parentUpper[s];
  }
  return g;
}

MomentUpdater::MomTape MomentUpdater::buildTape(const MultiIndex& velMonomial) const {
  const auto& tab = LegendreTables::instance();
  MomTape tape;
  for (int l = 0; l < np_; ++l) {
    const MultiIndex& a = phase_->mode(l);
    // Configuration part of the phase mode.
    MultiIndex ac;
    for (int d = 0; d < cdim_; ++d) ac[d] = a[d];
    const int k = conf_->indexOf(ac);
    if (k < 0) continue;  // cannot happen for the supported families
    double w = 1.0;
    for (int j = 0; j < vdim_; ++j) w *= tab.xmom(a[cdim_ + j], velMonomial[j]);
    if (std::abs(w) > 1e-14) tape.terms.push_back({k, l, w});
  }
  return tape;
}

void MomentUpdater::compute(const Field& f, Field* m0, Field* m1, Field* m2) const {
  assert(f.ncomp() == np_);
  assert(!m0 || m0->ncomp() == npc_);
  assert(!m1 || m1->ncomp() == 3 * npc_);
  assert(!m2 || m2->ncomp() == npc_);
  if (m0) m0->setZero();
  if (m1) m1->setZero();
  if (m2) m2->setZero();

  // Velocity-cell Jacobian prod_j dv_j/2.
  double jacV = 1.0;
  for (int j = 0; j < vdim_; ++j) jacV *= 0.5 * grid_.dx(cdim_ + j);

  forEachCell(grid_, [&](const MultiIndex& idx) {
    MultiIndex cidx;
    for (int d = 0; d < cdim_; ++d) cidx[d] = idx[d];
    const double* fc = f.at(idx);

    double wc[kMaxDim], hdv[kMaxDim];
    for (int j = 0; j < vdim_; ++j) {
      wc[j] = grid_.cellCenter(cdim_ + j, idx[cdim_ + j]);
      hdv[j] = 0.5 * grid_.dx(cdim_ + j);
    }

    if (m0) {
      double* out = m0->at(cidx);
      for (const auto& t : t0_.terms) out[t.k] += jacV * t.c * fc[t.l];
    }
    if (m1) {
      double* out = m1->at(cidx);
      for (int j = 0; j < vdim_; ++j) {
        double* oj = out + j * npc_;
        for (const auto& t : t0_.terms) oj[t.k] += jacV * wc[j] * t.c * fc[t.l];
        for (const auto& t : t1_[static_cast<std::size_t>(j)].terms)
          oj[t.k] += jacV * hdv[j] * t.c * fc[t.l];
      }
    }
    if (m2) {
      double* out = m2->at(cidx);
      for (int j = 0; j < vdim_; ++j) {
        const double w2 = wc[j] * wc[j];
        for (const auto& t : t0_.terms) out[t.k] += jacV * w2 * t.c * fc[t.l];
        for (const auto& t : t1_[static_cast<std::size_t>(j)].terms)
          out[t.k] += jacV * 2.0 * wc[j] * hdv[j] * t.c * fc[t.l];
        for (const auto& t : t2_[static_cast<std::size_t>(j)].terms)
          out[t.k] += jacV * hdv[j] * hdv[j] * t.c * fc[t.l];
      }
    }
  });
}

void MomentUpdater::accumulateCurrent(const Field& f, double charge, Field& current) const {
  assert(f.ncomp() == np_ && current.ncomp() == 3 * npc_);
  double jacV = 1.0;
  for (int j = 0; j < vdim_; ++j) jacV *= 0.5 * grid_.dx(cdim_ + j);

  forEachCell(grid_, [&](const MultiIndex& idx) {
    MultiIndex cidx;
    for (int d = 0; d < cdim_; ++d) cidx[d] = idx[d];
    const double* fc = f.at(idx);
    double* out = current.at(cidx);
    for (int j = 0; j < vdim_; ++j) {
      const double wc = grid_.cellCenter(cdim_ + j, idx[cdim_ + j]);
      const double hdv = 0.5 * grid_.dx(cdim_ + j);
      double* oj = out + j * npc_;
      for (const auto& t : t0_.terms) oj[t.k] += charge * jacV * wc * t.c * fc[t.l];
      for (const auto& t : t1_[static_cast<std::size_t>(j)].terms)
        oj[t.k] += charge * jacV * hdv * t.c * fc[t.l];
    }
  });
}

}  // namespace vdg
