#include "dg/moments.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "math/dense_matrix.hpp"
#include "math/legendre.hpp"
#include "par/thread_exec.hpp"
#include "tensors/dg_tensors.hpp"

namespace vdg {

MomentUpdater::MomentUpdater(const BasisSpec& phaseSpec, const Grid& phaseGrid)
    : phase_(&basisFor(phaseSpec)), conf_(&basisFor(phaseSpec.configSpec())), grid_(phaseGrid),
      cdim_(phaseSpec.cdim), vdim_(phaseSpec.vdim), np_(phase_->numModes()),
      npc_(conf_->numModes()) {
  if (phaseGrid.ndim != phaseSpec.ndim())
    throw std::invalid_argument("MomentUpdater: grid/basis dimensionality mismatch");
  t0_ = buildTape(MultiIndex{});
  for (int j = 0; j < vdim_; ++j) {
    MultiIndex m1;
    m1[j] = 1;
    t1_.push_back(buildTape(m1));
    MultiIndex m2;
    m2[j] = 2;
    t2_.push_back(buildTape(m2));
  }
}

Grid MomentUpdater::confGrid() const {
  Grid g;
  g.ndim = cdim_;
  for (int d = 0; d < cdim_; ++d) {
    const auto s = static_cast<std::size_t>(d);
    g.cells[s] = grid_.cells[s];
    g.lower[s] = grid_.lower[s];
    g.upper[s] = grid_.upper[s];
    // Preserve subgrid windowing (rank-local grids) so conf-space
    // coordinate arithmetic stays bit-identical to the global grid's.
    g.parentCells[s] = grid_.parentCells[s];
    g.offset[s] = grid_.offset[s];
    g.parentLower[s] = grid_.parentLower[s];
    g.parentUpper[s] = grid_.parentUpper[s];
  }
  return g;
}

MomentUpdater::MomTape MomentUpdater::buildTape(const MultiIndex& velMonomial) const {
  const auto& tab = LegendreTables::instance();
  MomTape tape;
  for (int l = 0; l < np_; ++l) {
    const MultiIndex& a = phase_->mode(l);
    // Configuration part of the phase mode.
    MultiIndex ac;
    for (int d = 0; d < cdim_; ++d) ac[d] = a[d];
    const int k = conf_->indexOf(ac);
    if (k < 0) continue;  // cannot happen for the supported families
    double w = 1.0;
    for (int j = 0; j < vdim_; ++j) w *= tab.xmom(a[cdim_ + j], velMonomial[j]);
    if (std::abs(w) > 1e-14) tape.terms.push_back({k, l, w});
  }
  return tape;
}

void MomentUpdater::compute(const Field& f, Field* m0, Field* m1, Field* m2) const {
  assert(f.ncomp() == np_);
  assert(!m0 || m0->ncomp() == npc_);
  assert(!m1 || m1->ncomp() == 3 * npc_);
  assert(!m2 || m2->ncomp() == npc_);
  if (m0) m0->setZero();
  if (m1) m1->setZero();
  if (m2) m2->setZero();

  // Velocity-cell Jacobian prod_j dv_j/2.
  double jacV = 1.0;
  for (int j = 0; j < vdim_; ++j) jacV *= 0.5 * grid_.dx(cdim_ + j);

  forEachCell(grid_, [&](const MultiIndex& idx) {
    MultiIndex cidx;
    for (int d = 0; d < cdim_; ++d) cidx[d] = idx[d];
    const double* fc = f.at(idx);

    double wc[kMaxDim], hdv[kMaxDim];
    for (int j = 0; j < vdim_; ++j) {
      wc[j] = grid_.cellCenter(cdim_ + j, idx[cdim_ + j]);
      hdv[j] = 0.5 * grid_.dx(cdim_ + j);
    }

    if (m0) {
      double* out = m0->at(cidx);
      for (const auto& t : t0_.terms) out[t.k] += jacV * t.c * fc[t.l];
    }
    if (m1) {
      double* out = m1->at(cidx);
      for (int j = 0; j < vdim_; ++j) {
        double* oj = out + j * npc_;
        for (const auto& t : t0_.terms) oj[t.k] += jacV * wc[j] * t.c * fc[t.l];
        for (const auto& t : t1_[static_cast<std::size_t>(j)].terms)
          oj[t.k] += jacV * hdv[j] * t.c * fc[t.l];
      }
    }
    if (m2) {
      double* out = m2->at(cidx);
      for (int j = 0; j < vdim_; ++j) {
        const double w2 = wc[j] * wc[j];
        for (const auto& t : t0_.terms) out[t.k] += jacV * w2 * t.c * fc[t.l];
        for (const auto& t : t1_[static_cast<std::size_t>(j)].terms)
          out[t.k] += jacV * 2.0 * wc[j] * hdv[j] * t.c * fc[t.l];
        for (const auto& t : t2_[static_cast<std::size_t>(j)].terms)
          out[t.k] += jacV * hdv[j] * hdv[j] * t.c * fc[t.l];
      }
    }
  });
}

void MomentUpdater::accumulateCurrent(const Field& f, double charge, Field& current) const {
  assert(f.ncomp() == np_ && current.ncomp() == 3 * npc_);
  double jacV = 1.0;
  for (int j = 0; j < vdim_; ++j) jacV *= 0.5 * grid_.dx(cdim_ + j);

  forEachCell(grid_, [&](const MultiIndex& idx) {
    MultiIndex cidx;
    for (int d = 0; d < cdim_; ++d) cidx[d] = idx[d];
    const double* fc = f.at(idx);
    double* out = current.at(cidx);
    for (int j = 0; j < vdim_; ++j) {
      const double wc = grid_.cellCenter(cdim_ + j, idx[cdim_ + j]);
      const double hdv = 0.5 * grid_.dx(cdim_ + j);
      double* oj = out + j * npc_;
      for (const auto& t : t0_.terms) oj[t.k] += charge * jacV * wc * t.c * fc[t.l];
      for (const auto& t : t1_[static_cast<std::size_t>(j)].terms)
        oj[t.k] += charge * jacV * hdv * t.c * fc[t.l];
    }
  });
}

// ------------------------------------------------------- PrimitiveMoments

PrimitiveMoments::PrimitiveMoments(const BasisSpec& confSpec, int vdim)
    : conf_(&basisFor(confSpec)), exec_(&ThreadExec::global()), vdim_(vdim),
      npc_(conf_->numModes()), gaunt_(buildProductTape(*conf_)) {
  if (confSpec.vdim != 0)
    throw std::invalid_argument("PrimitiveMoments: confSpec must have vdim == 0");
  if (vdim < 1 || vdim > 3)
    throw std::invalid_argument("PrimitiveMoments: vdim must be in [1, 3]");
}

void PrimitiveMoments::compute(const Field& m0, const Field& m1, const Field& m2, Field& u,
                               Field& vtSq) const {
  assert(m0.ncomp() == npc_ && m1.ncomp() == 3 * npc_ && m2.ncomp() == npc_);
  assert(u.ncomp() == vdim_ * npc_ && vtSq.ncomp() == npc_);
  const int cdim = conf_->ndim();
  const double avgFac = std::pow(2.0, -0.5 * cdim);
  const auto np = static_cast<std::size_t>(npc_);
  const Grid& grid = m0.grid();

  // Parallel over configuration cells (disjoint writes, deterministic LU
  // pivoting: bitwise serial-identical); scratch hoisted per chunk.
  chunkedFor(exec_, grid.numCells(), [&](std::size_t begin, std::size_t end) {
    DenseMatrix a(npc_, npc_);
    LuSolver lu;
    std::vector<double> rhs(np);
    forEachIndexInRange(grid.ndim, grid.cells.data(), begin, end, [&](const MultiIndex& idx) {
      const double* n = m0.at(idx);
      const double* mom = m1.at(idx);
      const double* en = m2.at(idx);
      double* uc = u.at(idx);
      double* vc = vtSq.at(idx);

      const double nAvg = n[0] * avgFac;
      const auto setVacuum = [&] {
        for (int c = 0; c < vdim_ * npc_; ++c) uc[c] = 0.0;
        for (int k = 0; k < npc_; ++k) vc[k] = 0.0;
        vc[0] = 1.0 / avgFac;  // constant vth^2 = 1, the BGK vacuum convention
      };
      if (!(nAvg > kDensityFloor)) {
        setVacuum();
        return;
      }

      // Weak-division matrix A_kl = int w_k w_l M0 (Gaunt contraction of
      // the density expansion), LU-factored once and reused for every
      // division of this cell.
      a.setZero();
      for (const Tape3::Term& t : gaunt_.terms) a(t.l, t.n) += t.c * n[t.m];
      lu.factorFrom(a);
      if (lu.singular()) {
        setVacuum();
        return;
      }

      for (int j = 0; j < vdim_; ++j) {
        for (int k = 0; k < npc_; ++k) rhs[static_cast<std::size_t>(k)] = mom[j * npc_ + k];
        lu.solve(rhs);
        for (int k = 0; k < npc_; ++k) uc[j * npc_ + k] = rhs[static_cast<std::size_t>(k)];
      }

      // b_k = int w_k (M2 - u . M1); the product is projected exactly
      // through the Gaunt tensor, then vdim * vth^2 = b / M0 weakly.
      for (int k = 0; k < npc_; ++k) rhs[static_cast<std::size_t>(k)] = en[k];
      for (int j = 0; j < vdim_; ++j)
        for (const Tape3::Term& t : gaunt_.terms)
          rhs[static_cast<std::size_t>(t.l)] -= t.c * uc[j * npc_ + t.m] * mom[j * npc_ + t.n];
      lu.solve(rhs);
      const double vdimInv = 1.0 / vdim_;
      for (int k = 0; k < npc_; ++k) vc[k] = rhs[static_cast<std::size_t>(k)] * vdimInv;

      const double vtAvg = vc[0] * avgFac;
      if (!(vtAvg >= kVtSqFloor)) {
        for (int k = 1; k < npc_; ++k) vc[k] = 0.0;
        vc[0] = kVtSqFloor / avgFac;
      }
    });
  });
}

}  // namespace vdg
