#pragma once
// Numerical flux choices (paper Eq. 5 and Section II): central fluxes
// conserve energy exactly (the property the paper requires for the Maxwell
// solve); penalty (local Lax-Friedrichs) fluxes upwind via a speed bound
// and add stabilizing dissipation for the Vlasov advection.

namespace vdg {

enum class FluxType {
  Central,  ///< Fhat = (F^- + F^+)/2
  Penalty,  ///< Fhat = (F^- + F^+)/2 - (tau/2)(u^+ - u^-), tau = local speed bound
};

}  // namespace vdg
