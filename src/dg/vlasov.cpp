#include "dg/vlasov.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "par/thread_exec.hpp"

namespace vdg {

namespace {

/// Odometer iteration over the full box [0, hi[d]) for d < nd (the
/// range-restricted form is the shared math/multi_index.hpp helper).
template <typename Fn>
void forEachIdx(int nd, const int* hi, Fn fn) {
  forEachIndexInRange(nd, hi, 0, boxSize(nd, hi), fn);
}

}  // namespace

VlasovUpdater::VlasovUpdater(const BasisSpec& spec, const Grid& phaseGrid,
                             const VlasovParams& params)
    : ks_(&vlasovKernels(spec)), exec_(&ThreadExec::global()), grid_(phaseGrid), params_(params),
      qbym_(params.charge / params.mass) {
  if (phaseGrid.ndim != spec.ndim())
    throw std::invalid_argument("VlasovUpdater: grid/basis dimensionality mismatch");
  for (int d = 0; d < grid_.ndim; ++d) dxv_[static_cast<std::size_t>(d)] = grid_.dx(d);
  // Generated surface kernels bake in the penalty flux, so the compiled
  // path is only valid for FluxType::Penalty.
  if (params.flux == FluxType::Penalty) {
    const VlasovCompiledKernels* ck = findCompiledKernels(spec.name());
    if (ck && ck->numPhaseModes == ks_->numPhaseModes && ck->complete(ks_->cdim, ks_->vdim))
      compiled_ = ck;
  }
}

double VlasovUpdater::advance(const Field& f, const Field* em, Field& rhs) const {
  const VlasovKernelSet& ks = *ks_;
  const int np = ks.numPhaseModes;
  const int cdim = ks.cdim, vdim = ks.vdim, ndim = ks.ndim;
  assert(f.ncomp() == np && rhs.ncomp() == np);
  assert(!em || em->ncomp() == kEmComps * ks.numConfModes);

  rhs.setZero();
  double maxFreq = 0.0;
  std::mutex freqMutex;

  // Acceleration expansion per cell (no ghosts needed: velocity faces never
  // straddle configuration cells, config faces carry only streaming flux).
  Field alphaField;
  if (em) alphaField = Field(grid_, vdim * np, 0);

  int confHi[kMaxDim], velHi[kMaxDim];
  for (int d = 0; d < cdim; ++d) confHi[d] = grid_.cells[static_cast<std::size_t>(d)];
  for (int j = 0; j < vdim; ++j) velHi[j] = grid_.cells[static_cast<std::size_t>(cdim + j)];

  const auto runChunked = [this](std::size_t n, const auto& fn) { chunkedFor(exec_, n, fn); };

  // ---------------------------------------------------------------- volume
  // Parallel over configuration cells: every phase-space cell is written by
  // exactly one chunk, so the decomposition is race-free and bitwise
  // reproducible. Acceleration prep and scratch are per-chunk locals.
  runChunked(boxSize(cdim, confHi), [&](std::size_t begin, std::size_t end) {
    AccelWorkspace ws;
    std::vector<double> alpha(static_cast<std::size_t>(vdim) * np);
    std::array<double, kMaxDim> wArr{};
    double chunkFreq = 0.0;
    forEachIndexInRange(cdim, confHi, begin, end, [&](const MultiIndex& cidx) {
      // Per-configuration-cell preparation shared by all velocity cells.
      if (em) prepareAccel(ks, em->at(cidx), ws);

      forEachIdx(vdim, velHi, [&](const MultiIndex& vidx) {
        MultiIndex idx = cidx;
        for (int j = 0; j < vdim; ++j) idx[cdim + j] = vidx[j];
        const std::span<const double> fc = f.cell(idx);
        const std::span<double> rc = rhs.cell(idx);

        double freq = 0.0;
        // Streaming volume terms.
        if (compiled_) {
          for (int d = 0; d < ndim; ++d) wArr[static_cast<std::size_t>(d)] = grid_.cellCenter(d, idx[d]);
          compiled_->streamVol(wArr.data(), dxv_.data(), fc.data(), rc.data());
          for (int d = 0; d < cdim; ++d) {
            const int vd = cdim + d;
            freq += (std::abs(wArr[static_cast<std::size_t>(vd)]) + 0.5 * grid_.dx(vd)) /
                    grid_.dx(d);
          }
        } else {
          for (int d = 0; d < cdim; ++d) {
            const int vd = cdim + d;
            const double wc = grid_.cellCenter(vd, idx[vd]);
            const double hdv = 0.5 * grid_.dx(vd);
            const double rdx2 = 2.0 / grid_.dx(d);
            ks.streamVol0[static_cast<std::size_t>(d)].execute(fc, rc, rdx2 * wc);
            ks.streamVol1[static_cast<std::size_t>(d)].execute(fc, rc, rdx2 * hdv);
            freq += (std::abs(wc) + hdv) / grid_.dx(d);
          }
        }
        // Acceleration volume terms.
        if (em) {
          buildAccel(ks, grid_, qbym_, idx, ws, alpha);
          std::copy(alpha.begin(), alpha.end(), alphaField.at(idx));
          if (compiled_) compiled_->accelVol(dxv_.data(), alpha.data(), fc.data(), rc.data());
          for (int j = 0; j < vdim; ++j) {
            const int d = cdim + j;
            const std::span<const double> aj(alpha.data() + static_cast<std::size_t>(j) * np,
                                             static_cast<std::size_t>(np));
            if (!compiled_)
              ks.volume[static_cast<std::size_t>(d)].execute(aj, fc, rc, 2.0 / grid_.dx(d));
            // Speed bound for the CFL frequency: |alpha| <= sum |a_l| sup|w_l|.
            double amax = 0.0;
            for (int l = 0; l < np; ++l)
              amax += std::abs(aj[static_cast<std::size_t>(l)]) *
                      ks.phaseSup[static_cast<std::size_t>(l)];
            freq += amax / grid_.dx(d);
          }
        }
        chunkFreq = std::max(chunkFreq, freq);
      });
    });
    std::scoped_lock lock(freqMutex);
    maxFreq = std::max(maxFreq, chunkFreq);
  });

  // --------------------------------------------------------------- surface
  // Parallel per direction over the transverse "lines" of faces: the faces
  // of one line (all face-normal positions i at a fixed transverse index)
  // touch only the cells of that line, so lines decompose race-free, and
  // each cell still receives its lower-face then upper-face lift in the
  // serial order — the threaded result stays bit-for-bit serial-identical.
  const bool penalty = params_.flux == FluxType::Penalty;
  for (int d = 0; d < ndim; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    const bool isConfDir = d < cdim;
    if (!em && !isConfDir) continue;  // no acceleration flux

    // Transverse box: all dims except d (hi[d] collapsed to one slot).
    int transHi[kMaxDim];
    int nt = 0;
    for (int i = 0; i < ndim; ++i)
      if (i != d) transHi[nt++] = grid_.cells[static_cast<std::size_t>(i)];

    runChunked(boxSize(nt, transHi), [&, d, ds, isConfDir](std::size_t begin, std::size_t end) {
      const FaceMap& fm = ks.faceMap[ds];
      const int nf = fm.numFaceModes;
      const double rdx2 = 2.0 / grid_.dx(d);

      std::vector<double> fL(static_cast<std::size_t>(nf)), fR(static_cast<std::size_t>(nf));
      std::vector<double> favg(static_cast<std::size_t>(nf)), fhat(static_cast<std::size_t>(nf));
      std::vector<double> aL(static_cast<std::size_t>(nf)), aR(static_cast<std::size_t>(nf));
      std::vector<double> scratch(static_cast<std::size_t>(np));  // discarded ghost-side output
      std::array<double, kMaxDim> wArr{};

      forEachIndexInRange(nt, transHi, begin, end, [&](const MultiIndex& tidx) {
        MultiIndex fidx;
        int jt = 0;
        for (int i = 0; i < ndim; ++i)
          if (i != d) fidx[i] = tidx[jt++];

        // Iterate the line's faces: positions i in [0, N_d] (the idx[d] face
        // is the lower face of cell idx). Velocity-space domain boundaries
        // use the zero-flux closure (skip).
        const int nd = grid_.cells[ds];
        for (int i = isConfDir ? 0 : 1, iEnd = isConfDir ? nd : nd - 1; i <= iEnd; ++i) {
          fidx[d] = i;
          MultiIndex lidx = fidx, ridx = fidx;
          lidx[d] = i - 1;
          const bool lInterior = i > 0;
          const bool rInterior = i < nd;

          if (compiled_) {
            double* outl = lInterior ? rhs.at(lidx) : scratch.data();
            double* outr = rInterior ? rhs.at(ridx) : scratch.data();
            if (isConfDir) {
              const int vd = cdim + d;
              wArr[static_cast<std::size_t>(vd)] = grid_.cellCenter(vd, fidx[vd]);
              compiled_->streamSurf[d](wArr.data(), dxv_.data(), f.at(lidx), f.at(ridx), outl,
                                       outr);
            } else {
              const int j = d - cdim;
              const int off = j * np;
              compiled_->accelSurf[j](dxv_.data(), alphaField.at(lidx) + off,
                                      alphaField.at(ridx) + off, f.at(lidx), f.at(ridx), outl,
                                      outr);
            }
            continue;
          }

          fm.restrictTo(f.cell(lidx), fL, +1);
          fm.restrictTo(f.cell(ridx), fR, -1);

          double tau = 0.0;
          for (int k = 0; k < nf; ++k)
            fhat[static_cast<std::size_t>(k)] = 0.0;

          if (isConfDir) {
            // Streaming flux v_d: single-valued on the face.
            const int vd = cdim + d;
            const double wc = grid_.cellCenter(vd, fidx[vd]);
            const double hdv = 0.5 * grid_.dx(vd);
            for (int k = 0; k < nf; ++k)
              favg[static_cast<std::size_t>(k)] =
                  0.5 * (fL[static_cast<std::size_t>(k)] + fR[static_cast<std::size_t>(k)]);
            ks.streamFace0[ds].execute(favg, fhat, wc);
            ks.streamFace1[ds].execute(favg, fhat, hdv);
            if (penalty) tau = std::max(std::abs(wc - hdv), std::abs(wc + hdv));
          } else {
            // Acceleration flux: expansion may differ between the two cells
            // (basis projection is per cell), use the paper's Eq. 5 form.
            const int j = d - cdim;
            const int off = j * np;
            fm.restrictTo({alphaField.at(lidx) + off, static_cast<std::size_t>(np)}, aL, +1);
            fm.restrictTo({alphaField.at(ridx) + off, static_cast<std::size_t>(np)}, aR, -1);
            ks.faceProduct[ds].execute(aL, fL, fhat, 0.5);
            ks.faceProduct[ds].execute(aR, fR, fhat, 0.5);
            if (penalty) {
              const std::vector<double>& sup = ks.faceSup[ds];
              double bL = 0.0, bR = 0.0;
              for (int k = 0; k < nf; ++k) {
                bL += std::abs(aL[static_cast<std::size_t>(k)]) * sup[static_cast<std::size_t>(k)];
                bR += std::abs(aR[static_cast<std::size_t>(k)]) * sup[static_cast<std::size_t>(k)];
              }
              tau = std::max(bL, bR);
            }
          }
          if (penalty && tau > 0.0)
            for (int k = 0; k < nf; ++k)
              fhat[static_cast<std::size_t>(k)] -=
                  0.5 * tau *
                  (fR[static_cast<std::size_t>(k)] - fL[static_cast<std::size_t>(k)]);

          if (lInterior) fm.lift(fhat, rhs.cell(lidx), +1, -rdx2);
          if (rInterior) fm.lift(fhat, rhs.cell(ridx), -1, +rdx2);
        }
      });
    });
  }

  return maxFreq;
}

void VlasovUpdater::volumeTerm(std::span<const double> f, std::span<const double> alpha,
                               const MultiIndex& cellIdx, std::span<double> out) const {
  const VlasovKernelSet& ks = *ks_;
  const int np = ks.numPhaseModes;
  const int cdim = ks.cdim, vdim = ks.vdim;
  for (double& v : out) v = 0.0;
  for (int d = 0; d < cdim; ++d) {
    const int vd = cdim + d;
    const double wc = grid_.cellCenter(vd, cellIdx[vd]);
    const double hdv = 0.5 * grid_.dx(vd);
    const double rdx2 = 2.0 / grid_.dx(d);
    ks.streamVol0[static_cast<std::size_t>(d)].execute(f, out, rdx2 * wc);
    ks.streamVol1[static_cast<std::size_t>(d)].execute(f, out, rdx2 * hdv);
  }
  if (!alpha.empty()) {
    for (int j = 0; j < vdim; ++j) {
      const int d = cdim + j;
      const std::span<const double> aj(alpha.data() + static_cast<std::size_t>(j) * np,
                                       static_cast<std::size_t>(np));
      ks.volume[static_cast<std::size_t>(d)].execute(aj, f, out, 2.0 / grid_.dx(d));
    }
  }
}

}  // namespace vdg
