#include "dg/vlasov.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "dg/batch.hpp"
#include "par/thread_exec.hpp"

namespace vdg {

namespace {

/// Odometer iteration over the full box [0, hi[d]) for d < nd (the
/// range-restricted form is the shared math/multi_index.hpp helper).
template <typename Fn>
void forEachIdx(int nd, const int* hi, Fn fn) {
  forEachIndexInRange(nd, hi, 0, boxSize(nd, hi), fn);
}

/// Upper bound on the registry's batched lane counts (sizes the per-lane
/// pointer/index scratch arrays).
constexpr int kMaxLanes = 8;

}  // namespace

VlasovUpdater::VlasovUpdater(const BasisSpec& spec, const Grid& phaseGrid,
                             const VlasovParams& params)
    : ks_(&vlasovKernels(spec)), exec_(&ThreadExec::global()), grid_(phaseGrid), params_(params),
      qbym_(params.charge / params.mass), specName_(spec.name()) {
  if (phaseGrid.ndim != spec.ndim())
    throw std::invalid_argument("VlasovUpdater: grid/basis dimensionality mismatch");
  for (int d = 0; d < grid_.ndim; ++d) dxv_[static_cast<std::size_t>(d)] = grid_.dx(d);
  // Generated surface kernels bake in the penalty flux, so the compiled
  // path is only valid for FluxType::Penalty.
  if (params.flux == FluxType::Penalty) {
    const VlasovCompiledKernels* ck = findCompiledKernels(spec.name());
    if (ck && ck->numPhaseModes == ks_->numPhaseModes && ck->complete(ks_->cdim, ks_->vdim))
      compiled_ = ck;
  }
}

const VlasovBatchedKernels* VlasovUpdater::batchedKernels() const {
  const int lanes = activeBatchLanes();
  return lanes > 1 ? compiled_->findBatched(lanes, ks_->cdim, ks_->vdim) : nullptr;
}

double VlasovUpdater::advance(const Field& f, const Field* em, Field& rhs) const {
  // Local alpha scratch keeps advance() re-entrant; callers that overlap
  // communication hold their own scratch across the volume/surface split.
  Field alpha;
  const double maxFreq = advanceVolume(f, em, rhs, alpha);
  advanceSurface(f, em, rhs, alpha);
  return maxFreq;
}

double VlasovUpdater::advanceVolume(const Field& f, const Field* em, Field& rhs,
                                    Field& alphaScratch) const {
  const VlasovKernelSet& ks = *ks_;
  const int np = ks.numPhaseModes;
  const int cdim = ks.cdim, vdim = ks.vdim, ndim = ks.ndim;
  assert(f.ncomp() == np && rhs.ncomp() == np);
  assert(!em || em->ncomp() == kEmComps * ks.numConfModes);

  // Resolve the SIMD-batched kernel set (nullptr: scalar cell loops). The
  // batched path is bitwise identical to the scalar one per cell, so this
  // only selects how the same arithmetic is scheduled.
  const VlasovBatchedKernels* bk = batchedKernels();
  logKernelDispatch(specName_, compiled_ != nullptr, bk ? bk->lanes : 1);

  rhs.setZero();
  double maxFreq = 0.0;
  std::mutex freqMutex;

  // Acceleration expansion per cell (no ghosts needed: velocity faces never
  // straddle configuration cells, config faces carry only streaming flux).
  // Written here, read back by the surface pass through the same scratch.
  Field& alphaField = alphaScratch;
  if (em &&
      (alphaField.ncomp() != vdim * np || alphaField.grid().numCells() != grid_.numCells()))
    alphaField = Field(grid_, vdim * np, 0);

  int confHi[kMaxDim], velHi[kMaxDim];
  for (int d = 0; d < cdim; ++d) confHi[d] = grid_.cells[static_cast<std::size_t>(d)];
  for (int j = 0; j < vdim; ++j) velHi[j] = grid_.cells[static_cast<std::size_t>(cdim + j)];

  const auto runChunked = [this](std::size_t n, const auto& fn) { chunkedFor(exec_, n, fn); };

  // ---------------------------------------------------------------- volume
  // Parallel over configuration cells: every phase-space cell is written by
  // exactly one chunk, so the decomposition is race-free and bitwise
  // reproducible. Acceleration prep and scratch are per-chunk locals.
  // With a batched kernel set, runs of B consecutive velocity cells (in the
  // odometer order of the scalar loop) are gathered into an AoSoA block and
  // updated by one batched kernel call; leftover cells take the scalar
  // path. Blocks never span chunk boundaries, so threading stays bitwise
  // serial-identical.
  // Skip the batched driver when the velocity box cannot fill even one
  // block — every cell would take the remainder path anyway, and the
  // scalar driver avoids the block-buffer setup.
  const VlasovBatchedKernels* bkVol =
      (bk && boxSize(vdim, velHi) >= static_cast<std::size_t>(bk->lanes)) ? bk : nullptr;
  runChunked(boxSize(cdim, confHi), [&, bkVol](std::size_t begin, std::size_t end) {
    const VlasovBatchedKernels* bk = bkVol;
    AccelWorkspace ws;
    std::vector<double> alpha(static_cast<std::size_t>(vdim) * np);
    std::array<double, kMaxDim> wArr{};
    double chunkFreq = 0.0;

    const int B = bk ? bk->lanes : 1;
    BatchBuffer wBlk, fBlk, outBlk, alphaBlk;
    if (bk) {
      wBlk.resize(static_cast<std::size_t>(ndim) * B);
      fBlk.resize(static_cast<std::size_t>(np) * B);
      outBlk.resize(static_cast<std::size_t>(np) * B);
      if (em) alphaBlk.resize(static_cast<std::size_t>(vdim) * np * B);
    }
    std::array<MultiIndex, kMaxLanes> laneIdx;
    std::array<const double*, kMaxLanes> lanePtr{};
    std::array<double*, kMaxLanes> laneOut{};
    std::array<double*, kMaxLanes> laneOutAlpha{};
    std::array<double, kMaxLanes> laneFreq{};

    forEachIndexInRange(cdim, confHi, begin, end, [&](const MultiIndex& cidx) {
      // Per-configuration-cell preparation shared by all velocity cells.
      if (em) prepareAccel(ks, em->at(cidx), ws);

      // Scalar volume update of one phase-space cell (the pre-batching
      // code path, verbatim; also the remainder path below).
      const auto scalarCell = [&](const MultiIndex& idx) {
        const std::span<const double> fc = f.cell(idx);
        const std::span<double> rc = rhs.cell(idx);

        double freq = 0.0;
        // Streaming volume terms.
        if (compiled_) {
          for (int d = 0; d < ndim; ++d) wArr[static_cast<std::size_t>(d)] = grid_.cellCenter(d, idx[d]);
          compiled_->streamVol(wArr.data(), dxv_.data(), fc.data(), rc.data());
          for (int d = 0; d < cdim; ++d) {
            const int vd = cdim + d;
            freq += (std::abs(wArr[static_cast<std::size_t>(vd)]) + 0.5 * grid_.dx(vd)) /
                    grid_.dx(d);
          }
        } else {
          for (int d = 0; d < cdim; ++d) {
            const int vd = cdim + d;
            const double wc = grid_.cellCenter(vd, idx[vd]);
            const double hdv = 0.5 * grid_.dx(vd);
            const double rdx2 = 2.0 / grid_.dx(d);
            ks.streamVol0[static_cast<std::size_t>(d)].execute(fc, rc, rdx2 * wc);
            ks.streamVol1[static_cast<std::size_t>(d)].execute(fc, rc, rdx2 * hdv);
            freq += (std::abs(wc) + hdv) / grid_.dx(d);
          }
        }
        // Acceleration volume terms.
        if (em) {
          buildAccel(ks, grid_, qbym_, idx, ws, alpha);
          std::copy(alpha.begin(), alpha.end(), alphaField.at(idx));
          if (compiled_) compiled_->accelVol(dxv_.data(), alpha.data(), fc.data(), rc.data());
          for (int j = 0; j < vdim; ++j) {
            const int d = cdim + j;
            const std::span<const double> aj(alpha.data() + static_cast<std::size_t>(j) * np,
                                             static_cast<std::size_t>(np));
            if (!compiled_)
              ks.volume[static_cast<std::size_t>(d)].execute(aj, fc, rc, 2.0 / grid_.dx(d));
            // Speed bound for the CFL frequency: |alpha| <= sum |a_l| sup|w_l|.
            double amax = 0.0;
            for (int l = 0; l < np; ++l)
              amax += std::abs(aj[static_cast<std::size_t>(l)]) *
                      ks.phaseSup[static_cast<std::size_t>(l)];
            freq += amax / grid_.dx(d);
          }
        }
        chunkFreq = std::max(chunkFreq, freq);
      };

      // Batched volume update of B cells (laneIdx[0..B)): same arithmetic
      // per lane, scheduled as AoSoA lane loops.
      const auto batchBlock = [&]() {
        for (int b = 0; b < B; ++b) {
          lanePtr[static_cast<std::size_t>(b)] = f.at(laneIdx[static_cast<std::size_t>(b)]);
          laneOut[static_cast<std::size_t>(b)] = rhs.at(laneIdx[static_cast<std::size_t>(b)]);
        }
        for (int d = 0; d < ndim; ++d)
          for (int b = 0; b < B; ++b)
            wBlk[static_cast<std::size_t>(d * B + b)] =
                grid_.cellCenter(d, laneIdx[static_cast<std::size_t>(b)][d]);
        packLanes(B, np, lanePtr.data(), fBlk.data());
        zeroLanes(B, np, outBlk.data());
        bk->streamVol(wBlk.data(), dxv_.data(), fBlk.data(), outBlk.data());
        for (int b = 0; b < B; ++b) {
          double freq = 0.0;
          for (int d = 0; d < cdim; ++d) {
            const int vd = cdim + d;
            freq += (std::abs(wBlk[static_cast<std::size_t>(vd * B + b)]) + 0.5 * grid_.dx(vd)) /
                    grid_.dx(d);
          }
          laneFreq[static_cast<std::size_t>(b)] = freq;
        }
        if (em) {
          // Assemble all B alpha expansions directly in AoSoA layout (the
          // workspace is lane-invariant: one configuration cell per block),
          // then scatter to alphaField for the surface pass.
          buildAccelBatched(ks, grid_, qbym_, laneIdx.data(), B, ws, alphaBlk.data());
          for (int b = 0; b < B; ++b)
            laneOutAlpha[static_cast<std::size_t>(b)] =
                alphaField.at(laneIdx[static_cast<std::size_t>(b)]);
          scatterLanes(B, vdim * np, alphaBlk.data(), laneOutAlpha.data());
          bk->accelVol(dxv_.data(), alphaBlk.data(), fBlk.data(), outBlk.data());
          // CFL speed bound per lane, in the scalar loop's l order.
          for (int b = 0; b < B; ++b) {
            for (int j = 0; j < vdim; ++j) {
              const int d = cdim + j;
              const double* aj = alphaBlk.data() + static_cast<std::size_t>(j) * np * B;
              double amax = 0.0;
              for (int l = 0; l < np; ++l)
                amax += std::abs(aj[l * B + b]) * ks.phaseSup[static_cast<std::size_t>(l)];
              laneFreq[static_cast<std::size_t>(b)] += amax / grid_.dx(d);
            }
          }
        }
        // Volume is the first contribution to each rhs cell (rhs was
        // zeroed), so the block scatter overwrites — exactly the values the
        // scalar kernels would have accumulated in place.
        scatterLanes(B, np, outBlk.data(), laneOut.data());
        for (int b = 0; b < B; ++b)
          chunkFreq = std::max(chunkFreq, laneFreq[static_cast<std::size_t>(b)]);
      };

      if (bk) {
        int lane = 0;
        forEachIdx(vdim, velHi, [&](const MultiIndex& vidx) {
          MultiIndex idx = cidx;
          for (int j = 0; j < vdim; ++j) idx[cdim + j] = vidx[j];
          laneIdx[static_cast<std::size_t>(lane++)] = idx;
          if (lane == B) {
            batchBlock();
            lane = 0;
          }
        });
        for (int b = 0; b < lane; ++b) scalarCell(laneIdx[static_cast<std::size_t>(b)]);
      } else {
        forEachIdx(vdim, velHi, [&](const MultiIndex& vidx) {
          MultiIndex idx = cidx;
          for (int j = 0; j < vdim; ++j) idx[cdim + j] = vidx[j];
          scalarCell(idx);
        });
      }
    });
    std::scoped_lock lock(freqMutex);
    maxFreq = std::max(maxFreq, chunkFreq);
  });

  return maxFreq;
}

void VlasovUpdater::advanceSurface(const Field& f, const Field* em, Field& rhs,
                                   const Field& alphaScratch) const {
  const VlasovKernelSet& ks = *ks_;
  const int np = ks.numPhaseModes;
  const int cdim = ks.cdim, ndim = ks.ndim;
  assert(f.ncomp() == np && rhs.ncomp() == np);
  const Field& alphaField = alphaScratch;
  const VlasovBatchedKernels* bk = batchedKernels();

  const auto runChunked = [this](std::size_t n, const auto& fn) { chunkedFor(exec_, n, fn); };

  // --------------------------------------------------------------- surface
  // Parallel per direction over the transverse "lines" of faces: the faces
  // of one line (all face-normal positions i at a fixed transverse index)
  // touch only the cells of that line, so lines decompose race-free, and
  // each cell still receives its lower-face then upper-face lift in the
  // serial order — the threaded result stays bit-for-bit serial-identical.
  // The batched path gathers B parallel lines and walks their faces in
  // lockstep (every lane at the same face position i, so boundary handling
  // is uniform across the block); leftover lines take the scalar path.
  const bool penalty = params_.flux == FluxType::Penalty;
  for (int d = 0; d < ndim; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    const bool isConfDir = d < cdim;
    if (!em && !isConfDir) continue;  // no acceleration flux

    // Transverse box: all dims except d (hi[d] collapsed to one slot).
    int transHi[kMaxDim];
    int nt = 0;
    for (int i = 0; i < ndim; ++i)
      if (i != d) transHi[nt++] = grid_.cells[static_cast<std::size_t>(i)];

    // As in the volume pass: no batched driver when there are fewer
    // transverse lines than one block's worth.
    const VlasovBatchedKernels* bkSurf =
        (bk && boxSize(nt, transHi) >= static_cast<std::size_t>(bk->lanes)) ? bk : nullptr;
    runChunked(boxSize(nt, transHi),
               [&, d, ds, isConfDir, bkSurf](std::size_t begin, std::size_t end) {
      const VlasovBatchedKernels* bk = bkSurf;
      const FaceMap& fm = ks.faceMap[ds];
      const int nf = fm.numFaceModes;
      const double rdx2 = 2.0 / grid_.dx(d);

      std::vector<double> fL(static_cast<std::size_t>(nf)), fR(static_cast<std::size_t>(nf));
      std::vector<double> favg(static_cast<std::size_t>(nf)), fhat(static_cast<std::size_t>(nf));
      std::vector<double> aL(static_cast<std::size_t>(nf)), aR(static_cast<std::size_t>(nf));
      std::vector<double> scratch(static_cast<std::size_t>(np));  // discarded ghost-side output
      std::array<double, kMaxDim> wArr{};

      const int B = bk ? bk->lanes : 1;
      BatchBuffer wBlk, faceBlkA, faceBlkB, outlBlk, outrBlk, alphaBlkA, alphaBlkB;
      if (bk) {
        wBlk.resize(static_cast<std::size_t>(ndim) * B);
        faceBlkA.resize(static_cast<std::size_t>(np) * B);
        faceBlkB.resize(static_cast<std::size_t>(np) * B);
        outlBlk.resize(static_cast<std::size_t>(np) * B);
        outrBlk.resize(static_cast<std::size_t>(np) * B);
        if (!isConfDir) {
          alphaBlkA.resize(static_cast<std::size_t>(np) * B);
          alphaBlkB.resize(static_cast<std::size_t>(np) * B);
        }
      }
      std::array<MultiIndex, kMaxLanes> lineIdx;
      std::array<const double*, kMaxLanes> srcPtr{};
      std::array<const double*, kMaxLanes> alphaPtr{};
      std::array<double*, kMaxLanes> dstPtr{};

      // Scalar face sweep of one line (the pre-batching code path,
      // verbatim; also the remainder path below). `fidx` has the line's
      // transverse components set; fidx[d] is scratch.
      const auto scalarLine = [&](MultiIndex fidx) {
        // Iterate the line's faces: positions i in [0, N_d] (the idx[d] face
        // is the lower face of cell idx). Velocity-space domain boundaries
        // use the zero-flux closure (skip).
        const int nd = grid_.cells[ds];
        for (int i = isConfDir ? 0 : 1, iEnd = isConfDir ? nd : nd - 1; i <= iEnd; ++i) {
          fidx[d] = i;
          MultiIndex lidx = fidx, ridx = fidx;
          lidx[d] = i - 1;
          const bool lInterior = i > 0;
          const bool rInterior = i < nd;

          if (compiled_) {
            double* outl = lInterior ? rhs.at(lidx) : scratch.data();
            double* outr = rInterior ? rhs.at(ridx) : scratch.data();
            if (isConfDir) {
              const int vd = cdim + d;
              wArr[static_cast<std::size_t>(vd)] = grid_.cellCenter(vd, fidx[vd]);
              compiled_->streamSurf[d](wArr.data(), dxv_.data(), f.at(lidx), f.at(ridx), outl,
                                       outr);
            } else {
              const int j = d - cdim;
              const int off = j * np;
              compiled_->accelSurf[j](dxv_.data(), alphaField.at(lidx) + off,
                                      alphaField.at(ridx) + off, f.at(lidx), f.at(ridx), outl,
                                      outr);
            }
            continue;
          }

          fm.restrictTo(f.cell(lidx), fL, +1);
          fm.restrictTo(f.cell(ridx), fR, -1);

          double tau = 0.0;
          for (int k = 0; k < nf; ++k)
            fhat[static_cast<std::size_t>(k)] = 0.0;

          if (isConfDir) {
            // Streaming flux v_d: single-valued on the face.
            const int vd = cdim + d;
            const double wc = grid_.cellCenter(vd, fidx[vd]);
            const double hdv = 0.5 * grid_.dx(vd);
            for (int k = 0; k < nf; ++k)
              favg[static_cast<std::size_t>(k)] =
                  0.5 * (fL[static_cast<std::size_t>(k)] + fR[static_cast<std::size_t>(k)]);
            ks.streamFace0[ds].execute(favg, fhat, wc);
            ks.streamFace1[ds].execute(favg, fhat, hdv);
            if (penalty) tau = std::max(std::abs(wc - hdv), std::abs(wc + hdv));
          } else {
            // Acceleration flux: expansion may differ between the two cells
            // (basis projection is per cell), use the paper's Eq. 5 form.
            const int j = d - cdim;
            const int off = j * np;
            fm.restrictTo({alphaField.at(lidx) + off, static_cast<std::size_t>(np)}, aL, +1);
            fm.restrictTo({alphaField.at(ridx) + off, static_cast<std::size_t>(np)}, aR, -1);
            ks.faceProduct[ds].execute(aL, fL, fhat, 0.5);
            ks.faceProduct[ds].execute(aR, fR, fhat, 0.5);
            if (penalty) {
              const std::vector<double>& sup = ks.faceSup[ds];
              double bL = 0.0, bR = 0.0;
              for (int k = 0; k < nf; ++k) {
                bL += std::abs(aL[static_cast<std::size_t>(k)]) * sup[static_cast<std::size_t>(k)];
                bR += std::abs(aR[static_cast<std::size_t>(k)]) * sup[static_cast<std::size_t>(k)];
              }
              tau = std::max(bL, bR);
            }
          }
          if (penalty && tau > 0.0)
            for (int k = 0; k < nf; ++k)
              fhat[static_cast<std::size_t>(k)] -=
                  0.5 * tau *
                  (fR[static_cast<std::size_t>(k)] - fL[static_cast<std::size_t>(k)]);

          if (lInterior) fm.lift(fhat, rhs.cell(lidx), +1, -rdx2);
          if (rInterior) fm.lift(fhat, rhs.cell(ridx), -1, +rdx2);
        }
      };

      // Batched face sweep of B parallel lines (lineIdx[0..B)). The left
      // block of face i+1 is the right block of face i, so each step packs
      // only the right side and swaps. Per-lane pointer cursors advance by
      // one cell stride in d per face, so the sweep does no per-face index
      // arithmetic.
      const auto batchLines = [&]() {
        const int nd = grid_.cells[ds];
        const int iBegin = isConfDir ? 0 : 1;
        const int iEnd = isConfDir ? nd : nd - 1;
        const int j = isConfDir ? -1 : d - cdim;
        const int off = isConfDir ? 0 : j * np;

        double* fl = faceBlkA.data();
        double* fr = faceBlkB.data();
        double* al = alphaBlkA.data();
        double* ar = alphaBlkB.data();

        if (isConfDir) {
          // Face-normal speed v_d per lane: a transverse (velocity)
          // coordinate of the line, constant along the whole sweep.
          const int vd = cdim + d;
          for (int b = 0; b < B; ++b)
            wBlk[static_cast<std::size_t>(vd * B + b)] =
                grid_.cellCenter(vd, lineIdx[static_cast<std::size_t>(b)][vd]);
        }

        // One-cell strides in d (uniform across lanes) and per-lane
        // cursors: fCur/aCur at position i (advanced at the top of each
        // face step), rCur at position i - 1 (the outl destination).
        std::ptrdiff_t fStep, rStep, aStep = 0;
        {
          MultiIndex p0 = lineIdx[0], p1 = lineIdx[0];
          p0[d] = iBegin - 1;
          p1[d] = iBegin;
          fStep = f.at(p1) - f.at(p0);
          rStep = rhs.at(p1) - rhs.at(p0);
          if (!isConfDir) aStep = alphaField.at(p1) - alphaField.at(p0);
        }
        for (int b = 0; b < B; ++b) {
          MultiIndex li = lineIdx[static_cast<std::size_t>(b)];
          li[d] = iBegin - 1;
          srcPtr[static_cast<std::size_t>(b)] = f.at(li);
          dstPtr[static_cast<std::size_t>(b)] = rhs.at(li);
          if (!isConfDir) alphaPtr[static_cast<std::size_t>(b)] = alphaField.at(li) + off;
        }
        packLanes(B, np, srcPtr.data(), fl);
        if (!isConfDir) packLanes(B, np, alphaPtr.data(), al);

        for (int i = iBegin; i <= iEnd; ++i) {
          for (int b = 0; b < B; ++b) srcPtr[static_cast<std::size_t>(b)] += fStep;
          packLanes(B, np, srcPtr.data(), fr);
          zeroLanes(B, np, outlBlk.data());
          zeroLanes(B, np, outrBlk.data());
          if (isConfDir) {
            bk->streamSurf[d](wBlk.data(), dxv_.data(), fl, fr, outlBlk.data(), outrBlk.data());
          } else {
            for (int b = 0; b < B; ++b) alphaPtr[static_cast<std::size_t>(b)] += aStep;
            packLanes(B, np, alphaPtr.data(), ar);
            bk->accelSurf[j](dxv_.data(), al, ar, fl, fr, outlBlk.data(), outrBlk.data());
          }
          // Scatter-add in face order: a cell's lower-face lift (outr of
          // face i) lands before its upper-face lift (outl of face i+1),
          // preserving the scalar path's per-cell accumulation order.
          // Ghost-side outputs are simply dropped.
          if (i > 0) scatterAddLanes(B, np, outlBlk.data(), dstPtr.data());
          for (int b = 0; b < B; ++b) dstPtr[static_cast<std::size_t>(b)] += rStep;
          if (i < nd) scatterAddLanes(B, np, outrBlk.data(), dstPtr.data());
          std::swap(fl, fr);
          if (!isConfDir) std::swap(al, ar);
        }
      };

      if (bk) {
        int lane = 0;
        forEachIndexInRange(nt, transHi, begin, end, [&](const MultiIndex& tidx) {
          MultiIndex fidx;
          int jt = 0;
          for (int i = 0; i < ndim; ++i)
            if (i != d) fidx[i] = tidx[jt++];
          fidx[d] = 0;
          lineIdx[static_cast<std::size_t>(lane++)] = fidx;
          if (lane == B) {
            batchLines();
            lane = 0;
          }
        });
        for (int b = 0; b < lane; ++b) scalarLine(lineIdx[static_cast<std::size_t>(b)]);
      } else {
        forEachIndexInRange(nt, transHi, begin, end, [&](const MultiIndex& tidx) {
          MultiIndex fidx;
          int jt = 0;
          for (int i = 0; i < ndim; ++i)
            if (i != d) fidx[i] = tidx[jt++];
          scalarLine(fidx);
        });
      }
    });
  }
}

void VlasovUpdater::volumeTerm(std::span<const double> f, std::span<const double> alpha,
                               const MultiIndex& cellIdx, std::span<double> out) const {
  const VlasovKernelSet& ks = *ks_;
  const int np = ks.numPhaseModes;
  const int cdim = ks.cdim, vdim = ks.vdim;
  for (double& v : out) v = 0.0;
  for (int d = 0; d < cdim; ++d) {
    const int vd = cdim + d;
    const double wc = grid_.cellCenter(vd, cellIdx[vd]);
    const double hdv = 0.5 * grid_.dx(vd);
    const double rdx2 = 2.0 / grid_.dx(d);
    ks.streamVol0[static_cast<std::size_t>(d)].execute(f, out, rdx2 * wc);
    ks.streamVol1[static_cast<std::size_t>(d)].execute(f, out, rdx2 * hdv);
  }
  if (!alpha.empty()) {
    for (int j = 0; j < vdim; ++j) {
      const int d = cdim + j;
      const std::span<const double> aj(alpha.data() + static_cast<std::size_t>(j) * np,
                                       static_cast<std::size_t>(np));
      ks.volume[static_cast<std::size_t>(d)].execute(aj, f, out, 2.0 / grid_.dx(d));
    }
  }
}

}  // namespace vdg
