#pragma once
// Modal DG solver for the perfectly-hyperbolic Maxwell (PHM) system,
// the field solver coupled to the Vlasov equation (paper Section II/IV).
//
// State per configuration cell: 8 DG expansions
//   U = (Ex, Ey, Ez, Bx, By, Bz, phi, psi)
// evolving
//   dE/dt - c^2 curl B + chi c^2 grad phi = -J / eps0
//   dB/dt +     curl E + gamma    grad psi = 0
//   dphi/dt + chi div E  = chi rho / eps0
//   dpsi/dt + gamma c^2 div B = 0
// with divergence-error cleaning speeds chi (electric) and gamma (magnetic).
// The flux is linear, so the whole update reduces to the exact sparse
// gradient tapes D^d_ln and diagonal face trace/lifts — matrix-free and
// quadrature-free like the Vlasov path. Central fluxes conserve the L2
// field energy exactly (the property the paper's energy argument needs);
// the penalty option adds Lax-Friedrichs dissipation at speed c.

#include "basis/basis.hpp"
#include "dg/flux.hpp"
#include "grid/grid.hpp"
#include "tensors/dg_tensors.hpp"

namespace vdg {

struct MaxwellParams {
  double lightSpeed = 1.0;
  double epsilon0 = 1.0;
  double chi = 1.0;    ///< electric divergence-cleaning speed factor
  double gamma = 1.0;  ///< magnetic divergence-cleaning speed factor
  FluxType flux = FluxType::Central;
};

class MaxwellUpdater {
 public:
  /// `confSpec` must have vdim == 0; `confGrid` has cdim dimensions.
  MaxwellUpdater(const BasisSpec& confSpec, const Grid& confGrid, const MaxwellParams& params);

  /// rhs = L(em). `em` has 8*numConfModes components per cell; ghost layers
  /// must be synced by the caller. Current/charge sources are accumulated
  /// separately (see addCurrentSource). Returns the max CFL frequency.
  double advance(const Field& em, Field& rhs) const;

  /// rhs_E -= J/eps0 for a current field with 3*numConfModes components.
  void addCurrentSource(const Field& current, Field& rhs) const;

  [[nodiscard]] const Basis& basis() const { return *basis_; }
  [[nodiscard]] const MaxwellParams& params() const { return params_; }
  [[nodiscard]] int numModes() const { return basis_->numModes(); }

 private:
  const Basis* basis_;
  Grid grid_;
  MaxwellParams params_;
  std::vector<Tape2> grad_;     // per config dir
  std::vector<FaceMap> face_;   // per config dir
};

}  // namespace vdg
