#include "dg/batch.hpp"

namespace vdg {

// Every entry point dispatches the lane count to a compile-time template
// instantiation for the registry's supported lane counts (4, 8) so the
// inner lane loops have constant trip counts the compiler fully
// vectorizes; other counts take the runtime-B fallback.

namespace {

template <int B>
void packImpl(int n, const double* const* __restrict src, double* __restrict dst) {
  for (int i = 0; i < n; ++i)
    for (int b = 0; b < B; ++b) dst[i * B + b] = src[b][i];
}

template <int B>
void scatterImpl(int n, const double* __restrict src, double* const* __restrict dst) {
  for (int b = 0; b < B; ++b) {
    double* __restrict d = dst[b];
    for (int i = 0; i < n; ++i) d[i] = src[i * B + b];
  }
}

template <int B>
void scatterAddImpl(int n, const double* __restrict src, double* const* __restrict dst) {
  for (int b = 0; b < B; ++b) {
    double* __restrict d = dst[b];
    for (int i = 0; i < n; ++i) d[i] += src[i * B + b];
  }
}

template <int B>
void tape3Impl(const Tape3& tape, const double* __restrict a, const double* __restrict f,
               double* __restrict out, double scale) {
  for (const Tape3::Term& t : tape.terms) {
    const double c = scale * t.c;  // == scalar's (scale * c); lane-invariant
    const double* __restrict ab = a + static_cast<std::size_t>(t.m) * B;
    const double* __restrict fb = f + static_cast<std::size_t>(t.n) * B;
    double* __restrict ob = out + static_cast<std::size_t>(t.l) * B;
    for (int b = 0; b < B; ++b) ob[b] += c * ab[b] * fb[b];
  }
}

template <int B>
void tape3SharedAImpl(const Tape3& tape, const double* __restrict a,
                      const double* __restrict f, double* __restrict out, double scale) {
  for (const Tape3::Term& t : tape.terms) {
    // Lane-invariant coefficient, associated exactly as the scalar
    // executor's ((scale * c) * a[m]) * f[n].
    const double ca = scale * t.c * a[static_cast<std::size_t>(t.m)];
    const double* __restrict fb = f + static_cast<std::size_t>(t.n) * B;
    double* __restrict ob = out + static_cast<std::size_t>(t.l) * B;
    for (int b = 0; b < B; ++b) ob[b] += ca * fb[b];
  }
}

/// Levi-Civita symbol on {0,1,2} (mirrors the helper in
/// tensors/vlasov_tensors.cpp — the two must agree for bitwise identity
/// of buildAccelBatched vs buildAccel).
constexpr int levi3(int i, int j, int k) {
  if (i == j || j == k || i == k) return 0;
  return ((j - i + 3) % 3 == 1) ? 1 : -1;
}

template <int B>
void buildAccelImpl(const VlasovKernelSet& ks, const Grid& grid, double qbym,
                    const MultiIndex* laneIdx, const AccelWorkspace& ws,
                    double* __restrict alphaBlk) {
  const int np = ks.numPhaseModes;
  const int cdim = ks.cdim, vdim = ks.vdim;
  double wc[B];
  for (int j = 0; j < vdim; ++j) {
    double* __restrict aj = alphaBlk + static_cast<std::size_t>(j) * np * B;
    const double* __restrict ej = ws.embE.data() + static_cast<std::size_t>(j) * np;
    for (int l = 0; l < np; ++l)
      for (int b = 0; b < B; ++b) aj[l * B + b] = ej[l];
    for (int k = 0; k < vdim; ++k) {
      const int vk = cdim + k;
      for (int b = 0; b < B; ++b) wc[b] = grid.cellCenter(vk, laneIdx[b][vk]);
      const double hdv = 0.5 * grid.dx(vk);
      for (int bc = 0; bc < 3; ++bc) {
        const int s = levi3(j, k, bc);
        if (s == 0) continue;
        const double* __restrict bb = ws.embB.data() + static_cast<std::size_t>(bc) * np;
        const double* __restrict mb =
            ws.mulB.data() + (static_cast<std::size_t>(k) * 3 + static_cast<std::size_t>(bc)) * np;
        // Exactly buildAccel's update per lane: aj += s * (wc*bb + hdv*mb).
        for (int l = 0; l < np; ++l)
          for (int b = 0; b < B; ++b) aj[l * B + b] += s * (wc[b] * bb[l] + hdv * mb[l]);
      }
    }
    const std::size_t total = static_cast<std::size_t>(np) * B;
    for (std::size_t i = 0; i < total; ++i) aj[i] *= qbym;
  }
}

template <int B>
void tape2Impl(const Tape2& tape, const double* __restrict in, double* __restrict out,
               double scale) {
  for (const Tape2::Term& t : tape.terms) {
    const double c = scale * t.c;
    const double* __restrict ib = in + static_cast<std::size_t>(t.n) * B;
    double* __restrict ob = out + static_cast<std::size_t>(t.l) * B;
    for (int b = 0; b < B; ++b) ob[b] += c * ib[b];
  }
}

}  // namespace

void packLanes(int B, int n, const double* const* src, double* dst) {
  switch (B) {
    case 4: packImpl<4>(n, src, dst); return;
    case 8: packImpl<8>(n, src, dst); return;
    default:
      for (int i = 0; i < n; ++i)
        for (int b = 0; b < B; ++b) dst[i * B + b] = src[b][i];
  }
}

void zeroLanes(int B, int n, double* dst) {
  const std::size_t total = static_cast<std::size_t>(B) * static_cast<std::size_t>(n);
  for (std::size_t i = 0; i < total; ++i) dst[i] = 0.0;
}

void scatterLanes(int B, int n, const double* src, double* const* dst) {
  switch (B) {
    case 4: scatterImpl<4>(n, src, dst); return;
    case 8: scatterImpl<8>(n, src, dst); return;
    default:
      for (int b = 0; b < B; ++b)
        for (int i = 0; i < n; ++i) dst[b][i] = src[i * B + b];
  }
}

void scatterAddLanes(int B, int n, const double* src, double* const* dst) {
  switch (B) {
    case 4: scatterAddImpl<4>(n, src, dst); return;
    case 8: scatterAddImpl<8>(n, src, dst); return;
    default:
      for (int b = 0; b < B; ++b)
        for (int i = 0; i < n; ++i) dst[b][i] += src[i * B + b];
  }
}

void executeBatched(const Tape3& tape, int B, const double* a, const double* f, double* out,
                    double scale) {
  switch (B) {
    case 4: tape3Impl<4>(tape, a, f, out, scale); return;
    case 8: tape3Impl<8>(tape, a, f, out, scale); return;
    default:
      for (const Tape3::Term& t : tape.terms) {
        const double c = scale * t.c;
        for (int b = 0; b < B; ++b)
          out[t.l * B + b] += c * a[t.m * B + b] * f[t.n * B + b];
      }
  }
}

void executeBatchedSharedA(const Tape3& tape, int B, const double* a, const double* f,
                           double* out, double scale) {
  switch (B) {
    case 4: tape3SharedAImpl<4>(tape, a, f, out, scale); return;
    case 8: tape3SharedAImpl<8>(tape, a, f, out, scale); return;
    default:
      for (const Tape3::Term& t : tape.terms) {
        const double ca = scale * t.c * a[static_cast<std::size_t>(t.m)];
        for (int b = 0; b < B; ++b) out[t.l * B + b] += ca * f[t.n * B + b];
      }
  }
}

void buildAccelBatched(const VlasovKernelSet& ks, const Grid& grid, double qbym,
                       const MultiIndex* laneIdx, int B, const AccelWorkspace& ws,
                       double* alphaBlk) {
  switch (B) {
    case 4: buildAccelImpl<4>(ks, grid, qbym, laneIdx, ws, alphaBlk); return;
    case 8: buildAccelImpl<8>(ks, grid, qbym, laneIdx, ws, alphaBlk); return;
    default:
      // Runtime-B fallback: same arithmetic, lane loop not unrolled.
      for (int b = 0; b < B; ++b) {
        std::vector<double> alpha(static_cast<std::size_t>(ks.vdim) * ks.numPhaseModes);
        buildAccel(ks, grid, qbym, laneIdx[b], ws, alpha);
        for (std::size_t i = 0; i < alpha.size(); ++i)
          alphaBlk[i * static_cast<std::size_t>(B) + static_cast<std::size_t>(b)] = alpha[i];
      }
  }
}

void executeBatched(const Tape2& tape, int B, const double* in, double* out, double scale) {
  switch (B) {
    case 4: tape2Impl<4>(tape, in, out, scale); return;
    case 8: tape2Impl<8>(tape, in, out, scale); return;
    default:
      for (const Tape2::Term& t : tape.terms) {
        const double c = scale * t.c;
        for (int b = 0; b < B; ++b) out[t.l * B + b] += c * in[t.n * B + b];
      }
  }
}

}  // namespace vdg
