#pragma once
// Velocity moments of the distribution function: the coupling from the
// kinetic phase-space grid back to the configuration-space grid (density,
// momentum/current, energy). The velocity integrals reduce, like every
// other integral in the scheme, to exact 1-D tables: a phase mode (a_c, a_v)
// contributes to configuration mode a_c with weight prod_j xmom(a_{v_j}, m_j)
// for the velocity monomial v^m, assembled with the cell's center/width.

#include "basis/basis.hpp"
#include "grid/grid.hpp"
#include "math/multi_index.hpp"

#include <vector>

namespace vdg {

/// Computes M0 = int f dv, M1_i = int v_i f dv (3 components; components
/// beyond vdim are zero), and M2 = int |v|^2 f dv.
class MomentUpdater {
 public:
  MomentUpdater(const BasisSpec& phaseSpec, const Grid& phaseGrid);

  [[nodiscard]] int numConfModes() const { return npc_; }
  [[nodiscard]] Grid confGrid() const;

  /// m0: ncomp = numConfModes; m1: 3*numConfModes; m2: numConfModes.
  /// Pass nullptr to skip a moment.
  void compute(const Field& f, Field* m0, Field* m1, Field* m2) const;

  /// current += charge * M1(f): the species' contribution to the plasma
  /// current in Ampere's law (3*numConfModes components).
  void accumulateCurrent(const Field& f, double charge, Field& current) const;

 private:
  /// Sparse map: conf mode k <- phase mode l with constant weight, for a
  /// velocity monomial prod_j eta_j^{m_j} over the reference cell.
  struct MomTape {
    struct Term {
      int k, l;
      double c;
    };
    std::vector<Term> terms;
  };
  [[nodiscard]] MomTape buildTape(const MultiIndex& velMonomial) const;

  const Basis* phase_;
  const Basis* conf_;
  Grid grid_;
  int cdim_, vdim_, np_, npc_;
  MomTape t0_;                     // weight 1
  std::vector<MomTape> t1_;        // weight eta_j, per velocity dim
  std::vector<MomTape> t2_;        // weight eta_j^2, per velocity dim
};

}  // namespace vdg
