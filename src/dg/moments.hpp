#pragma once
// Velocity moments of the distribution function: the coupling from the
// kinetic phase-space grid back to the configuration-space grid (density,
// momentum/current, energy). The velocity integrals reduce, like every
// other integral in the scheme, to exact 1-D tables: a phase mode (a_c, a_v)
// contributes to configuration mode a_c with weight prod_j xmom(a_{v_j}, m_j)
// for the velocity monomial v^m, assembled with the cell's center/width.

#include "basis/basis.hpp"
#include "grid/grid.hpp"
#include "math/multi_index.hpp"
#include "tensors/tape.hpp"

#include <vector>

namespace vdg {

class ThreadExec;

/// Computes M0 = int f dv, M1_i = int v_i f dv (3 components; components
/// beyond vdim are zero), and M2 = int |v|^2 f dv.
class MomentUpdater {
 public:
  MomentUpdater(const BasisSpec& phaseSpec, const Grid& phaseGrid);

  [[nodiscard]] int numConfModes() const { return npc_; }
  [[nodiscard]] Grid confGrid() const;

  /// m0: ncomp = numConfModes; m1: 3*numConfModes; m2: numConfModes.
  /// Pass nullptr to skip a moment.
  void compute(const Field& f, Field* m0, Field* m1, Field* m2) const;

  /// current += charge * M1(f): the species' contribution to the plasma
  /// current in Ampere's law (3*numConfModes components).
  void accumulateCurrent(const Field& f, double charge, Field& current) const;

 private:
  /// Sparse map: conf mode k <- phase mode l with constant weight, for a
  /// velocity monomial prod_j eta_j^{m_j} over the reference cell.
  struct MomTape {
    struct Term {
      int k, l;
      double c;
    };
    std::vector<Term> terms;
  };
  [[nodiscard]] MomTape buildTape(const MultiIndex& velMonomial) const;

  const Basis* phase_;
  const Basis* conf_;
  Grid grid_;
  int cdim_, vdim_, np_, npc_;
  MomTape t0_;                     // weight 1
  std::vector<MomTape> t1_;        // weight eta_j, per velocity dim
  std::vector<MomTape> t2_;        // weight eta_j^2, per velocity dim
};

/// Primitive (fluid) moments by weak division in the configuration basis:
/// the drift u and thermal speed squared vth^2 that parameterize the
/// Lenard-Bernstein/Dougherty collision operator. Per configuration cell,
/// u solves the weak equation  int w_k (M0 u_j) = int w_k M1_j  (the Gaunt
/// product matrix of M0, LU-factored once per cell), and vth^2 solves
/// vdim * int w_k (M0 vth^2) = int w_k (M2 - u . M1)  with the u . M1
/// product projected through the same Gaunt tensor. This is the standard
/// weak-division route (Juno et al. 2017) that keeps the primitive moments
/// consistent with the discrete moments of f.
///
/// Floors (pinned by tests/test_moments.cpp): a cell whose average density
/// is <= kDensityFloor — or whose weak-division matrix is singular — gets
/// u = 0, vth^2 = 1 (matching the BGK vacuum convention); a cell whose
/// divided vth^2 averages below kVtSqFloor gets the constant expansion
/// vth^2 = kVtSqFloor.
class PrimitiveMoments {
 public:
  PrimitiveMoments(const BasisSpec& confSpec, int vdim);

  static constexpr double kDensityFloor = 1e-12;
  static constexpr double kVtSqFloor = 1e-14;

  [[nodiscard]] int numConfModes() const { return npc_; }

  /// m0: npc comps; m1: 3*npc (MomentUpdater layout, components >= vdim
  /// ignored); m2: npc. Outputs: u has vdim*npc comps, vtSq has npc.
  void compute(const Field& m0, const Field& m1, const Field& m2, Field& u, Field& vtSq) const;

  /// Pool driving the per-cell weak divisions (defaults to
  /// ThreadExec::global(); nullptr forces serial execution). Cells are
  /// independent and the LU pivoting is deterministic, so threading is
  /// bit-for-bit serial-identical.
  void setExecutor(ThreadExec* exec) { exec_ = exec; }

 private:
  const Basis* conf_;
  ThreadExec* exec_ = nullptr;
  int vdim_, npc_;
  Tape3 gaunt_;  ///< conf-basis Gaunt tensor int w_k w_m w_n
};

}  // namespace vdg
