#include "obs/profiler.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "io/num_format.hpp"

namespace vdg {

namespace {

/// Identity of the calling thread's track, set by setThisThreadTrack.
/// Plain thread_locals: only the owning thread reads or writes them.
thread_local int tlsTid = 0;
thread_local std::string tlsLabel;  // empty -> "main" / "tid N"

/// Thread-local arena lookup cache. Keyed by (profiler address, serial):
/// a profiler may be destroyed and another constructed at the same
/// address, so the address alone would resurrect a dangling arena — the
/// globally unique serial number disambiguates reincarnations.
struct TlsSlot {
  const void* prof = nullptr;
  std::uint64_t serial = 0;
  void* arena = nullptr;
};
thread_local std::vector<TlsSlot> tlsSlots;

std::atomic<std::uint64_t> gProfilerSerial{1};

void escapeJson(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string quoted(std::string_view s) {
  std::string out = "\"";
  escapeJson(out, s);
  out += '"';
  return out;
}

}  // namespace

ProfilingSpec ProfilingSpec::fromEnv() {
  ProfilingSpec s;
  if (const char* t = std::getenv("VDG_TRACE"); t != nullptr && *t != '\0') {
    s.enabled = true;
    s.tracePath = t;
  }
  if (const char* p = std::getenv("VDG_PROFILE");
      p != nullptr && *p != '\0' && std::string_view(p) != "0") {
    s.enabled = true;
    if (std::string_view(p) != "1") s.reportPath = p;
  }
  return s;
}

Profiler::Profiler(ProfilingSpec spec, int rank)
    : spec_(std::move(spec)), rank_(rank), tracing_(spec_.tracing()),
      serial_(gProfilerSerial.fetch_add(1, std::memory_order_relaxed)),
      epoch_(MonoClock::now()) {}

Profiler::~Profiler() = default;

void Profiler::setThisThreadTrack(int tid, std::string label) {
  tlsTid = tid;
  tlsLabel = std::move(label);
}

Profiler::Arena& Profiler::arena() {
  for (const TlsSlot& s : tlsSlots)
    if (s.prof == this && s.serial == serial_)
      return *static_cast<Arena*>(s.arena);
  // First zone on this thread for this profiler: register a new arena.
  auto up = std::make_unique<Arena>();
  up->tid = tlsTid;
  up->label = tlsLabel.empty()
                  ? (tlsTid == 0 ? std::string("main")
                                 : "tid " + std::to_string(tlsTid))
                  : tlsLabel;
  up->nodes.emplace_back();  // root
  up->stack.push_back(0);
  Arena* a = up.get();
  {
    const std::lock_guard<std::mutex> lk(arenasM_);
    arenas_.push_back(std::move(up));
  }
  tlsSlots.push_back({this, serial_, a});
  return *a;
}

int Profiler::childNode(Arena& a, int parent, const char* name) {
  for (int c = a.nodes[static_cast<std::size_t>(parent)].firstChild; c != -1;
       c = a.nodes[static_cast<std::size_t>(c)].nextSibling)
    if (a.nodes[static_cast<std::size_t>(c)].name == name) return c;
  const int id = static_cast<int>(a.nodes.size());
  Node n;
  n.name = name;
  n.parent = parent;
  n.nextSibling = a.nodes[static_cast<std::size_t>(parent)].firstChild;
  a.nodes.push_back(std::move(n));
  a.nodes[static_cast<std::size_t>(parent)].firstChild = id;
  return id;
}

void Profiler::enter(const char* name) {
  Arena& a = arena();
  const int node = childNode(a, a.stack.back(), name);
  a.stack.push_back(node);
  a.openT0.push_back(MonoClock::now());
}

void Profiler::exit() {
  const auto t1 = MonoClock::now();
  Arena& a = arena();
  if (a.stack.size() <= 1) return;  // unbalanced exit: ignore
  const int node = a.stack.back();
  const auto t0 = a.openT0.back();
  a.stack.pop_back();
  a.openT0.pop_back();
  Node& n = a.nodes[static_cast<std::size_t>(node)];
  n.count += 1;
  n.seconds += secondsBetween(t0, t1);
  if (tracing_) a.events.push_back({node, t0, t1});
}

void Profiler::leafZone(const char* name, MonoClock::time_point t0,
                        MonoClock::time_point t1) {
  Arena& a = arena();
  const int node = childNode(a, a.stack.back(), name);
  Node& n = a.nodes[static_cast<std::size_t>(node)];
  n.count += 1;
  n.seconds += secondsBetween(t0, t1);
  if (tracing_) a.events.push_back({node, t0, t1});
}

void Profiler::stepCompleted(double simTime) {
  const std::lock_guard<std::mutex> lk(stepM_);
  ++steps_;
  if (spec_.reportEvery > 0 &&
      steps_ % static_cast<std::uint64_t>(spec_.reportEvery) == 0)
    metrics_.recordSnapshot(simTime, steps_);
}

std::uint64_t Profiler::stepCount() const {
  const std::lock_guard<std::mutex> lk(stepM_);
  return steps_;
}

std::vector<ZoneReport> Profiler::report() const {
  const std::lock_guard<std::mutex> lk(arenasM_);
  // Merge arena trees by (parent path, name) into one pool; children keep
  // first-visit order, which is execution order per thread.
  struct MNode {
    std::string name;
    std::uint64_t count = 0;
    double seconds = 0.0;
    std::vector<int> kids;
  };
  std::vector<MNode> pool(1);
  const auto childOf = [&pool](int parent, const std::string& name) {
    for (const int c : pool[static_cast<std::size_t>(parent)].kids)
      if (pool[static_cast<std::size_t>(c)].name == name) return c;
    const int id = static_cast<int>(pool.size());
    pool.push_back({name, 0, 0.0, {}});
    pool[static_cast<std::size_t>(parent)].kids.push_back(id);
    return id;
  };
  for (const auto& ap : arenas_) {
    const Arena& a = *ap;
    const std::function<void(int, int)> walk = [&](int anode, int mparent) {
      std::vector<int> kids;
      for (int c = a.nodes[static_cast<std::size_t>(anode)].firstChild;
           c != -1; c = a.nodes[static_cast<std::size_t>(c)].nextSibling)
        kids.push_back(c);
      std::reverse(kids.begin(), kids.end());  // prepend order -> entry order
      for (const int c : kids) {
        const Node& cn = a.nodes[static_cast<std::size_t>(c)];
        const int m = childOf(mparent, cn.name);
        pool[static_cast<std::size_t>(m)].count += cn.count;
        pool[static_cast<std::size_t>(m)].seconds += cn.seconds;
        walk(c, m);
      }
    };
    walk(0, 0);
  }
  std::vector<ZoneReport> out;
  const std::function<void(int, const std::string&, int)> emit =
      [&](int m, const std::string& prefix, int depth) {
        for (const int c : pool[static_cast<std::size_t>(m)].kids) {
          const MNode& cn = pool[static_cast<std::size_t>(c)];
          ZoneReport zr;
          zr.name = cn.name;
          zr.path = prefix.empty() ? cn.name : prefix + "/" + cn.name;
          zr.depth = depth;
          zr.count = cn.count;
          zr.seconds = cn.seconds;
          const std::string path = zr.path;
          out.push_back(std::move(zr));
          emit(c, path, depth + 1);
        }
      };
  emit(0, "", 0);
  return out;
}

double Profiler::zoneSeconds(std::string_view name) const {
  const std::lock_guard<std::mutex> lk(arenasM_);
  double s = 0.0;
  for (const auto& ap : arenas_)
    for (const Node& n : ap->nodes)
      if (n.name == name) s += n.seconds;
  return s;
}

std::string Profiler::table() const {
  const std::vector<ZoneReport> rows = report();
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-48s %10s %14s\n", "zone", "count",
                "seconds");
  out += line;
  for (const ZoneReport& r : rows) {
    std::string name(static_cast<std::size_t>(2 * r.depth), ' ');
    name += r.name;
    std::snprintf(line, sizeof(line), "%-48s %10llu %14.6e\n", name.c_str(),
                  static_cast<unsigned long long>(r.count), r.seconds);
    out += line;
  }
  return out;
}

std::string Profiler::reportJson() const {
  std::string out = "{\n  \"rank\": " + std::to_string(rank_) +
                    ",\n  \"steps\": " + std::to_string(stepCount()) +
                    ",\n  \"zones\": [";
  bool first = true;
  for (const ZoneReport& r : report()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"path\": " + quoted(r.path) +
           ", \"depth\": " + std::to_string(r.depth) +
           ", \"count\": " + std::to_string(r.count) +
           ", \"seconds\": " + jsonNumber(r.seconds) + "}";
  }
  out += "\n  ],\n";
  const auto emitKv =
      [&out](const std::vector<std::pair<std::string, double>>& kv) {
        bool f = true;
        for (const auto& [k, v] : kv) {
          out += f ? "" : ", ";
          f = false;
          out += quoted(k) + ": " + jsonNumber(v);
        }
      };
  const MetricsRegistry::Snapshot now = metrics_.snapshot(0.0, stepCount());
  out += "  \"counters\": {";
  emitKv(now.counters);
  out += "},\n  \"gauges\": {";
  emitKv(now.gauges);
  out += "},\n  \"snapshots\": [";
  first = true;
  for (const MetricsRegistry::Snapshot& s : metrics_.history()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"step\": " + std::to_string(s.step) +
           ", \"simTime\": " + jsonNumber(s.simTime) + ", \"counters\": {";
    emitKv(s.counters);
    out += "}, \"gauges\": {";
    emitKv(s.gauges);
    out += "}}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void Profiler::writeReportJson(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("profiler: cannot open " + path);
  os << reportJson();
}

void Profiler::appendTraceJson(std::ostream& os, MonoClock::time_point epoch,
                               bool& first) const {
  const std::lock_guard<std::mutex> lk(arenasM_);
  const auto emit = [&os, &first](const std::string& json) {
    if (!first) os << ",\n";
    first = false;
    os << json;
  };
  // Track labels: one thread_name record per tid (first arena wins; a
  // fresh rank thread per step re-registers the same tid each time).
  std::vector<int> seenTids;
  emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
       std::to_string(rank_) + ",\"tid\":0,\"args\":{\"name\":" +
       quoted("rank " + std::to_string(rank_)) + "}}");
  for (const auto& ap : arenas_) {
    if (std::find(seenTids.begin(), seenTids.end(), ap->tid) !=
        seenTids.end())
      continue;
    seenTids.push_back(ap->tid);
    emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
         std::to_string(rank_) + ",\"tid\":" + std::to_string(ap->tid) +
         ",\"args\":{\"name\":" + quoted(ap->label) + "}}");
  }
  for (const auto& ap : arenas_) {
    const std::string head = "{\"ph\":\"X\",\"pid\":" + std::to_string(rank_) +
                             ",\"tid\":" + std::to_string(ap->tid) +
                             ",\"name\":";
    for (const Event& e : ap->events) {
      const double ts = secondsBetween(epoch, e.t0) * 1e6;
      const double dur = secondsBetween(e.t0, e.t1) * 1e6;
      emit(head +
           quoted(ap->nodes[static_cast<std::size_t>(e.node)].name) +
           ",\"ts\":" + formatDouble(ts) + ",\"dur\":" + formatDouble(dur) +
           "}");
    }
  }
}

}  // namespace vdg
