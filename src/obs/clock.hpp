#pragma once
// The one monotonic clock of the codebase. Every subsystem that measures
// wall time — the communicator's HaloStats buckets, the profiler's zones,
// the ensemble engine's member timing, the AsyncWriter's stall accounting —
// reads this clock through these helpers, so durations from different
// layers are directly comparable (and the three private copies of
// `secondsSince` that used to live in ensemble/, app/ and par/ are gone).

#include <chrono>

namespace vdg {

using MonoClock = std::chrono::steady_clock;

[[nodiscard]] inline double secondsBetween(MonoClock::time_point t0,
                                           MonoClock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

[[nodiscard]] inline double secondsSince(MonoClock::time_point t0) {
  return secondsBetween(t0, MonoClock::now());
}

}  // namespace vdg
