#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "obs/profiler.hpp"

namespace vdg {

void writeChromeTrace(const std::string& path,
                      std::span<const Profiler* const> profilers) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("trace: cannot open " + path);
  // Shared epoch: the earliest profiler construction instant, so per-rank
  // tracks line up on one wall-clock axis.
  MonoClock::time_point epoch = MonoClock::time_point::max();
  for (const Profiler* p : profilers)
    if (p != nullptr) epoch = std::min(epoch, p->epoch());
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const Profiler* p : profilers)
    if (p != nullptr) p->appendTraceJson(os, epoch, first);
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  if (!os) throw std::runtime_error("trace: write failed for " + path);
}

void writeChromeTrace(const std::string& path, const Profiler& profiler) {
  const Profiler* const one[] = {&profiler};
  writeChromeTrace(path, one);
}

}  // namespace vdg
