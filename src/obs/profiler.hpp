#pragma once
// Hierarchical phase profiler. A Profiler owns a forest of per-thread
// arenas; each arena holds a zone tree (nodes keyed by name under their
// parent) plus, when tracing, the raw begin/end event stream. Threads
// enter/exit zones lock-free against each other (each thread only touches
// its own arena; the profiler-wide mutex is taken once per thread to
// register the arena), and the trees are merged by path at report time.
//
// The instrument is opt-in twice over: a null Profiler* makes ScopedTimer a
// no-op (the disabled hot path is one pointer test — pinned allocation-free
// by tests/test_obs.cpp), and an inactive ProfilingSpec makes the owning
// layer not construct a Profiler at all.
//
// Zone taxonomy (see docs/ARCHITECTURE.md "Observability"):
//   step > rk:stageN > <updater name()> > halo:pack/post/wait/unpack
//   plus field:refresh, wall-loss, sync:begin/finish, exec:chunk,
//   member:<name>, io:stall, io:drain.
// The communicator's halo:* leaf zones are recorded with the *same*
// timestamps that feed the HaloStats buckets: identical increments, so
// the totals reconcile to summation rounding (the per-parent zone nodes
// and the flat stats bucket may group the additions differently).

#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"

namespace vdg {

/// What to measure and where to put it. An all-default spec is inactive:
/// builders treat it as "instrumentation off" and skip constructing the
/// profiler entirely.
struct ProfilingSpec {
  bool enabled = false;     ///< zone timing + metrics on
  bool trace = false;       ///< record per-zone trace events (implies enabled)
  std::string tracePath;    ///< write a Chrome trace-event JSON here (implies trace)
  std::string reportPath;   ///< write the structured JSON report here
  int reportEvery = 0;      ///< snapshot metrics / rewrite report every N steps (0 = only at end)

  [[nodiscard]] bool tracing() const { return trace || !tracePath.empty(); }
  [[nodiscard]] bool active() const {
    return enabled || tracing() || !reportPath.empty();
  }

  /// Environment opt-in, read by Simulation::Builder and the Ensemble when
  /// no explicit spec was given:
  ///   VDG_TRACE=out.json   -> enabled + Chrome trace written to out.json
  ///   VDG_PROFILE=1        -> enabled (zone table printable, no files)
  ///   VDG_PROFILE=out.json -> enabled + JSON report written to out.json
  [[nodiscard]] static ProfilingSpec fromEnv();
};

/// One flat row of the merged zone tree, in depth-first (execution) order.
struct ZoneReport {
  std::string path;   ///< "step/rk:stage1/vlasov:elc/halo:wait"
  std::string name;   ///< last path component
  int depth = 0;      ///< 0 = top-level zone
  std::uint64_t count = 0;
  double seconds = 0.0;
};

class Profiler {
 public:
  explicit Profiler(ProfilingSpec spec = {}, int rank = 0);
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  [[nodiscard]] const ProfilingSpec& spec() const { return spec_; }
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] bool tracing() const { return tracing_; }
  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  /// Construction instant; trace timestamps are relative to the earliest
  /// epoch of the profilers sharing one trace file.
  [[nodiscard]] MonoClock::time_point epoch() const { return epoch_; }

  // --- hot path (called by ScopedTimer and the communicator backends) ----

  /// Open a zone on the calling thread. `name` must outlive the profiler
  /// or be interned by the caller (zone-name strings are copied only on
  /// the first visit per thread).
  void enter(const char* name);
  /// Close the innermost open zone on the calling thread.
  void exit();
  /// Book a completed interval as a child of the calling thread's current
  /// zone without opening it: the communicator/IO layers pass the exact
  /// timestamps they already took for their own stats, so zone seconds
  /// reconcile with the stats buckets to summation rounding.
  void leafZone(const char* name, MonoClock::time_point t0,
                MonoClock::time_point t1);

  /// Label the calling thread's track in reports and traces (ThreadExec
  /// workers, ensemble pool ranks, the AsyncWriter thread). Applies to
  /// arenas the thread registers *after* the call; thread-local, so it
  /// affects every profiler the thread subsequently touches.
  static void setThisThreadTrack(int tid, std::string label);

  // --- per-step bookkeeping --------------------------------------------

  /// Advance the step counter; snapshots metrics every spec().reportEvery
  /// steps. Thread-safe (the ensemble's pool threads share one profiler).
  void stepCompleted(double simTime);
  [[nodiscard]] std::uint64_t stepCount() const;

  // --- reporting (call when the instrumented threads are quiescent) -----

  /// Merge all arenas' trees by path; rows in depth-first order.
  [[nodiscard]] std::vector<ZoneReport> report() const;
  /// Total seconds over every node named `name`, across all threads and
  /// parents ("step", "halo:wait", ...).
  [[nodiscard]] double zoneSeconds(std::string_view name) const;
  /// Human-readable indented table of the merged tree.
  [[nodiscard]] std::string table() const;
  /// Structured report: zones + metrics + snapshot history (io/num_format
  /// numerals, round-trip exact).
  [[nodiscard]] std::string reportJson() const;
  void writeReportJson(const std::string& path) const;

  /// Emit this profiler's trace events (plus thread_name metadata) into an
  /// open Chrome trace-event array; used by writeChromeTrace. `first`
  /// tracks the leading-comma state across profilers.
  void appendTraceJson(std::ostream& os, MonoClock::time_point epoch,
                       bool& first) const;

 private:
  struct Node {
    std::string name;
    int parent = -1;
    int firstChild = -1;
    int nextSibling = -1;  ///< prepend order; reversed when reporting
    std::uint64_t count = 0;
    double seconds = 0.0;
  };
  struct Event {
    int node = -1;
    MonoClock::time_point t0, t1;
  };
  struct Arena {
    int tid = 0;
    std::string label;
    std::vector<Node> nodes;    ///< nodes[0] is the unnamed root
    std::vector<int> stack;     ///< open-zone node indices; starts at {0}
    std::vector<MonoClock::time_point> openT0;
    std::vector<Event> events;  ///< only filled when tracing
  };

  Arena& arena();
  int childNode(Arena& a, int parent, const char* name);

  ProfilingSpec spec_;
  int rank_ = 0;
  bool tracing_ = false;
  std::uint64_t serial_ = 0;  ///< distinguishes reincarnations at one address
  MonoClock::time_point epoch_;
  MetricsRegistry metrics_;

  mutable std::mutex arenasM_;
  /// Owned by the profiler (not the threads) so short-lived rank threads'
  /// arenas survive for the merge.
  std::vector<std::unique_ptr<Arena>> arenas_;

  mutable std::mutex stepM_;
  std::uint64_t steps_ = 0;
};

/// RAII zone guard; the profiler may be null (disabled: a no-op whose cost
/// is one branch, no clock read, no allocation).
class ScopedTimer {
 public:
  ScopedTimer(Profiler* p, const char* name) : p_(p) {
    if (p_) p_->enter(name);
  }
  ~ScopedTimer() {
    if (p_) p_->exit();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Profiler* p_;
};

}  // namespace vdg
