#pragma once
// Named numeric metrics for a run: counters (monotone accumulators: halo
// bytes, Krylov iterations, absorbed mass, writer lines) and gauges
// (last-value-wins: CFL dt, batched lane width, queue depth). The registry
// is a side-channel next to the Profiler's zone tree — zones answer "where
// did the time go", metrics answer "how much work was that". Snapshots
// taken per step / per interval give the periodic structured report its
// time axis.
//
// Thread safety: every member is mutex-guarded; concurrent add/set from
// worker or pool threads is safe (gauges are last-write-wins).

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vdg {

class MetricsRegistry {
 public:
  /// One frozen view of all counters and gauges, stamped with the
  /// simulation clock. `counters`/`gauges` are sorted by name.
  struct Snapshot {
    double simTime = 0.0;
    std::uint64_t step = 0;
    std::vector<std::pair<std::string, double>> counters;
    std::vector<std::pair<std::string, double>> gauges;
  };

  /// Accumulate into a counter (created at zero on first use).
  void add(std::string_view name, double delta);

  /// Set a gauge (created on first use; last write wins).
  void set(std::string_view name, double value);

  /// Current counter / gauge value; 0.0 when the name was never touched.
  [[nodiscard]] double counter(std::string_view name) const;
  [[nodiscard]] double gauge(std::string_view name) const;

  /// Freeze the current values (does not touch the history).
  [[nodiscard]] Snapshot snapshot(double simTime = 0.0,
                                  std::uint64_t step = 0) const;

  /// Freeze and append to the retained history (the periodic report's rows).
  void recordSnapshot(double simTime, std::uint64_t step);

  [[nodiscard]] std::vector<Snapshot> history() const;

 private:
  mutable std::mutex m_;
  std::map<std::string, double, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::vector<Snapshot> history_;
};

}  // namespace vdg
