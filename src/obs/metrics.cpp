#include "obs/metrics.hpp"

namespace vdg {

void MetricsRegistry::add(std::string_view name, double delta) {
  const std::lock_guard<std::mutex> lk(m_);
  const auto it = counters_.find(name);
  if (it != counters_.end())
    it->second += delta;
  else
    counters_.emplace(std::string(name), delta);
}

void MetricsRegistry::set(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lk(m_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end())
    it->second = value;
  else
    gauges_.emplace(std::string(name), value);
}

double MetricsRegistry::counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lk(m_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0.0;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const std::lock_guard<std::mutex> lk(m_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0.0;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot(double simTime,
                                                    std::uint64_t step) const {
  const std::lock_guard<std::mutex> lk(m_);
  Snapshot s;
  s.simTime = simTime;
  s.step = step;
  s.counters.assign(counters_.begin(), counters_.end());
  s.gauges.assign(gauges_.begin(), gauges_.end());
  return s;
}

void MetricsRegistry::recordSnapshot(double simTime, std::uint64_t step) {
  Snapshot s = snapshot(simTime, step);
  const std::lock_guard<std::mutex> lk(m_);
  history_.push_back(std::move(s));
}

std::vector<MetricsRegistry::Snapshot> MetricsRegistry::history() const {
  const std::lock_guard<std::mutex> lk(m_);
  return history_;
}

}  // namespace vdg
