#pragma once
// Chrome trace-event exporter: one JSON timeline loadable in
// chrome://tracing or https://ui.perfetto.dev, with one process track per
// rank (pid = rank) and one thread track per instrumented thread (main,
// ThreadExec workers, ensemble pool ranks, the AsyncWriter). Complete
// ("ph":"X") events only; timestamps are microseconds relative to the
// earliest profiler epoch so all ranks share one time axis.

#include <span>
#include <string>

namespace vdg {

class Profiler;

/// Merge the profilers' event streams into one trace file. Call when the
/// instrumented threads are quiescent. Throws on IO failure.
void writeChromeTrace(const std::string& path,
                      std::span<const Profiler* const> profilers);

/// Single-profiler convenience overload.
void writeChromeTrace(const std::string& path, const Profiler& profiler);

}  // namespace vdg
