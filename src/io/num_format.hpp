#pragma once
// Shortest round-trip formatting of doubles for the diagnostics writers.
//
// Default ostream insertion prints 6 significant digits — a time-series
// row or result table written that way silently loses ~11 digits, which
// corrupts growth-rate fits on small-amplitude diagnostics and breaks
// resume cross-checks that compare re-read values against in-memory ones.
// std::to_chars with no precision argument emits the *shortest* decimal
// string that parses back to exactly the same double (round-trip
// guarantee), so every CSV/JSON consumer recovers the bitwise value.

#include <charconv>
#include <cmath>
#include <string>

namespace vdg {

/// Shortest decimal string that round-trips to exactly `v` (including
/// "nan"/"inf"/"-inf" spellings for non-finite values — CSV context; JSON
/// needs jsonNumber below).
inline std::string formatDouble(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;  // 32 chars always fit the shortest form of a double
  return std::string(buf, ptr);
}

/// JSON-safe number token: shortest round-trip form, except non-finite
/// values become "null" (bare nan/inf is invalid JSON and breaks every
/// conforming parser on an otherwise-recoverable result table).
inline std::string jsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  return formatDouble(v);
}

}  // namespace vdg
