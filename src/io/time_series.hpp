#pragma once
// Scalar time-series diagnostics of a running Simulation, written as one
// CSV row per sample: time, field energies, and per species the first
// three velocity moments (particle number M0, x-momentum M1x, energy
// density M2 = int |v|^2 f), plus — on wall-bounded runs — the cumulative
// absorbed mass and the instantaneous wall mass-loss rate that the
// stepper accounts per RK stage (Simulation::absorbedMass/wallLossRate).
// This is the one diagnostic loop every driver was re-implementing by
// hand; the sheath, Landau, and bump-on-tail examples use it, and the
// ensemble engine streams one writer per member through its async IO
// thread so every campaign member emits the same schema as a solo run.
//
// Concurrency contract: a TimeSeriesWriter belongs to exactly ONE member
// (one stepping thread). sample() computes moments into writer-owned
// scratch and is not reentrant; concurrent members each construct their
// own writer on their own path. This is enforced, not just documented:
// two live writers on the same path throw (see the process-global path
// registry in time_series.cpp). Output goes either directly to the
// writer's CsvWriter (sync mode) or — when a RowSink is attached — the
// formatted row is handed off and the actual file IO happens on the
// sink's thread (src/ensemble/async_writer.hpp), so sampling never blocks
// the stepping thread on disk.
//
// Note for distributed runs: moments and energies integrate the *local*
// window (like Simulation::energetics); sample a serial or gathered
// simulation for global values. absorbed/wallRate are already globally
// reduced.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "io/field_io.hpp"

namespace vdg {

class Simulation;

/// Destination for formatted CSV traffic that a TimeSeriesWriter can hand
/// rows to instead of touching the file itself — the seam the ensemble
/// engine's AsyncWriter implements so file IO runs off the stepping
/// threads. Implementations must be safe to call from multiple member
/// threads concurrently (for distinct paths).
class RowSink {
 public:
  virtual ~RowSink() = default;
  /// Create (or, when `resume`, continue) the CSV at `path` with `header`.
  virtual void openCsv(const std::string& path, const std::string& header, bool resume) = 0;
  /// Append one formatted row line to an opened CSV.
  virtual void appendLine(const std::string& path, std::string line) = 0;
  /// Block until everything enqueued so far for `path` is on disk.
  virtual void flushPath(const std::string& path) = 0;
};

class TimeSeriesWriter {
 public:
  /// Sync mode: owns the CSV at `path` directly. Resume mode continues an
  /// existing file from a checkpoint restart — the header is written
  /// exactly once across checkpoint/resume cycles (CsvWriter::Mode).
  TimeSeriesWriter(std::string path, const Simulation& sim,
                   CsvWriter::Mode mode = CsvWriter::Mode::Truncate);
  /// Async mode: rows are formatted on the stepping thread and handed to
  /// `sink`; the sink's thread does the file IO. `sink` must outlive the
  /// writer's last sample()/flush().
  TimeSeriesWriter(std::string path, const Simulation& sim, RowSink* sink,
                   bool resume = false);
  ~TimeSeriesWriter();
  TimeSeriesWriter(const TimeSeriesWriter&) = delete;
  TimeSeriesWriter& operator=(const TimeSeriesWriter&) = delete;
  TimeSeriesWriter(TimeSeriesWriter&&) = delete;
  TimeSeriesWriter& operator=(TimeSeriesWriter&&) = delete;

  /// Append one row sampled from the simulation's current state. Call from
  /// the one thread stepping `sim` only.
  void sample(const Simulation& sim);

  /// Block until every row sampled so far is on disk (fsync-less flush of
  /// the stream, or a drain of the async sink's queue for this path).
  void flush();

  [[nodiscard]] const std::string& path() const { return path_; }
  /// The CSV header this writer emits (schema derived from the species
  /// list; shared between solo runs and ensemble members by construction).
  [[nodiscard]] static std::string headerFor(const Simulation& sim);
  /// The last sampled row (header order) — lets drivers reuse the sampled
  /// values for their own checks without recomputing moments.
  [[nodiscard]] const std::vector<double>& lastRow() const { return row_; }

 private:
  void init(const Simulation& sim);

  std::string path_;
  std::optional<CsvWriter> csv_;  ///< sync mode only
  RowSink* sink_ = nullptr;       ///< async mode only
  std::vector<double> row_;
  Field m0_, m1_, m2_;  ///< moment scratch, shaped once at construction
};

}  // namespace vdg
