#pragma once
// Scalar time-series diagnostics of a running Simulation, written as one
// CSV row per sample: time, field energies, and per species the first
// three velocity moments (particle number M0, x-momentum M1x, energy
// density M2 = int |v|^2 f), plus — on wall-bounded runs — the cumulative
// absorbed mass and the instantaneous wall mass-loss rate that the
// stepper accounts per RK stage (Simulation::absorbedMass/wallLossRate).
// This is the one diagnostic loop every driver was re-implementing by
// hand; the sheath example (examples/sheath_1x1v.cpp) uses it for its
// steady-state and conservation criteria, and the Landau / bump-on-tail
// drivers can sample the same columns.
//
// Note for distributed runs: moments and energies integrate the *local*
// window (like Simulation::energetics); sample a serial or gathered
// simulation for global values. absorbed/wallRate are already globally
// reduced.

#include <string>
#include <vector>

#include "io/field_io.hpp"

namespace vdg {

class Simulation;

class TimeSeriesWriter {
 public:
  /// Truncates `path` and writes the header derived from the simulation's
  /// species list: t, fieldEnergy, electricEnergy, then per species
  /// <name>_M0, <name>_M1x, <name>_M2, <name>_absorbed, <name>_wallRate
  /// (the last two always present; identically zero on periodic runs).
  TimeSeriesWriter(std::string path, const Simulation& sim);

  /// Append one row sampled from the simulation's current state.
  void sample(const Simulation& sim);

  [[nodiscard]] const std::string& path() const { return csv_.path(); }
  /// The last sampled row (header order) — lets drivers reuse the sampled
  /// values for their own checks without recomputing moments.
  [[nodiscard]] const std::vector<double>& lastRow() const { return row_; }

 private:
  CsvWriter csv_;
  std::vector<double> row_;
  Field m0_, m1_, m2_;  ///< moment scratch, shaped once at construction
};

}  // namespace vdg
