#include "io/time_series.hpp"

#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>

#include "app/projection.hpp"
#include "app/simulation.hpp"
#include "io/num_format.hpp"

namespace vdg {

namespace {

// One-writer-per-member enforcement: two live TimeSeriesWriters on the
// same path means two members (or two threads of one member) would
// interleave rows — a silent data race at the file level even when each
// write is individually synchronized. Make it a loud logic error instead.
std::mutex gPathsMutex;
std::set<std::string>& activePaths() {
  static std::set<std::string> paths;
  return paths;
}

void claimPath(const std::string& path) {
  std::lock_guard<std::mutex> lock(gPathsMutex);
  if (!activePaths().insert(path).second)
    throw std::logic_error("TimeSeriesWriter: '" + path +
                           "' already has a live writer (one writer per member)");
}

void releasePath(const std::string& path) {
  std::lock_guard<std::mutex> lock(gPathsMutex);
  activePaths().erase(path);
}

std::string formatRow(const std::vector<double>& row) {
  // Shortest round-trip formatting: default ostream precision (6 digits)
  // would truncate every diagnostic this file exists to record.
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out += ',';
    out += formatDouble(row[i]);
  }
  return out;
}

}  // namespace

std::string TimeSeriesWriter::headerFor(const Simulation& sim) {
  std::string h = "t,fieldEnergy,electricEnergy";
  for (int s = 0; s < sim.numSpecies(); ++s) {
    const std::string& n = sim.speciesConfig(s).name;
    h += "," + n + "_M0," + n + "_M1x," + n + "_M2," + n + "_absorbed," + n + "_wallRate";
  }
  return h;
}

TimeSeriesWriter::TimeSeriesWriter(std::string path, const Simulation& sim, CsvWriter::Mode mode)
    : path_(std::move(path)),
      m0_(sim.confGrid(), sim.confBasis().numModes()),
      m1_(sim.confGrid(), 3 * sim.confBasis().numModes()),
      m2_(sim.confGrid(), sim.confBasis().numModes()) {
  claimPath(path_);
  try {
    csv_.emplace(path_, headerFor(sim), mode);
  } catch (...) {
    releasePath(path_);
    throw;
  }
}

TimeSeriesWriter::TimeSeriesWriter(std::string path, const Simulation& sim, RowSink* sink,
                                   bool resume)
    : path_(std::move(path)),
      sink_(sink),
      m0_(sim.confGrid(), sim.confBasis().numModes()),
      m1_(sim.confGrid(), 3 * sim.confBasis().numModes()),
      m2_(sim.confGrid(), sim.confBasis().numModes()) {
  if (!sink_) throw std::invalid_argument("TimeSeriesWriter: null RowSink");
  claimPath(path_);
  try {
    sink_->openCsv(path_, headerFor(sim), resume);
  } catch (...) {
    releasePath(path_);
    throw;
  }
}

TimeSeriesWriter::~TimeSeriesWriter() { releasePath(path_); }

void TimeSeriesWriter::sample(const Simulation& sim) {
  const Simulation::Energetics e = sim.energetics();
  row_.clear();
  row_.push_back(e.time);
  row_.push_back(e.fieldEnergy);
  row_.push_back(e.electricEnergy);
  const Grid& cg = sim.confGrid();
  const Basis& cb = sim.confBasis();
  for (int s = 0; s < sim.numSpecies(); ++s) {
    sim.moments(s).compute(sim.distf(s), &m0_, &m1_, &m2_);
    row_.push_back(integrateDomain(cb, cg, m0_));
    row_.push_back(integrateDomain(cb, cg, m1_, 0));
    row_.push_back(integrateDomain(cb, cg, m2_));
    row_.push_back(sim.absorbedMass(s));
    row_.push_back(sim.wallLossRate(s));
  }
  if (sink_)
    sink_->appendLine(path_, formatRow(row_));
  else
    csv_->row(row_);
}

void TimeSeriesWriter::flush() {
  if (sink_)
    sink_->flushPath(path_);
  else
    csv_->flush();
}

}  // namespace vdg
