#include "io/time_series.hpp"

#include "app/projection.hpp"
#include "app/simulation.hpp"

namespace vdg {

namespace {

std::string headerFor(const Simulation& sim) {
  std::string h = "t,fieldEnergy,electricEnergy";
  for (int s = 0; s < sim.numSpecies(); ++s) {
    const std::string& n = sim.speciesConfig(s).name;
    h += "," + n + "_M0," + n + "_M1x," + n + "_M2," + n + "_absorbed," + n + "_wallRate";
  }
  return h;
}

}  // namespace

TimeSeriesWriter::TimeSeriesWriter(std::string path, const Simulation& sim)
    : csv_(std::move(path), headerFor(sim)),
      m0_(sim.confGrid(), sim.confBasis().numModes()),
      m1_(sim.confGrid(), 3 * sim.confBasis().numModes()),
      m2_(sim.confGrid(), sim.confBasis().numModes()) {}

void TimeSeriesWriter::sample(const Simulation& sim) {
  const Simulation::Energetics e = sim.energetics();
  row_.clear();
  row_.push_back(e.time);
  row_.push_back(e.fieldEnergy);
  row_.push_back(e.electricEnergy);
  const Grid& cg = sim.confGrid();
  const Basis& cb = sim.confBasis();
  for (int s = 0; s < sim.numSpecies(); ++s) {
    sim.moments(s).compute(sim.distf(s), &m0_, &m1_, &m2_);
    row_.push_back(integrateDomain(cb, cg, m0_));
    row_.push_back(integrateDomain(cb, cg, m1_, 0));
    row_.push_back(integrateDomain(cb, cg, m2_));
    row_.push_back(sim.absorbedMass(s));
    row_.push_back(sim.wallLossRate(s));
  }
  csv_.row(row_);
}

}  // namespace vdg
