#include "io/field_io.hpp"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "app/state.hpp"
#include "io/num_format.hpp"

namespace vdg {

namespace {
constexpr std::uint64_t kMagic = 0x56444731'46494C44ull;     // "VDG1FILD": plain grid
constexpr std::uint64_t kMagicSub = 0x56444732'46494C44ull;  // "VDG2FILD": + subgrid window
}

void writeField(const std::string& path, const Field& field, double time) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("writeField: cannot open " + path);
  const Grid& g = field.grid();
  // Rank-local (subgrid) fields carry their parent window in an extended
  // record, so a checkpointed shard round-trips with its bit-exact global
  // coordinate arithmetic intact; plain grids keep the v1 format.
  const bool sub = g.isSubgrid();
  const std::uint64_t magic = sub ? kMagicSub : kMagic;
  const std::int64_t nd = g.ndim, nc = field.ncomp();
  os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  os.write(reinterpret_cast<const char*>(&nd), sizeof(nd));
  os.write(reinterpret_cast<const char*>(&nc), sizeof(nc));
  os.write(reinterpret_cast<const char*>(&time), sizeof(time));
  for (int d = 0; d < g.ndim; ++d) {
    const auto s = static_cast<std::size_t>(d);
    const std::int64_t cells = g.cells[s];
    os.write(reinterpret_cast<const char*>(&cells), sizeof(cells));
    os.write(reinterpret_cast<const char*>(&g.lower[s]), sizeof(double));
    os.write(reinterpret_cast<const char*>(&g.upper[s]), sizeof(double));
    if (sub) {
      const std::int64_t pc = g.parentCells[s], off = g.offset[s];
      os.write(reinterpret_cast<const char*>(&pc), sizeof(pc));
      os.write(reinterpret_cast<const char*>(&off), sizeof(off));
      os.write(reinterpret_cast<const char*>(&g.parentLower[s]), sizeof(double));
      os.write(reinterpret_cast<const char*>(&g.parentUpper[s]), sizeof(double));
    }
  }
  forEachCell(g, [&](const MultiIndex& idx) {
    os.write(reinterpret_cast<const char*>(field.at(idx)),
             static_cast<std::streamsize>(sizeof(double)) * field.ncomp());
  });
  if (!os) throw std::runtime_error("writeField: write failed for " + path);
}

LoadedField readField(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("readField: cannot open " + path);
  std::uint64_t magic = 0;
  std::int64_t nd = 0, nc = 0;
  double time = 0.0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (magic != kMagic && magic != kMagicSub)
    throw std::runtime_error("readField: bad magic in " + path);
  const bool sub = magic == kMagicSub;
  is.read(reinterpret_cast<char*>(&nd), sizeof(nd));
  is.read(reinterpret_cast<char*>(&nc), sizeof(nc));
  is.read(reinterpret_cast<char*>(&time), sizeof(time));
  Grid g;
  g.ndim = static_cast<int>(nd);
  for (int d = 0; d < g.ndim; ++d) {
    const auto s = static_cast<std::size_t>(d);
    std::int64_t cells = 0;
    is.read(reinterpret_cast<char*>(&cells), sizeof(cells));
    g.cells[s] = static_cast<int>(cells);
    is.read(reinterpret_cast<char*>(&g.lower[s]), sizeof(double));
    is.read(reinterpret_cast<char*>(&g.upper[s]), sizeof(double));
    if (sub) {
      std::int64_t pc = 0, off = 0;
      is.read(reinterpret_cast<char*>(&pc), sizeof(pc));
      is.read(reinterpret_cast<char*>(&off), sizeof(off));
      g.parentCells[s] = static_cast<int>(pc);
      g.offset[s] = static_cast<int>(off);
      is.read(reinterpret_cast<char*>(&g.parentLower[s]), sizeof(double));
      is.read(reinterpret_cast<char*>(&g.parentUpper[s]), sizeof(double));
    }
  }
  LoadedField out{Field(g, static_cast<int>(nc)), time};
  forEachCell(g, [&](const MultiIndex& idx) {
    is.read(reinterpret_cast<char*>(out.field.at(idx)),
            static_cast<std::streamsize>(sizeof(double)) * out.field.ncomp());
  });
  if (!is) throw std::runtime_error("readField: truncated file " + path);
  return out;
}

std::string checkpointSlotPath(const std::string& prefix, const std::string& slotName) {
  return prefix + "." + slotName + ".fld";
}

void writeStateCheckpoint(const std::string& prefix, const StateVector& state, double time) {
  for (int i = 0; i < state.numSlots(); ++i)
    writeField(checkpointSlotPath(prefix, state.slotName(i)), state.slot(i), time);
}

double readStateCheckpoint(const std::string& prefix, StateVector& state) {
  double time = 0.0;
  for (int i = 0; i < state.numSlots(); ++i) {
    const LoadedField lf = readField(checkpointSlotPath(prefix, state.slotName(i)));
    Field& dst = state.slot(i);
    const Grid& g = dst.grid();
    const Grid& lg = lf.field.grid();
    bool match = lg.ndim == g.ndim && lf.field.ncomp() == dst.ncomp();
    for (int d = 0; match && d < g.ndim; ++d)
      match = lg.cells[static_cast<std::size_t>(d)] == g.cells[static_cast<std::size_t>(d)];
    if (!match)
      throw std::runtime_error("readStateCheckpoint: slot '" + state.slotName(i) +
                               "' shape mismatch in " + prefix);
    const std::size_t bytes = sizeof(double) * static_cast<std::size_t>(dst.ncomp());
    forEachCell(g, [&](const MultiIndex& idx) {
      std::memcpy(dst.at(idx), lf.field.at(idx), bytes);
    });
    time = lf.time;
  }
  return time;
}

CsvWriter::CsvWriter(std::string path, std::string header, Mode mode) : path_(std::move(path)) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const bool resume =
      mode == Mode::Resume && fs::exists(path_, ec) && fs::file_size(path_, ec) > 0;
  if (resume) {
    // The header must already be there (written by the pre-checkpoint
    // writer); verify instead of re-emitting so a resumed member's series
    // file carries the header exactly once.
    std::ifstream is(path_);
    std::string first;
    std::getline(is, first);
    if (first != header)
      throw std::runtime_error("CsvWriter: resuming " + path_ +
                               " but its header does not match the requested schema");
    os_.open(path_, std::ios::app);
    if (!os_) throw std::runtime_error("CsvWriter: cannot open " + path_);
    return;
  }
  os_.open(path_, std::ios::trunc);
  if (!os_) throw std::runtime_error("CsvWriter: cannot open " + path_);
  os_ << header << "\n";
}

void CsvWriter::row(const std::vector<double>& values) {
  // Shortest round-trip formatting — streaming doubles at the default
  // 6-digit precision silently truncates every diagnostics column.
  for (std::size_t i = 0; i < values.size(); ++i)
    os_ << (i ? "," : "") << formatDouble(values[i]);
  os_ << "\n";
}

void CsvWriter::line(const std::string& text) { os_ << text << "\n"; }

void CsvWriter::flush() {
  os_.flush();
  if (!os_) throw std::runtime_error("CsvWriter: write failed for " + path_);
}

}  // namespace vdg
