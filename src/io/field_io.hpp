#pragma once
// Lightweight binary field I/O and checkpoint/restart — the role ADIOS
// plays in Gkeyll. The format is a small self-describing header (magic,
// grid, ncomp) followed by the raw interior coefficient data, so dumps can
// be post-processed or used to restart a simulation exactly. A whole
// StateVector checkpoints as one field file per slot under a common
// prefix (writeStateCheckpoint/readStateCheckpoint), which is the unit the
// ensemble engine's async writer streams to disk.

#include <fstream>
#include <string>
#include <vector>

#include "grid/grid.hpp"

namespace vdg {

class StateVector;

/// Write the interior cells of a field (header + doubles). Throws
/// std::runtime_error on I/O failure.
void writeField(const std::string& path, const Field& field, double time);

/// Read a field written by writeField; returns the stored time. The field
/// is reconstructed with a fresh ghost layer (unsynced).
struct LoadedField {
  Field field;
  double time = 0.0;
};
[[nodiscard]] LoadedField readField(const std::string& path);

/// Path of slot `slotName` inside a state checkpoint written under
/// `prefix` — one v1/v2 field file per slot, so the existing field
/// round-trip machinery (subgrid windows included) carries whole-state
/// checkpoints unchanged.
[[nodiscard]] std::string checkpointSlotPath(const std::string& prefix,
                                             const std::string& slotName);

/// Checkpoint every slot of a StateVector as individual field files under
/// `prefix` (see checkpointSlotPath), all stamped with the same time.
void writeStateCheckpoint(const std::string& prefix, const StateVector& state, double time);

/// Restore a checkpoint written by writeStateCheckpoint into `state`
/// (interior cells only; slot names/shapes must match — the caller builds
/// the StateVector from the same scenario first). Returns the stored time.
[[nodiscard]] double readStateCheckpoint(const std::string& prefix, StateVector& state);

/// Simple CSV table writer holding its file open for the lifetime of the
/// object: writes `header` on construction, then appends one row per call.
/// In resume mode an existing non-empty file is continued (the header is
/// written exactly once across checkpoint/restart cycles; a header
/// mismatch throws — the schema of a resumed series must not change).
class CsvWriter {
 public:
  enum class Mode {
    Truncate,  ///< start a fresh table (the default; each run owns its file)
    Resume,    ///< append to an existing table, writing the header only if absent
  };

  explicit CsvWriter(std::string path, std::string header, Mode mode = Mode::Truncate);
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;
  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;

  void row(const std::vector<double>& values);
  /// Append one already-formatted row line (no trailing newline needed).
  void line(const std::string& text);
  /// Push buffered rows to the OS (the object also flushes on destruction).
  void flush();
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream os_;
};

}  // namespace vdg
