#pragma once
// Lightweight binary field I/O and checkpoint/restart — the role ADIOS
// plays in Gkeyll. The format is a small self-describing header (magic,
// grid, ncomp) followed by the raw interior coefficient data, so dumps can
// be post-processed or used to restart a simulation exactly.

#include <string>
#include <vector>

#include "grid/grid.hpp"

namespace vdg {

/// Write the interior cells of a field (header + doubles). Throws
/// std::runtime_error on I/O failure.
void writeField(const std::string& path, const Field& field, double time);

/// Read a field written by writeField; returns the stored time. The field
/// is reconstructed with a fresh ghost layer (unsynced).
struct LoadedField {
  Field field;
  double time = 0.0;
};
[[nodiscard]] LoadedField readField(const std::string& path);

/// Simple CSV table writer: truncates the file and writes `header` on
/// construction, then appends one row per call.
class CsvWriter {
 public:
  explicit CsvWriter(std::string path, std::string header);
  void row(const std::vector<double>& values);
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace vdg
