#pragma once
// Conservative Lenard-Bernstein/Dougherty collision operator (the paper's
// reference [22]; Juno et al. 2017 give the DG formulation reproduced here):
//
//   C[f] = nu d/dv_j ( (v_j - u_j) f + vth^2 df/dv_j )
//
// with primitive moments (u, vth^2) obtained from the discrete moments of f
// by weak division in the configuration basis (dg/moments.hpp,
// PrimitiveMoments). The discretization stays alias-free / matrix-free /
// quadrature-free:
//
//  - The drag term is the Vlasov acceleration machinery with the velocity-
//    space "acceleration" alpha_j = u_j - v_j: exact sparse volume tapes
//    plus penalty-flux surface lifts at interior velocity faces.
//  - The diffusion term uses the recovery-based DG treatment: across every
//    interior velocity face the two neighboring 1-D slices are merged into
//    the unique degree-(2p+1) recovery polynomial reproducing both cells'
//    moments, whose interface value and derivative feed the twice-
//    integrated-by-parts weak form (value + flux surface terms plus the
//    second-derivative volume tape of tensors/dg_tensors.hpp).
//  - Velocity-domain boundaries are zero-flux: drag and diffusion fluxes
//    are dropped there, so the density M0 is conserved by construction
//    (surface fluxes telescope over interior faces).
//  - A final per-configuration-cell correction solves a tiny (2 + vdim)
//    moment system and subtracts a combination of the exactly-projected
//    weight fields {f, v_j f, |v|^2 f} from the increment, so M0, M1 and
//    M2 are conserved to machine precision per step (the momentum/energy
//    errors of the raw discrete operator are O(h^{p+1}); the correction
//    removes them entirely).
//
// Per-cell loops are chunked over configuration cells through ThreadExec
// (velocity faces never straddle configuration cells, so one chunk owns
// every term of its cells) and are bit-for-bit serial-identical, like BGK.

#include <algorithm>
#include <memory>
#include <vector>

#include "dg/moments.hpp"
#include "grid/grid.hpp"
#include "kernels/registry.hpp"
#include "tensors/vlasov_tensors.hpp"

namespace vdg {

class ThreadExec;

struct LboParams {
  /// Species mass. The operator itself acts on vth^2 = T/m directly (its
  /// moments are mass-independent); mass converts between the two where a
  /// temperature is needed — LboUpdater::temperature() returns T = m vth^2.
  /// Simulation::Builder overwrites it with the species mass.
  double mass = 1.0;
  double collisionFreq = 1.0;  ///< nu
  /// Apply the exact per-cell M0/M1/M2 conservation correction. On by
  /// default; tests disable it to measure the raw operator's errors.
  bool momentFix = true;
};

class LboUpdater {
 public:
  LboUpdater(const BasisSpec& spec, const Grid& phaseGrid, const LboParams& params);

  /// rhs += nu d/dv.((v-u)f + vth^2 df/dv) with (u, vth^2) from the weak
  /// division of f's moments. Returns the stiffness frequency
  /// max_cells sum_j nu (|u - v|_max / dv_j + vth^2_max (2p+1) / dv_j^2).
  double advance(const Field& f, Field& rhs) const;

  /// Weak-division primitive moments of f: u (vdim*numConfModes comps) and
  /// vth^2 (numConfModes comps) on the configuration grid.
  void primitiveMoments(const Field& f, Field& u, Field& vtSq) const;

  /// Temperature T = mass * vth^2 (numConfModes comps) — where the species
  /// mass enters the collision layer.
  void temperature(const Field& f, Field& T) const;

  /// Raw operator pieces, accumulated into rhs WITHOUT the collision
  /// frequency and WITHOUT the conservation correction (tests, convergence
  /// studies). `u` / `vtSq` are configuration fields as produced by
  /// primitiveMoments (any prescribed coefficient field works).
  void dragTerm(const Field& f, const Field& u, Field& rhs) const;
  void diffusionTerm(const Field& f, const Field& vtSq, Field& rhs) const;

  [[nodiscard]] const LboParams& params() const { return params_; }
  [[nodiscard]] Grid confGrid() const { return mom_->confGrid(); }
  [[nodiscard]] int numConfModes() const { return npc_; }

  /// Pool driving the per-configuration-cell loops (defaults to
  /// ThreadExec::global(); nullptr forces serial execution). Chunks own
  /// disjoint configuration cells — and with them every velocity face of
  /// those cells — so threading is bit-for-bit serial-identical. Shared
  /// with the weak-division loop of the primitive moments.
  void setExecutor(ThreadExec* exec) {
    exec_ = exec;
    prim_->setExecutor(exec);
  }

  /// SIMD batch width for the per-velocity-cell volume loops (drag +
  /// diffusion), executed through the batched tape executors of
  /// dg/batch.hpp: 0 = auto (largest kKernelBatchLanes entry, the
  /// default), 1 = scalar cell loop. Bitwise identical either way — the
  /// knob exists for A/B benchmarking and bisection.
  void setBatchLanes(int lanes) { batchLanes_ = lanes; }

  /// The lane count apply() actually blocks the volume loops with.
  [[nodiscard]] int activeBatchLanes() const {
    if (batchLanes_ == 1) return 1;
    if (batchLanes_ != 0) return batchLanes_;
    int best = 1;
    for (int b : kKernelBatchLanes) best = std::max(best, b);
    return best;
  }

 private:
  double apply(const Field& f, const Field& u, const Field& vtSq, Field& rhs, bool drag,
               bool diff, bool correct, double scale) const;

  const VlasovKernelSet* ks_;
  ThreadExec* exec_ = nullptr;
  Grid grid_;
  LboParams params_;
  int cdim_, vdim_, np_, npc_, polyOrder_;
  std::unique_ptr<MomentUpdater> mom_;
  std::unique_ptr<PrimitiveMoments> prim_;

  std::vector<Tape3> diffVol_;   ///< per vel dim: int d2w_l/deta^2 w_m w_n
  std::vector<Tape2> eta2Mul_;   ///< per vel dim: projection of eta^2 g

  /// psi'_{a_d}(-1) / psi'_{a_d}(+1) per volume mode, per velocity dim —
  /// the derivative lifts of the recovery value surface term.
  std::vector<std::vector<double>> derivMinus_, derivPlus_;

  /// Volume mode of 1-D slice degree m on face mode k (index k*(p+1)+m),
  /// -1 where the family drops the mode; per velocity dim.
  std::vector<std::vector<int>> sliceMode_;

  /// Recovery functionals: interface value r(0) and derivative r'(0) (in
  /// the two-cell coordinate) as linear maps of the left/right 1-D slice
  /// coefficients g_m, m = 0..p (tensors/dg_tensors.hpp, shared with the
  /// Poisson solver).
  RecoveryWeights rec_;

  /// Scalar (conf-mode-0) moment tape weights over one velocity cell, for
  /// the conservation correction: weight 1, eta_j, eta_j^2.
  struct ScalarTape {
    struct Term {
      int l;
      double c;
    };
    std::vector<Term> terms;
  };
  ScalarTape sm0_;
  std::vector<ScalarTape> sm1_, sm2_;

  std::vector<double> confSup_;  ///< sup |w_k| per conf mode (CFL bound)
  double jacV_ = 1.0;            ///< velocity-cell Jacobian prod dv_j/2
  int batchLanes_ = 0;           ///< requested SIMD batch width (0 = auto)
};

}  // namespace vdg
