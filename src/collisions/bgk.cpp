#include "collisions/bgk.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "math/gauss_legendre.hpp"
#include "par/thread_exec.hpp"

namespace vdg {

BgkUpdater::BgkUpdater(const BasisSpec& spec, const Grid& phaseGrid, const BgkParams& params)
    : phase_(&basisFor(spec)), exec_(&ThreadExec::global()), grid_(phaseGrid), params_(params),
      cdim_(spec.cdim), vdim_(spec.vdim), np_(phase_->numModes()),
      npc_(basisFor(spec.configSpec()).numModes()),
      mom_(std::make_unique<MomentUpdater>(spec, phaseGrid)) {
  if (phaseGrid.ndim != spec.ndim())
    throw std::invalid_argument("BgkUpdater: grid/basis dimensionality mismatch");
  const int nq1 = spec.polyOrder + 2;
  const QuadRule rule = gauss_legendre(nq1);
  const int nd = spec.ndim();
  nq_ = 1;
  for (int d = 0; d < nd; ++d) nq_ *= nq1;
  quadNodes_.resize(static_cast<std::size_t>(nq_) * nd);
  quadWeights_.resize(static_cast<std::size_t>(nq_));
  basisAt_.resize(static_cast<std::size_t>(nq_) * np_);
  std::vector<int> id(static_cast<std::size_t>(nd), 0);
  for (int q = 0; q < nq_; ++q) {
    double w = 1.0;
    for (int d = 0; d < nd; ++d) {
      quadNodes_[static_cast<std::size_t>(q) * nd + d] =
          rule.nodes[static_cast<std::size_t>(id[static_cast<std::size_t>(d)])];
      w *= rule.weights[static_cast<std::size_t>(id[static_cast<std::size_t>(d)])];
    }
    quadWeights_[static_cast<std::size_t>(q)] = w;
    phase_->evalAll(&quadNodes_[static_cast<std::size_t>(q) * nd],
                    &basisAt_[static_cast<std::size_t>(q) * np_]);
    for (int d = 0; d < nd; ++d) {
      if (++id[static_cast<std::size_t>(d)] < nq1) break;
      id[static_cast<std::size_t>(d)] = 0;
    }
  }
}

void BgkUpdater::projectMaxwellian(const Field& f, Field& out) const {
  const Grid confGrid = mom_->confGrid();
  Field m0(confGrid, npc_), m1(confGrid, 3 * npc_), m2(confGrid, npc_);
  mom_->compute(f, &m0, &m1, &m2);
  const int nd = grid_.ndim;
  int confHi[kMaxDim], velHi[kMaxDim];
  for (int d = 0; d < cdim_; ++d) confHi[d] = grid_.cells[static_cast<std::size_t>(d)];
  for (int j = 0; j < vdim_; ++j) velHi[j] = grid_.cells[static_cast<std::size_t>(cdim_ + j)];
  const std::size_t nvel = boxSize(vdim_, velHi);
  // All velocity cells of one configuration cell, in odometer order.
  // Generic callables throughout so the per-cell bodies stay inlinable.
  const auto forEachVelCell = [&](const MultiIndex& cidx, const auto& fn) {
    forEachIndexInRange(vdim_, velHi, 0, nvel, [&](const MultiIndex& vi) {
      MultiIndex idx = cidx;
      for (int j = 0; j < vdim_; ++j) idx[cdim_ + j] = vi[j];
      fn(idx);
    });
  };

  // Parallel over configuration cells: each one owns all its velocity
  // cells, so the chunked loops below write disjoint slabs of `out`.
  const auto forEachConf = [&](const auto& fn) {
    chunkedFor(exec_, boxSize(cdim_, confHi), [&](std::size_t begin, std::size_t end) {
      forEachIndexInRange(cdim_, confHi, begin, end, fn);
    });
  };

  forEachConf([&](const MultiIndex& ci) {
    const MultiIndex cidx = ci;
    // The cell average of a DG expansion is coeff_0 * 2^{-d/2}; vacuum
    // cells (nAvg <= 0) get a zero Maxwellian via norm = 0 below.
    const double nAvg = m0.at(cidx)[0] * std::pow(2.0, -0.5 * cdim_);
    double uAvg[3] = {0.0, 0.0, 0.0};
    for (int j = 0; j < vdim_; ++j)
      uAvg[j] = (nAvg > 0.0)
                    ? m1.at(cidx)[j * npc_] * std::pow(2.0, -0.5 * cdim_) / nAvg
                    : 0.0;
    double m2Avg = m2.at(cidx)[0] * std::pow(2.0, -0.5 * cdim_);
    double u2 = 0.0;
    for (int j = 0; j < vdim_; ++j) u2 += uAvg[j] * uAvg[j];
    double vt2 = (nAvg > 0.0) ? (m2Avg / nAvg - u2) / vdim_ : 1.0;
    vt2 = std::max(vt2, 1e-14);

    const double norm =
        (nAvg > 0.0) ? nAvg / std::pow(2.0 * std::numbers::pi * vt2, 0.5 * vdim_) : 0.0;

    // Project in every velocity cell of this configuration cell, then
    // rescale so collisional density change is exactly zero.
    forEachVelCell(cidx, [&](const MultiIndex& idx) {
      double* oc = out.at(idx);
      for (int l = 0; l < np_; ++l) oc[l] = 0.0;
      for (int q = 0; q < nq_; ++q) {
        double arg = 0.0;
        for (int j = 0; j < vdim_; ++j) {
          const int d = cdim_ + j;
          const double v = grid_.cellCenter(d, idx[d]) +
                           0.5 * grid_.dx(d) * quadNodes_[static_cast<std::size_t>(q) * nd + d];
          const double dv = v - uAvg[j];
          arg += dv * dv;
        }
        const double val = norm * std::exp(-0.5 * arg / vt2);
        const double wq = quadWeights_[static_cast<std::size_t>(q)];
        const double* wl = &basisAt_[static_cast<std::size_t>(q) * np_];
        for (int l = 0; l < np_; ++l) oc[l] += wq * val * wl[l];
      }
    });
  });

  // Density-conserving rescale: lambda(x) cell-wise so M0[f_M] == M0[f].
  Field m0M(confGrid, npc_);
  mom_->compute(out, &m0M, nullptr, nullptr);
  forEachConf([&](const MultiIndex& ci) {
    const double a = m0.at(ci)[0];
    const double b = m0M.at(ci)[0];
    if (std::abs(b) < 1e-300) return;
    const double s = a / b;
    forEachVelCell(ci, [&](const MultiIndex& idx) {
      double* oc = out.at(idx);
      for (int l = 0; l < np_; ++l) oc[l] *= s;
    });
  });
}

double BgkUpdater::advance(const Field& f, Field& rhs) const {
  Field fM(grid_, np_, f.nghost());
  projectMaxwellian(f, fM);
  const double nu = params_.collisionFreq;
  parallelForEachCell(exec_, grid_, [&](const MultiIndex& idx) {
    const double* fc = f.at(idx);
    const double* mc = fM.at(idx);
    double* rc = rhs.at(idx);
    for (int l = 0; l < np_; ++l) rc[l] += nu * (mc[l] - fc[l]);
  });
  return nu;
}

}  // namespace vdg
