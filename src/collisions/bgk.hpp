#pragma once
// BGK collision operator C[f] = nu (f_M - f), the simplest conservative
// relaxation model (Gkeyll ships BGK alongside the Dougherty/Fokker-Planck
// operator of the paper's reference [22]; the paper's Section III uses the
// collision operator only to report that collisions roughly double the
// update cost, which this operator reproduces in the Eop benchmark).
//
// The Maxwellian f_M is parameterized by the cell-averaged density, drift
// velocity and thermal speed computed from the exact moment tapes, projected
// onto the basis with Gauss quadrature, and rescaled so that collisions
// conserve the cell density exactly.

#include <memory>

#include "dg/moments.hpp"
#include "grid/grid.hpp"

namespace vdg {

class ThreadExec;

struct BgkParams {
  /// Species mass. The relaxation itself parameterizes the Maxwellian by
  /// moments of f directly, so mass only enters the collision layer where
  /// a temperature is needed — see LboParams::mass and
  /// LboUpdater::temperature() (T = m vth^2) for the operator that uses
  /// it. Simulation::Builder overwrites it with the species mass, so
  /// callers of the builder need not set it.
  double mass = 1.0;
  double collisionFreq = 1.0;  ///< nu
};

class BgkUpdater {
 public:
  BgkUpdater(const BasisSpec& spec, const Grid& phaseGrid, const BgkParams& params);

  /// rhs += nu (f_M[f] - f). Returns the stiffness frequency nu.
  double advance(const Field& f, Field& rhs) const;

  /// Project the Maxwellian matching f's (cell-averaged) moments into out.
  void projectMaxwellian(const Field& f, Field& out) const;

  /// Pool driving the per-cell quadrature/relaxation loops (defaults to
  /// ThreadExec::global(); nullptr forces serial execution). Chunks write
  /// disjoint cells, so threading is bit-for-bit serial-identical.
  void setExecutor(ThreadExec* exec) { exec_ = exec; }

 private:
  const Basis* phase_;
  ThreadExec* exec_ = nullptr;
  Grid grid_;
  BgkParams params_;
  int cdim_, vdim_, np_, npc_;
  std::unique_ptr<MomentUpdater> mom_;
  // Volume quadrature data for the Maxwellian projection.
  std::vector<double> quadNodes_, quadWeights_, basisAt_;
  int nq_ = 0;
};

}  // namespace vdg
