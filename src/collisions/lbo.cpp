#include "collisions/lbo.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "dg/batch.hpp"
#include "math/dense_matrix.hpp"
#include "math/gauss_legendre.hpp"
#include "math/legendre.hpp"
#include "par/thread_exec.hpp"
#include "tensors/dg_tensors.hpp"

namespace vdg {

namespace {

template <typename Fn>
void forEachIdx(int nd, const int* hi, Fn fn) {
  forEachIndexInRange(nd, hi, 0, boxSize(nd, hi), fn);
}

/// Upper bound on the supported batch lane counts (sizes per-lane scratch).
constexpr int kMaxLanes = 8;

}  // namespace

LboUpdater::LboUpdater(const BasisSpec& spec, const Grid& phaseGrid, const LboParams& params)
    : ks_(&vlasovKernels(spec)), exec_(&ThreadExec::global()), grid_(phaseGrid), params_(params),
      cdim_(spec.cdim), vdim_(spec.vdim), np_(ks_->numPhaseModes), npc_(ks_->numConfModes),
      polyOrder_(spec.polyOrder), mom_(std::make_unique<MomentUpdater>(spec, phaseGrid)),
      prim_(std::make_unique<PrimitiveMoments>(spec.configSpec(), spec.vdim)) {
  if (phaseGrid.ndim != spec.ndim())
    throw std::invalid_argument("LboUpdater: grid/basis dimensionality mismatch");
  const Basis& phase = *ks_->phase;
  const auto& tab = LegendreTables::instance();
  const int p = polyOrder_;

  for (int j = 0; j < vdim_; ++j) {
    const int d = cdim_ + j;
    diffVol_.push_back(buildVolumeTape2(phase, d));
    eta2Mul_.push_back(buildEta2MulTape(phase, d));

    std::vector<double> dm(static_cast<std::size_t>(np_)), dp(static_cast<std::size_t>(np_));
    const FaceMap& fm = ks_->faceMap[static_cast<std::size_t>(d)];
    std::vector<int> slice(static_cast<std::size_t>(fm.numFaceModes) * (p + 1), -1);
    for (int l = 0; l < np_; ++l) {
      const int a = phase.mode(l)[d];
      dm[static_cast<std::size_t>(l)] = legendrePsiDeriv(a, -1.0);
      dp[static_cast<std::size_t>(l)] = legendrePsiDeriv(a, +1.0);
      slice[static_cast<std::size_t>(fm.entries[static_cast<std::size_t>(l)].face) *
                static_cast<std::size_t>(p + 1) +
            static_cast<std::size_t>(a)] = l;
    }
    derivMinus_.push_back(std::move(dm));
    derivPlus_.push_back(std::move(dp));
    sliceMode_.push_back(std::move(slice));
  }

  // --- recovery functionals of the two-cell patch (shared with the Poisson
  // solver's interface traces; see tensors/dg_tensors.hpp).
  rec_ = buildRecoveryWeights(p);

  // --- scalar (conf-mode-0) moment tapes for the conservation correction.
  sm1_.resize(static_cast<std::size_t>(vdim_));
  sm2_.resize(static_cast<std::size_t>(vdim_));
  for (int l = 0; l < np_; ++l) {
    const MultiIndex& a = phase.mode(l);
    bool confFlat = true;
    for (int d = 0; d < cdim_; ++d)
      if (a[d] != 0) confFlat = false;
    if (!confFlat) continue;
    const auto weight = [&](int jmom, int power) {
      double w = 1.0;
      for (int j = 0; j < vdim_; ++j) w *= tab.xmom(a[cdim_ + j], j == jmom ? power : 0);
      return w;
    };
    const double w0 = weight(-1, 0);
    if (std::abs(w0) > 1e-14) sm0_.terms.push_back({l, w0});
    for (int j = 0; j < vdim_; ++j) {
      const double w1 = weight(j, 1);
      if (std::abs(w1) > 1e-14) sm1_[static_cast<std::size_t>(j)].terms.push_back({l, w1});
      const double w2 = weight(j, 2);
      if (std::abs(w2) > 1e-14) sm2_[static_cast<std::size_t>(j)].terms.push_back({l, w2});
    }
  }

  confSup_ = basisSupBounds(*ks_->conf);
  jacV_ = 1.0;
  for (int j = 0; j < vdim_; ++j) jacV_ *= 0.5 * grid_.dx(cdim_ + j);
}

void LboUpdater::primitiveMoments(const Field& f, Field& u, Field& vtSq) const {
  const Grid cg = mom_->confGrid();
  Field m0(cg, npc_), m1(cg, 3 * npc_), m2(cg, npc_);
  mom_->compute(f, &m0, &m1, &m2);
  prim_->compute(m0, m1, m2, u, vtSq);
}

void LboUpdater::temperature(const Field& f, Field& T) const {
  const Grid cg = mom_->confGrid();
  Field u(cg, vdim_ * npc_);
  primitiveMoments(f, u, T);
  T.scale(params_.mass);
}

double LboUpdater::advance(const Field& f, Field& rhs) const {
  const Grid cg = mom_->confGrid();
  Field u(cg, vdim_ * npc_), vtSq(cg, npc_);
  primitiveMoments(f, u, vtSq);
  return apply(f, u, vtSq, rhs, true, true, params_.momentFix, params_.collisionFreq);
}

void LboUpdater::dragTerm(const Field& f, const Field& u, Field& rhs) const {
  apply(f, u, u, rhs, true, false, false, 1.0);
}

void LboUpdater::diffusionTerm(const Field& f, const Field& vtSq, Field& rhs) const {
  apply(f, vtSq, vtSq, rhs, false, true, false, 1.0);
}

double LboUpdater::apply(const Field& f, const Field& u, const Field& vtSq, Field& rhs,
                         bool drag, bool diff, bool correct, double scale) const {
  const VlasovKernelSet& ks = *ks_;
  const int np = np_;
  const int p1 = polyOrder_ + 1;
  assert(f.ncomp() == np && rhs.ncomp() == np);

  int confHi[kMaxDim], velHi[kMaxDim];
  for (int d = 0; d < cdim_; ++d) confHi[d] = grid_.cells[static_cast<std::size_t>(d)];
  for (int j = 0; j < vdim_; ++j) velHi[j] = grid_.cells[static_cast<std::size_t>(cdim_ + j)];
  const std::size_t nvel = boxSize(vdim_, velHi);
  std::array<std::size_t, kMaxDim> vstride{};
  vstride[0] = 1;
  for (int j = 1; j < vdim_; ++j)
    vstride[static_cast<std::size_t>(j)] =
        vstride[static_cast<std::size_t>(j - 1)] * static_cast<std::size_t>(velHi[j - 1]);
  std::array<double, kMaxDim> dxv{}, rdx2{};
  for (int j = 0; j < vdim_; ++j) {
    dxv[static_cast<std::size_t>(j)] = grid_.dx(cdim_ + j);
    rdx2[static_cast<std::size_t>(j)] = 2.0 / dxv[static_cast<std::size_t>(j)];
  }
  int nfMax = 0;
  for (int j = 0; j < vdim_; ++j)
    nfMax = std::max(nfMax, ks.faceMap[static_cast<std::size_t>(cdim_ + j)].numFaceModes);
  const int ns = 2 + vdim_;  // conservation-correction system size

  double maxFreq = 0.0;
  std::mutex freqMutex;

  chunkedFor(exec_, boxSize(cdim_, confHi), [&](std::size_t begin, std::size_t end) {
    // Per-chunk scratch: the increment of one configuration cell's whole
    // velocity box, the per-cell drag expansion, and face workspaces.
    std::vector<double> inc(nvel * static_cast<std::size_t>(np));
    std::vector<double> alphaBuf(drag ? nvel * static_cast<std::size_t>(vdim_ * np) : 0);
    std::vector<double> uPhase(static_cast<std::size_t>(vdim_ * np)),
        dPhase(static_cast<std::size_t>(np));
    std::vector<double> dFace(static_cast<std::size_t>(vdim_ * nfMax));
    const auto nfm = static_cast<std::size_t>(nfMax);
    std::vector<double> fLf(nfm), fRf(nfm), aLf(nfm), aRf(nfm), fhat(nfm), rv(nfm), rd(nfm),
        prod(nfm);
    // Correction weight fields {etaMul_j f, P(|v|^2 f)} per velocity cell,
    // built once while assembling the moment system and reused when the
    // solved correction is applied (layout per cell: vdim em slices, then
    // g2). e2 is a transient eta^2-product slot.
    std::vector<double> wBuf(correct ? nvel * static_cast<std::size_t>((vdim_ + 1) * np) : 0);
    std::vector<double> e2(static_cast<std::size_t>(np));
    // SIMD-batched volume-loop scratch: AoSoA blocks of B velocity cells
    // run through the batched tape executors of dg/batch.hpp. Bitwise
    // identical to the scalar loop per cell (see batch.hpp); leftover
    // cells when nvel % B != 0 take the scalar path. A velocity box that
    // cannot fill one block runs fully scalar (no block setup).
    const int B = activeBatchLanes();
    const bool batched = B > 1 && nvel >= static_cast<std::size_t>(B);
    BatchBuffer fBlk, incBlk, ajBlk;
    if (batched) {
      fBlk.resize(static_cast<std::size_t>(np) * B);
      incBlk.resize(static_cast<std::size_t>(np) * B);
      if (drag) ajBlk.resize(static_cast<std::size_t>(np) * B);
    }
    std::array<MultiIndex, kMaxLanes> laneIdx;
    std::array<std::size_t, kMaxLanes> laneLin{};
    std::array<const double*, kMaxLanes> lanePtr{};
    std::array<double*, kMaxLanes> laneOut{};
    double chunkFreq = 0.0;

    forEachIndexInRange(cdim_, confHi, begin, end, [&](const MultiIndex& ci) {
      std::fill(inc.begin(), inc.end(), 0.0);
      double freq = 0.0;
      double vtMax = 0.0;

      // Embed the configuration-space u and vth^2 expansions into the
      // phase basis (shared by every velocity cell of this conf cell).
      if (drag) {
        std::fill(uPhase.begin(), uPhase.end(), 0.0);
        const double* uc = u.at(ci);
        for (int j = 0; j < vdim_; ++j)
          for (int k = 0; k < npc_; ++k)
            uPhase[static_cast<std::size_t>(j) * np +
                   static_cast<std::size_t>(ks.embedIdx[static_cast<std::size_t>(k)])] =
                ks.embedFac * uc[j * npc_ + k];
      }
      if (diff) {
        std::fill(dPhase.begin(), dPhase.end(), 0.0);
        const double* dc = vtSq.at(ci);
        for (int k = 0; k < npc_; ++k) {
          dPhase[static_cast<std::size_t>(ks.embedIdx[static_cast<std::size_t>(k)])] =
              ks.embedFac * dc[k];
          vtMax += std::abs(dc[k]) * confSup_[static_cast<std::size_t>(k)];
        }
        // Face restriction of the (velocity-independent) coefficient is
        // the same on both sides of every velocity face of this cell.
        for (int j = 0; j < vdim_; ++j) {
          const FaceMap& fm = ks.faceMap[static_cast<std::size_t>(cdim_ + j)];
          fm.restrictTo(dPhase,
                        {dFace.data() + static_cast<std::size_t>(j) * nfm,
                         static_cast<std::size_t>(fm.numFaceModes)},
                        +1);
        }
        for (int j = 0; j < vdim_; ++j)
          freq += vtMax * (2.0 * polyOrder_ + 1.0) /
                  (dxv[static_cast<std::size_t>(j)] * dxv[static_cast<std::size_t>(j)]);
      }

      // ------------------------------------------------------- volume
      double dragFreq = 0.0;  // max over velocity cells of sum_j |alpha|/dv_j

      // Per-lane drag expansion build (shared by both paths): fills the
      // cell's alphaBuf slot — the surface sweep reads it later — and
      // returns the cell's CFL frequency contribution.
      const auto buildDragAlpha = [&](const MultiIndex& idx, std::size_t vlin) {
        double* al = alphaBuf.data() + vlin * static_cast<std::size_t>(vdim_ * np);
        double cellFreq = 0.0;
        for (int j = 0; j < vdim_; ++j) {
          const int d = cdim_ + j;
          const double wc = grid_.cellCenter(d, idx[d]);
          const double hdv = 0.5 * dxv[static_cast<std::size_t>(j)];
          double* aj = al + static_cast<std::size_t>(j) * np;
          const double* uj = uPhase.data() + static_cast<std::size_t>(j) * np;
          for (int l = 0; l < np; ++l) aj[l] = uj[l];
          for (const auto& [l, c] : ks.unitProj) aj[l] -= wc * c;
          for (const auto& [l, c] : ks.etaProj[static_cast<std::size_t>(d)]) aj[l] -= hdv * c;
          double amax = 0.0;
          for (int l = 0; l < np; ++l)
            amax += std::abs(aj[l]) * ks.phaseSup[static_cast<std::size_t>(l)];
          cellFreq += amax / dxv[static_cast<std::size_t>(j)];
        }
        return cellFreq;
      };

      // Scalar volume update of one velocity cell (the pre-batching code
      // path, verbatim; also the remainder path below).
      const auto scalarVolCell = [&](const MultiIndex& idx, std::size_t vlin) {
        const std::span<const double> fc = f.cell(idx);
        const std::span<double> ic(inc.data() + vlin * static_cast<std::size_t>(np),
                                   static_cast<std::size_t>(np));
        if (drag) {
          double* al = alphaBuf.data() + vlin * static_cast<std::size_t>(vdim_ * np);
          dragFreq = std::max(dragFreq, buildDragAlpha(idx, vlin));
          for (int j = 0; j < vdim_; ++j) {
            const int d = cdim_ + j;
            const std::span<const double> ajs(al + static_cast<std::size_t>(j) * np,
                                              static_cast<std::size_t>(np));
            ks.volume[static_cast<std::size_t>(d)].execute(ajs, fc, ic,
                                                           rdx2[static_cast<std::size_t>(j)]);
          }
        }
        if (diff) {
          for (int j = 0; j < vdim_; ++j)
            diffVol_[static_cast<std::size_t>(j)].execute(
                dPhase, fc, ic,
                rdx2[static_cast<std::size_t>(j)] * rdx2[static_cast<std::size_t>(j)]);
        }
      };

      // Batched volume update of B velocity cells (laneIdx/laneLin[0..B)):
      // same tape terms in the same per-lane order, run as AoSoA lane loops.
      const auto batchVolBlock = [&]() {
        for (int b = 0; b < B; ++b)
          lanePtr[static_cast<std::size_t>(b)] = f.at(laneIdx[static_cast<std::size_t>(b)]);
        packLanes(B, np, lanePtr.data(), fBlk.data());
        zeroLanes(B, np, incBlk.data());
        if (drag) {
          for (int b = 0; b < B; ++b)
            dragFreq = std::max(dragFreq, buildDragAlpha(laneIdx[static_cast<std::size_t>(b)],
                                                         laneLin[static_cast<std::size_t>(b)]));
          for (int j = 0; j < vdim_; ++j) {
            for (int b = 0; b < B; ++b)
              lanePtr[static_cast<std::size_t>(b)] =
                  alphaBuf.data() +
                  laneLin[static_cast<std::size_t>(b)] * static_cast<std::size_t>(vdim_ * np) +
                  static_cast<std::size_t>(j) * np;
            packLanes(B, np, lanePtr.data(), ajBlk.data());
            executeBatched(ks.volume[static_cast<std::size_t>(cdim_ + j)], B, ajBlk.data(),
                           fBlk.data(), incBlk.data(), rdx2[static_cast<std::size_t>(j)]);
          }
        }
        if (diff) {
          for (int j = 0; j < vdim_; ++j)
            executeBatchedSharedA(diffVol_[static_cast<std::size_t>(j)], B, dPhase.data(),
                                  fBlk.data(), incBlk.data(),
                                  rdx2[static_cast<std::size_t>(j)] *
                                      rdx2[static_cast<std::size_t>(j)]);
        }
        // Volume is the first contribution to each inc slot (inc was just
        // zero-filled), so the block scatter overwrites.
        for (int b = 0; b < B; ++b)
          laneOut[static_cast<std::size_t>(b)] =
              inc.data() + laneLin[static_cast<std::size_t>(b)] * static_cast<std::size_t>(np);
        scatterLanes(B, np, incBlk.data(), laneOut.data());
      };

      std::size_t vlin = 0;
      if (batched) {
        int lane = 0;
        forEachIdx(vdim_, velHi, [&](const MultiIndex& vi) {
          MultiIndex idx = ci;
          for (int j = 0; j < vdim_; ++j) idx[cdim_ + j] = vi[j];
          laneIdx[static_cast<std::size_t>(lane)] = idx;
          laneLin[static_cast<std::size_t>(lane)] = vlin;
          ++lane;
          ++vlin;
          if (lane == B) {
            batchVolBlock();
            lane = 0;
          }
        });
        for (int b = 0; b < lane; ++b)
          scalarVolCell(laneIdx[static_cast<std::size_t>(b)], laneLin[static_cast<std::size_t>(b)]);
      } else {
        forEachIdx(vdim_, velHi, [&](const MultiIndex& vi) {
          MultiIndex idx = ci;
          for (int j = 0; j < vdim_; ++j) idx[cdim_ + j] = vi[j];
          scalarVolCell(idx, vlin);
          ++vlin;
        });
      }
      freq += dragFreq;

      // ------------------------------------------------------ surface
      for (int j = 0; j < vdim_; ++j) {
        const int d = cdim_ + j;
        const FaceMap& fm = ks.faceMap[static_cast<std::size_t>(d)];
        const int nf = fm.numFaceModes;
        const double r2 = rdx2[static_cast<std::size_t>(j)];
        const double s2 = r2 * r2;
        const double* dF = dFace.data() + static_cast<std::size_t>(j) * nfm;
        const std::span<const double> dFs(dF, static_cast<std::size_t>(nf));
        const std::vector<double>& dMin = derivMinus_[static_cast<std::size_t>(j)];
        const std::vector<double>& dPlu = derivPlus_[static_cast<std::size_t>(j)];
        const std::vector<int>& slice = sliceMode_[static_cast<std::size_t>(j)];

        int tHi[kMaxDim];
        int nt = 0;
        for (int jj = 0; jj < vdim_; ++jj)
          if (jj != j) tHi[nt++] = velHi[jj];

        forEachIdx(nt, tHi, [&](const MultiIndex& ti) {
          MultiIndex vi;
          int jt = 0;
          for (int jj = 0; jj < vdim_; ++jj)
            if (jj != j) vi[jj] = ti[jt++];

          const auto cellAt = [&](int i) {
            MultiIndex v = vi;
            v[j] = i;
            std::size_t lin = 0;
            for (int jj = 0; jj < vdim_; ++jj)
              lin += static_cast<std::size_t>(v[jj]) * vstride[static_cast<std::size_t>(jj)];
            MultiIndex idx = ci;
            for (int jj = 0; jj < vdim_; ++jj) idx[cdim_ + jj] = v[jj];
            return std::pair<std::size_t, MultiIndex>{lin, idx};
          };

          // Interior faces: zero-flux closure skips the domain boundaries.
          for (int i = 1; i < velHi[j]; ++i) {
            const auto [linL, idxL] = cellAt(i - 1);
            const auto [linR, idxR] = cellAt(i);
            const double* fLc = f.at(idxL);
            const double* fRc = f.at(idxR);
            const std::span<double> incL(inc.data() + linL * static_cast<std::size_t>(np),
                                         static_cast<std::size_t>(np));
            const std::span<double> incR(inc.data() + linR * static_cast<std::size_t>(np),
                                         static_cast<std::size_t>(np));

            if (drag) {
              const std::span<const double> fLs(fLc, static_cast<std::size_t>(np));
              const std::span<const double> fRs(fRc, static_cast<std::size_t>(np));
              fm.restrictTo(fLs, fLf, +1);
              fm.restrictTo(fRs, fRf, -1);
              const double* aL =
                  alphaBuf.data() + linL * static_cast<std::size_t>(vdim_ * np) +
                  static_cast<std::size_t>(j) * np;
              const double* aR =
                  alphaBuf.data() + linR * static_cast<std::size_t>(vdim_ * np) +
                  static_cast<std::size_t>(j) * np;
              fm.restrictTo({aL, static_cast<std::size_t>(np)}, aLf, +1);
              fm.restrictTo({aR, static_cast<std::size_t>(np)}, aRf, -1);
              for (int k = 0; k < nf; ++k) fhat[static_cast<std::size_t>(k)] = 0.0;
              ks.faceProduct[static_cast<std::size_t>(d)].execute(aLf, fLf, fhat, 0.5);
              ks.faceProduct[static_cast<std::size_t>(d)].execute(aRf, fRf, fhat, 0.5);
              const std::vector<double>& sup = ks.faceSup[static_cast<std::size_t>(d)];
              double bL = 0.0, bR = 0.0;
              for (int k = 0; k < nf; ++k) {
                bL += std::abs(aLf[static_cast<std::size_t>(k)]) *
                      sup[static_cast<std::size_t>(k)];
                bR += std::abs(aRf[static_cast<std::size_t>(k)]) *
                      sup[static_cast<std::size_t>(k)];
              }
              const double tau = std::max(bL, bR);
              for (int k = 0; k < nf; ++k)
                fhat[static_cast<std::size_t>(k)] -=
                    0.5 * tau *
                    (fRf[static_cast<std::size_t>(k)] - fLf[static_cast<std::size_t>(k)]);
              fm.lift(fhat, incL, +1, -r2);
              fm.lift(fhat, incR, -1, +r2);
            }

            if (diff) {
              // Recovery value / slope per transverse face mode.
              for (int k = 0; k < nf; ++k) {
                double v = 0.0, dv = 0.0;
                const int* sl = slice.data() + static_cast<std::size_t>(k) * p1;
                for (int m = 0; m < p1; ++m) {
                  const int lL = sl[m];
                  if (lL >= 0) {
                    v += rec_.valL[static_cast<std::size_t>(m)] * fLc[lL];
                    dv += rec_.derivL[static_cast<std::size_t>(m)] * fLc[lL];
                    v += rec_.valR[static_cast<std::size_t>(m)] * fRc[lL];
                    dv += rec_.derivR[static_cast<std::size_t>(m)] * fRc[lL];
                  }
                }
                rv[static_cast<std::size_t>(k)] = v;
                rd[static_cast<std::size_t>(k)] = dv;
              }
              // Flux term [w D df/deta] with df/deta = r'(0)/2.
              for (int k = 0; k < nf; ++k) prod[static_cast<std::size_t>(k)] = 0.0;
              ks.faceProduct[static_cast<std::size_t>(d)].execute(dFs, rd, prod, 1.0);
              fm.lift(prod, incL, +1, +0.5 * s2);
              fm.lift(prod, incR, -1, -0.5 * s2);
              // Value term -[dw/deta D fhat].
              for (int k = 0; k < nf; ++k) prod[static_cast<std::size_t>(k)] = 0.0;
              ks.faceProduct[static_cast<std::size_t>(d)].execute(dFs, rv, prod, 1.0);
              for (const FaceMap::Entry& e : fm.entries) {
                incL[static_cast<std::size_t>(e.vol)] -=
                    s2 * dPlu[static_cast<std::size_t>(e.vol)] *
                    prod[static_cast<std::size_t>(e.face)];
                incR[static_cast<std::size_t>(e.vol)] +=
                    s2 * dMin[static_cast<std::size_t>(e.vol)] *
                    prod[static_cast<std::size_t>(e.face)];
              }
            }
          }

          if (diff) {
            // Zero-flux domain boundaries: the flux term is dropped; the
            // value term uses the one-sided trace of the skin cell.
            const auto [lin0, idx0] = cellAt(0);
            fm.restrictTo(f.cell(idx0), fLf, -1);
            for (int k = 0; k < nf; ++k) prod[static_cast<std::size_t>(k)] = 0.0;
            ks.faceProduct[static_cast<std::size_t>(d)].execute(dFs, fLf, prod, 1.0);
            const std::span<double> inc0(inc.data() + lin0 * static_cast<std::size_t>(np),
                                         static_cast<std::size_t>(np));
            for (const FaceMap::Entry& e : fm.entries)
              inc0[static_cast<std::size_t>(e.vol)] +=
                  s2 * dMin[static_cast<std::size_t>(e.vol)] *
                  prod[static_cast<std::size_t>(e.face)];

            const auto [linN, idxN] = cellAt(velHi[j] - 1);
            fm.restrictTo(f.cell(idxN), fRf, +1);
            for (int k = 0; k < nf; ++k) prod[static_cast<std::size_t>(k)] = 0.0;
            ks.faceProduct[static_cast<std::size_t>(d)].execute(dFs, fRf, prod, 1.0);
            const std::span<double> incN(inc.data() + linN * static_cast<std::size_t>(np),
                                         static_cast<std::size_t>(np));
            for (const FaceMap::Entry& e : fm.entries)
              incN[static_cast<std::size_t>(e.vol)] -=
                  s2 * dPlu[static_cast<std::size_t>(e.vol)] *
                  prod[static_cast<std::size_t>(e.face)];
          }
        });
      }

      // --------------------------------------------------- correction
      // Solve the (2+vdim) moment system so the increment's density,
      // momentum and energy integrals over this conf cell vanish exactly,
      // subtracting a combination of the exactly-projected weight fields
      // {f, P(v_j f), P(|v|^2 f)}.
      if (correct) {
        const auto momentsOf = [&](const double* g, const double* wc, const double* hdv,
                                   double* out) {
          double s0 = 0.0;
          for (const ScalarTape::Term& t : sm0_.terms) s0 += t.c * g[t.l];
          out[0] += jacV_ * s0;
          double sE = 0.0;
          for (int jj = 0; jj < vdim_; ++jj) {
            double s1 = 0.0;
            for (const ScalarTape::Term& t : sm1_[static_cast<std::size_t>(jj)].terms)
              s1 += t.c * g[t.l];
            double sq = 0.0;
            for (const ScalarTape::Term& t : sm2_[static_cast<std::size_t>(jj)].terms)
              sq += t.c * g[t.l];
            out[1 + jj] += jacV_ * (wc[jj] * s0 + hdv[jj] * s1);
            sE += wc[jj] * wc[jj] * s0 + 2.0 * wc[jj] * hdv[jj] * s1 + hdv[jj] * hdv[jj] * sq;
          }
          out[1 + vdim_] += jacV_ * sE;
        };
        DenseMatrix A(ns, ns);
        std::array<double, 5> delta{};
        std::size_t lin = 0;
        forEachIdx(vdim_, velHi, [&](const MultiIndex& vi) {
          MultiIndex idx = ci;
          double wc[kMaxDim], hdv[kMaxDim];
          for (int jj = 0; jj < vdim_; ++jj) {
            idx[cdim_ + jj] = vi[jj];
            wc[jj] = grid_.cellCenter(cdim_ + jj, vi[jj]);
            hdv[jj] = 0.5 * dxv[static_cast<std::size_t>(jj)];
          }
          const double* fc = f.at(idx);
          const std::span<const double> fs(fc, static_cast<std::size_t>(np));
          // Cache the weight fields {etaMul_j f, P(|v|^2 f)} of this cell
          // via the exact eta / eta^2 multiplication tapes (g0 = f itself;
          // g1_j = wc_j f + hdv_j em_j is assembled on the fly below).
          double* em = wBuf.data() + lin * static_cast<std::size_t>((vdim_ + 1) * np);
          double* g2 = em + static_cast<std::size_t>(vdim_) * np;
          for (int l = 0; l < np; ++l) g2[l] = 0.0;
          for (int jj = 0; jj < vdim_; ++jj) {
            const std::span<double> emj(em + static_cast<std::size_t>(jj) * np,
                                        static_cast<std::size_t>(np));
            ks.etaMul[static_cast<std::size_t>(jj)].executeSet(fs, emj, 1.0);
            for (double& x : e2) x = 0.0;
            eta2Mul_[static_cast<std::size_t>(jj)].execute(fs, e2, 1.0);
            for (int l = 0; l < np; ++l)
              g2[l] += wc[jj] * wc[jj] * fc[l] + 2.0 * wc[jj] * hdv[jj] * emj[static_cast<std::size_t>(l)] +
                       hdv[jj] * hdv[jj] * e2[static_cast<std::size_t>(l)];
          }

          std::array<double, 5> mf{}, mg2{};
          momentsOf(fc, wc, hdv, mf.data());
          momentsOf(g2, wc, hdv, mg2.data());
          for (int m = 0; m < ns; ++m) {
            A(m, 0) += mf[static_cast<std::size_t>(m)];
            A(m, 1 + vdim_) += mg2[static_cast<std::size_t>(m)];
          }
          // Moments are linear: mu(g1_j) = wc_j mu(f) + hdv_j mu(etaMul_j f).
          for (int jj = 0; jj < vdim_; ++jj) {
            std::array<double, 5> me{};
            momentsOf(em + static_cast<std::size_t>(jj) * np, wc, hdv, me.data());
            for (int m = 0; m < ns; ++m)
              A(m, 1 + jj) += wc[jj] * mf[static_cast<std::size_t>(m)] +
                              hdv[jj] * me[static_cast<std::size_t>(m)];
          }
          momentsOf(inc.data() + lin * static_cast<std::size_t>(np), wc, hdv, delta.data());
          ++lin;
        });

        const LuSolver lu(std::move(A));
        if (!lu.singular()) {
          lu.solve(std::span<double>(delta.data(), static_cast<std::size_t>(ns)));
          lin = 0;
          forEachIdx(vdim_, velHi, [&](const MultiIndex& vi) {
            MultiIndex idx = ci;
            double wc[kMaxDim], hdv[kMaxDim];
            for (int jj = 0; jj < vdim_; ++jj) {
              idx[cdim_ + jj] = vi[jj];
              wc[jj] = grid_.cellCenter(cdim_ + jj, vi[jj]);
              hdv[jj] = 0.5 * dxv[static_cast<std::size_t>(jj)];
            }
            const double* fc = f.at(idx);
            const double* em = wBuf.data() + lin * static_cast<std::size_t>((vdim_ + 1) * np);
            const double* g2 = em + static_cast<std::size_t>(vdim_) * np;
            double* ic = inc.data() + lin * static_cast<std::size_t>(np);
            for (int l = 0; l < np; ++l) {
              double corr = delta[0] * fc[l];
              for (int jj = 0; jj < vdim_; ++jj)
                corr += delta[static_cast<std::size_t>(1 + jj)] *
                        (wc[jj] * fc[l] + hdv[jj] * em[static_cast<std::size_t>(jj) * np + l]);
              corr += delta[static_cast<std::size_t>(1 + vdim_)] * g2[l];
              ic[l] -= corr;
            }
            ++lin;
          });
        }
      }

      // ------------------------------------------------- accumulate
      std::size_t alin = 0;
      forEachIdx(vdim_, velHi, [&](const MultiIndex& vi) {
        MultiIndex idx = ci;
        for (int jj = 0; jj < vdim_; ++jj) idx[cdim_ + jj] = vi[jj];
        double* rc = rhs.at(idx);
        const double* ic = inc.data() + alin * static_cast<std::size_t>(np);
        for (int l = 0; l < np; ++l) rc[l] += scale * ic[l];
        ++alin;
      });
      chunkFreq = std::max(chunkFreq, freq);
    });

    std::scoped_lock lock(freqMutex);
    maxFreq = std::max(maxFreq, chunkFreq);
  });

  return scale * maxFreq;
}

}  // namespace vdg
