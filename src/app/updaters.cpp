#include "app/updaters.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "par/communicator.hpp"
#include "par/thread_exec.hpp"

namespace vdg {

std::string BoundarySyncUpdater::name() const {
  if (!bcs_ || !bcs_->anyPhysical()) return "boundary:periodic";
  std::string s = "boundary:";
  bool firstDim = true;
  for (int d = 0; d < cdim_; ++d) {
    if (periodic_[static_cast<std::size_t>(d)]) continue;
    if (!firstDim) s += ";";
    firstDim = false;
    s += "d" + std::to_string(d) + "[";
    for (int i = 0; i < bcs_->numSlots(); ++i) {
      if (i) s += ",";
      const BoundaryCondition* lo = bcs_->get(i, d, -1);
      const BoundaryCondition* hi = bcs_->get(i, d, +1);
      const std::string slot = i < static_cast<int>(slotNames_.size())
                                   ? slotNames_[static_cast<std::size_t>(i)]
                                   : std::to_string(i);
      s += slot + ":" + (lo ? lo->name() : "periodic") + "|" + (hi ? hi->name() : "periodic");
    }
    s += "]";
  }
  return s;
}

Communicator* BoundarySyncUpdater::resolveComm() const {
  // A null comm (direct construction in tests) means single-rank: one
  // ghost code path, no duplicated wrap logic.
  return comm_ ? comm_ : &SerialComm::instance();
}

void BoundarySyncUpdater::syncAndFillDim(Communicator* comm, int slotIdx, Field& f, int d) {
  const bool periodic = periodic_[static_cast<std::size_t>(d)];
  // Decomposed/periodic exchange first (a collective — every rank
  // enters in the same slot/dim order), then the rank-local physical
  // fill of any domain edge this rank's window owns, so the ghost
  // state dimension d hands to dimension d+1 matches the serial
  // fill order exactly.
  comm->syncConfGhostsDim(f, d, periodic);
  if (periodic) return;
  for (const int side : {-1, +1}) {
    if (!ownsDomainEdge(f.grid(), d, side)) continue;
    if (const BoundaryCondition* bc = bcs_ ? bcs_->get(slotIdx, d, side) : nullptr)
      bc->apply(f, d, side);
  }
}

double BoundarySyncUpdater::apply(double /*t*/, const StateView& in, StateView& /*out*/) {
  Communicator* comm = resolveComm();
  for (int i = 0; i < in.numSlots(); ++i) {
    Field& f = in.slot(i);
    for (int d = 0; d < cdim_; ++d) syncAndFillDim(comm, i, f, d);
  }
  return 0.0;
}

void BoundarySyncUpdater::beginApply(const StateView& in) {
  Communicator* comm = resolveComm();
  // Post every slot's dimension-0 sends first. Their packed slabs read
  // interior cells only (spanning the still-stale transverse ghosts, same
  // bytes the blocking path would pack), so the sends can be in flight
  // while the volume terms compute.
  for (int i = 0; i < in.numSlots(); ++i)
    comm->beginSyncConfGhostsDim(in.slot(i), 0, periodic_[0]);
  if (!poisonGhosts_) return;
  // Flood the configuration-ghost slabs with NaN *after* the packs: every
  // poisoned cell is provably rewritten by the sync/fill sequence (a cell
  // ghost in conf dims S is in the max(S) slab, whose repair sources are
  // ghost only in earlier conf dims — already repaired — or in velocity
  // dims, never poisoned), so any surviving NaN convicts an early read.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < in.numSlots(); ++i) {
    Field& f = in.slot(i);
    for (int d = 0; d < cdim_; ++d)
      for (const int side : {-1, +1})
        f.forEachBoundaryGhost(d, side, [&](const MultiIndex& idx) {
          double* c = f.at(idx);
          for (int l = 0; l < f.ncomp(); ++l) c[l] = nan;
        });
  }
}

void BoundarySyncUpdater::finishApply(const StateView& in) {
  Communicator* comm = resolveComm();
  // Complete dimension 0 (wait+unpack, then the physical fill of owned
  // edges), then run dimensions 1..cdim-1 blocking — each dimension's pack
  // must see the previous one's repaired ghosts, exactly the serial corner
  // semantics. Slot-major per dimension matches the begin order on every
  // rank, so the per-channel FIFOs pair begins and ends correctly.
  for (int i = 0; i < in.numSlots(); ++i) {
    Field& f = in.slot(i);
    comm->endSyncConfGhostsDim(f, 0, periodic_[0]);
    if (!periodic_[0]) {
      for (const int side : {-1, +1}) {
        if (!ownsDomainEdge(f.grid(), 0, side)) continue;
        if (const BoundaryCondition* bc = bcs_ ? bcs_->get(i, 0, side) : nullptr)
          bc->apply(f, 0, side);
      }
    }
  }
  for (int i = 0; i < in.numSlots(); ++i) {
    Field& f = in.slot(i);
    for (int d = 1; d < cdim_; ++d) syncAndFillDim(comm, i, f, d);
  }
}

double VlasovRhsUpdater::apply(double /*t*/, const StateView& in, StateView& out) {
  const Field* em = useEm_ ? &in.slot(emSlot_) : nullptr;
  return vlasov_->advance(in.slot(slot_), em, out.slot(slot_));
}

double VlasovRhsUpdater::applyVolume(const StateView& in, StateView& out) {
  const Field* em = useEm_ ? &in.slot(emSlot_) : nullptr;
  return vlasov_->advanceVolume(in.slot(slot_), em, out.slot(slot_), alphaScratch_);
}

void VlasovRhsUpdater::applySurface(const StateView& in, StateView& out) {
  const Field* em = useEm_ ? &in.slot(emSlot_) : nullptr;
  vlasov_->advanceSurface(in.slot(slot_), em, out.slot(slot_), alphaScratch_);
}

double MaxwellRhsUpdater::apply(double /*t*/, const StateView& in, StateView& out) {
  return maxwell_->advance(in.slot(emSlot_), out.slot(emSlot_));
}

double FixedEmUpdater::apply(double /*t*/, const StateView& /*in*/, StateView& out) {
  out.slot(emSlot_).setZero();
  return 0.0;
}

CurrentCouplingUpdater::CurrentCouplingUpdater(const Grid& confGrid,
                                               const MaxwellUpdater* maxwell,
                                               std::vector<SpeciesTap> taps, int emSlot,
                                               double backgroundCharge)
    : confGrid_(confGrid), maxwell_(maxwell), taps_(std::move(taps)), emSlot_(emSlot),
      backgroundCharge_(backgroundCharge) {
  const int npc = maxwell_->numModes();
  current_ = Field(confGrid_, 3 * npc);
  chargeDens_ = Field(confGrid_, npc);
  m0scratch_ = Field(confGrid_, npc);
}

double CurrentCouplingUpdater::apply(double /*t*/, const StateView& in, StateView& out) {
  current_.setZero();
  chargeDens_.setZero();
  for (const SpeciesTap& tap : taps_) {
    const Field& f = in.slot(tap.slot);
    tap.moments->accumulateCurrent(f, tap.charge, current_);
    tap.moments->compute(f, &m0scratch_, nullptr, nullptr);
    const double q = tap.charge;
    forEachCell(confGrid_, [&](const MultiIndex& idx) {
      const double* src = m0scratch_.at(idx);
      double* dst = chargeDens_.at(idx);
      for (int c = 0; c < m0scratch_.ncomp(); ++c) dst[c] += q * src[c];
    });
  }
  Field& emRhs = out.slot(emSlot_);
  maxwell_->addCurrentSource(current_, emRhs);
  // Divergence-cleaning source: d(phi)/dt += chi * rho / eps0, including
  // any uniform immobile background charge.
  const int npc = maxwell_->numModes();
  const double s = maxwell_->params().chi / maxwell_->params().epsilon0;
  const double bg = backgroundCharge_ * std::pow(2.0, 0.5 * confGrid_.ndim);
  forEachCell(confGrid_, [&](const MultiIndex& idx) {
    const double* rho = chargeDens_.at(idx);
    double* r = emRhs.at(idx);
    r[6 * npc] += s * bg;
    for (int l = 0; l < npc; ++l) r[6 * npc + l] += s * rho[l];
  });
  return 0.0;
}

PoissonFieldUpdater::PoissonFieldUpdater(const Grid& confGrid, const PoissonSolver* solver,
                                         std::vector<SpeciesTap> taps, int emSlot,
                                         double backgroundCharge, Communicator* comm,
                                         ThreadExec* exec)
    : confGrid_(confGrid), solver_(solver), taps_(std::move(taps)), emSlot_(emSlot),
      backgroundCharge_(backgroundCharge), comm_(comm), exec_(exec),
      m0scratch_(confGrid, solver->numModes()), rho_(solver->numUnknowns(), 0.0),
      phi_(solver->numUnknowns(), 0.0) {}

double PoissonFieldUpdater::apply(double /*t*/, const StateView& in, StateView& /*out*/) {
  const int np = solver_->numModes();
  const auto nps = static_cast<std::size_t>(np);

  // Rank-local cell -> global flat index: the local window offset is baked
  // into the grid (zero for a non-distributed run).
  const auto globalFlat = [&](const MultiIndex& idx) {
    MultiIndex gidx = idx;
    for (int d = 0; d < confGrid_.ndim; ++d)
      gidx[d] += confGrid_.offset[static_cast<std::size_t>(d)];
    return solver_->flatIndex(gidx);
  };

  // --- charge density: this rank's window of the global vector, zeros
  // elsewhere; the rank-ordered sum then concatenates the windows exactly
  // (0 + x == x bitwise), so distributed assembly == serial assembly.
  std::fill(rho_.begin(), rho_.end(), 0.0);
  for (const SpeciesTap& tap : taps_) {
    tap.moments->compute(in.slot(tap.slot), &m0scratch_, nullptr, nullptr);
    const double q = tap.charge;
    parallelForEachCell(exec_, confGrid_, [&](const MultiIndex& idx) {
      const double* src = m0scratch_.at(idx);
      double* dst = rho_.data() + globalFlat(idx);
      for (int l = 0; l < np; ++l) dst[l] += q * src[l];
    });
  }
  Communicator* comm = comm_ ? comm_ : &SerialComm::instance();
  comm->allReduceSum(rho_);
  // Uniform immobile background (e.g. a static neutralizing ion charge),
  // added post-reduction on every rank identically. The zero-mean gauge
  // makes E independent of any constant charge; carrying it keeps the
  // lastRho() diagnostic physically honest.
  if (backgroundCharge_ != 0.0) {
    const double bg = backgroundCharge_ * std::pow(2.0, 0.5 * confGrid_.ndim);
    for (std::size_t c = 0; c < rho_.size(); c += nps) rho_[c] += bg;
  }

  // The ConjGrad backend routes its residual reductions through this
  // communicator (collective, bitwise rank-count independent); the LU
  // path ignores it.
  solveStats_ = solver_->solve(rho_, phi_, comm);

  // --- writeback: E_d = -d(phi)/dx_d into the local window's E slots for
  // the configuration directions, potential into the phi diagnostic slot.
  // Transverse E components, B and psi stay untouched — frozen at their
  // initial values (zero unless initField set them), the same external-
  // field semantics as the fixed-field path.
  Field& em = in.slot(emSlot_);
  assert(em.ncomp() == kEmComps * np);
  const int cdim = confGrid_.ndim;
  parallelForEachCell(exec_, confGrid_, [&](const MultiIndex& idx) {
    MultiIndex gidx = idx;
    for (int d = 0; d < cdim; ++d) gidx[d] += confGrid_.offset[static_cast<std::size_t>(d)];
    double* u = em.at(idx);
    for (int d = 0; d < cdim; ++d)
      solver_->cellElectricField(phi_, gidx, d,
                                 {u + static_cast<std::size_t>(d) * nps, nps});
    const double* pc = phi_.data() + solver_->flatIndex(gidx);
    for (int l = 0; l < np; ++l) u[6 * np + l] = pc[l];
  });
  return 0.0;
}

double BgkCollisionUpdater::apply(double /*t*/, const StateView& in, StateView& out) {
  return bgk_->advance(in.slot(slot_), out.slot(slot_));
}

double LboCollisionUpdater::apply(double /*t*/, const StateView& in, StateView& out) {
  return lbo_->advance(in.slot(slot_), out.slot(slot_));
}

}  // namespace vdg
