#include "app/updaters.hpp"

#include <cmath>

#include "par/communicator.hpp"

namespace vdg {

double BoundarySyncUpdater::apply(double /*t*/, const StateView& in, StateView& /*out*/) {
  // A null comm (direct construction in tests) means single-rank: one
  // ghost code path, no duplicated wrap logic.
  Communicator* comm = comm_ ? comm_ : &SerialComm::instance();
  for (int i = 0; i < in.numSlots(); ++i) comm->syncConfGhosts(in.slot(i), cdim_);
  return 0.0;
}

double VlasovRhsUpdater::apply(double /*t*/, const StateView& in, StateView& out) {
  const Field* em = useEm_ ? &in.slot(emSlot_) : nullptr;
  return vlasov_->advance(in.slot(slot_), em, out.slot(slot_));
}

double MaxwellRhsUpdater::apply(double /*t*/, const StateView& in, StateView& out) {
  return maxwell_->advance(in.slot(emSlot_), out.slot(emSlot_));
}

double FixedEmUpdater::apply(double /*t*/, const StateView& /*in*/, StateView& out) {
  out.slot(emSlot_).setZero();
  return 0.0;
}

CurrentCouplingUpdater::CurrentCouplingUpdater(const Grid& confGrid,
                                               const MaxwellUpdater* maxwell,
                                               std::vector<SpeciesTap> taps, int emSlot,
                                               double backgroundCharge)
    : confGrid_(confGrid), maxwell_(maxwell), taps_(std::move(taps)), emSlot_(emSlot),
      backgroundCharge_(backgroundCharge) {
  const int npc = maxwell_->numModes();
  current_ = Field(confGrid_, 3 * npc);
  chargeDens_ = Field(confGrid_, npc);
  m0scratch_ = Field(confGrid_, npc);
}

double CurrentCouplingUpdater::apply(double /*t*/, const StateView& in, StateView& out) {
  current_.setZero();
  chargeDens_.setZero();
  for (const SpeciesTap& tap : taps_) {
    const Field& f = in.slot(tap.slot);
    tap.moments->accumulateCurrent(f, tap.charge, current_);
    tap.moments->compute(f, &m0scratch_, nullptr, nullptr);
    const double q = tap.charge;
    forEachCell(confGrid_, [&](const MultiIndex& idx) {
      const double* src = m0scratch_.at(idx);
      double* dst = chargeDens_.at(idx);
      for (int c = 0; c < m0scratch_.ncomp(); ++c) dst[c] += q * src[c];
    });
  }
  Field& emRhs = out.slot(emSlot_);
  maxwell_->addCurrentSource(current_, emRhs);
  // Divergence-cleaning source: d(phi)/dt += chi * rho / eps0, including
  // any uniform immobile background charge.
  const int npc = maxwell_->numModes();
  const double s = maxwell_->params().chi / maxwell_->params().epsilon0;
  const double bg = backgroundCharge_ * std::pow(2.0, 0.5 * confGrid_.ndim);
  forEachCell(confGrid_, [&](const MultiIndex& idx) {
    const double* rho = chargeDens_.at(idx);
    double* r = emRhs.at(idx);
    r[6 * npc] += s * bg;
    for (int l = 0; l < npc; ++l) r[6 * npc + l] += s * rho[l];
  });
  return 0.0;
}

double BgkCollisionUpdater::apply(double /*t*/, const StateView& in, StateView& out) {
  return bgk_->advance(in.slot(slot_), out.slot(slot_));
}

double LboCollisionUpdater::apply(double /*t*/, const StateView& in, StateView& out) {
  return lbo_->advance(in.slot(slot_), out.slot(slot_));
}

}  // namespace vdg
