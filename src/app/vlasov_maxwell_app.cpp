#include "app/vlasov_maxwell_app.hpp"

#include <utility>

namespace vdg {

namespace {

Simulation buildFromParams(VlasovMaxwellParams params, std::vector<SpeciesParams> species) {
  Simulation::Builder b = Simulation::builder();
  b.confGrid(params.confGrid)
      .basis(params.polyOrder, params.family)
      .field(params.field)
      .evolveField(params.evolveField)
      .backgroundCharge(params.backgroundCharge)
      .cflFrac(params.cflFrac)
      .stepper(Stepper::SspRk3);
  if (params.initField) b.initField(std::move(*params.initField));
  for (SpeciesParams& sp : species)
    b.species(std::move(sp.name), sp.charge, sp.mass, sp.velGrid, std::move(sp.init), sp.flux);
  return b.build();
}

}  // namespace

VlasovMaxwellApp::VlasovMaxwellApp(VlasovMaxwellParams params, std::vector<SpeciesParams> species)
    : sim_(buildFromParams(std::move(params), std::move(species))) {}

}  // namespace vdg
