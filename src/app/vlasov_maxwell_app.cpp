#include "app/vlasov_maxwell_app.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vdg {

VlasovMaxwellApp::VlasovMaxwellApp(VlasovMaxwellParams params, std::vector<SpeciesParams> species)
    : params_(std::move(params)), species_(std::move(species)) {
  const int cdim = params_.confGrid.ndim;
  const BasisSpec confSpec{cdim, 0, params_.polyOrder, params_.family};
  maxwell_ = std::make_unique<MaxwellUpdater>(confSpec, params_.confGrid, params_.field);
  const int npc = maxwell_->numModes();

  em_ = Field(params_.confGrid, kEmComps * npc);
  current_ = Field(params_.confGrid, 3 * npc);
  chargeDens_ = Field(params_.confGrid, npc);
  m0scratch_ = Field(params_.confGrid, npc);
  k_.em = Field(params_.confGrid, kEmComps * npc);
  emStage_[0] = Field(params_.confGrid, kEmComps * npc);
  emStage_[1] = Field(params_.confGrid, kEmComps * npc);

  if (params_.initField) {
    projectVectorOnBasis(maxwell_->basis(), params_.confGrid, *params_.initField, kEmComps, em_);
  }

  for (const SpeciesParams& sp : species_) {
    const BasisSpec spec{cdim, sp.velGrid.ndim, params_.polyOrder, params_.family};
    const Grid pg = Grid::phase(params_.confGrid, sp.velGrid);
    phaseGrids_.push_back(pg);
    VlasovParams vp;
    vp.charge = sp.charge;
    vp.mass = sp.mass;
    vp.flux = sp.flux;
    vlasov_.push_back(std::make_unique<VlasovUpdater>(spec, pg, vp));
    mom_.push_back(std::make_unique<MomentUpdater>(spec, pg));

    const int np = basisFor(spec).numModes();
    Field f(pg, np);
    if (!sp.init) throw std::invalid_argument("SpeciesParams: init function is required");
    projectOnBasis(basisFor(spec), pg, sp.init, f);
    f_.push_back(std::move(f));
    k_.f.emplace_back(pg, np);
    fStage_[0].emplace_back(pg, np);
    fStage_[1].emplace_back(pg, np);
  }
}

void VlasovMaxwellApp::applyBoundary(std::vector<Field>& f, Field& em) const {
  const int cdim = params_.confGrid.ndim;
  for (Field& ff : f)
    for (int d = 0; d < cdim; ++d) ff.syncPeriodic(d);
  for (int d = 0; d < cdim; ++d) em.syncPeriodic(d);
}

double VlasovMaxwellApp::rates(std::vector<Field>& f, Field& em, Rates& out) {
  applyBoundary(f, em);
  double freq = 0.0;
  for (int s = 0; s < numSpecies(); ++s) {
    const Field* emPtr = params_.evolveField || params_.initField ? &em : nullptr;
    freq = std::max(freq, vlasov_[static_cast<std::size_t>(s)]->advance(
                              f[static_cast<std::size_t>(s)], emPtr,
                              out.f[static_cast<std::size_t>(s)]));
  }
  if (params_.evolveField) {
    freq = std::max(freq, maxwell_->advance(em, out.em));
    current_.setZero();
    chargeDens_.setZero();
    for (int s = 0; s < numSpecies(); ++s) {
      mom_[static_cast<std::size_t>(s)]->accumulateCurrent(
          f[static_cast<std::size_t>(s)], species_[static_cast<std::size_t>(s)].charge, current_);
      mom_[static_cast<std::size_t>(s)]->compute(f[static_cast<std::size_t>(s)], &m0scratch_,
                                                 nullptr, nullptr);
      const double q = species_[static_cast<std::size_t>(s)].charge;
      forEachCell(params_.confGrid, [&](const MultiIndex& idx) {
        const double* src = m0scratch_.at(idx);
        double* dst = chargeDens_.at(idx);
        for (int c = 0; c < m0scratch_.ncomp(); ++c) dst[c] += q * src[c];
      });
    }
    maxwell_->addCurrentSource(current_, out.em);
    // Divergence-cleaning source: d(phi)/dt += chi * rho / eps0, including
    // any uniform immobile background charge.
    const int npc = maxwell_->numModes();
    const double s = maxwell_->params().chi / maxwell_->params().epsilon0;
    const double bg = params_.backgroundCharge * std::pow(2.0, 0.5 * params_.confGrid.ndim);
    forEachCell(params_.confGrid, [&](const MultiIndex& idx) {
      const double* rho = chargeDens_.at(idx);
      double* r = out.em.at(idx);
      r[6 * npc] += s * bg;
      for (int l = 0; l < npc; ++l) r[6 * npc + l] += s * rho[l];
    });
  } else {
    out.em.setZero();
  }
  return freq;
}

double VlasovMaxwellApp::step(double dtFixed) {
  const int ns = numSpecies();
  const int p = params_.polyOrder;

  // Stage 1: k = L(u^n), pick dt, u1 = u + dt k.
  const double freq = rates(f_, em_, k_);
  double dt = dtFixed;
  if (dt <= 0.0) {
    if (freq <= 0.0) throw std::runtime_error("VlasovMaxwellApp::step: zero CFL frequency");
    dt = params_.cflFrac / ((2.0 * p + 1.0) * freq);
  }
  for (int s = 0; s < ns; ++s)
    fStage_[0][static_cast<std::size_t>(s)].combine(1.0, f_[static_cast<std::size_t>(s)], dt,
                                                    k_.f[static_cast<std::size_t>(s)]);
  emStage_[0].combine(1.0, em_, dt, k_.em);

  // Stage 2: u2 = 3/4 u + 1/4 u1 + 1/4 dt L(u1).
  rates(fStage_[0], emStage_[0], k_);
  for (int s = 0; s < ns; ++s) {
    Field& u2 = fStage_[1][static_cast<std::size_t>(s)];
    u2.combine(0.75, f_[static_cast<std::size_t>(s)], 0.25,
               fStage_[0][static_cast<std::size_t>(s)]);
    u2.axpy(0.25 * dt, k_.f[static_cast<std::size_t>(s)]);
  }
  emStage_[1].combine(0.75, em_, 0.25, emStage_[0]);
  emStage_[1].axpy(0.25 * dt, k_.em);

  // Stage 3: u^{n+1} = 1/3 u + 2/3 u2 + 2/3 dt L(u2).
  rates(fStage_[1], emStage_[1], k_);
  for (int s = 0; s < ns; ++s) {
    Field& u = f_[static_cast<std::size_t>(s)];
    u.combine(1.0 / 3.0, u, 2.0 / 3.0, fStage_[1][static_cast<std::size_t>(s)]);
    u.axpy(2.0 / 3.0 * dt, k_.f[static_cast<std::size_t>(s)]);
  }
  em_.combine(1.0 / 3.0, em_, 2.0 / 3.0, emStage_[1]);
  em_.axpy(2.0 / 3.0 * dt, k_.em);

  time_ += dt;
  return dt;
}

int VlasovMaxwellApp::advanceTo(double tEnd) {
  int steps = 0;
  while (time_ < tEnd - 1e-12) {
    step(0.0);
    ++steps;
  }
  return steps;
}

VlasovMaxwellApp::Energetics VlasovMaxwellApp::energetics() const {
  Energetics e;
  e.time = time_;
  const int npc = maxwell_->numModes();
  for (int s = 0; s < numSpecies(); ++s) {
    Field m0(params_.confGrid, npc), m2(params_.confGrid, npc);
    mom_[static_cast<std::size_t>(s)]->compute(f_[static_cast<std::size_t>(s)], &m0, nullptr, &m2);
    const double m = species_[static_cast<std::size_t>(s)].mass;
    e.mass.push_back(m * integrateDomain(maxwell_->basis(), params_.confGrid, m0));
    e.particleEnergy.push_back(0.5 * m *
                               integrateDomain(maxwell_->basis(), params_.confGrid, m2));
  }
  // Field energy via the L2 norm (orthonormal basis: sum of squared coeffs).
  double jac = 1.0;
  for (int d = 0; d < params_.confGrid.ndim; ++d) jac *= 0.5 * params_.confGrid.dx(d);
  const double c2 = params_.field.lightSpeed * params_.field.lightSpeed;
  double eE = 0.0, eB = 0.0;
  forEachCell(params_.confGrid, [&](const MultiIndex& idx) {
    const double* u = em_.at(idx);
    for (int l = 0; l < 3 * npc; ++l) eE += u[l] * u[l];
    for (int l = 3 * npc; l < 6 * npc; ++l) eB += u[l] * u[l];
  });
  e.electricEnergy = 0.5 * params_.field.epsilon0 * jac * eE;
  e.magneticEnergy = 0.5 * params_.field.epsilon0 * c2 * jac * eB;
  e.fieldEnergy = e.electricEnergy + e.magneticEnergy;
  return e;
}

double VlasovMaxwellApp::energyTransfer(int s) const {
  const int npc = maxwell_->numModes();
  Field m1(params_.confGrid, 3 * npc);
  mom_[static_cast<std::size_t>(s)]->compute(f_[static_cast<std::size_t>(s)], nullptr, &m1,
                                             nullptr);
  const double q = species_[static_cast<std::size_t>(s)].charge;
  double jac = 1.0;
  for (int d = 0; d < params_.confGrid.ndim; ++d) jac *= 0.5 * params_.confGrid.dx(d);
  double dot = 0.0;
  forEachCell(params_.confGrid, [&](const MultiIndex& idx) {
    const double* j = m1.at(idx);
    const double* e = em_.at(idx);
    for (int c = 0; c < 3; ++c)
      for (int l = 0; l < npc; ++l) dot += j[c * npc + l] * e[c * npc + l];
  });
  return q * jac * dot;
}

double VlasovMaxwellApp::distfL2(int s) const {
  const Grid& pg = phaseGrids_[static_cast<std::size_t>(s)];
  double jac = 1.0;
  for (int d = 0; d < pg.ndim; ++d) jac *= 0.5 * pg.dx(d);
  double l2 = 0.0;
  const Field& f = f_[static_cast<std::size_t>(s)];
  forEachCell(pg, [&](const MultiIndex& idx) {
    const double* fc = f.at(idx);
    for (int l = 0; l < f.ncomp(); ++l) l2 += fc[l] * fc[l];
  });
  return jac * l2;
}

}  // namespace vdg
