#include "app/projection.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "math/gauss_legendre.hpp"

namespace vdg {

namespace {

struct QuadCache {
  std::vector<double> nodes;    // nq^ndim x ndim reference points
  std::vector<double> weights;  // nq^ndim
  std::vector<double> basisAt;  // nq^ndim x numModes
  int npts = 0;
};

QuadCache makeCache(const Basis& basis, int numQuad) {
  const int nd = basis.ndim();
  const QuadRule rule = gauss_legendre(numQuad);
  int npts = 1;
  for (int d = 0; d < nd; ++d) npts *= numQuad;
  QuadCache c;
  c.npts = npts;
  c.nodes.resize(static_cast<std::size_t>(npts) * nd);
  c.weights.resize(static_cast<std::size_t>(npts));
  c.basisAt.resize(static_cast<std::size_t>(npts) * basis.numModes());
  std::vector<int> id(static_cast<std::size_t>(nd), 0);
  for (int q = 0; q < npts; ++q) {
    double w = 1.0;
    for (int d = 0; d < nd; ++d) {
      c.nodes[static_cast<std::size_t>(q) * nd + d] = rule.nodes[static_cast<std::size_t>(id[static_cast<std::size_t>(d)])];
      w *= rule.weights[static_cast<std::size_t>(id[static_cast<std::size_t>(d)])];
    }
    c.weights[static_cast<std::size_t>(q)] = w;
    basis.evalAll(&c.nodes[static_cast<std::size_t>(q) * nd],
                  &c.basisAt[static_cast<std::size_t>(q) * basis.numModes()]);
    for (int d = 0; d < nd; ++d) {
      if (++id[static_cast<std::size_t>(d)] < numQuad) break;
      id[static_cast<std::size_t>(d)] = 0;
    }
  }
  return c;
}

}  // namespace

void projectVectorOnBasis(const Basis& basis, const Grid& grid, const VectorFn& fn, int ncomp,
                          Field& field, int numQuad) {
  const int nd = basis.ndim();
  const int np = basis.numModes();
  assert(grid.ndim == nd && field.ncomp() == ncomp * np);
  if (numQuad <= 0) numQuad = basis.spec().polyOrder + 2;
  const QuadCache cache = makeCache(basis, numQuad);

  std::vector<double> z(static_cast<std::size_t>(nd));
  std::vector<double> vals(static_cast<std::size_t>(ncomp));
  forEachCell(grid, [&](const MultiIndex& idx) {
    double* out = field.at(idx);
    for (int c = 0; c < ncomp * np; ++c) out[c] = 0.0;
    for (int q = 0; q < cache.npts; ++q) {
      for (int d = 0; d < nd; ++d)
        z[static_cast<std::size_t>(d)] = grid.cellCenter(d, idx[d]) +
                                         0.5 * grid.dx(d) *
                                             cache.nodes[static_cast<std::size_t>(q) * nd + d];
      fn(z.data(), vals.data());
      const double* w = &cache.basisAt[static_cast<std::size_t>(q) * np];
      const double wq = cache.weights[static_cast<std::size_t>(q)];
      for (int c = 0; c < ncomp; ++c) {
        const double s = wq * vals[static_cast<std::size_t>(c)];
        double* oc = out + c * np;
        for (int l = 0; l < np; ++l) oc[l] += s * w[l];
      }
    }
  });
}

void projectOnBasis(const Basis& basis, const Grid& grid, const ScalarFn& fn, Field& field,
                    int numQuad) {
  projectVectorOnBasis(
      basis, grid, [&fn](const double* z, double* out) { out[0] = fn(z); }, 1, field, numQuad);
}

double integrateDomain(const Basis& basis, const Grid& grid, const Field& field, int comp) {
  double jac = 1.0;
  for (int d = 0; d < grid.ndim; ++d) jac *= 0.5 * grid.dx(d);
  const double w0 = std::pow(2.0, 0.5 * grid.ndim);
  const int np = basis.numModes();
  double total = 0.0;
  forEachCell(grid, [&](const MultiIndex& idx) { total += field.at(idx)[comp * np]; });
  return total * jac * w0;
}

}  // namespace vdg
