#include "app/distributed.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <fstream>
#include <map>
#include <set>
#include <stdexcept>
#include <thread>

#include "obs/trace.hpp"

namespace vdg {

namespace {

/// Visit every interior cell of a rank-local grid together with its index
/// in the parent (global) grid — the one place the local->global index
/// mapping of scatter/gather lives.
template <typename Fn>
void forEachWindowCell(const Grid& lg, const Fn& fn) {
  forEachCell(lg, [&](const MultiIndex& idx) {
    MultiIndex gidx = idx;
    for (int d = 0; d < lg.ndim; ++d) gidx[d] += lg.offset[static_cast<std::size_t>(d)];
    fn(idx, gidx);
  });
}

}  // namespace

// Known limitation (shared with MPI jobs): if one rank throws *between*
// collectives while the others have already entered one (e.g. bad_alloc
// packing a halo buffer), the survivors block in the barrier and join()
// never returns. Symmetric errors — the common case, e.g. the zero-CFL
// throw, which happens after the frequency allReduce on every rank — exit
// all ranks together and are rethrown here.
template <typename Fn>
void DistributedSimulation::onRanks(const Fn& fn) {
  const int nr = numRanks();
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nr));
  threads.reserve(static_cast<std::size_t>(nr));
  for (int r = 0; r < nr; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
}

DistributedSimulation::DistributedSimulation(const Simulation::Builder& builder, int numRanks,
                                             bool overlapHalo)
    : decomp_(CartDecomp::make(builder.confGrid(), numRanks, builder.periodicDims())),
      comm_(std::make_unique<ThreadComm>(decomp_)),
      profSpec_(builder.resolvedProfilingSpec()) {
  const Grid global = builder.confGrid();
  sims_.reserve(static_cast<std::size_t>(numRanks));
  // Electrostatic runs: every rank solves the *same* global Poisson
  // system, so the rank-0 build factors it once and the other ranks share
  // the immutable instance instead of each paying the setup LU.
  std::shared_ptr<const PoissonSolver> sharedPoisson;
  for (int r = 0; r < numRanks; ++r) {
    // Per-rank variant of the user's builder: local subgrid, the rank's
    // endpoint, serial RHS execution (the rank threads are the
    // parallelism — intra-rank threading would also skew the compute/halo
    // split that calibrates the Fig. 3 model).
    Simulation::Builder b = builder;
    b.confGrid(decomp_.localGrid(global, r));
    b.communicator(&comm_->endpoint(r));
    b.threads(1);
    b.overlapHalo(overlapHalo);
    if (sharedPoisson) b.poissonSolver(sharedPoisson);
    // Rank profilers are always enabled: their "step"/halo zones *are* the
    // compute/halo split (replacing the retired wallSec_ bookkeeping, which
    // was always measured too). Tracing follows the user's spec; the
    // trace/report paths move up to this object, which writes one merged
    // artifact instead of letting rank 0's file clobber the others.
    ProfilingSpec rs = profSpec_;
    rs.enabled = true;
    rs.trace = profSpec_.tracing();
    rs.tracePath.clear();
    rs.reportPath.clear();
    profilers_.push_back(std::make_shared<Profiler>(std::move(rs), r));
    b.profiler(profilers_.back());
    sims_.push_back(b.build());
    if (r == 0) sharedPoisson = sims_.front().sharedPoissonSolver();  // null for Maxwell
  }
  // Derived-field refresh (the electrostatic E of a Poisson run) is a
  // collective, so the sequential per-rank build() above skipped it; run
  // it now with every rank entering in parallel. No-op for Maxwell runs.
  onRanks([&](int r) { sims_[static_cast<std::size_t>(r)].refreshDerivedFields(); });
}

DistributedSimulation::~DistributedSimulation() {
  try {
    if (!profSpec_.tracePath.empty()) writeTrace(profSpec_.tracePath);
    if (!profSpec_.reportPath.empty()) {
      // One JSON array of per-rank reports (each row self-identifies via
      // its "rank" field).
      std::string out = "[\n";
      for (int r = 0; r < numRanks(); ++r) {
        if (r > 0) out += ",\n";
        out += profilers_[static_cast<std::size_t>(r)]->reportJson();
      }
      out += "]\n";
      std::ofstream os(profSpec_.reportPath);
      os << out;
    }
  } catch (...) {
    // Destructor context: a failed diagnostic write must not terminate.
  }
}

double DistributedSimulation::step(double dtFixed) {
  std::vector<double> dts(static_cast<std::size_t>(numRanks()), 0.0);
  // Rank timing comes from each rank profiler's "step" zone, opened
  // *inside* Simulation::step on the rank thread — per-call thread
  // spawn/join overhead never contaminates the compute-vs-halo split that
  // calibrates the scaling model.
  onRanks([&](int r) {
    dts[static_cast<std::size_t>(r)] = sims_[static_cast<std::size_t>(r)].step(dtFixed);
  });
  for (double dt : dts)
    if (dt != dts[0])
      throw std::logic_error("DistributedSimulation::step: ranks disagreed on dt");
  return dts[0];
}

int DistributedSimulation::advanceTo(double tEnd) {
  // Every rank sees the same globally-reduced dt per step, so the loops
  // stay in lockstep and terminate after the same number of steps.
  std::vector<int> steps(static_cast<std::size_t>(numRanks()), 0);
  onRanks([&](int r) {
    steps[static_cast<std::size_t>(r)] = sims_[static_cast<std::size_t>(r)].advanceTo(tEnd);
  });
  return steps[0];
}

StateVector DistributedSimulation::globalStateLike() const {
  StateVector global;
  const StateVector& local = sims_[0].state();
  for (int i = 0; i < local.numSlots(); ++i) {
    const Field& lf = local.slot(i);
    global.addSlot(local.slotName(i), Field(lf.grid().parent(), lf.ncomp(), lf.nghost()));
  }
  return global;
}

void DistributedSimulation::gather(StateVector& global) const {
  for (int r = 0; r < numRanks(); ++r) {
    const StateVector& local = sims_[static_cast<std::size_t>(r)].state();
    for (int i = 0; i < local.numSlots(); ++i) {
      const Field& lf = local.slot(i);
      Field& gf = global.slot(i);
      const std::size_t bytes = sizeof(double) * static_cast<std::size_t>(lf.ncomp());
      forEachWindowCell(lf.grid(), [&](const MultiIndex& idx, const MultiIndex& gidx) {
        std::memcpy(gf.at(gidx), lf.at(idx), bytes);
      });
    }
  }
}

StateVector DistributedSimulation::gather() const {
  StateVector global = globalStateLike();
  gather(global);
  return global;
}

void DistributedSimulation::scatter(const StateVector& global) {
  for (int r = 0; r < numRanks(); ++r) {
    StateVector& local = sims_[static_cast<std::size_t>(r)].state();
    for (int i = 0; i < local.numSlots(); ++i) {
      Field& lf = local.slot(i);
      const Field& gf = global.slot(i);
      const std::size_t bytes = sizeof(double) * static_cast<std::size_t>(lf.ncomp());
      forEachWindowCell(lf.grid(), [&](const MultiIndex& idx, const MultiIndex& gidx) {
        std::memcpy(lf.at(idx), gf.at(gidx), bytes);
      });
    }
  }
}

void DistributedSimulation::restore(const StateVector& global, double t) {
  scatter(global);
  onRanks([&](int r) {
    Simulation& sim = sims_[static_cast<std::size_t>(r)];
    sim.setTime(t);
    sim.refreshDerivedFields();
  });
}

double DistributedSimulation::haloSeconds() const { return comm_->meanHaloSeconds(); }

double DistributedSimulation::computeSeconds() const {
  // zoneSeconds("step") accumulates one duration per step in chronological
  // order — the exact arithmetic of the retired per-rank wallSec_ sum.
  double s = 0.0;
  for (int r = 0; r < numRanks(); ++r)
    s += profilers_[static_cast<std::size_t>(r)]->zoneSeconds("step") -
         comm_->endpoint(r).haloSeconds();
  return s / static_cast<double>(numRanks());
}

std::vector<DistributedSimulation::ZoneStat> DistributedSimulation::zoneSummary() {
  // Path union over ranks, read quiescently from the main thread (the rank
  // threads only exist inside onRanks).
  std::vector<std::string> paths;
  std::map<std::string, std::uint64_t> count0;
  {
    std::set<std::string> u;
    for (int r = 0; r < numRanks(); ++r)
      for (const ZoneReport& zr : profilers_[static_cast<std::size_t>(r)]->report()) {
        u.insert(zr.path);
        if (r == 0) count0[zr.path] = zr.count;
      }
    paths.assign(u.begin(), u.end());
  }
  const std::size_t np = paths.size();
  std::vector<double> sums(np, 0.0), mins(np, 0.0), maxs(np, 0.0);
  // Aggregate through the collectives, every rank entering in lockstep
  // over the shared (sorted, hence identical) path list: one vector
  // all-reduce for the sums, then scalar max / negated-max (= min) per
  // path. This is the code path an MPI-backed summary would take too.
  onRanks([&](int r) {
    Communicator& ep = comm_->endpoint(r);
    std::vector<double> mine(np, 0.0);
    {
      std::map<std::string, double> byPath;
      for (const ZoneReport& zr : profilers_[static_cast<std::size_t>(r)]->report())
        byPath[zr.path] = zr.seconds;
      for (std::size_t i = 0; i < np; ++i)
        if (const auto it = byPath.find(paths[i]); it != byPath.end()) mine[i] = it->second;
    }
    std::vector<double> sum = mine;
    ep.allReduceSum(std::span<double>(sum));
    std::vector<double> mx(np), mn(np);
    for (std::size_t i = 0; i < np; ++i) mx[i] = ep.allReduceMax(mine[i]);
    for (std::size_t i = 0; i < np; ++i) mn[i] = -ep.allReduceMax(-mine[i]);
    if (r == 0) {
      sums = std::move(sum);
      maxs = std::move(mx);
      mins = std::move(mn);
    }
  });
  std::vector<ZoneStat> out;
  out.reserve(np);
  for (std::size_t i = 0; i < np; ++i) {
    ZoneStat zs;
    zs.path = paths[i];
    if (const auto it = count0.find(paths[i]); it != count0.end()) zs.count = it->second;
    zs.minSec = mins[i];
    zs.meanSec = sums[i] / static_cast<double>(numRanks());
    zs.maxSec = maxs[i];
    out.push_back(std::move(zs));
  }
  return out;
}

void DistributedSimulation::writeTrace(const std::string& path) const {
  std::vector<const Profiler*> ps;
  ps.reserve(profilers_.size());
  for (const auto& p : profilers_) ps.push_back(p.get());
  writeChromeTrace(path, ps);
}

}  // namespace vdg
