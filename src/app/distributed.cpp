#include "app/distributed.hpp"

#include <chrono>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>

namespace vdg {

namespace {
using Clock = std::chrono::steady_clock;

/// Visit every interior cell of a rank-local grid together with its index
/// in the parent (global) grid — the one place the local->global index
/// mapping of scatter/gather lives.
template <typename Fn>
void forEachWindowCell(const Grid& lg, const Fn& fn) {
  forEachCell(lg, [&](const MultiIndex& idx) {
    MultiIndex gidx = idx;
    for (int d = 0; d < lg.ndim; ++d) gidx[d] += lg.offset[static_cast<std::size_t>(d)];
    fn(idx, gidx);
  });
}

}  // namespace

// Known limitation (shared with MPI jobs): if one rank throws *between*
// collectives while the others have already entered one (e.g. bad_alloc
// packing a halo buffer), the survivors block in the barrier and join()
// never returns. Symmetric errors — the common case, e.g. the zero-CFL
// throw, which happens after the frequency allReduce on every rank — exit
// all ranks together and are rethrown here.
template <typename Fn>
void DistributedSimulation::onRanks(const Fn& fn) {
  const int nr = numRanks();
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nr));
  threads.reserve(static_cast<std::size_t>(nr));
  for (int r = 0; r < nr; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
}

DistributedSimulation::DistributedSimulation(const Simulation::Builder& builder, int numRanks,
                                             bool overlapHalo)
    : decomp_(CartDecomp::make(builder.confGrid(), numRanks, builder.periodicDims())),
      comm_(std::make_unique<ThreadComm>(decomp_)),
      wallSec_(static_cast<std::size_t>(numRanks), 0.0) {
  const Grid global = builder.confGrid();
  sims_.reserve(static_cast<std::size_t>(numRanks));
  // Electrostatic runs: every rank solves the *same* global Poisson
  // system, so the rank-0 build factors it once and the other ranks share
  // the immutable instance instead of each paying the setup LU.
  std::shared_ptr<const PoissonSolver> sharedPoisson;
  for (int r = 0; r < numRanks; ++r) {
    // Per-rank variant of the user's builder: local subgrid, the rank's
    // endpoint, serial RHS execution (the rank threads are the
    // parallelism — intra-rank threading would also skew the compute/halo
    // split that calibrates the Fig. 3 model).
    Simulation::Builder b = builder;
    b.confGrid(decomp_.localGrid(global, r));
    b.communicator(&comm_->endpoint(r));
    b.threads(1);
    b.overlapHalo(overlapHalo);
    if (sharedPoisson) b.poissonSolver(sharedPoisson);
    sims_.push_back(b.build());
    if (r == 0) sharedPoisson = sims_.front().sharedPoissonSolver();  // null for Maxwell
  }
  // Derived-field refresh (the electrostatic E of a Poisson run) is a
  // collective, so the sequential per-rank build() above skipped it; run
  // it now with every rank entering in parallel. No-op for Maxwell runs.
  onRanks([&](int r) { sims_[static_cast<std::size_t>(r)].refreshDerivedFields(); });
}

double DistributedSimulation::step(double dtFixed) {
  std::vector<double> dts(static_cast<std::size_t>(numRanks()), 0.0);
  // Rank wall time is clocked *inside* the rank thread, so per-call
  // thread spawn/join overhead never contaminates the compute-vs-halo
  // split that calibrates the scaling model. Long runs should prefer
  // advanceTo, which amortizes the spawn over the whole interval.
  onRanks([&](int r) {
    const auto t0 = Clock::now();
    dts[static_cast<std::size_t>(r)] = sims_[static_cast<std::size_t>(r)].step(dtFixed);
    wallSec_[static_cast<std::size_t>(r)] +=
        std::chrono::duration<double>(Clock::now() - t0).count();
  });
  for (double dt : dts)
    if (dt != dts[0])
      throw std::logic_error("DistributedSimulation::step: ranks disagreed on dt");
  return dts[0];
}

int DistributedSimulation::advanceTo(double tEnd) {
  // Every rank sees the same globally-reduced dt per step, so the loops
  // stay in lockstep and terminate after the same number of steps.
  std::vector<int> steps(static_cast<std::size_t>(numRanks()), 0);
  onRanks([&](int r) {
    const auto t0 = Clock::now();
    steps[static_cast<std::size_t>(r)] = sims_[static_cast<std::size_t>(r)].advanceTo(tEnd);
    wallSec_[static_cast<std::size_t>(r)] +=
        std::chrono::duration<double>(Clock::now() - t0).count();
  });
  return steps[0];
}

StateVector DistributedSimulation::globalStateLike() const {
  StateVector global;
  const StateVector& local = sims_[0].state();
  for (int i = 0; i < local.numSlots(); ++i) {
    const Field& lf = local.slot(i);
    global.addSlot(local.slotName(i), Field(lf.grid().parent(), lf.ncomp(), lf.nghost()));
  }
  return global;
}

void DistributedSimulation::gather(StateVector& global) const {
  for (int r = 0; r < numRanks(); ++r) {
    const StateVector& local = sims_[static_cast<std::size_t>(r)].state();
    for (int i = 0; i < local.numSlots(); ++i) {
      const Field& lf = local.slot(i);
      Field& gf = global.slot(i);
      const std::size_t bytes = sizeof(double) * static_cast<std::size_t>(lf.ncomp());
      forEachWindowCell(lf.grid(), [&](const MultiIndex& idx, const MultiIndex& gidx) {
        std::memcpy(gf.at(gidx), lf.at(idx), bytes);
      });
    }
  }
}

StateVector DistributedSimulation::gather() const {
  StateVector global = globalStateLike();
  gather(global);
  return global;
}

void DistributedSimulation::scatter(const StateVector& global) {
  for (int r = 0; r < numRanks(); ++r) {
    StateVector& local = sims_[static_cast<std::size_t>(r)].state();
    for (int i = 0; i < local.numSlots(); ++i) {
      Field& lf = local.slot(i);
      const Field& gf = global.slot(i);
      const std::size_t bytes = sizeof(double) * static_cast<std::size_t>(lf.ncomp());
      forEachWindowCell(lf.grid(), [&](const MultiIndex& idx, const MultiIndex& gidx) {
        std::memcpy(lf.at(idx), gf.at(gidx), bytes);
      });
    }
  }
}

void DistributedSimulation::restore(const StateVector& global, double t) {
  scatter(global);
  onRanks([&](int r) {
    Simulation& sim = sims_[static_cast<std::size_t>(r)];
    sim.setTime(t);
    sim.refreshDerivedFields();
  });
}

double DistributedSimulation::haloSeconds() const { return comm_->meanHaloSeconds(); }

double DistributedSimulation::computeSeconds() const {
  double s = 0.0;
  for (int r = 0; r < numRanks(); ++r)
    s += wallSec_[static_cast<std::size_t>(r)] - comm_->endpoint(r).haloSeconds();
  return s / static_cast<double>(numRanks());
}

}  // namespace vdg
