#pragma once
// The composition seam of the App layer: every term of the coupled kinetic
// system — Vlasov streaming/acceleration, the Maxwell solve, moment-based
// current coupling, collision operators, boundary application — is an
// Updater, and a Simulation is an ordered pipeline of them (the role of
// Gkeyll's declarative App composition). New physics plugs in by
// implementing this interface and registering with Simulation::Builder;
// the steppers never see anything but the pipeline.

#include <string>

#include "app/state.hpp"

namespace vdg {

/// One term of the semi-discrete system du/dt = L(u) (or a state fixup
/// such as a ghost-layer sync applied to `in` before the RHS terms run).
class Updater {
 public:
  virtual ~Updater() = default;

  /// Short diagnostic name ("vlasov:elc", "bgk:ion", "maxwell", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Evaluate this term at time t and state `in`, accumulating into `out`
  /// (both share the owning Simulation's slot layout). Returns the term's
  /// CFL frequency contribution: max over cells of sum_d lambda_d / dx_d
  /// (0 for terms with no stability limit of their own). A stable explicit
  /// step is dt <= cflFrac / ((2p+1) * maxFreq).
  ///
  /// Contract notes:
  ///  - `in` is non-const so state-fixup updaters (boundary sync) can
  ///    repair ghost layers in place; RHS terms must not modify interior
  ///    data of `in`.
  ///  - Each slot of `out` is zeroed by the first RHS updater that owns it
  ///    (Vlasov for a species slot, Maxwell for "em"); later updaters for
  ///    the slot (collisions, current sources) accumulate.
  virtual double apply(double t, const StateView& in, StateView& out) = 0;
};

}  // namespace vdg
