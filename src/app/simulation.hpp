#pragma once
// The composable simulation core: a fluent Builder assembles an ordered
// Updater pipeline (boundary sync, per-species Vlasov, Maxwell, moment
// coupling, collisions) over a named StateVector, and a selectable
// SSP-RK2/RK3 stepper advances it. This is the seam every scenario plugs
// into — collisional runs, fixed-field runs, new species physics — while
// VlasovMaxwellApp survives as a thin compatibility façade on top.
//
//   auto sim = Simulation::builder()
//                  .confGrid(Grid::make({16}, {0.0}, {12.56}))
//                  .basis(2, BasisFamily::Serendipity)
//                  .species({.name = "elc", .charge = -1.0, .mass = 1.0,
//                            .velGrid = ..., .init = ...})
//                  .collisions(BgkParams{.mass = 1.0, .collisionFreq = 5.0})
//                  .field(MaxwellParams{})
//                  .initField(...)
//                  .stepper(Stepper::SspRk3)
//                  .build();
//   sim.advanceTo(10.0);

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "app/projection.hpp"
#include "app/state.hpp"
#include "app/updater.hpp"
#include "bc/bc.hpp"
#include "collisions/bgk.hpp"
#include "collisions/lbo.hpp"
#include "dg/maxwell.hpp"
#include "dg/moments.hpp"
#include "dg/poisson.hpp"
#include "dg/vlasov.hpp"
#include "grid/grid.hpp"
#include "obs/profiler.hpp"

namespace vdg {

class BoundarySyncUpdater;
class Communicator;
class PoissonFieldUpdater;
class ThreadExec;
class VlasovRhsUpdater;

/// Strong-stability-preserving Runge-Kutta time steppers operating
/// generically on StateVector.
enum class Stepper {
  SspRk2,  ///< 2-stage, 2nd order (Heun with SSP coefficients)
  SspRk3,  ///< 3-stage, 3rd order (Shu-Osher), the paper's stepper
};

/// One kinetic species of the system.
struct SpeciesConfig {
  std::string name = "elc";
  double charge = -1.0;
  double mass = 1.0;
  Grid velGrid;                         ///< vdim-dimensional velocity grid
  ScalarFn init;                        ///< f0(x..., v...) on the phase grid
  FluxType flux = FluxType::Penalty;
  std::optional<BgkParams> collisions;  ///< BGK operator, off by default
  /// Conservative Lenard-Bernstein/Dougherty operator, off by default.
  /// Independent of the BGK slot: a species may carry either (or, for
  /// operator-comparison studies, both).
  std::optional<LboParams> lboCollisions;
};

class Simulation {
 public:
  class Builder;
  [[nodiscard]] static Builder builder();

  // Out-of-line so unique_ptr<ThreadExec> works with the forward
  // declaration above.
  ~Simulation();
  Simulation(Simulation&&) noexcept;
  Simulation& operator=(Simulation&&) noexcept;

  /// Take one step with dt from the CFL condition (or the given dt if
  /// positive). Returns the dt taken.
  double step(double dtFixed = 0.0);

  /// Step until tEnd; returns the number of steps taken.
  int advanceTo(double tEnd);

  /// One RHS evaluation k = L(u) through the pipeline at time t (u's ghost
  /// layers are repaired in place). Returns the max CFL frequency.
  double rhs(double t, StateVector& u, StateVector& k);

  /// Recompute the state-derived (non-stepped) fields — the electrostatic
  /// E of a Poisson run — from the current distribution functions; no-op
  /// on the Maxwell path. step() calls this after each accepted step so
  /// diagnostics always see a field consistent with f; it is collective
  /// (all ranks must enter together) when the simulation is distributed.
  void refreshDerivedFields();

  /// Restore a checkpointed state: overwrite every slot's interior cells
  /// from `src` (matched by slot name; shapes must agree), set the clock
  /// to `t`, and refresh the derived fields. Ghost layers are *not*
  /// restored — the pipeline repairs them before any surface term reads
  /// them, so a restored trajectory is bitwise identical to the
  /// uninterrupted one (tests/test_ensemble.cpp pins this). The cumulative
  /// wall-loss accounting (absorbedMass) restarts at zero; restoring it is
  /// the checkpoint owner's job if the diagnostic must span the restart.
  /// Collective on distributed runs — use DistributedSimulation::restore,
  /// which scatters and enters the refresh on every rank together.
  void restore(const StateVector& src, double t);

  /// Set the clock without touching the state (the low-level half of
  /// restore(); DistributedSimulation::restore scatters first, then sets
  /// every rank's clock through this before the collective refresh).
  void setTime(double t) { time_ = t; }

  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] int numSpecies() const { return static_cast<int>(species_.size()); }
  [[nodiscard]] int speciesIndex(const std::string& name) const;

  [[nodiscard]] StateVector& state() { return state_; }
  [[nodiscard]] const StateVector& state() const { return state_; }
  [[nodiscard]] const Field& distf(int s) const { return state_.slot(s); }
  [[nodiscard]] Field& distf(int s) { return state_.slot(s); }
  [[nodiscard]] const Field& emField() const { return state_.slot(emSlot_); }
  [[nodiscard]] Field& emField() { return state_.slot(emSlot_); }

  [[nodiscard]] const Grid& confGrid() const { return confGrid_; }
  [[nodiscard]] const Grid& phaseGrid(int s) const {
    return phaseGrids_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const Basis& phaseBasis(int s) const {
    return vlasov_[static_cast<std::size_t>(s)]->kernels().phase[0];
  }
  [[nodiscard]] const Basis& confBasis() const { return maxwell_->basis(); }
  [[nodiscard]] const MomentUpdater& moments(int s) const {
    return *mom_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const SpeciesConfig& speciesConfig(int s) const {
    return species_[static_cast<std::size_t>(s)];
  }

  /// The Poisson solver of an electrostatic (field:poisson) run, or null
  /// for the Maxwell path.
  [[nodiscard]] const PoissonSolver* poissonSolver() const { return poisson_.get(); }
  /// Shared ownership of the solver (immutable after construction), so a
  /// DistributedSimulation factors the global operator once and hands the
  /// same instance to every rank (Builder::poissonSolver).
  [[nodiscard]] std::shared_ptr<const PoissonSolver> sharedPoissonSolver() const {
    return poisson_;
  }
  /// The Poisson field updater (lastRho()/lastPhi() diagnostics), or null.
  [[nodiscard]] const PoissonFieldUpdater* poissonField() const { return poissonUpd_; }

  /// The assembled pipeline, in application order (for diagnostics and
  /// tests; names like "vlasov:elc", "bgk:ion", "current-coupling").
  [[nodiscard]] const std::vector<std::unique_ptr<Updater>>& pipeline() const {
    return pipeline_;
  }
  [[nodiscard]] Stepper stepper() const { return stepper_; }

  /// The communication endpoint this simulation's boundary sync and CFL
  /// reduction run through (SerialComm for a non-distributed run).
  [[nodiscard]] Communicator& comm() const { return *comm_; }

  /// The instrumentation attached at build time (Builder::profiling /
  /// Builder::profiler / VDG_TRACE env), or null when off. When the
  /// simulation owns the profiler's output (it was constructed from a
  /// spec, not shared), the trace/report files are written when the
  /// simulation is destroyed (or on an explicit flushProfilerOutput()).
  [[nodiscard]] Profiler* profiler() const { return profiler_.get(); }
  /// Write the profiler's configured trace/report files now, once — or,
  /// when zones are on but no file was asked for (VDG_PROFILE=1), print
  /// the zone table to stderr (idempotent; no-op when the profiler is off
  /// or externally owned).
  void flushProfilerOutput() noexcept;

  /// Whether rhs() runs the split-phase schedule (dimension-0 halo sends
  /// posted, Vlasov volume terms computed while they fly, then wait +
  /// remaining sync + surface terms). Takes effect only on a communicator
  /// that supportsSplitSync(); bitwise identical to the blocking schedule
  /// either way, so it may be toggled freely between steps — but it is a
  /// collective property: every rank of a distributed run must agree.
  void setOverlapHalo(bool on) { overlapHalo_ = on; }
  [[nodiscard]] bool overlapHalo() const { return overlapHalo_; }
  /// True when the next rhs() will actually take the overlapped schedule.
  [[nodiscard]] bool overlapActive() const;

  /// Test hook (see BoundarySyncUpdater::setGhostPoison): NaN-flood the
  /// configuration ghost slabs inside each overlapped sync, proving no
  /// ghost is read before its repair. Only meaningful with overlap on.
  void setGhostPoison(bool on);

  /// Per configuration dimension: true when the domain wraps (the
  /// default), false when both ends carry physical boundary conditions.
  [[nodiscard]] const std::array<bool, kMaxDim>& periodicDims() const {
    return periodicDims_;
  }
  /// The per-slot physical boundary conditions, or null when fully
  /// periodic (slot indices match the StateVector layout).
  [[nodiscard]] const BcTable* boundaryConditions() const { return bcTable_.get(); }

  /// True when the run has non-periodic configuration boundaries and the
  /// stepper is accounting the mass crossing them.
  [[nodiscard]] bool tracksWallLoss() const { return trackWallLoss_; }
  /// Cumulative mass of species s lost through the domain boundaries
  /// (absorbing walls) since t = 0: the time integral, with the exact RK
  /// stage weights, of the discrete boundary mass flux — so
  /// mass(t) + absorbedMass(t) is conserved to round-off (the sheath
  /// example pins <= 1e-12 relative over thousands of steps). Globally
  /// reduced on distributed runs; ~0 for reflecting/periodic faces.
  [[nodiscard]] double absorbedMass(int s) const {
    return absorbed_[static_cast<std::size_t>(s)];
  }
  /// Mass-loss rate of species s measured over the last step (the
  /// RK-weighted boundary flux; positive = mass leaving). The sheath
  /// example's steady-state criterion compares these across species.
  [[nodiscard]] double wallLossRate(int s) const {
    return lossRate_[static_cast<std::size_t>(s)];
  }

  /// Conservation diagnostics (paper Section II: the delicate J.E exchange).
  struct Energetics {
    double time = 0.0;
    std::vector<double> mass;            ///< per species: int m f dx dv
    std::vector<double> particleEnergy;  ///< per species: int (m/2)|v|^2 f
    double fieldEnergy = 0.0;            ///< (eps0/2) int |E|^2 + c^2|B|^2
    double electricEnergy = 0.0;
    double magneticEnergy = 0.0;
    [[nodiscard]] double totalEnergy() const {
      double e = fieldEnergy;
      for (double p : particleEnergy) e += p;
      return e;
    }
  };
  [[nodiscard]] Energetics energetics() const;

  /// L2 norm^2 of a species distribution function (decays monotonically
  /// with penalty fluxes, conserved with central fluxes).
  [[nodiscard]] double distfL2(int s) const;

  /// Discrete field-particle energy exchange of the paper's Eq. 9:
  /// int J_h . E_h dx for one species (positive: field energy flows to the
  /// particles).
  [[nodiscard]] double energyTransfer(int s) const;

 private:
  friend class Builder;
  Simulation() = default;

  Grid confGrid_;
  int polyOrder_ = 2;
  double cflFrac_ = 0.9;
  Stepper stepper_ = Stepper::SspRk3;
  MaxwellParams fieldParams_;
  std::vector<SpeciesConfig> species_;
  std::vector<Grid> phaseGrids_;

  std::vector<std::unique_ptr<VlasovUpdater>> vlasov_;
  std::vector<std::unique_ptr<MomentUpdater>> mom_;
  std::vector<std::unique_ptr<BgkUpdater>> bgk_;  ///< per species, may be null
  std::vector<std::unique_ptr<LboUpdater>> lbo_;  ///< per species, may be null
  std::unique_ptr<MaxwellUpdater> maxwell_;
  /// Electrostatic runs only; shared so rank shards reuse one LU.
  std::shared_ptr<const PoissonSolver> poisson_;
  PoissonFieldUpdater* poissonUpd_ = nullptr;  ///< non-owning, in pipeline_
  BoundarySyncUpdater* bsyncUpd_ = nullptr;    ///< non-owning, in pipeline_
  std::vector<VlasovRhsUpdater*> vlasovUpds_;  ///< non-owning, in pipeline_
  bool overlapHalo_ = false;
  std::vector<std::unique_ptr<Updater>> pipeline_;
  std::unique_ptr<ThreadExec> ownedExec_;  ///< set when Builder::threads(n>0)
  Communicator* comm_ = nullptr;           ///< non-owning; SerialComm by default

  std::shared_ptr<Profiler> profiler_;  ///< null == instrumentation off
  bool ownsProfilerOutput_ = false;     ///< write trace/report at destruction
  /// Zone names cached at build time: Updater::name() allocates, and the
  /// stepper must not allocate per zone on the hot path.
  std::vector<std::string> zoneNames_;      ///< per pipeline_ entry
  std::vector<std::string> volZoneNames_;   ///< per vlasovUpds_ entry (overlap)
  std::vector<std::string> surfZoneNames_;  ///< per vlasovUpds_ entry (overlap)
  std::vector<std::string> absorbedKeys_;   ///< per species metrics key

  std::unique_ptr<BcTable> bcTable_;  ///< physical BCs; null == periodic
  std::array<bool, kMaxDim> periodicDims_{};
  bool trackWallLoss_ = false;
  std::vector<double> absorbed_;  ///< per species, cumulative wall mass loss
  std::vector<double> lossRate_;  ///< per species, last step's loss rate

  int emSlot_ = -1;
  StateVector state_;
  StateVector k_;          ///< RHS evaluation
  StateVector stage_[2];   ///< RK stage states
  double time_ = 0.0;
};

/// Fluent assembly of a Simulation. Call order: grid/basis first, then
/// species (collisions(...) attaches to the most recent species), then
/// field/stepper options; build() validates and wires the pipeline.
class Simulation::Builder {
 public:
  Builder& confGrid(const Grid& g);
  Builder& basis(int polyOrder, BasisFamily family = BasisFamily::Serendipity);
  Builder& species(SpeciesConfig cfg);
  Builder& species(std::string name, double charge, double mass, const Grid& velGrid,
                   ScalarFn init, FluxType flux = FluxType::Penalty);
  /// Attach a BGK collision operator to the most recently added species.
  Builder& collisions(const BgkParams& p);
  /// Attach the conservative Lenard-Bernstein/Dougherty operator to the
  /// most recently added species (see collisions/lbo.hpp).
  Builder& collisions(const LboParams& p);
  Builder& field(const MaxwellParams& p);
  /// Electrostatic field path (Vlasov-Poisson): instead of stepping the
  /// hyperbolic Maxwell system, E is recomputed from the species charge
  /// density at *every RK stage* by the DG Poisson solve
  /// -lap(phi) = rho/eps0 (zero-mean gauge, periodic), and B — along with
  /// any initField-set transverse E components — stays frozen at its
  /// initial value (zero unless initField set it). No current
  /// coupling runs — Gauss's law replaces Ampere's law — and evolveField()
  /// is ignored. backgroundCharge() feeds the density (e.g. a neutralizing
  /// ion background), though the gauge makes E independent of any uniform
  /// charge. 1x configuration grids only for now (PoissonSolver).
  Builder& field(const PoissonParams& p);
  /// Reuse an already-factored global Poisson solver instead of building
  /// one (it is immutable, so sharing is safe and bit-identical). Must
  /// match the configured grid's parent and basis; only consulted when
  /// field(PoissonParams) is selected. DistributedSimulation uses this to
  /// factor the global operator once instead of once per rank.
  Builder& poissonSolver(std::shared_ptr<const PoissonSolver> solver);
  /// Physical boundary condition on one domain face of configuration
  /// dimension `dim`, applied to *every* species distribution (override a
  /// single species with the named overload below). Any non-periodic spec
  /// makes the whole dimension non-periodic: the opposite face must then
  /// also be given a physical spec, the periodic wrap is dropped, and the
  /// ghost slab on each face is filled by the requested condition
  /// (src/bc/) instead. Reflect requires the species velocity grid to be
  /// symmetric about v_dim = 0 (validated at build()). Walls currently
  /// compose with the Poisson field path (whose PoissonParams::bc must be
  /// non-periodic on the same dims) and with non-evolving fields; the
  /// hyperbolic Maxwell stepper has no wall closure yet and build()
  /// rejects the combination.
  Builder& boundary(int dim, Edge edge, BcSpec spec);
  /// Per-species override of boundary(dim, edge, spec).
  Builder& boundary(const std::string& species, int dim, Edge edge, BcSpec spec);
  /// Condition of the em slot on a walled face (BcKind::Copy — zeroth-
  /// order extrapolation — by default; Reflect is not meaningful for the
  /// component-stacked field and is rejected).
  Builder& fieldBoundary(int dim, Edge edge, BcSpec spec);
  /// Per configuration dimension: false where boundary(...) declared a
  /// wall, true (periodic) elsewhere. DistributedSimulation reads this to
  /// build its CartDecomp with matching edge semantics.
  [[nodiscard]] std::array<bool, kMaxDim> periodicDims() const;

  /// false: the EM field is held fixed (or absent) — free streaming /
  /// external-field runs. Defaults to true.
  Builder& evolveField(bool on);
  /// Initial EM field, 8 components (Ex,Ey,Ez,Bx,By,Bz,phi,psi).
  Builder& initField(VectorFn fn);
  /// Uniform immobile charge background added to the divergence-cleaning
  /// charge density (e.g. +n0 e for a static neutralizing ion population).
  Builder& backgroundCharge(double rho);
  Builder& stepper(Stepper s);
  Builder& cflFrac(double frac);
  /// RHS thread count: 0 (default) shares the process-global pool; n >= 1
  /// gives this simulation a dedicated pool of n threads (1 = serial).
  Builder& threads(int n);
  /// SIMD batch width for the Vlasov/LBO hot loops: 0 (default) picks the
  /// largest batched kernel set the registry offers for the spec; 1 forces
  /// the scalar cell loops (today's code path, bit-for-bit); 4/8 request a
  /// specific lane count. The batched path is bitwise identical to scalar,
  /// so this knob only trades execution schedule — see dg/batch.hpp.
  Builder& batchLanes(int lanes);
  /// Communication endpoint for boundary sync and the CFL reduction
  /// (non-owning; must outlive the simulation). Default: the shared
  /// SerialComm — single rank, periodic wrap. DistributedSimulation
  /// passes each rank's ThreadComm endpoint through here.
  Builder& communicator(Communicator* comm);
  /// Overlap halo exchange with the Vlasov volume terms (split-phase
  /// sync; see Simulation::setOverlapHalo). Off by default here — the
  /// schedule is bitwise identical, so DistributedSimulation turns it on
  /// for its rank builders unless told otherwise. Collective: pass the
  /// same value to every rank of a distributed run.
  Builder& overlapHalo(bool on);

  /// Instrumentation (src/obs/): an active spec makes build() construct a
  /// Profiler, zone the stepper/pipeline/halo phases, and feed the metrics
  /// registry; trace/report files are written when the Simulation is
  /// destroyed. An explicit call — active or not — overrides the
  /// VDG_TRACE/VDG_PROFILE environment opt-in (profiling({}) forces off).
  Builder& profiling(ProfilingSpec spec);
  /// Share an externally owned profiler instead of constructing one: the
  /// simulation records into it but never writes its files
  /// (DistributedSimulation's per-rank profilers and the Ensemble's
  /// campaign profiler come through here). Wins over profiling()/env.
  Builder& profiler(std::shared_ptr<Profiler> p);
  /// The spec build() will act on: the explicit profiling() spec when one
  /// was given, else ProfilingSpec::fromEnv(). DistributedSimulation and
  /// the Ensemble read this to hoist the trace/report destination up to
  /// their own merged exporters.
  [[nodiscard]] ProfilingSpec resolvedProfilingSpec() const;

  /// The configured configuration grid (throws if confGrid(...) has not
  /// been called) — DistributedSimulation reads this to decompose it.
  [[nodiscard]] const Grid& confGrid() const;

  [[nodiscard]] Simulation build();

 private:
  Grid confGrid_;
  bool haveConfGrid_ = false;
  int polyOrder_ = 2;
  BasisFamily family_ = BasisFamily::Serendipity;
  std::vector<SpeciesConfig> species_;
  MaxwellParams fieldParams_;
  PoissonParams poissonParams_;
  std::shared_ptr<const PoissonSolver> providedPoisson_;  ///< optional reuse
  bool poissonField_ = false;  ///< field slot driven by the Poisson solve
  bool evolveField_ = true;
  std::optional<VectorFn> initField_;
  double backgroundCharge_ = 0.0;
  Stepper stepper_ = Stepper::SspRk3;
  double cflFrac_ = 0.9;
  int threads_ = 0;
  int batchLanes_ = 0;
  Communicator* comm_ = nullptr;
  bool overlapHalo_ = false;
  ProfilingSpec profSpec_;
  bool profilingSet_ = false;  ///< explicit profiling() call wins over env
  std::shared_ptr<Profiler> sharedProfiler_;

  /// Requested conditions of one domain face.
  struct FaceSpec {
    std::optional<BcSpec> all;                 ///< every species (default)
    std::map<std::string, BcSpec> perSpecies;  ///< named overrides
    std::optional<BcSpec> field;               ///< em slot (default Copy)
  };
  std::array<std::array<FaceSpec, 2>, kMaxDim> bcFaces_;
};

}  // namespace vdg
