#pragma once
// Concrete Updaters wrapping the DG engines (dg/, collisions/, bc/) into
// the pipeline contract of app/updater.hpp. These are thin: the engines
// own the numerics; the wrappers own slot routing and the scratch fields
// of the coupling terms. Simulation::Builder assembles them in the
// canonical order (field:poisson fixup on electrostatic runs, boundary
// sync — periodic/decomposed exchange plus physical wall fills, per-
// species Vlasov, Maxwell, current coupling, collisions) — see
// docs/ARCHITECTURE.md for the layout.

#include <array>
#include <span>
#include <vector>

#include "app/updater.hpp"
#include "bc/bc.hpp"
#include "collisions/bgk.hpp"
#include "collisions/lbo.hpp"
#include "dg/maxwell.hpp"
#include "dg/moments.hpp"
#include "dg/poisson.hpp"
#include "dg/vlasov.hpp"

namespace vdg {

class Communicator;
class ThreadExec;

/// Repairs ghost layers of every slot of `in` in the configuration
/// dimensions (phase-space slots never need velocity ghosts: the velocity
/// boundary uses the zero-flux closure). Must run first. Per dimension,
/// in order: the Communicator endpoint repairs the decomposed/periodic
/// faces (SerialComm wraps periodically — bitwise the pre-distributed
/// behavior; a ThreadComm endpoint pulls the decomposed dimensions'
/// ghosts from neighboring ranks), then the physical boundary conditions
/// of the BcTable fill the non-periodic domain faces — rank-locally, and
/// only on ranks whose window owns the edge, so distributed walled runs
/// stay bitwise identical to serial ones. A null communicator resolves to
/// the shared SerialComm; a null table means fully periodic.
class BoundarySyncUpdater final : public Updater {
 public:
  /// Fully periodic sync (the historical behavior).
  explicit BoundarySyncUpdater(int cdim, Communicator* comm = nullptr)
      : cdim_(cdim), comm_(comm) {
    periodic_.fill(true);
  }
  /// Mixed periodic/physical faces. `bcs` (per slot of the StateView this
  /// updater is applied to) and `slotNames` (for name()) must outlive the
  /// updater; `periodic` flags which conf dims wrap.
  BoundarySyncUpdater(int cdim, Communicator* comm, const BcTable* bcs,
                      const std::array<bool, kMaxDim>& periodic,
                      std::vector<std::string> slotNames)
      : cdim_(cdim), comm_(comm), bcs_(bcs), periodic_(periodic),
        slotNames_(std::move(slotNames)) {}

  /// "boundary:periodic" when every face wraps; otherwise the actual
  /// per-face configuration, e.g.
  /// "boundary:d0[elc:absorb|absorb,em:copy|copy]".
  [[nodiscard]] std::string name() const override;
  double apply(double t, const StateView& in, StateView& out) override;

  // --- split-phase form (communication/compute overlap). beginApply
  // packs+posts the dimension-0 halo sends of every slot; the caller then
  // runs work that reads no configuration ghosts (the Vlasov volume
  // passes); finishApply waits+unpacks dimension 0, fills its physical
  // faces, and runs the remaining dimensions' blocking sync+fill in the
  // serial order. Only dimension 0 overlaps: its packed slabs read the
  // same (stale) transverse ghost bytes the blocking path would, while a
  // later dimension's pack must see dimension 0 already repaired — so
  // this split is bitwise identical to apply(), corner ghosts included.
  void beginApply(const StateView& in);
  void finishApply(const StateView& in);

  /// Test hook: when enabled, beginApply (after posting its sends) floods
  /// every configuration-dimension ghost slab of every slot with NaN.
  /// The sync/fill sequence provably overwrites every such cell, so a
  /// bitwise-clean trajectory proves no updater read a ghost before its
  /// repair — the overlap-correctness tests flip this on and EXPECT_EQ
  /// against the unpoisoned run. Velocity-space ghosts are untouched
  /// (nothing ever repairs them; the velocity boundary is the zero-flux
  /// closure, which reads no ghosts).
  void setGhostPoison(bool on) { poisonGhosts_ = on; }

 private:
  /// Blocking sync + physical fill of one slot's dimension d (the loop
  /// body shared by apply() and finishApply()).
  void syncAndFillDim(Communicator* comm, int slotIdx, Field& f, int d);
  [[nodiscard]] Communicator* resolveComm() const;

  int cdim_;
  Communicator* comm_;
  const BcTable* bcs_ = nullptr;  ///< non-owning; null == fully periodic
  std::array<bool, kMaxDim> periodic_{};
  std::vector<std::string> slotNames_;
  bool poisonGhosts_ = false;
};

/// Streaming + acceleration RHS of one species: out[slot] = L_vlasov(f).
/// Zeroes its slot (VlasovUpdater::advance starts from zero).
class VlasovRhsUpdater final : public Updater {
 public:
  VlasovRhsUpdater(const VlasovUpdater* vlasov, std::string species, int slot, int emSlot,
                   bool useEm)
      : vlasov_(vlasov), species_(std::move(species)), slot_(slot), emSlot_(emSlot),
        useEm_(useEm) {}
  [[nodiscard]] std::string name() const override { return "vlasov:" + species_; }
  double apply(double t, const StateView& in, StateView& out) override;

  // --- split form (VlasovUpdater::advanceVolume/advanceSurface), used by
  // the overlapped stepper: the volume half reads no ghosts and returns
  // the full CFL frequency; the surface half needs f's configuration
  // ghosts current. applyVolume-then-applySurface == apply, bitwise.
  double applyVolume(const StateView& in, StateView& out);
  void applySurface(const StateView& in, StateView& out);

 private:
  const VlasovUpdater* vlasov_;
  std::string species_;
  int slot_, emSlot_;
  bool useEm_;
  Field alphaScratch_;  ///< acceleration expansions, volume -> surface
};

/// Homogeneous perfectly-hyperbolic Maxwell RHS: out[em] = L_maxwell(em).
/// Zeroes the em slot; sources are accumulated by CurrentCouplingUpdater.
class MaxwellRhsUpdater final : public Updater {
 public:
  MaxwellRhsUpdater(const MaxwellUpdater* maxwell, int emSlot)
      : maxwell_(maxwell), emSlot_(emSlot) {}
  [[nodiscard]] std::string name() const override { return "maxwell"; }
  double apply(double t, const StateView& in, StateView& out) override;

 private:
  const MaxwellUpdater* maxwell_;
  int emSlot_;
};

/// Fixed-field stand-in when the field is not evolved: d(em)/dt = 0.
class FixedEmUpdater final : public Updater {
 public:
  explicit FixedEmUpdater(int emSlot) : emSlot_(emSlot) {}
  [[nodiscard]] std::string name() const override { return "fixed-field"; }
  double apply(double t, const StateView& in, StateView& out) override;

 private:
  int emSlot_;
};

/// The delicate field-particle coupling (paper Section II): accumulates the
/// plasma current into Ampere's law (out[em].E -= J/eps0) and the charge
/// density (plus any immobile background) into the divergence-cleaning
/// potential source d(phi)/dt += chi rho / eps0.
class CurrentCouplingUpdater final : public Updater {
 public:
  struct SpeciesTap {
    const MomentUpdater* moments;
    double charge;
    int slot;
  };

  CurrentCouplingUpdater(const Grid& confGrid, const MaxwellUpdater* maxwell,
                         std::vector<SpeciesTap> taps, int emSlot, double backgroundCharge);
  [[nodiscard]] std::string name() const override { return "current-coupling"; }
  double apply(double t, const StateView& in, StateView& out) override;

 private:
  Grid confGrid_;
  const MaxwellUpdater* maxwell_;
  std::vector<SpeciesTap> taps_;
  int emSlot_;
  double backgroundCharge_;
  Field current_, chargeDens_, m0scratch_;
};

/// Electrostatic field fixup (the Vlasov-Poisson path): assembles the
/// charge density rho = sum_s q_s M0[f_s] (+ uniform background) from the
/// per-species moments, all-reduces it to the *global* grid through the
/// Communicator, solves -lap(phi) = rho/eps0 with the zero-mean gauge, and
/// overwrites the configuration-direction E components (and the phi
/// diagnostic slot) of `in`'s EM field with E = -grad(phi). Runs FIRST in
/// the pipeline — like the boundary sync it is a state fixup of `in`, not
/// an RHS term: E is an instantaneous functional of f, recomputed at
/// every stage rather than stepped (the em slot's time derivative is
/// zeroed by FixedEmUpdater, so B, psi and any external transverse E set
/// by initField stay frozen). rho assembly and E writeback are chunked over
/// local configuration cells through ThreadExec (disjoint writes — bitwise
/// serial-identical); the tiny global back-substitution stays serial.
class PoissonFieldUpdater final : public Updater {
 public:
  struct SpeciesTap {
    const MomentUpdater* moments;
    double charge;
    int slot;
  };

  /// `confGrid` is the rank-local (possibly subgrid) configuration grid;
  /// `solver` was built on its parent. A null communicator resolves to the
  /// shared SerialComm, a null executor to serial loops.
  PoissonFieldUpdater(const Grid& confGrid, const PoissonSolver* solver,
                      std::vector<SpeciesTap> taps, int emSlot, double backgroundCharge,
                      Communicator* comm, ThreadExec* exec);
  [[nodiscard]] std::string name() const override { return "field:poisson"; }
  double apply(double t, const StateView& in, StateView& out) override;

  /// The last assembled global charge density / solved potential (flat
  /// PoissonSolver layout) — diagnostics and the rho-assembly tests.
  [[nodiscard]] std::span<const double> lastRho() const { return rho_; }
  [[nodiscard]] std::span<const double> lastPhi() const { return phi_; }
  /// Iteration diagnostics of the last solve — identical on every rank
  /// (the Krylov reductions are rank-ordered), which the transport
  /// conformance battery asserts against the serial iteration counts.
  [[nodiscard]] const PoissonSolver::SolveStats& lastSolveStats() const { return solveStats_; }

 private:
  Grid confGrid_;
  const PoissonSolver* solver_;
  std::vector<SpeciesTap> taps_;
  int emSlot_;
  double backgroundCharge_;
  Communicator* comm_;
  ThreadExec* exec_;
  Field m0scratch_;
  std::vector<double> rho_, phi_;  ///< global flat coefficient vectors
  PoissonSolver::SolveStats solveStats_;
};

/// BGK collisional relaxation of one species: out[slot] += nu (f_M - f).
class BgkCollisionUpdater final : public Updater {
 public:
  BgkCollisionUpdater(const BgkUpdater* bgk, std::string species, int slot)
      : bgk_(bgk), species_(std::move(species)), slot_(slot) {}
  [[nodiscard]] std::string name() const override { return "bgk:" + species_; }
  double apply(double t, const StateView& in, StateView& out) override;

 private:
  const BgkUpdater* bgk_;
  std::string species_;
  int slot_;
};

/// Conservative Lenard-Bernstein/Dougherty collisions of one species:
/// out[slot] += nu d/dv.((v-u)f + vth^2 df/dv). Its returned stiffness
/// (nu |v-u|/dv drag plus nu vth^2 (2p+1)/dv^2 diffusion) participates in
/// the CFL reduction, so stiff collisions shrink dt automatically.
class LboCollisionUpdater final : public Updater {
 public:
  LboCollisionUpdater(const LboUpdater* lbo, std::string species, int slot)
      : lbo_(lbo), species_(std::move(species)), slot_(slot) {}
  [[nodiscard]] std::string name() const override { return "lbo:" + species_; }
  double apply(double t, const StateView& in, StateView& out) override;

 private:
  const LboUpdater* lbo_;
  std::string species_;
  int slot_;
};

}  // namespace vdg
