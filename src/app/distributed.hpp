#pragma once
// Rank-parallel execution of a builder-assembled Simulation (the paper's
// Section IV two-level scheme, first level): configuration space is
// block-decomposed over ranks by a CartDecomp, each rank owns a full
// Simulation on its subgrid — the *entire* Updater pipeline (Vlasov,
// either field path: Maxwell + current coupling or the Poisson solve,
// optional BGK/LBO collisions), not a free-streaming stand-in — and runs
// it on its own thread. The only inter-rank traffic is the one-layer
// configuration ghost exchange, the scalar CFL reduction, and (Poisson
// runs) the charge-density vector all-reduce, all through the rank's
// ThreadComm endpoint.
//
// Because rank-local grids do their coordinate arithmetic in global terms
// (Grid::subgrid) and the ghost exchange is a pure copy of the same cells
// a serial periodic sync would read, the distributed trajectory is
// bit-for-bit identical to the serial Simulation's (tests/
// test_distributed.cpp proves this for Landau damping and a 2x2v Weibel
// run). The measured compute/halo split calibrates the Fig. 3 analytic
// MachineModel from real full-pipeline traffic.

#include <cstdint>
#include <memory>
#include <vector>

#include "app/simulation.hpp"
#include "par/communicator.hpp"
#include "par/decomp.hpp"

namespace vdg {

class DistributedSimulation {
 public:
  /// Shard the configured builder over numRanks: the builder's confGrid is
  /// block-decomposed, and one Simulation per rank is built on its local
  /// subgrid with the rank's communication endpoint (and a serial RHS
  /// executor — the rank threads are the parallelism). Initial conditions
  /// are projected per rank, bit-identical to a global projection.
  /// `overlapHalo` selects the split-phase schedule (halo exchange hidden
  /// behind the Vlasov volume terms) — on by default, since it is bitwise
  /// identical to the blocking schedule; false forces blocking sync (the
  /// A/B baseline of bench_fig3's overlap-efficiency measurement).
  DistributedSimulation(const Simulation::Builder& builder, int numRanks,
                        bool overlapHalo = true);

  [[nodiscard]] int numRanks() const { return static_cast<int>(sims_.size()); }
  [[nodiscard]] const CartDecomp& decomp() const { return decomp_; }
  [[nodiscard]] Simulation& rankSim(int r) { return sims_[static_cast<std::size_t>(r)]; }
  [[nodiscard]] const Simulation& rankSim(int r) const {
    return sims_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] double time() const { return sims_[0].time(); }

  /// Advance all ranks one step in parallel (dt from the global CFL
  /// reduction, or dtFixed if positive). Returns the dt taken — identical
  /// on every rank by construction.
  double step(double dtFixed = 0.0);

  /// Step until tEnd on all ranks in parallel; returns steps taken.
  int advanceTo(double tEnd);

  /// A zeroed global-shape StateVector (the slot layout of the undecomposed
  /// simulation, reconstructed from the rank-local subgrids).
  [[nodiscard]] StateVector globalStateLike() const;
  /// Gather every rank's interior cells into a global StateVector.
  void gather(StateVector& global) const;
  [[nodiscard]] StateVector gather() const;
  /// Overwrite every rank's interior cells from a global StateVector.
  void scatter(const StateVector& global);

  /// Restore a checkpointed global state on every rank: scatter the
  /// interior cells, set each rank's clock to `t`, and run the collective
  /// derived-field refresh with all ranks entering together — the
  /// distributed counterpart of Simulation::restore, used by the ensemble
  /// engine to resume sharded members.
  void restore(const StateVector& global, double t);

  // --- measured two-level timing split (calibrates the Fig. 3 model).
  /// Mean over ranks of wall seconds inside step()/advanceTo() minus the
  /// rank's halo seconds.
  [[nodiscard]] double computeSeconds() const;
  /// Mean over ranks of seconds spent in ghost exchange (incl. barriers).
  [[nodiscard]] double haloSeconds() const;
  /// Total bytes exchanged between distinct ranks.
  [[nodiscard]] std::uint64_t haloBytes() const { return comm_->totalHaloBytes(); }
  /// Total ghost cells received from distinct ranks.
  [[nodiscard]] std::uint64_t haloCells() const { return comm_->totalHaloCells(); }
  /// The in-process transport carrying the rank traffic (fault-injection
  /// hooks and per-endpoint HaloStats live here).
  [[nodiscard]] ThreadComm& comm() { return *comm_; }

 private:
  /// Run fn(rank) on one thread per rank, join, rethrow the first error.
  template <typename Fn>
  void onRanks(const Fn& fn);

  CartDecomp decomp_;
  std::unique_ptr<ThreadComm> comm_;  ///< declared before sims_: outlives them
  std::vector<Simulation> sims_;
  std::vector<double> wallSec_;  ///< per rank, cumulative step/advance wall time
};

}  // namespace vdg
