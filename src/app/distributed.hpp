#pragma once
// Rank-parallel execution of a builder-assembled Simulation (the paper's
// Section IV two-level scheme, first level): configuration space is
// block-decomposed over ranks by a CartDecomp, each rank owns a full
// Simulation on its subgrid — the *entire* Updater pipeline (Vlasov,
// either field path: Maxwell + current coupling or the Poisson solve,
// optional BGK/LBO collisions), not a free-streaming stand-in — and runs
// it on its own thread. The only inter-rank traffic is the one-layer
// configuration ghost exchange, the scalar CFL reduction, and (Poisson
// runs) the charge-density vector all-reduce, all through the rank's
// ThreadComm endpoint.
//
// Because rank-local grids do their coordinate arithmetic in global terms
// (Grid::subgrid) and the ghost exchange is a pure copy of the same cells
// a serial periodic sync would read, the distributed trajectory is
// bit-for-bit identical to the serial Simulation's (tests/
// test_distributed.cpp proves this for Landau damping and a 2x2v Weibel
// run). Timing comes from the src/obs/ profiler: every rank carries an
// always-on Profiler whose "step" zone (clocked on the rank thread) and
// halo:* leaf zones yield the compute/halo split that calibrates the
// Fig. 3 analytic MachineModel from real full-pipeline traffic.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "app/simulation.hpp"
#include "par/communicator.hpp"
#include "par/decomp.hpp"

namespace vdg {

class DistributedSimulation {
 public:
  /// Shard the configured builder over numRanks: the builder's confGrid is
  /// block-decomposed, and one Simulation per rank is built on its local
  /// subgrid with the rank's communication endpoint (and a serial RHS
  /// executor — the rank threads are the parallelism). Initial conditions
  /// are projected per rank, bit-identical to a global projection.
  /// `overlapHalo` selects the split-phase schedule (halo exchange hidden
  /// behind the Vlasov volume terms) — on by default, since it is bitwise
  /// identical to the blocking schedule; false forces blocking sync (the
  /// A/B baseline of bench_fig3's overlap-efficiency measurement).
  DistributedSimulation(const Simulation::Builder& builder, int numRanks,
                        bool overlapHalo = true);

  /// Writes the merged per-rank trace/report when the builder's profiling
  /// spec (or the VDG_TRACE/VDG_PROFILE environment) asked for files.
  ~DistributedSimulation();

  [[nodiscard]] int numRanks() const { return static_cast<int>(sims_.size()); }
  [[nodiscard]] const CartDecomp& decomp() const { return decomp_; }
  [[nodiscard]] Simulation& rankSim(int r) { return sims_[static_cast<std::size_t>(r)]; }
  [[nodiscard]] const Simulation& rankSim(int r) const {
    return sims_[static_cast<std::size_t>(r)];
  }
  [[nodiscard]] double time() const { return sims_[0].time(); }

  /// Advance all ranks one step in parallel (dt from the global CFL
  /// reduction, or dtFixed if positive). Returns the dt taken — identical
  /// on every rank by construction.
  double step(double dtFixed = 0.0);

  /// Step until tEnd on all ranks in parallel; returns steps taken.
  int advanceTo(double tEnd);

  /// A zeroed global-shape StateVector (the slot layout of the undecomposed
  /// simulation, reconstructed from the rank-local subgrids).
  [[nodiscard]] StateVector globalStateLike() const;
  /// Gather every rank's interior cells into a global StateVector.
  void gather(StateVector& global) const;
  [[nodiscard]] StateVector gather() const;
  /// Overwrite every rank's interior cells from a global StateVector.
  void scatter(const StateVector& global);

  /// Restore a checkpointed global state on every rank: scatter the
  /// interior cells, set each rank's clock to `t`, and run the collective
  /// derived-field refresh with all ranks entering together — the
  /// distributed counterpart of Simulation::restore, used by the ensemble
  /// engine to resume sharded members.
  void restore(const StateVector& global, double t);

  // --- measured two-level timing split (calibrates the Fig. 3 model).
  // Served by the per-rank profilers: the "step" zone is each rank's wall
  // time inside step()/advanceTo(), clocked on the rank thread so the
  // per-call spawn/join overhead stays out of the split.
  /// Mean over ranks of the profiler's "step" zone seconds minus the
  /// rank's halo seconds (the retired hand-rolled wallSec_ split, now a
  /// profiler query).
  [[nodiscard]] double computeSeconds() const;
  /// Mean over ranks of seconds spent in ghost exchange (incl. barriers) —
  /// the HaloStats facade. The rank profilers' halo:* zones carry the
  /// exact same timestamps, so the two reconcile to summation rounding
  /// (tests/test_obs.cpp pins this).
  [[nodiscard]] double haloSeconds() const;
  /// Total bytes exchanged between distinct ranks.
  [[nodiscard]] std::uint64_t haloBytes() const { return comm_->totalHaloBytes(); }
  /// Total ghost cells received from distinct ranks.
  [[nodiscard]] std::uint64_t haloCells() const { return comm_->totalHaloCells(); }
  /// The in-process transport carrying the rank traffic (fault-injection
  /// hooks and per-endpoint HaloStats live here).
  [[nodiscard]] ThreadComm& comm() { return *comm_; }

  // --- per-rank instrumentation (always on: it carries the timing split
  // above; trace events only when the builder's spec / env asked).
  [[nodiscard]] const Profiler& rankProfiler(int r) const {
    return *profilers_[static_cast<std::size_t>(r)];
  }

  /// Cross-rank aggregate of one zone path: entry count (rank 0's) and
  /// min/mean/max seconds over ranks.
  struct ZoneStat {
    std::string path;
    std::uint64_t count = 0;
    double minSec = 0.0, meanSec = 0.0, maxSec = 0.0;
  };
  /// Merge the rank profilers' zone trees and aggregate each path across
  /// ranks through the collective reductions (allReduceSum / allReduceMax
  /// entered by every rank in lockstep — the same path an MPI build
  /// takes). The collectives themselves book halo:reduce time, so read
  /// computeSeconds()/haloSeconds() first if the split matters.
  [[nodiscard]] std::vector<ZoneStat> zoneSummary();

  /// Write one merged Chrome trace: one pid track per rank. Requires the
  /// builder's spec (or env) to have enabled tracing, else the ranks
  /// recorded no events and the trace is empty.
  void writeTrace(const std::string& path) const;

 private:
  /// Run fn(rank) on one thread per rank, join, rethrow the first error.
  template <typename Fn>
  void onRanks(const Fn& fn);

  CartDecomp decomp_;
  std::unique_ptr<ThreadComm> comm_;  ///< declared before sims_: outlives them
  ProfilingSpec profSpec_;  ///< user-facing spec; file output happens here
  /// One always-enabled profiler per rank (trace/report paths cleared —
  /// the merged artifacts are written by this object, once).
  std::vector<std::shared_ptr<Profiler>> profilers_;
  std::vector<Simulation> sims_;
};

}  // namespace vdg
