#include "app/state.hpp"

#include <stdexcept>

namespace vdg {

int StateVector::addSlot(std::string name, Field field) {
  if (indexOf(name) >= 0)
    throw std::invalid_argument("StateVector::addSlot: duplicate slot name '" + name + "'");
  names_.push_back(std::move(name));
  fields_.push_back(std::move(field));
  return numSlots() - 1;
}

int StateVector::indexOf(const std::string& name) const {
  for (int i = 0; i < numSlots(); ++i)
    if (names_[static_cast<std::size_t>(i)] == name) return i;
  return -1;
}

Field& StateVector::slot(const std::string& name) {
  const int i = indexOf(name);
  if (i < 0) throw std::out_of_range("StateVector: no slot named '" + name + "'");
  return slot(i);
}

const Field& StateVector::slot(const std::string& name) const {
  const int i = indexOf(name);
  if (i < 0) throw std::out_of_range("StateVector: no slot named '" + name + "'");
  return slot(i);
}

StateView StateVector::view() {
  StateView v;
  v.fields.reserve(fields_.size());
  for (Field& f : fields_) v.fields.push_back(&f);
  return v;
}

StateVector StateVector::zerosLike() const {
  StateVector out;
  for (int i = 0; i < numSlots(); ++i) {
    const Field& f = slot(i);
    out.addSlot(slotName(i), Field(f.grid(), f.ncomp(), f.nghost()));
  }
  return out;
}

void StateVector::setZero() {
  for (Field& f : fields_) f.setZero();
}

void StateVector::copyFrom(const StateVector& other) {
  for (int i = 0; i < numSlots(); ++i) slot(i).copyFrom(other.slot(i));
}

void StateVector::axpy(double a, const StateVector& other) {
  for (int i = 0; i < numSlots(); ++i) slot(i).axpy(a, other.slot(i));
}

void StateVector::combine(double a, const StateVector& x, double b, const StateVector& y) {
  for (int i = 0; i < numSlots(); ++i) slot(i).combine(a, x.slot(i), b, y.slot(i));
}

}  // namespace vdg
