#include "app/simulation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "app/updaters.hpp"
#include "par/communicator.hpp"
#include "par/thread_exec.hpp"

namespace vdg {

Simulation::~Simulation() = default;
Simulation::Simulation(Simulation&&) noexcept = default;
Simulation& Simulation::operator=(Simulation&&) noexcept = default;

// ---------------------------------------------------------------- Builder

Simulation::Builder Simulation::builder() { return Builder{}; }

Simulation::Builder& Simulation::Builder::confGrid(const Grid& g) {
  confGrid_ = g;
  haveConfGrid_ = true;
  return *this;
}

Simulation::Builder& Simulation::Builder::basis(int polyOrder, BasisFamily family) {
  polyOrder_ = polyOrder;
  family_ = family;
  return *this;
}

Simulation::Builder& Simulation::Builder::species(SpeciesConfig cfg) {
  if (cfg.name.empty() || cfg.name == StateVector::kEmSlot)
    throw std::invalid_argument("Simulation::Builder: invalid species name '" + cfg.name + "'");
  for (const SpeciesConfig& sp : species_)
    if (sp.name == cfg.name)
      throw std::invalid_argument("Simulation::Builder: duplicate species '" + cfg.name + "'");
  species_.push_back(std::move(cfg));
  return *this;
}

Simulation::Builder& Simulation::Builder::species(std::string name, double charge, double mass,
                                                  const Grid& velGrid, ScalarFn init,
                                                  FluxType flux) {
  SpeciesConfig cfg;
  cfg.name = std::move(name);
  cfg.charge = charge;
  cfg.mass = mass;
  cfg.velGrid = velGrid;
  cfg.init = std::move(init);
  cfg.flux = flux;
  return species(std::move(cfg));
}

Simulation::Builder& Simulation::Builder::collisions(const BgkParams& p) {
  if (species_.empty())
    throw std::logic_error("Simulation::Builder::collisions: declare a species first");
  species_.back().collisions = p;
  return *this;
}

Simulation::Builder& Simulation::Builder::collisions(const LboParams& p) {
  if (species_.empty())
    throw std::logic_error("Simulation::Builder::collisions: declare a species first");
  species_.back().lboCollisions = p;
  return *this;
}

Simulation::Builder& Simulation::Builder::field(const MaxwellParams& p) {
  fieldParams_ = p;
  poissonField_ = false;
  return *this;
}

Simulation::Builder& Simulation::Builder::field(const PoissonParams& p) {
  poissonParams_ = p;
  poissonField_ = true;
  return *this;
}

Simulation::Builder& Simulation::Builder::poissonSolver(
    std::shared_ptr<const PoissonSolver> solver) {
  providedPoisson_ = std::move(solver);
  return *this;
}

Simulation::Builder& Simulation::Builder::evolveField(bool on) {
  evolveField_ = on;
  return *this;
}

Simulation::Builder& Simulation::Builder::initField(VectorFn fn) {
  initField_ = std::move(fn);
  return *this;
}

Simulation::Builder& Simulation::Builder::backgroundCharge(double rho) {
  backgroundCharge_ = rho;
  return *this;
}

Simulation::Builder& Simulation::Builder::stepper(Stepper s) {
  stepper_ = s;
  return *this;
}

Simulation::Builder& Simulation::Builder::cflFrac(double frac) {
  cflFrac_ = frac;
  return *this;
}

Simulation::Builder& Simulation::Builder::threads(int n) {
  if (n < 0) throw std::invalid_argument("Simulation::Builder::threads: count must be >= 0");
  threads_ = n;
  return *this;
}

Simulation::Builder& Simulation::Builder::communicator(Communicator* comm) {
  comm_ = comm;
  return *this;
}

const Grid& Simulation::Builder::confGrid() const {
  if (!haveConfGrid_)
    throw std::logic_error("Simulation::Builder::confGrid: no grid configured yet");
  return confGrid_;
}

Simulation Simulation::Builder::build() {
  if (!haveConfGrid_)
    throw std::logic_error("Simulation::Builder: confGrid(...) is required");
  if (species_.empty())
    throw std::logic_error("Simulation::Builder: at least one species is required");

  Simulation sim;
  sim.confGrid_ = confGrid_;
  sim.polyOrder_ = polyOrder_;
  sim.cflFrac_ = cflFrac_;
  sim.stepper_ = stepper_;
  sim.fieldParams_ = fieldParams_;
  // The electrostatic path reuses the Maxwell parameter block for the
  // energetics diagnostics; keep the one physical constant they share in
  // sync so electricEnergy uses the Poisson eps0.
  if (poissonField_) sim.fieldParams_.epsilon0 = poissonParams_.epsilon0;
  sim.species_ = species_;  // copy: the builder stays reusable for variants
  sim.comm_ = comm_ ? comm_ : &SerialComm::instance();

  ThreadExec* exec = &ThreadExec::global();
  if (threads_ > 0) {
    sim.ownedExec_ = std::make_unique<ThreadExec>(threads_);
    exec = sim.ownedExec_.get();
  }

  const int cdim = confGrid_.ndim;
  const BasisSpec confSpec{cdim, 0, polyOrder_, family_};
  sim.maxwell_ = std::make_unique<MaxwellUpdater>(confSpec, confGrid_, fieldParams_);
  const int npc = sim.maxwell_->numModes();

  // --- state slots: one per species (in declaration order), then "em".
  for (const SpeciesConfig& sp : sim.species_) {
    if (!sp.init)
      throw std::invalid_argument("SpeciesConfig '" + sp.name + "': init function is required");
    const BasisSpec spec{cdim, sp.velGrid.ndim, polyOrder_, family_};
    const Grid pg = Grid::phase(confGrid_, sp.velGrid);
    sim.phaseGrids_.push_back(pg);

    VlasovParams vp;
    vp.charge = sp.charge;
    vp.mass = sp.mass;
    vp.flux = sp.flux;
    auto vlasov = std::make_unique<VlasovUpdater>(spec, pg, vp);
    vlasov->setExecutor(exec);
    sim.vlasov_.push_back(std::move(vlasov));
    sim.mom_.push_back(std::make_unique<MomentUpdater>(spec, pg));
    if (sp.collisions) {
      // The operator's mass is the species mass by definition; override
      // whatever the caller put in BgkParams::mass so the two can't drift.
      BgkParams bp = *sp.collisions;
      bp.mass = sp.mass;
      auto bgk = std::make_unique<BgkUpdater>(spec, pg, bp);
      bgk->setExecutor(exec);
      sim.bgk_.push_back(std::move(bgk));
    } else {
      sim.bgk_.push_back(nullptr);
    }
    if (sp.lboCollisions) {
      // Same mass rule as BGK: the species mass wins (LboUpdater uses it
      // to convert vth^2 to the temperature T = m vth^2).
      LboParams lp = *sp.lboCollisions;
      lp.mass = sp.mass;
      auto lbo = std::make_unique<LboUpdater>(spec, pg, lp);
      lbo->setExecutor(exec);
      sim.lbo_.push_back(std::move(lbo));
    } else {
      sim.lbo_.push_back(nullptr);
    }

    const int np = basisFor(spec).numModes();
    Field f(pg, np);
    projectOnBasis(basisFor(spec), pg, sp.init, f);
    sim.state_.addSlot(sp.name, std::move(f));
  }
  sim.emSlot_ = sim.state_.addSlot(StateVector::kEmSlot, Field(confGrid_, kEmComps * npc));
  if (initField_) {
    projectVectorOnBasis(sim.maxwell_->basis(), confGrid_, *initField_, kEmComps,
                         sim.state_.slot(sim.emSlot_));
  }
  sim.k_ = sim.state_.zerosLike();
  sim.stage_[0] = sim.state_.zerosLike();
  // Stage 1 is only touched by the 3-stage stepper; don't carry a dead
  // full-phase-space vector for RK2 runs.
  if (stepper_ == Stepper::SspRk3) sim.stage_[1] = sim.state_.zerosLike();

  // --- pipeline, in the canonical order of the coupled RHS. The
  // electrostatic path leads with the Poisson fixup (E is a functional of
  // f, recomputed per stage and never stepped: the em slot's derivative is
  // zeroed by the fixed-field stand-in, freezing B), and current coupling
  // stays out of the loop — Gauss's law replaces Ampere's law.
  if (poissonField_) {
    if (providedPoisson_) {
      // A shared, already-factored solver (DistributedSimulation builds
      // one per *job*, not one per rank). Immutable, so reuse is safe;
      // verify it actually matches this run's global grid and basis.
      const Grid global = confGrid_.parent();
      const Grid& sg = providedPoisson_->grid();
      bool match = providedPoisson_->basis().spec() == confSpec && sg.ndim == global.ndim &&
                   providedPoisson_->params().epsilon0 == poissonParams_.epsilon0;
      for (int d = 0; match && d < global.ndim; ++d) {
        const auto ds = static_cast<std::size_t>(d);
        match = sg.cells[ds] == global.cells[ds] && sg.lower[ds] == global.lower[ds] &&
                sg.upper[ds] == global.upper[ds];
      }
      if (!match)
        throw std::invalid_argument(
            "Simulation::Builder: provided PoissonSolver does not match the configured "
            "global grid/basis/epsilon0");
      sim.poisson_ = providedPoisson_;
    } else {
      sim.poisson_ =
          std::make_shared<const PoissonSolver>(confSpec, confGrid_.parent(), poissonParams_);
    }
    std::vector<PoissonFieldUpdater::SpeciesTap> taps;
    for (int s = 0; s < sim.numSpecies(); ++s)
      taps.push_back({sim.mom_[static_cast<std::size_t>(s)].get(),
                      sim.species_[static_cast<std::size_t>(s)].charge, s});
    auto pu = std::make_unique<PoissonFieldUpdater>(confGrid_, sim.poisson_.get(),
                                                    std::move(taps), sim.emSlot_,
                                                    backgroundCharge_, sim.comm_, exec);
    sim.poissonUpd_ = pu.get();
    sim.pipeline_.push_back(std::move(pu));
  }
  const bool useEm = poissonField_ || evolveField_ || initField_.has_value();
  sim.pipeline_.push_back(std::make_unique<BoundarySyncUpdater>(cdim, sim.comm_));
  for (int s = 0; s < sim.numSpecies(); ++s) {
    sim.pipeline_.push_back(std::make_unique<VlasovRhsUpdater>(
        sim.vlasov_[static_cast<std::size_t>(s)].get(),
        sim.species_[static_cast<std::size_t>(s)].name, s, sim.emSlot_, useEm));
  }
  if (evolveField_ && !poissonField_) {
    sim.pipeline_.push_back(std::make_unique<MaxwellRhsUpdater>(sim.maxwell_.get(), sim.emSlot_));
    std::vector<CurrentCouplingUpdater::SpeciesTap> taps;
    for (int s = 0; s < sim.numSpecies(); ++s)
      taps.push_back({sim.mom_[static_cast<std::size_t>(s)].get(),
                      sim.species_[static_cast<std::size_t>(s)].charge, s});
    sim.pipeline_.push_back(std::make_unique<CurrentCouplingUpdater>(
        confGrid_, sim.maxwell_.get(), std::move(taps), sim.emSlot_, backgroundCharge_));
  } else {
    sim.pipeline_.push_back(std::make_unique<FixedEmUpdater>(sim.emSlot_));
  }
  for (int s = 0; s < sim.numSpecies(); ++s) {
    if (sim.bgk_[static_cast<std::size_t>(s)]) {
      sim.pipeline_.push_back(std::make_unique<BgkCollisionUpdater>(
          sim.bgk_[static_cast<std::size_t>(s)].get(),
          sim.species_[static_cast<std::size_t>(s)].name, s));
    }
    if (sim.lbo_[static_cast<std::size_t>(s)]) {
      sim.pipeline_.push_back(std::make_unique<LboCollisionUpdater>(
          sim.lbo_[static_cast<std::size_t>(s)].get(),
          sim.species_[static_cast<std::size_t>(s)].name, s));
    }
  }
  // Make the t = 0 electrostatic field consistent with f before any step.
  // Single-rank only: the refresh is collective, and a DistributedSimulation
  // builds its ranks sequentially — it runs the refresh itself afterwards,
  // with every rank entering in parallel.
  if (sim.poissonUpd_ && sim.comm_->numRanks() == 1) sim.refreshDerivedFields();
  return sim;
}

// ------------------------------------------------------------- Simulation

int Simulation::speciesIndex(const std::string& name) const {
  for (int s = 0; s < numSpecies(); ++s)
    if (species_[static_cast<std::size_t>(s)].name == name) return s;
  return -1;
}

double Simulation::rhs(double t, StateVector& u, StateVector& k) {
  StateView in = u.view();
  StateView out = k.view();
  double freq = 0.0;
  for (const std::unique_ptr<Updater>& upd : pipeline_)
    freq = std::max(freq, upd->apply(t, in, out));
  return freq;
}

double Simulation::step(double dtFixed) {
  // Stage 1: k = L(u^n); pick dt from the *global* CFL frequency (the
  // reduction is an identity for SerialComm; across ranks it guarantees
  // every rank steps with the same dt).
  const double freq = comm_->allReduceMax(rhs(time_, state_, k_));
  double dt = dtFixed;
  if (dt <= 0.0) {
    if (freq <= 0.0) throw std::runtime_error("Simulation::step: zero CFL frequency");
    dt = cflFrac_ / ((2.0 * polyOrder_ + 1.0) * freq);
  }

  switch (stepper_) {
    case Stepper::SspRk2: {
      // u1 = u + dt k;  u^{n+1} = 1/2 u + 1/2 u1 + 1/2 dt L(u1).
      stage_[0].combine(1.0, state_, dt, k_);
      rhs(time_ + dt, stage_[0], k_);
      state_.combine(0.5, state_, 0.5, stage_[0]);
      state_.axpy(0.5 * dt, k_);
      break;
    }
    case Stepper::SspRk3: {
      // Shu-Osher SSP-RK3, arithmetic order identical to the seed app.
      stage_[0].combine(1.0, state_, dt, k_);
      rhs(time_ + dt, stage_[0], k_);
      stage_[1].combine(0.75, state_, 0.25, stage_[0]);
      stage_[1].axpy(0.25 * dt, k_);
      rhs(time_ + 0.5 * dt, stage_[1], k_);
      state_.combine(1.0 / 3.0, state_, 2.0 / 3.0, stage_[1]);
      state_.axpy(2.0 / 3.0 * dt, k_);
      break;
    }
  }
  time_ += dt;
  // The stage combines mixed the per-stage electrostatic fields; restore
  // E = E[rho(f^{n+1})] so between-step diagnostics are consistent (no-op
  // for the Maxwell path, where the field *is* stepped). The next step's
  // stage-1 fixup recomputes the same solve; that redundancy is kept on
  // purpose — the back-substitution is ~1% of a step (bench_poisson_solve)
  // and the pipeline must stay correct for callers that mutate state()
  // (scatter, tests) between steps.
  refreshDerivedFields();
  return dt;
}

void Simulation::refreshDerivedFields() {
  if (!poissonUpd_) return;
  StateView in = state_.view();
  StateView out = k_.view();  // scratch; the fixup never writes `out`
  poissonUpd_->apply(time_, in, out);
}

int Simulation::advanceTo(double tEnd) {
  int steps = 0;
  while (time_ < tEnd - 1e-12) {
    step(0.0);
    ++steps;
  }
  return steps;
}

Simulation::Energetics Simulation::energetics() const {
  Energetics e;
  e.time = time_;
  const int npc = maxwell_->numModes();
  for (int s = 0; s < numSpecies(); ++s) {
    Field m0(confGrid_, npc), m2(confGrid_, npc);
    mom_[static_cast<std::size_t>(s)]->compute(distf(s), &m0, nullptr, &m2);
    const double m = species_[static_cast<std::size_t>(s)].mass;
    e.mass.push_back(m * integrateDomain(maxwell_->basis(), confGrid_, m0));
    e.particleEnergy.push_back(0.5 * m * integrateDomain(maxwell_->basis(), confGrid_, m2));
  }
  // Field energy via the L2 norm (orthonormal basis: sum of squared coeffs).
  double jac = 1.0;
  for (int d = 0; d < confGrid_.ndim; ++d) jac *= 0.5 * confGrid_.dx(d);
  const double c2 = fieldParams_.lightSpeed * fieldParams_.lightSpeed;
  double eE = 0.0, eB = 0.0;
  const Field& em = emField();
  forEachCell(confGrid_, [&](const MultiIndex& idx) {
    const double* u = em.at(idx);
    for (int l = 0; l < 3 * npc; ++l) eE += u[l] * u[l];
    for (int l = 3 * npc; l < 6 * npc; ++l) eB += u[l] * u[l];
  });
  e.electricEnergy = 0.5 * fieldParams_.epsilon0 * jac * eE;
  e.magneticEnergy = 0.5 * fieldParams_.epsilon0 * c2 * jac * eB;
  e.fieldEnergy = e.electricEnergy + e.magneticEnergy;
  return e;
}

double Simulation::energyTransfer(int s) const {
  const int npc = maxwell_->numModes();
  Field m1(confGrid_, 3 * npc);
  mom_[static_cast<std::size_t>(s)]->compute(distf(s), nullptr, &m1, nullptr);
  const double q = species_[static_cast<std::size_t>(s)].charge;
  double jac = 1.0;
  for (int d = 0; d < confGrid_.ndim; ++d) jac *= 0.5 * confGrid_.dx(d);
  double dot = 0.0;
  const Field& em = emField();
  forEachCell(confGrid_, [&](const MultiIndex& idx) {
    const double* j = m1.at(idx);
    const double* e = em.at(idx);
    for (int c = 0; c < 3; ++c)
      for (int l = 0; l < npc; ++l) dot += j[c * npc + l] * e[c * npc + l];
  });
  return q * jac * dot;
}

double Simulation::distfL2(int s) const {
  const Grid& pg = phaseGrids_[static_cast<std::size_t>(s)];
  double jac = 1.0;
  for (int d = 0; d < pg.ndim; ++d) jac *= 0.5 * pg.dx(d);
  double l2 = 0.0;
  const Field& f = distf(s);
  forEachCell(pg, [&](const MultiIndex& idx) {
    const double* fc = f.at(idx);
    for (int l = 0; l < f.ncomp(); ++l) l2 += fc[l] * fc[l];
  });
  return jac * l2;
}

}  // namespace vdg
