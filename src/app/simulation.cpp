#include "app/simulation.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "app/updaters.hpp"
#include "obs/trace.hpp"
#include "par/communicator.hpp"
#include "par/thread_exec.hpp"

namespace vdg {

Simulation::~Simulation() { flushProfilerOutput(); }

void Simulation::flushProfilerOutput() noexcept {
  // Owned output only: a shared profiler's files belong to whoever created
  // it (DistributedSimulation writes one merged trace; the Ensemble one
  // campaign trace). A moved-from Simulation has a null profiler_, so the
  // files are written exactly once.
  if (!profiler_ || !ownsProfilerOutput_) return;
  ownsProfilerOutput_ = false;
  try {
    const ProfilingSpec& s = profiler_->spec();
    if (!s.tracePath.empty()) writeChromeTrace(s.tracePath, *profiler_);
    if (!s.reportPath.empty()) profiler_->writeReportJson(s.reportPath);
    // Zones on but no file asked for (VDG_PROFILE=1): the human-readable
    // table is the output — stderr, so stdout stays byte-comparable.
    if (s.enabled && s.tracePath.empty() && s.reportPath.empty())
      std::fputs(profiler_->table().c_str(), stderr);
  } catch (...) {
    // Destructor context: a failed diagnostic write must not terminate.
  }
}
Simulation::Simulation(Simulation&&) noexcept = default;
Simulation& Simulation::operator=(Simulation&&) noexcept = default;

// ---------------------------------------------------------------- Builder

Simulation::Builder Simulation::builder() { return Builder{}; }

Simulation::Builder& Simulation::Builder::confGrid(const Grid& g) {
  confGrid_ = g;
  haveConfGrid_ = true;
  return *this;
}

Simulation::Builder& Simulation::Builder::basis(int polyOrder, BasisFamily family) {
  polyOrder_ = polyOrder;
  family_ = family;
  return *this;
}

Simulation::Builder& Simulation::Builder::species(SpeciesConfig cfg) {
  if (cfg.name.empty() || cfg.name == StateVector::kEmSlot)
    throw std::invalid_argument("Simulation::Builder: invalid species name '" + cfg.name + "'");
  for (const SpeciesConfig& sp : species_)
    if (sp.name == cfg.name)
      throw std::invalid_argument("Simulation::Builder: duplicate species '" + cfg.name + "'");
  species_.push_back(std::move(cfg));
  return *this;
}

Simulation::Builder& Simulation::Builder::species(std::string name, double charge, double mass,
                                                  const Grid& velGrid, ScalarFn init,
                                                  FluxType flux) {
  SpeciesConfig cfg;
  cfg.name = std::move(name);
  cfg.charge = charge;
  cfg.mass = mass;
  cfg.velGrid = velGrid;
  cfg.init = std::move(init);
  cfg.flux = flux;
  return species(std::move(cfg));
}

Simulation::Builder& Simulation::Builder::collisions(const BgkParams& p) {
  if (species_.empty())
    throw std::logic_error("Simulation::Builder::collisions: declare a species first");
  species_.back().collisions = p;
  return *this;
}

Simulation::Builder& Simulation::Builder::collisions(const LboParams& p) {
  if (species_.empty())
    throw std::logic_error("Simulation::Builder::collisions: declare a species first");
  species_.back().lboCollisions = p;
  return *this;
}

Simulation::Builder& Simulation::Builder::field(const MaxwellParams& p) {
  fieldParams_ = p;
  poissonField_ = false;
  return *this;
}

Simulation::Builder& Simulation::Builder::field(const PoissonParams& p) {
  poissonParams_ = p;
  poissonField_ = true;
  return *this;
}

Simulation::Builder& Simulation::Builder::poissonSolver(
    std::shared_ptr<const PoissonSolver> solver) {
  providedPoisson_ = std::move(solver);
  return *this;
}

Simulation::Builder& Simulation::Builder::boundary(int dim, Edge edge, BcSpec spec) {
  if (dim < 0 || dim >= kMaxDim)
    throw std::invalid_argument("Simulation::Builder::boundary: dimension out of range");
  bcFaces_[static_cast<std::size_t>(dim)][static_cast<std::size_t>(edge)].all = spec;
  return *this;
}

Simulation::Builder& Simulation::Builder::boundary(const std::string& species, int dim,
                                                   Edge edge, BcSpec spec) {
  if (dim < 0 || dim >= kMaxDim)
    throw std::invalid_argument("Simulation::Builder::boundary: dimension out of range");
  bcFaces_[static_cast<std::size_t>(dim)][static_cast<std::size_t>(edge)]
      .perSpecies[species] = spec;
  return *this;
}

Simulation::Builder& Simulation::Builder::fieldBoundary(int dim, Edge edge, BcSpec spec) {
  if (dim < 0 || dim >= kMaxDim)
    throw std::invalid_argument("Simulation::Builder::fieldBoundary: dimension out of range");
  bcFaces_[static_cast<std::size_t>(dim)][static_cast<std::size_t>(edge)].field = spec;
  return *this;
}

std::array<bool, kMaxDim> Simulation::Builder::periodicDims() const {
  std::array<bool, kMaxDim> p{};
  p.fill(true);
  const auto physical = [](const BcSpec& s) { return s.kind != BcKind::Periodic; };
  for (int d = 0; d < kMaxDim; ++d) {
    for (int e = 0; e < 2; ++e) {
      const FaceSpec& fs = bcFaces_[static_cast<std::size_t>(d)][static_cast<std::size_t>(e)];
      bool wall = (fs.all && physical(*fs.all)) || (fs.field && physical(*fs.field));
      for (const auto& [name, spec] : fs.perSpecies) wall = wall || physical(spec);
      if (wall) p[static_cast<std::size_t>(d)] = false;
    }
  }
  return p;
}

Simulation::Builder& Simulation::Builder::evolveField(bool on) {
  evolveField_ = on;
  return *this;
}

Simulation::Builder& Simulation::Builder::initField(VectorFn fn) {
  initField_ = std::move(fn);
  return *this;
}

Simulation::Builder& Simulation::Builder::backgroundCharge(double rho) {
  backgroundCharge_ = rho;
  return *this;
}

Simulation::Builder& Simulation::Builder::stepper(Stepper s) {
  stepper_ = s;
  return *this;
}

Simulation::Builder& Simulation::Builder::cflFrac(double frac) {
  cflFrac_ = frac;
  return *this;
}

Simulation::Builder& Simulation::Builder::threads(int n) {
  if (n < 0) throw std::invalid_argument("Simulation::Builder::threads: count must be >= 0");
  threads_ = n;
  return *this;
}

Simulation::Builder& Simulation::Builder::batchLanes(int lanes) {
  if (lanes < 0)
    throw std::invalid_argument("Simulation::Builder::batchLanes: count must be >= 0");
  batchLanes_ = lanes;
  return *this;
}

Simulation::Builder& Simulation::Builder::communicator(Communicator* comm) {
  comm_ = comm;
  return *this;
}

Simulation::Builder& Simulation::Builder::overlapHalo(bool on) {
  overlapHalo_ = on;
  return *this;
}

Simulation::Builder& Simulation::Builder::profiling(ProfilingSpec spec) {
  profSpec_ = std::move(spec);
  profilingSet_ = true;
  return *this;
}

Simulation::Builder& Simulation::Builder::profiler(std::shared_ptr<Profiler> p) {
  sharedProfiler_ = std::move(p);
  return *this;
}

ProfilingSpec Simulation::Builder::resolvedProfilingSpec() const {
  return profilingSet_ ? profSpec_ : ProfilingSpec::fromEnv();
}

const Grid& Simulation::Builder::confGrid() const {
  if (!haveConfGrid_)
    throw std::logic_error("Simulation::Builder::confGrid: no grid configured yet");
  return confGrid_;
}

Simulation Simulation::Builder::build() {
  if (!haveConfGrid_)
    throw std::logic_error("Simulation::Builder: confGrid(...) is required");
  if (species_.empty())
    throw std::logic_error("Simulation::Builder: at least one species is required");

  Simulation sim;
  sim.confGrid_ = confGrid_;
  sim.polyOrder_ = polyOrder_;
  sim.cflFrac_ = cflFrac_;
  sim.stepper_ = stepper_;
  sim.fieldParams_ = fieldParams_;
  // The electrostatic path reuses the Maxwell parameter block for the
  // energetics diagnostics; keep the one physical constant they share in
  // sync so electricEnergy uses the Poisson eps0.
  if (poissonField_) sim.fieldParams_.epsilon0 = poissonParams_.epsilon0;
  sim.species_ = species_;  // copy: the builder stays reusable for variants
  sim.comm_ = comm_ ? comm_ : &SerialComm::instance();

  ThreadExec* exec = &ThreadExec::global();
  if (threads_ > 0) {
    sim.ownedExec_ = std::make_unique<ThreadExec>(threads_);
    exec = sim.ownedExec_.get();
  }

  // --- instrumentation. A shared profiler (distributed rank / ensemble
  // campaign) wins; else an active spec — explicit or from the
  // environment — makes this simulation construct and own one.
  if (sharedProfiler_) {
    sim.profiler_ = sharedProfiler_;
  } else if (ProfilingSpec ps = resolvedProfilingSpec(); ps.active()) {
    sim.profiler_ = std::make_shared<Profiler>(std::move(ps), sim.comm_->rank());
    sim.ownsProfilerOutput_ = true;
  }
  if (sim.profiler_) {
    // Never instrument the shared SerialComm singleton: it is stateless by
    // contract and used concurrently by packed ensemble members. (It has
    // no halo phases to zone anyway.) The owned thread pool is safe — it
    // cannot outlive the profiler; the process-global pool could, so it
    // stays untouched.
    if (sim.comm_ != &SerialComm::instance()) sim.comm_->setProfiler(sim.profiler_.get());
    if (sim.ownedExec_) sim.ownedExec_->setProfiler(sim.profiler_.get());
  }

  const int cdim = confGrid_.ndim;
  const BasisSpec confSpec{cdim, 0, polyOrder_, family_};
  sim.maxwell_ = std::make_unique<MaxwellUpdater>(confSpec, confGrid_, fieldParams_);
  const int npc = sim.maxwell_->numModes();

  // --- state slots: one per species (in declaration order), then "em".
  for (const SpeciesConfig& sp : sim.species_) {
    if (!sp.init)
      throw std::invalid_argument("SpeciesConfig '" + sp.name + "': init function is required");
    const BasisSpec spec{cdim, sp.velGrid.ndim, polyOrder_, family_};
    const Grid pg = Grid::phase(confGrid_, sp.velGrid);
    sim.phaseGrids_.push_back(pg);

    VlasovParams vp;
    vp.charge = sp.charge;
    vp.mass = sp.mass;
    vp.flux = sp.flux;
    auto vlasov = std::make_unique<VlasovUpdater>(spec, pg, vp);
    vlasov->setExecutor(exec);
    vlasov->setBatchLanes(batchLanes_);
    sim.vlasov_.push_back(std::move(vlasov));
    sim.mom_.push_back(std::make_unique<MomentUpdater>(spec, pg));
    if (sp.collisions) {
      // The operator's mass is the species mass by definition; override
      // whatever the caller put in BgkParams::mass so the two can't drift.
      BgkParams bp = *sp.collisions;
      bp.mass = sp.mass;
      auto bgk = std::make_unique<BgkUpdater>(spec, pg, bp);
      bgk->setExecutor(exec);
      sim.bgk_.push_back(std::move(bgk));
    } else {
      sim.bgk_.push_back(nullptr);
    }
    if (sp.lboCollisions) {
      // Same mass rule as BGK: the species mass wins (LboUpdater uses it
      // to convert vth^2 to the temperature T = m vth^2).
      LboParams lp = *sp.lboCollisions;
      lp.mass = sp.mass;
      auto lbo = std::make_unique<LboUpdater>(spec, pg, lp);
      lbo->setExecutor(exec);
      lbo->setBatchLanes(batchLanes_);
      sim.lbo_.push_back(std::move(lbo));
    } else {
      sim.lbo_.push_back(nullptr);
    }

    const int np = basisFor(spec).numModes();
    Field f(pg, np);
    projectOnBasis(basisFor(spec), pg, sp.init, f);
    sim.state_.addSlot(sp.name, std::move(f));
  }
  sim.emSlot_ = sim.state_.addSlot(StateVector::kEmSlot, Field(confGrid_, kEmComps * npc));
  if (initField_) {
    projectVectorOnBasis(sim.maxwell_->basis(), confGrid_, *initField_, kEmComps,
                         sim.state_.slot(sim.emSlot_));
  }
  sim.k_ = sim.state_.zerosLike();
  sim.stage_[0] = sim.state_.zerosLike();
  // Stage 1 is only touched by the 3-stage stepper; don't carry a dead
  // full-phase-space vector for RK2 runs.
  if (stepper_ == Stepper::SspRk3) sim.stage_[1] = sim.state_.zerosLike();

  // --- physical boundary conditions. A dimension is non-periodic as soon
  // as any face of it carries a physical spec; both faces of such a
  // dimension must then be fully specified for every species (the em slot
  // defaults to Copy). The resolved per-slot table drives the wall fills
  // in BoundarySyncUpdater.
  const std::array<bool, kMaxDim> periodic = periodicDims();
  sim.periodicDims_ = periodic;
  for (int d = cdim; d < kMaxDim; ++d)
    if (!periodic[static_cast<std::size_t>(d)])
      throw std::invalid_argument(
          "Simulation::Builder: boundary() on dimension " + std::to_string(d) +
          " but the configuration grid has only " + std::to_string(cdim) + " dims");
  bool anyWall = false;
  for (int d = 0; d < cdim; ++d) anyWall = anyWall || !periodic[static_cast<std::size_t>(d)];
  if (anyWall) {
    if (evolveField_ && !poissonField_)
      throw std::invalid_argument(
          "Simulation::Builder: non-periodic boundaries compose with the Poisson field "
          "path or a non-evolving field (evolveField(false)); the hyperbolic Maxwell "
          "stepper has no wall closure yet");
    auto bcTable = std::make_unique<BcTable>(sim.state_.numSlots());
    for (int d = 0; d < cdim; ++d) {
      const auto ds = static_cast<std::size_t>(d);
      if (periodic[ds]) continue;
      for (int e = 0; e < 2; ++e) {
        const FaceSpec& fs = bcFaces_[ds][static_cast<std::size_t>(e)];
        for (int s = 0; s < sim.numSpecies(); ++s) {
          const SpeciesConfig& sp = sim.species_[static_cast<std::size_t>(s)];
          BcSpec spec;
          if (auto it = fs.perSpecies.find(sp.name); it != fs.perSpecies.end())
            spec = it->second;
          else if (fs.all)
            spec = *fs.all;
          if (spec.kind == BcKind::Periodic)
            throw std::invalid_argument(
                "Simulation::Builder: dimension " + std::to_string(d) +
                " is non-periodic, but species '" + sp.name + "' has no physical boundary "
                "condition on its " + (e == 0 ? std::string("lower") : std::string("upper")) +
                " face — a walled dimension must specify both faces");
          if (spec.kind == BcKind::Reflect) {
            if (d >= sp.velGrid.ndim)
              throw std::invalid_argument(
                  "Simulation::Builder: Reflect wall normal to dim " + std::to_string(d) +
                  " needs velocity dimension v" + std::to_string(d) + ", which species '" +
                  sp.name + "' does not have");
            const auto vs = static_cast<std::size_t>(d);
            const double span = sp.velGrid.upper[vs] - sp.velGrid.lower[vs];
            if (std::abs(sp.velGrid.lower[vs] + sp.velGrid.upper[vs]) > 1e-12 * span)
              throw std::invalid_argument(
                  "Simulation::Builder: Reflect wall requires a velocity grid symmetric "
                  "about v = 0 in dim " + std::to_string(d) + " (species '" + sp.name +
                  "'): the mirrored ghost is a signed copy only on a mirror-symmetric "
                  "grid");
          }
          const BasisSpec spSpec{cdim, sp.velGrid.ndim, polyOrder_, family_};
          bcTable->set(s, d, e == 0 ? Edge::Lower : Edge::Upper,
                       makeBc(spec.kind, basisFor(spSpec), cdim));
        }
        const BcSpec femSpec = fs.field.value_or(BcSpec{BcKind::Copy});
        if (femSpec.kind == BcKind::Periodic || femSpec.kind == BcKind::Reflect)
          throw std::invalid_argument(
              "Simulation::Builder: the em slot supports Copy or Absorb on walls (Reflect "
              "is not meaningful for the component-stacked field expansion)");
        bcTable->set(sim.emSlot_, d, e == 0 ? Edge::Lower : Edge::Upper,
                     makeBc(femSpec.kind, sim.maxwell_->basis(), cdim));
      }
    }
    sim.bcTable_ = std::move(bcTable);
  }
  // The Poisson wall closures are configured independently (they live on
  // the potential, not on a StateVector slot); require them to agree with
  // the particle boundaries on which dimensions wrap.
  if (poissonField_) {
    for (int d = 0; d < cdim; ++d) {
      const auto ds = static_cast<std::size_t>(d);
      const bool poissonPeriodic =
          poissonParams_.bc[ds][0].kind == PoissonBcKind::Periodic &&
          poissonParams_.bc[ds][1].kind == PoissonBcKind::Periodic;
      if (poissonPeriodic != periodic[ds])
        throw std::invalid_argument(
            "Simulation::Builder: PoissonParams::bc and boundary() disagree on the "
            "periodicity of dimension " + std::to_string(d) +
            " — walls must be declared on both the particles and the potential");
    }
  }
  sim.trackWallLoss_ = anyWall;
  sim.absorbed_.assign(static_cast<std::size_t>(sim.numSpecies()), 0.0);
  sim.lossRate_.assign(static_cast<std::size_t>(sim.numSpecies()), 0.0);

  // --- pipeline, in the canonical order of the coupled RHS. The
  // electrostatic path leads with the Poisson fixup (E is a functional of
  // f, recomputed per stage and never stepped: the em slot's derivative is
  // zeroed by the fixed-field stand-in, freezing B), and current coupling
  // stays out of the loop — Gauss's law replaces Ampere's law.
  if (poissonField_) {
    if (providedPoisson_) {
      // A shared, already-factored solver (DistributedSimulation builds
      // one per *job*, not one per rank). Immutable, so reuse is safe;
      // verify it actually matches this run's global grid and basis.
      const Grid global = confGrid_.parent();
      const Grid& sg = providedPoisson_->grid();
      bool match = providedPoisson_->basis().spec() == confSpec && sg.ndim == global.ndim &&
                   providedPoisson_->params().epsilon0 == poissonParams_.epsilon0 &&
                   providedPoisson_->params().method == poissonParams_.method &&
                   providedPoisson_->params().cgTol == poissonParams_.cgTol &&
                   providedPoisson_->params().cgMaxIter == poissonParams_.cgMaxIter;
      for (int d = 0; match && d < global.ndim; ++d) {
        const auto ds = static_cast<std::size_t>(d);
        match = sg.cells[ds] == global.cells[ds] && sg.lower[ds] == global.lower[ds] &&
                sg.upper[ds] == global.upper[ds];
        for (int e = 0; match && e < 2; ++e) {
          const PoissonBcSpec& a = providedPoisson_->params().bc[ds][static_cast<std::size_t>(e)];
          const PoissonBcSpec& b = poissonParams_.bc[ds][static_cast<std::size_t>(e)];
          match = a.kind == b.kind && a.value == b.value;
        }
      }
      if (!match)
        throw std::invalid_argument(
            "Simulation::Builder: provided PoissonSolver does not match the configured "
            "global grid/basis/epsilon0");
      sim.poisson_ = providedPoisson_;
    } else {
      sim.poisson_ =
          std::make_shared<const PoissonSolver>(confSpec, confGrid_.parent(), poissonParams_);
    }
    std::vector<PoissonFieldUpdater::SpeciesTap> taps;
    for (int s = 0; s < sim.numSpecies(); ++s)
      taps.push_back({sim.mom_[static_cast<std::size_t>(s)].get(),
                      sim.species_[static_cast<std::size_t>(s)].charge, s});
    auto pu = std::make_unique<PoissonFieldUpdater>(confGrid_, sim.poisson_.get(),
                                                    std::move(taps), sim.emSlot_,
                                                    backgroundCharge_, sim.comm_, exec);
    sim.poissonUpd_ = pu.get();
    sim.pipeline_.push_back(std::move(pu));
  }
  const bool useEm = poissonField_ || evolveField_ || initField_.has_value();
  {
    std::unique_ptr<BoundarySyncUpdater> bs;
    if (sim.bcTable_) {
      std::vector<std::string> slotNames;
      for (int i = 0; i < sim.state_.numSlots(); ++i)
        slotNames.push_back(sim.state_.slotName(i));
      bs = std::make_unique<BoundarySyncUpdater>(cdim, sim.comm_, sim.bcTable_.get(), periodic,
                                                 std::move(slotNames));
    } else {
      bs = std::make_unique<BoundarySyncUpdater>(cdim, sim.comm_);
    }
    sim.bsyncUpd_ = bs.get();
    sim.pipeline_.push_back(std::move(bs));
  }
  for (int s = 0; s < sim.numSpecies(); ++s) {
    auto vu = std::make_unique<VlasovRhsUpdater>(
        sim.vlasov_[static_cast<std::size_t>(s)].get(),
        sim.species_[static_cast<std::size_t>(s)].name, s, sim.emSlot_, useEm);
    sim.vlasovUpds_.push_back(vu.get());
    sim.pipeline_.push_back(std::move(vu));
  }
  sim.overlapHalo_ = overlapHalo_;
  if (evolveField_ && !poissonField_) {
    sim.pipeline_.push_back(std::make_unique<MaxwellRhsUpdater>(sim.maxwell_.get(), sim.emSlot_));
    std::vector<CurrentCouplingUpdater::SpeciesTap> taps;
    for (int s = 0; s < sim.numSpecies(); ++s)
      taps.push_back({sim.mom_[static_cast<std::size_t>(s)].get(),
                      sim.species_[static_cast<std::size_t>(s)].charge, s});
    sim.pipeline_.push_back(std::make_unique<CurrentCouplingUpdater>(
        confGrid_, sim.maxwell_.get(), std::move(taps), sim.emSlot_, backgroundCharge_));
  } else {
    sim.pipeline_.push_back(std::make_unique<FixedEmUpdater>(sim.emSlot_));
  }
  for (int s = 0; s < sim.numSpecies(); ++s) {
    if (sim.bgk_[static_cast<std::size_t>(s)]) {
      sim.pipeline_.push_back(std::make_unique<BgkCollisionUpdater>(
          sim.bgk_[static_cast<std::size_t>(s)].get(),
          sim.species_[static_cast<std::size_t>(s)].name, s));
    }
    if (sim.lbo_[static_cast<std::size_t>(s)]) {
      sim.pipeline_.push_back(std::make_unique<LboCollisionUpdater>(
          sim.lbo_[static_cast<std::size_t>(s)].get(),
          sim.species_[static_cast<std::size_t>(s)].name, s));
    }
  }
  // Zone names are cached here because Updater::name() allocates and the
  // stepper zones every updater once per RK stage. Batch-lane gauges pin
  // which hot loops run SIMD-batched vs scalar (0 = scalar) — the profile
  // artifact ROADMAP item 2 wants for "what to batch next".
  if (sim.profiler_) {
    for (const std::unique_ptr<Updater>& u : sim.pipeline_) sim.zoneNames_.push_back(u->name());
    for (const VlasovRhsUpdater* vu : sim.vlasovUpds_) {
      sim.volZoneNames_.push_back(vu->name() + ":volume");
      sim.surfZoneNames_.push_back(vu->name() + ":surface");
    }
    MetricsRegistry& m = sim.profiler_->metrics();
    for (int s = 0; s < sim.numSpecies(); ++s) {
      const auto ss = static_cast<std::size_t>(s);
      const std::string& name = sim.species_[ss].name;
      sim.absorbedKeys_.push_back("absorbed:" + name);
      m.set("batch.lanes:vlasov:" + name, sim.vlasov_[ss]->activeBatchLanes());
      if (sim.lbo_[ss]) m.set("batch.lanes:lbo:" + name, sim.lbo_[ss]->activeBatchLanes());
    }
  }

  // Make the t = 0 electrostatic field consistent with f before any step.
  // Single-rank only: the refresh is collective, and a DistributedSimulation
  // builds its ranks sequentially — it runs the refresh itself afterwards,
  // with every rank entering in parallel.
  if (sim.poissonUpd_ && sim.comm_->numRanks() == 1) sim.refreshDerivedFields();
  return sim;
}

// ------------------------------------------------------------- Simulation

int Simulation::speciesIndex(const std::string& name) const {
  for (int s = 0; s < numSpecies(); ++s)
    if (species_[static_cast<std::size_t>(s)].name == name) return s;
  return -1;
}

bool Simulation::overlapActive() const {
  return overlapHalo_ && bsyncUpd_ && !vlasovUpds_.empty() && comm_->supportsSplitSync();
}

void Simulation::setGhostPoison(bool on) {
  if (bsyncUpd_) bsyncUpd_->setGhostPoison(on);
}

double Simulation::rhs(double t, StateVector& u, StateVector& k) {
  StateView in = u.view();
  StateView out = k.view();
  double freq = 0.0;
  Profiler* const prof = profiler_.get();
  if (!overlapActive()) {
    for (std::size_t i = 0; i < pipeline_.size(); ++i) {
      const ScopedTimer zone(prof, prof ? zoneNames_[i].c_str() : "");
      freq = std::max(freq, pipeline_[i]->apply(t, in, out));
    }
    return freq;
  }
  // Split-phase schedule, bitwise identical to the blocking loop above:
  // post the dimension-0 halo sends, run every species' volume pass (reads
  // no ghosts, and by itself produces the complete CFL frequency) while
  // they fly, complete the sync, then the surface passes and the rest of
  // the pipeline. Per state slot the accumulation order (volume -> surface
  // -> field/collisions) is exactly the blocking path's; only the
  // interleaving across independent slots changes.
  std::size_t i = 0;
  // Updaters ahead of the boundary sync (the electrostatic field fixup)
  // read the state the sync is about to repair from, so they run first.
  for (; pipeline_[i].get() != static_cast<Updater*>(bsyncUpd_); ++i) {
    const ScopedTimer zone(prof, prof ? zoneNames_[i].c_str() : "");
    freq = std::max(freq, pipeline_[i]->apply(t, in, out));
  }
  {
    const ScopedTimer zone(prof, "sync:begin");
    bsyncUpd_->beginApply(in);
  }
  for (std::size_t s = 0; s < vlasovUpds_.size(); ++s) {
    const ScopedTimer zone(prof, prof ? volZoneNames_[s].c_str() : "");
    freq = std::max(freq, vlasovUpds_[s]->applyVolume(in, out));
  }
  {
    const ScopedTimer zone(prof, "sync:finish");
    bsyncUpd_->finishApply(in);
  }
  for (std::size_t s = 0; s < vlasovUpds_.size(); ++s) {
    const ScopedTimer zone(prof, prof ? surfZoneNames_[s].c_str() : "");
    vlasovUpds_[s]->applySurface(in, out);
  }
  // Skip past the sync and the Vlasov updaters (they are contiguous by
  // construction of build()); everything after runs in pipeline order.
  i += 1 + vlasovUpds_.size();
  assert(i <= pipeline_.size());
  for (; i < pipeline_.size(); ++i) {
    const ScopedTimer zone(prof, prof ? zoneNames_[i].c_str() : "");
    freq = std::max(freq, pipeline_[i]->apply(t, in, out));
  }
  return freq;
}

double Simulation::step(double dtFixed) {
  Profiler* const prof = profiler_.get();
  const ScopedTimer stepZone(prof, "step");
  // Wall-bounded runs account the discrete boundary mass flux of every RK
  // stage: the mass mode of the stage RHS integrates, over the domain, to
  // exactly the net flux through the walls (interior DG faces telescope;
  // collisions conserve mass to round-off), and the update is a linear
  // combination of stages — so absorbed_ tracks the stepped mass loss
  // with the *exact* RK weights and mass(t) + absorbed(t) is conserved to
  // round-off. Periodic runs skip all of this (no extra collectives, no
  // behavior change).
  std::vector<double> rate(trackWallLoss_ ? species_.size() : 0, 0.0);
  const auto tapRates = [&](double w) {
    if (!trackWallLoss_) return;
    for (int s = 0; s < numSpecies(); ++s)
      rate[static_cast<std::size_t>(s)] +=
          w * species_[static_cast<std::size_t>(s)].mass *
          integrateDomain(phaseBasis(s), phaseGrids_[static_cast<std::size_t>(s)], k_.slot(s));
  };

  // Stage 1: k = L(u^n); pick dt from the *global* CFL frequency (the
  // reduction is an identity for SerialComm; across ranks it guarantees
  // every rank steps with the same dt).
  double freq;
  {
    const ScopedTimer zone(prof, "rk:stage1");
    freq = comm_->allReduceMax(rhs(time_, state_, k_));
  }
  double dt = dtFixed;
  if (dt <= 0.0) {
    if (freq <= 0.0) throw std::runtime_error("Simulation::step: zero CFL frequency");
    dt = cflFrac_ / ((2.0 * polyOrder_ + 1.0) * freq);
  }

  switch (stepper_) {
    case Stepper::SspRk2: {
      // u1 = u + dt k;  u^{n+1} = 1/2 u + 1/2 u1 + 1/2 dt L(u1)
      //                         = u + dt (1/2 k1 + 1/2 k2).
      tapRates(0.5);
      stage_[0].combine(1.0, state_, dt, k_);
      {
        const ScopedTimer zone(prof, "rk:stage2");
        rhs(time_ + dt, stage_[0], k_);
      }
      tapRates(0.5);
      state_.combine(0.5, state_, 0.5, stage_[0]);
      state_.axpy(0.5 * dt, k_);
      break;
    }
    case Stepper::SspRk3: {
      // Shu-Osher SSP-RK3, arithmetic order identical to the seed app;
      // as a flat combination u^{n+1} = u + dt (1/6 k1 + 1/6 k2 + 2/3 k3).
      tapRates(1.0 / 6.0);
      stage_[0].combine(1.0, state_, dt, k_);
      {
        const ScopedTimer zone(prof, "rk:stage2");
        rhs(time_ + dt, stage_[0], k_);
      }
      tapRates(1.0 / 6.0);
      stage_[1].combine(0.75, state_, 0.25, stage_[0]);
      stage_[1].axpy(0.25 * dt, k_);
      {
        const ScopedTimer zone(prof, "rk:stage3");
        rhs(time_ + 0.5 * dt, stage_[1], k_);
      }
      tapRates(2.0 / 3.0);
      state_.combine(1.0 / 3.0, state_, 2.0 / 3.0, stage_[1]);
      state_.axpy(2.0 / 3.0 * dt, k_);
      break;
    }
  }
  time_ += dt;
  if (trackWallLoss_) {
    // One deterministic (rank-ordered) reduction per species: every rank
    // books the same global loss. Diagnostic only — it never feeds back
    // into the trajectory.
    const ScopedTimer zone(prof, "wall-loss");
    for (int s = 0; s < numSpecies(); ++s) {
      const auto ss = static_cast<std::size_t>(s);
      const double r = comm_->allReduceSum(rate[ss]);
      lossRate_[ss] = -r;
      absorbed_[ss] -= dt * r;
    }
  }
  // The stage combines mixed the per-stage electrostatic fields; restore
  // E = E[rho(f^{n+1})] so between-step diagnostics are consistent (no-op
  // for the Maxwell path, where the field *is* stepped). The next step's
  // stage-1 fixup recomputes the same solve; that redundancy is kept on
  // purpose — the back-substitution is ~1% of a step (bench_poisson_solve)
  // and the pipeline must stay correct for callers that mutate state()
  // (scatter, tests) between steps.
  refreshDerivedFields();
  if (prof) {
    MetricsRegistry& m = prof->metrics();
    m.add("steps", 1.0);
    m.set("cfl.dt", dt);
    m.set("cfl.maxFreq", freq);
    m.set("sim.time", time_);
    const HaloStats hs = comm_->haloStats();
    m.set("halo.bytes", static_cast<double>(hs.bytes));
    m.set("halo.cells", static_cast<double>(hs.cells));
    m.set("halo.seconds", hs.totalSec());
    if (poissonUpd_) m.add("krylov.iterations", poissonUpd_->lastSolveStats().iterations);
    if (trackWallLoss_)
      for (int s = 0; s < numSpecies(); ++s)
        m.set(absorbedKeys_[static_cast<std::size_t>(s)], absorbed_[static_cast<std::size_t>(s)]);
    prof->stepCompleted(time_);
    // The periodic report rewrite runs only when this simulation owns the
    // profiler (serial run: no other thread can be mid-zone here, so the
    // arenas are safe to read). Shared profilers export at their owner's
    // end-of-run instead.
    const ProfilingSpec& ps = prof->spec();
    if (ownsProfilerOutput_ && ps.reportEvery > 0 && !ps.reportPath.empty() &&
        prof->stepCount() % static_cast<std::uint64_t>(ps.reportEvery) == 0) {
      try {
        prof->writeReportJson(ps.reportPath);
      } catch (...) {
        // Periodic diagnostic write failure must not kill the run; the
        // final flush will surface a persistent IO problem.
      }
    }
  }
  return dt;
}

void Simulation::restore(const StateVector& src, double t) {
  for (int i = 0; i < state_.numSlots(); ++i) {
    const int j = src.indexOf(state_.slotName(i));
    if (j < 0)
      throw std::invalid_argument("Simulation::restore: missing slot '" + state_.slotName(i) +
                                  "'");
    Field& dst = state_.slot(i);
    const Field& s = src.slot(j);
    const Grid& g = dst.grid();
    bool match = s.grid().ndim == g.ndim && s.ncomp() == dst.ncomp();
    for (int d = 0; match && d < g.ndim; ++d)
      match = s.grid().cells[static_cast<std::size_t>(d)] == g.cells[static_cast<std::size_t>(d)];
    if (!match)
      throw std::invalid_argument("Simulation::restore: slot '" + state_.slotName(i) +
                                  "' shape mismatch");
    const std::size_t bytes = sizeof(double) * static_cast<std::size_t>(dst.ncomp());
    forEachCell(g, [&](const MultiIndex& idx) { std::memcpy(dst.at(idx), s.at(idx), bytes); });
  }
  time_ = t;
  if (comm_->numRanks() == 1) refreshDerivedFields();
}

void Simulation::refreshDerivedFields() {
  if (!poissonUpd_) return;
  const ScopedTimer zone(profiler_.get(), "field:refresh");
  StateView in = state_.view();
  StateView out = k_.view();  // scratch; the fixup never writes `out`
  poissonUpd_->apply(time_, in, out);
}

int Simulation::advanceTo(double tEnd) {
  int steps = 0;
  while (time_ < tEnd - 1e-12) {
    step(0.0);
    ++steps;
  }
  return steps;
}

Simulation::Energetics Simulation::energetics() const {
  Energetics e;
  e.time = time_;
  const int npc = maxwell_->numModes();
  for (int s = 0; s < numSpecies(); ++s) {
    Field m0(confGrid_, npc), m2(confGrid_, npc);
    mom_[static_cast<std::size_t>(s)]->compute(distf(s), &m0, nullptr, &m2);
    const double m = species_[static_cast<std::size_t>(s)].mass;
    e.mass.push_back(m * integrateDomain(maxwell_->basis(), confGrid_, m0));
    e.particleEnergy.push_back(0.5 * m * integrateDomain(maxwell_->basis(), confGrid_, m2));
  }
  // Field energy via the L2 norm (orthonormal basis: sum of squared coeffs).
  double jac = 1.0;
  for (int d = 0; d < confGrid_.ndim; ++d) jac *= 0.5 * confGrid_.dx(d);
  const double c2 = fieldParams_.lightSpeed * fieldParams_.lightSpeed;
  double eE = 0.0, eB = 0.0;
  const Field& em = emField();
  forEachCell(confGrid_, [&](const MultiIndex& idx) {
    const double* u = em.at(idx);
    for (int l = 0; l < 3 * npc; ++l) eE += u[l] * u[l];
    for (int l = 3 * npc; l < 6 * npc; ++l) eB += u[l] * u[l];
  });
  e.electricEnergy = 0.5 * fieldParams_.epsilon0 * jac * eE;
  e.magneticEnergy = 0.5 * fieldParams_.epsilon0 * c2 * jac * eB;
  e.fieldEnergy = e.electricEnergy + e.magneticEnergy;
  return e;
}

double Simulation::energyTransfer(int s) const {
  const int npc = maxwell_->numModes();
  Field m1(confGrid_, 3 * npc);
  mom_[static_cast<std::size_t>(s)]->compute(distf(s), nullptr, &m1, nullptr);
  const double q = species_[static_cast<std::size_t>(s)].charge;
  double jac = 1.0;
  for (int d = 0; d < confGrid_.ndim; ++d) jac *= 0.5 * confGrid_.dx(d);
  double dot = 0.0;
  const Field& em = emField();
  forEachCell(confGrid_, [&](const MultiIndex& idx) {
    const double* j = m1.at(idx);
    const double* e = em.at(idx);
    for (int c = 0; c < 3; ++c)
      for (int l = 0; l < npc; ++l) dot += j[c * npc + l] * e[c * npc + l];
  });
  return q * jac * dot;
}

double Simulation::distfL2(int s) const {
  const Grid& pg = phaseGrids_[static_cast<std::size_t>(s)];
  double jac = 1.0;
  for (int d = 0; d < pg.ndim; ++d) jac *= 0.5 * pg.dx(d);
  double l2 = 0.0;
  const Field& f = distf(s);
  forEachCell(pg, [&](const MultiIndex& idx) {
    const double* fc = f.at(idx);
    for (int l = 0; l < f.ncomp(); ++l) l2 += fc[l] * fc[l];
  });
  return jac * l2;
}

}  // namespace vdg
