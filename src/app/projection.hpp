#pragma once
// Projection of initial conditions onto the modal basis. This is the one
// place quadrature legitimately appears (as it does in Gkeyll): it runs
// once at setup on user-supplied analytic functions, not in the update
// loop, so it has no bearing on the alias-free/quadrature-free character
// of the solver itself.

#include <functional>

#include "basis/basis.hpp"
#include "grid/grid.hpp"

namespace vdg {

/// Scalar function of the physical coordinates (size grid.ndim).
using ScalarFn = std::function<double(const double* z)>;

/// Vector function writing `ncomp` values at physical point z.
using VectorFn = std::function<void(const double* z, double* out)>;

/// L2-project `fn` onto `field` (ncomp == basis.numModes()) with a
/// per-direction Gauss-Legendre rule of `numQuad` points (default p+2,
/// exact for polynomial data of degree 2p+3).
void projectOnBasis(const Basis& basis, const Grid& grid, const ScalarFn& fn, Field& field,
                    int numQuad = 0);

/// Project an ncomp-vector function onto `field` (ncomp() ==
/// ncomp * basis.numModes(), component-major per cell).
void projectVectorOnBasis(const Basis& basis, const Grid& grid, const VectorFn& fn, int ncomp,
                          Field& field, int numQuad = 0);

/// Integral over the whole domain of component `comp` of a DG field:
/// sum_cells J_cell * coeff_0 * 2^{ndim/2}.
[[nodiscard]] double integrateDomain(const Basis& basis, const Grid& grid, const Field& field,
                                     int comp = 0);

}  // namespace vdg
