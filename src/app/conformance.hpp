#pragma once
// Transport conformance harness: one shared definition of "this backend
// carries a real simulation bit-exactly", used by the in-tree battery
// (tests/test_comm_conformance.cpp, over SerialComm / ThreadComm /
// ProcessComm) and by tools/vdg_launch (over ProcessComm or MpiComm).
//
// The check is deliberately end-to-end: a rank builds its window of a
// named scenario on the backend under test, steps it, and compares —
// bitwise, no tolerances — against a full serial oracle it runs locally:
//   - every interior coefficient of its window,
//   - the dt sequence (the globally-reduced CFL),
//   - the Krylov iteration count per step (electrostatic scenarios; the
//     rank-ordered reduction fold must reproduce the serial residual
//     history exactly, or iteration counts drift).
// A backend that passes on the four scenarios has demonstrated the full
// contract: halo pairing, corner ghosts via sequential dim syncs, uneven
// decompositions, walls + kNoNeighbor edges, and ordered reductions.
//
// Results cross process boundaries (ProcessGroup result pipes, vdg_launch
// rank processes), so they flatten to a vector<double> — pack/unpack
// below.

#include <span>
#include <string>
#include <vector>

#include "app/simulation.hpp"
#include "par/communicator.hpp"
#include "par/decomp.hpp"

namespace vdg {

/// Per-step observables of one run (rank view or oracle view).
struct ConformanceTrace {
  std::vector<double> dts;          ///< dt of every step
  std::vector<double> krylovIters;  ///< Poisson iterations per step (empty: no solve)
};

/// One rank's verdict: its window vs the serial oracle.
struct ConformanceResult {
  double mismatches = 0.0;  ///< bitwise-mismatching interior coefficients
  ConformanceTrace rank;
  ConformanceTrace oracle;
  /// Convenience: bit-exact window, dt sequence, and Krylov history.
  [[nodiscard]] bool identical() const {
    return mismatches == 0.0 && rank.dts == oracle.dts &&
           rank.krylovIters == oracle.krylovIters;
  }
};

/// The scenario battery, by name:
///   "landau"      periodic 1x1v Vlasov-Maxwell, p2 (the workhorse)
///   "lbo"         landau + conservative Lenard-Bernstein collisions
///   "sheath"      walled 1x1v Vlasov-Poisson: absorbing walls, grounded
///                 (Dirichlet) electrodes, LBO — exercises kNoNeighbor
///                 edges and the physical-fill path
///   "poisson2x2v" periodic 2x2v Vlasov-Poisson, p1 — exercises corner
///                 ghosts and the matrix-free Krylov backend's iteration
///                 counts under the rank-ordered vector reduction
[[nodiscard]] std::vector<std::string> conformanceScenarios();
[[nodiscard]] Simulation::Builder conformanceScenario(const std::string& name);

/// The decomposition a scenario uses at a given rank count (periodicity
/// flags taken from the builder's boundary config).
[[nodiscard]] CartDecomp conformanceDecomp(const Simulation::Builder& builder, int ranks);

/// Run `steps` of the scenario on this rank's window of `decomp` through
/// `comm`, and of the serial oracle locally; compare. Collective: every
/// rank of `decomp` must call this with its own endpoint.
[[nodiscard]] ConformanceResult runConformanceRank(const Simulation::Builder& builder,
                                                   const CartDecomp& decomp,
                                                   Communicator& comm, int steps,
                                                   bool overlapHalo = true);

/// Flatten to / recover from a plain double vector (process-boundary safe).
[[nodiscard]] std::vector<double> packConformance(const ConformanceResult& r);
[[nodiscard]] ConformanceResult unpackConformance(std::span<const double> p);

}  // namespace vdg
